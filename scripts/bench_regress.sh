#!/usr/bin/env bash
# Benchmark regression gate for the evaluation fast path.
#
#   scripts/bench_regress.sh            diff against BENCH_eval.json (exit 1 on regression)
#   scripts/bench_regress.sh --capture  rewrite BENCH_eval.json from this machine
#
# Env knobs: BENCHTIME (default 2s), MAX_REGRESS (fractional ns/op slack,
# default 0.25), MAX_ALLOCS_REGRESS (fractional allocs/op slack, default
# benchdiff's tight 0.02). Per-eval allocation counts are deterministic;
# the whole-run and trace-tier benchmarks jitter by a few allocations
# from goroutine and HTTP scheduling, which the default still absorbs.
set -euo pipefail
cd "$(dirname "$0")/.."

# Without a captured baseline there is nothing to diff against: skip
# cleanly (exit 0) rather than burn benchmark time and fail on a fresh
# checkout. --capture is exactly how that baseline gets created, so it
# proceeds regardless.
if [ "${1:-}" != "--capture" ] && [ ! -f BENCH_eval.json ]; then
  echo "bench_regress: BENCH_eval.json not found; skipping diff" >&2
  echo "bench_regress: capture a baseline first: scripts/bench_regress.sh --capture" >&2
  exit 0
fi

# Every benchmark the gate covers. A rename or deletion must show up
# here as a hard failure, not silently shrink the gate.
gated=(
  BenchmarkCaptureHotLoop
  BenchmarkEvalColdVsCompiled
  BenchmarkGARunMemoized
  BenchmarkGenerationBatch
  BenchmarkMeasureExactVsReplay
  BenchmarkMedianOfKReplay
  BenchmarkPeriodicReplayModal
  BenchmarkROMStepBatchKernel
  BenchmarkSolveBatchKernel
  BenchmarkStepTrace
  BenchmarkStepTraceBatch
  BenchmarkStepTraceBatchROM
  BenchmarkTraceEncodeV2
  BenchmarkTraceStoreWarmVsCold
  BenchmarkTraceTierWarmVsCold
)
pattern="$(IFS='|'; echo "${gated[*]}")"

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -run '^$' -bench "$pattern" \
  -benchmem -benchtime "${BENCHTIME:-2s}" -count=1 \
  ./internal/cpu/ ./internal/testbed/ ./internal/core/ ./internal/pdn/ ./internal/circuit/ \
  ./internal/tracestore/ ./internal/dist/ | tee "$out"

missing=0
for b in "${gated[@]}"; do
  if ! grep -q "^${b}[/[:space:]-]" "$out"; then
    echo "bench_regress: gated benchmark ${b} produced no result (renamed or deleted?)" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  echo "bench_regress: refusing to ${1:---diff} with an incomplete benchmark set" >&2
  exit 1
fi

if [ "${1:-}" = "--capture" ]; then
  go run ./cmd/benchdiff -capture BENCH_eval.json \
    -note "captured by scripts/bench_regress.sh --capture; ns/op is machine-relative, allocs/op is not" <"$out"
else
  go run ./cmd/benchdiff -baseline BENCH_eval.json -max-regress "${MAX_REGRESS:-0.25}" \
    -max-allocs-regress "${MAX_ALLOCS_REGRESS:-0.02}" <"$out"
fi
