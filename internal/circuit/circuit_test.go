package circuit

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLURealSolvesRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		a := make([]float64, n*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		// Diagonal dominance guarantees non-singularity.
		for i := 0; i < n; i++ {
			a[i*n+i] += float64(n) * 3
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a[i*n+j] * want[j]
			}
		}
		lu, err := factorReal(a, n)
		if err != nil {
			t.Fatalf("factor: %v", err)
		}
		got := make([]float64, n)
		lu.solve(b, got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4} // rank 1
	if _, err := factorReal(a, 2); err == nil {
		t.Error("singular matrix factored")
	}
}

func TestSolveComplexAgainstKnown(t *testing.T) {
	// (1+i)x = 2 → x = 1-i
	x, err := solveComplex([]complex128{1 + 1i}, []complex128{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-(1-1i)) > 1e-12 {
		t.Errorf("x = %v", x[0])
	}
}

// buildDivider: V(1V) -- R1 -- mid -- R2 -- gnd.
func buildDivider(r1, r2 float64) (*Circuit, Node) {
	c := New()
	top := c.NewNode()
	mid := c.NewNode()
	c.V("vs", top, Ground, 1.0)
	c.R("r1", top, mid, r1)
	c.R("r2", mid, Ground, r2)
	return c, mid
}

func TestDCResistorDivider(t *testing.T) {
	c, mid := buildDivider(1000, 3000)
	tr, err := NewTransient(c, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.75
	if got := tr.V(mid); math.Abs(got-want) > 1e-9 {
		t.Errorf("DC divider: %v, want %v", got, want)
	}
	// Stays at DC under stepping.
	for i := 0; i < 100; i++ {
		tr.Step()
	}
	if got := tr.V(mid); math.Abs(got-want) > 1e-9 {
		t.Errorf("divider drifted to %v", got)
	}
}

func TestRCStepResponse(t *testing.T) {
	// V -- R -- node -- C -- gnd. Start at 0 V source, step to 1 V.
	c := New()
	top := c.NewNode()
	out := c.NewNode()
	c.V("vs", top, Ground, 0)
	c.R("r", top, out, 1000)
	c.C("c", out, Ground, 1e-6) // tau = 1 ms
	h := 1e-6
	tr, err := NewTransient(c, h)
	if err != nil {
		t.Fatal(err)
	}
	tr.MustSetSource("vs", 1)
	var got float64
	steps := int(1e-3 / h) // one time constant
	for i := 0; i < steps; i++ {
		tr.Step()
	}
	got = tr.V(out)
	want := 1 - math.Exp(-1)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("RC at t=tau: %v, want %v", got, want)
	}
}

func TestRLCRingingFrequency(t *testing.T) {
	// Series RLC driven by a current step at the cap node; ringing
	// frequency should be close to 1/(2π√(LC)).
	c := New()
	nL := c.NewNode()
	nOut := c.NewNode()
	c.V("vs", nL, Ground, 1.0)
	c.L("l", nL, nOut, 25e-12)
	c.R("r", nOut, Ground, 1e6) // weak load to keep DC defined
	c.C("c", nOut, Ground, 100e-9)
	c.I("sink", nOut, Ground, 0)
	f0 := 1 / (2 * math.Pi * math.Sqrt(25e-12*100e-9)) // ≈ 100.66 MHz
	h := 1.0 / (64 * f0)
	tr, err := NewTransient(c, h)
	if err != nil {
		t.Fatal(err)
	}
	// Apply a current step and record zero crossings about the final value.
	tr.MustSetSource("sink", 5)
	n := 4096
	var wave []float64
	for i := 0; i < n; i++ {
		tr.Step()
		wave = append(wave, tr.V(nOut))
	}
	mean := 0.0
	for _, v := range wave[n/2:] {
		mean += v
	}
	mean /= float64(n / 2)
	crossings := 0
	for i := 1; i < n; i++ {
		if (wave[i-1]-mean)*(wave[i]-mean) < 0 {
			crossings++
		}
	}
	measured := float64(crossings) / 2 / (float64(n) * h)
	if math.Abs(measured-f0)/f0 > 0.1 {
		t.Errorf("ringing frequency %v, want ≈ %v", measured, f0)
	}
}

func TestACImpedancePeaksAtResonance(t *testing.T) {
	// Parallel LC from the port: L to a shorted source, C to ground.
	c := New()
	nV := c.NewNode()
	port := c.NewNode()
	c.V("vs", nV, Ground, 1)
	c.L("l", nV, port, 25e-12)
	c.R("rl", nV, port, 1e9) // parallel path keeps matrix well-formed
	c.R("resr", port, Ground, 1e9)
	c.C("c", port, Ground, 100e-9)
	f0 := 1 / (2 * math.Pi * math.Sqrt(25e-12*100e-9))
	var freqs []float64
	for f := f0 / 4; f <= f0*4; f *= 1.02 {
		freqs = append(freqs, f)
	}
	z, err := ACImpedance(c, port, freqs)
	if err != nil {
		t.Fatal(err)
	}
	best, bestAbs := 0, 0.0
	for i := range z {
		if a := cmplx.Abs(z[i]); a > bestAbs {
			best, bestAbs = i, a
		}
	}
	if math.Abs(freqs[best]-f0)/f0 > 0.05 {
		t.Errorf("impedance peak at %v Hz, want ≈ %v", freqs[best], f0)
	}
}

func TestACImpedanceErrors(t *testing.T) {
	c, mid := buildDivider(100, 100)
	if _, err := ACImpedance(c, Ground, []float64{1e6}); err == nil {
		t.Error("ground port accepted")
	}
	if _, err := ACImpedance(c, mid, []float64{0}); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := ACImpedance(c, mid, []float64{1e6}); err != nil {
		t.Errorf("valid sweep failed: %v", err)
	}
}

func TestTransientLinearity(t *testing.T) {
	// Property: doubling the current-source stimulus doubles the
	// deviation from the DC point (the circuit is linear).
	run := func(amps float64) []float64 {
		c2 := New()
		nV2 := c2.NewNode()
		port2 := c2.NewNode()
		c2.V("vs", nV2, Ground, 1)
		c2.L("l", nV2, port2, 1e-9)
		c2.R("r", nV2, port2, 0.01)
		c2.C("c", port2, Ground, 1e-6)
		c2.I("sink", port2, Ground, 0)
		tr2, err := NewTransient(c2, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		tr2.MustSetSource("sink", amps)
		var out []float64
		for i := 0; i < 200; i++ {
			tr2.Step()
			out = append(out, 1-tr2.V(port2))
		}
		return out
	}
	a := run(1)
	b := run(2)
	for i := range a {
		if math.Abs(b[i]-2*a[i]) > 1e-9*(1+math.Abs(b[i])) {
			t.Fatalf("nonlinearity at step %d: %v vs 2×%v", i, b[i], a[i])
		}
	}
}

func TestSetSourceUnknown(t *testing.T) {
	c, _ := buildDivider(100, 100)
	tr, err := NewTransient(c, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetSource("nope", 1); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestSourceRefFastPath(t *testing.T) {
	c := New()
	n1 := c.NewNode()
	c.V("vs", n1, Ground, 1)
	c.R("r", n1, Ground, 1)
	tr, err := NewTransient(c, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tr.SourceRef("vs")
	if err != nil {
		t.Fatal(err)
	}
	tr.SetSourceRef(ref, 2)
	tr.Step()
	if got := tr.V(n1); math.Abs(got-2) > 1e-9 {
		t.Errorf("V after ref update = %v", got)
	}
	cur, err := tr.BranchCurrent("vs")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cur-(-2)) > 1e-9 && math.Abs(cur-2) > 1e-9 {
		t.Errorf("branch current = %v, want magnitude 2", cur)
	}
}

func TestQuickTransientStability(t *testing.T) {
	// Property: with zero stimulus, an RLC network stays at its DC
	// point for any (sane) step size — trapezoidal integration must not
	// blow up.
	f := func(hExp uint8) bool {
		h := math.Pow(10, -6-float64(hExp%6)) // 1e-6..1e-11
		c := New()
		nV := c.NewNode()
		port := c.NewNode()
		c.V("vs", nV, Ground, 1.2)
		c.L("l", nV, port, 25e-12)
		c.R("r", nV, port, 0.001)
		c.C("c", port, Ground, 100e-9)
		tr, err := NewTransient(c, h)
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			tr.Step()
			if math.Abs(tr.V(port)-1.2) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
