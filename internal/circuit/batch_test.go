package circuit

import (
	"math"
	"math/rand"
	"testing"
)

// batchDrive builds per-lane source traces with distinct shapes so
// lane mix-ups show up as bitwise mismatches.
func batchDrive(lanes, steps int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	src := make([][]float64, lanes)
	for l := range src {
		s := make([]float64, steps)
		phase := rng.Float64() * 2 * math.Pi
		amp := 1 + rng.Float64()*4
		for i := range s {
			s[i] = amp * (1 + math.Sin(phase+float64(i)/float64(3+l)))
		}
		src[l] = s
	}
	return src
}

// serialLaneRun replays one lane through the single-lane kernel from
// the DC operating point, returning the voltage trace and end state.
func serialLaneRun(cp *Compiled, out Node, ref int, src []float64, mul, div, add float64) ([]float64, []float64) {
	tr := cp.NewState()
	dst := make([]float64, len(src))
	tr.StepTrace(out, ref, dst, src, mul, div, add)
	end := make([]float64, tr.StateDim())
	tr.StateVec(end)
	return dst, end
}

func TestStepTraceBatchBitIdenticalToSerial(t *testing.T) {
	c, out := rlcLadder()
	cp, err := Compile(c, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	probe := cp.NewState()
	ref, err := probe.SourceRef("sink")
	if err != nil {
		t.Fatal(err)
	}
	const steps = 400
	for _, lanes := range []int{1, 2, 3, 8} {
		src := batchDrive(lanes, steps)
		mul := make([]float64, lanes)
		div := make([]float64, lanes)
		add := make([]float64, lanes)
		dst := make([][]float64, lanes)
		tb := cp.NewBatch(lanes)
		states := make([]*Transient, lanes)
		for l := 0; l < lanes; l++ {
			mul[l] = 1e-12
			div[l] = 1e-10 * (1.1 + 0.01*float64(l)) // distinct per-lane supply
			add[l] = 0.25 + 0.03*float64(l)
			dst[l] = make([]float64, steps)
			states[l] = cp.NewState()
			tb.LoadLane(l, states[l])
		}
		tb.StepTraceBatch(out, ref, dst, src, mul, div, add, steps)
		for l := 0; l < lanes; l++ {
			wantV, wantEnd := serialLaneRun(cp, out, ref, src[l], mul[l], div[l], add[l])
			for i := range wantV {
				if dst[l][i] != wantV[i] {
					t.Fatalf("lanes=%d lane %d step %d: batch %v != serial %v", lanes, l, i, dst[l][i], wantV[i])
				}
			}
			got := make([]float64, tb.cp.StateDim())
			tb.LaneStateVec(l, got)
			for i := range wantEnd {
				if got[i] != wantEnd[i] {
					t.Fatalf("lanes=%d lane %d end state[%d]: batch %v != serial %v", lanes, l, i, got[i], wantEnd[i])
				}
			}
			// StoreLane round trip must reproduce the serial Transient.
			tb.StoreLane(l, states[l])
			chk := make([]float64, states[l].StateDim())
			states[l].StateVec(chk)
			for i := range wantEnd {
				if chk[i] != wantEnd[i] {
					t.Fatalf("lanes=%d lane %d StoreLane state[%d] mismatch", lanes, l, i)
				}
			}
		}
	}
}

func TestStepTraceBatchDropLaneMidStream(t *testing.T) {
	c, out := rlcLadder()
	cp, err := Compile(c, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	probe := cp.NewState()
	ref, err := probe.SourceRef("sink")
	if err != nil {
		t.Fatal(err)
	}
	const lanes = 4
	const steps = 300
	src := batchDrive(lanes, steps)
	mul := []float64{1, 1, 1, 1}
	div := []float64{1, 1, 1, 1}
	add := []float64{0, 0, 0, 0}
	dst := make([][]float64, lanes)
	tb := cp.NewBatch(lanes)
	for l := 0; l < lanes; l++ {
		dst[l] = make([]float64, steps)
		tb.LoadLane(l, cp.NewState())
	}
	// First half with all lanes, then retire lane 1 (lane 3 swaps into
	// its slot) and finish the survivors.
	half := steps / 2
	tb.StepTraceBatch(out, ref, dst, src, mul, div, add, half)
	tb.DropLane(1)
	dst[1], src[1] = dst[3], src[3]
	rest := make([][]float64, 3)
	restSrc := make([][]float64, 3)
	for l := 0; l < 3; l++ {
		rest[l] = dst[l][half:]
		restSrc[l] = src[l][half:]
	}
	tb.StepTraceBatch(out, ref, rest, restSrc, mul, div, add, steps-half)
	for _, l := range []int{0, 2, 3} {
		wantV, _ := serialLaneRun(cp, out, ref, src[l], mul[0], div[0], add[0])
		got := dst[l] // dst[1] aliases dst[3]: lane 3 finished in slot 1
		for i := range wantV {
			if got[i] != wantV[i] {
				t.Fatalf("lane %d step %d after DropLane: %v != %v", l, i, got[i], wantV[i])
			}
		}
	}
	if tb.Lanes() != 3 {
		t.Fatalf("Lanes() = %d after one drop from 4", tb.Lanes())
	}
}

func TestSetLaneStateVecMatchesSetStateVec(t *testing.T) {
	c, out := rlcLadder()
	cp, err := Compile(c, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	probe := cp.NewState()
	ref, err := probe.SourceRef("sink")
	if err != nil {
		t.Fatal(err)
	}
	// Advance a serial state, perturb its state vector, continue — the
	// affine-probe pattern — and check the batch path reproduces it.
	const pre, post = 120, 80
	src := batchDrive(1, pre+post)[0]
	st := cp.NewState()
	dst := make([]float64, pre)
	st.StepTrace(out, ref, dst, src[:pre], 1, 1, 0)
	dim := st.StateDim()
	vec := make([]float64, dim)
	st.StateVec(vec)
	vec[2] += 1 // unit perturbation
	st.SetStateVec(vec)
	wantV := make([]float64, post)
	st.StepTrace(out, ref, wantV, src[pre:], 1, 1, 0)

	st2 := cp.NewState()
	dst2 := make([]float64, pre)
	st2.StepTrace(out, ref, dst2, src[:pre], 1, 1, 0)
	tb := cp.NewBatch(1)
	tb.LoadLane(0, st2)
	tb.SetLaneStateVec(0, vec)
	gotV := [][]float64{make([]float64, post)}
	tb.StepTraceBatch(out, ref, gotV, [][]float64{src[pre:]}, []float64{1}, []float64{1}, []float64{0}, post)
	for i := range wantV {
		if gotV[0][i] != wantV[i] {
			t.Fatalf("step %d: perturbed batch %v != serial %v", i, gotV[0][i], wantV[i])
		}
	}
}

// BenchmarkSolveBatch pits L serial triangular solves against one
// L-lane batched solve on a PDN-sized system.
func BenchmarkSolveBatch(b *testing.B) {
	c, _ := rlcLadder()
	cp, err := Compile(c, 1e-10)
	if err != nil {
		b.Fatal(err)
	}
	lu := cp.lu
	n := lu.n
	for _, L := range []int{1, 2, 4, 8} {
		rhs := make([]float64, n*L)
		x := make([]float64, n*L)
		for i := range rhs {
			rhs[i] = float64(i%13) * 0.37
		}
		b.Run(benchName("Lanes", L), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lu.solveBatch(rhs, x, L)
			}
		})
	}
	single := make([]float64, n)
	xs := make([]float64, n)
	for i := range single {
		single[i] = float64(i%13) * 0.37
	}
	b.Run("Serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lu.solve(single, xs)
		}
	})
}

func benchName(prefix string, v int) string {
	return prefix + string(rune('0'+v))
}
