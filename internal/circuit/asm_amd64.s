//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 kernels for the batch replay hot paths. Bit-identity contract:
// every SIMD slot executes the pure-Go kernel's floating-point
// operations in the same order — VMULPD/VMULSD followed by
// VSUBPD/VSUBSD or VADDPD/VADDSD, never VFMADD — so each lane's
// result is identical to the scalar kernel's at the bit level.
// R14/R15 are deliberately unused (g register / dynlink scratch).

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func fwdRowAVX2(row []float64, x []float64, i, L int)
//
// Forward-substitution row i over all L lanes of the lane-minor
// solution array x: for each lane l,
//
//	x[i*L+l] -= Σ_j row[j] * x[j*L+l]   (j ascending)
//
// 8-lane blocks (two ymm accumulators), then a 4-lane block, then VEX
// scalar remainder — the same tiling solveBatchGo uses.
TEXT ·fwdRowAVX2(SB), NOSPLIT, $0-64
	MOVQ  row_base+0(FP), SI
	MOVQ  row_len+8(FP), R8
	MOVQ  x_base+24(FP), DI
	MOVQ  i+48(FP), R9
	MOVQ  L+56(FP), R10

	IMULQ R10, R9
	LEAQ  (DI)(R9*8), DX  // DX = &x[i*L]
	MOVQ  R10, R11
	SHLQ  $3, R11         // R11 = L*8: SoA row stride in bytes

	XORQ  R12, R12        // l = 0
fwd8:
	MOVQ  R10, AX
	SUBQ  R12, AX
	CMPQ  AX, $8
	JLT   fwd4
	LEAQ  (DX)(R12*8), R13
	VMOVUPD (R13), Y0
	VMOVUPD 32(R13), Y1
	LEAQ  (DI)(R12*8), AX // column pointer: &x[0*L+l]
	MOVQ  SI, BX
	MOVQ  R8, CX
	TESTQ CX, CX
	JE    fwd8store
fwd8j:
	VBROADCASTSD (BX), Y2
	VMULPD (AX), Y2, Y3
	VMULPD 32(AX), Y2, Y4
	VSUBPD Y3, Y0, Y0
	VSUBPD Y4, Y1, Y1
	ADDQ  $8, BX
	ADDQ  R11, AX
	DECQ  CX
	JNE   fwd8j
fwd8store:
	VMOVUPD Y0, (R13)
	VMOVUPD Y1, 32(R13)
	ADDQ  $8, R12
	JMP   fwd8
fwd4:
	MOVQ  R10, AX
	SUBQ  R12, AX
	CMPQ  AX, $4
	JLT   fwd1
	LEAQ  (DX)(R12*8), R13
	VMOVUPD (R13), Y0
	LEAQ  (DI)(R12*8), AX
	MOVQ  SI, BX
	MOVQ  R8, CX
	TESTQ CX, CX
	JE    fwd4store
fwd4j:
	VBROADCASTSD (BX), Y2
	VMULPD (AX), Y2, Y3
	VSUBPD Y3, Y0, Y0
	ADDQ  $8, BX
	ADDQ  R11, AX
	DECQ  CX
	JNE   fwd4j
fwd4store:
	VMOVUPD Y0, (R13)
	ADDQ  $4, R12
	JMP   fwd4
fwd1:
	CMPQ  R12, R10
	JGE   fwddone
	LEAQ  (DX)(R12*8), R13
	VMOVSD (R13), X0
	LEAQ  (DI)(R12*8), AX
	MOVQ  SI, BX
	MOVQ  R8, CX
	TESTQ CX, CX
	JE    fwd1store
fwd1j:
	VMOVSD (BX), X2
	VMULSD (AX), X2, X3
	VSUBSD X3, X0, X0
	ADDQ  $8, BX
	ADDQ  R11, AX
	DECQ  CX
	JNE   fwd1j
fwd1store:
	VMOVSD X0, (R13)
	INCQ  R12
	JMP   fwd1
fwddone:
	VZEROUPPER
	RET

// func backRowAVX2(row []float64, d float64, x []float64, i, base, L int)
//
// Back-substitution row i over all L lanes: for each lane l,
//
//	s = x[i*L+l] − Σ_j row[j] * x[base + j*L + l]   (j ascending)
//	x[i*L+l] = s / d
//
// The division is per-slot VDIVPD/VDIVSD, matching the scalar
// kernel's one final divide.
TEXT ·backRowAVX2(SB), NOSPLIT, $0-80
	MOVQ  row_base+0(FP), SI
	MOVQ  row_len+8(FP), R8
	VBROADCASTSD d+24(FP), Y5
	MOVQ  x_base+32(FP), DI
	MOVQ  i+56(FP), R9
	MOVQ  base+64(FP), BX
	MOVQ  L+72(FP), R10

	IMULQ R10, R9
	LEAQ  (DI)(R9*8), DX  // DX = &x[i*L]
	LEAQ  (DI)(BX*8), R9  // R9 = &x[base]
	MOVQ  R10, R11
	SHLQ  $3, R11

	XORQ  R12, R12
back8:
	MOVQ  R10, AX
	SUBQ  R12, AX
	CMPQ  AX, $8
	JLT   back4
	LEAQ  (DX)(R12*8), R13
	VMOVUPD (R13), Y0
	VMOVUPD 32(R13), Y1
	LEAQ  (R9)(R12*8), AX
	MOVQ  SI, BX
	MOVQ  R8, CX
	TESTQ CX, CX
	JE    back8div
back8j:
	VBROADCASTSD (BX), Y2
	VMULPD (AX), Y2, Y3
	VMULPD 32(AX), Y2, Y4
	VSUBPD Y3, Y0, Y0
	VSUBPD Y4, Y1, Y1
	ADDQ  $8, BX
	ADDQ  R11, AX
	DECQ  CX
	JNE   back8j
back8div:
	VDIVPD Y5, Y0, Y0
	VDIVPD Y5, Y1, Y1
	VMOVUPD Y0, (R13)
	VMOVUPD Y1, 32(R13)
	ADDQ  $8, R12
	JMP   back8
back4:
	MOVQ  R10, AX
	SUBQ  R12, AX
	CMPQ  AX, $4
	JLT   back1
	LEAQ  (DX)(R12*8), R13
	VMOVUPD (R13), Y0
	LEAQ  (R9)(R12*8), AX
	MOVQ  SI, BX
	MOVQ  R8, CX
	TESTQ CX, CX
	JE    back4div
back4j:
	VBROADCASTSD (BX), Y2
	VMULPD (AX), Y2, Y3
	VSUBPD Y3, Y0, Y0
	ADDQ  $8, BX
	ADDQ  R11, AX
	DECQ  CX
	JNE   back4j
back4div:
	VDIVPD Y5, Y0, Y0
	VMOVUPD Y0, (R13)
	ADDQ  $4, R12
	JMP   back4
back1:
	CMPQ  R12, R10
	JGE   backdone
	LEAQ  (DX)(R12*8), R13
	VMOVSD (R13), X0
	LEAQ  (R9)(R12*8), AX
	MOVQ  SI, BX
	MOVQ  R8, CX
	TESTQ CX, CX
	JE    back1div
back1j:
	VMOVSD (BX), X2
	VMULSD (AX), X2, X3
	VSUBSD X3, X0, X0
	ADDQ  $8, BX
	ADDQ  R11, AX
	DECQ  CX
	JNE   back1j
back1div:
	VDIVSD X5, X0, X0
	VMOVSD X0, (R13)
	INCQ  R12
	JMP   back1
backdone:
	VZEROUPPER
	RET

// func romStep4AVX2(a *romStep4Args)
//
// Four ROM lanes per step: SIMD slot k holds lane l+k, whose modal
// coordinates sit at consecutive addresses in the lane-minor SoA
// store, so modal rows load and store as whole ymm vectors. Per slot
// the recurrence is romStepKernel's verbatim:
//
//	ut  = src[s] * rmul
//	acc = vstar + du*ut
//	pairs:   acc += c0*m0 + c1*m1
//	         mu0' = al*m0 + be*m1 + h0*ut
//	         mu1' = al*m1 − be*m0 + h1*ut
//	singles: acc += c*m0
//	         mu'  = al*m0 + h*ut
//	dst[s] = acc
TEXT ·romStep4AVX2(SB), NOSPLIT, $0-8
	MOVQ  a+0(FP), DI
	MOVQ  56(DI), R10       // muStride (bytes)
	VBROADCASTSD 32(DI), Y9 // du
	MOVQ  40(DI), AX
	VMOVUPD (AX), Y10       // vstar, 4 lanes
	VMOVUPD 128(DI), Y8     // rmul, 4 lanes
	MOVQ  160(DI), R13
	SHLQ  $3, R13           // n*8
	XORQ  R11, R11          // s*8
romstep:
	CMPQ  R11, R13
	JGE   romdone
	MOVQ  96(DI), AX        // src0
	VMOVSD (AX)(R11*1), X0
	MOVQ  104(DI), AX       // src1
	VMOVHPD (AX)(R11*1), X0, X0
	MOVQ  112(DI), AX       // src2
	VMOVSD (AX)(R11*1), X1
	MOVQ  120(DI), AX       // src3
	VMOVHPD (AX)(R11*1), X1, X1
	VINSERTF128 $1, X1, Y0, Y0
	VMULPD Y8, Y0, Y0       // ut = src * rmul
	VMULPD Y9, Y0, Y1
	VADDPD Y10, Y1, Y1      // acc = vstar + du*ut
	MOVQ  48(DI), BX        // mu column base (section offset 0)
	MOVQ  0(DI), SI         // pairs
	MOVQ  8(DI), CX
	TESTQ CX, CX
	JE    romsingles
rompair:
	VMOVUPD (BX), Y2        // m0
	VMOVUPD (BX)(R10*1), Y3 // m1
	VBROADCASTSD 32(SI), Y4 // c0
	VBROADCASTSD 40(SI), Y5 // c1
	VMULPD Y2, Y4, Y4
	VMULPD Y3, Y5, Y5
	VADDPD Y5, Y4, Y4       // c0*m0 + c1*m1
	VADDPD Y4, Y1, Y1       // acc +=
	VBROADCASTSD 0(SI), Y4  // al
	VBROADCASTSD 8(SI), Y5  // be
	VBROADCASTSD 16(SI), Y6 // h0
	VBROADCASTSD 24(SI), Y7 // h1
	VMULPD Y2, Y4, Y11      // al*m0
	VMULPD Y3, Y5, Y12      // be*m1
	VADDPD Y12, Y11, Y11
	VMULPD Y0, Y6, Y12      // h0*ut
	VADDPD Y12, Y11, Y11
	VMOVUPD Y11, (BX)       // mu0'
	VMULPD Y3, Y4, Y11      // al*m1
	VMULPD Y2, Y5, Y12      // be*m0
	VSUBPD Y12, Y11, Y11
	VMULPD Y0, Y7, Y12      // h1*ut
	VADDPD Y12, Y11, Y11
	VMOVUPD Y11, (BX)(R10*1) // mu1'
	LEAQ  (BX)(R10*2), BX
	ADDQ  $48, SI
	DECQ  CX
	JNE   rompair
romsingles:
	MOVQ  16(DI), SI        // singles
	MOVQ  24(DI), CX
	TESTQ CX, CX
	JE    romout
romsingle:
	VMOVUPD (BX), Y2        // m0
	VBROADCASTSD 16(SI), Y4 // c
	VMULPD Y2, Y4, Y4
	VADDPD Y4, Y1, Y1       // acc += c*m0
	VBROADCASTSD 0(SI), Y4  // al
	VBROADCASTSD 8(SI), Y5  // h
	VMULPD Y2, Y4, Y11
	VMULPD Y0, Y5, Y12
	VADDPD Y12, Y11, Y11
	VMOVUPD Y11, (BX)       // mu'
	ADDQ  R10, BX
	ADDQ  $24, SI
	DECQ  CX
	JNE   romsingle
romout:
	VEXTRACTF128 $1, Y1, X2
	MOVQ  64(DI), AX        // dst0
	VMOVSD X1, (AX)(R11*1)
	MOVQ  72(DI), AX        // dst1
	VMOVHPD X1, (AX)(R11*1)
	MOVQ  80(DI), AX        // dst2
	VMOVSD X2, (AX)(R11*1)
	MOVQ  88(DI), AX        // dst3
	VMOVHPD X2, (AX)(R11*1)
	ADDQ  $8, R11
	JMP   romstep
romdone:
	VZEROUPPER
	RET
