package circuit

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// eigenResidual verifies each computed eigenpair directly: ‖Av − λv‖
// small relative to ‖A‖·‖v‖.
func eigenResidual(t *testing.T, a []float64, n int) {
	t.Helper()
	wr, wi, err := eigenValues(a, n)
	if err != nil {
		t.Fatal(err)
	}
	anorm := matInfNorm(a, n)
	for i := 0; i < n; i++ {
		if wi[i] < 0 {
			continue // conjugate partner checked via wi > 0 slot
		}
		v, lam, err := eigenVector(a, n, wr[i], wi[i])
		if err != nil {
			t.Fatalf("eigenvector for λ=%g%+gi: %v", wr[i], wi[i], err)
		}
		worst := 0.0
		for r := 0; r < n; r++ {
			var av complex128
			for c := 0; c < n; c++ {
				av += complex(a[r*n+c], 0) * v[c]
			}
			if d := av - lam*v[r]; math.Hypot(real(d), imag(d)) > worst {
				worst = math.Hypot(real(d), imag(d))
			}
		}
		if worst > 1e-9*(1+anorm) {
			t.Fatalf("eigenpair residual %g for λ=%g%+gi", worst, wr[i], wi[i])
		}
	}
}

func TestEigenKnownSpectra(t *testing.T) {
	// Rotation-scale block: eigenvalues 0.9·(cos θ ± i sin θ).
	th := 0.3
	rot := []float64{0.9 * math.Cos(th), 0.9 * math.Sin(th), -0.9 * math.Sin(th), 0.9 * math.Cos(th)}
	wr, wi, err := eigenValues(rot, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if math.Abs(wr[i]-0.9*math.Cos(th)) > 1e-12 || math.Abs(math.Abs(wi[i])-0.9*math.Sin(th)) > 1e-12 {
			t.Fatalf("rotation block eigenvalue %d: got %g%+gi", i, wr[i], wi[i])
		}
	}
	// Triangular matrix: eigenvalues on the diagonal.
	tri := []float64{
		0.5, 1, 2,
		0, -0.25, 3,
		0, 0, 0.125,
	}
	wr, wi, err = eigenValues(tri, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), wr...)
	want := []float64{0.5, -0.25, 0.125}
	for _, w := range want {
		found := false
		for i, g := range got {
			if wi[i] == 0 && math.Abs(g-w) < 1e-12 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("triangular eigenvalue %g missing from %v", w, got)
		}
	}
	eigenResidual(t, tri, 3)
}

func TestEigenRandomResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 4, 6, 8} {
		for rep := 0; rep < 10; rep++ {
			a := make([]float64, n*n)
			for i := range a {
				a[i] = rng.NormFloat64()
			}
			eigenResidual(t, a, n)
		}
	}
}

// pdnLadder3 is a 3-stage RLC ladder shaped like the testbed PDN
// (board, package, die stages at widely separated frequencies): six
// reactive elements, so the reduced order matches the shipped network.
func pdnLadder3() (*Circuit, Node) {
	c := New()
	nIn := c.NewNode()
	nBoard := c.NewNode()
	nPkg := c.NewNode()
	nDie := c.NewNode()
	c.V("vin", nIn, Ground, 1.25)
	c.R("rb", nIn, nBoard, 0.5e-3)
	c.L("lb", nIn, nBoard, 10e-9)
	c.C("cb", nBoard, Ground, 5e-3)
	c.R("rp", nBoard, nPkg, 0.1e-3)
	c.L("lp", nBoard, nPkg, 50e-12)
	c.C("cp", nPkg, Ground, 50e-6)
	c.R("rd", nPkg, nDie, 0.1e-3)
	c.L("ld", nPkg, nDie, 2.5e-12)
	c.C("cd", nDie, Ground, 1e-6)
	c.I("sink", nDie, Ground, 0)
	return c, nDie
}

func romFixture(t testing.TB, build func() (*Circuit, Node)) (*Compiled, *ROM, Node, int) {
	t.Helper()
	c, out := build()
	cp, err := Compile(c, 1/3.3e9)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cp.NewState().SourceRef("sink")
	if err != nil {
		t.Fatal(err)
	}
	rom, err := cp.CompileROM(out, ref)
	if err != nil {
		t.Fatal(err)
	}
	return cp, rom, out, ref
}

func TestROMMatchesExactKernel(t *testing.T) {
	for name, build := range map[string]func() (*Circuit, Node){
		"rlc":  rlcLadder,
		"pdn3": pdnLadder3,
	} {
		t.Run(name, func(t *testing.T) {
			cp, rom, out, ref := romFixture(t, build)
			if rom.Order() != cp.reduceOrder() {
				t.Fatalf("ROM order %d, want %d", rom.Order(), cp.reduceOrder())
			}
			rng := rand.New(rand.NewSource(5))
			const steps = 4000
			for rep := 0; rep < 4; rep++ {
				src := make([]float64, steps)
				amp := 1 + rng.Float64()*20
				for i := range src {
					src[i] = amp * rng.Float64()
				}
				add := rng.Float64() * 0.5
				wantV := make([]float64, steps)
				te := cp.NewState()
				te.StepTrace(out, ref, wantV, src, 1, 1, add)

				gotV := make([]float64, steps)
				rs := rom.NewState(cp.NewState(), add)
				rs.StepTrace(gotV, src, 1, 1)

				bound := rom.ErrPerAmpV() * (amp + add)
				worst := 0.0
				for i := range wantV {
					if d := math.Abs(wantV[i] - gotV[i]); d > worst {
						worst = d
					}
				}
				if worst > bound {
					t.Fatalf("rep %d: ROM error %g exceeds declared bound %g (amp %g)", rep, worst, bound, amp)
				}
				if worst > 1e-6 {
					t.Fatalf("rep %d: ROM error %g unexpectedly large", rep, worst)
				}
			}
		})
	}
}

// TestROMEquilibriumFolding holds the drive constant: the ROM must sit
// exactly on the exact kernel's settled value (the fold solves the
// equilibrium through the exact reduced map, not the modal
// approximation).
func TestROMEquilibriumFolding(t *testing.T) {
	cp, rom, out, ref := romFixture(t, pdnLadder3)
	const add = 7.5
	const steps = 200000
	src := make([]float64, steps)
	wantV := make([]float64, steps)
	te := cp.NewState()
	te.StepTrace(out, ref, wantV, src, 1, 1, add)
	gotV := make([]float64, steps)
	rs := rom.NewState(cp.NewState(), add)
	rs.StepTrace(gotV, src, 1, 1)
	if d := math.Abs(wantV[steps-1] - gotV[steps-1]); d > 1e-9 {
		t.Fatalf("settled value drifted by %g", d)
	}
}

func TestROMBatchBitIdenticalToSerial(t *testing.T) {
	cp, rom, _, _ := romFixture(t, pdnLadder3)
	const steps = 600
	for _, lanes := range []int{1, 2, 5, 16, 32} {
		src := batchDrive(lanes, steps)
		mul := make([]float64, lanes)
		div := make([]float64, lanes)
		adds := make([]float64, lanes)
		dst := make([][]float64, lanes)
		rb := rom.NewBatch(lanes)
		for l := 0; l < lanes; l++ {
			mul[l] = 1e-12
			div[l] = 1e-10 * (1.1 + 0.01*float64(l))
			adds[l] = 0.25 + 0.03*float64(l)
			dst[l] = make([]float64, steps)
			rb.LoadLane(l, cp.NewState(), adds[l])
		}
		rb.StepTraceBatch(dst, src, mul, div, steps)
		for l := 0; l < lanes; l++ {
			want := make([]float64, steps)
			rs := rom.NewState(cp.NewState(), adds[l])
			rs.StepTrace(want, src[l], mul[l], div[l])
			for i := range want {
				if dst[l][i] != want[i] {
					t.Fatalf("lanes=%d lane %d step %d: batch %v != serial %v", lanes, l, i, dst[l][i], want[i])
				}
			}
		}
	}
}

func TestROMBatchDropLaneMidStream(t *testing.T) {
	cp, rom, _, _ := romFixture(t, pdnLadder3)
	const lanes = 4
	const steps = 300
	src := batchDrive(lanes, steps)
	ones := []float64{1, 1, 1, 1}
	dst := make([][]float64, lanes)
	rb := rom.NewBatch(lanes)
	for l := 0; l < lanes; l++ {
		dst[l] = make([]float64, steps)
		rb.LoadLane(l, cp.NewState(), 0)
	}
	half := steps / 2
	rb.StepTraceBatch(dst, src, ones, ones, half)
	rb.DropLane(1)
	dst[1], src[1] = dst[3], src[3]
	rest := make([][]float64, 3)
	restSrc := make([][]float64, 3)
	for l := 0; l < 3; l++ {
		rest[l] = dst[l][half:]
		restSrc[l] = src[l][half:]
	}
	rb.StepTraceBatch(rest, restSrc, ones, ones, steps-half)
	for _, l := range []int{0, 2, 3} {
		want := make([]float64, steps)
		rs := rom.NewState(cp.NewState(), 0)
		rs.StepTrace(want, src[l], 1, 1)
		for i := range want {
			if dst[l][i] != want[i] {
				t.Fatalf("lane %d step %d after DropLane: %v != %v", l, i, dst[l][i], want[i])
			}
		}
	}
	if rb.Lanes() != 3 {
		t.Fatalf("Lanes() = %d after one drop from 4", rb.Lanes())
	}
}

// TestROMMidStreamLoad folds from an already-excited state: the lane
// must continue the exact trajectory within the bound, not restart
// from DC.
func TestROMMidStreamLoad(t *testing.T) {
	cp, rom, out, ref := romFixture(t, pdnLadder3)
	const pre, post = 500, 2000
	rng := rand.New(rand.NewSource(3))
	src := make([]float64, pre+post)
	for i := range src {
		src[i] = 10 * rng.Float64()
	}
	te := cp.NewState()
	buf := make([]float64, pre)
	te.StepTrace(out, ref, buf, src[:pre], 1, 1, 0.3)
	want := make([]float64, post)
	cont := te.Clone()
	cont.StepTrace(out, ref, want, src[pre:], 1, 1, 0.3)

	rs := rom.NewState(te, 0.3)
	got := make([]float64, post)
	rs.StepTrace(got, src[pre:], 1, 1)
	bound := rom.ErrPerAmpV() * 10.3 * 2 // drive plus the folded history
	for i := range want {
		if d := math.Abs(want[i] - got[i]); d > bound && d > 1e-6 {
			t.Fatalf("step %d: mid-stream ROM error %g (bound %g)", i, d, bound)
		}
	}
}

func BenchmarkStepTraceBatchROM(b *testing.B) {
	cp, rom, out, ref := romFixture(b, pdnLadder3)
	const steps = 65536
	for _, kernel := range []string{"Exact", "ROM"} {
		for _, lanes := range []int{8, 32} {
			src := make([][]float64, lanes)
			dst := make([][]float64, lanes)
			mul := make([]float64, lanes)
			div := make([]float64, lanes)
			add := make([]float64, lanes)
			for l := 0; l < lanes; l++ {
				s := make([]float64, steps)
				for i := range s {
					s[i] = 10 + 8*math.Sin(float64(i)/9+float64(l))
				}
				src[l] = s
				dst[l] = make([]float64, steps)
				mul[l], div[l], add[l] = 1, 1, 0.2
			}
			b.Run(fmt.Sprintf("%s/Lanes%d", kernel, lanes), func(b *testing.B) {
				b.SetBytes(int64(steps * 8))
				for i := 0; i < b.N; i++ {
					if kernel == "ROM" {
						rb := rom.NewBatch(lanes)
						for l := 0; l < lanes; l++ {
							rb.LoadLane(l, cp.NewState(), add[l])
						}
						rb.StepTraceBatch(dst, src, mul, div, steps)
					} else {
						tb := cp.NewBatch(lanes)
						for l := 0; l < lanes; l++ {
							tb.LoadLane(l, cp.NewState())
						}
						tb.StepTraceBatch(out, ref, dst, src, mul, div, add, steps)
					}
				}
			})
		}
	}
}
