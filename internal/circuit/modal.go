package circuit

// Modal period-map helpers for the periodic replay fast path
// (internal/testbed/replay.go). A periodic drive makes one period an
// affine map of the boundary state; in the ROM's modal coordinates
// that map is exactly block-diagonal over the eigendecomposition's
// 1×1/2×2 sections, because romStepKernel never couples sections — a
// probe that perturbs only section i's coordinates leaves every other
// section's trajectory bit-identical to the reference lane. The fixed
// point and per-section contraction factors therefore have closed
// forms, which the replay uses for a sound analytic convergence bound
// instead of the empirical geometric projection the exact path needs.

import (
	"errors"
	"math"
)

// ErrModalSingular is returned by PeriodicSteadyState when a section's
// I − A block is numerically singular: the period map has a mode with
// no decay toward a fixed point, so no steady-state boundary exists.
var ErrModalSingular = errors.New("circuit: modal period map has no steady state")

// sectionOrder sums the section sizes and validates them against the
// matrix slice.
func sectionOrder(sections []int, a []float64) int {
	m := 0
	for _, sz := range sections {
		if sz != 1 && sz != 2 {
			panic("circuit: modal section size must be 1 or 2")
		}
		m += sz
	}
	if len(a) < m*m {
		panic("circuit: modal period map shorter than order²")
	}
	return m
}

// PeriodicSteadyState solves (I − A)·x = b in closed form per section,
// for a block-diagonal modal period map A with column k stored at
// a[k*m:] (the layout the probe pass produces) and sections laid out
// per ROM.Sections. Entries of A outside the diagonal blocks are
// ignored — the probe construction makes them exactly zero. It fails
// with ErrModalSingular when any block's determinant is negligible
// against its entries, in which case the caller must fall back to
// scanning periods without an analytic exit.
func PeriodicSteadyState(sections []int, a, b, x []float64) error {
	m := sectionOrder(sections, a)
	if len(b) < m || len(x) < m {
		panic("circuit: modal steady-state vector shorter than order")
	}
	o := 0
	for _, sz := range sections {
		if sz == 1 {
			d := 1 - a[o*m+o]
			if !(math.Abs(d) > 1e-12*(1+math.Abs(a[o*m+o]))) {
				return ErrModalSingular
			}
			x[o] = b[o] / d
			o++
			continue
		}
		// 2×2 block, column-major within the full map.
		m00 := 1 - a[o*m+o]
		m10 := -a[o*m+o+1]
		m01 := -a[(o+1)*m+o]
		m11 := 1 - a[(o+1)*m+o+1]
		det := m00*m11 - m01*m10
		nrm := math.Max(math.Max(math.Abs(m00), math.Abs(m01)),
			math.Max(math.Abs(m10), math.Abs(m11)))
		if !(math.Abs(det) > 1e-12*(1+nrm*nrm)) {
			return ErrModalSingular
		}
		b0, b1 := b[o], b[o+1]
		x[o] = (m11*b0 - m01*b1) / det
		x[o+1] = (m00*b1 - m10*b0) / det
		o += 2
	}
	return nil
}

// SectionContractions returns each modal section's spectral norm
// (largest singular value) of the block-diagonal period map A, laid
// out as in PeriodicSteadyState. The value is the per-period decay
// factor of that section's boundary deviation in the Euclidean norm:
// ‖A_i·δ‖ ≤ σ_i·‖δ‖ exactly, so σ_i < 1 proves the section contracts
// monotonically toward the steady state — the soundness anchor of the
// replay's analytic convergence bound.
func SectionContractions(sections []int, a []float64) []float64 {
	m := sectionOrder(sections, a)
	out := make([]float64, len(sections))
	o := 0
	for si, sz := range sections {
		if sz == 1 {
			out[si] = math.Abs(a[o*m+o])
			o++
			continue
		}
		b00 := a[o*m+o]
		b10 := a[o*m+o+1]
		b01 := a[(o+1)*m+o]
		b11 := a[(o+1)*m+o+1]
		// σ_max² of a 2×2 block from its Frobenius norm q and
		// determinant d: (q + √(q² − 4d²))/2.
		q := b00*b00 + b01*b01 + b10*b10 + b11*b11
		d := b00*b11 - b01*b10
		disc := q*q - 4*d*d
		if disc < 0 {
			disc = 0
		}
		out[si] = math.Sqrt((q + math.Sqrt(disc)) / 2)
		o += 2
	}
	return out
}
