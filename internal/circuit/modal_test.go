package circuit

import (
	"math"
	"math/rand"
	"testing"
)

// mulColMajor computes y = A·x for A with column k at a[k*m:].
func mulColMajor(a, x []float64, m int) []float64 {
	y := make([]float64, m)
	for k := 0; k < m; k++ {
		for i := 0; i < m; i++ {
			y[i] += a[k*m+i] * x[k]
		}
	}
	return y
}

func TestPeriodicSteadyState(t *testing.T) {
	sections := []int{2, 2, 1, 1}
	const m = 6
	a := make([]float64, m*m)
	set := func(i, k, v float64) { a[int(k)*m+int(i)] = v }
	// Two rotation-scale pairs and two real modes, all stable.
	set(0, 0, 0.9*math.Cos(0.4))
	set(1, 0, -0.9*math.Sin(0.4))
	set(0, 1, 0.9*math.Sin(0.4))
	set(1, 1, 0.9*math.Cos(0.4))
	set(2, 2, 0.99*math.Cos(0.05))
	set(3, 2, -0.99*math.Sin(0.05))
	set(2, 3, 0.99*math.Sin(0.05))
	set(3, 3, 0.99*math.Cos(0.05))
	set(4, 4, 0.97)
	set(5, 5, -0.4)
	rng := rand.New(rand.NewSource(21))
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, m)
	if err := PeriodicSteadyState(sections, a, b, x); err != nil {
		t.Fatal(err)
	}
	ax := mulColMajor(a, x, m)
	for i := 0; i < m; i++ {
		if d := math.Abs(x[i] - ax[i] - b[i]); d > 1e-12 {
			t.Fatalf("row %d: (I-A)x - b = %g", i, d)
		}
	}
}

func TestPeriodicSteadyStateSingular(t *testing.T) {
	// A 1×1 section with eigenvalue exactly 1 has no fixed point.
	sections := []int{1, 1}
	a := []float64{1, 0, 0, 0.5}
	b := []float64{1, 1}
	x := make([]float64, 2)
	if err := PeriodicSteadyState(sections, a, b, x); err != ErrModalSingular {
		t.Fatalf("err = %v, want ErrModalSingular", err)
	}
	// A 2×2 rotation by θ with scale exactly 1 is also singular only
	// at θ=0; at θ>0 it has a fixed point even though |λ|=1.
	sections = []int{2}
	a = make([]float64, 4)
	a[0], a[1], a[2], a[3] = math.Cos(0.3), -math.Sin(0.3), math.Sin(0.3), math.Cos(0.3)
	if err := PeriodicSteadyState(sections, a, []float64{1, 0}, x); err != nil {
		t.Fatalf("pure rotation should still solve: %v", err)
	}
}

func TestSectionContractions(t *testing.T) {
	// Rotation-scale block: spectral norm is exactly the scale.
	sections := []int{2, 1}
	const m = 3
	a := make([]float64, m*m)
	r, th := 0.85, 0.7
	a[0*m+0] = r * math.Cos(th)
	a[0*m+1] = -r * math.Sin(th)
	a[1*m+0] = r * math.Sin(th)
	a[1*m+1] = r * math.Cos(th)
	a[2*m+2] = -0.6
	got := SectionContractions(sections, a)
	if math.Abs(got[0]-r) > 1e-12 {
		t.Fatalf("pair contraction %g, want %g", got[0], r)
	}
	if math.Abs(got[1]-0.6) > 1e-15 {
		t.Fatalf("single contraction %g, want 0.6", got[1])
	}
	// Verify σ_max is a true operator bound on a lopsided block.
	a2 := []float64{0.3, 0.8, -0.1, 0.5} // column-major 2×2
	sig := SectionContractions([]int{2}, a2)[0]
	rng := rand.New(rand.NewSource(4))
	for rep := 0; rep < 200; rep++ {
		x0, x1 := rng.NormFloat64(), rng.NormFloat64()
		nx := math.Hypot(x0, x1)
		y0 := a2[0]*x0 + a2[2]*x1
		y1 := a2[1]*x0 + a2[3]*x1
		if math.Hypot(y0, y1) > sig*nx*(1+1e-12) {
			t.Fatalf("‖Ax‖=%g exceeds σ‖x‖=%g", math.Hypot(y0, y1), sig*nx)
		}
	}
}

// TestROMModalRoundTrip pins the modal accessors: saving and restoring
// (μ, vstar) resumes a serial replay bit-identically, and batch lanes
// loaded via SetLaneModal step bit-identically to the serial kernel.
func TestROMModalRoundTrip(t *testing.T) {
	cp, rom, _, _ := romFixture(t, pdnLadder3)
	m := rom.Order()
	secs := rom.Sections()
	sum := 0
	for _, sz := range secs {
		sum += sz
	}
	if sum != m {
		t.Fatalf("Sections %v sum %d, want order %d", secs, sum, m)
	}
	const steps = 400
	src := batchDrive(1, 2*steps)[0]
	rs := rom.NewState(cp.NewState(), 0.3)
	buf := make([]float64, steps)
	rs.StepTrace(buf, src[:steps], 1e-12, 1e-10)
	mu := make([]float64, m)
	vstar := rs.Modal(mu)

	want := make([]float64, steps)
	rs.StepTrace(want, src[steps:], 1e-12, 1e-10)

	// Serial restore.
	rs2 := rom.NewState(cp.NewState(), 0)
	rs2.SetModal(mu, vstar)
	got := make([]float64, steps)
	rs2.StepTrace(got, src[steps:], 1e-12, 1e-10)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("serial restore step %d: %v != %v", i, got[i], want[i])
		}
	}

	// Batch lanes restored from the same modal snapshot.
	const lanes = 3
	rb := rom.NewBatch(lanes)
	dst := make([][]float64, lanes)
	srcs := make([][]float64, lanes)
	mul := make([]float64, lanes)
	div := make([]float64, lanes)
	for l := 0; l < lanes; l++ {
		rb.SetLaneModal(l, mu, vstar)
		dst[l] = make([]float64, steps)
		srcs[l] = src[steps:]
		mul[l], div[l] = 1e-12, 1e-10
	}
	rb.StepTraceBatch(dst, srcs, mul, div, steps)
	back := make([]float64, m)
	for l := 0; l < lanes; l++ {
		for i := range want {
			if dst[l][i] != want[i] {
				t.Fatalf("batch lane %d step %d: %v != %v", l, i, dst[l][i], want[i])
			}
		}
		if v := rb.LaneModal(l, back); v != vstar {
			t.Fatalf("lane %d vstar %v, want %v", l, v, vstar)
		}
	}
}
