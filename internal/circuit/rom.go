package circuit

// Reduced-order replay model (ROM).
//
// The trapezoidal transient step is exactly linear: with one reduced
// coordinate per reactive element —
//
//	capacitor c:  y_c = g_c·capV_c + capI_c   (the companion RHS current)
//	inductor  l:  y_l = g_l·indI_l + v_prev   (companion branch drive)
//
// — the whole Step/StepTrace recurrence collapses to
//
//	y' = F·y + Σ_s g_s·val_s        v = c·y + Σ_s d_s·val_s
//
// where the sums run over the V/I sources. F, the input columns g_s
// and the output row (c, d_s) are recovered *exactly* by probing the
// factored LU with unit vectors: the cap update is y'_c = 2g·vNew −
// y_c and the inductor update y'_l = g·x'[br] + v', both linear in the
// solve result. The reduced order m (six for the shipped 3-stage PDN)
// replaces the full MNA solve.
//
// CompileROM then eigendecomposes F into decoupled 1×1 and 2×2 real
// modal sections, so one replay cycle costs a handful of FMAs per mode
// instead of a dense triangular substitution, and the per-lane state
// is small enough to live entirely in registers — the batch kernel
// streams each lane through the serial kernel with two memory streams,
// keeping per-lane cost flat to arbitrary widths. Per-lane equilibrium
// folding absorbs the constant drive terms (supply, leakage) once per
// lane-load.
//
// The ROM is an approximation only through the eigendecomposition's
// roundoff: its quality is measured at compile time against the exact
// kernel's step/impulse/resonant responses (ErrPerAmpV) and enforced
// by the caller against a stated voltage tolerance. The exact LU
// kernel (lu.go, transient.go) remains the bit-identity oracle.

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// romErrSafety scales the worst calibration error into the advertised
// per-amp bound, covering drive shapes the calibration suite does not
// enumerate (error is linear in drive amplitude for an LTI model).
const romErrSafety = 32

// romCalibrateSteps is the horizon, in cycles, of each calibration
// drive comparison.
const romCalibrateSteps = 16384

// romPair is one 2×2 modal section for a complex eigenvalue pair
// α ± iβ: state (m0, m1) advances by the rotation-scale block
// [[α, β], [−β, α]] plus the projected drive (h0, h1), and contributes
// c0·m0 + c1·m1 to the output.
type romPair struct {
	al, be float64
	h0, h1 float64
	c0, c1 float64
}

// romSingle is one 1×1 modal section for a real eigenvalue.
type romSingle struct {
	al float64
	h  float64
	c  float64
}

// ROM is a compiled reduced-order replay system for one (output node,
// driven source) pair over a Compiled transient system. It is
// immutable after CompileROM and safe for concurrent use by any number
// of ROMState/ROMBatch instances.
type ROM struct {
	cp  *Compiled
	nd  Node
	ref int
	m   int // reduced order: #caps + #inductors

	// Modal kernel coefficients (pairs first, then singles; modal
	// coordinate j of a pair i is 2i, 2i+1).
	pairs   []romPair
	singles []romSingle
	du      float64 // direct feedthrough of the driven source

	// Lane-load machinery in the reduced y basis.
	luS    *luReal     // S factored: μ = S⁻¹(y − y*)
	luEq   *luReal     // (I − F) factored: equilibrium solve
	gcols  [][]float64 // per source: input column g_s
	dsrc   []float64   // per source: output feedthrough d_s
	srcEls []int       // element indices of the V/I sources
	cy     []float64   // output row over y

	errPerAmp float64 // calibrated |Δv| bound per amp of drive
}

// romSys is the exact reduced linear system probed out of a Compiled:
// y' = F·y + Σ g_s·val_s, v = cy·y + Σ d_s·val_s.
type romSys struct {
	m      int
	f      []float64 // m×m row-major
	cy     []float64
	gcols  [][]float64
	dsrc   []float64
	srcEls []int
}

// reduceOrder returns the reduced state dimension of cp.
func (cp *Compiled) reduceOrder() int { return len(cp.capOps) + len(cp.indOps) }

// reduceState extracts the reduced coordinates from a live Transient:
// companion currents per capacitor, companion branch drives per
// inductor (in capOps/indOps order).
func (cp *Compiled) reduceState(t *Transient, y []float64) {
	nc := len(cp.capOps)
	for j := range cp.capOps {
		op := &cp.capOps[j]
		y[j] = op.g*t.capV[op.ei] + t.capI[op.ei]
	}
	for j := range cp.indOps {
		op := &cp.indOps[j]
		var vp float64
		if op.ia >= 0 {
			vp = t.x[op.ia]
		}
		if op.ib >= 0 {
			vp -= t.x[op.ib]
		}
		y[nc+j] = op.g*t.indI[op.ei] + vp
	}
}

// reduceProbe advances the reduced state one step through the exact
// LU: assemble the RHS from (y, svals), solve, and read back the new
// reduced state and the output voltage. b and x are n-length scratch.
func (cp *Compiled) reduceProbe(y, svals []float64, di int, ynew []float64, b, x []float64) float64 {
	for i := range b {
		b[i] = 0
	}
	nc := len(cp.capOps)
	for j := range cp.capOps {
		op := &cp.capOps[j]
		if op.ia >= 0 {
			b[op.ia] += y[j]
		}
		if op.ib >= 0 {
			b[op.ib] -= y[j]
		}
	}
	for j := range cp.indOps {
		op := &cp.indOps[j]
		b[op.br] = -y[nc+j]
	}
	for oi := range cp.stepOps {
		op := &cp.stepOps[oi]
		switch op.kind {
		case kindV:
			b[op.br] = svals[op.ei]
		case kindI:
			if op.ia >= 0 {
				b[op.ia] -= svals[op.ei]
			}
			if op.ib >= 0 {
				b[op.ib] += svals[op.ei]
			}
		}
	}
	cp.lu.solve(b, x)
	for j := range cp.capOps {
		op := &cp.capOps[j]
		var vNew float64
		if op.ia >= 0 {
			vNew = x[op.ia]
		}
		if op.ib >= 0 {
			vNew -= x[op.ib]
		}
		ynew[j] = 2*op.g*vNew - y[j]
	}
	for j := range cp.indOps {
		op := &cp.indOps[j]
		var vp float64
		if op.ia >= 0 {
			vp = x[op.ia]
		}
		if op.ib >= 0 {
			vp -= x[op.ib]
		}
		ynew[nc+j] = op.g*x[op.br] + vp
	}
	return x[di]
}

// reduceSystem probes out the exact reduced linear system for output
// node nd.
func (cp *Compiled) reduceSystem(nd Node) (*romSys, error) {
	m := cp.reduceOrder()
	if m == 0 {
		return nil, errors.New("circuit: ROM needs at least one reactive element")
	}
	di := int(nd) - 1
	if di < 0 || di >= cp.nv {
		return nil, fmt.Errorf("circuit: ROM output node %d out of range", nd)
	}
	sys := &romSys{
		m:  m,
		f:  make([]float64, m*m),
		cy: make([]float64, m),
	}
	for oi := range cp.stepOps {
		op := &cp.stepOps[oi]
		if op.kind == kindV || op.kind == kindI {
			sys.srcEls = append(sys.srcEls, op.ei)
		}
	}
	y := make([]float64, m)
	ynew := make([]float64, m)
	svals := make([]float64, len(cp.sources0))
	b := make([]float64, cp.n)
	x := make([]float64, cp.n)
	for j := 0; j < m; j++ {
		for i := range y {
			y[i] = 0
		}
		y[j] = 1
		sys.cy[j] = cp.reduceProbe(y, svals, di, ynew, b, x)
		for i := 0; i < m; i++ {
			sys.f[i*m+j] = ynew[i]
		}
	}
	for i := range y {
		y[i] = 0
	}
	for _, ei := range sys.srcEls {
		svals[ei] = 1
		col := make([]float64, m)
		d := cp.reduceProbe(y, svals, di, col, b, x)
		svals[ei] = 0
		sys.gcols = append(sys.gcols, col)
		sys.dsrc = append(sys.dsrc, d)
	}
	return sys, nil
}

// CompileROM builds the reduced-order modal replay system for output
// node nd driven through source ref (a SourceRef index of a V or I
// element). It fails — and the caller must fall back to the exact
// kernel — when the reduced step map cannot be diagonalized accurately:
// clustered or defective modes, an ill-conditioned eigenbasis, an
// unstable discretization, or a singular equilibrium. On success the
// worst calibrated deviation from the exact kernel, per amp of drive,
// is available as ErrPerAmpV.
func (cp *Compiled) CompileROM(nd Node, ref int) (*ROM, error) {
	sys, err := cp.reduceSystem(nd)
	if err != nil {
		return nil, err
	}
	m := sys.m
	refIdx := -1
	for si, ei := range sys.srcEls {
		if ei == ref {
			refIdx = si
		}
	}
	if refIdx < 0 {
		return nil, fmt.Errorf("circuit: ROM driven source ref %d is not a V/I element", ref)
	}

	wr, wi, err := eigenValues(sys.f, m)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		if math.Hypot(wr[i], wi[i]) > 1+1e-9 {
			return nil, errors.New("circuit: ROM step map is unstable")
		}
	}

	// Deterministic mode order: complex pairs by descending frequency,
	// then real modes by descending eigenvalue.
	type mode struct{ re, im float64 }
	var pairsIn, realsIn []mode
	for i := 0; i < m; i++ {
		switch {
		case wi[i] > 0:
			pairsIn = append(pairsIn, mode{wr[i], wi[i]})
		case wi[i] == 0:
			realsIn = append(realsIn, mode{wr[i], 0})
		}
	}
	sort.Slice(pairsIn, func(a, b int) bool {
		if pairsIn[a].im != pairsIn[b].im {
			return pairsIn[a].im > pairsIn[b].im
		}
		return pairsIn[a].re > pairsIn[b].re
	})
	sort.Slice(realsIn, func(a, b int) bool { return realsIn[a].re > realsIn[b].re })
	if 2*len(pairsIn)+len(realsIn) != m {
		return nil, errors.New("circuit: ROM eigenvalue pairing failed")
	}

	// Recover eigenvectors and assemble the real modal basis S and the
	// block-diagonal T (pairs occupy columns 2i, 2i+1).
	s := make([]float64, m*m)
	tmat := make([]float64, m*m)
	col := 0
	rom := &ROM{
		cp: cp, nd: nd, ref: ref, m: m,
		gcols: sys.gcols, dsrc: sys.dsrc, srcEls: sys.srcEls, cy: sys.cy,
		du: sys.dsrc[refIdx],
	}
	for _, md := range pairsIn {
		v, lam, err := eigenVector(sys.f, m, md.re, md.im)
		if err != nil {
			return nil, err
		}
		al, be := real(lam), imag(lam)
		if be < 0 {
			be = -be
			for i := range v {
				v[i] = complex(real(v[i]), -imag(v[i]))
			}
		}
		for i := 0; i < m; i++ {
			s[i*m+col] = real(v[i])
			s[i*m+col+1] = imag(v[i])
		}
		tmat[col*m+col] = al
		tmat[col*m+col+1] = be
		tmat[(col+1)*m+col] = -be
		tmat[(col+1)*m+col+1] = al
		rom.pairs = append(rom.pairs, romPair{al: al, be: be})
		col += 2
	}
	for _, md := range realsIn {
		v, lam, err := eigenVector(sys.f, m, md.re, 0)
		if err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			s[i*m+col] = real(v[i])
		}
		tmat[col*m+col] = real(lam)
		rom.singles = append(rom.singles, romSingle{al: real(lam)})
		col++
	}

	// Validate the decomposition: small relative residual F·S − S·T and
	// a usable condition number for S.
	fnorm, snorm := matInfNorm(sys.f, m), matInfNorm(s, m)
	res := 0.0
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var fs, st float64
			for k := 0; k < m; k++ {
				fs += sys.f[i*m+k] * s[k*m+j]
				st += s[i*m+k] * tmat[k*m+j]
			}
			if d := math.Abs(fs - st); d > res {
				res = d
			}
		}
	}
	if res > 1e-8*(1+fnorm)*(1+snorm) {
		return nil, errors.New("circuit: ROM modal residual too large")
	}
	luS, err := factorReal(s, m)
	if err != nil {
		return nil, fmt.Errorf("circuit: ROM modal basis singular: %w", err)
	}
	rom.luS = luS
	// cond_∞(S) via explicit inverse columns (m is tiny).
	sinv := make([]float64, m*m)
	e := make([]float64, m)
	xcol := make([]float64, m)
	for j := 0; j < m; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		luS.solve(e, xcol)
		for i := 0; i < m; i++ {
			sinv[i*m+j] = xcol[i]
		}
	}
	if snorm*matInfNorm(sinv, m) > 1e10 {
		return nil, errors.New("circuit: ROM modal basis ill-conditioned")
	}

	// Equilibrium solver (I − F); a singular system means the network
	// has a mode with no DC restoring path and the fold is undefined.
	ieqf := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			ieqf[i*m+j] = -sys.f[i*m+j]
		}
		ieqf[i*m+i] += 1
	}
	luEq, err := factorReal(ieqf, m)
	if err != nil {
		return nil, fmt.Errorf("circuit: ROM equilibrium singular: %w", err)
	}
	rom.luEq = luEq

	// Modal output row c̃ = Sᵀ·cy and drive column h̃ = S⁻¹·g_ref.
	hm := make([]float64, m)
	luS.solve(sys.gcols[refIdx], hm)
	cm := make([]float64, m)
	for j := 0; j < m; j++ {
		var acc float64
		for i := 0; i < m; i++ {
			acc += s[i*m+j] * sys.cy[i]
		}
		cm[j] = acc
	}
	for i := range rom.pairs {
		rom.pairs[i].h0, rom.pairs[i].h1 = hm[2*i], hm[2*i+1]
		rom.pairs[i].c0, rom.pairs[i].c1 = cm[2*i], cm[2*i+1]
	}
	base := 2 * len(rom.pairs)
	for i := range rom.singles {
		rom.singles[i].h = hm[base+i]
		rom.singles[i].c = cm[base+i]
	}

	rom.calibrate()
	return rom, nil
}

// ErrPerAmpV is the calibrated worst-case die-voltage deviation of the
// ROM from the exact kernel, per amp of drive amplitude, including the
// safety factor. Callers gate the ROM on errPerAmp × maxAmp against
// their stated tolerance.
func (r *ROM) ErrPerAmpV() float64 { return r.errPerAmp }

// Order returns the reduced state dimension.
func (r *ROM) Order() int { return r.m }

// Sections returns the modal section sizes in state order: one 2 per
// complex eigenvalue pair, then one 1 per real mode. The kernel never
// couples sections, so any map probed out of one-period ROM runs is
// exactly block-diagonal over this partition. The slice is freshly
// allocated.
func (r *ROM) Sections() []int {
	secs := make([]int, 0, len(r.pairs)+len(r.singles))
	for range r.pairs {
		secs = append(secs, 2)
	}
	for range r.singles {
		secs = append(secs, 1)
	}
	return secs
}

// calibrate measures the ROM against the exact kernel on a suite of
// unit-amplitude drives — impulse, step, a square wave at each modal
// resonance, and broadband noise — over romCalibrateSteps cycles, and
// records the worst deviation scaled by romErrSafety. Error is linear
// in drive amplitude for this LTI model, so the bound scales to any
// trace by its peak current.
func (r *ROM) calibrate() {
	h := romCalibrateSteps
	drives := make([][]float64, 0, 3+len(r.pairs))
	impulse := make([]float64, h)
	impulse[0] = 1
	drives = append(drives, impulse)
	step := make([]float64, h)
	for i := range step {
		step[i] = 1
	}
	drives = append(drives, step)
	for _, pr := range r.pairs {
		theta := math.Atan2(pr.be, pr.al)
		if theta <= 0 {
			continue
		}
		period := int(math.Round(2 * math.Pi / theta))
		if period < 2 || period > h/2 {
			continue // slower than the horizon; the step drive covers it
		}
		half := period / 2
		if half < 1 {
			half = 1
		}
		sq := make([]float64, h)
		for i := range sq {
			if (i/half)%2 == 0 {
				sq[i] = 1
			}
		}
		drives = append(drives, sq)
	}
	noise := make([]float64, h)
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range noise {
		seed = seed*6364136223846793005 + 1442695040888963407
		noise[i] = float64(seed>>11) / float64(1<<53)
	}
	drives = append(drives, noise)

	dstE := make([]float64, h)
	dstR := make([]float64, h)
	worst := 0.0
	for _, drive := range drives {
		te := r.cp.NewState()
		te.StepTrace(r.nd, r.ref, dstE, drive, 1, 1, 0)
		rs := r.NewState(r.cp.NewState(), 0)
		rs.StepTrace(dstR, drive, 1, 1)
		for i := range dstE {
			if d := math.Abs(dstE[i] - dstR[i]); d > worst {
				worst = d
			}
		}
	}
	r.errPerAmp = worst * romErrSafety
}

// fold computes a lane's equilibrium offset for constant drive `add`
// on the driven source (all other sources at t's live values), then
// the modal deviation μ = S⁻¹(y − y*) of t's current state. Returns
// the folded constant output term vstar = c·y* + Σ d_s·val_s.
// Scratch slices are length m, owned by the caller.
func (r *ROM) fold(t *Transient, add float64, mu, y, rhs, ystar []float64) float64 {
	if t.cp != r.cp {
		panic("circuit: ROM fold across different compiled systems")
	}
	r.cp.reduceState(t, y)
	for i := range rhs {
		rhs[i] = 0
	}
	vstar := 0.0
	for si, ei := range r.srcEls {
		val := t.sources[ei]
		if ei == r.ref {
			val = add
		}
		col := r.gcols[si]
		for i := range rhs {
			rhs[i] += col[i] * val
		}
		vstar += r.dsrc[si] * val
	}
	r.luEq.solve(rhs, ystar)
	for i := range ystar {
		vstar += r.cy[i] * ystar[i]
		y[i] -= ystar[i]
	}
	r.luS.solve(y, mu)
	return vstar
}

// ROMState is a live serial reduced-order replay: modal deviation
// state μ plus the folded equilibrium output. Its StepTrace performs
// per step exactly the floating-point operations of one ROMBatch lane,
// so serial and batch ROM replays are bit-identical.
type ROMState struct {
	rom   *ROM
	mu    []float64
	vstar float64
}

// NewState folds t's current state (and the constant drive add on the
// driven source) into a fresh serial ROM replay state. t is not
// modified and is free for other use afterwards.
func (r *ROM) NewState(t *Transient, add float64) *ROMState {
	m := r.m
	st := &ROMState{rom: r, mu: make([]float64, m)}
	y := make([]float64, m)
	rhs := make([]float64, m)
	ystar := make([]float64, m)
	st.vstar = r.fold(t, add, st.mu, y, rhs, ystar)
	return st
}

// Order returns the reduced state dimension m.
func (st *ROMState) Order() int { return st.rom.m }

// Sections returns the modal section sizes (see ROM.Sections).
func (st *ROMState) Sections() []int { return st.rom.Sections() }

// Modal copies the modal deviation state μ into dst (length ≥ m) and
// returns the folded constant output term vstar. Together they are the
// replay's complete dynamic state, so a Modal/SetModal round trip
// resumes a replay bit-identically.
func (st *ROMState) Modal(dst []float64) float64 {
	copy(dst[:st.rom.m], st.mu)
	return st.vstar
}

// SetModal overwrites the modal deviation state and folded constant
// output term, e.g. to jump a periodic replay to an analytically
// computed boundary.
func (st *ROMState) SetModal(src []float64, vstar float64) {
	if len(src) < st.rom.m {
		panic("circuit: ROM modal state shorter than order")
	}
	copy(st.mu, src[:st.rom.m])
	st.vstar = vstar
}

// StepTrace advances the reduced model len(src) steps: step s drives
// the compiled source with src[s]*(mul/div) above the folded constant
// level and records the output node's voltage into dst[s]. Unlike the
// exact kernel there is no add term — the constant drive was folded
// into the equilibrium at NewState time — and the mul/div scale is
// collapsed to one reciprocal factor up front (the ROM has no bitwise
// contract with the exact kernel, only with its own batch form, which
// runs this same kernel per lane).
func (st *ROMState) StepTrace(dst, src []float64, mul, div float64) {
	n := len(src)
	if len(dst) < n {
		panic("circuit: ROM StepTrace dst shorter than src")
	}
	romStepKernel(st.rom, st.mu, st.vstar, dst[:n], src, mul, div, n)
}

// romStepKernel is the modal recursion shared verbatim by the serial
// and batch replay paths — one code path means serial and batch ROM
// replays are bit-identical by construction. The modal state (a few
// coordinates) and section coefficients all fit in registers, so the
// per-step cost is a handful of FMAs per mode plus one streaming load
// (src) and store (dst): the loop is bound by the independent
// per-section dependency chains, not memory.
func romStepKernel(r *ROM, mu []float64, vstar float64, dst, src []float64, mul, div float64, n int) {
	pairs, singles := r.pairs, r.singles
	du := r.du
	rmul := mul / div
	for s := 0; s < n; s++ {
		ut := src[s] * rmul
		acc := vstar + du*ut
		off := 0
		for pi := range pairs {
			pr := pairs[pi]
			m0, m1 := mu[off], mu[off+1]
			acc += pr.c0*m0 + pr.c1*m1
			mu[off] = pr.al*m0 + pr.be*m1 + pr.h0*ut
			mu[off+1] = pr.al*m1 - pr.be*m0 + pr.h1*ut
			off += 2
		}
		for si := range singles {
			sg := singles[si]
			m0 := mu[off]
			acc += sg.c * m0
			mu[off] = sg.al*m0 + sg.h*ut
			off++
		}
		dst[s] = acc
	}
}

// ROMBatch advances several independent ROM replays over one shared
// ROM. Lane state is held lane-minor structure-of-arrays
// ([coord*lanes + l]) like the exact TransientBatch, so lane loading,
// swap-remove retirement and mid-stream repacking are uniform across
// both batch kinds — but unlike the exact kernel, whose per-cycle
// triangular solve is memory-bound and must amortize matrix traffic
// across lanes, the ROM's whole per-lane working set (a few modal
// coordinates plus section coefficients) fits in registers. The step
// kernel therefore runs lane-major: each lane streams its entire chunk
// through romStepKernel with two memory streams (src in, dst out) and
// no shared mutable state, which keeps per-lane cost flat to arbitrary
// widths instead of degrading when dozens of lane streams thrash the
// prefetchers.
type ROMBatch struct {
	rom   *ROM
	lanes int
	mu    []float64 // [m × lanes], lane-minor
	vstar []float64
	// scratch (length m): lane-load fold and kernel gather/scatter
	y, rhs, ystar, muLane []float64
}

// NewBatch returns a ROM batch of `lanes` unloaded lanes; load each
// via LoadLane before stepping.
func (r *ROM) NewBatch(lanes int) *ROMBatch {
	if lanes < 1 {
		panic("circuit: ROM batch needs at least one lane")
	}
	return &ROMBatch{
		rom:    r,
		lanes:  lanes,
		mu:     make([]float64, r.m*lanes),
		vstar:  make([]float64, lanes),
		y:      make([]float64, r.m),
		rhs:    make([]float64, r.m),
		ystar:  make([]float64, r.m),
		muLane: make([]float64, r.m),
	}
}

// Lanes returns the current number of lanes (shrinks via DropLane).
func (rb *ROMBatch) Lanes() int { return rb.lanes }

func (rb *ROMBatch) checkLane(l int) {
	if l < 0 || l >= rb.lanes {
		panic("circuit: ROM lane index out of range")
	}
}

// LoadLane folds t's current state into lane l, with constant drive
// add on the driven source (see ROM.NewState).
func (rb *ROMBatch) LoadLane(l int, t *Transient, add float64) {
	rb.checkLane(l)
	muCol := rb.ystar // reused as μ destination after the fold's last solve
	rb.vstar[l] = rb.rom.fold(t, add, muCol, rb.y, rb.rhs, rb.ystar)
	scatter(rb.mu, muCol, rb.lanes, l)
}

// SetLaneModal loads lane l directly from a modal deviation state and
// folded constant term. The periodic probe path shares one fold across
// all its lanes (reference plus unit modal perturbations), so loading
// modal coordinates directly avoids re-folding per lane.
func (rb *ROMBatch) SetLaneModal(l int, mu []float64, vstar float64) {
	rb.checkLane(l)
	if len(mu) < rb.rom.m {
		panic("circuit: ROM modal state shorter than order")
	}
	scatter(rb.mu, mu[:rb.rom.m], rb.lanes, l)
	rb.vstar[l] = vstar
}

// LaneModal copies lane l's modal deviation state into dst (length ≥
// m) and returns the lane's folded constant term.
func (rb *ROMBatch) LaneModal(l int, dst []float64) float64 {
	rb.checkLane(l)
	gather(dst[:rb.rom.m], rb.mu, rb.lanes, l)
	return rb.vstar[l]
}

// DropLane retires lane l by swap-remove (the last lane moves into
// slot l) and shrinks the batch, mirroring TransientBatch.DropLane.
func (rb *ROMBatch) DropLane(l int) {
	rb.checkLane(l)
	L := rb.lanes
	rb.mu = dropCol(rb.mu, L, l)
	rb.vstar[l] = rb.vstar[L-1]
	rb.vstar = rb.vstar[:L-1]
	rb.lanes = L - 1
}

// StepTraceBatch advances every lane n steps: at step s, lane l drives
// the compiled source with src[l][s]*mul[l]/div[l] above its folded
// constant level and records the output voltage into dst[l][s]. Each
// lane's modal column is gathered out of the SoA store, streamed
// through romStepKernel — the identical code path ROMState.StepTrace
// runs, so every lane is bit-identical to a serial ROM replay at any
// batch width — and scattered back. The gather/scatter costs O(m) per
// lane per call, amortized over the n-step chunk.
func (rb *ROMBatch) StepTraceBatch(dst, src [][]float64, mul, div []float64, n int) {
	r := rb.rom
	L := rb.lanes
	if L == 0 || n == 0 {
		return
	}
	if len(dst) < L || len(src) < L || len(mul) < L || len(div) < L {
		panic("circuit: ROM StepTraceBatch lane parameters shorter than batch")
	}
	for l := 0; l < L; l++ {
		if len(src[l]) < n || len(dst[l]) < n {
			panic("circuit: ROM StepTraceBatch lane buffer shorter than n")
		}
	}
	// AVX2 builds step 4 adjacent lanes per kernel pass: the lane-minor
	// SoA already holds them contiguously, and the vector kernel's
	// per-slot op order is romStepKernel's exactly, so the split is
	// invisible in the output bits.
	l := 0
	if haveAVX2 {
		for ; l+4 <= L; l += 4 {
			rb.stepLanes4AVX2(l, dst, src, mul, div, n)
		}
	}
	muLane := rb.muLane
	for ; l < L; l++ {
		gather(muLane, rb.mu, L, l)
		romStepKernel(r, muLane, rb.vstar[l], dst[l][:n], src[l], mul[l], div[l], n)
		scatter(rb.mu, muLane, L, l)
	}
}
