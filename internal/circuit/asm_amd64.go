//go:build amd64 && !noasm

package circuit

import "unsafe"

// AVX2 assembly fast paths for the two replay hot kernels: the
// register-blocked LU substitution lanes (solveBatch) and the ROM
// modal step (romStepKernel) in 4-lane groups. Both map lanes to SIMD
// slots so each lane performs exactly the scalar kernel's
// floating-point operation sequence — multiply then subtract as two
// rounded operations, never a fused multiply-add — which makes the
// assembly bit-identical to the pure-Go kernels by construction, not
// merely close. The `noasm` build tag (or a non-amd64 target, or
// pre-AVX2 hardware) falls back to the unchanged Go kernels.

//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func fwdRowAVX2(row []float64, x []float64, i, L int)

//go:noescape
func backRowAVX2(row []float64, d float64, x []float64, i, base, L int)

//go:noescape
func romStep4AVX2(a *romStep4Args)

// haveAVX2 gates the assembly kernels on hardware and OS support:
// CPUID must report OSXSAVE+AVX and AVX2, and XCR0 must show the OS
// saving XMM+YMM state across context switches.
var haveAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuidex(1, 0)
	const osxsaveAVX = 1<<27 | 1<<28
	if c&osxsaveAVX != osxsaveAVX {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 {
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	return b&(1<<5) != 0
}

// solveBatchAVX2 runs the substitution sweeps through the AVX2 row
// kernels: per row, the shared coefficients broadcast across SIMD
// slots holding adjacent lanes (contiguous in the lane-minor layout),
// exactly the amortization the Go register blocks perform — but with
// 4 lanes per arithmetic instruction. The lane remainder (L mod 4) is
// handled inside the row kernels with VEX scalar ops in the same
// operation order.
func (f *luReal) solveBatchAVX2(b, x []float64, L int) {
	n := f.n
	lu := f.lu
	for i := 0; i < n; i++ {
		copy(x[i*L:i*L+L], b[f.perm[i]*L:f.perm[i]*L+L])
	}
	for i := 1; i < n; i++ {
		fwdRowAVX2(lu[i*n:i*n+i], x, i, L)
	}
	for i := n - 1; i >= 0; i-- {
		backRowAVX2(lu[i*n+i+1:i*n+n], lu[i*n+i], x, i, (i+1)*L, L)
	}
}

// romStep4Args is the argument block for romStep4AVX2. Every field is
// 8 bytes, so the assembly's fixed offsets follow the declaration
// order; the layout guards below pin them at compile time.
type romStep4Args struct {
	pairs    unsafe.Pointer // *romPair, nPairs entries
	nPairs   int64
	singles  unsafe.Pointer // *romSingle, nSingles entries
	nSingles int64
	du       float64
	vstar    unsafe.Pointer // *float64: 4 contiguous lane equilibria
	mu       unsafe.Pointer // *float64: lane-minor SoA column base, 4 contiguous lanes per row
	muStride int64          // SoA row stride in bytes (lanes × 8)
	dst      [4]unsafe.Pointer
	src      [4]unsafe.Pointer
	rmul     [4]float64
	n        int64
}

// Compile-time layout guards: the assembly addresses romStep4Args,
// romPair and romSingle by fixed byte offsets.
var (
	_ = [1]struct{}{}[unsafe.Sizeof(romStep4Args{})-168]
	_ = [1]struct{}{}[unsafe.Offsetof(romStep4Args{}.du)-32]
	_ = [1]struct{}{}[unsafe.Offsetof(romStep4Args{}.vstar)-40]
	_ = [1]struct{}{}[unsafe.Offsetof(romStep4Args{}.mu)-48]
	_ = [1]struct{}{}[unsafe.Offsetof(romStep4Args{}.dst)-64]
	_ = [1]struct{}{}[unsafe.Offsetof(romStep4Args{}.src)-96]
	_ = [1]struct{}{}[unsafe.Offsetof(romStep4Args{}.rmul)-128]
	_ = [1]struct{}{}[unsafe.Offsetof(romStep4Args{}.n)-160]
	_ = [1]struct{}{}[unsafe.Sizeof(romPair{})-48]
	_ = [1]struct{}{}[unsafe.Sizeof(romSingle{})-24]
)

// stepLanes4AVX2 advances lanes l..l+3 of rb n steps through the AVX2
// modal kernel. The lane-minor SoA layout puts the 4 lanes' modal
// coordinates adjacent in memory, so the kernel loads and stores them
// as single 256-bit vectors with no gather/scatter; per SIMD slot the
// arithmetic is romStepKernel's exactly, so each lane stays
// bit-identical to a serial ROMState replay.
func (rb *ROMBatch) stepLanes4AVX2(l int, dst, src [][]float64, mul, div []float64, n int) {
	r := rb.rom
	a := romStep4Args{
		nPairs:   int64(len(r.pairs)),
		nSingles: int64(len(r.singles)),
		du:       r.du,
		vstar:    unsafe.Pointer(&rb.vstar[l]),
		mu:       unsafe.Pointer(&rb.mu[l]),
		muStride: int64(rb.lanes) * 8,
		n:        int64(n),
	}
	if len(r.pairs) > 0 {
		a.pairs = unsafe.Pointer(&r.pairs[0])
	}
	if len(r.singles) > 0 {
		a.singles = unsafe.Pointer(&r.singles[0])
	}
	for k := 0; k < 4; k++ {
		a.dst[k] = unsafe.Pointer(&dst[l+k][0])
		a.src[k] = unsafe.Pointer(&src[l+k][0])
		a.rmul[k] = mul[l+k] / div[l+k]
	}
	romStep4AVX2(&a)
}
