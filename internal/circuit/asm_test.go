package circuit

import (
	"fmt"
	"math/rand"
	"testing"
)

// These suites pin the asm/Go kernel equivalence contract: whatever
// kernel solveBatch and ROMBatch.StepTraceBatch dispatch to on this
// build (AVX2 assembly on amd64, pure Go under `noasm` or elsewhere)
// must be bit-identical to the pure-Go reference at every batch
// width. CI runs them both with and without the noasm tag.

// testLU factors a random diagonally dominant n×n system.
func testLU(t testing.TB, n int, seed int64) *luReal {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = rng.NormFloat64()
		}
		a[i*n+i] += float64(n) + 1
	}
	lu, err := factorReal(a, n)
	if err != nil {
		t.Fatal(err)
	}
	return lu
}

// romStepBatchGo is the pure-Go lane-major batch loop — the reference
// StepTraceBatch's dispatch is checked against.
func romStepBatchGo(rb *ROMBatch, dst, src [][]float64, mul, div []float64, n int) {
	L := rb.lanes
	muLane := rb.muLane
	for l := 0; l < L; l++ {
		gather(muLane, rb.mu, L, l)
		romStepKernel(rb.rom, muLane, rb.vstar[l], dst[l][:n], src[l], mul[l], div[l], n)
		scatter(rb.mu, muLane, L, l)
	}
}

func TestSolveBatchDispatchBitIdentical(t *testing.T) {
	t.Logf("haveAVX2 = %v", haveAVX2)
	for _, n := range []int{1, 3, 15, 24} {
		lu := testLU(t, n, int64(100+n))
		rng := rand.New(rand.NewSource(int64(n)))
		for _, L := range []int{1, 2, 4, 8, 16, 32, 7, 13} {
			b := make([]float64, n*L)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			got := make([]float64, n*L)
			want := make([]float64, n*L)
			lu.solveBatch(b, got, L)
			lu.solveBatchGo(b, want, L)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d L=%d: dispatch[%d] = %v, pure Go %v", n, L, i, got[i], want[i])
				}
			}
			// And per lane against the serial solver — the original
			// bit-identity oracle.
			bl := make([]float64, n)
			xl := make([]float64, n)
			for l := 0; l < L; l++ {
				gather(bl, b, L, l)
				lu.solve(bl, xl)
				for i := 0; i < n; i++ {
					if got[i*L+l] != xl[i] {
						t.Fatalf("n=%d L=%d lane %d row %d: batch %v != serial %v", n, L, l, i, got[i*L+l], xl[i])
					}
				}
			}
		}
	}
}

func TestROMStepBatchDispatchBitIdentical(t *testing.T) {
	cp, rom, _, _ := romFixture(t, pdnLadder3)
	const steps = 500
	for _, lanes := range []int{1, 2, 4, 8, 16, 32, 6, 11} {
		src := batchDrive(lanes, steps)
		mul := make([]float64, lanes)
		div := make([]float64, lanes)
		got := make([][]float64, lanes)
		want := make([][]float64, lanes)
		rb := rom.NewBatch(lanes)
		ref := rom.NewBatch(lanes)
		for l := 0; l < lanes; l++ {
			mul[l] = 1e-12
			div[l] = 1e-10 * (1.2 + 0.02*float64(l))
			got[l] = make([]float64, steps)
			want[l] = make([]float64, steps)
			add := 0.1 + 0.05*float64(l)
			rb.LoadLane(l, cp.NewState(), add)
			ref.LoadLane(l, cp.NewState(), add)
		}
		rb.StepTraceBatch(got, src, mul, div, steps)
		romStepBatchGo(ref, want, src, mul, div, steps)
		for l := 0; l < lanes; l++ {
			for i := 0; i < steps; i++ {
				if got[l][i] != want[l][i] {
					t.Fatalf("lanes=%d lane %d step %d: dispatch %v != pure Go %v", lanes, l, i, got[l][i], want[l][i])
				}
			}
		}
		// End states must match too — the next chunk continues from mu.
		gm := make([]float64, rom.Order())
		wm := make([]float64, rom.Order())
		for l := 0; l < lanes; l++ {
			gv := rb.LaneModal(l, gm)
			wv := ref.LaneModal(l, wm)
			if gv != wv {
				t.Fatalf("lanes=%d lane %d: vstar %v != %v", lanes, l, gv, wv)
			}
			for i := range gm {
				if gm[i] != wm[i] {
					t.Fatalf("lanes=%d lane %d coord %d: mu %v != %v", lanes, l, i, gm[i], wm[i])
				}
			}
		}
	}
}

// BenchmarkSolveBatchKernel compares the pure-Go register-blocked
// substitution against the AVX2 row kernels at replay-realistic sizes
// (n=15 is the shipped PDN's MNA dimension).
func BenchmarkSolveBatchKernel(b *testing.B) {
	const n = 15
	lu := testLU(b, n, 42)
	for _, L := range []int{8, 32} {
		rhs := make([]float64, n*L)
		x := make([]float64, n*L)
		rng := rand.New(rand.NewSource(9))
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		b.Run(fmt.Sprintf("go/Lanes%d", L), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lu.solveBatchGo(rhs, x, L)
			}
		})
		b.Run(fmt.Sprintf("asm/Lanes%d", L), func(b *testing.B) {
			if !haveAVX2 {
				b.Skip("AVX2 kernels unavailable in this build")
			}
			for i := 0; i < b.N; i++ {
				lu.solveBatchAVX2(rhs, x, L)
			}
		})
	}
}

// BenchmarkROMStepBatchKernel compares the lane-major pure-Go modal
// kernel against the 4-lane AVX2 groups.
func BenchmarkROMStepBatchKernel(b *testing.B) {
	cp, rom, _, _ := romFixture(b, pdnLadder3)
	const steps = 65536
	for _, lanes := range []int{8, 32} {
		src := batchDrive(lanes, steps)
		dst := make([][]float64, lanes)
		mul := make([]float64, lanes)
		div := make([]float64, lanes)
		for l := 0; l < lanes; l++ {
			dst[l] = make([]float64, steps)
			mul[l], div[l] = 1, 1
		}
		mk := func() *ROMBatch {
			rb := rom.NewBatch(lanes)
			for l := 0; l < lanes; l++ {
				rb.LoadLane(l, cp.NewState(), 0.2)
			}
			return rb
		}
		b.Run(fmt.Sprintf("go/Lanes%d", lanes), func(b *testing.B) {
			rb := mk()
			b.SetBytes(int64(steps * 8 * lanes))
			for i := 0; i < b.N; i++ {
				romStepBatchGo(rb, dst, src, mul, div, steps)
			}
		})
		b.Run(fmt.Sprintf("asm/Lanes%d", lanes), func(b *testing.B) {
			if !haveAVX2 {
				b.Skip("AVX2 kernels unavailable in this build")
			}
			rb := mk()
			b.SetBytes(int64(steps * 8 * lanes))
			for i := 0; i < b.N; i++ {
				rb.StepTraceBatch(dst, src, mul, div, steps)
			}
		})
	}
}
