package circuit

import "fmt"

// ACImpedance computes the small-signal driving-point impedance seen at
// a node across a set of frequencies: ideal voltage sources are
// shorted, a unit AC current is injected into the port, and the
// resulting port voltage equals the complex impedance. This is the
// frequency-domain view of Fig. 3: the PDN's impedance peaks mark the
// first-, second- and third-droop resonances.
func ACImpedance(c *Circuit, port Node, freqs []float64) ([]complex128, error) {
	if port == Ground {
		return nil, fmt.Errorf("circuit: AC port cannot be ground")
	}
	c.checkNode(port)
	nv := c.nodes - 1
	branches := 0
	branchOf := make([]int, len(c.elements))
	for i := range c.elements {
		e := &c.elements[i]
		if e.kind == kindV || e.kind == kindL {
			branchOf[i] = nv + branches
			branches++
		}
	}
	n := nv + branches
	out := make([]complex128, len(freqs))
	for fi, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("circuit: AC frequency must be positive, got %g", f)
		}
		omega := 2 * 3.141592653589793 * f
		a := make([]complex128, n*n)
		b := make([]complex128, n)
		stampY := func(na, nb Node, y complex128) {
			ia, ib := int(na)-1, int(nb)-1
			if ia >= 0 {
				a[ia*n+ia] += y
			}
			if ib >= 0 {
				a[ib*n+ib] += y
			}
			if ia >= 0 && ib >= 0 {
				a[ia*n+ib] -= y
				a[ib*n+ia] -= y
			}
		}
		for i := range c.elements {
			e := &c.elements[i]
			switch e.kind {
			case kindR:
				stampY(e.a, e.b, complex(1/e.val, 0))
			case kindC:
				stampY(e.a, e.b, complex(0, omega*e.val))
			case kindL:
				ia, ib, br := int(e.a)-1, int(e.b)-1, branchOf[i]
				if ia >= 0 {
					a[ia*n+br] += 1
					a[br*n+ia] += 1
				}
				if ib >= 0 {
					a[ib*n+br] -= 1
					a[br*n+ib] -= 1
				}
				a[br*n+br] -= complex(0, omega*e.val)
			case kindV:
				// Shorted for small-signal analysis: v_a - v_b = 0.
				ia, ib, br := int(e.a)-1, int(e.b)-1, branchOf[i]
				if ia >= 0 {
					a[ia*n+br] += 1
					a[br*n+ia] += 1
				}
				if ib >= 0 {
					a[ib*n+br] -= 1
					a[br*n+ib] -= 1
				}
			case kindI:
				// Open for small-signal analysis.
			}
		}
		// Inject 1 A into the port.
		b[int(port)-1] = 1
		x, err := solveComplex(a, b, n)
		if err != nil {
			return nil, fmt.Errorf("circuit: AC solve at %g Hz: %w", f, err)
		}
		out[fi] = x[int(port)-1]
	}
	return out, nil
}
