// Package circuit is a small linear-circuit simulator: modified nodal
// analysis over R/L/C elements with voltage and current sources,
// trapezoidal transient integration, and complex-valued AC analysis.
// It plays the role HSPICE plays in the paper's simulation path
// (Fig. 5): the per-cycle current profile from the CPU model becomes a
// current sink across a lumped RLC model of the power-delivery network,
// and the solver produces the supply-voltage waveform.
package circuit

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrSingular is returned when the system matrix cannot be factored,
// which for well-formed circuits indicates a floating node or a loop of
// ideal sources.
var ErrSingular = errors.New("circuit: singular matrix")

// luReal is a dense LU factorisation with partial pivoting for the
// real-valued transient system. The matrix is factored once per time
// step size and reused for every step, which is what makes million-step
// transients cheap.
type luReal struct {
	n    int
	lu   []float64 // n×n, row-major, L (unit diagonal) and U packed
	perm []int
}

func factorReal(a []float64, n int) (*luReal, error) {
	lu := append([]float64(nil), a...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, maxAbs := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > maxAbs {
				p, maxAbs = i, v
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			perm[k], perm[p] = perm[p], perm[k]
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return &luReal{n: n, lu: lu, perm: perm}, nil
}

// solve solves LUx = Pb into x (may alias a scratch buffer).
func (f *luReal) solve(b, x []float64) {
	n := f.n
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	// Forward substitution (unit lower).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
}

// solveBatch solves LUx = Pb for L right-hand sides held lane-minor
// (b[i*L + l] is row i of lane l), writing x in the same layout. Per
// lane the floating-point operation sequence is exactly solve's —
// row-oriented substitution, j ascending, one final division — so
// every lane's solution is bit-identical to a serial solve. Lanes are
// tiled into register blocks of 8 and 4 whose accumulators live
// across a row's whole coefficient sweep: each lu[i,j] is loaded once
// per block instead of once per lane, and the block's independent
// multiply-subtract chains keep the FP units busy where the serial
// solve's single chain stalls on latency. That blocking — not thread
// parallelism — is the multi-lane replay kernel's speedup.
//
// On amd64 with AVX2 (and without the `noasm` tag), the substitution
// sweeps run through hand-written vector kernels (asm_amd64.s) that
// keep this exact per-lane operation order — multiply then subtract as
// two rounded ops, no FMA contraction — so the dispatch below never
// changes a single output bit, only how many lanes each instruction
// carries.
func (f *luReal) solveBatch(b, x []float64, L int) {
	if haveAVX2 && L >= 4 {
		f.solveBatchAVX2(b, x, L)
		return
	}
	f.solveBatchGo(b, x, L)
}

// solveBatchGo is the pure-Go register-blocked kernel — the reference
// the assembly path is verified bit-identical against, and the path
// taken on non-amd64, noasm, pre-AVX2 hardware, and narrow batches.
func (f *luReal) solveBatchGo(b, x []float64, L int) {
	n := f.n
	lu := f.lu
	for i := 0; i < n; i++ {
		copy(x[i*L:i*L+L], b[f.perm[i]*L:f.perm[i]*L+L])
	}
	// Forward substitution (unit lower).
	for i := 1; i < n; i++ {
		row := lu[i*n : i*n+i]
		l := 0
		for ; l+8 <= L; l += 8 {
			o := i*L + l
			s0, s1, s2, s3 := x[o], x[o+1], x[o+2], x[o+3]
			s4, s5, s6, s7 := x[o+4], x[o+5], x[o+6], x[o+7]
			for j, m := range row {
				xq := x[j*L+l : j*L+l+8 : j*L+l+8]
				s0 -= m * xq[0]
				s1 -= m * xq[1]
				s2 -= m * xq[2]
				s3 -= m * xq[3]
				s4 -= m * xq[4]
				s5 -= m * xq[5]
				s6 -= m * xq[6]
				s7 -= m * xq[7]
			}
			x[o], x[o+1], x[o+2], x[o+3] = s0, s1, s2, s3
			x[o+4], x[o+5], x[o+6], x[o+7] = s4, s5, s6, s7
		}
		for ; l+4 <= L; l += 4 {
			o := i*L + l
			s0, s1, s2, s3 := x[o], x[o+1], x[o+2], x[o+3]
			for j, m := range row {
				xq := x[j*L+l : j*L+l+4 : j*L+l+4]
				s0 -= m * xq[0]
				s1 -= m * xq[1]
				s2 -= m * xq[2]
				s3 -= m * xq[3]
			}
			x[o], x[o+1], x[o+2], x[o+3] = s0, s1, s2, s3
		}
		for ; l < L; l++ {
			s := x[i*L+l]
			for j, m := range row {
				s -= m * x[j*L+l]
			}
			x[i*L+l] = s
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := lu[i*n+i+1 : i*n+n]
		d := lu[i*n+i]
		base := (i + 1) * L
		l := 0
		for ; l+8 <= L; l += 8 {
			o := i*L + l
			s0, s1, s2, s3 := x[o], x[o+1], x[o+2], x[o+3]
			s4, s5, s6, s7 := x[o+4], x[o+5], x[o+6], x[o+7]
			for j, m := range row {
				xq := x[base+j*L+l : base+j*L+l+8 : base+j*L+l+8]
				s0 -= m * xq[0]
				s1 -= m * xq[1]
				s2 -= m * xq[2]
				s3 -= m * xq[3]
				s4 -= m * xq[4]
				s5 -= m * xq[5]
				s6 -= m * xq[6]
				s7 -= m * xq[7]
			}
			x[o], x[o+1], x[o+2], x[o+3] = s0/d, s1/d, s2/d, s3/d
			x[o+4], x[o+5], x[o+6], x[o+7] = s4/d, s5/d, s6/d, s7/d
		}
		for ; l+4 <= L; l += 4 {
			o := i*L + l
			s0, s1, s2, s3 := x[o], x[o+1], x[o+2], x[o+3]
			for j, m := range row {
				xq := x[base+j*L+l : base+j*L+l+4 : base+j*L+l+4]
				s0 -= m * xq[0]
				s1 -= m * xq[1]
				s2 -= m * xq[2]
				s3 -= m * xq[3]
			}
			x[o], x[o+1], x[o+2], x[o+3] = s0/d, s1/d, s2/d, s3/d
		}
		for ; l < L; l++ {
			s := x[i*L+l]
			for j, m := range row {
				s -= m * x[base+j*L+l]
			}
			x[i*L+l] = s / d
		}
	}
}

// solveComplex solves a dense complex system Ax=b in place with partial
// pivoting (Gaussian elimination). AC sweeps factor a fresh matrix per
// frequency point, so no reusable factorisation is kept.
func solveComplex(a []complex128, b []complex128, n int) ([]complex128, error) {
	m := append([]complex128(nil), a...)
	x := append([]complex128(nil), b...)
	for k := 0; k < n; k++ {
		p, maxAbs := k, cmplx.Abs(m[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(m[i*n+k]); v > maxAbs {
				p, maxAbs = i, v
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, ErrSingular
		}
		if p != k {
			for j := k; j < n; j++ {
				m[k*n+j], m[p*n+j] = m[p*n+j], m[k*n+j]
			}
			x[k], x[p] = x[p], x[k]
		}
		for i := k + 1; i < n; i++ {
			f := m[i*n+k] / m[k*n+k]
			if f == 0 {
				continue
			}
			for j := k; j < n; j++ {
				m[i*n+j] -= f * m[k*n+j]
			}
			x[i] -= f * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m[i*n+j] * x[j]
		}
		x[i] = s / m[i*n+i]
	}
	return x, nil
}
