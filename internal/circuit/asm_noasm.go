//go:build !amd64 || noasm

package circuit

// Pure-Go build: non-amd64 targets and the `noasm` tag compile the
// replay kernels without the AVX2 assembly. haveAVX2 is a constant
// false so the dispatch branches fold away and the stubs below are
// provably unreachable.

const haveAVX2 = false

func (f *luReal) solveBatchAVX2(b, x []float64, L int) {
	panic("circuit: AVX2 kernels unavailable in this build")
}

func (rb *ROMBatch) stepLanes4AVX2(l int, dst, src [][]float64, mul, div []float64, n int) {
	panic("circuit: AVX2 kernels unavailable in this build")
}
