package circuit

// Small dense real eigensolver for the reduced-order replay model.
// The matrices here are tiny (one row per reactive element — six for
// the shipped 3-stage PDN), so the classic dense pipeline is the right
// tool: reduce to upper Hessenberg form by stabilized elementary
// similarity transforms, extract eigenvalues with a Francis
// double-shift QR iteration, then recover each eigenvector by inverse
// iteration on a slightly shifted complex system. Accuracy is enforced
// by the caller (romCompile) through an explicit residual and
// conditioning check — any failure there disables the ROM and replay
// falls back to the exact LU kernel, so this solver only has to be
// right when it claims to be.

import (
	"errors"
	"math"
	"math/cmplx"
)

// eigenEps is the unit roundoff used for the deflation tests.
const eigenEps = 2.220446049250313e-16

// matInfNorm returns the infinity norm of the n×n row-major matrix a.
func matInfNorm(a []float64, n int) float64 {
	worst := 0.0
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += math.Abs(a[i*n+j])
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// hessReduce reduces the n×n row-major matrix a, in place, to upper
// Hessenberg form by Gaussian similarity transforms with partial
// pivoting (the elmhes scheme). Only eigenvalues are taken from the
// result, so the transforms are not accumulated.
func hessReduce(a []float64, n int) {
	for m := 1; m < n-1; m++ {
		// Pivot: largest magnitude in column m-1 below the diagonal.
		p, x := m, math.Abs(a[m*n+m-1])
		for i := m + 1; i < n; i++ {
			if v := math.Abs(a[i*n+m-1]); v > x {
				p, x = i, v
			}
		}
		if p != m {
			for j := 0; j < n; j++ {
				a[p*n+j], a[m*n+j] = a[m*n+j], a[p*n+j]
			}
			for i := 0; i < n; i++ {
				a[i*n+p], a[i*n+m] = a[i*n+m], a[i*n+p]
			}
		}
		piv := a[m*n+m-1]
		if piv == 0 {
			continue
		}
		for i := m + 1; i < n; i++ {
			f := a[i*n+m-1] / piv
			if f == 0 {
				continue
			}
			a[i*n+m-1] = 0
			for j := m; j < n; j++ {
				a[i*n+j] -= f * a[m*n+j]
			}
			// Inverse transform on columns keeps the spectrum intact.
			for k := 0; k < n; k++ {
				a[k*n+m] += f * a[k*n+i]
			}
		}
	}
}

// hqr finds all eigenvalues of the upper Hessenberg matrix a (n×n,
// row-major, destroyed) by the Francis double-shift QR iteration,
// writing them to (wr, wi). Complex pairs land in adjacent slots with
// wi[k] = ±β.
func hqr(a []float64, n int, wr, wi []float64) error {
	anorm := 0.0
	for i := 0; i < n; i++ {
		lo := i - 1
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < n; j++ {
			anorm += math.Abs(a[i*n+j])
		}
	}
	if anorm == 0 {
		for i := range wr[:n] {
			wr[i], wi[i] = 0, 0
		}
		return nil
	}
	var p, q, r, x, y, z, w, s float64
	nn := n - 1
	t := 0.0
	for nn >= 0 {
		its := 0
		for {
			// Look for a negligible subdiagonal element to split at.
			var l int
			for l = nn; l >= 1; l-- {
				s = math.Abs(a[(l-1)*n+l-1]) + math.Abs(a[l*n+l])
				if s == 0 {
					s = anorm
				}
				if math.Abs(a[l*n+l-1]) <= eigenEps*s {
					a[l*n+l-1] = 0
					break
				}
			}
			if l < 0 {
				l = 0
			}
			x = a[nn*n+nn]
			if l == nn {
				// One real eigenvalue deflates.
				wr[nn] = x + t
				wi[nn] = 0
				nn--
			} else {
				y = a[(nn-1)*n+nn-1]
				w = a[nn*n+nn-1] * a[(nn-1)*n+nn]
				if l == nn-1 {
					// A 2×2 block deflates: real pair or conjugate pair.
					p = 0.5 * (y - x)
					q = p*p + w
					z = math.Sqrt(math.Abs(q))
					x += t
					if q >= 0 {
						if p >= 0 {
							z = p + z
						} else {
							z = p - z
						}
						wr[nn-1] = x + z
						wr[nn] = wr[nn-1]
						if z != 0 {
							wr[nn] = x - w/z
						}
						wi[nn-1], wi[nn] = 0, 0
					} else {
						wr[nn-1] = x + p
						wr[nn] = x + p
						wi[nn] = z
						wi[nn-1] = -z
					}
					nn -= 2
				} else {
					if its == 60 {
						return errors.New("circuit: eigenvalue iteration failed to converge")
					}
					if its == 10 || its == 20 || its == 30 || its == 40 || its == 50 {
						// Exceptional shift to break symmetry-induced cycling.
						t += x
						for i := 0; i <= nn; i++ {
							a[i*n+i] -= x
						}
						s = math.Abs(a[nn*n+nn-1]) + math.Abs(a[(nn-1)*n+nn-2])
						x = 0.75 * s
						y = x
						w = -0.4375 * s * s
					}
					its++
					// Find two consecutive small subdiagonals to start the
					// implicit double shift from.
					var m int
					for m = nn - 2; m >= l; m-- {
						z = a[m*n+m]
						r = x - z
						s = y - z
						p = (r*s-w)/a[(m+1)*n+m] + a[m*n+m+1]
						q = a[(m+1)*n+m+1] - z - r - s
						r = a[(m+2)*n+m+1]
						s = math.Abs(p) + math.Abs(q) + math.Abs(r)
						p /= s
						q /= s
						r /= s
						if m == l {
							break
						}
						u := math.Abs(a[m*n+m-1]) * (math.Abs(q) + math.Abs(r))
						v := math.Abs(p) * (math.Abs(a[(m-1)*n+m-1]) + math.Abs(z) + math.Abs(a[(m+1)*n+m+1]))
						if u <= eigenEps*v {
							break
						}
					}
					if m < l {
						m = l
					}
					for i := m + 2; i <= nn; i++ {
						a[i*n+i-2] = 0
						if i != m+2 {
							a[i*n+i-3] = 0
						}
					}
					// Double QR sweep over rows l..nn, columns m..nn.
					for k := m; k <= nn-1; k++ {
						if k != m {
							p = a[k*n+k-1]
							q = a[(k+1)*n+k-1]
							r = 0
							if k != nn-1 {
								r = a[(k+2)*n+k-1]
							}
							if x = math.Abs(p) + math.Abs(q) + math.Abs(r); x != 0 {
								p /= x
								q /= x
								r /= x
							}
						}
						s = math.Sqrt(p*p + q*q + r*r)
						if p < 0 {
							s = -s
						}
						if s == 0 {
							continue
						}
						if k == m {
							if l != m {
								a[k*n+k-1] = -a[k*n+k-1]
							}
						} else {
							a[k*n+k-1] = -s * x
						}
						p += s
						x = p / s
						y = q / s
						z = r / s
						q /= p
						r /= p
						for j := k; j <= nn; j++ {
							p = a[k*n+j] + q*a[(k+1)*n+j]
							if k != nn-1 {
								p += r * a[(k+2)*n+j]
								a[(k+2)*n+j] -= p * z
							}
							a[(k+1)*n+j] -= p * y
							a[k*n+j] -= p * x
						}
						mmin := nn
						if k+3 < nn {
							mmin = k + 3
						}
						for i := l; i <= mmin; i++ {
							p = x*a[i*n+k] + y*a[i*n+k+1]
							if k != nn-1 {
								p += z * a[i*n+k+2]
								a[i*n+k+2] -= p * r
							}
							a[i*n+k+1] -= p * q
							a[i*n+k] -= p
						}
					}
				}
			}
			if l >= nn-1 {
				break
			}
		}
	}
	return nil
}

// eigenValues returns the spectrum of the n×n row-major matrix a
// (which is preserved) as (wr, wi) pairs.
func eigenValues(a []float64, n int) (wr, wi []float64, err error) {
	h := make([]float64, n*n)
	copy(h, a)
	hessReduce(h, n)
	wr = make([]float64, n)
	wi = make([]float64, n)
	if err := hqr(h, n, wr, wi); err != nil {
		return nil, nil, err
	}
	return wr, wi, nil
}

// eigenVector recovers a right eigenvector of a for the approximate
// eigenvalue λ = lr + i·li by inverse iteration: repeatedly solving
// (A − λ̃I)v = v with λ̃ perturbed slightly off λ so the factorization
// stays regular. The returned vector is normalized so its largest
// component is exactly 1 (a deterministic phase and scale convention),
// along with a Rayleigh-refined eigenvalue estimate.
func eigenVector(a []float64, n int, lr, li float64) ([]complex128, complex128, error) {
	scale := matInfNorm(a, n) + math.Hypot(lr, li)
	if scale == 0 {
		scale = 1
	}
	shift := complex(lr, li) + complex(1e-9*scale, 0)
	// Shifted system; reassembled per solve because solveComplex
	// destroys its inputs.
	sys := func() []complex128 {
		m := make([]complex128, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m[i*n+j] = complex(a[i*n+j], 0)
			}
			m[i*n+i] -= shift
		}
		return m
	}
	// Deterministic full-support start vector.
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(1/float64(i+2), 1/float64(2*i+3))
	}
	for it := 0; it < 3; it++ {
		b := make([]complex128, n)
		copy(b, v)
		sol, err := solveComplex(sys(), b, n)
		if err != nil {
			return nil, 0, err
		}
		// Renormalize so the next iterate stays finite.
		big := 0.0
		for _, c := range sol {
			if m := cmplx.Abs(c); m > big {
				big = m
			}
		}
		if big == 0 || math.IsInf(big, 0) || math.IsNaN(big) {
			return nil, 0, errors.New("circuit: inverse iteration diverged")
		}
		for i := range sol {
			sol[i] /= complex(big, 0)
		}
		v = sol
	}
	// Phase/scale convention: divide by the largest-magnitude entry.
	kBig, big := 0, 0.0
	for i, c := range v {
		if m := cmplx.Abs(c); m > big {
			kBig, big = i, m
		}
	}
	piv := v[kBig]
	for i := range v {
		v[i] /= piv
	}
	// Rayleigh refinement: λ = (v*·Av)/(v*·v) sharpens the QR estimate
	// to the accuracy of the recovered vector.
	var num, den complex128
	for i := 0; i < n; i++ {
		var av complex128
		for j := 0; j < n; j++ {
			av += complex(a[i*n+j], 0) * v[j]
		}
		num += cmplx.Conj(v[i]) * av
		den += cmplx.Conj(v[i]) * v[i]
	}
	if den == 0 {
		return nil, 0, errors.New("circuit: degenerate eigenvector")
	}
	return v, num / den, nil
}
