package circuit

import "fmt"

// Transient is a compiled fixed-step trapezoidal transient simulation
// of a circuit. The system matrix is factored once at construction;
// each Step solves one right-hand side, so long runs cost O(n²) per
// step on the (tiny) MNA system.
type Transient struct {
	c *Circuit
	h float64 // step size, seconds

	n       int // total unknowns: (nodes-1) + branches
	nv      int // voltage unknowns (nodes-1)
	lu      *luReal
	rhs     []float64
	x       []float64
	sources []float64 // live source values, indexed by element

	// Companion state.
	capV []float64 // previous branch voltage per capacitor element index
	capI []float64 // previous branch current per capacitor
	indI []float64 // previous current per inductor (indexed by branch slot)

	capIdx []int // element indices of capacitors
	time   float64
}

// NewTransient compiles the circuit for step size h seconds and
// initialises state at the DC operating point of the initial source
// values (capacitors open, inductors shorted).
func NewTransient(c *Circuit, h float64) (*Transient, error) {
	if h <= 0 {
		return nil, fmt.Errorf("circuit: step size must be positive, got %g", h)
	}
	t := &Transient{c: c, h: h, nv: c.nodes - 1}
	// Assign branch unknowns: one per V source and inductor.
	branches := 0
	for i := range c.elements {
		e := &c.elements[i]
		if e.kind == kindV || e.kind == kindL {
			e.branch = t.nv + branches
			branches++
		}
	}
	t.n = t.nv + branches
	t.rhs = make([]float64, t.n)
	t.x = make([]float64, t.n)
	t.sources = make([]float64, len(c.elements))
	t.capV = make([]float64, len(c.elements))
	t.capI = make([]float64, len(c.elements))
	t.indI = make([]float64, len(c.elements))
	for i := range c.elements {
		t.sources[i] = c.elements[i].val
		if c.elements[i].kind == kindC {
			t.capIdx = append(t.capIdx, i)
		}
	}

	if err := t.initDC(); err != nil {
		return nil, err
	}

	// Build and factor the trapezoidal system matrix.
	a := make([]float64, t.n*t.n)
	stampG := func(na, nb Node, g float64) {
		ia, ib := int(na)-1, int(nb)-1
		if ia >= 0 {
			a[ia*t.n+ia] += g
		}
		if ib >= 0 {
			a[ib*t.n+ib] += g
		}
		if ia >= 0 && ib >= 0 {
			a[ia*t.n+ib] -= g
			a[ib*t.n+ia] -= g
		}
	}
	for i := range c.elements {
		e := &c.elements[i]
		switch e.kind {
		case kindR:
			stampG(e.a, e.b, 1/e.val)
		case kindC:
			stampG(e.a, e.b, 2*e.val/h)
		case kindL:
			ia, ib, br := int(e.a)-1, int(e.b)-1, e.branch
			if ia >= 0 {
				a[ia*t.n+br] += 1
				a[br*t.n+ia] += 1
			}
			if ib >= 0 {
				a[ib*t.n+br] -= 1
				a[br*t.n+ib] -= 1
			}
			a[br*t.n+br] -= 2 * e.val / h
		case kindV:
			ia, ib, br := int(e.a)-1, int(e.b)-1, e.branch
			if ia >= 0 {
				a[ia*t.n+br] += 1
				a[br*t.n+ia] += 1
			}
			if ib >= 0 {
				a[ib*t.n+br] -= 1
				a[br*t.n+ib] -= 1
			}
		case kindI:
			// RHS only.
		}
	}
	lu, err := factorReal(a, t.n)
	if err != nil {
		return nil, fmt.Errorf("circuit: transient matrix: %w", err)
	}
	t.lu = lu
	return t, nil
}

// initDC solves the DC operating point: capacitors removed, inductors
// replaced by 0 V sources (shorts) whose branch currents we keep.
func (t *Transient) initDC() error {
	c := t.c
	n := t.n
	a := make([]float64, n*n)
	b := make([]float64, n)
	stampG := func(na, nb Node, g float64) {
		ia, ib := int(na)-1, int(nb)-1
		if ia >= 0 {
			a[ia*n+ia] += g
		}
		if ib >= 0 {
			a[ib*n+ib] += g
		}
		if ia >= 0 && ib >= 0 {
			a[ia*n+ib] -= g
			a[ib*n+ia] -= g
		}
	}
	for i := range c.elements {
		e := &c.elements[i]
		switch e.kind {
		case kindR:
			stampG(e.a, e.b, 1/e.val)
		case kindC:
			// Open at DC. To keep the matrix non-singular when a node
			// connects only to capacitors, add a negligible leakage.
			stampG(e.a, e.b, 1e-12)
		case kindL, kindV:
			ia, ib, br := int(e.a)-1, int(e.b)-1, e.branch
			if ia >= 0 {
				a[ia*n+br] += 1
				a[br*n+ia] += 1
			}
			if ib >= 0 {
				a[ib*n+br] -= 1
				a[br*n+ib] -= 1
			}
			if e.kind == kindV {
				b[br] = t.sources[i]
			} // inductor: 0 V short
		case kindI:
			ia, ib := int(e.a)-1, int(e.b)-1
			if ia >= 0 {
				b[ia] -= t.sources[i]
			}
			if ib >= 0 {
				b[ib] += t.sources[i]
			}
		}
	}
	lu, err := factorReal(a, n)
	if err != nil {
		return fmt.Errorf("circuit: DC matrix: %w", err)
	}
	lu.solve(b, t.x)
	// Capture companion state from the DC solution.
	nodeV := func(nd Node) float64 {
		if nd == Ground {
			return 0
		}
		return t.x[int(nd)-1]
	}
	for _, i := range t.capIdx {
		e := &t.c.elements[i]
		t.capV[i] = nodeV(e.a) - nodeV(e.b)
		t.capI[i] = 0
	}
	for i := range c.elements {
		e := &c.elements[i]
		if e.kind == kindL {
			t.indI[i] = t.x[e.branch]
		}
	}
	return nil
}

// SetSource updates a named V or I source's value for subsequent steps.
func (t *Transient) SetSource(name string, value float64) error {
	i, err := t.c.findSource(name)
	if err != nil {
		return err
	}
	t.sources[i] = value
	return nil
}

// MustSetSource panics on unknown source names; use for hot loops where
// the name was validated up front.
func (t *Transient) MustSetSource(name string, value float64) {
	if err := t.SetSource(name, value); err != nil {
		panic(err)
	}
}

// SourceRef resolves a source name to an opaque index for per-step
// updates without map lookups.
func (t *Transient) SourceRef(name string) (int, error) { return t.c.findSource(name) }

// SetSourceRef updates a source by reference from SourceRef.
func (t *Transient) SetSourceRef(ref int, value float64) { t.sources[ref] = value }

// Time returns the current simulation time in seconds.
func (t *Transient) Time() float64 { return t.time }

// Step advances the simulation by one time step.
func (t *Transient) Step() {
	b := t.rhs
	for i := range b {
		b[i] = 0
	}
	c := t.c
	for i := range c.elements {
		e := &c.elements[i]
		switch e.kind {
		case kindC:
			g := 2 * e.val / t.h
			ieq := g*t.capV[i] + t.capI[i]
			ia, ib := int(e.a)-1, int(e.b)-1
			if ia >= 0 {
				b[ia] += ieq
			}
			if ib >= 0 {
				b[ib] -= ieq
			}
		case kindL:
			b[e.branch] = -(2*e.val/t.h)*t.indI[i] - t.branchVoltagePrev(e)
		case kindV:
			b[e.branch] = t.sources[i]
		case kindI:
			ia, ib := int(e.a)-1, int(e.b)-1
			if ia >= 0 {
				b[ia] -= t.sources[i]
			}
			if ib >= 0 {
				b[ib] += t.sources[i]
			}
		}
	}
	t.lu.solve(b, t.x)
	t.time += t.h
	// Update companion state.
	for _, i := range t.capIdx {
		e := &t.c.elements[i]
		vNew := t.nodeV(e.a) - t.nodeV(e.b)
		g := 2 * e.val / t.h
		iNew := g*(vNew-t.capV[i]) - t.capI[i]
		t.capV[i], t.capI[i] = vNew, iNew
	}
	for i := range c.elements {
		e := &c.elements[i]
		if e.kind == kindL {
			t.indI[i] = t.x[e.branch]
		}
	}
}

func (t *Transient) nodeV(nd Node) float64 {
	if nd == Ground {
		return 0
	}
	return t.x[int(nd)-1]
}

// branchVoltagePrev returns the element's branch voltage at the
// previous solution (used for the inductor companion RHS).
func (t *Transient) branchVoltagePrev(e *element) float64 {
	return t.nodeV(e.a) - t.nodeV(e.b)
}

// V returns the most recent voltage at a node.
func (t *Transient) V(nd Node) float64 { return t.nodeV(nd) }

// BranchCurrent returns the most recent current through a named V
// source or inductor (positive a→b).
func (t *Transient) BranchCurrent(name string) (float64, error) {
	for i := range t.c.elements {
		e := &t.c.elements[i]
		if e.name == name && (e.kind == kindV || e.kind == kindL) {
			return t.x[e.branch], nil
		}
	}
	return 0, fmt.Errorf("circuit: no branch named %q", name)
}
