package circuit

import (
	"fmt"
	"math"
)

// Compiled is the immutable, shareable part of a fixed-step trapezoidal
// transient simulation: the circuit topology with branch unknowns
// assigned, the factored trapezoidal system matrix, and the DC operating
// point captured as the canonical initial state. Compiling is the
// expensive step (two dense factorisations); once compiled, any number
// of independent Transient states can be spun up, reset, or cloned from
// it at the cost of a few slice copies. A Compiled is safe for
// concurrent use by any number of Transient states.
type Compiled struct {
	c *Circuit
	h float64 // step size, seconds

	n      int // total unknowns: (nodes-1) + branches
	nv     int // voltage unknowns (nodes-1)
	lu     *luReal
	capIdx []int // element indices of capacitors

	// Initial state at the DC operating point, copied into every fresh
	// or reset Transient.
	x0       []float64
	capV0    []float64
	capI0    []float64
	indI0    []float64
	sources0 []float64

	// Precompiled records for the batched StepTrace kernel: the RHS
	// assembly flattened into resolved indices and precomputed companion
	// conductances (2C/h, 2L/h), in the exact element order Step uses,
	// plus the companion-update passes in their own orders. Stamping the
	// same additions in the same order with the same constants keeps
	// StepTrace bit-identical to a Step loop.
	stepOps []stepOp // RHS assembly, element order (R elements skipped)
	capOps  []stepOp // capacitor companion updates, capIdx order
	indOps  []stepOp // inductor companion updates, element order
}

// stepOp is one flattened element record for the trace kernel. Node
// indices are pre-shifted into unknown-vector indices (-1 = ground).
type stepOp struct {
	kind   elemKind
	ia, ib int
	br     int     // branch unknown for L and V elements
	ei     int     // element index into sources/capV/capI/indI
	g      float64 // 2C/h (capacitors) or 2L/h (inductors)
}

// Transient is a live fixed-step trapezoidal transient simulation: the
// mutable state (solution vector, companion-model history, live source
// values) advancing over a shared Compiled system. Each Step solves one
// right-hand side, so long runs cost O(n²) per step on the (tiny) MNA
// system. Distinct Transient states over one Compiled are independent
// and may step concurrently.
type Transient struct {
	cp *Compiled

	rhs     []float64
	x       []float64
	sources []float64 // live source values, indexed by element

	// Companion state.
	capV []float64 // previous branch voltage per capacitor element index
	capI []float64 // previous branch current per capacitor
	indI []float64 // previous current per inductor (indexed by element)

	time float64
}

// Compile assigns branch unknowns, solves the DC operating point of the
// initial source values (capacitors open, inductors shorted), and
// factors the trapezoidal system matrix for step size h seconds. The
// circuit must not be modified afterwards.
func Compile(c *Circuit, h float64) (*Compiled, error) {
	if h <= 0 {
		return nil, fmt.Errorf("circuit: step size must be positive, got %g", h)
	}
	cp := &Compiled{c: c, h: h, nv: c.nodes - 1}
	// Assign branch unknowns: one per V source and inductor.
	branches := 0
	for i := range c.elements {
		e := &c.elements[i]
		if e.kind == kindV || e.kind == kindL {
			e.branch = cp.nv + branches
			branches++
		}
	}
	cp.n = cp.nv + branches
	cp.sources0 = make([]float64, len(c.elements))
	cp.capV0 = make([]float64, len(c.elements))
	cp.capI0 = make([]float64, len(c.elements))
	cp.indI0 = make([]float64, len(c.elements))
	for i := range c.elements {
		cp.sources0[i] = c.elements[i].val
		if c.elements[i].kind == kindC {
			cp.capIdx = append(cp.capIdx, i)
		}
	}

	if err := cp.initDC(); err != nil {
		return nil, err
	}

	// Build and factor the trapezoidal system matrix.
	a := make([]float64, cp.n*cp.n)
	stampG := func(na, nb Node, g float64) {
		ia, ib := int(na)-1, int(nb)-1
		if ia >= 0 {
			a[ia*cp.n+ia] += g
		}
		if ib >= 0 {
			a[ib*cp.n+ib] += g
		}
		if ia >= 0 && ib >= 0 {
			a[ia*cp.n+ib] -= g
			a[ib*cp.n+ia] -= g
		}
	}
	for i := range c.elements {
		e := &c.elements[i]
		switch e.kind {
		case kindR:
			stampG(e.a, e.b, 1/e.val)
		case kindC:
			stampG(e.a, e.b, 2*e.val/h)
		case kindL:
			ia, ib, br := int(e.a)-1, int(e.b)-1, e.branch
			if ia >= 0 {
				a[ia*cp.n+br] += 1
				a[br*cp.n+ia] += 1
			}
			if ib >= 0 {
				a[ib*cp.n+br] -= 1
				a[br*cp.n+ib] -= 1
			}
			a[br*cp.n+br] -= 2 * e.val / h
		case kindV:
			ia, ib, br := int(e.a)-1, int(e.b)-1, e.branch
			if ia >= 0 {
				a[ia*cp.n+br] += 1
				a[br*cp.n+ia] += 1
			}
			if ib >= 0 {
				a[ib*cp.n+br] -= 1
				a[br*cp.n+ib] -= 1
			}
		case kindI:
			// RHS only.
		}
	}
	lu, err := factorReal(a, cp.n)
	if err != nil {
		return nil, fmt.Errorf("circuit: transient matrix: %w", err)
	}
	cp.lu = lu
	cp.buildStepOps()
	return cp, nil
}

// buildStepOps flattens the element list into the kernel records used
// by StepTrace, preserving Step's iteration orders exactly.
func (cp *Compiled) buildStepOps() {
	c := cp.c
	rec := func(e *element, i int) stepOp {
		op := stepOp{kind: e.kind, ia: int(e.a) - 1, ib: int(e.b) - 1, br: e.branch, ei: i}
		switch e.kind {
		case kindC, kindL:
			op.g = 2 * e.val / cp.h
		}
		return op
	}
	for i := range c.elements {
		e := &c.elements[i]
		if e.kind == kindR {
			continue // resistors live in the factored matrix only
		}
		cp.stepOps = append(cp.stepOps, rec(e, i))
		if e.kind == kindL {
			cp.indOps = append(cp.indOps, rec(e, i))
		}
	}
	for _, i := range cp.capIdx {
		cp.capOps = append(cp.capOps, rec(&c.elements[i], i))
	}
}

// NewTransient compiles the circuit for step size h seconds and returns
// a fresh simulation state at the DC operating point of the initial
// source values. Equivalent to Compile followed by NewState; callers
// that run one circuit repeatedly should Compile once and reuse it.
func NewTransient(c *Circuit, h float64) (*Transient, error) {
	cp, err := Compile(c, h)
	if err != nil {
		return nil, err
	}
	return cp.NewState(), nil
}

// initDC solves the DC operating point: capacitors removed, inductors
// replaced by 0 V sources (shorts) whose branch currents we keep.
func (cp *Compiled) initDC() error {
	c := cp.c
	n := cp.n
	a := make([]float64, n*n)
	b := make([]float64, n)
	stampG := func(na, nb Node, g float64) {
		ia, ib := int(na)-1, int(nb)-1
		if ia >= 0 {
			a[ia*n+ia] += g
		}
		if ib >= 0 {
			a[ib*n+ib] += g
		}
		if ia >= 0 && ib >= 0 {
			a[ia*n+ib] -= g
			a[ib*n+ia] -= g
		}
	}
	for i := range c.elements {
		e := &c.elements[i]
		switch e.kind {
		case kindR:
			stampG(e.a, e.b, 1/e.val)
		case kindC:
			// Open at DC. To keep the matrix non-singular when a node
			// connects only to capacitors, add a negligible leakage.
			stampG(e.a, e.b, 1e-12)
		case kindL, kindV:
			ia, ib, br := int(e.a)-1, int(e.b)-1, e.branch
			if ia >= 0 {
				a[ia*n+br] += 1
				a[br*n+ia] += 1
			}
			if ib >= 0 {
				a[ib*n+br] -= 1
				a[br*n+ib] -= 1
			}
			if e.kind == kindV {
				b[br] = cp.sources0[i]
			} // inductor: 0 V short
		case kindI:
			ia, ib := int(e.a)-1, int(e.b)-1
			if ia >= 0 {
				b[ia] -= cp.sources0[i]
			}
			if ib >= 0 {
				b[ib] += cp.sources0[i]
			}
		}
	}
	lu, err := factorReal(a, n)
	if err != nil {
		return fmt.Errorf("circuit: DC matrix: %w", err)
	}
	cp.x0 = make([]float64, n)
	lu.solve(b, cp.x0)
	// Capture companion state from the DC solution.
	nodeV := func(nd Node) float64 {
		if nd == Ground {
			return 0
		}
		return cp.x0[int(nd)-1]
	}
	for _, i := range cp.capIdx {
		e := &c.elements[i]
		cp.capV0[i] = nodeV(e.a) - nodeV(e.b)
		cp.capI0[i] = 0
	}
	for i := range c.elements {
		e := &c.elements[i]
		if e.kind == kindL {
			cp.indI0[i] = cp.x0[e.branch]
		}
	}
	return nil
}

// NewState returns a fresh simulation state at the compiled DC
// operating point. This is the cheap per-run path: a handful of slice
// allocations, no factorisation.
func (cp *Compiled) NewState() *Transient {
	t := &Transient{
		cp:      cp,
		rhs:     make([]float64, cp.n),
		x:       make([]float64, cp.n),
		sources: make([]float64, len(cp.sources0)),
		capV:    make([]float64, len(cp.capV0)),
		capI:    make([]float64, len(cp.capI0)),
		indI:    make([]float64, len(cp.indI0)),
	}
	t.Reset()
	return t
}

// StepSize returns the compiled integration step in seconds.
func (cp *Compiled) StepSize() float64 { return cp.h }

// Compiled returns the shared compiled system this state advances over.
func (t *Transient) Compiled() *Compiled { return t.cp }

// Reset restores the state to the compiled DC operating point without
// allocating, so pooled states can be reused across runs. A reset state
// is bit-identical to a freshly built one.
func (t *Transient) Reset() {
	copy(t.x, t.cp.x0)
	copy(t.sources, t.cp.sources0)
	copy(t.capV, t.cp.capV0)
	copy(t.capI, t.cp.capI0)
	copy(t.indI, t.cp.indI0)
	for i := range t.rhs {
		t.rhs[i] = 0
	}
	t.time = 0
}

// Clone returns an independent copy of the state sharing the same
// compiled system. Cloning a settled state and stepping the copy leaves
// the original untouched — the mechanism behind supply-settle caching.
func (t *Transient) Clone() *Transient {
	out := t.cp.NewState()
	out.CopyStateFrom(t)
	return out
}

// CopyStateFrom overwrites this state with src's. Both must share one
// Compiled; it panics otherwise (mixed topologies have incompatible
// state vectors).
func (t *Transient) CopyStateFrom(src *Transient) {
	if t.cp != src.cp {
		panic("circuit: CopyStateFrom across different compiled systems")
	}
	copy(t.x, src.x)
	copy(t.sources, src.sources)
	copy(t.capV, src.capV)
	copy(t.capI, src.capI)
	copy(t.indI, src.indI)
	t.time = src.time
}

// SetSource updates a named V or I source's value for subsequent steps.
func (t *Transient) SetSource(name string, value float64) error {
	i, err := t.cp.c.findSource(name)
	if err != nil {
		return err
	}
	t.sources[i] = value
	return nil
}

// MustSetSource panics on unknown source names; use for hot loops where
// the name was validated up front.
func (t *Transient) MustSetSource(name string, value float64) {
	if err := t.SetSource(name, value); err != nil {
		panic(err)
	}
}

// SourceRef resolves a source name to an opaque index for per-step
// updates without map lookups.
func (t *Transient) SourceRef(name string) (int, error) { return t.cp.c.findSource(name) }

// SetSourceRef updates a source by reference from SourceRef.
func (t *Transient) SetSourceRef(ref int, value float64) { t.sources[ref] = value }

// Time returns the current simulation time in seconds.
func (t *Transient) Time() float64 { return t.time }

// Step advances the simulation by one time step.
func (t *Transient) Step() {
	cp := t.cp
	b := t.rhs
	for i := range b {
		b[i] = 0
	}
	c := cp.c
	for i := range c.elements {
		e := &c.elements[i]
		switch e.kind {
		case kindC:
			g := 2 * e.val / cp.h
			ieq := g*t.capV[i] + t.capI[i]
			ia, ib := int(e.a)-1, int(e.b)-1
			if ia >= 0 {
				b[ia] += ieq
			}
			if ib >= 0 {
				b[ib] -= ieq
			}
		case kindL:
			b[e.branch] = -(2*e.val/cp.h)*t.indI[i] - t.branchVoltagePrev(e)
		case kindV:
			b[e.branch] = t.sources[i]
		case kindI:
			ia, ib := int(e.a)-1, int(e.b)-1
			if ia >= 0 {
				b[ia] -= t.sources[i]
			}
			if ib >= 0 {
				b[ib] += t.sources[i]
			}
		}
	}
	cp.lu.solve(b, t.x)
	t.time += cp.h
	// Update companion state.
	for _, i := range cp.capIdx {
		e := &c.elements[i]
		vNew := t.nodeV(e.a) - t.nodeV(e.b)
		g := 2 * e.val / cp.h
		iNew := g*(vNew-t.capV[i]) - t.capI[i]
		t.capV[i], t.capI[i] = vNew, iNew
	}
	for i := range c.elements {
		e := &c.elements[i]
		if e.kind == kindL {
			t.indI[i] = t.x[e.branch]
		}
	}
}

func (t *Transient) nodeV(nd Node) float64 {
	if nd == Ground {
		return 0
	}
	return t.x[int(nd)-1]
}

// branchVoltagePrev returns the element's branch voltage at the
// previous solution (used for the inductor companion RHS).
func (t *Transient) branchVoltagePrev(e *element) float64 {
	return t.nodeV(e.a) - t.nodeV(e.b)
}

// V returns the most recent voltage at a node.
func (t *Transient) V(nd Node) float64 { return t.nodeV(nd) }

// StepTrace advances the simulation len(src) steps in one call: step s
// drives source ref with src[s]*mul/div + add and records node nd's
// voltage into dst[s]. It is the batched trace-replay kernel — no
// per-step method dispatch, no allocation, indices and companion
// conductances resolved at compile time, bounds checks hoisted by
// slicing once up front. The arithmetic replicates SetSourceRef + Step
// + V exactly (same addends, same order, same precomputed constants),
// so a StepTrace run is bit-identical to the equivalent per-cycle loop.
//
// The (mul, div, add) form exists so the testbed can reproduce its
// amps conversion energy*1e-12/(dt*supply) + leakage without a
// per-cycle closure; pass (1, 1, 0) to feed src through unchanged.
func (t *Transient) StepTrace(nd Node, ref int, dst, src []float64, mul, div, add float64) {
	cp := t.cp
	n := len(src)
	if len(dst) < n {
		panic("circuit: StepTrace dst shorter than src")
	}
	dst = dst[:n]
	ops, capOps, indOps := cp.stepOps, cp.capOps, cp.indOps
	b, x := t.rhs, t.x
	capV, capI, indI, sources := t.capV, t.capI, t.indI, t.sources
	lu := cp.lu
	h := cp.h
	di := int(nd) - 1
	for s := 0; s < n; s++ {
		sources[ref] = src[s]*mul/div + add
		for i := range b {
			b[i] = 0
		}
		for oi := range ops {
			op := &ops[oi]
			switch op.kind {
			case kindC:
				ieq := op.g*capV[op.ei] + capI[op.ei]
				if op.ia >= 0 {
					b[op.ia] += ieq
				}
				if op.ib >= 0 {
					b[op.ib] -= ieq
				}
			case kindL:
				var vp float64
				if op.ia >= 0 {
					vp = x[op.ia]
				}
				if op.ib >= 0 {
					vp -= x[op.ib]
				}
				b[op.br] = -op.g*indI[op.ei] - vp
			case kindV:
				b[op.br] = sources[op.ei]
			default: // kindI
				v := sources[op.ei]
				if op.ia >= 0 {
					b[op.ia] -= v
				}
				if op.ib >= 0 {
					b[op.ib] += v
				}
			}
		}
		lu.solve(b, x)
		t.time += h
		for oi := range capOps {
			op := &capOps[oi]
			var vNew float64
			if op.ia >= 0 {
				vNew = x[op.ia]
			}
			if op.ib >= 0 {
				vNew -= x[op.ib]
			}
			iNew := op.g*(vNew-capV[op.ei]) - capI[op.ei]
			capV[op.ei], capI[op.ei] = vNew, iNew
		}
		for oi := range indOps {
			op := &indOps[oi]
			indI[op.ei] = x[op.br]
		}
		if di >= 0 {
			dst[s] = x[di]
		} else {
			dst[s] = 0
		}
	}
}

// StateDim returns the length of the dynamic-state vector exchanged by
// StateVec/SetStateVec: the MNA solution plus the capacitor and
// inductor companion histories.
func (cp *Compiled) StateDim() int { return cp.n + 2*len(cp.capOps) + len(cp.indOps) }

// StateDim returns the length of this state's dynamic-state vector.
func (t *Transient) StateDim() int { return t.cp.StateDim() }

// StateVec copies the complete dynamic state into dst (length ≥
// StateDim): the solution vector x, then (capV, capI) per capacitor,
// then indI per inductor. Together with the live source values — which
// the caller holds fixed or re-drives per step — this vector fully
// determines all future steps: the step map is affine in it, which is
// what lets the trace-replay engine build an exact per-period linear
// model of the network (source values and simulation time are
// deliberately excluded; neither feeds the dynamics).
func (t *Transient) StateVec(dst []float64) {
	cp := t.cp
	i := copy(dst, t.x)
	for oi := range cp.capOps {
		ei := cp.capOps[oi].ei
		dst[i] = t.capV[ei]
		dst[i+1] = t.capI[ei]
		i += 2
	}
	for oi := range cp.indOps {
		dst[i] = t.indI[cp.indOps[oi].ei]
		i++
	}
}

// SetStateVec overwrites the dynamic state from a vector laid out as by
// StateVec.
func (t *Transient) SetStateVec(src []float64) {
	cp := t.cp
	i := copy(t.x, src[:cp.n])
	for oi := range cp.capOps {
		ei := cp.capOps[oi].ei
		t.capV[ei] = src[i]
		t.capI[ei] = src[i+1]
		i += 2
	}
	for oi := range cp.indOps {
		t.indI[cp.indOps[oi].ei] = src[i]
		i++
	}
}

// MaxStateDelta returns the largest elementwise difference between this
// state and o across the solution vector, companion history and live
// sources, scaled relative for magnitudes above 1. Both states must
// share one Compiled. The trace-replay early exit uses it to decide
// when the PDN response over one drive period has converged.
func (t *Transient) MaxStateDelta(o *Transient) float64 {
	if t.cp != o.cp {
		panic("circuit: MaxStateDelta across different compiled systems")
	}
	var d float64
	acc := func(a, b []float64) {
		for i := range a {
			diff := math.Abs(a[i] - b[i])
			if s := math.Max(math.Abs(a[i]), math.Abs(b[i])); s > 1 {
				diff /= s
			}
			if diff > d {
				d = diff
			}
		}
	}
	acc(t.x, o.x)
	acc(t.capV, o.capV)
	acc(t.capI, o.capI)
	acc(t.indI, o.indI)
	acc(t.sources, o.sources)
	return d
}

// BranchCurrent returns the most recent current through a named V
// source or inductor (positive a→b).
func (t *Transient) BranchCurrent(name string) (float64, error) {
	c := t.cp.c
	for i := range c.elements {
		e := &c.elements[i]
		if e.name == name && (e.kind == kindV || e.kind == kindL) {
			return t.x[e.branch], nil
		}
	}
	return 0, fmt.Errorf("circuit: no branch named %q", name)
}
