package circuit

import "fmt"

// Node identifies a circuit node. Ground is the predeclared node 0.
type Node int

// Ground is the reference node; its voltage is 0 by definition.
const Ground Node = 0

// elemKind enumerates element types.
type elemKind uint8

const (
	kindR elemKind = iota
	kindC
	kindL
	kindV
	kindI
)

// element is one two-terminal circuit element between nodes a and b.
// For sources, current flows from a through the source to b (so a
// positive ISource value *draws* current out of node a — the convention
// used for the CPU's current sink).
type element struct {
	kind elemKind
	a, b Node
	val  float64 // R in ohms, C in farads, L in henries, V in volts, I in amps (initial)
	name string
	// branch is the extra MNA unknown index for V sources and
	// inductors, assigned at compile time.
	branch int
}

// Circuit is a netlist under construction. Add elements, then Compile a
// transient or AC view.
type Circuit struct {
	nodes    int // node count including ground
	elements []element
}

// New returns an empty circuit with only the ground node.
func New() *Circuit {
	return &Circuit{nodes: 1}
}

// NewNode allocates a fresh node.
func (c *Circuit) NewNode() Node {
	n := Node(c.nodes)
	c.nodes++
	return n
}

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return c.nodes }

func (c *Circuit) checkNode(n Node) {
	if n < 0 || int(n) >= c.nodes {
		panic(fmt.Sprintf("circuit: node %d out of range (have %d)", n, c.nodes))
	}
}

func (c *Circuit) add(kind elemKind, a, b Node, val float64, name string) {
	c.checkNode(a)
	c.checkNode(b)
	if a == b {
		panic(fmt.Sprintf("circuit: element %s shorts node %d to itself", name, a))
	}
	c.elements = append(c.elements, element{kind: kind, a: a, b: b, val: val, name: name})
}

// R adds a resistor of r ohms between a and b.
func (c *Circuit) R(name string, a, b Node, r float64) {
	if r <= 0 {
		panic("circuit: resistance must be positive: " + name)
	}
	c.add(kindR, a, b, r, name)
}

// C adds a capacitor of f farads between a and b.
func (c *Circuit) C(name string, a, b Node, f float64) {
	if f <= 0 {
		panic("circuit: capacitance must be positive: " + name)
	}
	c.add(kindC, a, b, f, name)
}

// L adds an inductor of h henries between a and b.
func (c *Circuit) L(name string, a, b Node, h float64) {
	if h <= 0 {
		panic("circuit: inductance must be positive: " + name)
	}
	c.add(kindL, a, b, h, name)
}

// V adds an ideal DC voltage source: v(a) - v(b) = volts. The value can
// be changed per-step during transient simulation via SetSource.
func (c *Circuit) V(name string, a, b Node, volts float64) {
	c.add(kindV, a, b, volts, name)
}

// I adds a current source drawing amps out of node a and returning into
// node b. The value can be changed per-step via SetSource.
func (c *Circuit) I(name string, a, b Node, amps float64) {
	c.add(kindI, a, b, amps, name)
}

// findSource returns the element index of the named source.
func (c *Circuit) findSource(name string) (int, error) {
	for i := range c.elements {
		e := &c.elements[i]
		if e.name == name && (e.kind == kindV || e.kind == kindI) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("circuit: no source named %q", name)
}
