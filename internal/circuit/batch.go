package circuit

// TransientBatch advances several independent Transient states in
// lockstep over one shared Compiled system — the multi-lane replay
// kernel. State is held structure-of-arrays with the lane index minor
// (entry [i*lanes + l] is state element i of lane l), so each pass of
// the kernel loads every factored-matrix coefficient and element
// record once and applies it to all lanes: the matrix memory traffic
// a one-lane replay pays per candidate is amortized across the batch,
// and the lanes' independent dependency chains fill the latency
// bubbles that dominate a small serial triangular solve.
//
// Per lane, StepTraceBatch performs exactly the same floating-point
// operations in the same order as Transient.StepTrace would on that
// lane alone (the lane loop is always innermost, over shared
// coefficients), so every lane's trajectory is bit-identical to a
// serial replay regardless of batch width or composition.
type TransientBatch struct {
	cp    *Compiled
	lanes int

	// SoA state, lane-minor: [i*lanes + l].
	rhs     []float64
	x       []float64
	sources []float64
	capV    []float64
	capI    []float64
	indI    []float64
	time    []float64 // per lane
}

// NewBatch returns a batch of `lanes` states, each at the compiled DC
// operating point. Load lanes from live states (LoadLane) or state
// vectors (SetLaneStateVec) before stepping.
func (cp *Compiled) NewBatch(lanes int) *TransientBatch {
	if lanes < 1 {
		panic("circuit: batch needs at least one lane")
	}
	ne := len(cp.sources0)
	tb := &TransientBatch{
		cp:      cp,
		lanes:   lanes,
		rhs:     make([]float64, cp.n*lanes),
		x:       make([]float64, cp.n*lanes),
		sources: make([]float64, ne*lanes),
		capV:    make([]float64, ne*lanes),
		capI:    make([]float64, ne*lanes),
		indI:    make([]float64, ne*lanes),
		time:    make([]float64, lanes),
	}
	for l := 0; l < lanes; l++ {
		scatter(tb.x, cp.x0, lanes, l)
		scatter(tb.sources, cp.sources0, lanes, l)
		scatter(tb.capV, cp.capV0, lanes, l)
		scatter(tb.capI, cp.capI0, lanes, l)
		scatter(tb.indI, cp.indI0, lanes, l)
	}
	return tb
}

// Lanes returns the current number of lanes (shrinks via DropLane).
func (tb *TransientBatch) Lanes() int { return tb.lanes }

// scatter writes src into column l of the [len(src) × L] array dst.
func scatter(dst, src []float64, L, l int) {
	for i, v := range src {
		dst[i*L+l] = v
	}
}

// gather reads column l of the [len(dst) × L] array src into dst.
func gather(dst, src []float64, L, l int) {
	for i := range dst {
		dst[i] = src[i*L+l]
	}
}

// LoadLane copies t's live state (solution vector, companion history,
// source values, simulation time) into lane l. Both must share one
// Compiled.
func (tb *TransientBatch) LoadLane(l int, t *Transient) {
	if t.cp != tb.cp {
		panic("circuit: LoadLane across different compiled systems")
	}
	tb.checkLane(l)
	L := tb.lanes
	scatter(tb.x, t.x, L, l)
	scatter(tb.sources, t.sources, L, l)
	scatter(tb.capV, t.capV, L, l)
	scatter(tb.capI, t.capI, L, l)
	scatter(tb.indI, t.indI, L, l)
	tb.time[l] = t.time
}

// StoreLane copies lane l's state back into t. Both must share one
// Compiled. A LoadLane / StepTraceBatch / StoreLane round trip leaves
// t bit-identical to the equivalent serial StepTrace run.
func (tb *TransientBatch) StoreLane(l int, t *Transient) {
	if t.cp != tb.cp {
		panic("circuit: StoreLane across different compiled systems")
	}
	tb.checkLane(l)
	L := tb.lanes
	gather(t.x, tb.x, L, l)
	gather(t.sources, tb.sources, L, l)
	gather(t.capV, tb.capV, L, l)
	gather(t.capI, tb.capI, L, l)
	gather(t.indI, tb.indI, L, l)
	t.time = tb.time[l]
}

// SetLaneStateVec overwrites lane l's dynamic state from a vector laid
// out as by Transient.StateVec (sources and time are untouched — load
// them first via LoadLane).
func (tb *TransientBatch) SetLaneStateVec(l int, src []float64) {
	tb.checkLane(l)
	cp := tb.cp
	L := tb.lanes
	for i := 0; i < cp.n; i++ {
		tb.x[i*L+l] = src[i]
	}
	i := cp.n
	for oi := range cp.capOps {
		ei := cp.capOps[oi].ei
		tb.capV[ei*L+l] = src[i]
		tb.capI[ei*L+l] = src[i+1]
		i += 2
	}
	for oi := range cp.indOps {
		tb.indI[cp.indOps[oi].ei*L+l] = src[i]
		i++
	}
}

// LaneStateVec copies lane l's dynamic state into dst (length ≥
// StateDim), in Transient.StateVec's layout.
func (tb *TransientBatch) LaneStateVec(l int, dst []float64) {
	tb.checkLane(l)
	cp := tb.cp
	L := tb.lanes
	for i := 0; i < cp.n; i++ {
		dst[i] = tb.x[i*L+l]
	}
	i := cp.n
	for oi := range cp.capOps {
		ei := cp.capOps[oi].ei
		dst[i] = tb.capV[ei*L+l]
		dst[i+1] = tb.capI[ei*L+l]
		i += 2
	}
	for oi := range cp.indOps {
		dst[i] = tb.indI[cp.indOps[oi].ei*L+l]
		i++
	}
}

func (tb *TransientBatch) checkLane(l int) {
	if l < 0 || l >= tb.lanes {
		panic("circuit: lane index out of range")
	}
}

// DropLane retires lane l: the last lane's state moves into slot l
// (swap-remove, the caller mirrors the same swap in its own lane
// bookkeeping) and the batch shrinks to lanes-1 columns in place.
// Replay uses it when a candidate's stream ends before its
// batchmates'.
func (tb *TransientBatch) DropLane(l int) {
	tb.checkLane(l)
	L := tb.lanes
	tb.rhs = dropCol(tb.rhs, L, l)
	tb.x = dropCol(tb.x, L, l)
	tb.sources = dropCol(tb.sources, L, l)
	tb.capV = dropCol(tb.capV, L, l)
	tb.capI = dropCol(tb.capI, L, l)
	tb.indI = dropCol(tb.indI, L, l)
	tb.time[l] = tb.time[L-1]
	tb.time = tb.time[:L-1]
	tb.lanes = L - 1
}

// dropCol removes column l from a row-major [rows × L] array in place:
// column L-1 first replaces column l, then the rows repack at stride
// L-1. copy handles the overlapping moves (dst is never ahead of src).
func dropCol(a []float64, L, l int) []float64 {
	rows := len(a) / L
	for i := 0; i < rows; i++ {
		a[i*L+l] = a[i*L+L-1]
	}
	w := 0
	for i := 0; i < rows; i++ {
		copy(a[w:w+L-1], a[i*L:i*L+L-1])
		w += L - 1
	}
	return a[:rows*(L-1)]
}

// StepTraceBatch advances every lane n steps in one kernel pass: at
// step s, lane l drives source ref with src[l][s]*mul[l]/div[l] +
// add[l] and records node nd's voltage into dst[l][s]. The per-lane
// arithmetic replicates Transient.StepTrace exactly (same addends,
// same order, shared precomputed constants), so each lane's output and
// end state are bit-identical to a serial StepTrace of that lane.
func (tb *TransientBatch) StepTraceBatch(nd Node, ref int, dst, src [][]float64, mul, div, add []float64, n int) {
	cp := tb.cp
	L := tb.lanes
	if L == 0 || n == 0 {
		return
	}
	if len(dst) < L || len(src) < L || len(mul) < L || len(div) < L || len(add) < L {
		panic("circuit: StepTraceBatch lane parameters shorter than batch")
	}
	for l := 0; l < L; l++ {
		if len(src[l]) < n || len(dst[l]) < n {
			panic("circuit: StepTraceBatch lane buffer shorter than n")
		}
	}
	ops, capOps, indOps := cp.stepOps, cp.capOps, cp.indOps
	b, x := tb.rhs, tb.x
	capV, capI, indI, sources := tb.capV, tb.capI, tb.indI, tb.sources
	lu := cp.lu
	h := cp.h
	di := int(nd) - 1
	for s := 0; s < n; s++ {
		for l := 0; l < L; l++ {
			sources[ref*L+l] = src[l][s]*mul[l]/div[l] + add[l]
		}
		for i := range b {
			b[i] = 0
		}
		for oi := range ops {
			op := &ops[oi]
			switch op.kind {
			case kindC:
				cv := capV[op.ei*L : op.ei*L+L]
				ci := capI[op.ei*L : op.ei*L+L]
				for l := 0; l < L; l++ {
					ieq := op.g*cv[l] + ci[l]
					if op.ia >= 0 {
						b[op.ia*L+l] += ieq
					}
					if op.ib >= 0 {
						b[op.ib*L+l] -= ieq
					}
				}
			case kindL:
				ii := indI[op.ei*L : op.ei*L+L]
				bb := b[op.br*L : op.br*L+L]
				for l := 0; l < L; l++ {
					var vp float64
					if op.ia >= 0 {
						vp = x[op.ia*L+l]
					}
					if op.ib >= 0 {
						vp -= x[op.ib*L+l]
					}
					bb[l] = -op.g*ii[l] - vp
				}
			case kindV:
				copy(b[op.br*L:op.br*L+L], sources[op.ei*L:op.ei*L+L])
			default: // kindI
				sv := sources[op.ei*L : op.ei*L+L]
				for l := 0; l < L; l++ {
					v := sv[l]
					if op.ia >= 0 {
						b[op.ia*L+l] -= v
					}
					if op.ib >= 0 {
						b[op.ib*L+l] += v
					}
				}
			}
		}
		lu.solveBatch(b, x, L)
		for l := 0; l < L; l++ {
			tb.time[l] += h
		}
		for oi := range capOps {
			op := &capOps[oi]
			cv := capV[op.ei*L : op.ei*L+L]
			ci := capI[op.ei*L : op.ei*L+L]
			for l := 0; l < L; l++ {
				var vNew float64
				if op.ia >= 0 {
					vNew = x[op.ia*L+l]
				}
				if op.ib >= 0 {
					vNew -= x[op.ib*L+l]
				}
				iNew := op.g*(vNew-cv[l]) - ci[l]
				cv[l], ci[l] = vNew, iNew
			}
		}
		for oi := range indOps {
			op := &indOps[oi]
			copy(indI[op.ei*L:op.ei*L+L], x[op.br*L:op.br*L+L])
		}
		if di >= 0 {
			xv := x[di*L : di*L+L]
			for l := 0; l < L; l++ {
				dst[l][s] = xv[l]
			}
		} else {
			for l := 0; l < L; l++ {
				dst[l][s] = 0
			}
		}
	}
}
