package circuit

import (
	"math"
	"sync"
	"testing"
)

// rlcLadder builds a small two-stage RLC network with a driven V source
// and a current sink — the same element mix the PDN uses.
func rlcLadder() (*Circuit, Node) {
	c := New()
	nIn := c.NewNode()
	nMid := c.NewNode()
	nOut := c.NewNode()
	c.V("vin", nIn, Ground, 1.2)
	c.R("r1", nIn, nMid, 0.01)
	c.L("l1", nMid, nOut, 1e-9)
	c.C("c1", nOut, Ground, 1e-6)
	c.R("r2", nOut, Ground, 50)
	c.I("sink", nOut, Ground, 0)
	return c, nOut
}

// driveSteps steps the transient with a square-wave sink current and
// records the output voltage each step.
func driveSteps(t *Transient, out Node, sinkRef, steps int) []float64 {
	vs := make([]float64, steps)
	for i := 0; i < steps; i++ {
		amps := 0.0
		if (i/7)%2 == 0 {
			amps = 3.5
		}
		t.SetSourceRef(sinkRef, amps)
		t.Step()
		vs[i] = t.V(out)
	}
	return vs
}

func sinkRefOf(t *testing.T, tr *Transient) int {
	t.Helper()
	ref, err := tr.SourceRef("sink")
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestCompiledMatchesNewTransientBitwise(t *testing.T) {
	const steps = 500
	const h = 1e-10

	c1, out1 := rlcLadder()
	slow, err := NewTransient(c1, h)
	if err != nil {
		t.Fatal(err)
	}
	want := driveSteps(slow, out1, sinkRefOf(t, slow), steps)

	c2, out2 := rlcLadder()
	cp, err := Compile(c2, h)
	if err != nil {
		t.Fatal(err)
	}
	fast := cp.NewState()
	got := driveSteps(fast, out2, sinkRefOf(t, fast), steps)

	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("step %d: compiled path %v != slow path %v (must be bit-identical)", i, got[i], want[i])
		}
	}
}

func TestResetReproducesFreshStateBitwise(t *testing.T) {
	const steps = 300
	c, out := rlcLadder()
	cp, err := Compile(c, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	st := cp.NewState()
	ref := sinkRefOf(t, st)
	first := driveSteps(st, out, ref, steps)
	// Dirty the state further, including a source change, then reset.
	st.MustSetSource("vin", 0.9)
	driveSteps(st, out, ref, 50)
	st.Reset()
	second := driveSteps(st, out, ref, steps)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("step %d after Reset: %v != %v", i, second[i], first[i])
		}
	}
}

func TestCloneIsIndependentAndExact(t *testing.T) {
	c, out := rlcLadder()
	cp, err := Compile(c, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	a := cp.NewState()
	refA := sinkRefOf(t, a)
	driveSteps(a, out, refA, 123) // advance to an arbitrary mid-run state

	b := a.Clone()
	refB := sinkRefOf(t, b)
	if a.Time() != b.Time() || a.V(out) != b.V(out) {
		t.Fatal("clone does not match source state")
	}
	// Continue both identically: must stay bit-identical.
	va := driveSteps(a, out, refA, 200)
	vb := driveSteps(b, out, refB, 200)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("clone diverged at step %d: %v != %v", i, vb[i], va[i])
		}
	}
	// Stepping one must not disturb the other.
	tb := b.Time()
	driveSteps(a, out, refA, 10)
	if b.Time() != tb {
		t.Error("stepping the original advanced the clone")
	}
}

func TestCopyStateFromRejectsForeignCompiled(t *testing.T) {
	c1, _ := rlcLadder()
	c2, _ := rlcLadder()
	cpA, err := Compile(c1, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	cpB, err := Compile(c2, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("CopyStateFrom across compiled systems did not panic")
		}
	}()
	cpA.NewState().CopyStateFrom(cpB.NewState())
}

func TestConcurrentStatesOverOneCompiled(t *testing.T) {
	c, out := rlcLadder()
	cp, err := Compile(c, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference.
	ref := cp.NewState()
	want := driveSteps(ref, out, sinkRefOf(t, ref), 400)

	const workers = 8
	var wg sync.WaitGroup
	got := make([][]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := cp.NewState()
			r, err := st.SourceRef("sink")
			if err != nil {
				panic(err)
			}
			got[w] = driveSteps(st, out, r, 400)
		}(w)
	}
	wg.Wait()
	for w := range got {
		for i := range want {
			if got[w][i] != want[i] {
				t.Fatalf("worker %d step %d: %v != %v", w, i, got[w][i], want[i])
			}
		}
	}
}

func TestCompileValidatesStep(t *testing.T) {
	c, _ := rlcLadder()
	if _, err := Compile(c, 0); err == nil {
		t.Error("zero step size accepted")
	}
	if _, err := Compile(c, math.Inf(1)); err == nil {
		// Infinite step: capacitor conductance collapses to zero; the
		// matrix may or may not factor, but a NaN must not escape.
		t.Skip("inf step factored; acceptable")
	}
}
