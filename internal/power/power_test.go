package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModelsValidate(t *testing.T) {
	for _, m := range []Model{BulldozerModel(), PhenomModel()} {
		if err := m.Validate(); err != nil {
			t.Error(err)
		}
	}
	bad := BulldozerModel()
	bad.FrontEndPJPerOp = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative coefficient accepted")
	}
	if err := (Model{}).Validate(); err == nil {
		t.Error("degenerate model accepted")
	}
}

func TestAmpsConversion(t *testing.T) {
	// 1000 pJ over 1 ns at 1.25 V: P = 1 W → I = 0.8 A.
	got := Amps(1000, 1e-9, 1.25)
	if math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Amps = %v, want 0.8", got)
	}
	if Amps(1000, 0, 1.25) != 0 || Amps(1000, 1e-9, 0) != 0 {
		t.Error("degenerate inputs should yield zero")
	}
}

func TestLeakage(t *testing.T) {
	m := BulldozerModel()
	got := m.LeakageAmps(4, 1.25)
	want := m.LeakageWattsPerModule * 4 / 1.25
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("leakage = %v, want %v", got, want)
	}
	if m.LeakageAmps(4, 0) != 0 {
		t.Error("zero volts should yield zero leakage")
	}
}

func TestPhenomHasSmallerSwingProfile(t *testing.T) {
	bd, ph := BulldozerModel(), PhenomModel()
	// §5.C: the older part gates less aggressively — its baseline burn
	// (clock + FP idle) must be higher relative to Bulldozer's.
	if ph.ClockPJPerModuleCycle <= bd.ClockPJPerModuleCycle {
		t.Error("Phenom clock baseline should exceed Bulldozer's")
	}
	if ph.FPIdlePJPerCycle <= bd.FPIdlePJPerCycle {
		t.Error("Phenom FP idle burn should exceed Bulldozer's")
	}
	if ph.LeakageWattsPerModule <= bd.LeakageWattsPerModule {
		t.Error("45 nm leakage should exceed 32 nm")
	}
}

func TestQuickAmpsLinear(t *testing.T) {
	f := func(pjRaw uint16) bool {
		pj := float64(pjRaw)
		a := Amps(pj, 1e-9, 1.25)
		b := Amps(2*pj, 1e-9, 1.25)
		return math.Abs(b-2*a) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
