// Package power converts microarchitectural activity into current
// draw. Per-opcode execution energies live in package isa; this package
// adds the machine-level components (clock tree, front end, schedulers,
// leakage) and the conversion from per-cycle energy to the amps the PDN
// model sinks.
package power

import "fmt"

// Model holds the machine-level energy coefficients. Values are
// calibrated so a Bulldozer-style module swings between roughly 2 W
// (NOP loop) and 6 W (dense FP loop) — a chip-level ΔI of tens of amps
// at 1.25 V, the regime in which the paper's stressmarks operate.
type Model struct {
	// ClockPJPerModuleCycle is dynamic clock-tree + always-on energy
	// per module per cycle.
	ClockPJPerModuleCycle float64
	// CorePJPerActiveCycle is charged per core per cycle in which the
	// core decoded or issued anything (pipeline latches, local clocks).
	CorePJPerActiveCycle float64
	// FrontEndPJPerOp is fetch+decode energy per instruction, including
	// NOPs — NOPs "consume fetch and decode resources but do not affect
	// other structures" (§5.A.5).
	FrontEndPJPerOp float64
	// SchedPJPerIssue is scheduler wakeup/select energy per issued uop.
	SchedPJPerIssue float64
	// LeakageWattsPerModule is static power per module.
	LeakageWattsPerModule float64
	// FPIdlePJPerCycle models the clock-gated FPU's residual burn per
	// module cycle when no FP op issues. Phenom's is higher relative to
	// its peak ("does not manage power as aggressively", §5.C),
	// shrinking its high/low swing.
	FPIdlePJPerCycle float64
}

// Validate checks coefficients are non-negative and the model is usable.
func (m Model) Validate() error {
	for _, v := range []float64{
		m.ClockPJPerModuleCycle, m.CorePJPerActiveCycle, m.FrontEndPJPerOp,
		m.SchedPJPerIssue, m.LeakageWattsPerModule, m.FPIdlePJPerCycle,
	} {
		if v < 0 {
			return fmt.Errorf("power: negative coefficient in model")
		}
	}
	if m.ClockPJPerModuleCycle == 0 && m.FrontEndPJPerOp == 0 {
		return fmt.Errorf("power: degenerate model")
	}
	return nil
}

// BulldozerModel returns coefficients for the aggressive-clock-gating
// 32 nm Bulldozer-style chip: a large gap between idle and busy.
func BulldozerModel() Model {
	return Model{
		ClockPJPerModuleCycle: 300,
		CorePJPerActiveCycle:  90,
		FrontEndPJPerOp:       35,
		SchedPJPerIssue:       18,
		LeakageWattsPerModule: 1.1,
		FPIdlePJPerCycle:      25,
	}
}

// PhenomModel returns coefficients for the 45 nm Phenom-II-style chip:
// higher baseline (weaker clock gating, more leakage) and therefore
// less variation between the high- and low-power regions.
func PhenomModel() Model {
	return Model{
		ClockPJPerModuleCycle: 520,
		CorePJPerActiveCycle:  120,
		FrontEndPJPerOp:       40,
		SchedPJPerIssue:       20,
		LeakageWattsPerModule: 2.2,
		FPIdlePJPerCycle:      140,
	}
}

// Amps converts one cycle's energy (picojoules) into the average
// current drawn over that cycle at supply voltage vdd with cycle time
// dt seconds: I = E/(dt·V).
func Amps(energyPJ, dt, vdd float64) float64 {
	if dt <= 0 || vdd <= 0 {
		return 0
	}
	return energyPJ * 1e-12 / (dt * vdd)
}

// LeakageAmps returns the chip's static current at vdd.
func (m Model) LeakageAmps(modules int, vdd float64) float64 {
	if vdd <= 0 {
		return 0
	}
	return m.LeakageWattsPerModule * float64(modules) / vdd
}
