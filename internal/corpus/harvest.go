package corpus

import (
	"encoding/base64"
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/testbed"
)

// Default measurement window for harvested entries. Longer than the
// search's own fitness window (5 000 cycles): the corpus baseline is
// measured once and replayed forever, so it can afford a window that
// covers several resonance build-ups.
const (
	DefaultMeasureCycles = 25000
	DefaultWarmupCycles  = 3000
)

// HarvestConfig shapes how a stressmark is baselined into an entry.
type HarvestConfig struct {
	// Name overrides the stressmark's own name (optional).
	Name string
	// MeasureCycles / WarmupCycles define the baseline measurement
	// window (0 = the Default*Cycles above).
	MeasureCycles uint64
	WarmupCycles  uint64
	// DroopTolV sets the entry's replay tolerance; 0 demands bit-exact
	// replay (the right default for a deterministic simulator).
	DroopTolV float64
	// FailFloor, when > 0, additionally baselines the voltage-at-failure
	// ladder down to that supply floor. Costs a descent of full
	// measurements at harvest AND at every replay — reserve it for a
	// representative entry or two per platform.
	FailFloor float64
	// Dither, when set, is baked into the entry's measurement config
	// (dithered stressmarks are meaningless without their schedule).
	Dither []testbed.DitherSpec
}

// Harvest measures a trained stressmark on cp and returns a sealed-
// ready entry carrying the genome, program image, measurement config,
// platform digest and expected results. The caller deposits it with
// DB.Add. platformName must be a ResolvePlatform name describing cp —
// it is recorded so replays can rebuild the platform, and cross-checked
// against cp's digest at replay time, not here.
func Harvest(cp *testbed.CompiledPlatform, platformName string, sm *core.Stressmark, cfg HarvestConfig) (*Entry, error) {
	if sm == nil || sm.Program == nil {
		return nil, fmt.Errorf("corpus: harvest: stressmark has no program")
	}
	if _, err := ResolvePlatform(platformName); err != nil {
		return nil, fmt.Errorf("corpus: harvest: %w", err)
	}
	blob, err := asm.Encode(sm.Program)
	if err != nil {
		return nil, fmt.Errorf("corpus: harvest: %w", err)
	}
	name := cfg.Name
	if name == "" {
		name = sm.Name
	}
	measure := cfg.MeasureCycles
	if measure == 0 {
		measure = DefaultMeasureCycles
	}
	warmup := cfg.WarmupCycles
	if warmup == 0 {
		warmup = DefaultWarmupCycles
	}
	e := &Entry{
		Version:       Version,
		Name:          name,
		Platform:      platformName,
		Threads:       sm.Threads,
		LoopCycles:    sm.LoopCycles,
		Mode:          int(sm.Mode),
		FPThrottle:    sm.FPThrottle,
		MeasureCycles: measure,
		WarmupCycles:  warmup,
		Dither:        cfg.Dither,
		Genome:        sm.Genome,
		Program:       base64.StdEncoding.EncodeToString(blob),
	}
	rc, err := e.RunConfig(cp.Platform().Chip)
	if err != nil {
		return nil, err
	}
	m, err := cp.Run(rc)
	if err != nil {
		return nil, fmt.Errorf("corpus: harvest %s: %w", name, err)
	}
	e.Expected = Expected{
		DroopV:      m.MaxDroopV,
		DroopTolV:   cfg.DroopTolV,
		MinV:        m.MinV,
		AvgPowerW:   m.AvgPowerW,
		Fingerprint: Fingerprint(m),
	}
	if cfg.FailFloor > 0 {
		v, found, err := cp.FindFailureVoltage(rc, cfg.FailFloor)
		if err != nil {
			return nil, fmt.Errorf("corpus: harvest %s: failure ladder: %w", name, err)
		}
		e.Expected.FailFloor = cfg.FailFloor
		e.Expected.FailVolts = v
		e.Expected.FailFound = found
	}
	e.PlatformDigest = testbed.PlatformDigest(cp.Platform())
	return e, nil
}
