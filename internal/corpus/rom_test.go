package corpus

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/testbed"
)

// TestReplayROMToleranceIsPlatformSkew: enabling the reduced-order
// replay kernel is a platform change — its tolerance is part of the
// platform digest — so replaying an exact-kernel baseline on a
// ROM-enabled platform must classify as platform skew, never DRIFT,
// even when the ROM's sub-µV error leaves every number inside the
// entry's gates. And on a matching ROM platform the corpus round-trips:
// harvest and replay under the same tolerance pass.
func TestReplayROMToleranceIsPlatformSkew(t *testing.T) {
	exact := compile(t, testbed.Bulldozer())
	e := harvestEntry(t, exact, HarvestConfig{})

	rom := testbed.Bulldozer()
	rom.ROMTolV = 1e-5
	rcp := compile(t, rom)

	res := Replay(rcp, []*Entry{e}, ReplayOptions{})
	if res[0].Verdict != PlatformSkew {
		t.Fatalf("exact baseline on ROM platform: verdict %s (%s), want platform-skew",
			res[0].Verdict, res[0].Detail)
	}

	re := harvestEntry(t, rcp, HarvestConfig{})
	same := Replay(rcp, []*Entry{re}, ReplayOptions{})
	if same[0].Verdict != Pass {
		t.Fatalf("ROM baseline on same ROM platform: verdict %s (%s), want pass",
			same[0].Verdict, same[0].Detail)
	}
}

// periodicStressmark is a jmp-closed steady-state loop the trace
// detector verifies periodic — the shape that rides the modal periodic
// replay path on a ROM-enabled platform.
func periodicStressmark(t *testing.T, name string) *core.Stressmark {
	t.Helper()
	b := asm.NewBuilder(name)
	b.InitToggle(16, 8)
	b.Label("loop")
	for i := 0; i < 18; i++ {
		b.RR("pxor", isa.XMM(i%6), isa.XMM(12+i%4))
		b.RR("mulpd", isa.XMM(6+i%6), isa.XMM(12+(i+1)%4))
		b.Nop(1)
	}
	b.Nop(54)
	b.Branch("jmp", "loop")
	prog := b.MustBuild()
	cg := &core.CodeGen{
		Opcodes:   core.DefaultOpcodeList(),
		Width:     4,
		LoopIters: 1 << 20,
		MemBytes:  4096,
	}
	g := cg.NewGenome(rand.New(rand.NewSource(7)), 6, 3, 18, 0.2)
	return &core.Stressmark{
		Name:       name,
		Threads:    1,
		LoopCycles: 36,
		Mode:       core.Resonance,
		Genome:     g,
		Program:    prog,
	}
}

// TestReplayPeriodicROMToleranceIsPlatformSkew extends the skew
// contract to periodic stressmarks, which now ride the modal-coordinate
// period map when the ROM tolerance admits them: an exact-platform
// baseline replayed under -rom-tol must classify as platform-skew
// (digest moved, explained), never DRIFT — and a ROM-platform baseline
// must round-trip bit-exactly through the modal periodic path.
func TestReplayPeriodicROMToleranceIsPlatformSkew(t *testing.T) {
	sm := periodicStressmark(t, "periodic-mark")
	cfg := HarvestConfig{MeasureCycles: 12000, WarmupCycles: 2000}

	exact := compile(t, testbed.Bulldozer())
	e, err := Harvest(exact, "bulldozer", sm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := exact.TraceStats(); st.Periodic == 0 {
		t.Fatal("stressmark not detected periodic — scenario not exercised")
	}

	rom := testbed.Bulldozer()
	rom.ROMTolV = 1e-5
	rcp := compile(t, rom)
	res := Replay(rcp, []*Entry{e}, ReplayOptions{})
	if res[0].Verdict != PlatformSkew {
		t.Fatalf("periodic exact baseline on ROM platform: verdict %s (%s), want platform-skew",
			res[0].Verdict, res[0].Detail)
	}
	if res[0].Verdict == Drift {
		t.Fatal("periodic ROM replay misclassified as DRIFT")
	}

	re, err := Harvest(rcp, "bulldozer", sm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := Replay(rcp, []*Entry{re}, ReplayOptions{})
	if same[0].Verdict != Pass {
		t.Fatalf("periodic ROM baseline on same ROM platform: verdict %s (%s), want pass",
			same[0].Verdict, same[0].Detail)
	}
	if st := rcp.TraceStats(); st.ModalPeriodic == 0 {
		t.Error("ROM platform never took the modal periodic path")
	}
}
