package corpus

import (
	"testing"

	"repro/internal/testbed"
)

// TestReplayROMToleranceIsPlatformSkew: enabling the reduced-order
// replay kernel is a platform change — its tolerance is part of the
// platform digest — so replaying an exact-kernel baseline on a
// ROM-enabled platform must classify as platform skew, never DRIFT,
// even when the ROM's sub-µV error leaves every number inside the
// entry's gates. And on a matching ROM platform the corpus round-trips:
// harvest and replay under the same tolerance pass.
func TestReplayROMToleranceIsPlatformSkew(t *testing.T) {
	exact := compile(t, testbed.Bulldozer())
	e := harvestEntry(t, exact, HarvestConfig{})

	rom := testbed.Bulldozer()
	rom.ROMTolV = 1e-5
	rcp := compile(t, rom)

	res := Replay(rcp, []*Entry{e}, ReplayOptions{})
	if res[0].Verdict != PlatformSkew {
		t.Fatalf("exact baseline on ROM platform: verdict %s (%s), want platform-skew",
			res[0].Verdict, res[0].Detail)
	}

	re := harvestEntry(t, rcp, HarvestConfig{})
	same := Replay(rcp, []*Entry{re}, ReplayOptions{})
	if same[0].Verdict != Pass {
		t.Fatalf("ROM baseline on same ROM platform: verdict %s (%s), want pass",
			same[0].Verdict, same[0].Detail)
	}
}
