package corpus

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/testbed"
)

// testStressmark builds a small deterministic stressmark without
// running a search: a fixed-seed random genome built through the real
// code generator, which is all harvest and replay care about.
func testStressmark(t *testing.T, name string, threads int) *core.Stressmark {
	t.Helper()
	cg := &core.CodeGen{
		Opcodes:   core.DefaultOpcodeList(),
		Width:     4,
		LoopIters: 1 << 20,
		MemBytes:  4096,
	}
	rng := rand.New(rand.NewSource(11))
	g := cg.NewGenome(rng, 6, 3, 18, 0.2)
	prog, err := cg.Build(name, g)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Stressmark{
		Name:       name,
		Threads:    threads,
		LoopCycles: 36,
		Mode:       core.Resonance,
		Genome:     g,
		Program:    prog,
	}
}

func compile(t *testing.T, p testbed.Platform) *testbed.CompiledPlatform {
	t.Helper()
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// harvestEntry baselines the shared test stressmark with a short
// window so the suite stays fast.
func harvestEntry(t *testing.T, cp *testbed.CompiledPlatform, cfg HarvestConfig) *Entry {
	t.Helper()
	if cfg.MeasureCycles == 0 {
		cfg.MeasureCycles = 6000
	}
	if cfg.WarmupCycles == 0 {
		cfg.WarmupCycles = 2000
	}
	sm := testStressmark(t, "corpus-test-mark", 2)
	e, err := Harvest(cp, "bulldozer", sm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestHarvestAddLoadRoundTrip(t *testing.T) {
	cp := compile(t, testbed.Bulldozer())
	e := harvestEntry(t, cp, HarvestConfig{})

	if e.PlatformDigest != testbed.PlatformDigest(cp.Platform()) {
		t.Error("harvest did not stamp the platform digest")
	}
	if e.Expected.Fingerprint == "" || e.Expected.DroopV <= 0 {
		t.Errorf("harvest baselined nothing: %+v", e.Expected)
	}

	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path, err := db.Add(e)
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(path); !strings.Contains(base, "corpus-test-mark") || !strings.Contains(base, e.ID) {
		t.Errorf("filename %q lacks the name slug or content address", base)
	}

	got, err := db.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(got))
	}
	if !reflect.DeepEqual(got[0], e) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got[0], e)
	}
}

// TestAddIsContentAddressed pins the redux contract: identity excludes
// expectations and the platform digest, so re-baselining the same
// stressmark overwrites its file instead of forking a second entry.
func TestAddIsContentAddressed(t *testing.T) {
	cp := compile(t, testbed.Bulldozer())
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	e1 := harvestEntry(t, cp, HarvestConfig{})
	p1, err := db.Add(e1)
	if err != nil {
		t.Fatal(err)
	}
	// Same identity, different baseline (as redux would produce).
	e2 := harvestEntry(t, cp, HarvestConfig{})
	e2.Expected.DroopV += 0.001
	e2.PlatformDigest = "different-digest"
	p2, err := db.Add(e2)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("re-baselined entry forked a new file: %s vs %s", p1, p2)
	}
	if db.Len() != 1 {
		t.Errorf("corpus holds %d files, want 1", db.Len())
	}

	// A genuinely different identity must land elsewhere.
	e3 := harvestEntry(t, cp, HarvestConfig{Name: "other-mark"})
	p3, err := db.Add(e3)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("distinct identities collided on one file")
	}
	if db.Len() != 2 {
		t.Errorf("corpus holds %d files, want 2", db.Len())
	}
}

// TestLoadRejectsDamage: the corpus is a source of truth, so any
// corrupt, hand-edited or version-skewed entry must fail the whole
// load loudly — never be skipped.
func TestLoadRejectsDamage(t *testing.T) {
	cp := compile(t, testbed.Bulldozer())

	freshDB := func(t *testing.T) (*DB, string) {
		db, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		path, err := db.Add(harvestEntry(t, cp, HarvestConfig{}))
		if err != nil {
			t.Fatal(err)
		}
		return db, path
	}

	t.Run("bit-flip", func(t *testing.T) {
		db, path := freshDB(t)
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one digit inside the baselined droop value.
		s := strings.Replace(string(blob), `"droop_v": 0.`, `"droop_v": 1.`, 1)
		if s == string(blob) {
			t.Fatal("test setup: droop field not found")
		}
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Load(); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Errorf("tampered entry loaded: err=%v", err)
		}
	})

	t.Run("garbage", func(t *testing.T) {
		db, _ := freshDB(t)
		if err := os.WriteFile(filepath.Join(db.Dir(), "junk.json"), []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Load(); err == nil {
			t.Error("garbage entry loaded")
		}
	})

	t.Run("version-skew", func(t *testing.T) {
		db, path := freshDB(t)
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var e Entry
		if err := json.Unmarshal(blob, &e); err != nil {
			t.Fatal(err)
		}
		e.Version = Version + 1
		out, err := json.Marshal(&e)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Load(); err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("future-version entry loaded: err=%v", err)
		}
	})

	t.Run("id-mismatch", func(t *testing.T) {
		db, path := freshDB(t)
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var e Entry
		if err := json.Unmarshal(blob, &e); err != nil {
			t.Fatal(err)
		}
		e.ID = "0123456789abcdef"
		// Re-seal the checksum so only the content address is wrong.
		e.Checksum = sealChecksum(t, &e)
		out, err := json.Marshal(&e)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Load(); err == nil || !strings.Contains(err.Error(), "address") {
			t.Errorf("address-forged entry loaded: err=%v", err)
		}
	})
}

// sealChecksum recomputes a valid checksum for a (possibly tampered)
// entry so tests can isolate the other verification layers.
func sealChecksum(t *testing.T, e *Entry) string {
	t.Helper()
	c := *e
	c.Checksum = ""
	body, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return fnvHex(body)
}

func fnvHex(b []byte) string {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	out := make([]byte, 0, 16)
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		out = append(out, digits[(h>>(4*uint(i)))&0xf])
	}
	return string(out)
}

func TestAddValidatesEntries(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]Entry{
		"no name":     {Platform: "bulldozer", Program: "x", Threads: 1, MeasureCycles: 100},
		"no platform": {Name: "a", Program: "x", Threads: 1, MeasureCycles: 100},
		"no program":  {Name: "a", Platform: "bulldozer", Threads: 1, MeasureCycles: 100},
		"no threads":  {Name: "a", Platform: "bulldozer", Program: "x", MeasureCycles: 100},
		"no window":   {Name: "a", Platform: "bulldozer", Program: "x", Threads: 1},
	}
	for name, e := range cases {
		e := e
		if _, err := db.Add(&e); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if db.Len() != 0 {
		t.Errorf("invalid entries left %d files behind", db.Len())
	}
}

func TestResolvePlatform(t *testing.T) {
	for _, name := range []string{"bulldozer", "phenom"} {
		if _, err := ResolvePlatform(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ResolvePlatform("sandy-bridge"); err == nil {
		t.Error("unknown platform resolved")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"A-Res 4T":    "a-res-4t",
		"__weird!!":   "weird",
		"":            "entry",
		"...":         "entry",
		"plain":       "plain",
		"Mixed Case9": "mixed-case9",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
