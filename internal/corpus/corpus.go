// Package corpus is a versioned, file-per-entry database of discovered
// stressmarks — the regression memory the search itself lacks. Every
// AUDIT run's value is the worst-case loop it finds; without a corpus
// that artifact dies with the run, and nothing notices a simulator
// change that silently shifts worst-case droop. Each entry records the
// winning genome and program image (the core.Stressmark encoding), the
// search configuration it was trained under, the platform digest it was
// baselined on (testbed.PlatformDigest), and the expected measurement —
// droop, measurement fingerprint, optional failure voltage — with
// tolerances. The Replay engine re-measures every entry and reports
// pass, drift (same platform, different answer: unexplained, a bug) or
// platform skew (the platform description itself changed: explained,
// re-baseline deliberately) per entry.
//
// Entries are content-addressed — the filename stem is a hash of the
// entry's identity (name, platform, config, genome, program), so the
// same stressmark deposited twice lands on the same file — and
// checksummed, so a corrupt or hand-edited entry is rejected loudly at
// load instead of silently gating CI on garbage. Unlike the trace
// store, the corpus is a source of truth: load failures are errors,
// never cache misses. Writes go through fsutil.WriteFileAtomic.
package corpus

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fsutil"
	"repro/internal/testbed"
	"repro/internal/uarch"
)

// Version is the corpus entry format version. Bump on any change to
// the Entry wire form that old readers would misinterpret.
const Version = 1

// entryExt suffixes every corpus entry file.
const entryExt = ".json"

// Expected is the baselined measurement an entry is replayed against.
type Expected struct {
	// DroopV is the worst droop of the baselining measurement.
	DroopV float64 `json:"droop_v"`
	// DroopTolV is the absolute droop tolerance in volts. 0 demands a
	// bit-exact replay: the full measurement fingerprint must match.
	// Positive tolerance relaxes the check to |droop−expected| ≤ tol
	// (for entries meant to survive tolerated numeric changes, e.g. a
	// reduced-order replay kernel gated on a voltage tolerance).
	DroopTolV float64 `json:"droop_tol_v,omitempty"`
	// MinV and AvgPowerW give reviewers scale context for the entry.
	MinV      float64 `json:"min_v"`
	AvgPowerW float64 `json:"avg_power_w"`
	// Fingerprint is the canonical hash of the full Measurement
	// (corpus.Fingerprint): every deterministic field, exact bits.
	Fingerprint string `json:"fingerprint"`
	// Voltage-at-failure baseline: when FailFloor > 0 the ladder ran
	// down to that floor, FailFound reports whether it failed, and
	// FailVolts is the highest failing supply (meaningful when found).
	FailFloor float64 `json:"fail_floor,omitempty"`
	FailVolts float64 `json:"fail_volts,omitempty"`
	FailFound bool    `json:"fail_found,omitempty"`
}

// Entry is one corpus record: a stressmark plus everything needed to
// re-measure it and check the answer.
type Entry struct {
	Version int `json:"version"`
	// ID is the content address of the entry's identity — everything
	// except Expected, PlatformDigest and Checksum — so re-baselining
	// (redux) rewrites an entry in place instead of forking it.
	ID   string `json:"id"`
	Name string `json:"name"`

	// Platform names the test system ("bulldozer", "phenom" — see
	// ResolvePlatform); PlatformDigest pins the exact description the
	// expectations were baselined on.
	Platform       string `json:"platform"`
	PlatformDigest string `json:"platform_digest"`

	// Search / measurement configuration.
	Threads       int                  `json:"threads"`
	LoopCycles    int                  `json:"loop_cycles"`
	Mode          int                  `json:"mode"`
	FPThrottle    int                  `json:"fp_throttle,omitempty"`
	MeasureCycles uint64               `json:"measure_cycles"`
	WarmupCycles  uint64               `json:"warmup_cycles"`
	Dither        []testbed.DitherSpec `json:"dither,omitempty"`

	// Genome is the winning genome; Program the base64-encoded binary
	// object image it builds to (the core.Stressmark encoding).
	Genome  core.Genome `json:"genome"`
	Program string      `json:"program"`

	Expected Expected `json:"expected"`

	// Checksum is the FNV-1a hash (hex) of the entry's canonical JSON
	// with this field empty; verified on load.
	Checksum string `json:"checksum"`
}

// DecodeProgram rebuilds the runnable program from the entry's image.
func (e *Entry) DecodeProgram() (*asm.Program, error) {
	blob, err := base64.StdEncoding.DecodeString(e.Program)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: program image: %w", e.Name, err)
	}
	return asm.Decode(blob)
}

// RunConfig builds the measurement configuration the entry's
// expectations were baselined under.
func (e *Entry) RunConfig(chip uarch.ChipConfig) (testbed.RunConfig, error) {
	prog, err := e.DecodeProgram()
	if err != nil {
		return testbed.RunConfig{}, err
	}
	specs, err := testbed.SpreadPlacement(chip, prog, e.Threads)
	if err != nil {
		return testbed.RunConfig{}, fmt.Errorf("corpus: %s: %w", e.Name, err)
	}
	return testbed.RunConfig{
		Threads:      specs,
		MaxCycles:    e.WarmupCycles + e.MeasureCycles,
		WarmupCycles: e.WarmupCycles,
		FPThrottle:   e.FPThrottle,
		Dither:       e.Dither,
	}, nil
}

// canonical returns the entry's canonical JSON with Checksum cleared.
func (e *Entry) canonical() ([]byte, error) {
	c := *e
	c.Checksum = ""
	return json.Marshal(&c)
}

// identity returns the canonical bytes of everything the content
// address covers: the entry minus Expected, PlatformDigest and
// Checksum. Expectations and the digest change on redux; identity
// never does.
func (e *Entry) identity() ([]byte, error) {
	c := *e
	c.ID = ""
	c.Expected = Expected{}
	c.PlatformDigest = ""
	c.Checksum = ""
	return json.Marshal(&c)
}

// computeID derives the content address: sha256 of the identity bytes,
// truncated to 16 hex characters (64 bits — ample for corpus-sized
// collections, short enough for filenames).
func (e *Entry) computeID() (string, error) {
	ident, err := e.identity()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(ident)
	return hex.EncodeToString(sum[:8]), nil
}

// seal fills ID and Checksum from the entry's current content.
func (e *Entry) seal() error {
	id, err := e.computeID()
	if err != nil {
		return err
	}
	e.ID = id
	body, err := e.canonical()
	if err != nil {
		return err
	}
	e.Checksum = fmt.Sprintf("%016x", fnv1a(body))
	return nil
}

// verify checks version, checksum and content address; any mismatch is
// an error (the corpus is a source of truth, not a cache).
func (e *Entry) verify() error {
	if e.Version != Version {
		return fmt.Errorf("unsupported entry version %d", e.Version)
	}
	body, err := e.canonical()
	if err != nil {
		return err
	}
	if want := fmt.Sprintf("%016x", fnv1a(body)); e.Checksum != want {
		return fmt.Errorf("checksum mismatch (entry corrupt or hand-edited; re-add or redux it)")
	}
	id, err := e.computeID()
	if err != nil {
		return err
	}
	if e.ID != id {
		return fmt.Errorf("content address mismatch: id %s, content hashes to %s", e.ID, id)
	}
	return nil
}

// filename maps an entry to its file name: a sanitized copy of the
// name for humans plus the content address for uniqueness.
func (e *Entry) filename() string {
	return sanitize(e.Name) + "-" + e.ID + entryExt
}

// sanitize reduces a stressmark name to a filesystem-safe slug.
func sanitize(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	s := strings.Trim(b.String(), "-")
	if s == "" {
		return "entry"
	}
	return s
}

// DB is a corpus directory.
type DB struct {
	dir string
}

// Open creates (if needed) and returns the corpus rooted at dir.
func Open(dir string) (*DB, error) {
	if dir == "" {
		return nil, fmt.Errorf("corpus: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	return &DB{dir: dir}, nil
}

// Dir returns the corpus root directory.
func (db *DB) Dir() string { return db.dir }

// Add seals the entry (ID + checksum) and writes it atomically under
// its content address, returning the path. Re-adding the same identity
// overwrites in place — a redeposit after redux updates expectations
// without forking the entry.
func (db *DB) Add(e *Entry) (string, error) {
	if e.Version == 0 {
		e.Version = Version
	}
	if e.Version != Version {
		return "", fmt.Errorf("corpus: cannot write entry version %d", e.Version)
	}
	if e.Name == "" || e.Platform == "" || e.Program == "" {
		return "", fmt.Errorf("corpus: entry needs a name, a platform and a program image")
	}
	if e.Threads < 1 {
		return "", fmt.Errorf("corpus: entry %q has no threads", e.Name)
	}
	if e.MeasureCycles == 0 {
		return "", fmt.Errorf("corpus: entry %q has no measurement window", e.Name)
	}
	if err := e.seal(); err != nil {
		return "", err
	}
	path := filepath.Join(db.dir, e.filename())
	err := fsutil.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(e)
	})
	if err != nil {
		return "", fmt.Errorf("corpus: %w", err)
	}
	return path, nil
}

// Load reads, verifies and returns every entry, sorted by filename.
// Any unreadable, corrupt or version-skewed entry fails the whole load:
// a regression database that silently drops entries is worse than none.
func (db *DB) Load() ([]*Entry, error) {
	ents, err := os.ReadDir(db.dir)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	var names []string
	for _, de := range ents {
		if !de.IsDir() && filepath.Ext(de.Name()) == entryExt {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	out := make([]*Entry, 0, len(names))
	for _, name := range names {
		path := filepath.Join(db.dir, name)
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		var e Entry
		if err := json.Unmarshal(blob, &e); err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", name, err)
		}
		if err := e.verify(); err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", name, err)
		}
		out = append(out, &e)
	}
	return out, nil
}

// Len reports the number of entry files present (without verifying).
func (db *DB) Len() int {
	ents, err := os.ReadDir(db.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range ents {
		if !de.IsDir() && filepath.Ext(de.Name()) == entryExt {
			n++
		}
	}
	return n
}

// ResolvePlatform maps an entry's platform name to its description.
func ResolvePlatform(name string) (testbed.Platform, error) {
	switch name {
	case "bulldozer":
		return testbed.Bulldozer(), nil
	case "phenom":
		return testbed.Phenom(), nil
	}
	return testbed.Platform{}, fmt.Errorf("corpus: unknown platform %q", name)
}

// fnv1a is the 64-bit FNV-1a hash, matching the repo's other content
// checksums.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
