package corpus

import (
	"strings"
	"testing"

	"repro/internal/testbed"
)

// TestReplayPassesOnCleanPlatform: replaying a fresh baseline on the
// same platform must reproduce it bit-exactly.
func TestReplayPassesOnCleanPlatform(t *testing.T) {
	cp := compile(t, testbed.Bulldozer())
	entries := []*Entry{
		harvestEntry(t, cp, HarvestConfig{}),
		harvestEntry(t, cp, HarvestConfig{Name: "second-mark", DroopTolV: 0.002}),
	}
	for _, r := range Replay(cp, entries, ReplayOptions{}) {
		if r.Verdict != Pass {
			t.Errorf("%s: verdict %s (%s), want pass", r.Entry.Name, r.Verdict, r.Detail)
		}
		if r.Measured == nil {
			t.Errorf("%s: no measurement attached", r.Entry.Name)
		}
	}
}

// TestReplayCatchesModelDrift is the corpus's reason to exist: a
// one-line change to the energy model — the kind of simulator edit no
// platform digest can see, because no config struct moved — must
// surface as DRIFT, not pass and not be excused as platform skew.
// replayWith stands in for "the code changed under us" by measuring on
// a perturbed platform while holding the clean platform's digest.
func TestReplayCatchesModelDrift(t *testing.T) {
	clean := compile(t, testbed.Bulldozer())
	cleanDigest := testbed.PlatformDigest(clean.Platform())
	e := harvestEntry(t, clean, HarvestConfig{})

	perturbed := testbed.Bulldozer()
	perturbed.Power.SchedPJPerIssue *= 1.01 // the "one-line model change"
	pcp := compile(t, perturbed)

	res := replayWith(pcp, cleanDigest, []*Entry{e}, ReplayOptions{})
	if res[0].Verdict != Drift {
		t.Fatalf("verdict %s (%s), want DRIFT", res[0].Verdict, res[0].Detail)
	}
	if !strings.Contains(res[0].Detail, "fingerprint") {
		t.Errorf("drift detail %q does not name the fingerprint mismatch", res[0].Detail)
	}
}

// TestReplayReportsPlatformSkew: when the platform description itself
// changed, the digest mismatch must be reported as skew — an explained
// baseline break, distinct from drift — whether or not values moved.
func TestReplayReportsPlatformSkew(t *testing.T) {
	clean := compile(t, testbed.Bulldozer())
	e := harvestEntry(t, clean, HarvestConfig{})

	// Values identical (same platform), digest different: the baseline
	// is void but the numbers held.
	held := replayWith(clean, "some-other-digest", []*Entry{e}, ReplayOptions{})
	if held[0].Verdict != PlatformSkew {
		t.Fatalf("verdict %s, want platform-skew", held[0].Verdict)
	}
	if !strings.Contains(held[0].Detail, "values held") {
		t.Errorf("skew detail %q should note the values held", held[0].Detail)
	}

	// Genuinely changed platform through the public API: Replay
	// computes the real (differing) digest itself.
	perturbed := testbed.Bulldozer()
	perturbed.PDN.LDie *= 1.5
	pcp := compile(t, perturbed)
	moved := Replay(pcp, []*Entry{e}, ReplayOptions{})
	if moved[0].Verdict != PlatformSkew {
		t.Fatalf("verdict %s (%s), want platform-skew", moved[0].Verdict, moved[0].Detail)
	}
}

// TestReplayToleranceGatesOnDroop: a positive droop tolerance swaps the
// bit-exact fingerprint gate for a |Δdroop| ≤ tol gate, letting an
// entry survive numeric changes smaller than its tolerance and still
// fail on larger ones.
func TestReplayToleranceGatesOnDroop(t *testing.T) {
	clean := compile(t, testbed.Bulldozer())
	cleanDigest := testbed.PlatformDigest(clean.Platform())
	tight := harvestEntry(t, clean, HarvestConfig{})                         // bit-exact
	loose := harvestEntry(t, clean, HarvestConfig{DroopTolV: 0.05})          // generous
	strict := harvestEntry(t, clean, HarvestConfig{DroopTolV: 0.0000000001}) // sub-noise

	perturbed := testbed.Bulldozer()
	perturbed.Power.SchedPJPerIssue *= 1.001 // tiny numeric shift
	pcp := compile(t, perturbed)

	res := replayWith(pcp, cleanDigest, []*Entry{tight, loose, strict}, ReplayOptions{})
	if res[0].Verdict != Drift {
		t.Errorf("bit-exact entry: verdict %s, want DRIFT", res[0].Verdict)
	}
	if res[1].Verdict != Pass {
		t.Errorf("tolerant entry: verdict %s (%s), want pass", res[1].Verdict, res[1].Detail)
	}
	if res[2].Verdict != Drift {
		t.Errorf("sub-noise-tolerance entry: verdict %s, want DRIFT", res[2].Verdict)
	}
}

// TestReplayFailureLadder: entries that baseline a voltage-at-failure
// ladder replay it and compare; SkipFailure trades that check away.
func TestReplayFailureLadder(t *testing.T) {
	cp := compile(t, testbed.Bulldozer())
	floor := cp.Nominal() * 0.80
	e := harvestEntry(t, cp, HarvestConfig{FailFloor: floor})
	if e.Expected.FailFloor != floor {
		t.Fatalf("harvest did not record the ladder floor")
	}

	res := Replay(cp, []*Entry{e}, ReplayOptions{})
	if res[0].Verdict != Pass {
		t.Fatalf("verdict %s (%s), want pass", res[0].Verdict, res[0].Detail)
	}
	if res[0].FailFound != e.Expected.FailFound || res[0].FailVolts != e.Expected.FailVolts {
		t.Errorf("ladder replay (%v, %.4f) differs from baseline (%v, %.4f)",
			res[0].FailFound, res[0].FailVolts, e.Expected.FailFound, e.Expected.FailVolts)
	}

	// A tampered failure baseline must be caught...
	bad := *e
	bad.Expected.FailVolts += testbed.FailureStep
	badRes := Replay(cp, []*Entry{&bad}, ReplayOptions{})
	if e.Expected.FailFound { // voltage only compared when the ladder found a failure
		if badRes[0].Verdict != Drift || !strings.Contains(badRes[0].Detail, "failure voltage") {
			t.Errorf("verdict %s (%s), want DRIFT on failure voltage", badRes[0].Verdict, badRes[0].Detail)
		}
	}
	// ...unless the ladder is explicitly skipped.
	skipped := Replay(cp, []*Entry{&bad}, ReplayOptions{SkipFailure: true})
	if skipped[0].Verdict != Pass {
		t.Errorf("SkipFailure still ran the ladder: verdict %s (%s)", skipped[0].Verdict, skipped[0].Detail)
	}
}

// TestReplaySurfacesErrors: an entry that cannot be measured reports
// Error and does not poison its batch siblings.
func TestReplaySurfacesErrors(t *testing.T) {
	cp := compile(t, testbed.Bulldozer())
	good := harvestEntry(t, cp, HarvestConfig{})
	bad := harvestEntry(t, cp, HarvestConfig{Name: "unplaceable"})
	bad.Threads = 10000 // more threads than the chip has

	res := Replay(cp, []*Entry{bad, good}, ReplayOptions{})
	if res[0].Verdict != Error {
		t.Errorf("unplaceable entry: verdict %s, want ERROR", res[0].Verdict)
	}
	if res[1].Verdict != Pass {
		t.Errorf("sibling entry: verdict %s (%s), want pass", res[1].Verdict, res[1].Detail)
	}
}

// TestFingerprintCoversFields spot-checks that the measurement
// fingerprint moves when any scored field moves and ignores Waveform.
func TestFingerprintCoversFields(t *testing.T) {
	base := &testbed.Measurement{Cycles: 100, MaxDroopV: 0.05, Retired: 42}
	ref := Fingerprint(base)
	if Fingerprint(base) != ref {
		t.Fatal("fingerprint not deterministic")
	}
	m := *base
	m.MaxDroopV += 1e-12
	if Fingerprint(&m) == ref {
		t.Error("fingerprint ignored a droop change")
	}
	m = *base
	m.L3Misses++
	if Fingerprint(&m) == ref {
		t.Error("fingerprint ignored a cache counter")
	}
	m = *base
	m.Failed = true
	if Fingerprint(&m) == ref {
		t.Error("fingerprint ignored the failure flag")
	}
	m = *base
	m.Waveform = []float64{1, 2, 3}
	if Fingerprint(&m) != ref {
		t.Error("fingerprint depends on the optional waveform")
	}
}
