package corpus

import (
	"fmt"
	"math"

	"repro/internal/testbed"
)

// Verdict classifies one entry's replay outcome.
type Verdict int

const (
	// Pass: same platform digest, expectations reproduced.
	Pass Verdict = iota
	// Drift: the platform digest matches the baseline but the measured
	// values do not. Nothing in the platform description explains the
	// change, so some code path moved the numbers — the exact situation
	// the corpus exists to catch. Always a hard failure.
	Drift
	// PlatformSkew: the platform description itself changed since the
	// entry was baselined (different digest). The entry is still
	// measured — Detail reports whether the values happened to hold —
	// but the baseline is void either way: re-baseline deliberately
	// (corpus redux) or investigate why the platform moved.
	PlatformSkew
	// Error: the entry could not be measured at all (undecodable
	// program, placement failure, simulation error).
	Error
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Drift:
		return "DRIFT"
	case PlatformSkew:
		return "platform-skew"
	case Error:
		return "ERROR"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Result is one entry's replay outcome.
type Result struct {
	Entry   *Entry
	Verdict Verdict
	// Detail explains any non-pass verdict in one line.
	Detail string
	// Measured is the replayed measurement (nil on Error).
	Measured *testbed.Measurement
	// FailVolts/FailFound report the replayed failure ladder when the
	// entry baselined one and it was not skipped.
	FailVolts float64
	FailFound bool
}

// ReplayOptions tunes the replay engine.
type ReplayOptions struct {
	// Lanes and Workers are passed to MeasureBatch (0 = defaults).
	Lanes   int
	Workers int
	// SkipFailure skips voltage-at-failure ladders even for entries
	// that baselined one (droop and fingerprint are still checked).
	// Ladders cost a descent of full measurements per entry, so CI
	// setups pressed for time can trade that coverage away explicitly.
	SkipFailure bool
}

// Replay re-measures every entry on cp and scores it against its
// baseline. All phase-2 measurements go through one MeasureBatch call,
// so entries sharing a platform share trace capture and lane packing;
// failure ladders (serial descents by nature) run after, per entry.
//
// Entries whose Platform name does not resolve to cp's platform are the
// caller's responsibility — Replay checks digests, not names. Group
// entries by name (as cmd/corpus does) before calling.
func Replay(cp *testbed.CompiledPlatform, entries []*Entry, opt ReplayOptions) []Result {
	return replayWith(cp, testbed.PlatformDigest(cp.Platform()), entries, opt)
}

// replayWith is Replay with the baseline digest supplied explicitly.
// Tests use it to simulate the case a digest cannot see: a simulator
// code change that moves results without touching any platform struct.
// Passing the clean platform's digest with a perturbed cp must surface
// as Drift.
func replayWith(cp *testbed.CompiledPlatform, digest string, entries []*Entry, opt ReplayOptions) []Result {
	results := make([]Result, len(entries))
	rcs := make([]testbed.RunConfig, 0, len(entries))
	slot := make([]int, 0, len(entries)) // batch slot -> entry index

	for i, e := range entries {
		results[i].Entry = e
		rc, err := e.RunConfig(cp.Platform().Chip)
		if err != nil {
			results[i].Verdict = Error
			results[i].Detail = err.Error()
			continue
		}
		rcs = append(rcs, rc)
		slot = append(slot, i)
	}

	ms, errs := cp.MeasureBatch(rcs, opt.Lanes, opt.Workers)
	for s, i := range slot {
		e := entries[i]
		r := &results[i]
		if errs[s] != nil {
			r.Verdict = Error
			r.Detail = errs[s].Error()
			continue
		}
		r.Measured = ms[s]
		mismatch := compareExpected(e, ms[s])

		if e.Expected.FailFloor > 0 && !opt.SkipFailure {
			v, found, err := cp.FindFailureVoltage(rcs[s], e.Expected.FailFloor)
			if err != nil {
				r.Verdict = Error
				r.Detail = fmt.Sprintf("failure ladder: %v", err)
				continue
			}
			r.FailVolts, r.FailFound = v, found
			if found != e.Expected.FailFound {
				mismatch = append(mismatch, fmt.Sprintf("failure found=%v, baseline %v", found, e.Expected.FailFound))
			} else if found && v != e.Expected.FailVolts {
				mismatch = append(mismatch, fmt.Sprintf("failure voltage %.4f V, baseline %.4f V", v, e.Expected.FailVolts))
			}
		}

		switch {
		case digest == e.PlatformDigest && len(mismatch) == 0:
			r.Verdict = Pass
		case digest == e.PlatformDigest:
			r.Verdict = Drift
			r.Detail = join(mismatch)
		case len(mismatch) == 0:
			r.Verdict = PlatformSkew
			r.Detail = "platform description changed since baseline (values held; redux to re-stamp)"
		default:
			r.Verdict = PlatformSkew
			r.Detail = "platform description changed since baseline: " + join(mismatch)
		}
	}
	return results
}

// compareExpected scores a measurement against the entry's baseline,
// returning one message per mismatched quantity (empty = reproduced).
// Zero droop tolerance demands the full-measurement fingerprint match
// bit-exactly; a positive tolerance gates on droop alone and leaves the
// fingerprint advisory.
func compareExpected(e *Entry, m *testbed.Measurement) []string {
	var out []string
	exp := e.Expected
	if exp.DroopTolV == 0 {
		if fp := Fingerprint(m); fp != exp.Fingerprint {
			out = append(out, fmt.Sprintf("fingerprint %s, baseline %s (droop %.6f V vs %.6f V)",
				fp, exp.Fingerprint, m.MaxDroopV, exp.DroopV))
		}
		return out
	}
	if d := math.Abs(m.MaxDroopV - exp.DroopV); d > exp.DroopTolV {
		out = append(out, fmt.Sprintf("droop %.6f V, baseline %.6f V (|Δ|=%.6f > tol %.6f)",
			m.MaxDroopV, exp.DroopV, d, exp.DroopTolV))
	}
	return out
}

func join(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "; "
		}
		s += p
	}
	return s
}

// Fingerprint hashes every deterministic field of a measurement —
// cycles, voltage extremes, power, energy, retirement, per-unit issue
// totals, control-flow and cache counters, failure state — with FNV-1a,
// excluding only the optional Waveform (redundant with the extremes and
// absent unless scoped). Two measurements with equal fingerprints are
// bit-identical in every quantity the corpus cares about.
func Fingerprint(m *testbed.Measurement) string {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * uint(i))) & 0xff
			h *= 1099511628211
		}
	}
	mixF := func(f float64) { mix(math.Float64bits(f)) }
	mix(m.Cycles)
	mixF(m.MaxDroopV)
	mixF(m.MaxOvershootV)
	mixF(m.MinV)
	mixF(m.MeanV)
	mixF(m.AvgPowerW)
	mixF(m.EnergyPJ)
	mix(m.Retired)
	for _, u := range m.UnitTotals {
		mix(u)
	}
	mix(uint64(m.DroopEvents))
	mix(m.Branches)
	mix(m.Mispredicts)
	mix(m.L1Hits)
	mix(m.L1Misses)
	mix(m.L2Hits)
	mix(m.L2Misses)
	mix(m.L3Hits)
	mix(m.L3Misses)
	if m.Failed {
		mix(1)
	} else {
		mix(0)
	}
	mix(m.FailCycle)
	return fmt.Sprintf("%016x", h)
}
