package ga

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// transienter is the error-classification contract: any error in the
// chain exposing Transient() true is retryable (faults.Error does; so
// does the internal per-attempt timeout). Everything else is permanent.
type transienter interface{ Transient() bool }

// isTransient reports whether err is retryable.
func isTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// timeoutError marks an evaluation attempt abandoned by EvalTimeout.
type timeoutError struct{ d time.Duration }

func (e *timeoutError) Error() string   { return fmt.Sprintf("ga: evaluation exceeded %s", e.d) }
func (e *timeoutError) Transient() bool { return true }

// sleepFn waits for d or until ctx is cancelled. A package variable so
// the backoff tests can substitute a fake clock.
var sleepFn = func(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// evaluator wraps the user's fitness function with the lab-resilience
// policy: per-attempt timeout, transient-error retry with capped
// exponential backoff, median-of-K repeated measurement with outlier
// rejection, and graceful degradation. It is shared by all of
// evalBatch's workers; the counters are mutex-guarded.
type evaluator[G any] struct {
	cfg  Config
	eval func(G) (float64, error)

	mu       sync.Mutex
	retries  int
	timedOut int
	degraded int
}

func newEvaluator[G any](cfg Config, eval func(G) (float64, error)) *evaluator[G] {
	return &evaluator[G]{cfg: cfg, eval: eval}
}

// drain folds the evaluator's counters into the result.
func (e *evaluator[G]) drain(res *Result[G]) {
	e.mu.Lock()
	res.Retries, res.TimedOut, res.Degraded = e.retries, e.timedOut, e.degraded
	e.mu.Unlock()
}

// restore re-seeds the counters from a resumed result.
func (e *evaluator[G]) restore(res *Result[G]) {
	e.mu.Lock()
	e.retries, e.timedOut, e.degraded = res.Retries, res.TimedOut, res.Degraded
	e.mu.Unlock()
}

// worstFitness is the degraded score (lowest possible under
// maximisation that still round-trips through JSON, unlike -Inf).
func (e *evaluator[G]) worstFitness() float64 {
	if e.cfg.WorstFitness != 0 {
		return e.cfg.WorstFitness
	}
	return -math.MaxFloat64
}

// evaluate scores one genome under the full policy.
func (e *evaluator[G]) evaluate(ctx context.Context, g G) (float64, error) {
	k := e.cfg.Repeats
	if k <= 1 {
		// Single-measurement fast path: no sample buffer (this is the
		// hot default; the GA allocation budget is benchmarked).
		fit, err := e.attempt(ctx, g)
		if err != nil {
			return e.fail(ctx, err)
		}
		return fit, nil
	}
	samples := make([]float64, 0, k)
	for rep := 0; rep < k; rep++ {
		fit, err := e.attempt(ctx, g)
		if err != nil {
			return e.fail(ctx, err)
		}
		samples = append(samples, fit)
	}
	return robustCentre(samples), nil
}

// fail resolves an exhausted attempt: propagate cancellation and
// permanent-policy errors, or degrade to the worst fitness.
func (e *evaluator[G]) fail(ctx context.Context, err error) (float64, error) {
	if ctx.Err() != nil {
		return 0, ctx.Err()
	}
	if !e.cfg.DegradeFailures {
		return 0, err
	}
	e.mu.Lock()
	e.degraded++
	e.mu.Unlock()
	return e.worstFitness(), nil
}

// attempt runs one measurement with retry/backoff on transient faults.
func (e *evaluator[G]) attempt(ctx context.Context, g G) (float64, error) {
	fit, err := e.call(ctx, g)
	return e.retryLoop(ctx, g, fit, err)
}

// retryLoop applies the retry/backoff policy to a first measurement
// outcome, re-running the per-genome eval on transient failures. The
// first outcome may come from e.call or from a generation-level batch —
// the policy is identical either way.
func (e *evaluator[G]) retryLoop(ctx context.Context, g G, fit float64, err error) (float64, error) {
	backoff := e.cfg.RetryBackoff
	maxBackoff := e.cfg.RetryBackoffCap
	if maxBackoff <= 0 {
		maxBackoff = time.Second
	}
	for try := 0; ; try++ {
		if err == nil {
			return fit, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return 0, ctxErr
		}
		if !isTransient(err) || try >= e.cfg.MaxRetries {
			return 0, err
		}
		e.mu.Lock()
		e.retries++
		e.mu.Unlock()
		if serr := sleepFn(ctx, backoff); serr != nil {
			return 0, serr
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		fit, err = e.call(ctx, g)
	}
}

// finish resolves one candidate whose first measurement came from a
// generation-level batch: retry a failed first attempt under the
// serial policy, take Repeats-1 further samples when repeated
// measurement is on, and degrade or propagate exhausted failures —
// exactly evaluate() with the batch outcome standing in for the first
// call.
func (e *evaluator[G]) finish(ctx context.Context, g G, fit float64, err error) (float64, error) {
	fit, err = e.retryLoop(ctx, g, fit, err)
	if err != nil {
		return e.fail(ctx, err)
	}
	k := e.cfg.Repeats
	if k <= 1 {
		return fit, nil
	}
	samples := make([]float64, 0, k)
	samples = append(samples, fit)
	for rep := 1; rep < k; rep++ {
		fit, err := e.attempt(ctx, g)
		if err != nil {
			return e.fail(ctx, err)
		}
		samples = append(samples, fit)
	}
	return robustCentre(samples), nil
}

// evalGeneration scores one deduplicated batch through a
// generation-level evaluator: the batch call supplies every candidate's
// first measurement at once (where capture sharing and lane-batched
// replay live), then candidates needing the serial policy — failed
// first attempts, Repeats > 1 — finish on the worker pool.
func (e *evaluator[G]) evalGeneration(ctx context.Context, gs []G, batch func(context.Context, []G) ([]float64, []error), workers int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(gs) == 0 {
		return nil, nil
	}
	bfits, berrs := batch(ctx, gs)
	if len(bfits) != len(gs) || len(berrs) != len(gs) {
		return nil, fmt.Errorf("ga: generation evaluator returned %d fits / %d errs for %d genomes", len(bfits), len(berrs), len(gs))
	}
	fits := make([]float64, len(gs))
	var follow []int
	for i := range gs {
		if berrs[i] == nil && e.cfg.Repeats <= 1 {
			fits[i] = bfits[i]
			continue
		}
		follow = append(follow, i)
	}
	if len(follow) == 0 {
		return fits, nil
	}
	ffits, err := evalIndexed(ctx, len(follow), func(k int) (float64, error) {
		i := follow[k]
		return e.finish(ctx, gs[i], bfits[i], berrs[i])
	}, workers)
	if err != nil {
		return nil, err
	}
	for k, i := range follow {
		fits[i] = ffits[k]
	}
	return fits, nil
}

// call runs the fitness function once, bounded by EvalTimeout. The
// simulator is CPU-bound and always terminates, so an over-deadline
// attempt's goroutine finishes in the background and its (stale)
// result is discarded.
func (e *evaluator[G]) call(ctx context.Context, g G) (float64, error) {
	if e.cfg.EvalTimeout <= 0 {
		return e.eval(g)
	}
	type outcome struct {
		fit float64
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		fit, err := e.eval(g)
		done <- outcome{fit, err}
	}()
	t := time.NewTimer(e.cfg.EvalTimeout)
	defer t.Stop()
	select {
	case o := <-done:
		return o.fit, o.err
	case <-t.C:
		e.mu.Lock()
		e.timedOut++
		e.mu.Unlock()
		return 0, &timeoutError{e.cfg.EvalTimeout}
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// robustCentre reduces repeated measurements to one score: the median,
// or for K ≥ 3 the mean of samples within 3 median-absolute-deviations
// of the median (rejecting e.g. a throttling episode that depressed
// one capture).
func robustCentre(samples []float64) float64 {
	switch len(samples) {
	case 0:
		return 0
	case 1:
		return samples[0]
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	med := median(sorted)
	if len(sorted) < 3 {
		return med
	}
	devs := make([]float64, len(sorted))
	for i, s := range sorted {
		devs[i] = math.Abs(s - med)
	}
	sort.Float64s(devs)
	mad := median(devs)
	if mad == 0 {
		return med
	}
	var sum float64
	var n int
	for _, s := range sorted {
		if math.Abs(s-med) <= 3*mad {
			sum += s
			n++
		}
	}
	if n == 0 {
		return med
	}
	return sum / float64(n)
}

// median of an already-sorted slice.
func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
