package ga

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// runCollectingCheckpoints runs the toy search, keeping every emitted
// checkpoint (JSON round-tripped, as a real sink would store them).
func runCollectingCheckpoints(t *testing.T, cfg Config, ops Ops[bits], eval func(bits) (float64, error)) (*Result[bits], []*Checkpoint[bits]) {
	t.Helper()
	var cks []*Checkpoint[bits]
	sink := func(ck *Checkpoint[bits]) error {
		blob, err := json.Marshal(ck)
		if err != nil {
			return err
		}
		var back Checkpoint[bits]
		if err := json.Unmarshal(blob, &back); err != nil {
			return err
		}
		cks = append(cks, &back)
		return nil
	}
	res, err := RunCheckpointed(context.Background(), cfg, ops, nil, eval, nil, sink)
	if err != nil {
		t.Fatal(err)
	}
	return res, cks
}

func sameResult[G any](a, b *Result[G]) bool {
	return reflect.DeepEqual(a.Best, b.Best) &&
		a.BestFitness == b.BestFitness &&
		a.Generations == b.Generations &&
		reflect.DeepEqual(a.History, b.History) &&
		reflect.DeepEqual(a.Population, b.Population) &&
		reflect.DeepEqual(a.Fitnesses, b.Fitnesses)
}

func TestResumeFromEveryGenerationIsBitIdentical(t *testing.T) {
	cfg := defaultCfg()
	cfg.MaxGenerations = 12
	full, cks := runCollectingCheckpoints(t, cfg, bitOps(20), onemax)
	if len(cks) != cfg.MaxGenerations+1 { // initial + one per generation
		t.Fatalf("got %d checkpoints, want %d", len(cks), cfg.MaxGenerations+1)
	}
	// Resuming from any snapshot — including the initial-population one
	// — must replay to the exact same final state.
	for i, ck := range cks {
		resumed, err := RunCheckpointed(context.Background(), cfg, bitOps(20), nil, onemax, ck, nil)
		if err != nil {
			t.Fatalf("resume from checkpoint %d: %v", i, err)
		}
		if !sameResult(full, resumed) {
			t.Fatalf("resume from generation %d diverged: best %v vs %v, gens %d vs %d",
				ck.Gen, full.BestFitness, resumed.BestFitness, full.Generations, resumed.Generations)
		}
	}
}

func TestResumeWithMemoizationReplaysCache(t *testing.T) {
	cfg := defaultCfg()
	cfg.MaxGenerations = 10
	var calls atomic.Int64
	counting := func(g bits) (float64, error) {
		calls.Add(1)
		return onemax(g)
	}
	full, cks := runCollectingCheckpoints(t, cfg, memoOps(16), counting)
	fullCalls := calls.Load()

	mid := cks[len(cks)/2]
	calls.Store(0)
	resumed, err := RunCheckpointed(context.Background(), cfg, memoOps(16), nil, counting, mid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(full, resumed) {
		t.Fatal("memoized resume diverged from uninterrupted run")
	}
	// Cumulative accounting carries across the resume...
	if resumed.Evaluations != full.Evaluations {
		t.Errorf("resumed evaluations %d != full %d", resumed.Evaluations, full.Evaluations)
	}
	// ...but the resumed process only actually re-ran the back half.
	if replayed := calls.Load(); replayed >= fullCalls {
		t.Errorf("resume re-evaluated everything: %d calls vs %d for the full run", replayed, fullCalls)
	}
}

func TestResumeMatchesUnderParallelism(t *testing.T) {
	cfg := defaultCfg()
	cfg.MaxGenerations = 8
	cfg.Parallel = 4
	full, cks := runCollectingCheckpoints(t, cfg, memoOps(16), onemax)
	resumed, err := RunCheckpointed(context.Background(), cfg, memoOps(16), nil, onemax, cks[3], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(full, resumed) {
		t.Fatal("parallel resume diverged")
	}
}

func TestResumeAfterStagnationExit(t *testing.T) {
	cfg := defaultCfg()
	cfg.StagnantLimit = 3
	cfg.MaxGenerations = 1000
	full, cks := runCollectingCheckpoints(t, cfg, bitOps(8), func(bits) (float64, error) { return 1, nil })
	if full.Generations != 3 {
		t.Fatalf("stagnation exit after %d generations, want 3", full.Generations)
	}
	resumed, err := RunCheckpointed(context.Background(), cfg, bitOps(8), nil,
		func(bits) (float64, error) { return 1, nil }, cks[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Generations != full.Generations {
		t.Errorf("resumed run exited after %d generations, full run after %d",
			resumed.Generations, full.Generations)
	}
}

func TestCheckpointSinkErrorAborts(t *testing.T) {
	sinkErr := errors.New("disk full")
	_, err := RunCheckpointed(context.Background(), defaultCfg(), bitOps(8), nil, onemax, nil,
		func(*Checkpoint[bits]) error { return sinkErr })
	if !errors.Is(err, sinkErr) {
		t.Fatalf("sink failure not propagated: %v", err)
	}
}

func TestResumeRejectsMalformedCheckpoint(t *testing.T) {
	bad := &Checkpoint[bits]{Population: make([]bits, 3), Fitnesses: make([]float64, 2)}
	if _, err := RunCheckpointed(context.Background(), defaultCfg(), bitOps(8), nil, onemax, bad, nil); err == nil {
		t.Fatal("malformed checkpoint accepted")
	}
}

func TestCountingSourcePassthrough(t *testing.T) {
	// The counting wrapper must not change the stream rand.New produces.
	a := newCountingSource(42)
	b := newCountingSource(42)
	ra, rb := rand.New(a), rand.New(b)
	for i := 0; i < 100; i++ {
		if ra.Float64() != rb.Float64() || ra.Intn(1000) != rb.Intn(1000) {
			t.Fatal("counting sources diverged from each other")
		}
	}
	// Fast-forwarding a fresh source to a's position resynchronises.
	c := newCountingSource(42)
	c.fastForward(a.draws())
	rc := rand.New(c)
	if ra.Float64() != rc.Float64() {
		t.Fatal("fast-forwarded source out of position")
	}
}
