package ga

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestEvalIndexedStopsDispatchAfterError: once a worker fails, the
// batch is doomed — no new evaluations may be dispatched beyond those
// already claimed by the workers.
func TestEvalIndexedStopsDispatchAfterError(t *testing.T) {
	const n, workers = 100, 4
	var dispatched, afterErr atomic.Int64
	var errored atomic.Bool
	eval := func(i int) (float64, error) {
		dispatched.Add(1)
		if errored.Load() {
			afterErr.Add(1)
		}
		if i == 0 {
			errored.Store(true)
			return 0, errors.New("boom")
		}
		time.Sleep(time.Millisecond)
		return float64(i), nil
	}
	if _, err := evalIndexed(context.Background(), n, eval, workers); err == nil {
		t.Fatal("batch with a failing evaluation returned nil error")
	}
	if got := afterErr.Load(); got > workers {
		t.Errorf("%d evaluations dispatched after the first error (in-flight bound is %d)", got, workers)
	}
	if got := dispatched.Load(); got > n/2 {
		t.Errorf("%d/%d evaluations dispatched for a batch that failed immediately", got, n)
	}
}

// TestEvalIndexedStopsDispatchAfterCancel: context cancellation must
// stop dispatch just as promptly as an error.
func TestEvalIndexedStopsDispatchAfterCancel(t *testing.T) {
	const n, workers = 100, 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var afterCancel atomic.Int64
	var cancelled atomic.Bool
	eval := func(i int) (float64, error) {
		if cancelled.Load() {
			afterCancel.Add(1)
		}
		if i == 0 {
			cancelled.Store(true)
			cancel()
			return 0, ctx.Err()
		}
		time.Sleep(time.Millisecond)
		return float64(i), nil
	}
	if _, err := evalIndexed(ctx, n, eval, workers); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := afterCancel.Load(); got > workers {
		t.Errorf("%d evaluations dispatched after cancellation (in-flight bound is %d)", got, workers)
	}
}

// generationOps wires a batch evaluator that maps the per-genome eval
// over the slate, optionally injecting per-slot errors.
func generationOps(n int, inject func(bits) error) Ops[bits] {
	ops := memoOps(n)
	ops.EvalGeneration = func(_ context.Context, gs []bits) ([]float64, []error) {
		fits := make([]float64, len(gs))
		errs := make([]error, len(gs))
		for i, g := range gs {
			if inject != nil {
				if err := inject(g); err != nil {
					errs[i] = err
					continue
				}
			}
			fits[i], errs[i] = onemax(g)
		}
		return fits, errs
	}
	return ops
}

// runPair runs the same configured search with and without the
// generation-level evaluator and returns both results.
func runPair(t *testing.T, cfg Config, inject func(bits) error, eval func(bits) (float64, error)) (gen, serial *Result[bits]) {
	t.Helper()
	const n = 24
	gen, err := Run(context.Background(), cfg, generationOps(n, inject), nil, eval)
	if err != nil {
		t.Fatalf("generation-batched run: %v", err)
	}
	serial, err = Run(context.Background(), cfg, memoOps(n), nil, eval)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	return gen, serial
}

// TestEvalGenerationMatchesPerCandidate: with a consistent batch
// evaluator the search must be indistinguishable from the per-candidate
// path — same best, same trajectory, same evaluation accounting — for
// serial and parallel pools alike.
func TestEvalGenerationMatchesPerCandidate(t *testing.T) {
	for _, workers := range []int{0, 8} {
		cfg := defaultCfg()
		cfg.MaxGenerations = 12
		cfg.Parallel = workers
		gen, serial := runPair(t, cfg, nil, func(g bits) (float64, error) { return onemax(g) })
		if !reflect.DeepEqual(gen, serial) {
			t.Errorf("parallel=%d: batched result differs from per-candidate:\n got %+v\nwant %+v", workers, gen, serial)
		}
	}
}

// TestEvalGenerationRepeatsMatch: Repeats-1 follow-up samples run
// through the serial path; with a deterministic simulator the centre is
// identical to the all-serial run.
func TestEvalGenerationRepeatsMatch(t *testing.T) {
	cfg := defaultCfg()
	cfg.MaxGenerations = 6
	cfg.Repeats = 3
	cfg.Parallel = 4
	gen, serial := runPair(t, cfg, nil, func(g bits) (float64, error) { return onemax(g) })
	if !reflect.DeepEqual(gen, serial) {
		t.Errorf("Repeats=3: batched result differs from per-candidate:\n got %+v\nwant %+v", gen, serial)
	}
}

// TestEvalGenerationRetriesBatchFailures: a transient batch-side
// failure must fall back to the per-genome eval under the retry policy
// and still converge to the serial result (modulo the retry counter).
func TestEvalGenerationRetriesBatchFailures(t *testing.T) {
	withFakeClock(t)
	cfg := defaultCfg()
	cfg.MaxGenerations = 6
	cfg.MaxRetries = 2
	cfg.RetryBackoff = time.Millisecond
	inject := func(g bits) error {
		if g[0] { // flaky slot: every batch attempt on these fails
			return &flakyErr{"batch lane fault"}
		}
		return nil
	}
	gen, serial := runPair(t, cfg, inject, func(g bits) (float64, error) { return onemax(g) })
	if gen.Retries == 0 {
		t.Error("no retries recorded despite injected batch faults")
	}
	gen.Retries, serial.Retries = 0, 0
	if !reflect.DeepEqual(gen, serial) {
		t.Errorf("retried batch run diverged from serial:\n got %+v\nwant %+v", gen, serial)
	}
}

// TestEvalGenerationDegradesPermanentFailures: a permanent failure on
// both paths degrades the candidate identically instead of aborting.
func TestEvalGenerationDegradesPermanentFailures(t *testing.T) {
	cfg := defaultCfg()
	cfg.MaxGenerations = 4
	cfg.DegradeFailures = true
	cfg.WorstFitness = -1e9
	permanent := errors.New("permanent measurement fault")
	bad := func(g bits) bool { return g[0] && g[1] }
	inject := func(g bits) error {
		if bad(g) {
			return permanent
		}
		return nil
	}
	eval := func(g bits) (float64, error) {
		if bad(g) {
			return 0, permanent
		}
		return onemax(g)
	}
	gen, serial := runPair(t, cfg, inject, eval)
	if gen.Degraded == 0 {
		t.Error("no degradations recorded despite permanent faults")
	}
	if !reflect.DeepEqual(gen, serial) {
		t.Errorf("degraded batch run diverged from serial:\n got %+v\nwant %+v", gen, serial)
	}
}

// TestEvalGenerationShapeError: a batch evaluator that violates the
// slot-alignment contract must abort the search with a clear error.
func TestEvalGenerationShapeError(t *testing.T) {
	const n = 24
	ops := memoOps(n)
	ops.EvalGeneration = func(_ context.Context, gs []bits) ([]float64, []error) {
		return make([]float64, len(gs)-1), make([]error, len(gs))
	}
	cfg := defaultCfg()
	cfg.MaxGenerations = 2
	if _, err := Run(context.Background(), cfg, ops, nil, func(g bits) (float64, error) { return onemax(g) }); err == nil {
		t.Fatal("misaligned generation evaluator did not abort the run")
	}
}
