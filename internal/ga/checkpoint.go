package ga

import (
	"encoding/base64"
	"fmt"
	"math/rand"
	"sort"
)

// Checkpoint is the complete state of a search between generations:
// everything RunCheckpointed needs to continue bit-identically — the
// sorted population with its scores, the best-so-far, the RNG draw
// count (the seeded source is replayed to this position on resume),
// the fitness-memoization cache, and the accounting counters. It
// marshals cleanly to JSON when G does (cache keys are base64-wrapped
// because fingerprints are binary).
type Checkpoint[G any] struct {
	// Gen is the next generation to run (0 = only the initial
	// population has been scored).
	Gen int `json:"gen"`
	// RNGDraws is how many values the seeded source had produced.
	RNGDraws uint64 `json:"rng_draws"`
	// Stagnant is the no-improvement streak at snapshot time.
	Stagnant int `json:"stagnant"`
	// Population and Fitnesses are the scored population, best first.
	Population []G       `json:"population"`
	Fitnesses  []float64 `json:"fitnesses"`
	// Best and BestFitness are the best-so-far across the whole run.
	Best        G       `json:"best"`
	BestFitness float64 `json:"best_fitness"`
	// History is the per-generation best-so-far trajectory.
	History []float64 `json:"history,omitempty"`
	// Counters carried across the interruption.
	Evaluations int `json:"evaluations"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	Retries     int `json:"retries"`
	TimedOut    int `json:"timed_out"`
	Degraded    int `json:"degraded"`
	// Cache is the fitness-memoization map, keys base64-encoded.
	Cache []CacheEntry `json:"cache,omitempty"`
}

// CacheEntry is one memoized fitness, with its fingerprint key
// base64-encoded so the binary bytes survive JSON.
type CacheEntry struct {
	Key string  `json:"k"`
	Fit float64 `json:"v"`
}

// snapshot captures the live search state. It deliberately aliases the
// population slice contents (genomes are treated as immutable by the
// engine), but builds fresh slices so later generations cannot mutate
// an emitted checkpoint.
func snapshot[G any](gen, stagnant int, pop []scored[G], res *Result[G], cache map[string]float64, draws uint64) *Checkpoint[G] {
	ck := &Checkpoint[G]{
		Gen:         gen,
		RNGDraws:    draws,
		Stagnant:    stagnant,
		Population:  make([]G, len(pop)),
		Fitnesses:   make([]float64, len(pop)),
		Best:        res.Best,
		BestFitness: res.BestFitness,
		History:     append([]float64(nil), res.History...),
		Evaluations: res.Evaluations,
		CacheHits:   res.CacheHits,
		CacheMisses: res.CacheMisses,
		Retries:     res.Retries,
		TimedOut:    res.TimedOut,
		Degraded:    res.Degraded,
	}
	for i, s := range pop {
		ck.Population[i] = s.g
		ck.Fitnesses[i] = s.fit
	}
	if cache != nil {
		ck.Cache = make([]CacheEntry, 0, len(cache))
		for k, v := range cache {
			ck.Cache = append(ck.Cache, CacheEntry{Key: base64.StdEncoding.EncodeToString([]byte(k)), Fit: v})
		}
		// Canonical order: map iteration is randomized, and a checkpoint
		// must serialize to the same bytes for the same search state so
		// independently produced checkpoints (serial vs distributed runs,
		// say) can be compared by fingerprint.
		sort.Slice(ck.Cache, func(i, j int) bool { return ck.Cache[i].Key < ck.Cache[j].Key })
	}
	return ck
}

// restore rebuilds the search state from a checkpoint: population,
// result counters, fitness cache, and the RNG position.
func restore[G any](ck *Checkpoint[G], res *Result[G], cache map[string]float64, src *countingSource) ([]scored[G], int, int, error) {
	if len(ck.Population) == 0 || len(ck.Population) != len(ck.Fitnesses) {
		return nil, 0, 0, fmt.Errorf("ga: resume: malformed checkpoint population (%d genomes, %d fitnesses)",
			len(ck.Population), len(ck.Fitnesses))
	}
	pop := make([]scored[G], len(ck.Population))
	for i := range ck.Population {
		pop[i] = scored[G]{g: ck.Population[i], fit: ck.Fitnesses[i]}
	}
	res.Best, res.BestFitness = ck.Best, ck.BestFitness
	res.Generations = ck.Gen
	res.History = append([]float64(nil), ck.History...)
	res.Evaluations = ck.Evaluations
	res.CacheHits, res.CacheMisses = ck.CacheHits, ck.CacheMisses
	res.Retries, res.TimedOut, res.Degraded = ck.Retries, ck.TimedOut, ck.Degraded
	if cache != nil {
		for _, e := range ck.Cache {
			raw, err := base64.StdEncoding.DecodeString(e.Key)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("ga: resume: bad cache key: %w", err)
			}
			cache[string(raw)] = e.Fit
		}
	}
	src.fastForward(ck.RNGDraws)
	return pop, ck.Gen, ck.Stagnant, nil
}

// countingSource wraps the stdlib seeded source and counts draws, so a
// checkpoint can record the RNG position and a resume can replay the
// source to exactly that point. Values pass through untouched: runs
// with and without counting are bit-identical.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	src := rand.NewSource(seed)
	s64, ok := src.(rand.Source64)
	if !ok {
		// rand.NewSource has returned a Source64 since Go 1.8; this
		// fallback only matters if that ever changes.
		s64 = &source64Shim{src}
	}
	return &countingSource{src: s64}
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

func (s *countingSource) draws() uint64 { return s.n }

// fastForward advances the underlying source by n draws. Int63 and
// Uint64 step the stdlib generator identically, so replaying with
// either reproduces the stream position.
func (s *countingSource) fastForward(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.n = n
}

type source64Shim struct{ rand.Source }

func (s *source64Shim) Uint64() uint64 {
	return uint64(s.Int63())>>31 | uint64(s.Int63())<<32
}
