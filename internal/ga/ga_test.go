package ga

import (
	"context"
	"math/rand"
	"testing"
)

// bitstring toy genome: maximise the number of ones.
type bits []bool

func bitOps(n int) Ops[bits] {
	return Ops[bits]{
		Random: func(rng *rand.Rand) bits {
			g := make(bits, n)
			for i := range g {
				g[i] = rng.Intn(2) == 1
			}
			return g
		},
		Crossover: func(rng *rand.Rand, a, b bits) bits {
			cut := rng.Intn(n)
			child := make(bits, n)
			copy(child, a[:cut])
			copy(child[cut:], b[cut:])
			return child
		},
		Mutate: func(rng *rand.Rand, g bits) bits {
			out := make(bits, n)
			copy(out, g)
			out[rng.Intn(n)] = !out[rng.Intn(n)]
			return out
		},
	}
}

func onemax(g bits) (float64, error) {
	s := 0.0
	for _, b := range g {
		if b {
			s++
		}
	}
	return s, nil
}

func defaultCfg() Config {
	return Config{
		PopSize:        30,
		Elites:         2,
		TournamentK:    3,
		MutationProb:   0.4,
		MaxGenerations: 80,
		StagnantLimit:  0,
		Seed:           1,
	}
}

func TestConvergesOnOnemax(t *testing.T) {
	n := 32
	res, err := Run(context.Background(), defaultCfg(), bitOps(n), nil, onemax)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < float64(n)-2 {
		t.Errorf("best fitness %v after %d generations, want ≈ %d",
			res.BestFitness, res.Generations, n)
	}
	if res.Evaluations < res.Generations {
		t.Error("evaluation count not tracked")
	}
}

func TestHistoryMonotone(t *testing.T) {
	res, err := Run(context.Background(), defaultCfg(), bitOps(24), nil, onemax)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatalf("best-so-far history decreased at %d: %v", i, res.History)
		}
	}
}

func TestSeedsEnterPopulation(t *testing.T) {
	n := 16
	perfect := make(bits, n)
	for i := range perfect {
		perfect[i] = true
	}
	cfg := defaultCfg()
	cfg.MaxGenerations = 1
	res, err := Run(context.Background(), cfg, bitOps(n), []bits{perfect}, onemax)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != float64(n) {
		t.Errorf("seeded optimum not found: %v", res.BestFitness)
	}
}

func TestStagnationExit(t *testing.T) {
	cfg := defaultCfg()
	cfg.StagnantLimit = 3
	cfg.MaxGenerations = 1000
	// Constant fitness: should stop after exactly StagnantLimit gens.
	res, err := Run(context.Background(), cfg, bitOps(8), nil, func(bits) (float64, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations != 3 {
		t.Errorf("stagnation exit after %d generations, want 3", res.Generations)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a, err := Run(context.Background(), defaultCfg(), bitOps(20), nil, onemax)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), defaultCfg(), bitOps(20), nil, onemax)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestFitness != b.BestFitness || a.Generations != b.Generations || a.Evaluations != b.Evaluations {
		t.Error("same seed, different trajectories")
	}
	cfg := defaultCfg()
	cfg.Seed = 99
	c, err := Run(context.Background(), cfg, bitOps(20), nil, onemax)
	if err != nil {
		t.Fatal(err)
	}
	if c.Evaluations == a.Evaluations && c.BestFitness == a.BestFitness && len(c.History) == len(a.History) {
		same := true
		for i := range c.History {
			if c.History[i] != a.History[i] {
				same = false
			}
		}
		if same {
			t.Error("different seeds produced identical histories")
		}
	}
}

func TestElitismPreservesBest(t *testing.T) {
	cfg := defaultCfg()
	cfg.MutationProb = 1.0 // heavy churn
	res, err := Run(context.Background(), cfg, bitOps(16), nil, onemax)
	if err != nil {
		t.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	if last != res.BestFitness {
		t.Errorf("final history %v != best %v", last, res.BestFitness)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{PopSize: 1, Elites: 0, TournamentK: 1, MaxGenerations: 1},
		{PopSize: 10, Elites: 10, TournamentK: 1, MaxGenerations: 1},
		{PopSize: 10, Elites: 0, TournamentK: 0, MaxGenerations: 1},
		{PopSize: 10, Elites: 0, TournamentK: 11, MaxGenerations: 1},
		{PopSize: 10, Elites: 0, TournamentK: 2, MutationProb: 1.5, MaxGenerations: 1},
		{PopSize: 10, Elites: 0, TournamentK: 2, MaxGenerations: 0},
		{PopSize: 10, Elites: 0, TournamentK: 2, MaxGenerations: 1, StagnantLimit: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if _, err := Run(context.Background(), defaultCfg(), Ops[bits]{}, nil, onemax); err == nil {
		t.Error("missing operators accepted")
	}
}

func TestEvalErrorPropagates(t *testing.T) {
	_, err := Run(context.Background(), defaultCfg(), bitOps(8), nil, func(bits) (float64, error) {
		return 0, errTest
	})
	if err == nil {
		t.Error("eval error swallowed")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestParallelMatchesSerial(t *testing.T) {
	run := func(workers int) *Result[bits] {
		cfg := defaultCfg()
		cfg.Parallel = workers
		res, err := Run(context.Background(), cfg, bitOps(24), nil, onemax)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0)
	parallel := run(4)
	if serial.BestFitness != parallel.BestFitness ||
		serial.Evaluations != parallel.Evaluations ||
		serial.Generations != parallel.Generations {
		t.Errorf("parallel run diverged: serial %+v vs parallel best %.0f evals %d",
			serial.BestFitness, parallel.BestFitness, parallel.Evaluations)
	}
	for i := range serial.History {
		if serial.History[i] != parallel.History[i] {
			t.Fatalf("history diverged at generation %d", i)
		}
	}
}

func TestParallelPropagatesErrors(t *testing.T) {
	cfg := defaultCfg()
	cfg.Parallel = 4
	_, err := Run(context.Background(), cfg, bitOps(8), nil, func(bits) (float64, error) { return 0, errTest })
	if err == nil {
		t.Error("parallel eval error swallowed")
	}
}

func TestParallelValidation(t *testing.T) {
	cfg := defaultCfg()
	cfg.Parallel = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative parallelism accepted")
	}
}
