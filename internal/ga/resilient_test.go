package ga

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyErr is a transient test fault (implements Transient()).
type flakyErr struct{ msg string }

func (e *flakyErr) Error() string   { return e.msg }
func (e *flakyErr) Transient() bool { return true }

// fakeClock records backoff waits instead of sleeping.
type fakeClock struct {
	mu    sync.Mutex
	waits []time.Duration
}

func (f *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.waits = append(f.waits, d)
	f.mu.Unlock()
	return ctx.Err()
}

// withFakeClock swaps the package sleep hook for the test's lifetime.
func withFakeClock(t *testing.T) *fakeClock {
	t.Helper()
	fc := &fakeClock{}
	orig := sleepFn
	sleepFn = fc.sleep
	t.Cleanup(func() { sleepFn = orig })
	return fc
}

func TestRetryRecoversFromTransientFaults(t *testing.T) {
	fc := withFakeClock(t)
	cfg := defaultCfg()
	cfg.MaxGenerations = 3
	cfg.MaxRetries = 3
	var calls atomic.Int64
	// Every 4th call fails transiently; with 3 retries every genome
	// still gets scored.
	eval := func(g bits) (float64, error) {
		if calls.Add(1)%4 == 0 {
			return 0, &flakyErr{"scope glitch"}
		}
		return onemax(g)
	}
	res, err := Run(context.Background(), cfg, bitOps(16), nil, eval)
	if err != nil {
		t.Fatalf("search aborted despite retries: %v", err)
	}
	if res.Retries == 0 {
		t.Error("no retries recorded")
	}
	if res.Degraded != 0 {
		t.Errorf("genomes degraded (%d) though retries sufficed", res.Degraded)
	}
	if len(fc.waits) != res.Retries {
		t.Errorf("backoff waits %d != retries %d", len(fc.waits), res.Retries)
	}
}

func TestRetryBackoffDoublesAndCaps(t *testing.T) {
	fc := withFakeClock(t)
	cfg := defaultCfg()
	cfg.PopSize = 2
	cfg.Elites = 0
	cfg.TournamentK = 1
	cfg.MaxGenerations = 1
	cfg.MaxRetries = 5
	cfg.RetryBackoff = 10 * time.Millisecond
	cfg.RetryBackoffCap = 40 * time.Millisecond
	cfg.DegradeFailures = true
	// Always-transient eval: each genome burns all retries, recording
	// the full backoff ladder.
	_, err := Run(context.Background(), cfg, bitOps(4), nil, func(bits) (float64, error) {
		return 0, &flakyErr{"always down"}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10, 20, 40, 40, 40} // ms: doubled then capped
	if len(fc.waits) < len(want) {
		t.Fatalf("too few waits recorded: %v", fc.waits)
	}
	for i, w := range want {
		if fc.waits[i] != w*time.Millisecond {
			t.Fatalf("backoff ladder %v, want prefix %v ms", fc.waits[:len(want)], want)
		}
	}
}

func TestDegradationInsteadOfAbort(t *testing.T) {
	withFakeClock(t)
	cfg := defaultCfg()
	cfg.MaxGenerations = 4
	cfg.MaxRetries = 1
	cfg.DegradeFailures = true
	// Genomes whose first two bits are set are permanently unmeasurable
	// (transient on every attempt, so retries never save them). The
	// search must finish anyway and count the degradations.
	eval := func(g bits) (float64, error) {
		if g[0] && g[1] {
			return 0, &flakyErr{"dead channel"}
		}
		return onemax(g)
	}
	res, err := Run(context.Background(), cfg, bitOps(12), nil, eval)
	if err != nil {
		t.Fatalf("degrading search aborted: %v", err)
	}
	if res.Degraded == 0 {
		t.Error("expected some degraded evaluations")
	}
	if res.BestFitness <= 0 {
		t.Error("search found nothing despite degradation policy")
	}
}

func TestPermanentErrorStillAbortsWithoutDegradation(t *testing.T) {
	cfg := defaultCfg()
	cfg.MaxRetries = 3
	_, err := Run(context.Background(), cfg, bitOps(8), nil, func(bits) (float64, error) {
		return 0, errTest // not transient
	})
	if err == nil {
		t.Fatal("permanent error swallowed")
	}
	if !errors.Is(err, errTest) {
		t.Errorf("error chain lost the cause: %v", err)
	}
}

func TestMedianOfKRejectsOutliers(t *testing.T) {
	cfg := defaultCfg()
	cfg.PopSize = 4
	cfg.MaxGenerations = 1
	cfg.Repeats = 5
	var calls atomic.Int64
	// Every 5th measurement is wildly depressed (a throttling episode);
	// the robust centre must ignore it.
	eval := func(g bits) (float64, error) {
		base, _ := onemax(g)
		if calls.Add(1)%5 == 0 {
			return base * 0.1, nil
		}
		return base + 10, nil
	}
	res, err := Run(context.Background(), cfg, bitOps(8), nil, eval)
	if err != nil {
		t.Fatal(err)
	}
	// All clean measurements are base+10 ≥ 10; a surviving outlier
	// would drag a fitness near base*0.1 < 1.
	for i, f := range res.Fitnesses {
		if f < 5 {
			t.Errorf("fitness %d = %v: outlier not rejected", i, f)
		}
	}
}

func TestRobustCentre(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{1, 3}, 2},
		{[]float64{5, 5, 5}, 5},          // MAD 0 → median
		{[]float64{10, 11, 12, 0.5}, 11}, // low outlier rejected, mean of rest
		{[]float64{2, 4, 6, 8, 1000}, 5}, // high outlier rejected
	}
	for i, c := range cases {
		if got := robustCentre(c.in); got != c.want {
			t.Errorf("case %d: robustCentre(%v) = %v, want %v", i, c.in, got, c.want)
		}
	}
}

func TestEvalTimeoutCountsAsTransient(t *testing.T) {
	withFakeClock(t)
	cfg := defaultCfg()
	cfg.PopSize = 2
	cfg.Elites = 0
	cfg.TournamentK = 1
	cfg.MaxGenerations = 1
	cfg.EvalTimeout = time.Millisecond
	cfg.MaxRetries = 2
	cfg.DegradeFailures = true
	var calls atomic.Int64
	block := make(chan struct{})
	defer close(block)
	eval := func(g bits) (float64, error) {
		if calls.Add(1) == 1 {
			<-block // first eval hangs past the deadline
		}
		return onemax(g)
	}
	res, err := Run(context.Background(), cfg, bitOps(4), nil, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut == 0 {
		t.Error("hung evaluation not recorded as timeout")
	}
	if res.Retries == 0 {
		t.Error("timeout did not trigger a retry")
	}
}

func TestCancellationStopsSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := defaultCfg()
	cfg.MaxGenerations = 10000
	var calls atomic.Int64
	eval := func(g bits) (float64, error) {
		if calls.Add(1) == 50 {
			cancel()
		}
		return onemax(g)
	}
	_, err := Run(ctx, cfg, bitOps(16), nil, eval)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if n := calls.Load(); n > 200 {
		t.Errorf("evaluations kept running after cancel: %d calls", n)
	}
}

func TestCancellationStopsParallelWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := defaultCfg()
	cfg.Parallel = 4
	cfg.MaxGenerations = 10000
	var calls atomic.Int64
	eval := func(g bits) (float64, error) {
		if calls.Add(1) == 40 {
			cancel()
		}
		return onemax(g)
	}
	_, err := Run(ctx, cfg, bitOps(16), nil, eval)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parallel run returned %v, want context.Canceled", err)
	}
}

func TestResilienceConfigValidation(t *testing.T) {
	base := defaultCfg()
	bad := []func(*Config){
		func(c *Config) { c.MaxRetries = -1 },
		func(c *Config) { c.RetryBackoff = -time.Second },
		func(c *Config) { c.RetryBackoffCap = -time.Second },
		func(c *Config) { c.Repeats = -2 },
		func(c *Config) { c.EvalTimeout = -time.Minute },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad resilience config %d accepted", i)
		}
	}
}
