package ga

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// bitKey is the canonical fingerprint of the bitstring toy genome.
func bitKey(g bits) string {
	b := make([]byte, len(g))
	for i, v := range g {
		if v {
			b[i] = 1
		}
	}
	return string(b)
}

func memoOps(n int) Ops[bits] {
	ops := bitOps(n)
	ops.Fingerprint = bitKey
	return ops
}

// TestParallel8MatchesSerialExactly is the determinism satellite:
// Parallel: 8 must reproduce the serial trajectory field for field —
// Best, BestFitness, History, Evaluations — for the same seed, both
// with memoization (fingerprinted ops) and without. Run under -race.
func TestParallel8MatchesSerialExactly(t *testing.T) {
	for _, memo := range []bool{false, true} {
		name := "memoized"
		if !memo {
			name = "raw"
		}
		t.Run(name, func(t *testing.T) {
			run := func(workers int) *Result[bits] {
				cfg := defaultCfg()
				cfg.Parallel = workers
				ops := bitOps(24)
				if memo {
					ops = memoOps(24)
				}
				res, err := Run(context.Background(), cfg, ops, nil, onemax)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial := run(0)
			parallel := run(8)
			if !reflect.DeepEqual(serial.Best, parallel.Best) {
				t.Errorf("Best diverged: %v vs %v", serial.Best, parallel.Best)
			}
			if serial.BestFitness != parallel.BestFitness {
				t.Errorf("BestFitness diverged: %v vs %v", serial.BestFitness, parallel.BestFitness)
			}
			if serial.Evaluations != parallel.Evaluations {
				t.Errorf("Evaluations diverged: %d vs %d", serial.Evaluations, parallel.Evaluations)
			}
			if serial.CacheHits != parallel.CacheHits || serial.CacheMisses != parallel.CacheMisses {
				t.Errorf("cache counters diverged: %d/%d vs %d/%d",
					serial.CacheHits, serial.CacheMisses, parallel.CacheHits, parallel.CacheMisses)
			}
			if !reflect.DeepEqual(serial.History, parallel.History) {
				t.Errorf("History diverged:\n serial  %v\n parallel %v", serial.History, parallel.History)
			}
			if !reflect.DeepEqual(serial.Population, parallel.Population) {
				t.Error("final populations diverged")
			}
		})
	}
}

// TestMemoizationSkipsDuplicateEvaluations checks the core promise:
// a genome already scored is never simulated again, and the counters
// add up (every candidate is either a hit or a miss).
func TestMemoizationSkipsDuplicateEvaluations(t *testing.T) {
	cfg := defaultCfg()
	cfg.MaxGenerations = 40
	var calls int64
	seen := sync.Map{} // key → true, to prove no key is evaluated twice
	eval := func(g bits) (float64, error) {
		atomic.AddInt64(&calls, 1)
		k := bitKey(g)
		if _, dup := seen.LoadOrStore(k, true); dup {
			t.Errorf("genome %q evaluated twice", k)
		}
		return onemax(g)
	}
	res, err := Run(context.Background(), cfg, memoOps(16), nil, eval)
	if err != nil {
		t.Fatal(err)
	}
	if int(calls) != res.Evaluations {
		t.Errorf("eval called %d times but Evaluations = %d", calls, res.Evaluations)
	}
	if res.CacheMisses != res.Evaluations {
		t.Errorf("CacheMisses %d != Evaluations %d", res.CacheMisses, res.Evaluations)
	}
	if res.CacheHits == 0 {
		t.Error("a 40-generation onemax run produced zero duplicate candidates; memoization untested")
	}
	// Every candidate in every batch is either a hit or a miss; the GA
	// scored PopSize initial + (PopSize-Elites) per generation.
	total := cfg.PopSize + res.Generations*(cfg.PopSize-cfg.Elites)
	if res.CacheHits+res.CacheMisses != total {
		t.Errorf("hits+misses = %d, want %d candidates", res.CacheHits+res.CacheMisses, total)
	}
}

// TestMemoizedMatchesUnmemoized: the cache must not change the search,
// only skip redundant simulator calls.
func TestMemoizedMatchesUnmemoized(t *testing.T) {
	raw, err := Run(context.Background(), defaultCfg(), bitOps(20), nil, onemax)
	if err != nil {
		t.Fatal(err)
	}
	memo, err := Run(context.Background(), defaultCfg(), memoOps(20), nil, onemax)
	if err != nil {
		t.Fatal(err)
	}
	if raw.BestFitness != memo.BestFitness || !reflect.DeepEqual(raw.History, memo.History) ||
		!reflect.DeepEqual(raw.Best, memo.Best) {
		t.Error("memoized trajectory diverged from raw")
	}
	if memo.Evaluations >= raw.Evaluations {
		t.Errorf("memoization saved nothing: %d vs %d evaluations", memo.Evaluations, raw.Evaluations)
	}
	if raw.CacheHits != 0 || raw.CacheMisses != 0 {
		t.Error("cache counters nonzero without a Fingerprint op")
	}
}

// TestNoMemoizeDisablesCache: Config.NoMemoize must behave exactly as
// if no Fingerprint op were set.
func TestNoMemoizeDisablesCache(t *testing.T) {
	cfg := defaultCfg()
	cfg.NoMemoize = true
	res, err := Run(context.Background(), cfg, memoOps(16), nil, onemax)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 || res.CacheMisses != 0 {
		t.Errorf("NoMemoize still hit the cache: %d/%d", res.CacheHits, res.CacheMisses)
	}
	raw, err := Run(context.Background(), defaultCfg(), bitOps(16), nil, onemax)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != raw.Evaluations || res.BestFitness != raw.BestFitness {
		t.Error("NoMemoize trajectory differs from fingerprint-less run")
	}
}

// TestMemoizedParallelEvalErrorPropagates: errors from unique-miss
// evaluation must surface through the memo path too.
func TestMemoizedParallelEvalErrorPropagates(t *testing.T) {
	cfg := defaultCfg()
	cfg.Parallel = 8
	_, err := Run(context.Background(), cfg, memoOps(8), nil, func(bits) (float64, error) { return 0, errTest })
	if err == nil {
		t.Error("memoized parallel eval error swallowed")
	}
}
