// Package ga is the genetic-algorithm engine at the heart of AUDIT's
// search (Fig. 5): a population of candidate stressmarks is evaluated
// against a cost function (measured voltage droop), and tournament
// selection, crossover and mutation refine it until the exit condition
// — no improvement for several generations — is met. The engine is
// generic so the same machinery drives flat opcode-sequence genomes,
// hierarchical sub-block genomes (§3.C) and test toys alike.
//
// Hardware campaigns are long (the paper's runs took 5–30 hours) and
// their measurements are faulty, so the engine carries the lab-grade
// machinery a real campaign needs: per-evaluation retry with capped
// backoff on transient faults, median-of-K repeated measurement with
// outlier rejection, per-evaluation timeouts, cooperative cancellation
// via context.Context, graceful degradation of genomes that keep
// failing, and bit-identical generation-level checkpoint/resume.
package ga

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Ops supplies the genome-specific operators.
type Ops[G any] struct {
	// Random creates a new random genome.
	Random func(rng *rand.Rand) G
	// Crossover combines two parents into a child.
	Crossover func(rng *rand.Rand, a, b G) G
	// Mutate returns a (possibly) modified copy of g.
	Mutate func(rng *rand.Rand, g G) G
	// Fingerprint, when non-nil, enables fitness memoization: it must
	// return a canonical content key — equal genomes (same phenotype)
	// must map to equal keys, different genomes to different keys. A
	// candidate whose key has been scored before reuses that score
	// instead of re-running the simulator, so duplicates produced by
	// crossover/mutation across generations cost zero evaluations.
	Fingerprint func(G) string
	// EvalGeneration, when non-nil, scores a whole generation in one
	// call instead of fanning the per-genome eval across workers; the
	// testbed's generation-batched pipeline (capture sharing, multi-lane
	// replay) and the distributed coordinator plug in here. It must
	// return slot-aligned fitnesses and errors with
	// EvalGeneration(ctx, gs)[i] ≡ eval(gs[i]) — the per-genome eval is
	// still required and still runs the retry/repeat policy: the batch
	// call provides each candidate's first attempt, and candidates that
	// need more (transient failures to retry, Repeats-1 further samples)
	// finish through the serial path. ctx is the search context: a batch
	// evaluator that can stop early on cancellation (a remote dispatch
	// waiting on workers, say) should honour it; EvalTimeout cannot
	// bound the monolithic batch call, only the follow-ups.
	EvalGeneration func(ctx context.Context, gs []G) ([]float64, []error)
}

// Config controls the search.
type Config struct {
	// PopSize is the population size.
	PopSize int
	// Elites survive unchanged each generation.
	Elites int
	// TournamentK is the tournament size for parent selection.
	TournamentK int
	// MutationProb is the probability a child is mutated.
	MutationProb float64
	// MaxGenerations bounds the run.
	MaxGenerations int
	// Parallel evaluates fitness with this many concurrent workers
	// (0 or 1 = serial). Results are identical to a serial run: genome
	// creation stays sequential on the seeded RNG, and only the
	// independent fitness calls fan out — safe because every AUDIT
	// evaluation builds its own simulator instance.
	Parallel int
	// StagnantLimit exits early when the best fitness has not improved
	// for this many consecutive generations (the paper's exit
	// condition: "the maximum voltage droop produced by AUDIT does not
	// increase for several generations"). 0 disables the early exit.
	StagnantLimit int
	// Seed makes the run reproducible.
	Seed int64
	// NoMemoize disables fitness memoization even when Ops.Fingerprint
	// is set (useful for measuring raw evaluation cost).
	NoMemoize bool

	// MaxRetries is how many extra attempts an evaluation gets when it
	// fails with a transient error (one whose chain exposes a
	// `Transient() bool` method returning true, e.g. faults.ErrTransient,
	// or a per-evaluation timeout). 0 = fail on the first error.
	MaxRetries int
	// RetryBackoff is the wait before the first retry; it doubles per
	// retry, capped at RetryBackoffCap. Zero = retry immediately.
	RetryBackoff time.Duration
	// RetryBackoffCap bounds the exponential backoff (default: 1s when
	// RetryBackoff is set).
	RetryBackoffCap time.Duration
	// Repeats, when > 1, measures each candidate K times and scores it
	// with the outlier-rejected centre of the samples (median, then
	// mean of samples within 3 MADs) — the standard defence against
	// noisy scope captures. On a testbed.CompiledPlatform the K runs
	// share one cached chip trace, so repeats 2..K replay only the PDN
	// phase and cost far less than the first measurement.
	Repeats int
	// EvalTimeout bounds each evaluation attempt; an attempt that
	// exceeds it is abandoned and counts as a transient failure.
	// 0 disables the timeout.
	EvalTimeout time.Duration
	// DegradeFailures switches eval-failure policy from abort-the-search
	// to degrade-the-genome: a candidate whose evaluation still fails
	// after all retries scores WorstFitness instead of killing a
	// multi-hour run. Result.Degraded counts how often this happened.
	DegradeFailures bool
	// WorstFitness is the score a degraded genome receives
	// (default -math.MaxFloat64, which sorts last under maximisation).
	WorstFitness float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.PopSize < 2:
		return fmt.Errorf("ga: population must be ≥ 2")
	case c.Elites < 0 || c.Elites >= c.PopSize:
		return fmt.Errorf("ga: elites must be in [0, pop)")
	case c.TournamentK < 1 || c.TournamentK > c.PopSize:
		return fmt.Errorf("ga: tournament size must be in [1, pop]")
	case c.MutationProb < 0 || c.MutationProb > 1:
		return fmt.Errorf("ga: mutation probability outside [0,1]")
	case c.MaxGenerations < 1:
		return fmt.Errorf("ga: need at least one generation")
	case c.StagnantLimit < 0:
		return fmt.Errorf("ga: negative stagnant limit")
	case c.Parallel < 0:
		return fmt.Errorf("ga: negative parallelism")
	case c.MaxRetries < 0:
		return fmt.Errorf("ga: negative retry count")
	case c.RetryBackoff < 0 || c.RetryBackoffCap < 0:
		return fmt.Errorf("ga: negative retry backoff")
	case c.Repeats < 0:
		return fmt.Errorf("ga: negative repeat count")
	case c.EvalTimeout < 0:
		return fmt.Errorf("ga: negative eval timeout")
	}
	return nil
}

// Result reports the best genome found and the search's trajectory.
type Result[G any] struct {
	Best        G
	BestFitness float64
	// Population is the final population, best first — reusable as the
	// seeds of a follow-up run (checkpoint/resume).
	Population []G
	// Fitnesses holds the final population's scores, aligned with
	// Population.
	Fitnesses []float64
	// Generations actually executed.
	Generations int
	// Evaluations is the number of fitness calls actually made (the
	// budget measure used when comparing hierarchical vs flat
	// generation, §3.C). With memoization enabled, candidates served
	// from the cache are not counted here — see CacheHits.
	Evaluations int
	// CacheHits and CacheMisses report fitness-memoization traffic
	// (both zero when Ops.Fingerprint is nil or NoMemoize is set).
	// CacheMisses equals the evaluations spent on memoized batches.
	CacheHits   int
	CacheMisses int
	// Retries counts transient evaluation failures that were retried;
	// TimedOut is the per-attempt-timeout subset of those.
	Retries  int
	TimedOut int
	// Degraded counts candidates that exhausted their retries and were
	// assigned WorstFitness instead of aborting the search.
	Degraded int
	// History holds the best fitness after each generation.
	History []float64
}

type scored[G any] struct {
	g   G
	fit float64
}

// Run maximises eval over genomes. seeds, if any, are injected into the
// initial population (the paper: "the initial population ... can be
// generated randomly or seeded with existing benchmarks or stressmarks
// to improve the convergence rate"). Cancelling ctx stops the search
// promptly — between evaluations, backoff waits, and generations — and
// returns ctx.Err().
func Run[G any](ctx context.Context, cfg Config, ops Ops[G], seeds []G, eval func(G) (float64, error)) (*Result[G], error) {
	return RunCheckpointed(ctx, cfg, ops, seeds, eval, nil, nil)
}

// RunCheckpointed is Run with generation-level checkpoint/resume.
// After the initial population and after every generation, sink (when
// non-nil) receives a snapshot of the complete search state; resume
// (when non-nil) restores such a snapshot and continues the search
// exactly where it stopped. A resumed run is bit-identical to the
// uninterrupted one: the RNG is fast-forwarded to the recorded draw
// count, the population and fitness cache are restored, and the same
// deterministic evaluations replay (with memoization enabled, already-
// scored genomes are served from the restored cache).
func RunCheckpointed[G any](ctx context.Context, cfg Config, ops Ops[G], seeds []G, eval func(G) (float64, error), resume *Checkpoint[G], sink func(*Checkpoint[G]) error) (*Result[G], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ops.Random == nil || ops.Crossover == nil || ops.Mutate == nil {
		return nil, fmt.Errorf("ga: all three operators are required")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	src := newCountingSource(cfg.Seed)
	rng := rand.New(src)

	res := &Result[G]{}
	fp := ops.Fingerprint
	if cfg.NoMemoize {
		fp = nil
	}
	var cache map[string]float64
	if fp != nil {
		cache = make(map[string]float64)
	}
	ev := newEvaluator(cfg, eval)
	rEval := func(g G) (float64, error) { return ev.evaluate(ctx, g) }
	// scoreUniq evaluates one deduplicated batch: through the
	// generation-level evaluator when the genome supplies one, else by
	// fanning the per-genome eval across the worker pool.
	scoreUniq := func(gs []G) ([]float64, error) {
		if ops.EvalGeneration != nil {
			return ev.evalGeneration(ctx, gs, ops.EvalGeneration, cfg.Parallel)
		}
		return evalBatch(ctx, gs, rEval, cfg.Parallel)
	}
	// score runs one batch through the cache (when enabled) and the
	// batch scorer, accounting evaluations and cache traffic.
	score := func(gs []G) ([]float64, error) {
		if fp == nil {
			fits, err := scoreUniq(gs)
			if err != nil {
				return nil, err
			}
			res.Evaluations += len(gs)
			return fits, nil
		}
		fits, hits, misses, err := evalMemo(gs, fp, cache, scoreUniq)
		if err != nil {
			return nil, err
		}
		res.CacheHits += hits
		res.CacheMisses += misses
		res.Evaluations += misses
		return fits, nil
	}

	var pop []scored[G]
	startGen, stagnant := 0, 0
	if resume != nil {
		var err error
		pop, startGen, stagnant, err = restore(resume, res, cache, src)
		if err != nil {
			return nil, err
		}
		ev.restore(res)
	} else {
		initial := make([]G, cfg.PopSize)
		for i := range initial {
			if i < len(seeds) {
				initial[i] = seeds[i]
			} else {
				initial[i] = ops.Random(rng)
			}
		}
		fits, err := score(initial)
		if err != nil {
			return nil, fmt.Errorf("ga: evaluating initial population: %w", err)
		}
		pop = make([]scored[G], cfg.PopSize)
		for i := range pop {
			pop[i] = scored[G]{g: initial[i], fit: fits[i]}
		}
		sortPop(pop)
		res.Best, res.BestFitness = pop[0].g, pop[0].fit
	}

	emit := func(gen int) error {
		if sink == nil {
			return nil
		}
		ev.drain(res)
		return sink(snapshot(gen, stagnant, pop, res, cache, src.draws()))
	}
	if resume == nil {
		if err := emit(0); err != nil {
			return nil, fmt.Errorf("ga: checkpointing initial population: %w", err)
		}
	}

	for gen := startGen; gen < cfg.MaxGenerations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next := make([]scored[G], 0, cfg.PopSize)
		next = append(next, pop[:cfg.Elites]...)
		children := make([]G, 0, cfg.PopSize-cfg.Elites)
		for len(next)+len(children) < cfg.PopSize {
			a := tournament(rng, pop, cfg.TournamentK)
			b := tournament(rng, pop, cfg.TournamentK)
			child := ops.Crossover(rng, a.g, b.g)
			if rng.Float64() < cfg.MutationProb {
				child = ops.Mutate(rng, child)
			}
			children = append(children, child)
		}
		fits, err := score(children)
		if err != nil {
			return nil, fmt.Errorf("ga: evaluating generation %d: %w", gen, err)
		}
		for i, child := range children {
			next = append(next, scored[G]{g: child, fit: fits[i]})
		}
		pop = next
		sortPop(pop)
		res.Generations = gen + 1
		if pop[0].fit > res.BestFitness {
			res.Best, res.BestFitness = pop[0].g, pop[0].fit
			stagnant = 0
		} else {
			stagnant++
		}
		res.History = append(res.History, res.BestFitness)
		if err := emit(gen + 1); err != nil {
			return nil, fmt.Errorf("ga: checkpointing generation %d: %w", gen, err)
		}
		if cfg.StagnantLimit > 0 && stagnant >= cfg.StagnantLimit {
			break
		}
	}
	ev.drain(res)
	for _, s := range pop {
		res.Population = append(res.Population, s.g)
		res.Fitnesses = append(res.Fitnesses, s.fit)
	}
	return res, nil
}

// evalMemo scores a batch through the fitness cache: genomes scored in
// an earlier generation (matched by fingerprint) reuse their score,
// duplicates within the batch are evaluated once, and only unique
// misses reach the batch scorer. All lookups and dedup happen on the
// calling goroutine before any fan-out, and the cache is written only
// after the batch completes, so parallel runs are race-free and
// bit-identical to serial ones: the same set of genomes is simulated
// either way.
func evalMemo[G any](gs []G, fp func(G) string, cache map[string]float64, scoreUniq func([]G) ([]float64, error)) (fits []float64, hits, misses int, err error) {
	fits = make([]float64, len(gs))
	keys := make([]string, len(gs))
	rep := make(map[string]int, len(gs)) // key → first occurrence in batch
	var uniq []G
	var uniqIdx []int
	var dups [][2]int // [duplicate index, representative index]
	for i, g := range gs {
		k := fp(g)
		keys[i] = k
		if fit, ok := cache[k]; ok {
			fits[i] = fit
			hits++
			continue
		}
		if j, ok := rep[k]; ok {
			dups = append(dups, [2]int{i, j})
			hits++
			continue
		}
		rep[k] = i
		uniq = append(uniq, g)
		uniqIdx = append(uniqIdx, i)
	}
	ufits, err := scoreUniq(uniq)
	if err != nil {
		return nil, 0, 0, err
	}
	for k, i := range uniqIdx {
		fits[i] = ufits[k]
		cache[keys[i]] = ufits[k]
	}
	for _, d := range dups {
		fits[d[0]] = fits[d[1]]
	}
	return fits, hits, len(uniq), nil
}

// evalBatch scores a batch of genomes, fanning out across workers when
// parallelism is enabled. The first error aborts the batch; a
// cancelled context stops the workers promptly.
func evalBatch[G any](ctx context.Context, gs []G, eval func(G) (float64, error), workers int) ([]float64, error) {
	return evalIndexed(ctx, len(gs), func(i int) (float64, error) { return eval(gs[i]) }, workers)
}

// evalIndexed runs eval(0..n-1) across workers and collects the
// results. The batch stops dispatching as soon as it is doomed: every
// worker checks the context and the shared stop flag after claiming an
// index and before evaluating, and the feeder stops handing out work,
// so after the first failure (or cancellation) only evaluations already
// in flight keep running — a long simulation is never *started* for a
// batch whose result will be discarded.
func evalIndexed(ctx context.Context, n int, eval func(int) (float64, error), workers int) ([]float64, error) {
	fits := make([]float64, n)
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			fit, err := eval(i)
			if err != nil {
				return nil, err
			}
			fits[i] = fit
		}
		return fits, nil
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		stop     atomic.Bool
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if stop.Load() || ctx.Err() != nil {
					continue
				}
				fit, err := eval(i)
				if err != nil {
					stop.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				fits[i] = fit
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		if stop.Load() {
			break
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return fits, nil
}

func tournament[G any](rng *rand.Rand, pop []scored[G], k int) scored[G] {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.fit > best.fit {
			best = c
		}
	}
	return best
}

// sortPop orders by descending fitness (stable insertion sort: the
// populations are small and this avoids pulling in sort for a hot path
// that profiles flat anyway).
func sortPop[G any](pop []scored[G]) {
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && pop[j].fit > pop[j-1].fit; j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
}
