// Package ga is the genetic-algorithm engine at the heart of AUDIT's
// search (Fig. 5): a population of candidate stressmarks is evaluated
// against a cost function (measured voltage droop), and tournament
// selection, crossover and mutation refine it until the exit condition
// — no improvement for several generations — is met. The engine is
// generic so the same machinery drives flat opcode-sequence genomes,
// hierarchical sub-block genomes (§3.C) and test toys alike.
package ga

import (
	"fmt"
	"math/rand"
	"sync"
)

// Ops supplies the genome-specific operators.
type Ops[G any] struct {
	// Random creates a new random genome.
	Random func(rng *rand.Rand) G
	// Crossover combines two parents into a child.
	Crossover func(rng *rand.Rand, a, b G) G
	// Mutate returns a (possibly) modified copy of g.
	Mutate func(rng *rand.Rand, g G) G
}

// Config controls the search.
type Config struct {
	// PopSize is the population size.
	PopSize int
	// Elites survive unchanged each generation.
	Elites int
	// TournamentK is the tournament size for parent selection.
	TournamentK int
	// MutationProb is the probability a child is mutated.
	MutationProb float64
	// MaxGenerations bounds the run.
	MaxGenerations int
	// Parallel evaluates fitness with this many concurrent workers
	// (0 or 1 = serial). Results are identical to a serial run: genome
	// creation stays sequential on the seeded RNG, and only the
	// independent fitness calls fan out — safe because every AUDIT
	// evaluation builds its own simulator instance.
	Parallel int
	// StagnantLimit exits early when the best fitness has not improved
	// for this many consecutive generations (the paper's exit
	// condition: "the maximum voltage droop produced by AUDIT does not
	// increase for several generations"). 0 disables the early exit.
	StagnantLimit int
	// Seed makes the run reproducible.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.PopSize < 2:
		return fmt.Errorf("ga: population must be ≥ 2")
	case c.Elites < 0 || c.Elites >= c.PopSize:
		return fmt.Errorf("ga: elites must be in [0, pop)")
	case c.TournamentK < 1 || c.TournamentK > c.PopSize:
		return fmt.Errorf("ga: tournament size must be in [1, pop]")
	case c.MutationProb < 0 || c.MutationProb > 1:
		return fmt.Errorf("ga: mutation probability outside [0,1]")
	case c.MaxGenerations < 1:
		return fmt.Errorf("ga: need at least one generation")
	case c.StagnantLimit < 0:
		return fmt.Errorf("ga: negative stagnant limit")
	case c.Parallel < 0:
		return fmt.Errorf("ga: negative parallelism")
	}
	return nil
}

// Result reports the best genome found and the search's trajectory.
type Result[G any] struct {
	Best        G
	BestFitness float64
	// Population is the final population, best first — reusable as the
	// seeds of a follow-up run (checkpoint/resume).
	Population []G
	// Fitnesses holds the final population's scores, aligned with
	// Population.
	Fitnesses []float64
	// Generations actually executed.
	Generations int
	// Evaluations is the number of fitness calls (the budget measure
	// used when comparing hierarchical vs flat generation, §3.C).
	Evaluations int
	// History holds the best fitness after each generation.
	History []float64
}

type scored[G any] struct {
	g   G
	fit float64
}

// Run maximises eval over genomes. seeds, if any, are injected into the
// initial population (the paper: "the initial population ... can be
// generated randomly or seeded with existing benchmarks or stressmarks
// to improve the convergence rate").
func Run[G any](cfg Config, ops Ops[G], seeds []G, eval func(G) (float64, error)) (*Result[G], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ops.Random == nil || ops.Crossover == nil || ops.Mutate == nil {
		return nil, fmt.Errorf("ga: all three operators are required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	res := &Result[G]{}
	initial := make([]G, cfg.PopSize)
	for i := range initial {
		if i < len(seeds) {
			initial[i] = seeds[i]
		} else {
			initial[i] = ops.Random(rng)
		}
	}
	fits, err := evalBatch(initial, eval, cfg.Parallel)
	if err != nil {
		return nil, fmt.Errorf("ga: evaluating initial population: %w", err)
	}
	res.Evaluations += len(initial)
	pop := make([]scored[G], cfg.PopSize)
	for i := range pop {
		pop[i] = scored[G]{g: initial[i], fit: fits[i]}
	}
	sortPop(pop)
	res.Best, res.BestFitness = pop[0].g, pop[0].fit

	stagnant := 0
	for gen := 0; gen < cfg.MaxGenerations; gen++ {
		next := make([]scored[G], 0, cfg.PopSize)
		next = append(next, pop[:cfg.Elites]...)
		children := make([]G, 0, cfg.PopSize-cfg.Elites)
		for len(next)+len(children) < cfg.PopSize {
			a := tournament(rng, pop, cfg.TournamentK)
			b := tournament(rng, pop, cfg.TournamentK)
			child := ops.Crossover(rng, a.g, b.g)
			if rng.Float64() < cfg.MutationProb {
				child = ops.Mutate(rng, child)
			}
			children = append(children, child)
		}
		fits, err := evalBatch(children, eval, cfg.Parallel)
		if err != nil {
			return nil, fmt.Errorf("ga: evaluating generation %d: %w", gen, err)
		}
		res.Evaluations += len(children)
		for i, child := range children {
			next = append(next, scored[G]{g: child, fit: fits[i]})
		}
		pop = next
		sortPop(pop)
		res.Generations = gen + 1
		if pop[0].fit > res.BestFitness {
			res.Best, res.BestFitness = pop[0].g, pop[0].fit
			stagnant = 0
		} else {
			stagnant++
		}
		res.History = append(res.History, res.BestFitness)
		if cfg.StagnantLimit > 0 && stagnant >= cfg.StagnantLimit {
			break
		}
	}
	for _, s := range pop {
		res.Population = append(res.Population, s.g)
		res.Fitnesses = append(res.Fitnesses, s.fit)
	}
	return res, nil
}

// evalBatch scores a batch of genomes, fanning out across workers when
// parallelism is enabled. The first error aborts the batch.
func evalBatch[G any](gs []G, eval func(G) (float64, error), workers int) ([]float64, error) {
	fits := make([]float64, len(gs))
	if workers <= 1 || len(gs) < 2 {
		for i, g := range gs {
			fit, err := eval(g)
			if err != nil {
				return nil, err
			}
			fits[i] = fit
		}
		return fits, nil
	}
	if workers > len(gs) {
		workers = len(gs)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fit, err := eval(gs[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				fits[i] = fit
			}
		}()
	}
	for i := range gs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return fits, nil
}

func tournament[G any](rng *rand.Rand, pop []scored[G], k int) scored[G] {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.fit > best.fit {
			best = c
		}
	}
	return best
}

// sortPop orders by descending fitness (stable insertion sort: the
// populations are small and this avoids pulling in sort for a hot path
// that profiles flat anyway).
func sortPop[G any](pop []scored[G]) {
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && pop[j].fit > pop[j-1].fit; j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
}
