// Package faults injects the failure modes of a physical measurement
// lab into the simulated testbed. The paper's closed loop ran 5–30
// hours against real silicon and simply lived with noisy oscilloscope
// captures, thread-launch skew that broke dithering alignment, VRM
// set-point drift and FPU-throttling episodes (re-running AUDIT when a
// capture was lost); the pristine simulator hides all of that. An
// Injector wraps any testbed.Runner and reproduces those modes
// deterministically, so the resilient evaluation and checkpoint/resume
// machinery exercise the same code paths a real lab campaign would.
//
// Determinism: every fault decision is drawn from a PRNG seeded by
// (Config.Seed, content hash of the RunConfig, per-content attempt
// counter). Identical runs therefore fault identically regardless of
// the order or concurrency in which they execute — a parallel GA sweep
// sees exactly the faults a serial one does — while retrying the same
// run draws a fresh outcome, which is what makes retry useful.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"repro/internal/testbed"
)

// ErrTransient is the sentinel wrapped by every transient fault: the
// run failed in a way a retry can fix (lost scope capture, aborted
// measurement). Permanent errors — bad configurations, unsupported
// instructions — do not wrap it.
var ErrTransient = errors.New("faults: transient measurement fault")

// Error is a typed injection failure.
type Error struct {
	// Op names the failed lab step ("scope capture", "waveform readout").
	Op string
	// Attempt is the per-run-content attempt number that failed.
	Attempt   uint32
	transient bool
}

func (e *Error) Error() string {
	kind := "permanent"
	if e.transient {
		kind = "transient"
	}
	return fmt.Sprintf("faults: %s fault: %s (attempt %d)", kind, e.Op, e.Attempt)
}

// Transient reports whether a retry may succeed. The ga package
// detects this method via errors.As, without importing faults.
func (e *Error) Transient() bool { return e.transient }

// Unwrap lets errors.Is(err, ErrTransient) work.
func (e *Error) Unwrap() error {
	if e.transient {
		return ErrTransient
	}
	return nil
}

// IsTransient reports whether err is (or wraps) a transient fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Config describes the lab's failure modes. All rates are
// probabilities in [0,1]; zero disables a mode.
type Config struct {
	// Seed drives every fault decision.
	Seed int64
	// TransientRate is the probability a run is lost outright (scope
	// trigger missed, capture aborted) and returns ErrTransient.
	TransientRate float64
	// DropoutRate is the probability a requested waveform capture is
	// dropped mid-readout — also a transient error, but only on runs
	// that record waveforms.
	DropoutRate float64
	// ScopeNoiseV is the amplitude (volts, uniform ±) of additive
	// sample noise on the scope-derived statistics and waveform.
	ScopeNoiseV float64
	// LaunchSkewMax adds up to this many cycles of extra start skew to
	// each thread, perturbing the dither plan the way OS thread-launch
	// jitter does on real hardware.
	LaunchSkewMax uint64
	// DriftMaxV is the VRM load-line drift bound: each run's DC
	// set-point is offset by a value uniform in ±DriftMaxV.
	DriftMaxV float64
	// ThrottleRate is the probability of an FPU-throttling episode: the
	// run executes with FP issue clipped to ThrottleLimit, depressing
	// per-cycle power the way a thermal event does.
	ThrottleRate float64
	// ThrottleLimit is the FP issue cap during an episode (default 1).
	ThrottleLimit int
}

// Lab returns the default lab-flavoured fault model: every mode
// enabled at rates matching the nuisances the paper reports.
func Lab(seed int64) Config {
	return Config{
		Seed:          seed,
		TransientRate: 0.10,
		DropoutRate:   0.05,
		ScopeNoiseV:   0.0008,
		LaunchSkewMax: 8,
		DriftMaxV:     0.0004,
		ThrottleRate:  0.03,
		ThrottleLimit: 1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"transient rate", c.TransientRate},
		{"dropout rate", c.DropoutRate},
		{"throttle rate", c.ThrottleRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s %g outside [0,1]", r.name, r.v)
		}
	}
	if c.ScopeNoiseV < 0 || c.DriftMaxV < 0 {
		return fmt.Errorf("faults: negative noise amplitude")
	}
	if c.ThrottleLimit < 0 {
		return fmt.Errorf("faults: negative throttle limit")
	}
	return nil
}

// Stats counts what the injector did. All counters are cumulative
// across the injector's lifetime.
type Stats struct {
	// Runs is the total number of Run calls.
	Runs int
	// Transients is how many runs were lost to transient faults
	// (missed captures plus waveform dropouts).
	Transients int
	// Dropouts is the waveform-readout subset of Transients.
	Dropouts int
	// Throttled counts runs executed under a throttling episode.
	Throttled int
	// Skewed counts runs whose threads got extra launch skew.
	Skewed int
}

// Injector wraps a Runner and perturbs its runs. Safe for concurrent
// use; fault decisions are independent of call order (see the package
// comment).
type Injector struct {
	cfg Config
	r   testbed.Runner

	mu       sync.Mutex
	attempts map[uint64]uint32
	stats    Stats
}

// New wraps r with the configured fault model.
func New(cfg Config, r testbed.Runner) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, fmt.Errorf("faults: nil runner")
	}
	if cfg.ThrottleLimit == 0 {
		cfg.ThrottleLimit = 1
	}
	return &Injector{cfg: cfg, r: r, attempts: map[uint64]uint32{}}, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(cfg Config, r testbed.Runner) *Injector {
	in, err := New(cfg, r)
	if err != nil {
		panic(err)
	}
	return in
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Run executes one measurement through the fault model. The zero-fault
// configuration is a transparent passthrough.
func (in *Injector) Run(rc testbed.RunConfig) (*testbed.Measurement, error) {
	h := hashRunConfig(&rc)
	in.mu.Lock()
	attempt := in.attempts[h]
	in.attempts[h]++
	in.stats.Runs++
	in.mu.Unlock()

	rng := rand.New(rand.NewSource(mix(in.cfg.Seed, h, attempt)))

	// Draw order is fixed so every mode's decision is stable whether or
	// not earlier modes fire.
	lost := rng.Float64() < in.cfg.TransientRate
	dropout := rc.RecordWaveform && rng.Float64() < in.cfg.DropoutRate
	throttled := in.cfg.ThrottleRate > 0 && rng.Float64() < in.cfg.ThrottleRate
	drift := 0.0
	if in.cfg.DriftMaxV > 0 {
		drift = (2*rng.Float64() - 1) * in.cfg.DriftMaxV
	}
	noise := 0.0
	if in.cfg.ScopeNoiseV > 0 {
		noise = (2*rng.Float64() - 1) * in.cfg.ScopeNoiseV
	}

	if lost {
		in.count(func(s *Stats) { s.Transients++ })
		return nil, &Error{Op: "scope capture aborted", Attempt: attempt, transient: true}
	}

	if in.cfg.LaunchSkewMax > 0 && len(rc.Threads) > 0 {
		// Clone the specs: callers reuse their slices across runs.
		threads := append([]testbed.ThreadSpec(nil), rc.Threads...)
		skewed := false
		for i := range threads {
			extra := uint64(rng.Int63n(int64(in.cfg.LaunchSkewMax) + 1))
			if extra > 0 {
				threads[i].StartSkew += extra
				skewed = true
			}
		}
		rc.Threads = threads
		if skewed {
			in.count(func(s *Stats) { s.Skewed++ })
		}
	}
	if throttled {
		rc.FPThrottle = in.cfg.ThrottleLimit
		in.count(func(s *Stats) { s.Throttled++ })
	}

	m, err := in.r.Run(rc)
	if err != nil {
		return m, err
	}
	if dropout {
		in.count(func(s *Stats) { s.Transients++; s.Dropouts++ })
		return nil, &Error{Op: "waveform readout dropped", Attempt: attempt, transient: true}
	}

	// Post-measurement perturbations: VRM drift shifts the whole trace
	// DC point; scope noise is an additive measurement error.
	if drift != 0 {
		m.MinV += drift
		m.MeanV += drift
		m.MaxDroopV = math.Max(0, m.MaxDroopV-drift)
		m.MaxOvershootV = math.Max(0, m.MaxOvershootV+drift)
	}
	if noise != 0 {
		m.MaxDroopV = math.Max(0, m.MaxDroopV+noise)
		m.MinV -= noise
		for i := range m.Waveform {
			m.Waveform[i] += (2*rng.Float64() - 1) * in.cfg.ScopeNoiseV
		}
	}
	return m, nil
}

func (in *Injector) count(f func(*Stats)) {
	in.mu.Lock()
	f(&in.stats)
	in.mu.Unlock()
}

// mix folds the seed, content hash and attempt into one PRNG seed
// (splitmix64-style finalizer).
func mix(seed int64, h uint64, attempt uint32) int64 {
	x := uint64(seed) ^ h ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// hashRunConfig produces a stable content key for a run: what program
// runs where, for how long, at what supply — everything that changes
// the measurement. Two RunConfigs describing the same run hash equal
// even when built independently.
func hashRunConfig(rc *testbed.RunConfig) uint64 {
	h := fnv.New64a()
	var b [8]byte
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	str := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }

	u64(uint64(len(rc.Threads)))
	for _, ts := range rc.Threads {
		u64(uint64(ts.Module))
		u64(uint64(ts.Core))
		u64(ts.MaxInstrs)
		u64(ts.StartSkew)
		p := ts.Program
		if p == nil {
			continue
		}
		str(p.Name)
		u64(uint64(p.MemBytes))
		u64(uint64(len(p.Code)))
		for i := range p.Code {
			in := &p.Code[i]
			if in.Op != nil {
				str(in.Op.Name)
			}
			u64(uint64(in.Dst.Kind)<<8 | uint64(in.Dst.Index))
			u64(uint64(in.Src1.Kind)<<8 | uint64(in.Src1.Index))
			u64(uint64(in.Src2.Kind)<<8 | uint64(in.Src2.Index))
			u64(uint64(in.Imm))
			u64(uint64(in.MemBase.Kind)<<8 | uint64(in.MemBase.Index))
			u64(uint64(int64(in.MemDisp)))
			u64(uint64(int64(in.Target)))
		}
	}
	u64(rc.MaxCycles)
	u64(rc.WarmupCycles)
	u64(math.Float64bits(rc.SupplyVolts))
	u64(uint64(rc.FPThrottle))
	for _, d := range rc.Dither {
		u64(uint64(d.Core))
		u64(d.PeriodCycles)
		u64(d.PadCycles)
	}
	if rc.RecordWaveform {
		u64(1)
	}
	u64(math.Float64bits(rc.ScopeSampleHz))
	u64(math.Float64bits(rc.TriggerThreshold))
	return h.Sum64()
}
