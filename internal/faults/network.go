package faults

// This file is the network fault profile: the failure modes of the RPC
// fabric between a distributed-search coordinator and its worker
// shards, as opposed to the measurement-lab faults of faults.go. A
// NetFaults wraps an http.RoundTripper and deterministically drops,
// delays, duplicates and stalls the RPCs flowing through it, so the
// lease/heartbeat/retry machinery in internal/dist can be chaos-tested
// with reproducible schedules: the same campaign sees the same faults
// every run, while each retransmission of the same RPC draws a fresh
// outcome (the attempt counter advances), which is what makes retry
// converge.

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// NetError is a typed transport failure — the RPC never completed, the
// caller cannot know whether the server saw it. Always transient: a
// retransmission may succeed, and the receiving side must therefore
// deduplicate (at-most-once merge).
type NetError struct {
	// Op names the failed hop ("request dropped", "stall cancelled").
	Op string
	// Attempt is the per-RPC-content attempt number that failed.
	Attempt uint32
}

func (e *NetError) Error() string {
	return fmt.Sprintf("faults: network fault: %s (attempt %d)", e.Op, e.Attempt)
}

// Transient reports that a retry may succeed; detected structurally
// (errors.As) by the ga and dist retry policies.
func (e *NetError) Transient() bool { return true }

// Unwrap lets errors.Is(err, ErrTransient) classify network faults with
// the same sentinel as lab faults.
func (e *NetError) Unwrap() error { return ErrTransient }

// NetConfig describes the RPC fabric's failure modes. Rates are
// probabilities in [0,1]; zero disables a mode.
type NetConfig struct {
	// Seed drives every fault decision.
	Seed int64
	// DropRate is the probability an RPC is lost outright: the request
	// may or may not have reached the server (the caller cannot tell),
	// and the call returns a NetError.
	DropRate float64
	// DupRate is the probability an RPC is delivered twice — a spurious
	// retransmission. The caller sees the second exchange's response;
	// the server must tolerate the duplicate.
	DupRate float64
	// DelayMax adds up to this much extra latency to each RPC, uniform.
	DelayMax time.Duration
	// StallRate is the probability an RPC hangs for StallDur before the
	// response is delivered — a stalled worker or a congested link. The
	// caller's context can cancel the stall.
	StallRate float64
	// StallDur is how long a stalled RPC hangs (default 2s).
	StallDur time.Duration
}

// LabNet returns a default chaos-flavoured network fault model: lossy
// enough that every recovery path fires, not so lossy that progress
// stops.
func LabNet(seed int64) NetConfig {
	return NetConfig{
		Seed:      seed,
		DropRate:  0.10,
		DupRate:   0.05,
		DelayMax:  2 * time.Millisecond,
		StallRate: 0.02,
		StallDur:  250 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c NetConfig) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"drop rate", c.DropRate},
		{"duplicate rate", c.DupRate},
		{"stall rate", c.StallRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s %g outside [0,1]", r.name, r.v)
		}
	}
	if c.DelayMax < 0 || c.StallDur < 0 {
		return fmt.Errorf("faults: negative duration")
	}
	return nil
}

// NetStats counts what the transport injector did.
type NetStats struct {
	// RPCs is the total number of RoundTrip calls.
	RPCs int
	// Dropped, Duplicated, Delayed and Stalled count the fired modes.
	Dropped    int
	Duplicated int
	Delayed    int
	Stalled    int
}

// NetFaults is an http.RoundTripper decorator injecting the configured
// network faults. Safe for concurrent use; fault decisions are keyed by
// (seed, RPC content hash, per-content attempt counter) so they are
// independent of call order and concurrency, exactly like Injector.
type NetFaults struct {
	cfg   NetConfig
	inner http.RoundTripper

	// sleep waits for d or until ctx dies; swappable for fake-clock
	// tests.
	sleep func(ctx context.Context, d time.Duration) error

	mu       sync.Mutex
	attempts map[uint64]uint32
	stats    NetStats
}

// NewNet wraps inner (nil = http.DefaultTransport) with the configured
// network fault model.
func NewNet(cfg NetConfig, inner http.RoundTripper) (*NetFaults, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		inner = http.DefaultTransport
	}
	if cfg.StallDur == 0 {
		cfg.StallDur = 2 * time.Second
	}
	return &NetFaults{cfg: cfg, inner: inner, sleep: sleepCtx, attempts: map[uint64]uint32{}}, nil
}

// Stats returns a snapshot of the injection counters.
func (n *NetFaults) Stats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// RoundTrip executes one RPC through the fault model. The zero-fault
// configuration is a transparent passthrough (modulo body buffering).
func (n *NetFaults) RoundTrip(req *http.Request) (*http.Response, error) {
	// Buffer the body: the content hash needs it, and a duplicated
	// delivery resends it. dist RPCs are small JSON payloads.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	h := hashRPC(req.Method, req.URL.Path, body)
	n.mu.Lock()
	attempt := n.attempts[h]
	n.attempts[h]++
	n.stats.RPCs++
	n.mu.Unlock()

	rng := rand.New(rand.NewSource(mix(n.cfg.Seed, h, attempt)))
	// Draw order is fixed so every mode's decision is stable whether or
	// not earlier modes fire.
	dropped := rng.Float64() < n.cfg.DropRate
	duped := rng.Float64() < n.cfg.DupRate
	var delay time.Duration
	if n.cfg.DelayMax > 0 {
		delay = time.Duration(rng.Int63n(int64(n.cfg.DelayMax) + 1))
	}
	stalled := rng.Float64() < n.cfg.StallRate

	ctx := req.Context()
	if delay > 0 {
		n.count(func(s *NetStats) { s.Delayed++ })
		if err := n.sleep(ctx, delay); err != nil {
			return nil, err
		}
	}
	if dropped {
		n.count(func(s *NetStats) { s.Dropped++ })
		return nil, &NetError{Op: "request dropped", Attempt: attempt}
	}
	if duped {
		// Spurious retransmission: the server sees the RPC twice. The
		// first exchange's response is discarded unread.
		n.count(func(s *NetStats) { s.Duplicated++ })
		if resp, err := n.inner.RoundTrip(cloneRequest(req, body)); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	if stalled {
		n.count(func(s *NetStats) { s.Stalled++ })
		if err := n.sleep(ctx, n.cfg.StallDur); err != nil {
			return nil, err
		}
	}
	return n.inner.RoundTrip(cloneRequest(req, body))
}

func (n *NetFaults) count(f func(*NetStats)) {
	n.mu.Lock()
	f(&n.stats)
	n.mu.Unlock()
}

// cloneRequest rebuilds the request around the buffered body so it can
// be (re)sent any number of times.
func cloneRequest(req *http.Request, body []byte) *http.Request {
	out := req.Clone(req.Context())
	if body != nil {
		out.Body = io.NopCloser(bytes.NewReader(body))
		out.ContentLength = int64(len(body))
		out.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(body)), nil
		}
	}
	return out
}

// sleepCtx waits for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// hashRPC produces the stable content key of one RPC.
func hashRPC(method, path string, body []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(method))
	h.Write([]byte{0})
	h.Write([]byte(path))
	h.Write([]byte{0})
	h.Write(body)
	return h.Sum64()
}
