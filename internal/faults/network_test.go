package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func post(t *testing.T, client *http.Client, url, body string) (string, error) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(blob), nil
}

// TestNetFaultsPassthrough: the zero configuration must not perturb
// RPCs at all.
func TestNetFaultsPassthrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		blob, _ := io.ReadAll(r.Body)
		w.Write(blob)
	}))
	defer srv.Close()
	nf, err := NewNet(NetConfig{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: nf}
	got, err := post(t, client, srv.URL+"/echo", `{"x":1}`)
	if err != nil {
		t.Fatal(err)
	}
	if got != `{"x":1}` {
		t.Fatalf("echo = %q", got)
	}
	if s := nf.Stats(); s.RPCs != 1 || s.Dropped+s.Duplicated+s.Stalled != 0 {
		t.Fatalf("stats = %+v, want one clean RPC", s)
	}
}

// TestNetFaultsDropIsTransient: a dropped RPC surfaces as a typed
// transient error, classified by both the sentinel and the structural
// Transient() contract the ga package uses.
func TestNetFaultsDropIsTransient(t *testing.T) {
	nf, err := NewNet(NetConfig{Seed: 3, DropRate: 1}, http.DefaultTransport)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: nf}
	_, err = post(t, client, "http://127.0.0.1:0/unreachable-but-irrelevant", "x")
	if err == nil {
		t.Fatal("DropRate=1 RPC succeeded")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("dropped RPC error %v does not wrap ErrTransient", err)
	}
	var ne *NetError
	if !errors.As(err, &ne) || !ne.Transient() {
		t.Fatalf("dropped RPC error %v is not a transient NetError", err)
	}
	if s := nf.Stats(); s.Dropped != 1 {
		t.Fatalf("stats = %+v, want 1 drop", s)
	}
}

// TestNetFaultsDuplicateDelivers: a duplicated RPC reaches the server
// twice, and the caller still gets a good response — the receiver's
// dedup, not the sender, owns exactly-once semantics.
func TestNetFaultsDuplicateDelivers(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		blob, _ := io.ReadAll(r.Body)
		hits.Add(1)
		w.Write(blob)
	}))
	defer srv.Close()
	nf, err := NewNet(NetConfig{Seed: 5, DupRate: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: nf}
	got, err := post(t, client, srv.URL+"/result", `{"unit":7}`)
	if err != nil {
		t.Fatal(err)
	}
	if got != `{"unit":7}` {
		t.Fatalf("response = %q", got)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d deliveries, want 2", hits.Load())
	}
	if s := nf.Stats(); s.Duplicated != 1 {
		t.Fatalf("stats = %+v, want 1 duplicate", s)
	}
}

// TestNetFaultsStallHonoursContext: a stalled RPC sleeps StallDur (via
// the injected clock) and aborts early when the caller's context dies.
func TestNetFaultsStallHonoursContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	nf, err := NewNet(NetConfig{Seed: 2, StallRate: 1, StallDur: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var slept []time.Duration
	nf.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	client := &http.Client{Transport: nf}
	if _, err := post(t, client, srv.URL+"/lease", "x"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 1 || slept[0] != time.Hour {
		t.Fatalf("stall slept %v, want [1h]", slept)
	}
	if s := nf.Stats(); s.Stalled != 1 {
		t.Fatalf("stats = %+v, want 1 stall", s)
	}

	// Real clock + dead context: the stall must abort promptly.
	nf2, err := NewNet(NetConfig{Seed: 2, StallRate: 1, StallDur: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/lease", strings.NewReader("x"))
	if _, err := (&http.Client{Transport: nf2}).Do(req); !errors.Is(err, context.Canceled) {
		t.Fatalf("stalled RPC with dead context: err = %v, want context.Canceled", err)
	}
}

// TestNetFaultsDeterministic: fault decisions depend only on (seed, RPC
// content, attempt) — re-running the same RPC sequence reproduces the
// exact outcome sequence, and distinct contents draw independently.
func TestNetFaultsDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
	}))
	defer srv.Close()
	outcomes := func() []bool {
		nf, err := NewNet(NetConfig{Seed: 11, DropRate: 0.5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		client := &http.Client{Transport: nf}
		var dropped []bool
		for i := 0; i < 8; i++ {
			for _, body := range []string{`{"u":1}`, `{"u":2}`, `{"u":3}`} {
				_, err := post(t, client, srv.URL+"/lease", body)
				dropped = append(dropped, err != nil)
			}
		}
		return dropped
	}
	a, b := outcomes(), outcomes()
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("drop pattern degenerate (%d/%d): attempt counter not advancing", fired, len(a))
	}
}
