package faults

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/testbed"
)

// fakeRunner is a deterministic stand-in for the platform: the
// measurement is a pure function of the RunConfig, and every received
// config is recorded for inspection.
type fakeRunner struct {
	mu  sync.Mutex
	got []testbed.RunConfig
}

func (f *fakeRunner) Run(rc testbed.RunConfig) (*testbed.Measurement, error) {
	f.mu.Lock()
	f.got = append(f.got, rc)
	f.mu.Unlock()
	m := &testbed.Measurement{
		Cycles:        rc.MaxCycles,
		MaxDroopV:     0.050,
		MaxOvershootV: 0.020,
		MinV:          0.950,
		MeanV:         1.000,
		AvgPowerW:     10,
	}
	if rc.FPThrottle > 0 {
		m.MaxDroopV = 0.030 // throttling depresses the droop
	}
	if rc.RecordWaveform {
		m.Waveform = []float64{1.00, 0.99, 0.98, 0.97}
	}
	return m, nil
}

func (f *fakeRunner) configs() []testbed.RunConfig {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]testbed.RunConfig(nil), f.got...)
}

// distinctConfigs builds n RunConfigs with different content hashes.
func distinctConfigs(n int) []testbed.RunConfig {
	cfgs := make([]testbed.RunConfig, n)
	for i := range cfgs {
		cfgs[i] = testbed.RunConfig{
			Threads:        []testbed.ThreadSpec{{Core: i % 4}},
			MaxCycles:      uint64(1000 + i),
			RecordWaveform: i%2 == 0,
		}
	}
	return cfgs
}

// outcome flattens a Run result for comparison.
func outcome(m *testbed.Measurement, err error) string {
	if err != nil {
		return "err:" + err.Error()
	}
	return fmt.Sprintf("ok:%d:%.9f:%.9f:%.9f:%v", m.Cycles, m.MaxDroopV, m.MinV, m.MeanV, m.Waveform)
}

func TestSameSeedSameFaultsRegardlessOfOrder(t *testing.T) {
	cfgs := distinctConfigs(64)
	lab := Lab(7)

	// Injector A runs the configs forward, serially.
	a := MustNew(lab, &fakeRunner{})
	fwd := make(map[uint64]string, len(cfgs))
	for i, rc := range cfgs {
		fwd[uint64(i)] = outcome(a.Run(rc))
	}

	// Injector B runs them backwards.
	b := MustNew(lab, &fakeRunner{})
	for i := len(cfgs) - 1; i >= 0; i-- {
		if got := outcome(b.Run(cfgs[i])); got != fwd[uint64(i)] {
			t.Fatalf("reverse-order run %d diverged:\n  fwd: %s\n  rev: %s", i, fwd[uint64(i)], got)
		}
	}

	// Injector C runs them concurrently.
	c := MustNew(lab, &fakeRunner{})
	results := make([]string, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = outcome(c.Run(cfgs[i]))
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if got != fwd[uint64(i)] {
			t.Fatalf("concurrent run %d diverged:\n  fwd: %s\n  par: %s", i, fwd[uint64(i)], got)
		}
	}
}

func TestDifferentSeedsFaultDifferently(t *testing.T) {
	cfgs := distinctConfigs(64)
	a, b := MustNew(Lab(1), &fakeRunner{}), MustNew(Lab(2), &fakeRunner{})
	same := 0
	for _, rc := range cfgs {
		if outcome(a.Run(rc)) == outcome(b.Run(rc)) {
			same++
		}
	}
	if same == len(cfgs) {
		t.Error("two seeds produced identical fault streams across 64 runs")
	}
}

func TestRetryDrawsFreshOutcome(t *testing.T) {
	// With a 50% transient rate, retrying a lost run must eventually
	// succeed: each attempt on the same content draws a new outcome.
	cfg := Config{Seed: 3, TransientRate: 0.5}
	in := MustNew(cfg, &fakeRunner{})
	rc := testbed.RunConfig{MaxCycles: 500}

	sawLoss, sawSuccess := false, false
	for i := 0; i < 64 && !(sawLoss && sawSuccess); i++ {
		if _, err := in.Run(rc); err != nil {
			sawLoss = true
		} else {
			sawSuccess = true
		}
	}
	if !sawLoss || !sawSuccess {
		t.Fatalf("64 attempts at 50%% transient rate: loss=%v success=%v", sawLoss, sawSuccess)
	}
}

func TestZeroConfigIsTransparent(t *testing.T) {
	fr := &fakeRunner{}
	in := MustNew(Config{Seed: 9}, fr)
	rc := testbed.RunConfig{MaxCycles: 1234, RecordWaveform: true}
	m, err := in.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := (&fakeRunner{}).Run(rc)
	if m.MaxDroopV != want.MaxDroopV || m.MinV != want.MinV || m.MeanV != want.MeanV {
		t.Errorf("zero-fault injector perturbed the measurement: %+v vs %+v", m, want)
	}
	if got := in.Stats(); got.Runs != 1 || got.Transients != 0 || got.Throttled != 0 || got.Skewed != 0 {
		t.Errorf("unexpected stats for clean run: %+v", got)
	}
}

func TestTransientErrorTyping(t *testing.T) {
	in := MustNew(Config{Seed: 1, TransientRate: 1}, &fakeRunner{})
	_, err := in.Run(testbed.RunConfig{MaxCycles: 10})
	if err == nil {
		t.Fatal("rate-1 transient config returned no error")
	}
	if !IsTransient(err) {
		t.Error("IsTransient false for an injected loss")
	}
	if !errors.Is(err, ErrTransient) {
		t.Error("errors.Is(err, ErrTransient) false")
	}
	// The ga package detects transience structurally, without importing
	// this package — via an interface probe.
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Error("error does not expose Transient() true")
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Op == "" {
		t.Error("typed *Error with Op not in chain")
	}
}

func TestLaunchSkewPerturbsThreadsWithoutMutatingCaller(t *testing.T) {
	fr := &fakeRunner{}
	in := MustNew(Config{Seed: 5, LaunchSkewMax: 8}, fr)
	threads := []testbed.ThreadSpec{{Core: 0, StartSkew: 2}, {Core: 1, StartSkew: 0}}
	rc := testbed.RunConfig{Threads: threads, MaxCycles: 100}
	if _, err := in.Run(rc); err != nil {
		t.Fatal(err)
	}
	if threads[0].StartSkew != 2 || threads[1].StartSkew != 0 {
		t.Error("injector mutated the caller's thread slice")
	}
	got := fr.configs()[0].Threads
	if got[0].StartSkew < 2 || got[0].StartSkew > 2+8 || got[1].StartSkew > 8 {
		t.Errorf("skewed StartSkews out of bounds: %d, %d", got[0].StartSkew, got[1].StartSkew)
	}
}

func TestThrottleEpisodeCapsFPIssue(t *testing.T) {
	fr := &fakeRunner{}
	in := MustNew(Config{Seed: 5, ThrottleRate: 1, ThrottleLimit: 2}, fr)
	if _, err := in.Run(testbed.RunConfig{MaxCycles: 100}); err != nil {
		t.Fatal(err)
	}
	if got := fr.configs()[0].FPThrottle; got != 2 {
		t.Errorf("throttled run reached platform with FPThrottle %d, want 2", got)
	}
	if s := in.Stats(); s.Throttled != 1 {
		t.Errorf("Throttled counter %d, want 1", s.Throttled)
	}
}

func TestDropoutOnlyAffectsWaveformRuns(t *testing.T) {
	in := MustNew(Config{Seed: 5, DropoutRate: 1}, &fakeRunner{})
	if _, err := in.Run(testbed.RunConfig{MaxCycles: 100}); err != nil {
		t.Errorf("dropout fired on a run with no waveform capture: %v", err)
	}
	_, err := in.Run(testbed.RunConfig{MaxCycles: 100, RecordWaveform: true})
	if !IsTransient(err) {
		t.Errorf("waveform run did not drop: %v", err)
	}
	if s := in.Stats(); s.Dropouts != 1 || s.Transients != 1 {
		t.Errorf("dropout stats %+v", s)
	}
}

func TestDriftAndNoiseStayBounded(t *testing.T) {
	const driftMax, noiseMax = 0.002, 0.001
	in := MustNew(Config{Seed: 11, DriftMaxV: driftMax, ScopeNoiseV: noiseMax}, &fakeRunner{})
	clean, _ := (&fakeRunner{}).Run(testbed.RunConfig{MaxCycles: 100})
	perturbed := false
	for i := 0; i < 32; i++ {
		rc := testbed.RunConfig{MaxCycles: uint64(100 + i)}
		m, err := in.Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(m.MeanV - clean.MeanV); d > driftMax {
			t.Fatalf("MeanV drifted by %g > bound %g", d, driftMax)
		}
		if d := math.Abs(m.MinV - clean.MinV); d > driftMax+noiseMax {
			t.Fatalf("MinV moved by %g > bound %g", d, driftMax+noiseMax)
		}
		if d := math.Abs(m.MaxDroopV - clean.MaxDroopV); d > driftMax+noiseMax {
			t.Fatalf("MaxDroopV moved by %g > bound %g", d, driftMax+noiseMax)
		}
		if m.MeanV != clean.MeanV || m.MaxDroopV != clean.MaxDroopV {
			perturbed = true
		}
	}
	if !perturbed {
		t.Error("32 runs, no measurement perturbed at all")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{TransientRate: -0.1},
		{TransientRate: 1.5},
		{DropoutRate: 2},
		{ThrottleRate: -1},
		{ScopeNoiseV: -0.001},
		{DriftMaxV: -0.001},
		{ThrottleLimit: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if err := Lab(1).Validate(); err != nil {
		t.Errorf("Lab preset invalid: %v", err)
	}
	if _, err := New(Lab(1), nil); err == nil {
		t.Error("nil runner accepted")
	}
}

func TestLabRatesActuallyFire(t *testing.T) {
	in := MustNew(Lab(42), &fakeRunner{})
	for _, rc := range distinctConfigs(200) {
		in.Run(rc)
	}
	s := in.Stats()
	if s.Runs != 200 {
		t.Fatalf("Runs = %d, want 200", s.Runs)
	}
	if s.Transients == 0 || s.Skewed == 0 {
		t.Errorf("Lab preset too quiet over 200 runs: %+v", s)
	}
}
