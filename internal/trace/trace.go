// Package trace provides waveform utilities shared by the measurement
// stack: summary statistics, droop extraction, a radix-2 FFT and power
// spectra. Waveforms are plain []float64 sampled at a fixed rate.
package trace

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Stats summarises a waveform.
type Stats struct {
	N        int
	Min, Max float64
	Mean     float64
	Stddev   float64
}

// Summarize computes Stats in one pass (Welford for variance).
func Summarize(w []float64) Stats {
	s := Stats{N: len(w)}
	if len(w) == 0 {
		return s
	}
	s.Min, s.Max = w[0], w[0]
	mean, m2 := 0.0, 0.0
	for i, x := range w {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		d := x - mean
		mean += d / float64(i+1)
		m2 += d * (x - mean)
	}
	s.Mean = mean
	if len(w) > 1 {
		s.Stddev = math.Sqrt(m2 / float64(len(w)-1))
	}
	return s
}

// WorstDroop returns the largest positive excursion below nominal, in
// the same unit as the waveform (volts → volts of droop).
func WorstDroop(w []float64, nominal float64) float64 {
	worst := 0.0
	for _, x := range w {
		if d := nominal - x; d > worst {
			worst = d
		}
	}
	return worst
}

// WorstOvershoot returns the largest excursion above nominal.
func WorstOvershoot(w []float64, nominal float64) float64 {
	worst := 0.0
	for _, x := range w {
		if d := x - nominal; d > worst {
			worst = d
		}
	}
	return worst
}

// ArgMin returns the index of the waveform minimum (first occurrence).
func ArgMin(w []float64) int {
	if len(w) == 0 {
		return -1
	}
	best := 0
	for i, x := range w {
		if x < w[best] {
			best = i
		}
	}
	return best
}

// FFT computes the in-place radix-2 decimation-in-time FFT of x. The
// length must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("trace: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// Spectrum returns the single-sided amplitude spectrum of a real
// waveform sampled at rate fs, along with the frequency axis. The
// input is zero-padded to the next power of two; a Hann window tames
// leakage. Amplitudes are normalised so a unit-amplitude sinusoid
// yields ≈1 at its bin.
func Spectrum(w []float64, fs float64) (freqs, amps []float64, err error) {
	if len(w) == 0 {
		return nil, nil, fmt.Errorf("trace: empty waveform")
	}
	if fs <= 0 {
		return nil, nil, fmt.Errorf("trace: sample rate must be positive")
	}
	n := 1
	for n < len(w) {
		n <<= 1
	}
	x := make([]complex128, n)
	// Hann window over the populated part; coherent gain 0.5.
	m := len(w)
	for i := 0; i < m; i++ {
		win := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(m-1)))
		if m == 1 {
			win = 1
		}
		x[i] = complex(w[i]*win, 0)
	}
	if err := FFT(x); err != nil {
		return nil, nil, err
	}
	half := n / 2
	freqs = make([]float64, half)
	amps = make([]float64, half)
	// Normalise by m/2 (rect) × 0.5 (Hann coherent gain) = m/4... use
	// 2/(m·0.5) = 4/m for single-sided amplitude.
	scale := 4.0 / float64(m)
	for i := 0; i < half; i++ {
		freqs[i] = fs * float64(i) / float64(n)
		amps[i] = cmplx.Abs(x[i]) * scale
	}
	if half > 0 {
		amps[0] /= 2 // DC is not doubled
	}
	return freqs, amps, nil
}

// DominantFrequency returns the frequency of the largest non-DC
// spectral component of w.
func DominantFrequency(w []float64, fs float64) (float64, error) {
	freqs, amps, err := Spectrum(w, fs)
	if err != nil {
		return 0, err
	}
	best, bestAmp := 0, 0.0
	for i := 1; i < len(amps); i++ {
		if amps[i] > bestAmp {
			best, bestAmp = i, amps[i]
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("trace: no non-DC component")
	}
	return freqs[best], nil
}

// DominantFrequencyInBand returns the frequency of the largest
// spectral component within [lo, hi] Hz. Useful when slow settling
// transients (second/third droop) would otherwise dominate the
// spectrum of a first-droop waveform.
func DominantFrequencyInBand(w []float64, fs, lo, hi float64) (float64, error) {
	if !(hi > lo) || lo < 0 {
		return 0, fmt.Errorf("trace: bad band [%g, %g]", lo, hi)
	}
	freqs, amps, err := Spectrum(w, fs)
	if err != nil {
		return 0, err
	}
	best, bestAmp := -1, 0.0
	for i := 1; i < len(amps); i++ {
		if freqs[i] < lo || freqs[i] > hi {
			continue
		}
		if amps[i] > bestAmp {
			best, bestAmp = i, amps[i]
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("trace: no component in band [%g, %g] Hz", lo, hi)
	}
	return freqs[best], nil
}

// Decimate keeps every k-th sample, modelling a lower-rate scope
// capture of the same signal.
func Decimate(w []float64, k int) []float64 {
	if k <= 1 {
		return append([]float64(nil), w...)
	}
	out := make([]float64, 0, len(w)/k+1)
	for i := 0; i < len(w); i += k {
		out = append(out, w[i])
	}
	return out
}

// MovingMin computes the minimum over a sliding window of width k,
// emitting one value per window (non-overlapping). Scope-style min
// capture at a reduced rate.
func MovingMin(w []float64, k int) []float64 {
	if k <= 1 {
		return append([]float64(nil), w...)
	}
	var out []float64
	for i := 0; i < len(w); i += k {
		end := i + k
		if end > len(w) {
			end = len(w)
		}
		m := w[i]
		for _, x := range w[i:end] {
			if x < m {
				m = x
			}
		}
		out = append(out, m)
	}
	return out
}
