package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("stats = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.Stddev, want)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty stats = %+v", z)
	}
}

func TestWorstDroopAndOvershoot(t *testing.T) {
	w := []float64{1.25, 1.20, 1.28, 1.10, 1.26}
	if d := WorstDroop(w, 1.25); math.Abs(d-0.15) > 1e-12 {
		t.Errorf("droop = %v", d)
	}
	if o := WorstOvershoot(w, 1.25); math.Abs(o-0.03) > 1e-12 {
		t.Errorf("overshoot = %v", o)
	}
	if d := WorstDroop([]float64{2, 3}, 1.0); d != 0 {
		t.Errorf("droop above nominal = %v, want 0", d)
	}
	if i := ArgMin(w); i != 3 {
		t.Errorf("argmin = %d", i)
	}
	if i := ArgMin(nil); i != -1 {
		t.Errorf("argmin(nil) = %d", i)
	}
}

func TestFFTKnownTransform(t *testing.T) {
	// FFT of a delta is flat ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if math.Abs(real(v)-1) > 1e-12 || math.Abs(imag(v)) > 1e-12 {
			t.Errorf("delta FFT bin %d = %v", i, v)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 6)); err == nil {
		t.Error("length 6 accepted")
	}
	if err := FFT(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestFFTParseval(t *testing.T) {
	// Property: ‖x‖² = ‖X‖²/N.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]complex128, n)
		sumT := 0.0
		for i := range x {
			re, im := rng.NormFloat64(), rng.NormFloat64()
			x[i] = complex(re, im)
			sumT += re*re + im*im
		}
		if err := FFT(x); err != nil {
			return false
		}
		sumF := 0.0
		for _, v := range x {
			sumF += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(sumT-sumF/float64(n)) < 1e-9*sumT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDominantFrequency(t *testing.T) {
	fs := 1e9
	f0 := 100e6
	n := 4096
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.1 * math.Sin(2*math.Pi*f0*float64(i)/fs)
	}
	got, err := DominantFrequency(w, fs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-f0)/f0 > 0.02 {
		t.Errorf("dominant frequency %v, want ≈ %v", got, f0)
	}
}

func TestSpectrumAmplitudeScale(t *testing.T) {
	fs := 1e9
	f0 := fs / 16 // exactly on a bin for n=4096
	n := 4096
	w := make([]float64, n)
	for i := range w {
		w[i] = 2.0 * math.Sin(2*math.Pi*f0*float64(i)/fs)
	}
	freqs, amps, err := Spectrum(w, fs)
	if err != nil {
		t.Fatal(err)
	}
	best, bestAmp := 0, 0.0
	for i := 1; i < len(amps); i++ {
		if amps[i] > bestAmp {
			best, bestAmp = i, amps[i]
		}
	}
	if math.Abs(freqs[best]-f0)/f0 > 0.01 {
		t.Errorf("peak at %v, want %v", freqs[best], f0)
	}
	if math.Abs(bestAmp-2.0)/2.0 > 0.05 {
		t.Errorf("peak amplitude %v, want ≈ 2.0", bestAmp)
	}
}

func TestDominantFrequencyInBand(t *testing.T) {
	fs := 1e9
	n := 4096
	w := make([]float64, n)
	for i := range w {
		// Big slow drift + small 100 MHz ripple.
		w[i] = 0.5*math.Sin(2*math.Pi*1e6*float64(i)/fs) +
			0.05*math.Sin(2*math.Pi*100e6*float64(i)/fs)
	}
	got, err := DominantFrequencyInBand(w, fs, 50e6, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100e6)/100e6 > 0.05 {
		t.Errorf("band-limited dominant = %v, want 100 MHz", got)
	}
	if _, err := DominantFrequencyInBand(w, fs, 200e6, 50e6); err == nil {
		t.Error("inverted band accepted")
	}
	if _, err := DominantFrequencyInBand(w, fs, 0.4e9, 0.49e9); err != nil {
		t.Errorf("valid empty-ish band errored unexpectedly: %v", err)
	}
}

func TestSpectrumErrors(t *testing.T) {
	if _, _, err := Spectrum(nil, 1e9); err == nil {
		t.Error("empty accepted")
	}
	if _, _, err := Spectrum([]float64{1}, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestDecimate(t *testing.T) {
	w := []float64{0, 1, 2, 3, 4, 5, 6}
	got := Decimate(w, 3)
	want := []float64{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("decimate = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("decimate[%d] = %v", i, got[i])
		}
	}
	same := Decimate(w, 1)
	if len(same) != len(w) {
		t.Errorf("k=1 should copy: %v", same)
	}
	// Must be a copy, not an alias.
	same[0] = 99
	if w[0] == 99 {
		t.Error("Decimate aliased its input")
	}
}

func TestMovingMin(t *testing.T) {
	w := []float64{5, 1, 4, 2, 9, 0, 7}
	got := MovingMin(w, 3)
	want := []float64{1, 0, 7}
	if len(got) != len(want) {
		t.Fatalf("movingmin = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("movingmin[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQuickMovingMinNeverAboveSource(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := 1 + int(kRaw%8)
		mins := MovingMin(raw, k)
		for i, m := range mins {
			lo := i * k
			if k == 1 {
				lo = i
			}
			hi := lo + k
			if hi > len(raw) {
				hi = len(raw)
			}
			for _, x := range raw[lo:hi] {
				if m > x {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFFT4096(b *testing.B) {
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)/7), 0)
	}
	scratch := make([]complex128, len(x))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(scratch, x)
		if err := FFT(scratch); err != nil {
			b.Fatal(err)
		}
	}
}
