// Package report renders experiment results as aligned text tables and
// simple ASCII charts, so the benchmark harness can print the same rows
// and series the paper's tables and figures report.
package report

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders with column alignment.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && utf8.RuneCountInString(c) > widths[i] {
				widths[i] = utf8.RuneCountInString(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - utf8.RuneCountInString(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// F formats a float with the given decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// MilliVolts formats volts as mV.
func MilliVolts(v float64) string {
	return fmt.Sprintf("%.1f mV", v*1e3)
}

// Bar renders a horizontal ASCII bar scaled so that maxVal fills width.
func Bar(val, maxVal float64, width int) string {
	if maxVal <= 0 || width <= 0 {
		return ""
	}
	n := int(val / maxVal * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// BarChart renders labelled bars (one per row) scaled to the maximum.
func BarChart(title string, labels []string, values []float64, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	maxVal, maxLabel := 0.0, 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if n := utf8.RuneCountInString(labels[i]); n > maxLabel {
			maxLabel = n
		}
	}
	for i, v := range values {
		pad := strings.Repeat(" ", maxLabel-utf8.RuneCountInString(labels[i]))
		fmt.Fprintf(&b, "%s%s %7.3f |%s\n", labels[i], pad, v, Bar(v, maxVal, width))
	}
	return b.String()
}

// Histogram renders bin counts as vertical-ish rows: one row per bin
// group, collapsing to at most maxRows rows.
func Histogram(title string, centers []float64, counts []uint64, maxRows, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	if len(centers) == 0 || len(centers) != len(counts) {
		return b.String()
	}
	group := 1
	if len(centers) > maxRows {
		group = (len(centers) + maxRows - 1) / maxRows
	}
	var maxCount uint64
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i := 0; i < len(centers); i += group {
		var sum uint64
		for j := i; j < i+group && j < len(counts); j++ {
			sum += counts[j]
		}
		fmt.Fprintf(&b, "%8.4f %9d |%s\n", centers[i], sum,
			Bar(float64(sum), float64(maxCount)*float64(group), width))
	}
	return b.String()
}
