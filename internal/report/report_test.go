package report

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableAlignment(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("short", "1")
	tbl.AddRow("a-much-longer-name", "12345")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Errorf("title line = %q", lines[0])
	}
	// The "value" column must start at the same rune offset in both rows.
	col := strings.Index(lines[3], "1")
	col2 := strings.Index(lines[4], "12345")
	if col != col2 {
		t.Errorf("columns misaligned: %d vs %d\n%s", col, col2, out)
	}
}

func TestTableUnicodeWidths(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("VF − 12 mV", "x") // contains a multi-byte minus
	tbl.AddRow("plain", "y")
	out := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	last := out[len(out)-1]
	prev := out[len(out)-2]
	if strings.Index(last, "y") != len("VF − 12 mV")-len("−")+1+2 &&
		strings.Index(last, "y") < strings.Index(prev, "x")-2 {
		// Loose check: y's column should be at or right of x's minus
		// the rune adjustment; the strict check is equality of visual
		// columns, which Index-by-bytes can't express directly. Just
		// require both cells to be present and the row not to collapse.
		t.Errorf("unicode row misrendered:\n%s", tbl.String())
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("Bar overflow = %q", got)
	}
	if got := Bar(-1, 10, 10); got != "" {
		t.Errorf("Bar negative = %q", got)
	}
	if got := Bar(1, 0, 10); got != "" {
		t.Errorf("Bar zero max = %q", got)
	}
}

func TestQuickBarBounded(t *testing.T) {
	f := func(val, max float64, w uint8) bool {
		width := int(w % 100)
		bar := Bar(val, max, width)
		return len(bar) <= width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("t", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "== t ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Largest value gets the full width.
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[2])
	}
}

func TestHistogramRender(t *testing.T) {
	centers := []float64{1.0, 1.1, 1.2, 1.3}
	counts := []uint64{1, 5, 3, 0}
	out := Histogram("h", centers, counts, 2, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + 2 grouped rows.
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Mismatched lengths are tolerated (empty render).
	if got := Histogram("", centers, counts[:2], 2, 10); got != "" {
		t.Errorf("mismatched render = %q", got)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Error("F")
	}
	if MilliVolts(0.0335) != "33.5 mV" {
		t.Errorf("MilliVolts = %q", MilliVolts(0.0335))
	}
}
