package pdn

// Reduced-order replay over the PDN: thin wrappers binding the
// circuit-level ROM (see internal/circuit/rom.go) to this package's
// fixed (die node, sink source) measurement pair. The ROM advances a
// handful of decoupled modal sections per cycle instead of the dense
// LU substitution, trading bit-identity for a calibrated worst-case
// die-voltage error bound (ROM.ErrPerAmpV per amp of drive). Callers
// gate it on a stated voltage tolerance; the exact kernel remains the
// oracle and the default.

import "repro/internal/circuit"

// ROM returns the network's compiled reduced-order replay model,
// building it on first call (eigendecomposition + calibration against
// the exact kernel, a one-time platform-compile cost). A non-nil error
// is permanent for this Compiled: the network's modal decomposition
// failed validation and replay must use the exact kernel.
func (cp *Compiled) ROM() (*circuit.ROM, error) {
	cp.romOnce.Do(func() {
		cp.rom, cp.romErr = cp.ccp.CompileROM(cp.die, cp.sinkRef)
	})
	return cp.rom, cp.romErr
}

// ROMState is a live serial reduced-order replay of one PDN state.
type ROMState struct {
	cp *Compiled
	st *circuit.ROMState
}

// NewROMState folds p's current state — including its live regulator
// set-point — plus a constant `add` amps on the sink into a fresh
// serial ROM replay. p is not modified.
func (cp *Compiled) NewROMState(p *PDN, add float64) (*ROMState, error) {
	r, err := cp.ROM()
	if err != nil {
		return nil, err
	}
	if p.cp != cp {
		panic("pdn: ROM state across different compiled networks")
	}
	return &ROMState{cp: cp, st: r.NewState(p.tr, add)}, nil
}

// StepTrace advances len(src) steps: step i draws sink current
// src[i]*(mul/div) amps above the folded constant level and records
// the die voltage into dst[i]. Bit-identical to one ROMBatch lane with
// the same parameters (not to the exact kernel — see ROM.ErrPerAmpV).
func (s *ROMState) StepTrace(dst, src []float64, mul, div float64) {
	s.st.StepTrace(dst, src, mul, div)
}

// Order returns the reduced state dimension m.
func (s *ROMState) Order() int { return s.st.Order() }

// Sections returns the modal section sizes in state order (one 2 per
// complex eigenvalue pair, then one 1 per real mode) — the block
// partition of any period map probed out of one-period ROM runs. See
// circuit.ROM.Sections.
func (s *ROMState) Sections() []int { return s.st.Sections() }

// Modal copies the modal deviation state μ into dst (length ≥ Order)
// and returns the folded constant output term vstar — together the
// replay's complete dynamic state.
func (s *ROMState) Modal(dst []float64) float64 { return s.st.Modal(dst) }

// SetModal overwrites the modal deviation state and folded constant
// term, e.g. to jump a periodic replay to an analytically computed
// boundary. A Modal/SetModal round trip resumes bit-identically.
func (s *ROMState) SetModal(src []float64, vstar float64) { s.st.SetModal(src, vstar) }

// ROMBatch advances several independent reduced-order replays in
// lockstep over one network, mirroring Batch's lane discipline
// (LoadLane / swap-remove DropLane) so the testbed's lane scheduler
// drives either kernel through the same bookkeeping.
type ROMBatch struct {
	cp *Compiled
	rb *circuit.ROMBatch
}

// NewROMBatch returns a ROM batch of `lanes` unloaded lanes; load each
// via LoadLane before stepping. Fails iff ROM() fails.
func (cp *Compiled) NewROMBatch(lanes int) (*ROMBatch, error) {
	r, err := cp.ROM()
	if err != nil {
		return nil, err
	}
	return &ROMBatch{cp: cp, rb: r.NewBatch(lanes)}, nil
}

// Lanes returns the current number of lanes (shrinks via DropLane).
func (b *ROMBatch) Lanes() int { return b.rb.Lanes() }

// LoadLane folds p's current state plus a constant `add` amps on the
// sink into lane l; p must come from the same Compiled handle.
func (b *ROMBatch) LoadLane(l int, p *PDN, add float64) {
	if p.cp != b.cp {
		panic("pdn: ROM LoadLane across different compiled networks")
	}
	b.rb.LoadLane(l, p.tr, add)
}

// SetLaneModal loads lane l directly from a modal deviation state and
// folded constant term — the periodic probe path's lane loader, which
// shares one fold across its reference + unit-perturbation lanes.
func (b *ROMBatch) SetLaneModal(l int, mu []float64, vstar float64) {
	b.rb.SetLaneModal(l, mu, vstar)
}

// LaneModal copies lane l's modal deviation state into dst (length ≥
// order) and returns the lane's folded constant term.
func (b *ROMBatch) LaneModal(l int, dst []float64) float64 {
	return b.rb.LaneModal(l, dst)
}

// DropLane retires lane l by swap-remove (the last lane moves into
// slot l), mirroring Batch.DropLane.
func (b *ROMBatch) DropLane(l int) { b.rb.DropLane(l) }

// StepTraceBatch advances every lane n steps: at step s, lane l draws
// sink current src[l][s]*mul[l]/div[l] amps above its folded constant
// level and records its die voltage into dst[l][s]. Each lane is
// bit-identical to a serial ROMState.StepTrace at any batch width.
func (b *ROMBatch) StepTraceBatch(dst, src [][]float64, mul, div []float64, n int) {
	b.rb.StepTraceBatch(dst, src, mul, div, n)
}

// PeriodicSteadyState solves (I − A)·x = b in closed form per modal
// section, for a block-diagonal period map with column k at a[k*m:]
// and sections per ROMState.Sections. See circuit.PeriodicSteadyState.
func PeriodicSteadyState(sections []int, a, b, x []float64) error {
	return circuit.PeriodicSteadyState(sections, a, b, x)
}

// SectionContractions returns each modal section's spectral norm of
// the block-diagonal period map — its exact per-period Euclidean decay
// factor. See circuit.SectionContractions.
func SectionContractions(sections []int, a []float64) []float64 {
	return circuit.SectionContractions(sections, a)
}
