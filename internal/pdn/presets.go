package pdn

// Presets returns every shipped PDN configuration, for suites that
// must hold across the whole catalog (ROM equivalence, digest
// stability) rather than one hand-picked network.
func Presets() []Config {
	return []Config{Bulldozer(), Phenom(), ServerBoard()}
}

// Bulldozer returns the PDN configuration used with the Bulldozer-style
// chip model. Element values are chosen so the three resonances land
// where the paper and its references place them: first droop ≈ 100 MHz
// (package + die inductance against on-die decap, within the 50–200 MHz
// range of §2), second droop ≈ 3 MHz, third droop ≈ 20 kHz — and so a
// resonant stressmark's full current swing builds a droop of roughly
// 10% of nominal, matching the scale of Fig. 9/10.
func Bulldozer() Config {
	return Config{
		Name: "bulldozer-pdn",
		VNom: 1.25,
		RVRM: 0.2e-3,
		// Load-line slope typical of desktop VRMs (~1 mΩ); disabled by
		// default to match the paper's measurement methodology.
		LoadLineOhms: 1.0e-3,
		LoadLineOn:   false,

		LMB: 10e-9, RMB: 0.5e-3, CMB: 5e-3, ESRMB: 0.1e-3,
		LPkg1: 50e-12, RPkg1: 0.1e-3, CPkg: 50e-6, ESRPkg: 0.2e-3,
		LDie: 2.5e-12, RDie: 0.1e-3, CDie: 1.0e-6, ESRDie: 0.3e-3,
	}
}

// Phenom returns the PDN configuration for the 45 nm Phenom-II-style
// chip: same board (the paper swaps only the processor), but the die
// stage changes — older process, less on-die decap, slightly higher
// effective inductance — so the first-droop resonance moves and AUDIT
// must re-detect it (§5.C).
func Phenom() Config {
	c := Bulldozer()
	c.Name = "phenom-pdn"
	c.VNom = 1.30
	c.CDie = 0.6e-6
	c.LDie = 2.2e-12
	c.ESRDie = 0.4e-3
	return c
}

// ServerBoard returns a board-variation preset: the same die in a
// different socket/board, moving the first-droop resonance down — the
// §3 motivation for re-running the detection sweep "across different
// boards or even within the same board if the components of the board
// change".
func ServerBoard() Config {
	c := Bulldozer()
	c.Name = "server-board-pdn"
	// Larger package inductance and more on-package decap: the first
	// droop slides from ≈100 MHz to ≈70 MHz.
	c.LDie = 5.2e-12
	c.ESRDie = 0.35e-3
	c.CPkg = 80e-6
	return c
}
