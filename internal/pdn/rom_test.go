package pdn

import (
	"math"
	"testing"
)

const romTestDt = 1 / 3.3e9

// romNoise fills dst with deterministic uniform [0, amp) samples.
func romNoise(dst []float64, amp float64, seed uint64) {
	for i := range dst {
		seed = seed*6364136223846793005 + 1442695040888963407
		dst[i] = amp * float64(seed>>11) / float64(1 << 53)
	}
}

// TestROMCompilesForAllPresets requires every shipped network to admit
// a reduced-order model with a usable calibrated error bound — if a
// preset's modal decomposition degrades, replay silently loses its
// fast path, so this fails loudly instead.
func TestROMCompilesForAllPresets(t *testing.T) {
	for _, cfg := range Presets() {
		cp, err := Compile(cfg, romTestDt)
		if err != nil {
			t.Fatal(err)
		}
		r, err := cp.ROM()
		if err != nil {
			t.Fatalf("%s: ROM compile failed: %v", cfg.Name, err)
		}
		if r.Order() != 6 {
			t.Errorf("%s: reduced order = %d, want 6 (3 caps + 3 inductors)", cfg.Name, r.Order())
		}
		if e := r.ErrPerAmpV(); !(e > 0) || e > 1e-4 {
			t.Errorf("%s: ErrPerAmpV = %g, want (0, 1e-4]", cfg.Name, e)
		}
	}
}

// TestROMWithinToleranceAcrossPresets is the core equivalence
// property: for every preset, across randomized current traces,
// constant sink offsets (the testbed's dither/amps-conversion `add`
// path), and the voltage-at-failure supply ladder, the ROM die-voltage
// waveform stays within ErrPerAmpV × (peak drive amps) of the exact
// kernel.
func TestROMWithinToleranceAcrossPresets(t *testing.T) {
	const n = 6000
	for _, cfg := range Presets() {
		cp, err := Compile(cfg, romTestDt)
		if err != nil {
			t.Fatal(err)
		}
		r, err := cp.ROM()
		if err != nil {
			t.Fatal(err)
		}
		src := make([]float64, n)
		dstE := make([]float64, n)
		dstR := make([]float64, n)
		seed := uint64(1)
		for rep := 0; rep < 6; rep++ {
			amp := 1.0 + 9*float64(rep)
			add := 0.6 * float64(rep%3)
			mul := 1.0 + 0.25*float64(rep)
			div := 1.0 + float64(rep%2)
			// Failure-ladder supply: 12.5 mV per rung below nominal.
			supply := cfg.VNom - 0.0125*float64(rep)
			romNoise(src, amp, seed)
			seed += 0x9e3779b9

			p := cp.New()
			p.SetSupply(supply)
			// Settle briefly so the fold starts from a non-equilibrium
			// mid-transient state, like a real replay would.
			for i := 0; i < 100; i++ {
				p.Step(add)
			}
			rs, err := cp.NewROMState(p, add)
			if err != nil {
				t.Fatal(err)
			}
			p.StepTrace(dstE, src, mul, div, add)
			rs.StepTrace(dstR, src, mul, div)

			bound := r.ErrPerAmpV() * (amp*mul/div + add)
			worst := 0.0
			for i := range dstE {
				if d := math.Abs(dstE[i] - dstR[i]); d > worst {
					worst = d
				}
			}
			if worst > bound {
				t.Errorf("%s rep %d: worst |Δv| = %g exceeds bound %g", cfg.Name, rep, worst, bound)
			}
			if worst > 1e-6 {
				t.Errorf("%s rep %d: worst |Δv| = %g exceeds 1 µV sanity cap", cfg.Name, rep, worst)
			}
		}
	}
}

// TestROMBatchMatchesSerialWideLanes pins the serial↔batch bit-identity
// contract at the pdn layer for lane widths past the exact kernel's
// old practical limit (16, 32), with distinct per-lane drives, scales
// and folded offsets.
func TestROMBatchMatchesSerialWideLanes(t *testing.T) {
	const n = 2500
	cp, err := Compile(Bulldozer(), romTestDt)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{16, 32} {
		rb, err := cp.NewROMBatch(lanes)
		if err != nil {
			t.Fatal(err)
		}
		src := make([][]float64, lanes)
		dst := make([][]float64, lanes)
		mul := make([]float64, lanes)
		div := make([]float64, lanes)
		adds := make([]float64, lanes)
		states := make([]*ROMState, lanes)
		serial := make([]float64, n)
		for l := 0; l < lanes; l++ {
			src[l] = make([]float64, n)
			romNoise(src[l], 5+float64(l), uint64(l)+7)
			dst[l] = make([]float64, n)
			mul[l] = 1 + 0.1*float64(l)
			div[l] = 1 + float64(l%3)
			adds[l] = 0.2 * float64(l%5)
			p := cp.New()
			for i := 0; i < 50+l; i++ {
				p.Step(adds[l])
			}
			rb.LoadLane(l, p, adds[l])
			st, err := cp.NewROMState(p, adds[l])
			if err != nil {
				t.Fatal(err)
			}
			states[l] = st
		}
		rb.StepTraceBatch(dst, src, mul, div, n)
		for l := 0; l < lanes; l++ {
			states[l].StepTrace(serial, src[l], mul[l], div[l])
			for i := range serial {
				if dst[l][i] != serial[i] {
					t.Fatalf("lanes=%d lane %d step %d: batch %v != serial %v", lanes, l, i, dst[l][i], serial[i])
				}
			}
		}
	}
}

// TestROMBenchDrive cross-checks the benchmark's drive shape through
// both kernels so BenchmarkStepTraceBatch's Exact and ROM variants are
// known to compute the same waveform to tolerance (the benchmark
// itself never compares outputs).
func TestROMBenchDrive(t *testing.T) {
	const n = 4096
	cp, err := Compile(Bulldozer(), romTestDt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cp.ROM()
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float64, n)
	for i := range src {
		src[i] = 20 + 15*math.Sin(2*math.Pi*float64(i)/36) + 5*math.Sin(2*math.Pi*float64(i)/7)
	}
	dstE := make([]float64, n)
	dstR := make([]float64, n)
	p := cp.New()
	rs, err := cp.NewROMState(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.StepTrace(dstE, src, 1, 1, 0)
	rs.StepTrace(dstR, src, 1, 1)
	bound := r.ErrPerAmpV() * 40
	for i := range dstE {
		if d := math.Abs(dstE[i] - dstR[i]); d > bound {
			t.Fatalf("step %d: |Δv| = %g exceeds bound %g", i, d, bound)
		}
	}
}
