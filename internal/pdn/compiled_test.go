package pdn

import (
	"sync"
	"testing"
)

// drive steps a PDN with a square-wave current load and records VDie.
func drive(p *PDN, steps int) []float64 {
	vs := make([]float64, steps)
	for i := 0; i < steps; i++ {
		amps := 20.0
		if (i/9)%2 == 1 {
			amps = 80.0
		}
		p.Step(amps)
		vs[i] = p.VDie()
	}
	return vs
}

func presets() []Config {
	return []Config{Bulldozer(), Phenom()}
}

func TestCompiledMatchesNewBitwise(t *testing.T) {
	const dt = 1e-10
	const steps = 600
	for _, cfg := range presets() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			slow, err := New(cfg, dt)
			if err != nil {
				t.Fatal(err)
			}
			want := drive(slow, steps)

			cp, err := Compile(cfg, dt)
			if err != nil {
				t.Fatal(err)
			}
			got := drive(cp.New(), steps)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("step %d: compiled %v != fresh %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestPoolReuseIsBitIdentical(t *testing.T) {
	cp, err := Compile(Bulldozer(), 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	first := cp.Get()
	want := drive(first, 400)
	// Dirty it further with a supply change, then recycle.
	first.SetSupply(0.9)
	drive(first, 100)
	cp.Put(first)

	second := cp.Get() // same backing object, reset
	got := drive(second, 400)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("step %d after pool reuse: %v != %v", i, got[i], want[i])
		}
	}
	cp.Put(second)
}

func TestCloneAndCopyStateFrom(t *testing.T) {
	cp, err := Compile(Phenom(), 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	a := cp.New()
	a.SetSupply(1.0)
	drive(a, 250) // mid-run state

	b := a.Clone()
	va := drive(a, 300)
	vb := drive(b, 300)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("clone diverged at step %d: %v != %v", i, vb[i], va[i])
		}
	}

	c := cp.New()
	c.CopyStateFrom(b)
	vc := drive(c, 300)
	vb2 := drive(b, 300)
	for i := range vc {
		if vc[i] != vb2[i] {
			t.Fatalf("CopyStateFrom diverged at step %d: %v != %v", i, vc[i], vb2[i])
		}
	}
}

func TestConcurrentGetPut(t *testing.T) {
	cp, err := Compile(Bulldozer(), 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	ref := cp.New()
	want := drive(ref, 350)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				p := cp.Get()
				got := drive(p, 350)
				for i := range want {
					if got[i] != want[i] {
						panic("pooled run diverged from reference")
					}
				}
				cp.Put(p)
			}
		}()
	}
	wg.Wait()
}
