package pdn

import (
	"fmt"
	"math"
	"testing"
)

// BenchmarkStepTrace compares the per-cycle Step/VDie round trip
// against the batched StepTrace kernel on the same current trace. The
// kernel's flattened element records and single bounds-checked loop are
// where the trace-replay measurement pipeline gets its PDN-side
// throughput; the two must stay bit-identical (see
// TestCompiledMatchesNewBitwise and the testbed equivalence suite).
func BenchmarkStepTrace(b *testing.B) {
	const n = 65536
	cfg := Bulldozer()
	dt := 1 / 3.3e9
	src := make([]float64, n)
	for i := range src {
		// A droop-exciting square-ish load with a little harmonic content.
		src[i] = 20 + 15*math.Sin(2*math.Pi*float64(i)/36) + 5*math.Sin(2*math.Pi*float64(i)/7)
	}

	cp, err := Compile(cfg, dt)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("StepLoop", func(b *testing.B) {
		dst := make([]float64, n)
		b.ReportAllocs()
		b.SetBytes(n * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := cp.Get()
			for j, c := range src {
				p.Step(c)
				dst[j] = p.VDie()
			}
			cp.Put(p)
		}
	})

	b.Run("Batched", func(b *testing.B) {
		dst := make([]float64, n)
		b.ReportAllocs()
		b.SetBytes(n * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := cp.Get()
			p.StepTrace(dst, src, 1, 1, 0)
			cp.Put(p)
		}
	})
}

// BenchmarkStepTraceBatch measures the multi-lane kernels: L lanes
// advance together over the shared factorization, so ns/op ÷ L is the
// per-lane cost to compare against BenchmarkStepTrace/Batched (the
// one-lane exact kernel). Exact is the dense-LU oracle path; ROM is
// the reduced-order modal kernel it gates (same drives, die voltage
// within ROM.ErrPerAmpV — see TestROMBenchDrive). SetBytes counts all
// lanes' samples: MB/s is aggregate replay throughput.
func BenchmarkStepTraceBatch(b *testing.B) {
	const n = 65536
	cfg := Bulldozer()
	dt := 1 / 3.3e9
	cp, err := Compile(cfg, dt)
	if err != nil {
		b.Fatal(err)
	}
	lanesList := []int{1, 2, 4, 8, 16, 32}
	drive := func(lanes int) (src, dst [][]float64, mul, div, add []float64) {
		src = make([][]float64, lanes)
		dst = make([][]float64, lanes)
		mul = make([]float64, lanes)
		div = make([]float64, lanes)
		add = make([]float64, lanes)
		for l := 0; l < lanes; l++ {
			s := make([]float64, n)
			for i := range s {
				s[i] = 20 + 15*math.Sin(2*math.Pi*float64(i)/float64(36+l)) + 5*math.Sin(2*math.Pi*float64(i)/7)
			}
			src[l] = s
			dst[l] = make([]float64, n)
			mul[l], div[l], add[l] = 1, 1, 0
		}
		return
	}
	for _, lanes := range lanesList {
		b.Run(fmt.Sprintf("Exact/Lanes%d", lanes), func(b *testing.B) {
			src, dst, mul, div, add := drive(lanes)
			b.ReportAllocs()
			b.SetBytes(int64(lanes) * n * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt := cp.NewBatch(lanes)
				bt.StepTraceBatch(dst, src, mul, div, add, n)
			}
		})
	}
	for _, lanes := range lanesList {
		b.Run(fmt.Sprintf("ROM/Lanes%d", lanes), func(b *testing.B) {
			src, dst, mul, div, _ := drive(lanes)
			p := cp.New()
			b.ReportAllocs()
			b.SetBytes(int64(lanes) * n * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rb, err := cp.NewROMBatch(lanes)
				if err != nil {
					b.Fatal(err)
				}
				for l := 0; l < lanes; l++ {
					rb.LoadLane(l, p, 0)
				}
				rb.StepTraceBatch(dst, src, mul, div, n)
			}
		})
	}
}
