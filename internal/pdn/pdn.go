// Package pdn models the power-delivery network of Fig. 2: a
// three-stage lumped RLC ladder (motherboard, package, die) between an
// ideal regulator and the on-die current sink. Its series L / shunt C
// pairs produce the first-, second- and third-droop resonances of
// Fig. 3; the first droop (package inductance against on-die decap,
// 50–200 MHz) is the one AUDIT targets.
package pdn

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"repro/internal/circuit"
)

// Config holds the lumped element values of the network plus regulator
// behaviour. All values SI (ohms, henries, farads, volts).
type Config struct {
	Name string
	// VNom is the regulator set-point.
	VNom float64
	// RVRM is the regulator output resistance.
	RVRM float64
	// LoadLineOhms is the VRM load-line slope (V/A). The paper disables
	// the load line for droop measurements to isolate di/dt effects; we
	// model it as extra series resistance when enabled.
	LoadLineOhms float64
	LoadLineOn   bool

	// Motherboard stage (third droop: LMB against CMB).
	LMB, RMB, CMB, ESRMB float64
	// Package stage (second droop: LPkg1 against CPkg).
	LPkg1, RPkg1, CPkg, ESRPkg float64
	// Die stage (first droop: LPkg2+LDie against CDie).
	LDie, RDie, CDie, ESRDie float64
}

// Validate checks that all element values are physical.
func (c Config) Validate() error {
	pos := func(v float64, what string) error {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("pdn: %s: %s must be positive, got %g", c.Name, what, v)
		}
		return nil
	}
	checks := []struct {
		v    float64
		what string
	}{
		{c.VNom, "VNom"}, {c.RVRM, "RVRM"},
		{c.LMB, "LMB"}, {c.RMB, "RMB"}, {c.CMB, "CMB"}, {c.ESRMB, "ESRMB"},
		{c.LPkg1, "LPkg1"}, {c.RPkg1, "RPkg1"}, {c.CPkg, "CPkg"}, {c.ESRPkg, "ESRPkg"},
		{c.LDie, "LDie"}, {c.RDie, "RDie"}, {c.CDie, "CDie"}, {c.ESRDie, "ESRDie"},
	}
	for _, ch := range checks {
		if err := pos(ch.v, ch.what); err != nil {
			return err
		}
	}
	if c.LoadLineOn && c.LoadLineOhms <= 0 {
		return fmt.Errorf("pdn: %s: load line enabled but slope %g", c.Name, c.LoadLineOhms)
	}
	return nil
}

// FirstDroopNominal returns the analytic first-droop resonance
// frequency 1/(2π√(L·C)) of the die stage.
func (c Config) FirstDroopNominal() float64 {
	return 1 / (2 * math.Pi * math.Sqrt(c.LDie*c.CDie))
}

// SecondDroopNominal returns the package-stage resonance frequency.
func (c Config) SecondDroopNominal() float64 {
	return 1 / (2 * math.Pi * math.Sqrt(c.LPkg1*c.CPkg))
}

// ThirdDroopNominal returns the board-stage resonance frequency.
func (c Config) ThirdDroopNominal() float64 {
	return 1 / (2 * math.Pi * math.Sqrt(c.LMB*c.CMB))
}

// build constructs the circuit netlist and returns it with the die node.
func (c Config) build() (*circuit.Circuit, circuit.Node) {
	ckt := circuit.New()
	nVRM := ckt.NewNode()
	nBoard := ckt.NewNode()
	nPkg := ckt.NewNode()
	nDie := ckt.NewNode()

	ckt.V("vrm", nVRM, circuit.Ground, c.VNom)
	rSeries := c.RVRM
	if c.LoadLineOn {
		rSeries += c.LoadLineOhms
	}
	// VRM output resistance and board trace resistance in series with
	// the board inductance; the bypass resistor damps the inductive
	// path alone.
	nA := ckt.NewNode()
	nA2 := ckt.NewNode()
	ckt.R("rvrm", nVRM, nA, rSeries)
	ckt.R("rmb", nA, nA2, c.RMB)
	ckt.L("lmb", nA2, nBoard, c.LMB)
	ckt.R("rmbbyp", nA2, nBoard, boardBypassR(c))
	// Bulk decap with ESR.
	nB := ckt.NewNode()
	ckt.R("esrmb", nBoard, nB, c.ESRMB)
	ckt.C("cmb", nB, circuit.Ground, c.CMB)

	// Package stage.
	nC := ckt.NewNode()
	ckt.R("rpkg1", nBoard, nC, c.RPkg1)
	ckt.L("lpkg1", nC, nPkg, c.LPkg1)
	nD := ckt.NewNode()
	ckt.R("esrpkg", nPkg, nD, c.ESRPkg)
	ckt.C("cpkg", nD, circuit.Ground, c.CPkg)

	// Die stage.
	nE := ckt.NewNode()
	ckt.R("rdie", nPkg, nE, c.RDie)
	ckt.L("ldie", nE, nDie, c.LDie)
	nF := ckt.NewNode()
	ckt.R("esrdie", nDie, nF, c.ESRDie)
	ckt.C("cdie", nF, circuit.Ground, c.CDie)

	// The processor's load current.
	ckt.I("sink", nDie, circuit.Ground, 0)
	return ckt, nDie
}

// boardBypassR is a high-value damping resistor across the board
// inductor; real boards have resistive planes in parallel with the
// inductive path, and without it the third-droop Q is unrealistically
// high.
func boardBypassR(c Config) float64 {
	return 200 * math.Sqrt(c.LMB/c.CMB)
}

// Compiled is a platform-lifetime compiled form of one (Config, dt)
// pair: the netlist is built and the MNA system factored exactly once,
// after which fresh per-run simulation states are a few slice copies.
// It also pools released states so hot evaluation loops (the GA's
// fitness path) reuse their RHS and companion buffers instead of
// reallocating them every run. A Compiled is safe for concurrent use.
type Compiled struct {
	cfg     Config
	dt      float64
	ccp     *circuit.Compiled
	die     circuit.Node
	sinkRef int
	vrmRef  int
	pool    sync.Pool // *PDN, state dirty until Reset

	// Reduced-order replay model, compiled lazily on first use (see
	// rom.go); romErr records a permanent compile failure so callers
	// fall back to the exact kernel without retrying.
	romOnce sync.Once
	rom     *circuit.ROM
	romErr  error
}

// Compile validates and compiles a network for time step dt seconds
// (one CPU clock cycle, typically).
func Compile(cfg Config, dt float64) (*Compiled, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ckt, die := cfg.build()
	ccp, err := circuit.Compile(ckt, dt)
	if err != nil {
		return nil, fmt.Errorf("pdn: %s: %w", cfg.Name, err)
	}
	// Resolve source references once; every state shares the indices.
	probe := ccp.NewState()
	sinkRef, err := probe.SourceRef("sink")
	if err != nil {
		return nil, err
	}
	vrmRef, err := probe.SourceRef("vrm")
	if err != nil {
		return nil, err
	}
	return &Compiled{cfg: cfg, dt: dt, ccp: ccp, die: die, sinkRef: sinkRef, vrmRef: vrmRef}, nil
}

// Config returns the compiled network's configuration.
func (cp *Compiled) Config() Config { return cp.cfg }

// Dt returns the compiled simulation step in seconds.
func (cp *Compiled) Dt() float64 { return cp.dt }

// New returns a fresh simulation state at the network's DC operating
// point, without touching the pool.
func (cp *Compiled) New() *PDN {
	return &PDN{cfg: cp.cfg, cp: cp, tr: cp.ccp.NewState(), die: cp.die, sinkRef: cp.sinkRef, vrmRef: cp.vrmRef, dt: cp.dt}
}

// Get returns a reset simulation state, reusing a pooled one when
// available. Pair with Put to recycle scratch buffers across runs.
func (cp *Compiled) Get() *PDN {
	if p, ok := cp.pool.Get().(*PDN); ok && p != nil {
		p.Reset()
		return p
	}
	return cp.New()
}

// Put returns a state obtained from Get (or New) to the pool. The
// caller must not use it afterwards.
func (cp *Compiled) Put(p *PDN) {
	if p != nil && p.cp == cp {
		cp.pool.Put(p)
	}
}

// PDN is a live transient simulation of a configured network.
type PDN struct {
	cfg     Config
	cp      *Compiled // nil for states built by New(cfg, dt) directly
	tr      *circuit.Transient
	die     circuit.Node
	sinkRef int
	vrmRef  int
	dt      float64
}

// New compiles a transient PDN simulation with time step dt seconds
// (one CPU clock cycle, typically). Callers that run one network
// repeatedly should Compile once and draw states from the compiled
// handle instead; this convenience path compiles on every call.
func New(cfg Config, dt float64) (*PDN, error) {
	cp, err := Compile(cfg, dt)
	if err != nil {
		return nil, err
	}
	return cp.New(), nil
}

// Config returns the network's configuration.
func (p *PDN) Config() Config { return p.cfg }

// Dt returns the simulation step in seconds.
func (p *PDN) Dt() float64 { return p.dt }

// Compiled returns the compiled handle backing this state.
func (p *PDN) Compiled() *Compiled { return p.cp }

// Reset restores the state to the DC operating point (nominal supply,
// zero sink current) without allocating. A reset state is bit-identical
// to a fresh one.
func (p *PDN) Reset() { p.tr.Reset() }

// Clone returns an independent copy of the live state. Cloning a
// regulator-settled state is how the testbed caches the expensive
// supply settle across repeated voltage-at-failure runs.
func (p *PDN) Clone() *PDN {
	out := *p
	out.tr = p.tr.Clone()
	return &out
}

// CopyStateFrom overwrites this state with src's; both must come from
// the same Compiled handle.
func (p *PDN) CopyStateFrom(src *PDN) { p.tr.CopyStateFrom(src.tr) }

// Step advances one time step with the given die current draw in amps.
func (p *PDN) Step(currentAmps float64) {
	p.tr.SetSourceRef(p.sinkRef, currentAmps)
	p.tr.Step()
}

// VDie returns the most recent on-die supply voltage.
func (p *PDN) VDie() float64 { return p.tr.V(p.die) }

// StepTrace advances len(src) steps in one batched kernel call: step i
// draws sink current src[i]*mul/div + add amps and records the die
// voltage into dst[i]. Bit-identical to the equivalent Step/VDie loop
// (see circuit.Transient.StepTrace); the (mul, div, add) form lets the
// testbed replay a per-cycle energy trace through its exact
// amps-conversion arithmetic without a per-cycle closure.
func (p *PDN) StepTrace(dst, src []float64, mul, div, add float64) {
	p.tr.StepTrace(p.die, p.sinkRef, dst, src, mul, div, add)
}

// MaxStateDelta returns the largest (relative above 1) elementwise
// difference between two states over one Compiled — the trace-replay
// convergence metric.
func (p *PDN) MaxStateDelta(o *PDN) float64 { return p.tr.MaxStateDelta(o.tr) }

// StateDim, StateVec and SetStateVec expose the network's dynamic
// state as a flat vector (see circuit.Transient.StateVec). The network
// is linear, so one drive period is an affine map over this vector —
// the replay engine samples that map once and then advances period
// boundaries with dense mat-vecs instead of per-cycle MNA solves.
func (p *PDN) StateDim() int             { return p.tr.StateDim() }
func (p *PDN) StateVec(dst []float64)    { p.tr.StateVec(dst) }
func (p *PDN) SetStateVec(src []float64) { p.tr.SetStateVec(src) }

// SetSupply changes the regulator set-point (used by the
// voltage-at-failure procedure, which lowers Vdd in 12.5 mV steps).
func (p *PDN) SetSupply(volts float64) { p.tr.SetSourceRef(p.vrmRef, volts) }

// StepTrace runs a full current trace (amps) through a pooled state
// from the network's DC operating point and writes the die-voltage
// waveform into dst. This is the batched measurement kernel: one call
// replaces len(src) Step/VDie round trips with a flattened,
// allocation-free inner loop over the precompiled element records.
func (cp *Compiled) StepTrace(dst, src []float64) {
	p := cp.Get()
	p.StepTrace(dst, src, 1, 1, 0)
	cp.Put(p)
}

// SimulateTrace runs a full current trace through a fresh PDN instance
// and returns the die-voltage waveform. Both slices share index i ↔
// time i·dt.
func SimulateTrace(cfg Config, dt float64, current []float64) ([]float64, error) {
	p, err := New(cfg, dt)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(current))
	p.StepTrace(out, current, 1, 1, 0)
	return out, nil
}

// Impedance computes |Z(f)| at the die across the given frequencies.
func Impedance(cfg Config, freqs []float64) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ckt, die := cfg.build()
	z, err := circuit.ACImpedance(ckt, die, freqs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(z))
	for i := range z {
		out[i] = cmplx.Abs(z[i])
	}
	return out, nil
}

// LogSpace returns n log-spaced frequencies in [lo, hi].
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	f := lo
	for i := 0; i < n; i++ {
		out[i] = f
		f *= ratio
	}
	return out
}

// ResonancePeak describes one impedance maximum found by FindResonances.
type ResonancePeak struct {
	FreqHz float64
	ZOhms  float64
	// Order is 1 for the highest-frequency (first-droop) peak, counting
	// down in frequency: 2 = package, 3 = board.
	Order int
}

// FindResonances sweeps the impedance between lo and hi Hz and returns
// local maxima, highest frequency first (first droop = Order 1).
func FindResonances(cfg Config, lo, hi float64, points int) ([]ResonancePeak, error) {
	freqs := LogSpace(lo, hi, points)
	z, err := Impedance(cfg, freqs)
	if err != nil {
		return nil, err
	}
	var peaks []ResonancePeak
	for i := 1; i+1 < len(z); i++ {
		if z[i] > z[i-1] && z[i] >= z[i+1] {
			peaks = append(peaks, ResonancePeak{FreqHz: freqs[i], ZOhms: z[i]})
		}
	}
	// Highest frequency first.
	for i, j := 0, len(peaks)-1; i < j; i, j = i+1, j-1 {
		peaks[i], peaks[j] = peaks[j], peaks[i]
	}
	for i := range peaks {
		peaks[i].Order = i + 1
	}
	return peaks, nil
}
