package pdn

import "repro/internal/circuit"

// Batch is the multi-lane PDN replay kernel: up to Lanes independent
// network states advancing in lockstep over one Compiled system, each
// lane bit-identical to a serial PDN.StepTrace of the same state (see
// circuit.TransientBatch). The testbed uses it to replay a whole
// generation's candidate traces per pass over the shared
// factorization, and to run the periodic-replay affine probes — which
// all share one drive period — as lanes instead of sequential runs.
type Batch struct {
	cp *Compiled
	tb *circuit.TransientBatch
}

// NewBatch returns a batch of `lanes` states at the network's DC
// operating point.
func (cp *Compiled) NewBatch(lanes int) *Batch {
	return &Batch{cp: cp, tb: cp.ccp.NewBatch(lanes)}
}

// Lanes returns the current number of lanes (shrinks via DropLane).
func (b *Batch) Lanes() int { return b.tb.Lanes() }

// LoadLane copies p's live state (including its regulator set-point)
// into lane l; p must come from the same Compiled handle.
func (b *Batch) LoadLane(l int, p *PDN) {
	if p.cp != b.cp {
		panic("pdn: LoadLane across different compiled networks")
	}
	b.tb.LoadLane(l, p.tr)
}

// StoreLane copies lane l's state back into p.
func (b *Batch) StoreLane(l int, p *PDN) {
	if p.cp != b.cp {
		panic("pdn: StoreLane across different compiled networks")
	}
	b.tb.StoreLane(l, p.tr)
}

// SetLaneStateVec overwrites lane l's dynamic state from a vector in
// PDN.StateVec's layout (source values are untouched).
func (b *Batch) SetLaneStateVec(l int, src []float64) { b.tb.SetLaneStateVec(l, src) }

// LaneStateVec copies lane l's dynamic state into dst (length ≥
// StateDim).
func (b *Batch) LaneStateVec(l int, dst []float64) { b.tb.LaneStateVec(l, dst) }

// DropLane retires lane l by swap-remove: the last lane moves into
// slot l and the batch narrows by one (callers mirror the swap in
// their lane bookkeeping).
func (b *Batch) DropLane(l int) { b.tb.DropLane(l) }

// StepTraceBatch advances every lane n steps in one kernel pass: at
// step s, lane l draws sink current src[l][s]*mul[l]/div[l] + add[l]
// amps and records its die voltage into dst[l][s]. Per lane the
// arithmetic is bit-identical to PDN.StepTrace with the same
// parameters.
func (b *Batch) StepTraceBatch(dst, src [][]float64, mul, div, add []float64, n int) {
	b.tb.StepTraceBatch(b.cp.die, b.cp.sinkRef, dst, src, mul, div, add, n)
}
