package pdn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{Bulldozer(), Phenom()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	cfg := Bulldozer()
	cfg.CDie = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero CDie accepted")
	}
	cfg = Bulldozer()
	cfg.LoadLineOn = true
	cfg.LoadLineOhms = 0
	if err := cfg.Validate(); err == nil {
		t.Error("enabled load line with zero slope accepted")
	}
}

func TestFirstDroopNominalInPaperRange(t *testing.T) {
	for _, cfg := range []Config{Bulldozer(), Phenom()} {
		f := cfg.FirstDroopNominal()
		if f < 50e6 || f > 200e6 {
			t.Errorf("%s: first droop %.1f MHz outside the paper's 50–200 MHz range", cfg.Name, f/1e6)
		}
	}
}

func TestResonanceOrdering(t *testing.T) {
	cfg := Bulldozer()
	if !(cfg.FirstDroopNominal() > cfg.SecondDroopNominal() &&
		cfg.SecondDroopNominal() > cfg.ThirdDroopNominal()) {
		t.Error("resonances not ordered first > second > third")
	}
}

func TestDCOperatingPoint(t *testing.T) {
	cfg := Bulldozer()
	p, err := New(cfg, 0.3e-9)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.VDie(); math.Abs(got-cfg.VNom) > 1e-6 {
		t.Errorf("idle die voltage %v, want %v", got, cfg.VNom)
	}
	// Zero load keeps it there.
	for i := 0; i < 1000; i++ {
		p.Step(0)
	}
	if got := p.VDie(); math.Abs(got-cfg.VNom) > 1e-6 {
		t.Errorf("idle die voltage drifted to %v", got)
	}
}

func TestIRDropUnderDCLoad(t *testing.T) {
	cfg := Bulldozer()
	p, err := New(cfg, 0.3e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Apply a steady 20 A for long enough to settle the die stage.
	for i := 0; i < 200000; i++ {
		p.Step(20)
	}
	drop := cfg.VNom - p.VDie()
	// Expected IR drop ≈ I × series R (vrm excluded board bypass path
	// complicates the exact figure; just require the right ballpark and
	// sign).
	if drop <= 0 {
		t.Fatalf("no IR drop under load: %v", drop)
	}
	if drop > 0.1 {
		t.Fatalf("implausible IR drop %v V at 20 A", drop)
	}
}

func TestLoadLineIncreasesDCDrop(t *testing.T) {
	base := Bulldozer()
	ll := Bulldozer()
	ll.LoadLineOn = true
	run := func(cfg Config) float64 {
		// Large step + long horizon: trapezoidal integration is
		// A-stable, so a coarse 10 ns step settles the 22 kHz board
		// stage cheaply.
		p, err := New(cfg, 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200000; i++ {
			p.Step(20)
		}
		return cfg.VNom - p.VDie()
	}
	d0, d1 := run(base), run(ll)
	if d1 <= d0 {
		t.Errorf("load line should deepen DC droop: %v vs %v", d1, d0)
	}
	// Slope ≈ LoadLineOhms: the extra drop should be ≈ 20 A × 1 mΩ.
	extra := d1 - d0
	if math.Abs(extra-20*ll.LoadLineOhms) > 5e-3 {
		t.Errorf("load-line drop %v, want ≈ %v", extra, 20*ll.LoadLineOhms)
	}
}

func TestImpedanceShowsThreePeaks(t *testing.T) {
	cfg := Bulldozer()
	peaks, err := FindResonances(cfg, 3e3, 1e9, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) < 3 {
		t.Fatalf("found %d impedance peaks, want ≥ 3: %+v", len(peaks), peaks)
	}
	// First droop peak should be within 20% of the analytic value.
	f1 := peaks[0].FreqHz
	if math.Abs(f1-cfg.FirstDroopNominal())/cfg.FirstDroopNominal() > 0.2 {
		t.Errorf("first droop peak at %.1f MHz, want ≈ %.1f MHz",
			f1/1e6, cfg.FirstDroopNominal()/1e6)
	}
	// First droop should dominate the higher-order peaks (§2: second
	// and third droops are typically smaller in magnitude).
	if peaks[0].ZOhms <= peaks[1].ZOhms {
		t.Errorf("first droop peak %.3g Ω not above second %.3g Ω",
			peaks[0].ZOhms, peaks[1].ZOhms)
	}
}

func TestResonantCurrentBeatsSingleStep(t *testing.T) {
	// The core physics claim of Fig. 4: a current square wave at the
	// resonance frequency builds a larger droop than a single step of
	// the same amplitude.
	cfg := Bulldozer()
	dt := 1 / 3.6e9
	f1 := cfg.FirstDroopNominal()
	period := int(math.Round(1 / (f1 * dt))) // cycles per resonance period
	amp := 15.0

	// Single step: idle then sustained high.
	n := period * 40
	step := make([]float64, n)
	for i := n / 4; i < n; i++ {
		step[i] = amp
	}
	vStep, err := SimulateTrace(cfg, dt, step)
	if err != nil {
		t.Fatal(err)
	}
	// Resonant square wave.
	res := make([]float64, n)
	for i := range res {
		if (i/(period/2))%2 == 1 {
			res[i] = amp
		}
	}
	vRes, err := SimulateTrace(cfg, dt, res)
	if err != nil {
		t.Fatal(err)
	}
	min := func(xs []float64) float64 {
		m := xs[0]
		for _, x := range xs {
			if x < m {
				m = x
			}
		}
		return m
	}
	droopStep := cfg.VNom - min(vStep)
	droopRes := cfg.VNom - min(vRes)
	if droopRes <= droopStep*1.5 {
		t.Errorf("resonant droop %v should far exceed step droop %v", droopRes, droopStep)
	}
	// Scale sanity: a full-swing resonant stressmark droop should be
	// roughly 5–20%% of nominal on this network.
	if droopRes < 0.03*cfg.VNom || droopRes > 0.4*cfg.VNom {
		t.Errorf("resonant droop %v V out of plausible range", droopRes)
	}
}

func TestOffResonanceIsWeaker(t *testing.T) {
	cfg := Bulldozer()
	dt := 1 / 3.6e9
	f1 := cfg.FirstDroopNominal()
	run := func(period int) float64 {
		n := 8000
		cur := make([]float64, n)
		for i := range cur {
			if (i/(period/2))%2 == 1 {
				cur[i] = 15
			}
		}
		v, err := SimulateTrace(cfg, dt, cur)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for _, x := range v {
			if d := cfg.VNom - x; d > worst {
				worst = d
			}
		}
		return worst
	}
	onPeriod := int(math.Round(1 / (f1 * dt)))
	on := run(onPeriod)
	off1 := run(onPeriod * 2)
	off2 := run(onPeriod / 2)
	if on <= off1 || on <= off2 {
		t.Errorf("on-resonance droop %v should beat off-resonance %v, %v", on, off1, off2)
	}
}

func TestLogSpace(t *testing.T) {
	fs := LogSpace(1e3, 1e6, 4)
	want := []float64{1e3, 1e4, 1e5, 1e6}
	for i := range want {
		if math.Abs(fs[i]-want[i])/want[i] > 1e-9 {
			t.Errorf("LogSpace[%d] = %v, want %v", i, fs[i], want[i])
		}
	}
	if got := LogSpace(5, 10, 1); len(got) != 1 || got[0] != 5 {
		t.Errorf("LogSpace n=1: %v", got)
	}
}

func TestQuickDroopMonotoneInAmplitude(t *testing.T) {
	// Property: larger current swings never produce smaller worst-case
	// droops (linear network ⇒ droop scales with amplitude).
	cfg := Bulldozer()
	dt := 1 / 3.6e9
	period := int(math.Round(1 / (cfg.FirstDroopNominal() * dt)))
	droopFor := func(amp float64) float64 {
		n := period * 24
		cur := make([]float64, n)
		for i := range cur {
			if (i/(period/2))%2 == 1 {
				cur[i] = amp
			}
		}
		v, _ := SimulateTrace(cfg, dt, cur)
		worst := 0.0
		for _, x := range v {
			if d := cfg.VNom - x; d > worst {
				worst = d
			}
		}
		return worst
	}
	f := func(raw uint8) bool {
		a := 1 + float64(raw%20)
		return droopFor(a+1) > droopFor(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestSimulateTraceRejectsBadConfig(t *testing.T) {
	cfg := Bulldozer()
	cfg.LDie = -1
	if _, err := SimulateTrace(cfg, 1e-9, []float64{0}); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := Impedance(cfg, []float64{1e6}); err == nil {
		t.Error("bad config accepted by Impedance")
	}
}

func TestPhenomResonanceDiffersFromBulldozer(t *testing.T) {
	fb := Bulldozer().FirstDroopNominal()
	fp := Phenom().FirstDroopNominal()
	if math.Abs(fb-fp)/fb < 0.05 {
		t.Errorf("Phenom resonance %.1f MHz too close to Bulldozer %.1f MHz — AUDIT's re-detection sweep would be untested", fp/1e6, fb/1e6)
	}
}

func BenchmarkPDNStep(b *testing.B) {
	p, err := New(Bulldozer(), 1/3.6e9)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Step(float64(i % 32))
	}
}

func BenchmarkImpedanceSweep(b *testing.B) {
	cfg := Bulldozer()
	freqs := LogSpace(1e4, 1e9, 100)
	for i := 0; i < b.N; i++ {
		if _, err := Impedance(cfg, freqs); err != nil {
			b.Fatal(err)
		}
	}
}
