package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/uarch"
)

// These tests pin down the individual structural hazards the timing
// model implements, one at a time.

func runFor(t *testing.T, cfg uarch.ChipConfig, p *asm.Program, maxCycles int) (*Chip, uint64) {
	t.Helper()
	ch, err := NewChip(cfg, power.BulldozerModel())
	if err != nil {
		t.Fatal(err)
	}
	th, err := NewThread(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Attach(0, 0, th); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxCycles && !ch.Done(); i++ {
		ch.Step()
	}
	if !ch.Done() {
		t.Fatalf("%s did not finish in %d cycles", p.Name, maxCycles)
	}
	return ch, ch.Cycle()
}

func TestMSHRBoundsMissParallelism(t *testing.T) {
	// A burst of independent missing loads should complete in waves of
	// MSHRs misses, not all at once.
	mk := func(mshrs int) uint64 {
		cfg := uarch.Bulldozer()
		cfg.MSHRs = mshrs
		b := asm.NewBuilder("miss-burst")
		b.SetMem(32 << 20)
		b.RI("movimm", isa.RBP, 0)
		for i := 0; i < 16; i++ {
			// Strided by 1 MB: every access its own set, all cold.
			b.Load("load", isa.GPR(8+i%8), isa.RBP, int32(i)<<20)
		}
		p := b.MustBuild()
		_, cycles := runFor(t, cfg, p, 1<<20)
		return cycles
	}
	wide := mk(16) // all 16 misses overlap
	narrow := mk(2)
	if float64(narrow) < 1.8*float64(wide) {
		t.Errorf("2 MSHRs (%d cycles) should be far slower than 16 (%d cycles)", narrow, wide)
	}
}

func TestIntDispatchLimitsDenseRows(t *testing.T) {
	// 4 independent ALU ops per decode row exceed IntDispatch=2: the
	// front end must take 2 cycles per row even before the ALU binds.
	cfg := uarch.Bulldozer()
	cfg.NumALU = 4 // remove the ALU bottleneck to isolate dispatch
	b := asm.NewBuilder("dense")
	b.InitToggle(0, 8)
	b.RI("movimm", isa.RCX, 400)
	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.RR("xor", isa.GPR(8+i), isa.GPR(6+i%2))
	}
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	_, cycles := runFor(t, cfg, b.MustBuild(), 1<<20)
	perIter := float64(cycles) / 400
	// 5 int ops per iteration / 2 dispatch = 2.5 cycles minimum.
	if perIter < 2.3 {
		t.Errorf("dense int rows run at %.2f cycles/iter — dispatch limit not enforced", perIter)
	}
}

func TestResultBusBackpressure(t *testing.T) {
	// Completions above ResultBuses per cycle must serialise: a row of
	// 2 FMAs + 2 single-cycle ALU ops produces 4 results per cycle in
	// steady state against 3 write ports.
	// The chain must be latency-tight for the port conflict to bind:
	// 12 FMA accumulators at 2 FMAs/cycle reuse each register exactly
	// 6 cycles later — the FMA latency — so any completion pushed +1 by
	// a full write-port cycle stalls the next iteration's FMA.
	run := func(buses int) uint64 {
		cfg := uarch.Bulldozer()
		cfg.ResultBuses = buses
		cfg.NumALU = 4 // remove the ALU bottleneck to isolate the ports
		b := asm.NewBuilder("busy")
		b.InitToggle(16, 8)
		b.RI("movimm", isa.RCX, 400)
		b.Label("loop")
		for i := 0; i < 12; i++ {
			b.RRR("vfmadd132pd", isa.XMM(i%12), isa.XMM(12+i%2), isa.XMM(14+i%2))
			if i%2 == 1 {
				// One int result per 2-FMA cycle competes for the ports.
				b.RR("xor", isa.GPR(8+i%8), isa.RSI)
			}
		}
		b.RR("dec", isa.RCX, isa.RCX)
		b.Branch("jnz", "loop")
		_, cycles := runFor(t, cfg, b.MustBuild(), 1<<22)
		return cycles
	}
	constrained := run(2)
	roomy := run(8)
	if float64(constrained) <= 1.05*float64(roomy) {
		t.Errorf("2 write ports (%d cycles) should clearly trail 8 (%d cycles)", constrained, roomy)
	}
}

func TestSharedFrontEndAlternation(t *testing.T) {
	// Two sibling NOP threads share one decoder: each should make
	// roughly half the progress of a solo thread over a fixed window.
	cfg := uarch.Bulldozer()
	mk := func() *asm.Program {
		b := asm.NewBuilder("nops")
		b.RI("movimm", isa.RCX, 1<<40)
		b.Label("loop")
		b.Nop(8)
		b.RR("dec", isa.RCX, isa.RCX)
		b.Branch("jnz", "loop")
		return b.MustBuild()
	}
	progress := func(two bool) uint64 {
		ch, _ := NewChip(cfg, power.BulldozerModel())
		th0, _ := NewThread(mk(), 0)
		if err := ch.Attach(0, 0, th0); err != nil {
			t.Fatal(err)
		}
		if two {
			th1, _ := NewThread(mk(), 0)
			if err := ch.Attach(0, 1, th1); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 5000; i++ {
			ch.Step()
		}
		return ch.CoreRetired(0)
	}
	solo := progress(false)
	shared := progress(true)
	ratio := float64(shared) / float64(solo)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("sibling decode share = %.2f of solo, want ≈ 0.5", ratio)
	}
}

func TestPhenomPrivateFrontEndsDoNotAlternate(t *testing.T) {
	cfg := uarch.Phenom() // one core per module: full decode each
	mk := func() *asm.Program {
		b := asm.NewBuilder("nops")
		b.RI("movimm", isa.RCX, 1<<40)
		b.Label("loop")
		b.Nop(7)
		b.RR("dec", isa.RCX, isa.RCX)
		b.Branch("jnz", "loop")
		return b.MustBuild()
	}
	ch, _ := NewChip(cfg, power.PhenomModel())
	for m := 0; m < 2; m++ {
		th, _ := NewThread(mk(), 0)
		if err := ch.Attach(m, 0, th); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4000; i++ {
		ch.Step()
	}
	a, b := ch.CoreRetired(0), ch.CoreRetired(1)
	if a != b {
		t.Errorf("independent cores diverged: %d vs %d", a, b)
	}
	ipc := float64(a) / 4000
	if ipc < 2.0 {
		t.Errorf("per-core IPC %.2f too low for private 3-wide decode", ipc)
	}
}

func TestIDivUnpipelined(t *testing.T) {
	cfg := uarch.Bulldozer()
	b := asm.NewBuilder("divs")
	b.InitToggle(0, 8)
	b.RI("movimm", isa.RCX, 100)
	b.Label("loop")
	// Two independent divides per iteration: the unpipelined unit must
	// serialise them (≈44 cycles), unlike two independent multiplies.
	b.RR("idiv", isa.GPR(8), isa.RSI)
	b.RR("idiv", isa.GPR(9), isa.RDI)
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	_, cycles := runFor(t, cfg, b.MustBuild(), 1<<20)
	perIter := float64(cycles) / 100
	div := isa.MustLookup("idiv")
	if perIter < 1.8*float64(div.RecipThroughput) {
		t.Errorf("two divides take %.1f cycles/iter, want ≥ %d (unpipelined)",
			perIter, 2*div.RecipThroughput)
	}
}

func TestBarrierReleaseSkewStaggersResumption(t *testing.T) {
	cfg := uarch.Bulldozer()
	mk := func() *asm.Program {
		b := asm.NewBuilder("bar")
		b.Nop(4)
		b.Barrier(3)
		b.Nop(40)
		return b.MustBuild()
	}
	ch, _ := NewChip(cfg, power.BulldozerModel())
	for m := 0; m < 4; m++ {
		th, _ := NewThread(mk(), 0)
		if err := ch.Attach(m, 0, th); err != nil {
			t.Fatal(err)
		}
	}
	// Track when each core first decodes again after the barrier by
	// sampling per-core retirement over time.
	resumed := map[int]uint64{}
	base := map[int]uint64{}
	for m := 0; m < 4; m++ {
		base[m] = 0
	}
	for i := 0; i < 600 && !ch.Done(); i++ {
		ch.Step()
		for m := 0; m < 4; m++ {
			g := m * cfg.CoresPerModule
			r := ch.CoreRetired(g)
			if _, done := resumed[m]; !done && r > 5 { // past the barrier uop
				if base[m] == 0 && r >= 5 {
					base[m] = r
				}
				if r > 5 {
					resumed[m] = ch.Cycle()
				}
			}
		}
	}
	if !ch.Done() {
		t.Fatal("barrier program did not finish")
	}
	distinct := map[uint64]bool{}
	for _, c := range resumed {
		distinct[c] = true
	}
	if len(distinct) < 2 {
		t.Errorf("barrier release should stagger cores, resume cycles: %v", resumed)
	}
}
