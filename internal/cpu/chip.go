package cpu

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/uarch"
)

const pendingCycle = math.MaxUint64

// CycleResult reports what one clock cycle did, for power conversion
// and for failure-path analysis.
type CycleResult struct {
	// EnergyPJ is the dynamic energy consumed this cycle (all modules).
	EnergyPJ float64
	// UnitIssues counts issued uops per execution-unit kind chip-wide.
	UnitIssues [isa.NumUnits]int
	// Decoded counts instructions leaving the front ends (incl. NOPs).
	Decoded int
}

// Chip is the whole processor: modules, shared L3, barrier registry.
type Chip struct {
	cfg uarch.ChipConfig
	pm  power.Model

	modules []*module
	l3      *Cache

	cycle    uint64
	throttle int // live FP throttle limit; 0 = off

	// Barrier registry. Barrier ids are registered at Attach (from the
	// thread's pre-decoded templates) into dense slots so the per-cycle
	// paths never touch a map: barriers[slot] holds the waiting set as a
	// per-core bool slice plus a count, waitingCores is the chip-wide
	// total (the fast-path gate), and partsScratch is the reusable
	// participant buffer for releaseBarriers.
	barriers     []barrierState
	barrierIdx   map[int64]int32
	waitingCores int
	partsScratch []*core

	res CycleResult // scratch for the current cycle
}

// barrierState is one registered barrier id's waiting set.
type barrierState struct {
	id      int64
	waiting []bool // indexed by global core
	count   int
}

type module struct {
	chip  *Chip
	idx   int
	cores []*core
	l2    *Cache

	// Shared-FPU state.
	fpToken   int // round-robin arbitration among sibling cores
	fpLastSrc isa.Value
	fpLastRes isa.Value
	fpIssued  bool // any FP issue this cycle (for FP idle energy)
}

// ringK is the completion-table size. It must exceed the maximum
// dynamic-instruction distance over which a producer can still be
// incomplete: queues hold <100 uops and the longest latency is
// MemLat+bus ≈ 250 cycles ≈ 1000 instructions at IPC 4, so 4096 tags
// give a comfortable margin. A tag evicted from the ring is therefore
// always complete.
const ringK = 4096

// depSet holds the producer tags (thread seq+1; 0 = architecturally
// ready) of a uop's register sources.
type depSet struct {
	d [4]uint64
}

type queued struct {
	u    Uop
	deps depSet
}

type core struct {
	mod  *module
	idx  int // within module
	gidx int // global core index
	th   *Thread
	l1   *Cache

	intQ []queued
	fpQ  []queued
	lsq  int // mem ops currently queued

	// regWriterTag maps architectural register → tag of its last
	// decoded writer (0 = no in-flight writer).
	regWriterTag [isa.TotalRegs]uint64
	// Completion table: ringTag[s] identifies which writer owns slot s;
	// readyRing[s] is the cycle its result is available (pendingCycle
	// until it issues).
	ringTag   [ringK]uint64
	readyRing [ringK]uint64

	stallUntil    uint64
	idivBusyUntil uint64

	// mshr[i] is the cycle at which outstanding miss i completes.
	mshr []uint64

	busUsed  []uint8
	busCycle []uint64

	waitBarrier int64 // -1 when not waiting

	// Branch predictor state (gshare) and statistics.
	ghist       uint32
	btable      []uint8
	branches    uint64
	mispredicts uint64

	// Per-unit toggle state for the integer cluster and LSU.
	lastSrc [isa.NumUnits]isa.Value
	lastRes [isa.NumUnits]isa.Value

	retired   uint64
	activeNow bool
}

// NewChip builds a chip from a validated config and power model.
func NewChip(cfg uarch.ChipConfig, pm power.Model) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	l3, err := NewCache(cfg.L3Bytes, cfg.L3Ways, cfg.LineBytes)
	if err != nil {
		return nil, err
	}
	ch := &Chip{
		cfg:          cfg,
		pm:           pm,
		l3:           l3,
		throttle:     cfg.FPThrottleLimit,
		barrierIdx:   map[int64]int32{},
		partsScratch: make([]*core, 0, cfg.Threads()),
	}
	horizon := cfg.MemLat + 64
	g := 0
	for mi := 0; mi < cfg.Modules; mi++ {
		l2, err := NewCache(cfg.L2Bytes, cfg.L2Ways, cfg.LineBytes)
		if err != nil {
			return nil, err
		}
		m := &module{chip: ch, idx: mi, l2: l2}
		for ci := 0; ci < cfg.CoresPerModule; ci++ {
			l1, err := NewCache(cfg.L1Bytes, cfg.L1Ways, cfg.LineBytes)
			if err != nil {
				return nil, err
			}
			c := &core{
				mod:         m,
				idx:         ci,
				gidx:        g,
				l1:          l1,
				intQ:        make([]queued, 0, cfg.IntQueue),
				fpQ:         make([]queued, 0, cfg.FPQueue),
				mshr:        make([]uint64, cfg.MSHRs),
				busUsed:     make([]uint8, horizon),
				busCycle:    make([]uint64, horizon),
				waitBarrier: -1,
			}
			if cfg.Predictor == "gshare" {
				c.btable = make([]uint8, 4096)
				for i := range c.btable {
					c.btable[i] = 1 // weakly not-taken
				}
			}
			m.cores = append(m.cores, c)
			g++
		}
		ch.modules = append(ch.modules, m)
	}
	return ch, nil
}

// Reset returns the chip to its just-constructed state: threads
// detached, caches cold, predictor re-initialised, queues and scratch
// state cleared. A reset chip behaves bit-identically to a fresh
// NewChip with the same config and power model — that property is what
// lets the compiled testbed pool chip instances across runs instead of
// reallocating the multi-megabyte cache and completion-table arrays
// every evaluation.
func (ch *Chip) Reset() {
	ch.cycle = 0
	ch.throttle = ch.cfg.FPThrottleLimit
	ch.res = CycleResult{}
	ch.barriers = ch.barriers[:0]
	for id := range ch.barrierIdx {
		delete(ch.barrierIdx, id)
	}
	ch.waitingCores = 0
	ch.partsScratch = ch.partsScratch[:0]
	ch.l3.Reset()
	for _, m := range ch.modules {
		m.l2.Reset()
		m.fpToken = 0
		m.fpLastSrc = isa.Value{}
		m.fpLastRes = isa.Value{}
		m.fpIssued = false
		for _, c := range m.cores {
			c.th = nil
			c.l1.Reset()
			c.intQ = c.intQ[:0]
			c.fpQ = c.fpQ[:0]
			c.lsq = 0
			c.regWriterTag = [isa.TotalRegs]uint64{}
			c.ringTag = [ringK]uint64{}
			c.readyRing = [ringK]uint64{}
			c.stallUntil = 0
			c.idivBusyUntil = 0
			for i := range c.mshr {
				c.mshr[i] = 0
			}
			for i := range c.busUsed {
				c.busUsed[i] = 0
			}
			for i := range c.busCycle {
				c.busCycle[i] = 0
			}
			c.waitBarrier = -1
			c.ghist = 0
			for i := range c.btable {
				c.btable[i] = 1
			}
			c.branches, c.mispredicts = 0, 0
			c.lastSrc = [isa.NumUnits]isa.Value{}
			c.lastRes = [isa.NumUnits]isa.Value{}
			c.retired = 0
			c.activeNow = false
		}
	}
}

// Config returns the chip's configuration.
func (ch *Chip) Config() uarch.ChipConfig { return ch.cfg }

// Cycle returns the current cycle number.
func (ch *Chip) Cycle() uint64 { return ch.cycle }

// SetFPThrottle sets the live FP issue cap (0 disables throttling).
func (ch *Chip) SetFPThrottle(limit int) { ch.throttle = limit }

// Attach places a thread on (module, core). The slot must be empty.
func (ch *Chip) Attach(moduleIdx, coreIdx int, th *Thread) error {
	if moduleIdx < 0 || moduleIdx >= len(ch.modules) {
		return fmt.Errorf("cpu: module %d out of range", moduleIdx)
	}
	m := ch.modules[moduleIdx]
	if coreIdx < 0 || coreIdx >= len(m.cores) {
		return fmt.Errorf("cpu: core %d out of range in module %d", coreIdx, moduleIdx)
	}
	c := m.cores[coreIdx]
	if c.th != nil {
		return fmt.Errorf("cpu: module %d core %d already occupied", moduleIdx, coreIdx)
	}
	th.SetGlobalBase(uint64(c.gidx+1) << 32)
	c.th = th
	// Register the program's barrier ids into dense slots and annotate
	// the thread's templates with them, so barrier decode and release
	// never consult a map.
	for i := range th.tmpl {
		tpl := &th.tmpl[i]
		if tpl.class == isa.ClassBarrier {
			tpl.barrierSlot = ch.barrierSlot(tpl.barrierID)
		}
	}
	return nil
}

// barrierSlot returns (registering if new) the dense slot of a barrier
// id.
func (ch *Chip) barrierSlot(id int64) int32 {
	if s, ok := ch.barrierIdx[id]; ok {
		return s
	}
	s := int32(len(ch.barriers))
	ch.barriers = append(ch.barriers, barrierState{
		id:      id,
		waiting: make([]bool, ch.cfg.Threads()),
	})
	ch.barrierIdx[id] = s
	return s
}

// InjectStall freezes a core's decode for the given number of cycles,
// starting now. This implements dither padding ("one cycle worth of NOP
// padding") and OS-tick interference.
func (ch *Chip) InjectStall(globalCore int, cycles uint64) error {
	c, err := ch.coreByGlobal(globalCore)
	if err != nil {
		return err
	}
	until := ch.cycle + cycles
	if until > c.stallUntil {
		c.stallUntil = until
	}
	return nil
}

func (ch *Chip) coreByGlobal(g int) (*core, error) {
	for _, m := range ch.modules {
		for _, c := range m.cores {
			if c.gidx == g {
				return c, nil
			}
		}
	}
	return nil, fmt.Errorf("cpu: no core %d", g)
}

// StateFingerprint hashes the chip's cycle-relative control state:
// per-thread program counters and lookahead, queue occupancies,
// stall/divider/MSHR deadlines relative to the current cycle, barrier
// waits, predictor history and FP arbitration tokens. In the steady
// state of a loop this value recurs with the loop, which is what the
// testbed's trace-periodicity detector keys on. It is deliberately
// approximate — register file contents and completion-table details
// are excluded for speed — so equal fingerprints are a candidate
// period, not a proof; the detector verifies candidates against the
// recorded trace bit-for-bit before trusting them.
func (ch *Chip) StateFingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	now := ch.cycle
	rel := func(until uint64) uint64 {
		if until > now {
			return until - now
		}
		return 0
	}
	for _, m := range ch.modules {
		mix(uint64(m.fpToken))
		for _, c := range m.cores {
			if c.th != nil {
				mix(c.th.stateFP())
			} else {
				mix(^uint64(0))
			}
			mix(uint64(len(c.intQ))<<32 | uint64(len(c.fpQ))<<16 | uint64(uint16(c.lsq)))
			mix(rel(c.stallUntil))
			mix(rel(c.idivBusyUntil))
			mix(uint64(c.waitBarrier + 1))
			mix(uint64(c.ghist))
			var mm uint64
			for _, t := range c.mshr {
				mm = mm*31 + rel(t)
			}
			mix(mm)
		}
	}
	return h
}

// Stats summarises pipeline and memory behaviour over the run so far.
type Stats struct {
	Branches, Mispredicts uint64
	L1Hits, L1Misses      uint64
	L2Hits, L2Misses      uint64
	L3Hits, L3Misses      uint64
}

// Stats aggregates counters across cores and cache levels.
func (ch *Chip) Stats() Stats {
	var s Stats
	for _, m := range ch.modules {
		h, mi := m.l2.Stats()
		s.L2Hits += h
		s.L2Misses += mi
		for _, c := range m.cores {
			s.Branches += c.branches
			s.Mispredicts += c.mispredicts
			h, mi := c.l1.Stats()
			s.L1Hits += h
			s.L1Misses += mi
		}
	}
	s.L3Hits, s.L3Misses = ch.l3.Stats()
	return s
}

// Retired returns total dynamic instructions consumed chip-wide.
func (ch *Chip) Retired() uint64 {
	var n uint64
	for _, m := range ch.modules {
		for _, c := range m.cores {
			n += c.retired
		}
	}
	return n
}

// CoreRetired returns the dynamic instruction count of one core.
func (ch *Chip) CoreRetired(globalCore int) uint64 {
	c, err := ch.coreByGlobal(globalCore)
	if err != nil {
		return 0
	}
	return c.retired
}

// Done reports whether every attached thread has finished and all
// queues have drained.
func (ch *Chip) Done() bool {
	for _, m := range ch.modules {
		for _, c := range m.cores {
			if c.th == nil {
				continue
			}
			if !c.th.Done() || len(c.intQ) > 0 || len(c.fpQ) > 0 || c.waitBarrier >= 0 {
				return false
			}
		}
	}
	return true
}

// Step advances the chip by one clock cycle and returns the cycle's
// activity and energy.
func (ch *Chip) Step() CycleResult {
	ch.res = CycleResult{}
	now := ch.cycle

	for _, m := range ch.modules {
		m.fpIssued = false
		for _, c := range m.cores {
			c.activeNow = false
		}
	}

	// Front ends.
	for _, m := range ch.modules {
		m.decode(now)
	}
	// Back ends: integer clusters then the FP cluster(s).
	for _, m := range ch.modules {
		for _, c := range m.cores {
			c.issueInt(now)
		}
		m.issueFP(now)
	}
	// Barrier release check.
	ch.releaseBarriers(now)

	// Machine-level energy.
	e := &ch.res.EnergyPJ
	*e += float64(len(ch.modules)) * ch.pm.ClockPJPerModuleCycle
	for _, m := range ch.modules {
		if !m.fpIssued {
			*e += ch.pm.FPIdlePJPerCycle
		}
		for _, c := range m.cores {
			if c.activeNow {
				*e += ch.pm.CorePJPerActiveCycle
			}
		}
	}

	ch.cycle++
	return ch.res
}

// ---- front end ----

func (m *module) decode(now uint64) {
	cfg := m.chip.cfg
	if cfg.SharedFrontEnd && len(m.cores) > 1 {
		// Sibling threads alternate decode cycles; if the scheduled
		// thread cannot use the slot at all, the partner takes it.
		n := len(m.cores)
		first := int(now) % n
		for k := 0; k < n; k++ {
			ci := (first + k) % n
			if m.cores[ci].decodeReady(now) {
				m.cores[ci].decode(now, cfg.DecodeWidth)
				return
			}
		}
		return
	}
	for _, c := range m.cores {
		if c.decodeReady(now) {
			c.decode(now, cfg.DecodeWidth)
		}
	}
}

// decodeReady reports whether the core can consume any decode slot.
func (c *core) decodeReady(now uint64) bool {
	if c.th == nil || c.waitBarrier >= 0 || now < c.stallUntil {
		return false
	}
	_, ok := c.th.Peek()
	return ok
}

func (c *core) decode(now uint64, width int) {
	ch := c.mod.chip
	cfg := ch.cfg
	pm := ch.pm
	decoded := 0
	intDisp, fpDisp := cfg.IntDispatch, cfg.FPDispatch
	for decoded < width {
		u, ok := c.th.Peek()
		if !ok {
			break
		}
		tpl := u.tpl
		switch {
		case tpl.class == isa.ClassNOP:
			// Fetch/decode only: no queue entry, no unit, no result.
			ch.res.EnergyPJ += pm.FrontEndPJPerOp + tpl.energyPJ
			c.th.Consume()
			c.retired++
			decoded++
		case tpl.class == isa.ClassBarrier:
			c.waitBarrier = u.BarrierID
			b := &ch.barriers[tpl.barrierSlot]
			if !b.waiting[c.gidx] {
				b.waiting[c.gidx] = true
				b.count++
				ch.waitingCores++
			}
			c.th.Consume()
			c.retired++
			decoded++
			// Stop decoding past a barrier.
			c.markDecoded(decoded)
			return
		case tpl.class == isa.ClassBranch:
			// Branches resolve at decode in this model; a wrong
			// prediction costs a front-end bubble.
			ch.res.EnergyPJ += pm.FrontEndPJPerOp + tpl.energyPJ
			ch.res.UnitIssues[isa.UnitBranch]++
			taken := u.Taken
			predictTaken := c.predictBranch(u)
			c.recordBranch(u, taken, predictTaken)
			c.th.Consume()
			c.retired++
			decoded++
			if taken != predictTaken {
				c.stallUntil = now + uint64(cfg.BranchPenalty)
				c.markDecoded(decoded)
				return
			}
			if taken {
				// Fetch redirect ends the decode group.
				c.markDecoded(decoded)
				return
			}
		case tpl.isFP:
			if fpDisp == 0 || len(c.fpQ) >= cfg.FPQueue {
				c.markDecoded(decoded)
				return
			}
			fpDisp--
			ch.res.EnergyPJ += pm.FrontEndPJPerOp
			c.fpQ = append(c.fpQ, queued{u: *u, deps: c.rename(u)})
			c.th.Consume()
			decoded++
		default:
			if intDisp == 0 {
				c.markDecoded(decoded)
				return
			}
			if tpl.isMem && c.lsq >= cfg.LSQ {
				c.markDecoded(decoded)
				return
			}
			if len(c.intQ) >= cfg.IntQueue {
				c.markDecoded(decoded)
				return
			}
			intDisp--
			ch.res.EnergyPJ += pm.FrontEndPJPerOp
			if tpl.isMem {
				c.lsq++
			}
			c.intQ = append(c.intQ, queued{u: *u, deps: c.rename(u)})
			c.th.Consume()
			decoded++
		}
	}
	c.markDecoded(decoded)
}

func (c *core) markDecoded(n int) {
	if n > 0 {
		c.activeNow = true
		c.mod.chip.res.Decoded += n
	}
}

// predictBranch returns the predicted direction for a branch uop:
// static backward-taken/forward-not-taken, or gshare when configured.
func (c *core) predictBranch(u *Uop) bool {
	if u.tpl.branchKind == brJmp {
		return true
	}
	if c.btable == nil {
		return u.BackBranch
	}
	return c.btable[c.btableIndex(u)] >= 2
}

func (c *core) btableIndex(u *Uop) uint32 {
	// btHash is the static branch site's hash, precomputed at template
	// compile.
	return (u.tpl.btHash ^ c.ghist) & uint32(len(c.btable)-1)
}

// recordBranch updates predictor state and statistics.
func (c *core) recordBranch(u *Uop, taken, predicted bool) {
	c.branches++
	if taken != predicted {
		c.mispredicts++
	}
	if c.btable != nil && u.tpl.branchKind != brJmp {
		i := c.btableIndex(u)
		if taken {
			if c.btable[i] < 3 {
				c.btable[i]++
			}
		} else if c.btable[i] > 0 {
			c.btable[i]--
		}
		c.ghist = (c.ghist << 1) & uint32(len(c.btable)-1)
		if taken {
			c.ghist |= 1
		}
	}
}

// rename captures the uop's register dependencies as producer tags and
// registers the uop as the new writer of its destination. It must be
// called in program order (at decode).
func (c *core) rename(u *Uop) depSet {
	tpl := u.tpl
	var deps depSet
	for i := uint8(0); i < tpl.nsrc; i++ {
		deps.d[i] = c.regWriterTag[tpl.srcRegs[i]]
	}
	if tpl.dstIdx >= 0 {
		tag := u.Seq + 1
		c.regWriterTag[tpl.dstIdx] = tag
		s := tag % ringK
		c.ringTag[s] = tag
		c.readyRing[s] = pendingCycle
	}
	return deps
}

// ---- integer cluster ----

func (c *core) depsReady(deps *depSet, now uint64) bool {
	for _, tag := range deps.d {
		if tag == 0 {
			continue
		}
		s := tag % ringK
		if c.ringTag[s] != tag {
			// Evicted from the ring: old enough to be complete.
			continue
		}
		if c.readyRing[s] > now {
			return false
		}
	}
	return true
}

func (c *core) issueInt(now uint64) {
	cfg := c.mod.chip.cfg
	alu, agu, lsu := cfg.NumALU, cfg.NumAGU, cfg.LSUPorts
	imul := 1
	for i := 0; i < len(c.intQ); {
		u := &c.intQ[i].u
		if !c.depsReady(&c.intQ[i].deps, now) {
			i++
			continue
		}
		unit := u.tpl.unit
		switch unit {
		case isa.UnitALU:
			if alu == 0 {
				i++
				continue
			}
			alu--
		case isa.UnitAGU:
			if agu == 0 {
				i++
				continue
			}
			agu--
		case isa.UnitIMul:
			if imul == 0 {
				i++
				continue
			}
			imul--
		case isa.UnitIDiv:
			if now < c.idivBusyUntil {
				i++
				continue
			}
			c.idivBusyUntil = now + u.tpl.recipTP
		case isa.UnitLSU:
			if lsu == 0 {
				i++
				continue
			}
			// A miss needs a free MSHR. The hierarchy is probed (and
			// filled) once; the level is remembered so a blocked access
			// keeps charging its original miss level on retry.
			if u.memLevel == 0 {
				u.memLevel = c.mod.chip.memAccess(c, u.Addr)
			}
			if u.memLevel > levelL1 && !c.takeMSHR(now, u.memLevel) {
				i++
				continue
			}
			lsu--
		default:
			i++
			continue
		}
		c.execute(u, now, unit)
		c.intQ = append(c.intQ[:i], c.intQ[i+1:]...)
	}
}

// takeMSHR claims a miss-status register until the fill completes;
// false when all are busy (the access must retry next cycle).
func (c *core) takeMSHR(now uint64, level memLevel) bool {
	lat, _ := level.latencyEnergy(c.mod.chip.cfg)
	for i := range c.mshr {
		if c.mshr[i] <= now {
			c.mshr[i] = now + lat
			return true
		}
	}
	return false
}

// execute finishes an issued uop: latency, result bus, register
// readiness, energy and activity accounting.
func (c *core) execute(u *Uop, now uint64, unit isa.Unit) {
	ch := c.mod.chip
	tpl := u.tpl
	lat := tpl.latency
	var extraPJ float64
	if tpl.isMem {
		c.lsq--
		lat, extraPJ = u.memLevel.latencyEnergy(ch.cfg)
	}
	cc := now + lat
	if tpl.dstIdx >= 0 {
		cc = c.busSlot(cc)
		c.complete(u.Seq+1, cc)
	}
	// Toggle-scaled execution energy. The expression keeps the
	// interpreter's exact shape — only 1-ToggleFraction is folded at
	// template compile, which is the same subtraction on the same
	// operands.
	frac := 0.7*isa.ToggleFractionOf(c.lastSrc[unit], u.SrcA) +
		0.3*isa.ToggleFractionOf(c.lastRes[unit], u.Result)
	c.lastSrc[unit], c.lastRes[unit] = u.SrcA, u.Result
	eff := tpl.energyPJ * (tpl.oneMinusTF + tpl.toggleTF*frac)
	ch.res.EnergyPJ += eff + ch.pm.SchedPJPerIssue + extraPJ
	ch.res.UnitIssues[unit]++
	c.retired++
	c.activeNow = true
}

// busSlot books a register-file write port at or after cycle cc.
func (c *core) busSlot(cc uint64) uint64 {
	h := uint64(len(c.busUsed))
	max := c.mod.chip.cfg.ResultBuses
	for {
		s := cc % h
		if c.busCycle[s] != cc {
			c.busCycle[s] = cc
			c.busUsed[s] = 0
		}
		if int(c.busUsed[s]) < max {
			c.busUsed[s]++
			return cc
		}
		cc++
	}
}

// ---- floating-point cluster ----

func (m *module) issueFP(now uint64) {
	cfg := m.chip.cfg
	if cfg.SharedFPU {
		budget := cfg.NumFPPipes
		if t := m.chip.throttle; t > 0 && t < budget {
			budget = t
		}
		// Token-based round-robin among sibling threads: the token
		// holder gets first pick each cycle.
		n := len(m.cores)
		for issued := true; budget > 0 && issued; {
			issued = false
			for k := 0; k < n && budget > 0; k++ {
				c := m.cores[(m.fpToken+k)%n]
				if c.issueOneFP(now) {
					budget--
					issued = true
				}
			}
		}
		m.fpToken = (m.fpToken + 1) % n
		return
	}
	// Private FPUs: per-core budget, per-core throttle.
	for _, c := range m.cores {
		budget := cfg.NumFPPipes
		if t := m.chip.throttle; t > 0 && t < budget {
			budget = t
		}
		for budget > 0 && c.issueOneFP(now) {
			budget--
		}
	}
}

// issueOneFP issues the oldest ready FP uop on the core, if any.
func (c *core) issueOneFP(now uint64) bool {
	for i := 0; i < len(c.fpQ); i++ {
		u := &c.fpQ[i].u
		if !c.depsReady(&c.fpQ[i].deps, now) {
			continue
		}
		c.executeFP(u, now)
		c.fpQ = append(c.fpQ[:i], c.fpQ[i+1:]...)
		return true
	}
	return false
}

// complete records a writer's result-available cycle, unless its ring
// slot was reclaimed by a newer writer.
func (c *core) complete(tag, cc uint64) {
	s := tag % ringK
	if c.ringTag[s] == tag {
		c.readyRing[s] = cc
	}
}

func (c *core) executeFP(u *Uop, now uint64) {
	ch := c.mod.chip
	m := c.mod
	tpl := u.tpl
	cc := now + tpl.latency
	if tpl.dstIdx >= 0 {
		cc = c.busSlot(cc)
		c.complete(u.Seq+1, cc)
	}
	frac := 0.7*isa.ToggleFractionOf(m.fpLastSrc, u.SrcA) +
		0.3*isa.ToggleFractionOf(m.fpLastRes, u.Result)
	m.fpLastSrc, m.fpLastRes = u.SrcA, u.Result
	eff := tpl.energyPJ * (tpl.oneMinusTF + tpl.toggleTF*frac)
	ch.res.EnergyPJ += eff + ch.pm.SchedPJPerIssue
	ch.res.UnitIssues[isa.UnitFPU]++
	m.fpIssued = true
	c.retired++
	c.activeNow = true
}

// ---- memory hierarchy ----

type memLevel int

const (
	levelL1 memLevel = iota + 1
	levelL2
	levelL3
	levelMem
)

func (l memLevel) latencyEnergy(cfg uarch.ChipConfig) (uint64, float64) {
	switch l {
	case levelL1:
		return uint64(cfg.L1Lat), 0
	case levelL2:
		return uint64(cfg.L2Lat), 45
	case levelL3:
		return uint64(cfg.L3Lat), 110
	default:
		return uint64(cfg.MemLat), 260
	}
}

func (ch *Chip) memAccess(c *core, addr uint64) memLevel {
	if c.l1.Access(addr) {
		return levelL1
	}
	if c.mod.l2.Access(addr) {
		return levelL2
	}
	if ch.l3.Access(addr) {
		return levelL3
	}
	return levelMem
}

// ---- barriers ----

// releaseBarriers frees every barrier on which all live participants
// wait. The release signal reaches cores at staggered times, modelling
// delivery from different levels of the memory hierarchy — the natural
// misalignment the paper observed dampening the barrier stressmark
// (§5.A.1).
func (ch *Chip) releaseBarriers(now uint64) {
	if ch.waitingCores == 0 {
		return
	}
	// Participants: every attached core whose thread is not done or is
	// currently waiting. The scratch buffer is chip-owned so the hot
	// loop never allocates.
	participants := ch.partsScratch[:0]
	for _, m := range ch.modules {
		for _, c := range m.cores {
			if c.th != nil && (c.waitBarrier >= 0 || !c.th.Done() || len(c.intQ) > 0 || len(c.fpQ) > 0) {
				participants = append(participants, c)
			}
		}
	}
	ch.partsScratch = participants[:0]
	for bi := range ch.barriers {
		b := &ch.barriers[bi]
		if b.count == 0 {
			continue
		}
		all := len(participants) > 0
		for _, c := range participants {
			if !b.waiting[c.gidx] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		rank := 0
		for _, c := range participants {
			// First releasee sees L1-ish latency, later ones progressively
			// farther levels.
			skew := uint64(ch.cfg.L1Lat + rank*(ch.cfg.L2Lat-ch.cfg.L1Lat)/2)
			c.stallUntil = now + skew
			c.waitBarrier = -1
			rank++
		}
		ch.waitingCores -= b.count
		b.count = 0
		for i := range b.waiting {
			b.waiting[i] = false
		}
	}
}
