package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/uarch"
)

// satFMABody emits n FMAs with distinct destination accumulators
// (xmm0..xmm11) and read-only sources (xmm12..xmm15), so throughput is
// bound by the FP pipes rather than dependency chains.
func satFMABody(b *asm.Builder, n int) {
	for i := 0; i < n; i++ {
		b.RRR("vfmadd132pd", isa.XMM(i%12), isa.XMM(12+(i%2)), isa.XMM(14+(i%2)))
	}
}

// loopProgram builds: movimm rcx,N ; loop: <body> ; dec rcx ; jnz loop.
func loopProgram(t *testing.T, name string, iters int64, body func(b *asm.Builder)) *asm.Program {
	t.Helper()
	b := asm.NewBuilder(name)
	b.InitToggle(16, 8)
	b.RI("movimm", isa.RCX, iters)
	b.Label("loop")
	body(b)
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runSingle runs one thread on module 0 core 0 until done, returning
// cycles and total energy.
func runSingle(t *testing.T, cfg uarch.ChipConfig, p *asm.Program) (uint64, float64) {
	t.Helper()
	ch, err := NewChip(cfg, power.BulldozerModel())
	if err != nil {
		t.Fatal(err)
	}
	th, err := NewThread(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Attach(0, 0, th); err != nil {
		t.Fatal(err)
	}
	var energy float64
	for i := 0; i < 10_000_000 && !ch.Done(); i++ {
		r := ch.Step()
		energy += r.EnergyPJ
	}
	if !ch.Done() {
		t.Fatal("chip did not finish")
	}
	return ch.Cycle(), energy
}

func TestThreadFunctionalLoop(t *testing.T) {
	p := asm.NewBuilder("count").
		RI("movimm", isa.RAX, 0).
		RI("movimm", isa.RDX, 3).
		RI("movimm", isa.RCX, 10).
		Label("loop").
		RR("add", isa.RAX, isa.RDX).
		RR("dec", isa.RCX, isa.RCX).
		Branch("jnz", "loop").
		MustBuild()
	th, err := NewThread(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok := th.Peek()
		if !ok {
			break
		}
		th.Consume()
		n++
	}
	if n != 3+3*10 {
		t.Errorf("dynamic instructions = %d, want 33", n)
	}
	v, err := th.Reg(isa.RAX)
	if err != nil {
		t.Fatal(err)
	}
	if v.Lo != 30 {
		t.Errorf("rax = %d, want 30", v.Lo)
	}
	if c, _ := th.Reg(isa.RCX); c.Lo != 0 {
		t.Errorf("rcx = %d, want 0", c.Lo)
	}
}

func TestThreadMemoryRoundTrip(t *testing.T) {
	p := asm.NewBuilder("mem").
		RI("movimm", isa.RBP, 0).
		RI("movimm", isa.RAX, 0xDEADBEEF).
		Store("store", isa.RBP, 64, isa.RAX).
		Load("load", isa.RDX, isa.RBP, 64).
		MustBuild()
	th, err := NewThread(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := th.Peek(); !ok {
			break
		}
		th.Consume()
	}
	v, _ := th.Reg(isa.RDX)
	if v.Lo != 0xDEADBEEF {
		t.Errorf("loaded %#x", v.Lo)
	}
}

func TestThreadMaxInstrs(t *testing.T) {
	p := loopProgram(t, "inf", 1<<40, func(b *asm.Builder) { b.Nop(1) })
	th, err := NewThread(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := th.Peek(); !ok {
			break
		}
		th.Consume()
		n++
	}
	if n != 100 {
		t.Errorf("bounded thread ran %d instrs", n)
	}
}

func TestCacheBasics(t *testing.T) {
	c, err := NewCache(1024, 2, 64) // 8 sets × 2 ways
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("warm access missed")
	}
	// Fill both ways of set 0, then evict LRU.
	c.Access(0)       // way A most recent
	c.Access(8 * 64)  // same set, way B (sets=8 → stride 512)
	c.Access(16 * 64) // evicts line 0? LRU is line 0? order: 0 (recent), 512, then 1024 evicts 0
	if c.Access(8*64) == false {
		t.Error("recently used line evicted")
	}
	if c.Access(0) {
		t.Error("LRU line survived eviction")
	}
	h, m := c.Stats()
	if h == 0 || m == 0 {
		t.Errorf("stats: %d hits %d misses", h, m)
	}
	c.Reset()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("reset did not clear stats")
	}
}

func TestCacheGeometryErrors(t *testing.T) {
	if _, err := NewCache(1024, 2, 48); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := NewCache(64, 4, 64); err == nil {
		t.Error("cache smaller than associativity accepted")
	}
	if _, err := NewCache(0, 1, 64); err == nil {
		t.Error("zero size accepted")
	}
}

func TestNOPLoopDecodesFullWidth(t *testing.T) {
	cfg := uarch.Bulldozer()
	iters := int64(2000)
	// 10 NOPs + dec + jnz = 12 instructions per iteration.
	p := loopProgram(t, "nops", iters, func(b *asm.Builder) { b.Nop(10) })
	cycles, _ := runSingle(t, cfg, p)
	ipc := float64(12*iters) / float64(cycles)
	// Decode width 4 is the only limit for NOPs.
	if ipc < 3.0 {
		t.Errorf("NOP loop IPC = %.2f, want near 4", ipc)
	}
}

func TestDependentChainIPCOne(t *testing.T) {
	cfg := uarch.Bulldozer()
	iters := int64(500)
	p := loopProgram(t, "chain", iters, func(b *asm.Builder) {
		// 8 dependent adds: each reads the previous result.
		for i := 0; i < 8; i++ {
			b.RR("add", isa.RAX, isa.RAX)
		}
	})
	cycles, _ := runSingle(t, cfg, p)
	ipc := float64(10*iters) / float64(cycles)
	if ipc > 1.5 {
		t.Errorf("dependent chain IPC = %.2f, want ≈ 1", ipc)
	}
}

func TestIndependentAddsLimitedByALUs(t *testing.T) {
	cfg := uarch.Bulldozer() // 1 general ALU pipe
	iters := int64(2000)
	p := loopProgram(t, "adds", iters, func(b *asm.Builder) {
		// 8 independent adds across distinct registers.
		for i := 0; i < 8; i++ {
			b.RR("add", isa.GPR(6+(i%8)), isa.GPR(6+((i+1)%8)))
		}
	})
	cycles, _ := runSingle(t, cfg, p)
	totalOps := float64(10 * iters)
	ipc := totalOps / float64(cycles)
	// ALU ops dominate: 9 ALU ops per iteration through one ALU pipe
	// floors the loop near 9 cycles (+branch overlap) → IPC ≈ 1.1.
	if ipc > 1.5 {
		t.Errorf("independent ALU IPC = %.2f, should be capped near 1.1 by the ALU", ipc)
	}
	if ipc < 0.8 {
		t.Errorf("independent ALU IPC = %.2f, suspiciously low", ipc)
	}
}

// This is the mechanism behind the paper's NOP ablation (§5.A.5):
// replacing NOPs with ADDs lengthens the loop because ADDs contend for
// ALUs and result buses while NOPs cost only decode slots.
func TestNopsCheaperThanAddsInLoopDuration(t *testing.T) {
	cfg := uarch.Bulldozer()
	iters := int64(1500)
	// No FP ops here: the loop-carried FMA latency would floor both
	// variants. The pure front-end-vs-ALU contrast is the mechanism.
	mixed := loopProgram(t, "nops", iters, func(b *asm.Builder) {
		b.Nop(8)
	})
	dense := loopProgram(t, "adds", iters, func(b *asm.Builder) {
		for i := 0; i < 8; i++ {
			b.RR("add", isa.GPR(6+(i%8)), isa.GPR(6+((i+3)%8)))
		}
	})
	cNop, _ := runSingle(t, cfg, mixed)
	cAdd, _ := runSingle(t, cfg, dense)
	if cAdd <= cNop {
		t.Errorf("ADD-dense loop (%d cycles) should be longer than NOP loop (%d cycles)", cAdd, cNop)
	}
}

func TestFPPipesLimitFMAThroughput(t *testing.T) {
	cfg := uarch.Bulldozer() // 2 FP pipes per module
	iters := int64(1500)
	p := loopProgram(t, "fmas", iters, func(b *asm.Builder) { satFMABody(b, 12) })
	cycles, _ := runSingle(t, cfg, p)
	fpops := float64(12 * iters)
	fpPerCycle := fpops / float64(cycles)
	if fpPerCycle > 2.05 {
		t.Errorf("FP throughput %.2f/cycle exceeds 2 pipes", fpPerCycle)
	}
	if fpPerCycle < 1.5 {
		t.Errorf("FP throughput %.2f/cycle too low for independent FMAs", fpPerCycle)
	}
}

func TestSharedFPUInterference(t *testing.T) {
	cfg := uarch.Bulldozer()
	iters := int64(1200)
	mk := func() *asm.Program {
		return loopProgram(t, "fp", iters, func(b *asm.Builder) { satFMABody(b, 12) })
	}
	run := func(twoThreads bool) uint64 {
		ch, err := NewChip(cfg, power.BulldozerModel())
		if err != nil {
			t.Fatal(err)
		}
		th0, _ := NewThread(mk(), 0)
		if err := ch.Attach(0, 0, th0); err != nil {
			t.Fatal(err)
		}
		if twoThreads {
			th1, _ := NewThread(mk(), 0)
			if err := ch.Attach(0, 1, th1); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 10_000_000 && !ch.Done(); i++ {
			ch.Step()
		}
		return ch.Cycle()
	}
	solo := run(false)
	shared := run(true)
	// Two FP-heavy siblings share 2 pipes: each should take much longer
	// than running alone — at least 1.5× (ideal contention would be 2×).
	if float64(shared) < 1.5*float64(solo) {
		t.Errorf("sibling FP interference too weak: solo %d cycles, shared %d", solo, shared)
	}
}

func TestFPThrottleLimitsThroughput(t *testing.T) {
	cfg := uarch.Bulldozer()
	iters := int64(1200)
	p := loopProgram(t, "fp", iters, func(b *asm.Builder) { satFMABody(b, 12) })
	base, _ := runSingle(t, cfg, p)
	cfgTh := cfg
	cfgTh.FPThrottleLimit = 1
	throttled, _ := runSingle(t, cfgTh, p)
	if float64(throttled) < 1.6*float64(base) {
		t.Errorf("FP throttle should roughly halve throughput: %d vs %d cycles", base, throttled)
	}
}

func TestEnergySwingBetweenNOPAndFMALoops(t *testing.T) {
	cfg := uarch.Bulldozer()
	iters := int64(800)
	nops := loopProgram(t, "lp", iters, func(b *asm.Builder) { b.Nop(8) })
	fmas := loopProgram(t, "hp", iters, func(b *asm.Builder) {
		satFMABody(b, 8)
		b.RR("add", isa.RSI, isa.RDI)
		b.RR("xor", isa.GPR(8), isa.GPR(9))
	})
	cN, eN := runSingle(t, cfg, nops)
	cF, eF := runSingle(t, cfg, fmas)
	pN := eN / float64(cN) // pJ/cycle
	pF := eF / float64(cF)
	// The chip-wide baseline includes three idle modules, so require a
	// healthy ratio plus an absolute per-module swing.
	if pF < 1.3*pN || pF-pN < 500 {
		t.Errorf("high-power loop %.0f pJ/cyc vs low-power %.0f pJ/cyc: swing too small for di/dt stress", pF, pN)
	}
}

func TestLoadMissesSlowLargeFootprint(t *testing.T) {
	cfg := uarch.Bulldozer()
	iters := int64(400)
	small := asm.NewBuilder("small").SetMem(4 << 10)
	big := asm.NewBuilder("big").SetMem(16 << 20) // larger than L2
	for _, b := range []*asm.Builder{small, big} {
		b.RI("movimm", isa.RBP, 0)
		b.RI("movimm", isa.RCX, int64(iters))
		b.Label("loop")
		for i := 0; i < 4; i++ {
			b.Load("load", isa.GPR(8+i), isa.RBP, int32(i)*64)
			b.RR("add", isa.RSI, isa.GPR(8+i))
		}
		// Stride a few KB per iteration so the big footprint misses.
		b.Load("lea", isa.RBP, isa.RBP, 4096)
		b.RR("dec", isa.RCX, isa.RCX)
		b.Branch("jnz", "loop")
	}
	cs, _ := runSingle(t, cfg, small.MustBuild())
	cb, _ := runSingle(t, cfg, big.MustBuild())
	if float64(cb) < 1.5*float64(cs) {
		t.Errorf("large-footprint loads should be much slower: %d vs %d cycles", cb, cs)
	}
}

func TestMispredictPenalty(t *testing.T) {
	cfg := uarch.Bulldozer()
	iters := int64(800)
	// A forward branch that is always taken: static predictor says
	// not-taken → mispredict every iteration.
	b := asm.NewBuilder("mispredict")
	b.RI("movimm", isa.RCX, iters)
	b.RI("movimm", isa.RAX, 1)
	b.Label("loop")
	b.RR("or", isa.RAX, isa.RAX) // sets flags, rax != 0
	b.Branch("jnz", "skip")      // forward, always taken → mispredicted
	b.Nop(1)
	b.Label("skip")
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	pm := b.MustBuild()

	// Same loop without the forward branch.
	b2 := asm.NewBuilder("clean")
	b2.RI("movimm", isa.RCX, iters)
	b2.RI("movimm", isa.RAX, 1)
	b2.Label("loop")
	b2.RR("or", isa.RAX, isa.RAX)
	b2.RR("dec", isa.RCX, isa.RCX)
	b2.Branch("jnz", "loop")
	pc := b2.MustBuild()

	cm, _ := runSingle(t, cfg, pm)
	cc, _ := runSingle(t, cfg, pc)
	perIter := (float64(cm) - float64(cc)) / float64(iters)
	if perIter < float64(cfg.BranchPenalty)*0.7 {
		t.Errorf("mispredict cost %.1f cycles/iter, want ≈ %d", perIter, cfg.BranchPenalty)
	}
}

func TestInjectStallDelaysCompletion(t *testing.T) {
	cfg := uarch.Bulldozer()
	p := loopProgram(t, "l", 500, func(b *asm.Builder) { b.Nop(4) })
	run := func(stall uint64) uint64 {
		ch, _ := NewChip(cfg, power.BulldozerModel())
		th, _ := NewThread(p, 0)
		if err := ch.Attach(1, 0, th); err != nil {
			t.Fatal(err)
		}
		stalled := false
		for i := 0; i < 10_000_000 && !ch.Done(); i++ {
			if !stalled && ch.Cycle() == 100 && stall > 0 {
				if err := ch.InjectStall(cfg.CoresPerModule*1+0, stall); err != nil {
					t.Fatal(err)
				}
				stalled = true
			}
			ch.Step()
		}
		return ch.Cycle()
	}
	base := run(0)
	delayed := run(200)
	diff := int64(delayed) - int64(base)
	if diff < 180 || diff > 220 {
		t.Errorf("stall of 200 shifted completion by %d cycles", diff)
	}
}

func TestBarrierReleasesWithSkew(t *testing.T) {
	cfg := uarch.Bulldozer()
	mk := func() *asm.Program {
		b := asm.NewBuilder("bar")
		b.RI("movimm", isa.RCX, 50)
		b.Label("loop")
		b.Nop(2)
		b.Barrier(7)
		b.RR("dec", isa.RCX, isa.RCX)
		b.Branch("jnz", "loop")
		return b.MustBuild()
	}
	ch, _ := NewChip(cfg, power.BulldozerModel())
	for m := 0; m < 4; m++ {
		th, _ := NewThread(mk(), 0)
		if err := ch.Attach(m, 0, th); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10_000_000 && !ch.Done(); i++ {
		ch.Step()
	}
	if !ch.Done() {
		t.Fatal("barrier program deadlocked")
	}
}

func TestBarrierMismatchedThreadCountsStillComplete(t *testing.T) {
	// One thread has no barrier and finishes; the remaining three must
	// still release once the finished thread is excluded.
	cfg := uarch.Bulldozer()
	bar := asm.NewBuilder("bar").Nop(4).Barrier(1).Nop(4).MustBuild()
	plain := asm.NewBuilder("plain").Nop(2).MustBuild()
	ch, _ := NewChip(cfg, power.BulldozerModel())
	for m := 0; m < 3; m++ {
		th, _ := NewThread(bar, 0)
		if err := ch.Attach(m, 0, th); err != nil {
			t.Fatal(err)
		}
	}
	th, _ := NewThread(plain, 0)
	if err := ch.Attach(3, 0, th); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000_000 && !ch.Done(); i++ {
		ch.Step()
	}
	if !ch.Done() {
		t.Fatal("deadlock with mixed barrier participation")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := uarch.Bulldozer()
	p := loopProgram(t, "d", 600, func(b *asm.Builder) {
		b.RRR("vfmadd132pd", isa.XMM(0), isa.XMM(1), isa.XMM(2))
		b.RR("mulpd", isa.XMM(3), isa.XMM(4))
		b.Load("load", isa.RAX, isa.RBP, 16)
		b.Nop(3)
	})
	c1, e1 := runSingle(t, cfg, p)
	c2, e2 := runSingle(t, cfg, p)
	if c1 != c2 || e1 != e2 {
		t.Errorf("nondeterministic: (%d,%.3f) vs (%d,%.3f)", c1, e1, c2, e2)
	}
}

func TestAttachErrors(t *testing.T) {
	cfg := uarch.Bulldozer()
	ch, _ := NewChip(cfg, power.BulldozerModel())
	p := asm.NewBuilder("x").Nop(1).MustBuild()
	th, _ := NewThread(p, 0)
	if err := ch.Attach(9, 0, th); err == nil {
		t.Error("bad module accepted")
	}
	if err := ch.Attach(0, 9, th); err == nil {
		t.Error("bad core accepted")
	}
	if err := ch.Attach(0, 0, th); err != nil {
		t.Fatal(err)
	}
	th2, _ := NewThread(p, 0)
	if err := ch.Attach(0, 0, th2); err == nil {
		t.Error("double attach accepted")
	}
}

func TestPhenomConfigRuns(t *testing.T) {
	cfg := uarch.Phenom()
	p := loopProgram(t, "p", 500, func(b *asm.Builder) {
		b.RR("mulpd", isa.XMM(0), isa.XMM(1))
		b.RR("add", isa.RSI, isa.RDI)
		b.Nop(2)
	})
	ch, err := NewChip(cfg, power.PhenomModel())
	if err != nil {
		t.Fatal(err)
	}
	th, _ := NewThread(p, 0)
	if err := ch.Attach(0, 0, th); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000_000 && !ch.Done(); i++ {
		ch.Step()
	}
	if !ch.Done() {
		t.Fatal("phenom run did not finish")
	}
}

func TestUnitIssueCountsReported(t *testing.T) {
	cfg := uarch.Bulldozer()
	p := loopProgram(t, "u", 300, func(b *asm.Builder) {
		b.RRR("vfmadd132pd", isa.XMM(0), isa.XMM(1), isa.XMM(2))
		b.RR("add", isa.RSI, isa.RDI)
		b.Load("load", isa.RAX, isa.RBP, 0)
	})
	ch, _ := NewChip(cfg, power.BulldozerModel())
	th, _ := NewThread(p, 0)
	if err := ch.Attach(0, 0, th); err != nil {
		t.Fatal(err)
	}
	var units [isa.NumUnits]int
	for i := 0; i < 1_000_000 && !ch.Done(); i++ {
		r := ch.Step()
		for u := 0; u < int(isa.NumUnits); u++ {
			units[u] += r.UnitIssues[u]
		}
	}
	if units[isa.UnitFPU] != 300 {
		t.Errorf("FPU issues = %d, want 300", units[isa.UnitFPU])
	}
	if units[isa.UnitLSU] != 300 {
		t.Errorf("LSU issues = %d, want 300", units[isa.UnitLSU])
	}
	if units[isa.UnitALU] < 600 {
		t.Errorf("ALU issues = %d, want ≥ 600 (adds + decs)", units[isa.UnitALU])
	}
	if units[isa.UnitBranch] != 300 {
		t.Errorf("branch issues = %d, want 300", units[isa.UnitBranch])
	}
}

func BenchmarkChipCycleThroughput(b *testing.B) {
	cfg := uarch.Bulldozer()
	bb := asm.NewBuilder("bench")
	bb.InitToggle(16, 8)
	bb.RI("movimm", isa.RCX, 1<<40)
	bb.Label("loop")
	for i := 0; i < 4; i++ {
		bb.RRR("vfmadd132pd", isa.XMM(2*(i%4)), isa.XMM(2*(i%4)+1), isa.XMM(8+(i%4)))
	}
	bb.Nop(6)
	bb.RR("dec", isa.RCX, isa.RCX)
	bb.Branch("jnz", "loop")
	p := bb.MustBuild()
	ch, err := NewChip(cfg, power.BulldozerModel())
	if err != nil {
		b.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		th, _ := NewThread(p, 0)
		if err := ch.Attach(m, 0, th); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Step()
	}
}

func TestGshareLearnsAlwaysTakenForwardBranch(t *testing.T) {
	// A forward branch that is always taken defeats the static
	// predictor on every iteration; gshare's counters learn it after a
	// handful of iterations.
	build := func() *asm.Program {
		b := asm.NewBuilder("fwd")
		b.RI("movimm", isa.RCX, 600)
		b.RI("movimm", isa.RAX, 1)
		b.Label("loop")
		b.RR("or", isa.RAX, isa.RAX)
		b.Branch("jnz", "skip")
		b.Nop(1)
		b.Label("skip")
		b.RR("dec", isa.RCX, isa.RCX)
		b.Branch("jnz", "loop")
		return b.MustBuild()
	}
	run := func(predictor string) (uint64, Stats) {
		cfg := uarch.Bulldozer()
		cfg.Predictor = predictor
		ch, err := NewChip(cfg, power.BulldozerModel())
		if err != nil {
			t.Fatal(err)
		}
		th, _ := NewThread(build(), 0)
		if err := ch.Attach(0, 0, th); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1_000_000 && !ch.Done(); i++ {
			ch.Step()
		}
		return ch.Cycle(), ch.Stats()
	}
	staticCycles, staticStats := run("static")
	gshareCycles, gshareStats := run("gshare")
	if staticStats.Mispredicts < 500 {
		t.Errorf("static should mispredict every forward-taken: %d", staticStats.Mispredicts)
	}
	if gshareStats.Mispredicts > staticStats.Mispredicts/4 {
		t.Errorf("gshare mispredicts %d, want far below static %d",
			gshareStats.Mispredicts, staticStats.Mispredicts)
	}
	if gshareCycles >= staticCycles {
		t.Errorf("gshare run (%d cycles) should beat static (%d)", gshareCycles, staticCycles)
	}
}

func TestStatsCountCaches(t *testing.T) {
	cfg := uarch.Bulldozer()
	p := loopProgram(t, "ld", 300, func(b *asm.Builder) {
		b.Load("load", isa.RAX, isa.RBP, 0)
	})
	ch, _ := NewChip(cfg, power.BulldozerModel())
	th, _ := NewThread(p, 0)
	if err := ch.Attach(0, 0, th); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000_000 && !ch.Done(); i++ {
		ch.Step()
	}
	s := ch.Stats()
	if s.L1Hits == 0 {
		t.Error("no L1 hits recorded for a hot load loop")
	}
	if s.L1Misses == 0 {
		t.Error("cold misses should be recorded")
	}
	if s.Branches != 300 {
		t.Errorf("branches = %d, want 300", s.Branches)
	}
}

func TestBadPredictorRejected(t *testing.T) {
	cfg := uarch.Bulldozer()
	cfg.Predictor = "oracle"
	if _, err := NewChip(cfg, power.BulldozerModel()); err == nil {
		t.Error("unknown predictor accepted")
	}
}

// BenchmarkCaptureHotLoop is the capture-side acceptance benchmark: one
// Chip.Step per iteration on a fully-populated Bulldozer chip running a
// representative stressmark mix (FP pipes, integer cluster, loads and
// stores, a barrier). One op is one simulated cycle, so cycles/sec =
// 1e9 / (ns/op); the steady-state allocation bar is 0 allocs/op.
func BenchmarkCaptureHotLoop(b *testing.B) {
	cfg := uarch.Bulldozer()
	bb := asm.NewBuilder("capture-bench")
	bb.SetMem(1 << 14)
	bb.InitToggle(16, 8)
	bb.RI("movimm", isa.RCX, 1<<40)
	bb.Label("loop")
	bb.RRR("vfmadd132pd", isa.XMM(0), isa.XMM(1), isa.XMM(8))
	bb.RRR("mulpd", isa.XMM(2), isa.XMM(3), isa.XMM(9))
	bb.RR("imul", isa.RAX, isa.RDX)
	bb.Load("load", isa.RBX, isa.RBP, 64)
	bb.Store("store", isa.RBP, 192, isa.RBX)
	bb.RR("popcnt", isa.RSI, isa.RAX)
	bb.Barrier(3)
	bb.RR("dec", isa.RCX, isa.RCX)
	bb.Branch("jnz", "loop")
	p := bb.MustBuild()
	ch, err := NewChip(cfg, power.BulldozerModel())
	if err != nil {
		b.Fatal(err)
	}
	for m := 0; m < cfg.Modules; m++ {
		for c := 0; c < cfg.CoresPerModule; c++ {
			th, err := NewThread(p, 0)
			if err != nil {
				b.Fatal(err)
			}
			if err := ch.Attach(m, c, th); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
}
