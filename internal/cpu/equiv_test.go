package cpu

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/uarch"
)

// This file pins the capture path bit-for-bit. The golden hashes below
// were recorded from the per-dynamic-instance interpreter that predates
// the pre-decoded uop templates; the template path must reproduce every
// per-cycle EnergyPJ bit pattern, unit-issue vector, decode count and
// StateFingerprint, plus the final Stats, exactly. Regenerate (only
// when a scenario itself changes, never to paper over a diff) with:
//
//	AUDIT_GOLDEN_REGEN=1 go test -run TestGoldenCaptureEquivalence -v ./internal/cpu/
//

// captureHash steps the chip up to maxCycles (or Done) and folds every
// observable of the capture loop into one FNV-1a hash: the per-cycle
// fingerprint, the raw float64 bits of EnergyPJ, the unit-issue vector,
// the decode count, and the final Stats and retired count.
func captureHash(ch *Chip, maxCycles int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	for i := 0; i < maxCycles && !ch.Done(); i++ {
		r := ch.Step()
		mix(ch.StateFingerprint())
		mix(math.Float64bits(r.EnergyPJ))
		for _, n := range r.UnitIssues {
			mix(uint64(n))
		}
		mix(uint64(r.Decoded))
	}
	s := ch.Stats()
	for _, v := range []uint64{
		s.Branches, s.Mispredicts,
		s.L1Hits, s.L1Misses, s.L2Hits, s.L2Misses, s.L3Hits, s.L3Misses,
		ch.Retired(), ch.Cycle(),
	} {
		mix(v)
	}
	return h
}

// equivScenario is one deterministic chip setup exercised by the golden
// test. setup returns a chip with threads attached and any stalls or
// throttles applied.
type equivScenario struct {
	name   string
	cycles int
	setup  func(t *testing.T) *Chip
}

func mustProgram(t *testing.T, name string, body func(b *asm.Builder)) *asm.Program {
	t.Helper()
	b := asm.NewBuilder(name)
	body(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// attachAll places prog on every hardware thread of the chip.
func attachAll(t *testing.T, ch *Chip, prog *asm.Program, maxInstrs uint64) {
	t.Helper()
	cfg := ch.Config()
	for m := 0; m < cfg.Modules; m++ {
		for c := 0; c < cfg.CoresPerModule; c++ {
			th, err := NewThread(prog, maxInstrs)
			if err != nil {
				t.Fatal(err)
			}
			th.SetGlobalBase(uint64(m*cfg.CoresPerModule+c) * 64)
			if err := ch.Attach(m, c, th); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func equivScenarios() []equivScenario {
	return []equivScenario{
		{name: "fma-loop", cycles: 4000, setup: func(t *testing.T) *Chip {
			prog := mustProgram(t, "fma", func(b *asm.Builder) {
				b.InitToggle(16, 8)
				b.RI("movimm", isa.RCX, 1<<30)
				b.Label("loop")
				for i := 0; i < 4; i++ {
					b.RRR("vfmadd132pd", isa.XMM(i%12), isa.XMM(12+(i%2)), isa.XMM(14+(i%2)))
				}
				b.Nop(6)
				b.RR("dec", isa.RCX, isa.RCX)
				b.Branch("jnz", "loop")
			})
			ch, err := NewChip(uarch.Bulldozer(), power.BulldozerModel())
			if err != nil {
				t.Fatal(err)
			}
			attachAll(t, ch, prog, 0)
			return ch
		}},
		{name: "int-mix", cycles: 4000, setup: func(t *testing.T) *Chip {
			prog := mustProgram(t, "intmix", func(b *asm.Builder) {
				b.InitToggle(16, 8)
				b.RI("movimm", isa.RCX, 1<<30)
				b.RI("movimm", isa.RAX, 0x0123456789ABCDEF)
				b.RI("movimm", isa.RDX, 97)
				b.Label("loop")
				b.RR("imul", isa.RAX, isa.RDX)
				b.RR("popcnt", isa.RBX, isa.RAX)
				b.RI("shl", isa.RSI, 3)
				b.RI("rol", isa.RDI, 11)
				b.RR("idiv", isa.GPR(8), isa.RDX)
				b.Load("lea", isa.GPR(9), isa.RAX, 24)
				b.RR("xor", isa.GPR(10), isa.RAX)
				b.RR("dec", isa.RCX, isa.RCX)
				b.Branch("jnz", "loop")
			})
			ch, err := NewChip(uarch.Bulldozer(), power.BulldozerModel())
			if err != nil {
				t.Fatal(err)
			}
			attachAll(t, ch, prog, 0)
			return ch
		}},
		{name: "mem-stride", cycles: 6000, setup: func(t *testing.T) *Chip {
			prog := mustProgram(t, "mem", func(b *asm.Builder) {
				b.SetMem(1 << 16)
				b.InitToggle(16, 8)
				b.RI("movimm", isa.RCX, 1<<30)
				b.RI("movimm", isa.RBP, 0)
				b.RI("movimm", isa.RDX, 1088)
				b.Label("loop")
				b.Load("load", isa.RAX, isa.RBP, 0)
				b.Load("loadx", isa.XMM(0), isa.RBP, 4096)
				b.Store("store", isa.RBP, 128, isa.RAX)
				b.Store("storex", isa.RBP, 8192, isa.XMM(1))
				b.RR("add", isa.RBP, isa.RDX)
				b.RR("dec", isa.RCX, isa.RCX)
				b.Branch("jnz", "loop")
			})
			ch, err := NewChip(uarch.Bulldozer(), power.BulldozerModel())
			if err != nil {
				t.Fatal(err)
			}
			attachAll(t, ch, prog, 0)
			return ch
		}},
		{name: "barrier-sync", cycles: 6000, setup: func(t *testing.T) *Chip {
			prog := mustProgram(t, "barrier", func(b *asm.Builder) {
				b.InitToggle(16, 8)
				b.RI("movimm", isa.RCX, 1<<30)
				b.Label("loop")
				b.RR("add", isa.RAX, isa.RDX)
				b.Barrier(7)
				b.RRR("mulpd", isa.XMM(2), isa.XMM(3), isa.XMM(4))
				b.Barrier(9)
				b.RR("dec", isa.RCX, isa.RCX)
				b.Branch("jnz", "loop")
			})
			ch, err := NewChip(uarch.Bulldozer(), power.BulldozerModel())
			if err != nil {
				t.Fatal(err)
			}
			attachAll(t, ch, prog, 0)
			return ch
		}},
		{name: "throttled-skewed", cycles: 5000, setup: func(t *testing.T) *Chip {
			prog := mustProgram(t, "mixed", func(b *asm.Builder) {
				b.SetMem(1 << 14)
				b.InitToggle(16, 8)
				b.RI("movimm", isa.RCX, 1<<30)
				b.Label("loop")
				b.RRR("addpd", isa.XMM(0), isa.XMM(1), isa.XMM(2))
				b.RRR("divsd", isa.XMM(3), isa.XMM(4), isa.XMM(5))
				b.RR("movaps", isa.XMM(6), isa.XMM(0))
				b.Load("load", isa.RAX, isa.RBP, 64)
				b.RR("imul", isa.RDX, isa.RAX)
				b.RRR("paddd", isa.XMM(7), isa.XMM(8), isa.XMM(9))
				b.RR("dec", isa.RCX, isa.RCX)
				b.Branch("jnz", "loop")
			})
			ch, err := NewChip(uarch.Bulldozer(), power.BulldozerModel())
			if err != nil {
				t.Fatal(err)
			}
			attachAll(t, ch, prog, 0)
			ch.SetFPThrottle(2)
			for g := 0; g < 8; g++ {
				if err := ch.InjectStall(g, uint64(3*g)); err != nil {
					t.Fatal(err)
				}
			}
			return ch
		}},
		{name: "phenom-mixed", cycles: 4000, setup: func(t *testing.T) *Chip {
			prog := mustProgram(t, "phmix", func(b *asm.Builder) {
				b.InitToggle(16, 8)
				b.RI("movimm", isa.RCX, 1<<30)
				b.Label("loop")
				b.RRR("addsd", isa.XMM(0), isa.XMM(1), isa.XMM(2))
				b.RRR("pmulld", isa.XMM(3), isa.XMM(4), isa.XMM(5))
				b.RRR("pxor", isa.XMM(6), isa.XMM(7), isa.XMM(8))
				b.RR("and", isa.RAX, isa.RDX)
				b.RR("or", isa.RBX, isa.RAX)
				b.RR("sub", isa.RSI, isa.RBX)
				b.RR("mov", isa.RDI, isa.RSI)
				b.RR("dec", isa.RCX, isa.RCX)
				b.Branch("jnz", "loop")
			})
			ch, err := NewChip(uarch.Phenom(), power.PhenomModel())
			if err != nil {
				t.Fatal(err)
			}
			attachAll(t, ch, prog, 0)
			return ch
		}},
	}
}

// goldenCaptureHashes holds the recorded hashes of the pre-template
// interpreter. See the file comment for how to regenerate.
var goldenCaptureHashes = map[string]uint64{
	"fma-loop":         0x2B330E2AC8843023,
	"int-mix":          0x607D83EFFEEC4531,
	"mem-stride":       0x7A78063C961DBB58,
	"barrier-sync":     0xE736DCA0FEACB251,
	"throttled-skewed": 0x7783EBDD33681FF1,
	"phenom-mixed":     0x2FFD049FC3961C39,
}

func TestGoldenCaptureEquivalence(t *testing.T) {
	regen := os.Getenv("AUDIT_GOLDEN_REGEN") != ""
	for _, sc := range equivScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			got := captureHash(sc.setup(t), sc.cycles)
			if regen {
				fmt.Printf("\t%q: 0x%016X,\n", sc.name, got)
				return
			}
			want, ok := goldenCaptureHashes[sc.name]
			if !ok {
				t.Fatalf("no golden hash recorded for scenario %q", sc.name)
			}
			if got != want {
				t.Errorf("capture hash = 0x%016X, want 0x%016X (capture path diverged from the reference interpreter)", got, want)
			}
		})
	}
}

// ---- randomized functional equivalence ----

// refThread is the pre-template reference interpreter, preserved here
// verbatim so randomized programs can hold the template-driven
// Thread.step to bit-identical uop streams.
type refThread struct {
	prog       *asm.Program
	pc         int
	regs       [isa.TotalRegs]isa.Value
	mem        []byte
	zeroFlag   bool
	globalBase uint64
	seq        uint64
	maxInstrs  uint64
	done       bool
}

type refUop struct {
	in         *isa.Instruction
	srcA       isa.Value
	result     isa.Value
	addr       uint64
	taken      bool
	backBranch bool
	barrierID  int64
	seq        uint64
}

func newRefThread(p *asm.Program, maxInstrs uint64) *refThread {
	memBytes := p.MemBytes
	if memBytes <= 0 {
		memBytes = 4096
	}
	memBytes = (memBytes + 15) &^ 15
	t := &refThread{prog: p, mem: make([]byte, memBytes), maxInstrs: maxInstrs}
	for r, v := range p.InitRegs {
		t.regs[r.FlatIndex()] = v
	}
	return t
}

func (t *refThread) load(addr uint64) isa.Value {
	if addr+16 <= uint64(len(t.mem)) {
		return isa.Value{
			Lo: binary.LittleEndian.Uint64(t.mem[addr:]),
			Hi: binary.LittleEndian.Uint64(t.mem[addr+8:]),
		}
	}
	return isa.Value{}
}

func (t *refThread) store(addr uint64, v isa.Value) {
	if addr+16 <= uint64(len(t.mem)) {
		binary.LittleEndian.PutUint64(t.mem[addr:], v.Lo)
		binary.LittleEndian.PutUint64(t.mem[addr+8:], v.Hi)
	}
}

func (t *refThread) branchTaken(in *isa.Instruction) bool {
	switch in.Op.Name {
	case "jmp":
		return true
	case "jnz":
		return !t.zeroFlag
	}
	return true
}

func (t *refThread) step() (refUop, bool) {
	if t.done || t.pc < 0 || t.pc >= len(t.prog.Code) ||
		(t.maxInstrs > 0 && t.seq >= t.maxInstrs) {
		t.done = true
		return refUop{}, false
	}
	in := &t.prog.Code[t.pc]
	u := refUop{in: in, barrierID: -1, seq: t.seq}
	t.seq++

	var localAddr uint64
	if in.MemBase.Valid() {
		localAddr = (t.regs[in.MemBase.FlatIndex()].Lo + uint64(int64(in.MemDisp))) % uint64(len(t.mem))
		localAddr &^= 15
		u.addr = t.globalBase + localAddr
	}

	var dstOld, src1, src2, memv isa.Value
	if in.Op.DstIsSrc && in.Dst.Valid() {
		dstOld = t.regs[in.Dst.FlatIndex()]
	}
	if in.Src1.Valid() {
		src1 = t.regs[in.Src1.FlatIndex()]
	}
	if in.Src2.Valid() {
		src2 = t.regs[in.Src2.FlatIndex()]
	}

	switch in.Op.Class {
	case isa.ClassLoad:
		memv = t.load(localAddr)
	case isa.ClassStore:
		t.store(localAddr, src1)
	case isa.ClassBarrier:
		u.barrierID = in.Imm
	}

	switch {
	case in.Src1.Valid():
		u.srcA = src1
	case in.Op.DstIsSrc && in.Dst.Valid():
		u.srcA = dstOld
	case in.Op.Class == isa.ClassLoad:
		u.srcA = memv
	}

	if in.Op.Class == isa.ClassBranch {
		u.taken = t.branchTaken(in)
		u.backBranch = in.Target <= t.pc
		if u.taken {
			t.pc = in.Target
		} else {
			t.pc++
		}
		return u, true
	}

	res := isa.Exec(in, dstOld, src1, src2, t.globalBase+localAddr, memv)
	u.result = res
	if d := in.Dest(); d.Valid() {
		t.regs[d.FlatIndex()] = res
		if d.Kind == isa.RegGPR && flagWriting(in.Op.Class) {
			t.zeroFlag = res.Lo == 0
		}
	}
	t.pc++
	return u, true
}

// randomLoopProgram builds a terminating random program: counter setup,
// a body of random-shaped ops over every opcode class (rcx reserved for
// the loop counter), then dec/jnz. Bodies may include barriers, which
// at the functional layer just emit barrier uops.
func randomLoopProgram(t *testing.T, rng *rand.Rand) *asm.Program {
	t.Helper()
	b := asm.NewBuilder(fmt.Sprintf("rand%d", rng.Int63()))
	b.SetMem(1 << uint(10+rng.Intn(5)))
	b.InitToggle(16, 8)
	gpr := func() isa.Reg {
		for {
			r := rng.Intn(isa.NumGPR)
			if r != 1 { // rcx is the loop counter
				return isa.GPR(r)
			}
		}
	}
	xmm := func() isa.Reg { return isa.XMM(rng.Intn(isa.NumXMM)) }
	reg := func(k isa.RegKind) isa.Reg {
		if k == isa.RegXMM {
			return xmm()
		}
		return gpr()
	}
	ops := isa.AllOpcodes()
	b.RI("movimm", isa.RCX, int64(2+rng.Intn(40)))
	b.Label("loop")
	for n := 2 + rng.Intn(24); n > 0; n-- {
		op := ops[rng.Intn(len(ops))]
		imm := rng.Int63n(1 << 16)
		if rng.Intn(3) == 0 {
			imm = -imm
		}
		switch op.Shape {
		case isa.ShapeNone:
			b.Nop(1)
		case isa.ShapeRR:
			b.RR(op.Name, reg(op.RegKind), reg(op.RegKind))
		case isa.ShapeRRR:
			b.RRR(op.Name, reg(op.RegKind), reg(op.RegKind), reg(op.RegKind))
		case isa.ShapeRI:
			b.RI(op.Name, reg(op.RegKind), imm)
		case isa.ShapeLoad:
			b.Load(op.Name, reg(op.RegKind), gpr(), int32(rng.Intn(1<<14)-(1<<13)))
		case isa.ShapeStore:
			b.Store(op.Name, gpr(), int32(rng.Intn(1<<14)-(1<<13)), reg(op.RegKind))
		case isa.ShapeBarrier:
			b.Barrier(int64(rng.Intn(4)))
		case isa.ShapeBranch:
			// Skip in the body; the loop branch below covers the class.
		}
	}
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRandomizedStepEquivalence drives the template-driven Thread and
// the reference interpreter over the same random programs and requires
// bit-identical uop streams: instruction identity, operand and result
// values, addresses, branch behaviour, barrier ids and sequence
// numbers.
func TestRandomizedStepEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1701))
	for trial := 0; trial < 60; trial++ {
		p := randomLoopProgram(t, rng)
		th, err := NewThread(p, 3000)
		if err != nil {
			t.Fatal(err)
		}
		base := uint64(rng.Intn(8)+1) << 32
		th.SetGlobalBase(base)
		ref := newRefThread(p, 3000)
		ref.globalBase = base
		for n := 0; ; n++ {
			u, ok := th.Peek()
			ru, rok := ref.step()
			if ok != rok {
				t.Fatalf("trial %d uop %d: template ok=%v, reference ok=%v", trial, n, ok, rok)
			}
			if !ok {
				break
			}
			if u.In != ru.in || u.SrcA != ru.srcA || u.Result != ru.result ||
				u.Addr != ru.addr || u.Taken != ru.taken || u.BackBranch != ru.backBranch ||
				u.BarrierID != ru.barrierID || u.Seq != ru.seq {
				t.Fatalf("trial %d uop %d (%v): template %+v vs reference %+v", trial, n, u.In, u, ru)
			}
			th.Consume()
		}
	}
}
