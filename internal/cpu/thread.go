package cpu

import (
	"encoding/binary"
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Uop is one dynamic micro-op produced by a thread's functional
// execution, carrying the real operand/result values the power model
// needs for data-toggle energy.
type Uop struct {
	In *isa.Instruction
	// SrcA is the primary source value and Result the computed result
	// (both zero for NOPs/branches/stores-of-nothing).
	SrcA   isa.Value
	Result isa.Value
	// Addr is the global effective address for memory ops.
	Addr uint64
	// Taken and BackBranch describe branch behaviour.
	Taken      bool
	BackBranch bool
	// BarrierID is ≥0 for barrier uops, -1 otherwise.
	BarrierID int64
	// Seq is the dynamic instruction number within the thread.
	Seq uint64

	// tpl is the pre-decoded template of the static instruction; the
	// timing model reads opcode metadata from it instead of In.Op.
	tpl *uopTemplate

	// memLevel is filled in by the timing model when the access is
	// issued (which cache level serviced it).
	memLevel memLevel
}

const defaultMemBytes = 4096

// Thread functionally executes a program in order, producing the uop
// stream the timing model consumes. It owns the architectural register
// file and a private data segment; a per-thread global address base
// keeps different threads' lines distinct in the shared caches.
type Thread struct {
	prog *asm.Program
	tmpl []uopTemplate
	pc   int
	regs [isa.TotalRegs]isa.Value
	mem  []byte
	// zeroFlag models the subset of RFLAGS jnz consumes: set by the
	// most recent flag-writing integer op.
	zeroFlag bool

	globalBase uint64
	seq        uint64
	maxInstrs  uint64 // 0 = unbounded
	done       bool

	// buffered lookahead for the decoder
	cur    Uop
	curOK  bool
	primed bool
}

// NewThread prepares a thread for the given program. maxInstrs bounds
// dynamic instruction count (0 = run until the program ends naturally).
func NewThread(p *asm.Program, maxInstrs uint64) (*Thread, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	memBytes := p.MemBytes
	if memBytes <= 0 {
		memBytes = defaultMemBytes
	}
	// Round to a multiple of 16 so 128-bit accesses can wrap cleanly.
	memBytes = (memBytes + 15) &^ 15
	t := &Thread{prog: p, tmpl: compileTemplates(p), mem: make([]byte, memBytes), maxInstrs: maxInstrs}
	for r, v := range p.InitRegs {
		t.regs[r.FlatIndex()] = v
	}
	return t, nil
}

// SetGlobalBase assigns the thread's base in the global physical
// address space used by the shared caches.
func (t *Thread) SetGlobalBase(base uint64) { t.globalBase = base }

// Program returns the program under execution.
func (t *Thread) Program() *asm.Program { return t.prog }

// Done reports whether the stream is exhausted.
func (t *Thread) Done() bool {
	t.prime()
	return !t.curOK
}

// Peek returns the next uop without consuming it.
func (t *Thread) Peek() (*Uop, bool) {
	t.prime()
	if !t.curOK {
		return nil, false
	}
	return &t.cur, true
}

// Consume advances past the uop returned by Peek.
func (t *Thread) Consume() {
	t.prime()
	t.primed = false
}

func (t *Thread) prime() {
	if t.primed {
		return
	}
	t.cur, t.curOK = t.step()
	t.primed = true
}

// Retired returns the dynamic instruction count so far.
func (t *Thread) Retired() uint64 { return t.seq }

// PC returns the current program counter: the index of the next
// instruction the thread will execute (past any primed lookahead).
func (t *Thread) PC() int { return t.pc }

// stateFP folds the thread's control state — program counter, decode
// lookahead and flag state — into the chip fingerprint. Architectural
// register values and the monotone seq counter are deliberately
// excluded: the fingerprint only needs to recur when the control state
// does, and the trace verification pass is the correctness gate.
func (t *Thread) stateFP() uint64 {
	fp := uint64(t.pc)<<4 | 1
	if t.primed {
		fp |= 1 << 1
	}
	if t.curOK {
		fp |= 1 << 2
	}
	if t.zeroFlag {
		fp |= 1 << 3
	}
	return fp
}

// step executes one instruction functionally, driven entirely by the
// pre-decoded template of the static instruction at pc.
func (t *Thread) step() (Uop, bool) {
	if t.done || t.pc < 0 || t.pc >= len(t.tmpl) ||
		(t.maxInstrs > 0 && t.seq >= t.maxInstrs) {
		t.done = true
		return Uop{}, false
	}
	tpl := &t.tmpl[t.pc]
	u := Uop{In: tpl.in, tpl: tpl, BarrierID: -1, Seq: t.seq}
	t.seq++

	// Resolve address for memory-shaped ops.
	var localAddr uint64
	if tpl.baseIdx >= 0 {
		localAddr = (t.regs[tpl.baseIdx].Lo + tpl.disp) % uint64(len(t.mem))
		localAddr &^= 15
		u.Addr = t.globalBase + localAddr
	}

	var dstOld, src1, src2, memv isa.Value
	if tpl.dstIsSrc {
		dstOld = t.regs[tpl.dstOldIdx]
	}
	if tpl.src1Idx >= 0 {
		src1 = t.regs[tpl.src1Idx]
	}
	if tpl.src2Idx >= 0 {
		src2 = t.regs[tpl.src2Idx]
	}

	switch tpl.class {
	case isa.ClassLoad:
		memv = t.load(localAddr)
	case isa.ClassStore:
		t.store(localAddr, src1)
	case isa.ClassBarrier:
		u.BarrierID = tpl.barrierID
	}

	// Primary source for toggle accounting: prefer an explicit source,
	// else the old destination, else the memory value.
	switch tpl.srcASel {
	case srcASrc1:
		u.SrcA = src1
	case srcADstOld:
		u.SrcA = dstOld
	case srcAMem:
		u.SrcA = memv
	}

	if tpl.branchKind != brNone {
		u.Taken = tpl.branchKind != brCond || !t.zeroFlag
		u.BackBranch = tpl.backBranch
		if u.Taken {
			t.pc = tpl.target
		} else {
			t.pc++
		}
		return u, true
	}

	res := tpl.exec(dstOld, src1, src2, t.globalBase+localAddr, memv)
	u.Result = res
	if tpl.dstIdx >= 0 {
		t.regs[tpl.dstIdx] = res
		if tpl.flagWrite {
			t.zeroFlag = res.Lo == 0
		}
	}
	t.pc++
	return u, true
}

// flagWriting reports whether the class updates the zero flag, matching
// x86 where arithmetic/logic ops set flags but moves and loads do not.
func flagWriting(c isa.Class) bool {
	switch c {
	case isa.ClassIntALU, isa.ClassIntMul, isa.ClassIntDiv:
		return true
	}
	return false
}

func (t *Thread) load(addr uint64) isa.Value {
	if addr+16 <= uint64(len(t.mem)) {
		return isa.Value{
			Lo: binary.LittleEndian.Uint64(t.mem[addr:]),
			Hi: binary.LittleEndian.Uint64(t.mem[addr+8:]),
		}
	}
	return isa.Value{}
}

func (t *Thread) store(addr uint64, v isa.Value) {
	if addr+16 <= uint64(len(t.mem)) {
		binary.LittleEndian.PutUint64(t.mem[addr:], v.Lo)
		binary.LittleEndian.PutUint64(t.mem[addr+8:], v.Hi)
	}
}

// Reg returns the current architectural value of a register (testing
// and debugging aid).
func (t *Thread) Reg(r isa.Reg) (isa.Value, error) {
	if !r.Valid() {
		return isa.Value{}, fmt.Errorf("cpu: invalid register")
	}
	return t.regs[r.FlatIndex()], nil
}
