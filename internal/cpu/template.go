package cpu

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

// This file is the capture-side fast path's front half: every static
// instruction of a program is compiled once, at NewThread, into a flat
// uopTemplate — operand register indices, branch kind, energy and
// latency constants, dependency/flag behaviour and a pre-resolved exec
// kernel — so neither Thread.step nor the chip's decode/issue/execute
// stages re-interpret isa.Instruction fields per dynamic instance.
// Templates change scheduling-irrelevant representation only: the
// golden and randomized equivalence tests hold the template path
// bit-identical to the reference interpreter.

// SrcA selection (the toggle-accounting primary source), mirroring the
// precedence of the interpreter: explicit source, else old destination,
// else loaded memory value.
const (
	srcANone uint8 = iota
	srcASrc1
	srcADstOld
	srcAMem
)

// Branch kinds. brOther covers hypothetical conditional opcodes the
// interpreter treats as always-taken.
const (
	brNone uint8 = iota
	brJmp
	brCond
	brOther
)

// uopTemplate is the pre-decoded form of one static instruction.
type uopTemplate struct {
	in   *isa.Instruction
	exec isa.ExecFn

	class isa.Class
	unit  isa.Unit

	// Register-file flat indices; -1 when the operand is absent.
	dstIdx    int16 // architectural write target (Dest())
	dstOldIdx int16 // implicit dst read of two-operand forms
	src1Idx   int16
	src2Idx   int16
	baseIdx   int16 // address base of memory-shaped ops

	// Rename sources in program order (dst-as-src, src1, src2, base).
	srcRegs [4]int16
	nsrc    uint8

	srcASel   uint8
	dstIsSrc  bool
	flagWrite bool
	isMem     bool
	isLoad    bool
	isStore   bool
	isFP      bool

	branchKind uint8
	backBranch bool
	target     int
	btHash     uint32 // predictor index base (static per branch site)

	disp uint64 // sign-extended MemDisp

	barrierID   int64
	barrierSlot int32 // chip barrier-registry slot, filled at Attach

	energyPJ   float64
	oneMinusTF float64 // 1 - ToggleFraction, folded once at compile
	toggleTF   float64
	latency    uint64
	recipTP    uint64
}

// compileTemplates pre-decodes every instruction of p.
func compileTemplates(p *asm.Program) []uopTemplate {
	tmpl := make([]uopTemplate, len(p.Code))
	for pc := range p.Code {
		in := &p.Code[pc]
		op := in.Op
		t := &tmpl[pc]
		t.in = in
		t.exec = isa.KernelOf(in)
		t.class = op.Class
		t.unit = op.Unit
		t.isFP = op.Unit == isa.UnitFPU
		t.isMem = op.Class.IsMem()
		t.isLoad = op.Class == isa.ClassLoad
		t.isStore = op.Class == isa.ClassStore
		t.energyPJ = op.EnergyPJ
		t.oneMinusTF = 1 - op.ToggleFraction
		t.toggleTF = op.ToggleFraction
		t.latency = uint64(op.Latency)
		t.recipTP = uint64(op.RecipThroughput)
		t.dstIdx, t.dstOldIdx, t.src1Idx, t.src2Idx, t.baseIdx = -1, -1, -1, -1, -1
		t.barrierSlot = -1

		if d := in.Dest(); d.Valid() {
			t.dstIdx = int16(d.FlatIndex())
			t.flagWrite = d.Kind == isa.RegGPR && flagWriting(op.Class)
		}
		t.dstIsSrc = op.DstIsSrc && in.Dst.Valid()
		if t.dstIsSrc {
			t.dstOldIdx = int16(in.Dst.FlatIndex())
		}
		if in.Src1.Valid() {
			t.src1Idx = int16(in.Src1.FlatIndex())
		}
		if in.Src2.Valid() {
			t.src2Idx = int16(in.Src2.FlatIndex())
		}
		if in.MemBase.Valid() {
			t.baseIdx = int16(in.MemBase.FlatIndex())
			t.disp = uint64(int64(in.MemDisp))
		}

		switch {
		case t.src1Idx >= 0:
			t.srcASel = srcASrc1
		case t.dstIsSrc:
			t.srcASel = srcADstOld
		case t.isLoad:
			t.srcASel = srcAMem
		default:
			t.srcASel = srcANone
		}

		n := 0
		if t.dstIsSrc {
			t.srcRegs[n] = t.dstOldIdx
			n++
		}
		if t.src1Idx >= 0 {
			t.srcRegs[n] = t.src1Idx
			n++
		}
		if t.src2Idx >= 0 {
			t.srcRegs[n] = t.src2Idx
			n++
		}
		if t.baseIdx >= 0 {
			t.srcRegs[n] = t.baseIdx
			n++
		}
		t.nsrc = uint8(n)

		switch op.Class {
		case isa.ClassBranch:
			switch op.Name {
			case "jmp":
				t.branchKind = brJmp
			case "jnz":
				t.branchKind = brCond
			default:
				t.branchKind = brOther
			}
			t.target = in.Target
			t.backBranch = in.Target <= pc
			h := uint32(in.Target)
			for _, r := range in.Label {
				h = h*31 + uint32(r)
			}
			t.btHash = h
		case isa.ClassBarrier:
			t.barrierID = in.Imm
		}
	}
	return tmpl
}
