// Package cpu is the cycle-level multi-core out-of-order processor
// model. It is trace-driven: each thread functionally executes its
// program (package asm) to produce a stream of micro-ops with real data
// values, and the timing model schedules those uops against the
// machine's resources — shared front end, integer clusters, the shared
// FP unit, caches, result buses — while accumulating per-cycle energy
// for the PDN model. The structural hazards it models are exactly the
// ones the paper credits for AUDIT's behaviour: decode width, FP-pipe
// sharing between sibling threads, result-bus and scheduler limits, and
// NOPs that cost fetch/decode only.
package cpu

import "fmt"

// Cache is a set-associative cache with LRU replacement. It tracks tags
// only — data values come from the functional model — and is used for
// hit/miss timing and (via misses) activity energy.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	tags      []uint64 // sets×ways
	valid     []bool
	stamp     []uint64 // LRU timestamps
	tick      uint64
	hits      uint64
	misses    uint64
}

// NewCache builds a cache of totalBytes with the given associativity
// and line size (both powers of two).
func NewCache(totalBytes, ways, lineBytes int) (*Cache, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cpu: line size %d not a power of two", lineBytes)
	}
	if ways <= 0 || totalBytes <= 0 {
		return nil, fmt.Errorf("cpu: bad cache geometry")
	}
	lines := totalBytes / lineBytes
	if lines < ways {
		return nil, fmt.Errorf("cpu: cache too small for %d ways", ways)
	}
	sets := lines / ways
	// Round sets down to a power of two for cheap indexing.
	for sets&(sets-1) != 0 {
		sets--
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &Cache{
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		tags:      make([]uint64, sets*ways),
		valid:     make([]bool, sets*ways),
		stamp:     make([]uint64, sets*ways),
	}, nil
}

// Access looks up addr, fills on miss, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	line := addr >> c.lineShift
	set := int(line) & (c.sets - 1)
	base := set * c.ways
	victim, oldest := base, c.stamp[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.stamp[i] = c.tick
			c.hits++
			return true
		}
		if !c.valid[i] {
			victim, oldest = i, 0
		} else if c.stamp[i] < oldest {
			victim, oldest = i, c.stamp[i]
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.stamp[victim] = c.tick
	c.misses++
	return false
}

// Stats returns cumulative hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.tick, c.hits, c.misses = 0, 0, 0
}
