// Package hostos models operating-system interference with running
// threads: the periodic timer tick (≈16 ms on the paper's Windows 7
// system) plus scheduling jitter. Each tick steals a burst of cycles
// from one core, shifting that thread's phase relative to the others —
// the source of the "natural dithering" of Fig. 6, where thread
// alignment drifts in and out every OS tick and the voltage-droop
// envelope visibly changes at tick boundaries.
package hostos

import (
	"fmt"
	"math/rand"

	"repro/internal/cpu"
)

// Scheduler injects tick interference into a chip. All times are in
// CPU cycles so experiments can scale the tick period down from the
// physical 16 ms (≈58 M cycles at 3.6 GHz) to something simulable while
// preserving the period ≫ loop-length separation that produces the
// effect.
type Scheduler struct {
	// TickPeriod is the nominal cycle count between ticks on one core.
	TickPeriod uint64
	// TickDuration is the cycle cost of servicing one tick.
	TickDuration uint64
	// Jitter is the maximum extra random delay added to each tick's
	// arrival and duration.
	Jitter uint64

	rng      *rand.Rand
	nextTick []uint64
	ticks    uint64
}

// New builds a scheduler for nCores cores. The seed makes interference
// reproducible.
func New(nCores int, tickPeriod, tickDuration, jitter uint64, seed int64) (*Scheduler, error) {
	if nCores < 1 {
		return nil, fmt.Errorf("hostos: need at least one core")
	}
	if tickPeriod == 0 {
		return nil, fmt.Errorf("hostos: tick period must be positive")
	}
	s := &Scheduler{
		TickPeriod:   tickPeriod,
		TickDuration: tickDuration,
		Jitter:       jitter,
		rng:          rand.New(rand.NewSource(seed)),
		nextTick:     make([]uint64, nCores),
	}
	// Cores take their first tick at staggered offsets, as the OS
	// services them in turn.
	for c := range s.nextTick {
		s.nextTick[c] = tickPeriod/uint64(nCores)*uint64(c) + s.randJitter()
	}
	return s, nil
}

func (s *Scheduler) randJitter() uint64 {
	if s.Jitter == 0 {
		return 0
	}
	return uint64(s.rng.Int63n(int64(s.Jitter) + 1))
}

// Apply must be called once per chip cycle (before or after Step); it
// injects decode stalls into cores whose tick is due.
func (s *Scheduler) Apply(ch *cpu.Chip) error {
	now := ch.Cycle()
	for c := range s.nextTick {
		if now >= s.nextTick[c] {
			dur := s.TickDuration + s.randJitter()
			if err := ch.InjectStall(c, dur); err != nil {
				return err
			}
			s.nextTick[c] = now + s.TickPeriod + s.randJitter()
			s.ticks++
		}
	}
	return nil
}

// Ticks returns how many ticks have been delivered.
func (s *Scheduler) Ticks() uint64 { return s.ticks }

// StartSkews returns per-core random initial phase offsets in
// [0, maxSkew] cycles: the OS never releases all threads of a program
// on the same cycle, which is why a deterministic dither sweep — not
// luck — is needed to find worst-case alignment.
func StartSkews(nCores int, maxSkew uint64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, nCores)
	if maxSkew == 0 {
		return out
	}
	for i := range out {
		out[i] = uint64(rng.Int63n(int64(maxSkew) + 1))
	}
	return out
}
