package hostos

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/uarch"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 100, 10, 0, 1); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := New(4, 0, 10, 0, 1); err == nil {
		t.Error("zero period accepted")
	}
}

func infiniteLoop() *asm.Program {
	b := asm.NewBuilder("spin")
	b.RI("movimm", isa.RCX, 1<<40)
	b.Label("loop")
	b.Nop(4)
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	return b.MustBuild()
}

func TestTicksPerturbProgress(t *testing.T) {
	cfg := uarch.Bulldozer()
	run := func(withOS bool) [4]uint64 {
		ch, err := cpu.NewChip(cfg, power.BulldozerModel())
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < 4; m++ {
			th, _ := cpu.NewThread(infiniteLoop(), 0)
			if err := ch.Attach(m, 0, th); err != nil {
				t.Fatal(err)
			}
		}
		var sched *Scheduler
		if withOS {
			sched, err = New(8, 3000, 400, 150, 42)
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 30000; i++ {
			if sched != nil {
				if err := sched.Apply(ch); err != nil {
					t.Fatal(err)
				}
			}
			ch.Step()
		}
		var prog [4]uint64
		for m := 0; m < 4; m++ {
			prog[m] = ch.CoreRetired(m * cfg.CoresPerModule)
		}
		if sched != nil && sched.Ticks() == 0 {
			t.Fatal("no ticks delivered")
		}
		return prog
	}
	clean := run(false)
	noisy := run(true)
	// Without OS noise the four identical threads march in lockstep.
	for m := 1; m < 4; m++ {
		if clean[m] != clean[0] {
			t.Errorf("clean threads diverged: %v", clean)
		}
	}
	// With ticks, phases drift apart — at least one pair differs.
	same := true
	for m := 1; m < 4; m++ {
		if noisy[m] != noisy[0] {
			same = false
		}
	}
	if same {
		t.Errorf("OS ticks failed to perturb thread phases: %v", noisy)
	}
	// And overall progress is reduced.
	if noisy[0] >= clean[0] {
		t.Errorf("ticks should cost cycles: %d vs %d", noisy[0], clean[0])
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a, _ := New(4, 1000, 100, 50, 7)
	b, _ := New(4, 1000, 100, 50, 7)
	for i := range a.nextTick {
		if a.nextTick[i] != b.nextTick[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
	c, _ := New(4, 1000, 100, 50, 8)
	diff := false
	for i := range a.nextTick {
		if a.nextTick[i] != c.nextTick[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical schedules")
	}
}

func TestStartSkews(t *testing.T) {
	s := StartSkews(8, 100, 1)
	if len(s) != 8 {
		t.Fatalf("len = %d", len(s))
	}
	allZero := true
	for _, v := range s {
		if v > 100 {
			t.Errorf("skew %d exceeds max", v)
		}
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("all skews zero with maxSkew=100")
	}
	for i, v := range StartSkews(4, 0, 1) {
		if v != 0 {
			t.Errorf("maxSkew=0 gave skew[%d]=%d", i, v)
		}
	}
	// Determinism.
	a := StartSkews(8, 1000, 5)
	b := StartSkews(8, 1000, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("StartSkews not deterministic")
		}
	}
}
