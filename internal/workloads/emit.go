// Package workloads provides the comparison programs of the paper's
// evaluation: synthetic kernels with the activity shape of the SPEC
// CPU2006 and PARSEC benchmarks it measures (Fig. 9a, Fig. 10), the
// manually engineered stressmarks SM1, SM2 and SM-Res (Fig. 9b, Tables
// 1–3), and the barrier stressmark of §5.A.1. The binaries themselves
// are not reproducible — they are commercial suites compiled for real
// x86 — so each kernel is built from the phase structure that gives the
// original its di/dt signature: instruction mix, burst period, memory
// footprint, branch behaviour and synchronisation.
package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

// emitter writes one cycle's worth of work (up to the machine width,
// nominally 4 slots) into the builder. cyc individualises registers and
// addresses across cycles.
type emitter func(b *asm.Builder, cyc int)

// Phase is a run of cycles sharing one emitter.
type Phase struct {
	Emit   emitter
	Cycles int
}

// phasedLoop builds the standard workload skeleton: an outer loop of
// phases, optionally ending in a barrier (PARSEC-style global sync).
func phasedLoop(name string, iters int64, memBytes int, barrier bool, phases []Phase) *asm.Program {
	b := asm.NewBuilder(name)
	b.SetMem(memBytes)
	b.InitToggle(16, 8)
	b.RI("movimm", isa.RCX, iters)
	b.RI("movimm", isa.RBP, 0)
	b.Label("loop")
	cyc := 0
	for _, ph := range phases {
		for i := 0; i < ph.Cycles; i++ {
			ph.Emit(b, cyc)
			cyc++
		}
	}
	if barrier {
		b.Barrier(1)
	}
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	return b.MustBuild()
}

// ---- per-cycle emitters ----

// fpDense: two packed-FP ops per cycle — the FPU-saturating pattern.
func fpDense(b *asm.Builder, cyc int) {
	d1 := isa.XMM(cyc % 12)
	d2 := isa.XMM((cyc + 6) % 12)
	s1 := isa.XMM(12 + cyc%2)
	s2 := isa.XMM(14 + cyc%2)
	if cyc%2 == 0 {
		b.RR("mulpd", d1, s1)
		b.RR("addpd", d2, s2)
	} else {
		b.RR("mulps", d1, s2)
		b.RR("addpd", d2, s1)
	}
	b.Nop(2)
}

// fmaDense: the maximum-power pattern (FMA pipes saturated).
func fmaDense(b *asm.Builder, cyc int) {
	b.RRR("vfmadd132pd", isa.XMM(cyc%12), isa.XMM(12+cyc%2), isa.XMM(14+cyc%2))
	b.RRR("vfmadd132pd", isa.XMM((cyc+6)%12), isa.XMM(13-cyc%2), isa.XMM(15-cyc%2))
	b.Nop(2)
}

// simdDense: packed-integer SIMD pressure.
func simdDense(b *asm.Builder, cyc int) {
	b.RR("pmulld", isa.XMM(cyc%12), isa.XMM(12+cyc%2))
	b.RR("paddd", isa.XMM((cyc+6)%12), isa.XMM(14+cyc%2))
	b.Nop(2)
}

// intDense: ALU-saturating integer work.
func intDense(b *asm.Builder, cyc int) {
	b.RR("add", isa.GPR(8+cyc%8), isa.GPR(6+cyc%2))
	b.RR("xor", isa.GPR(8+(cyc+3)%8), isa.GPR(6+(cyc+1)%2))
	b.Nop(2)
}

// scalarFP: modest scalar FP (namd/povray-style steady compute).
func scalarFP(b *asm.Builder, cyc int) {
	b.RR("mulsd", isa.XMM(cyc%12), isa.XMM(12+cyc%2))
	b.RR("add", isa.GPR(8+cyc%8), isa.GPR(6+cyc%2))
	b.Nop(2)
}

// memStream: streaming loads marching through the footprint; stride one
// cache line per load so big footprints miss.
func memStream(stride int32) emitter {
	return func(b *asm.Builder, cyc int) {
		b.Load("load", isa.GPR(8+cyc%4), isa.RBP, int32(cyc%64)*64)
		b.RR("add", isa.RSI, isa.GPR(8+cyc%4))
		if cyc%8 == 7 {
			b.Load("lea", isa.RBP, isa.RBP, stride)
			b.Nop(1)
		} else {
			b.Nop(2)
		}
	}
}

// pointerChase: dependent loads (mcf-style): each address depends on
// the previous loaded value, so memory-level parallelism collapses and
// the walk strides cold through the footprint.
func pointerChase(b *asm.Builder, cyc int) {
	b.Load("load", isa.RAX, isa.RBP, int32(cyc%8)*64)
	// Serialise the walk on the load's value, then jump a large odd
	// number of lines so successive accesses land in cold sets.
	b.RR("add", isa.RBP, isa.RAX)
	b.Load("lea", isa.RBP, isa.RBP, 4793*64)
	b.Nop(1)
}

// idle: pure NOPs (the low-power side of bursty codes).
func idle(b *asm.Builder, cyc int) {
	b.Nop(4)
}

// divider: long-latency divides — exercises the IDiv critical path.
func divider(b *asm.Builder, cyc int) {
	if cyc%8 == 0 {
		b.RR("idiv", isa.GPR(8+cyc%4), isa.GPR(6+cyc%2))
		b.Nop(3)
	} else {
		b.RR("add", isa.GPR(8+cyc%8), isa.GPR(6+cyc%2))
		b.Nop(3)
	}
}

// storeHeavy: store traffic through the LSU.
func storeHeavy(b *asm.Builder, cyc int) {
	b.Store("store", isa.RBP, int32(cyc%32)*64, isa.GPR(8+cyc%8))
	b.RR("add", isa.GPR(8+cyc%8), isa.GPR(6+cyc%2))
	b.Nop(2)
}

// mixed: int + FP + memory together (gcc/h264-style).
func mixed(b *asm.Builder, cyc int) {
	switch cyc % 3 {
	case 0:
		b.RR("add", isa.GPR(8+cyc%8), isa.GPR(6+cyc%2))
		b.RR("mulsd", isa.XMM(cyc%12), isa.XMM(12+cyc%2))
		b.Nop(2)
	case 1:
		b.Load("load", isa.GPR(8+cyc%4), isa.RBP, int32(cyc%32)*64)
		b.RR("xor", isa.GPR(12+cyc%4), isa.GPR(6+cyc%2))
		b.Nop(2)
	default:
		b.RR("imul", isa.GPR(8+cyc%8), isa.GPR(6+cyc%2))
		b.Nop(3)
	}
}
