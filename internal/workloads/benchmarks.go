package workloads

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Workload is one comparison benchmark.
type Workload struct {
	// Name matches the benchmark the kernel models.
	Name string
	// Suite is "SPEC" or "PARSEC".
	Suite string
	// Program is the kernel (trip count effectively unbounded; runs are
	// cycle-limited by the testbed).
	Program *asm.Program
	// Barriers marks PARSEC-style kernels whose threads synchronise.
	Barriers bool
}

const unbounded = int64(1) << 40

// branchy returns an emitter whose forward-taken branches defeat the
// static predictor every time — the pipeline-restart activity steps
// that give integer codes their di/dt signature (§5.A.1: "pipeline
// recovery after a branch misprediction stall").
func branchy(prefix string) emitter {
	n := 0
	return func(b *asm.Builder, cyc int) {
		n++
		lbl := fmt.Sprintf("%s%d", prefix, n)
		b.RR("or", isa.GPR(8+cyc%8), isa.RSI) // nonzero → jnz taken
		b.Branch("jnz", lbl)
		b.Nop(1)
		b.Label(lbl)
		b.RR("add", isa.GPR(8+(cyc+1)%8), isa.GPR(6+cyc%2))
	}
}

// SPEC returns the SPEC-CPU2006-style single-threaded kernels. The
// phase structure gives each its droop character; zeusmp's burst period
// sits near the first-droop resonance, which is why it tops the
// benchmark droops in Fig. 9(a) and appears in Table 1 and Fig. 10.
func SPEC() []Workload {
	return []Workload{
		{Name: "perlbench", Suite: "SPEC", Program: phasedLoop("perlbench", unbounded, 64<<10, false, []Phase{
			{intDense, 40}, {branchy("pl"), 5}, {mixed, 30},
		})},
		{Name: "bzip2", Suite: "SPEC", Program: phasedLoop("bzip2", unbounded, 1<<20, false, []Phase{
			{intDense, 50}, {memStream(4096), 30}, {branchy("bz"), 4},
		})},
		{Name: "gcc", Suite: "SPEC", Program: phasedLoop("gcc", unbounded, 2<<20, false, []Phase{
			{mixed, 60}, {branchy("gc"), 8}, {idle, 10},
		})},
		{Name: "mcf", Suite: "SPEC", Program: phasedLoop("mcf", unbounded, 32<<20, false, []Phase{
			{pointerChase, 80}, {idle, 8},
		})},
		{Name: "milc", Suite: "SPEC", Program: phasedLoop("milc", unbounded, 8<<20, false, []Phase{
			{fpDense, 30}, {memStream(8192), 30},
		})},
		{Name: "namd", Suite: "SPEC", Program: phasedLoop("namd", unbounded, 512<<10, false, []Phase{
			{scalarFP, 120},
		})},
		{Name: "hmmer", Suite: "SPEC", Program: phasedLoop("hmmer", unbounded, 256<<10, false, []Phase{
			{intDense, 80}, {mixed, 20},
		})},
		{Name: "libquantum", Suite: "SPEC", Program: phasedLoop("libquantum", unbounded, 16<<20, false, []Phase{
			{simdDense, 24}, {memStream(8192), 24},
		})},
		{Name: "lbm", Suite: "SPEC", Program: phasedLoop("lbm", unbounded, 16<<20, false, []Phase{
			{fpDense, 20}, {memStream(16384), 40},
		})},
		{Name: "zeusmp", Suite: "SPEC", Program: phasedLoop("zeusmp", unbounded, 4<<20, false, []Phase{
			// A long steady stretch (tight Vdd distribution — Fig. 10
			// shows zeusmp with the least voltage variation) punctuated
			// by a short FP burst train whose period sits in the skirt
			// of the first-droop resonance: rare but deep droops that
			// make zeusmp the droopiest standard benchmark.
			{scalarFP, 320},
			{fpDense, 18}, {idle, 11},
			{fpDense, 18}, {idle, 11},
			{fpDense, 18}, {idle, 11},
			{fpDense, 18}, {idle, 11},
		})},
		{Name: "cactusADM", Suite: "SPEC", Program: phasedLoop("cactusADM", unbounded, 8<<20, false, []Phase{
			{fpDense, 40}, {memStream(8192), 20}, {idle, 5},
		})},
		{Name: "GemsFDTD", Suite: "SPEC", Program: phasedLoop("GemsFDTD", unbounded, 8<<20, false, []Phase{
			{fpDense, 30}, {memStream(8192), 30}, {idle, 6},
		})},
	}
}

// PARSEC returns the PARSEC-style multi-threaded kernels. Barrier
// workloads synchronise all running threads each outer iteration —
// the global-sync structure [16] flagged as a droop amplifier, which
// §5.A.1 finds dampened on this machine by barrier-release skew.
func PARSEC() []Workload {
	return []Workload{
		{Name: "blackscholes", Suite: "PARSEC", Barriers: true, Program: phasedLoop("blackscholes", unbounded, 1<<20, true, []Phase{
			{scalarFP, 200},
		})},
		{Name: "bodytrack", Suite: "PARSEC", Barriers: true, Program: phasedLoop("bodytrack", unbounded, 4<<20, true, []Phase{
			{mixed, 80}, {memStream(4096), 30},
		})},
		{Name: "fluidanimate", Suite: "PARSEC", Barriers: true, Program: phasedLoop("fluidanimate", unbounded, 8<<20, true, []Phase{
			{fpDense, 20}, {memStream(8192), 50}, {idle, 6},
		})},
		{Name: "streamcluster", Suite: "PARSEC", Barriers: true, Program: phasedLoop("streamcluster", unbounded, 16<<20, true, []Phase{
			{memStream(8192), 60}, {intDense, 30},
		})},
		{Name: "swaptions", Suite: "PARSEC", Program: phasedLoop("swaptions", unbounded, 512<<10, false, []Phase{
			// Compute-heavy with near-resonant bursts: the droopiest
			// PARSEC kernel (paired with zeusmp in Table 1).
			{fpDense, 18}, {idle, 9}, {scalarFP, 4},
		})},
		{Name: "canneal", Suite: "PARSEC", Program: phasedLoop("canneal", unbounded, 32<<20, false, []Phase{
			{pointerChase, 70}, {idle, 10},
		})},
	}
}

// All returns SPEC then PARSEC.
func All() []Workload {
	return append(SPEC(), PARSEC()...)
}

// ByName finds a workload in All().
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}
