package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

// DefaultLoopCycles is the Bulldozer platform's first-droop period in
// clock cycles (3.6 GHz / ≈100 MHz). The manual stressmarks were tuned
// by their engineers to the measured resonance, so the constructors
// take the loop length explicitly; this is the right value for the
// primary platform.
const DefaultLoopCycles = 36

// SMRes is the hand-generated resonant stressmark: "regular in using
// floating-point and SIMD instructions during the high-power phase of
// the loop" (§5.A.5). It alternates FMA and packed-SIMD cycles for the
// high half of the resonance period, then NOPs.
func SMRes(loopCycles int) *asm.Program {
	h := loopCycles / 2
	l := loopCycles - h - 1
	var phases []Phase
	phases = append(phases, Phase{func(b *asm.Builder, cyc int) {
		if cyc%2 == 0 {
			fmaDense(b, cyc)
		} else {
			simdDense(b, cyc)
		}
	}, h})
	phases = append(phases, Phase{idle, l})
	return phasedLoop("SM-Res", unbounded, 4096, false, phases)
}

// SM1 is the legacy stressmark "collected from past di/dt issues": it
// contains both single-droop excitations and resonant sections (§5.A.2)
// plus a memory-stress tail. Strong, but not purpose-built for this
// PDN's resonance, so it trails the resonant marks in Fig. 9(b).
func SM1(loopCycles int) *asm.Program {
	p := loopCycles
	var phases []Phase
	// Section A: first-droop excitation — a long quiet stretch, then a
	// hard onset of maximum-power work.
	phases = append(phases, Phase{idle, 3 * p})
	phases = append(phases, Phase{fmaDense, 2 * p})
	// Section B: a resonant burst train at the PDN period — strong,
	// though its packed-FP pattern has less swing than SM-Res's
	// FMA/SIMD mix.
	for rep := 0; rep < 6; rep++ {
		phases = append(phases, Phase{fpDense, p / 2})
		phases = append(phases, Phase{idle, p - p/2 - 1})
	}
	// Section C: LSU stress.
	phases = append(phases, Phase{storeHeavy, p})
	phases = append(phases, Phase{memStream(4096), p})
	return phasedLoop("SM1", unbounded, 1<<20, false, phases)
}

// SM2 is the sensitive-path stressmark: its droop is comparable to the
// standard benchmarks, yet it fails at a much higher voltage because it
// exercises the divider and load/store critical paths exactly when its
// (moderate) resonant droop bottoms out (§5.A.4: "SM2, unlike the
// benchmarks, is designed to exercise sensitive paths in the
// architecture").
func SM2(loopCycles int) *asm.Program {
	h := loopCycles / 2
	l := loopCycles - h - 1
	var phases []Phase
	// Moderate-power HP region: scalar FP plus divider and store
	// traffic — roughly benchmark-level current swing, but with the
	// IDiv/LSU paths live throughout.
	phases = append(phases, Phase{func(b *asm.Builder, cyc int) {
		switch cyc % 4 {
		case 0:
			divider(b, cyc)
		case 1:
			storeHeavy(b, cyc)
		default:
			fpDense(b, cyc)
		}
	}, h})
	phases = append(phases, Phase{idle, l})
	return phasedLoop("SM2", unbounded, 64<<10, false, phases)
}

// BarrierVirus is the barrier stressmark of §5.A.1: all threads
// synchronise, idle briefly at the barrier, then blast the high-power
// virus together. On hardware the expected giant droop failed to
// materialise because the barrier release reaches each core at a
// different time; the testbed models exactly that release skew.
func BarrierVirus(loopCycles int) *asm.Program {
	p := loopCycles
	var phases []Phase
	phases = append(phases, Phase{fmaDense, 2 * p})
	phases = append(phases, Phase{idle, p})
	return phasedLoop("barrier-virus", unbounded, 4096, true, phases)
}

// PowerVirus is a maximum-sustained-power loop (no resonant structure):
// big IR drop and a single onset excitation, then steady state.
func PowerVirus() *asm.Program {
	return phasedLoop("power-virus", unbounded, 4096, false, []Phase{
		{fmaDense, 64},
	})
}

// UsesFMA reports whether a program contains FMA instructions —
// SM1 and other FMA-bearing marks cannot run on the Phenom-style chip,
// mirroring §5.C: "We were unable to run SM1 on the older processor due
// to incompatible instructions."
func UsesFMA(p *asm.Program) bool {
	for i := range p.Code {
		if p.Code[i].Op.Class == isa.ClassFMA {
			return true
		}
	}
	return false
}
