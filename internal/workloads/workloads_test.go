package workloads

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/testbed"
)

func TestAllProgramsValidate(t *testing.T) {
	for _, w := range All() {
		if err := w.Program.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.Program.Name != w.Name {
			t.Errorf("workload %q program named %q", w.Name, w.Program.Name)
		}
		// Every kernel must reassemble from its own text form.
		if _, err := asm.Parse(w.Program.Text()); err != nil {
			t.Errorf("%s does not reassemble: %v", w.Name, err)
		}
	}
	for _, mk := range []*asm.Program{SM1(DefaultLoopCycles), SM2(DefaultLoopCycles), SMRes(DefaultLoopCycles), BarrierVirus(DefaultLoopCycles), PowerVirus()} {
		if err := mk.Validate(); err != nil {
			t.Errorf("%s: %v", mk.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("zeusmp")
	if err != nil {
		t.Fatal(err)
	}
	if w.Suite != "SPEC" {
		t.Errorf("zeusmp suite = %q", w.Suite)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSuitesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
	}
	if len(SPEC()) < 10 {
		t.Errorf("SPEC suite too small: %d", len(SPEC()))
	}
	if len(PARSEC()) < 5 {
		t.Errorf("PARSEC suite too small: %d", len(PARSEC()))
	}
}

func TestFMADetection(t *testing.T) {
	if !UsesFMA(SM1(36)) {
		t.Error("SM1 should contain FMA (it cannot run on Phenom)")
	}
	if UsesFMA(SM2(36)) {
		t.Error("SM2 must avoid FMA (it runs on Phenom in Table 3)")
	}
	zeusmp, _ := ByName("zeusmp")
	if UsesFMA(zeusmp.Program) {
		t.Error("zeusmp must avoid FMA (it runs on Phenom in Table 3)")
	}
}

// droop4T measures a 4T droop on the Bulldozer platform.
func droop4T(t *testing.T, prog *asm.Program) float64 {
	t.Helper()
	p := testbed.Bulldozer()
	threads, err := testbed.SpreadPlacement(p.Chip, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Run(testbed.RunConfig{Threads: threads, MaxCycles: 28000, WarmupCycles: 3000})
	if err != nil {
		t.Fatal(err)
	}
	return m.MaxDroopV
}

func TestStressmarkDominanceOrdering(t *testing.T) {
	smRes := droop4T(t, SMRes(DefaultLoopCycles))
	sm1 := droop4T(t, SM1(DefaultLoopCycles))
	sm2 := droop4T(t, SM2(DefaultLoopCycles))
	zeusmp, _ := ByName("zeusmp")
	zm := droop4T(t, zeusmp.Program)
	namd, _ := ByName("namd")
	nd := droop4T(t, namd.Program)

	// Fig. 9 shape: SM-Res ≫ SM1 > benchmarks; SM2 ≈ benchmarks;
	// zeusmp tops the steady benchmarks.
	if !(smRes > sm1) {
		t.Errorf("SM-Res (%.4f) should beat SM1 (%.4f)", smRes, sm1)
	}
	if !(sm1 > zm) {
		t.Errorf("SM1 (%.4f) should beat zeusmp (%.4f)", sm1, zm)
	}
	if !(zm > nd) {
		t.Errorf("zeusmp (%.4f) should beat namd (%.4f)", zm, nd)
	}
	if sm2 > sm1 {
		t.Errorf("SM2 (%.4f) should not beat SM1 (%.4f)", sm2, sm1)
	}
	// SM2's droop is benchmark-class: within 2× of zeusmp either way.
	if sm2 > 2*zm || sm2 < zm/2 {
		t.Errorf("SM2 droop %.4f not benchmark-class (zeusmp %.4f)", sm2, zm)
	}
}

func TestSM2FailsAboveZeusmpDespiteSimilarDroop(t *testing.T) {
	if testing.Short() {
		t.Skip("failure search is slow")
	}
	p := testbed.Bulldozer()
	vf := func(prog *asm.Program) float64 {
		threads, _ := testbed.SpreadPlacement(p.Chip, prog, 4)
		rc := testbed.RunConfig{Threads: threads, MaxCycles: 22000, WarmupCycles: 3000}
		v, ok, err := p.FindFailureVoltage(rc, p.Nominal()-0.28)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%s never failed", prog.Name)
		}
		return v
	}
	zeusmp, _ := ByName("zeusmp")
	vSM2 := vf(SM2(DefaultLoopCycles))
	vZm := vf(zeusmp.Program)
	// Table 1: SM2 fails 38 mV above zeusmp despite a comparable droop,
	// because it exercises the sensitive divider/LSU paths.
	if vSM2 <= vZm {
		t.Errorf("SM2 failure voltage %.4f should exceed zeusmp's %.4f", vSM2, vZm)
	}
}

func TestBarrierVirusRunsMultiThreaded(t *testing.T) {
	p := testbed.Bulldozer()
	prog := BarrierVirus(DefaultLoopCycles)
	threads, err := testbed.SpreadPlacement(p.Chip, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Run(testbed.RunConfig{Threads: threads, MaxCycles: 20000, WarmupCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Retired == 0 {
		t.Fatal("barrier virus made no progress (deadlock?)")
	}
	if m.MaxDroopV <= 0 {
		t.Error("no droop")
	}
}

func TestPARSECBarrierWorkloadsProgress(t *testing.T) {
	p := testbed.Bulldozer()
	for _, w := range PARSEC() {
		if !w.Barriers {
			continue
		}
		threads, err := testbed.SpreadPlacement(p.Chip, w.Program, 4)
		if err != nil {
			t.Fatal(err)
		}
		m, err := p.Run(testbed.RunConfig{Threads: threads, MaxCycles: 15000, WarmupCycles: 1000})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if m.Retired < 1000 {
			t.Errorf("%s: barely progressed (%d instrs) — barrier deadlock?", w.Name, m.Retired)
		}
	}
}

// Characteristic checks: each kernel must show the microarchitectural
// signature of the benchmark it stands in for.
func TestWorkloadCharacteristics(t *testing.T) {
	p := testbed.Bulldozer()
	measure := func(name string) *testbed.Measurement {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := testbed.SpreadPlacement(p.Chip, w.Program, 1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := p.Run(testbed.RunConfig{Threads: specs, MaxCycles: 20000, WarmupCycles: 1000})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ipc := func(m *testbed.Measurement) float64 { return float64(m.Retired) / float64(m.Cycles) }
	missRate := func(m *testbed.Measurement) float64 {
		if m.L1Hits+m.L1Misses == 0 {
			return 0
		}
		return float64(m.L1Misses) / float64(m.L1Hits+m.L1Misses)
	}
	mispredictRate := func(m *testbed.Measurement) float64 {
		if m.Branches == 0 {
			return 0
		}
		return float64(m.Mispredicts) / float64(m.Branches)
	}

	mcf := measure("mcf")
	namd := measure("namd")
	perlbench := measure("perlbench")
	libquantum := measure("libquantum")

	// mcf: pointer chasing — low IPC, high miss rate.
	if ipc(mcf) >= ipc(namd) {
		t.Errorf("mcf IPC %.2f should trail compute-bound namd %.2f", ipc(mcf), ipc(namd))
	}
	if missRate(mcf) < 0.2 {
		t.Errorf("mcf L1 miss rate %.2f suspiciously low for pointer chasing", missRate(mcf))
	}
	// namd: steady compute — near-zero misses, few mispredicts.
	if missRate(namd) > 0.05 {
		t.Errorf("namd miss rate %.2f too high for a small-footprint kernel", missRate(namd))
	}
	// perlbench: the branchy integer code mispredicts far more often.
	if mispredictRate(perlbench) < 5*mispredictRate(namd)+0.01 {
		t.Errorf("perlbench mispredict rate %.3f should dwarf namd's %.3f",
			mispredictRate(perlbench), mispredictRate(namd))
	}
	// libquantum: streaming — plenty of L1 misses but decent IPC.
	if missRate(libquantum) < 0.05 {
		t.Errorf("libquantum miss rate %.3f too low for a streaming kernel", missRate(libquantum))
	}
}
