package testbed

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/tracestore"
)

// corruptAllRecords overwrites every record file in dir with garbage.
func corruptAllRecords(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".trace" {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("not a trace record"), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// storeRunConfig is a small replay-eligible run: 4 threads of a
// dec/jnz-closed loop (full trace) at a depressed supply.
func storeRunConfig(t testing.TB, p Platform, name string, period int) RunConfig {
	t.Helper()
	threads, err := SpreadPlacement(p.Chip, mulLoop(name, period), 4)
	if err != nil {
		t.Fatal(err)
	}
	return RunConfig{
		Threads:      threads,
		MaxCycles:    3000,
		WarmupCycles: 1000,
		SupplyVolts:  p.Nominal() - 0.10,
	}
}

func compiledWithStore(t testing.TB, p Platform, dir string) *CompiledPlatform {
	t.Helper()
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if dir != "" {
		st, err := tracestore.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		cp.SetTraceStore(st)
	}
	return cp
}

// TestStoreWarmSkipsCapture is the store's core contract: a second
// platform (standing in for a second process) sharing the store
// directory serves phase 1 from disk — a store hit, no capture time —
// and measures bit-identically.
func TestStoreWarmSkipsCapture(t *testing.T) {
	p := Bulldozer()
	dir := t.TempDir()
	rc := storeRunConfig(t, p, "warm", 96)

	cold := compiledWithStore(t, p, dir)
	want, err := cold.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	ts := cold.TraceStats()
	if ts.StoreMisses != 1 || ts.StoreHits != 0 {
		t.Fatalf("cold run: store hits/misses = %d/%d, want 0/1", ts.StoreHits, ts.StoreMisses)
	}
	if ts.CaptureNS == 0 {
		t.Error("cold run recorded no capture time")
	}
	if cold.TraceStore().Len() != 1 {
		t.Fatalf("store holds %d records after cold run, want 1", cold.TraceStore().Len())
	}

	warm := compiledWithStore(t, p, dir)
	got, err := warm.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	ts = warm.TraceStats()
	if ts.StoreHits != 1 || ts.StoreMisses != 0 {
		t.Fatalf("warm run: store hits/misses = %d/%d, want 1/0", ts.StoreHits, ts.StoreMisses)
	}
	if ts.CaptureNS != 0 {
		t.Errorf("warm run spent %d ns capturing; phase 1 should have been skipped", ts.CaptureNS)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("warm measurement differs from cold:\n got %+v\nwant %+v", got, want)
	}
}

// TestStoreBitIdentity holds the measurement invariant across every
// store state — disabled, cold, warm — for both a full-trace (dec/jnz)
// and a periodic (jmp-closed) program, with the store-free platform as
// the reference.
func TestStoreBitIdentity(t *testing.T) {
	p := Bulldozer()
	progs := map[string]RunConfig{}
	progs["full-trace"] = storeRunConfig(t, p, "bits", 96)
	{
		threads, err := SpreadPlacement(p.Chip, jmpLoop("bits-periodic", 64), 4)
		if err != nil {
			t.Fatal(err)
		}
		// mulpd operands take a few hundred iterations to saturate, and
		// Brent verification needs head + 3 periods: give it room.
		progs["periodic"] = RunConfig{
			Threads: threads, MaxCycles: 60000, WarmupCycles: 2000,
			SupplyVolts: p.Nominal() - 0.08,
		}
	}
	for name, rc := range progs {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			noStore := compiledWithStore(t, p, "")
			want, err := noStore.Run(rc)
			if err != nil {
				t.Fatal(err)
			}
			coldPlat := compiledWithStore(t, p, dir)
			cold, err := coldPlat.Run(rc)
			if err != nil {
				t.Fatal(err)
			}
			warmPlat := compiledWithStore(t, p, dir)
			warm, err := warmPlat.Run(rc)
			if err != nil {
				t.Fatal(err)
			}
			if wts := warmPlat.TraceStats(); wts.StoreHits != 1 {
				t.Fatalf("warm platform store hits = %d, want 1", wts.StoreHits)
			}
			if name == "periodic" {
				if sts := warmPlat.TraceStats(); sts.Periodic != 1 {
					t.Errorf("loaded trace lost its periodic decomposition: %+v", sts)
				}
			}
			if !reflect.DeepEqual(cold, want) {
				t.Errorf("cold-store measurement differs from store-free reference")
			}
			if !reflect.DeepEqual(warm, want) {
				t.Errorf("warm-store measurement differs from store-free reference")
			}
		})
	}
}

// TestStorePlatformDigestIsolation shares one directory between two
// platforms that differ only in a power-model coefficient — identical
// trace keys, different trace content. The digest salt must keep them
// from serving each other's records.
func TestStorePlatformDigestIsolation(t *testing.T) {
	dir := t.TempDir()
	pa := Bulldozer()
	pb := Bulldozer()
	pb.Power.FrontEndPJPerOp *= 2

	rcA := storeRunConfig(t, pa, "iso", 96)
	cpA := compiledWithStore(t, pa, dir)
	ma, err := cpA.Run(rcA)
	if err != nil {
		t.Fatal(err)
	}

	rcB := storeRunConfig(t, pb, "iso", 96)
	cpB := compiledWithStore(t, pb, dir)
	mb, err := cpB.Run(rcB)
	if err != nil {
		t.Fatal(err)
	}
	ts := cpB.TraceStats()
	if ts.StoreHits != 0 || ts.StoreMisses != 1 {
		t.Fatalf("altered platform store hits/misses = %d/%d, want 0/1 (digest collision?)",
			ts.StoreHits, ts.StoreMisses)
	}
	if ma.EnergyPJ == mb.EnergyPJ {
		t.Error("power-model change did not move energy; isolation test is vacuous")
	}
	if cpA.TraceStore().Len() != 2 {
		t.Errorf("store holds %d records, want 2 (one per platform digest)", cpA.TraceStore().Len())
	}
}

// TestStoreConcurrentPlatforms races two CompiledPlatforms over one
// store directory — concurrent readers and writers of overlapping keys
// — and checks every measurement against a store-free reference. Run
// under -race: this is the data-race gate for the store integration.
func TestStoreConcurrentPlatforms(t *testing.T) {
	p := Bulldozer()
	dir := t.TempDir()
	const nProgs = 4

	ref := compiledWithStore(t, p, "")
	rcs := make([]RunConfig, nProgs)
	want := make([]*Measurement, nProgs)
	for i := range rcs {
		rcs[i] = storeRunConfig(t, p, fmt.Sprintf("conc-%d", i), 64+8*i)
		m, err := ref.Run(rcs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m
	}

	plats := []*CompiledPlatform{
		compiledWithStore(t, p, dir),
		compiledWithStore(t, p, dir),
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cp := plats[g%2]
			for i := 0; i < 6; i++ {
				k := (g + i) % nProgs
				m, err := cp.Run(rcs[k])
				if err != nil {
					t.Errorf("goroutine %d run %d: %v", g, i, err)
					return
				}
				if !reflect.DeepEqual(m, want[k]) {
					t.Errorf("goroutine %d: measurement %d diverged from reference", g, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if hits := plats[0].TraceStats().StoreHits + plats[1].TraceStats().StoreHits; hits == 0 {
		t.Log("note: no store hits occurred (all traces were memory-resident); contract still held")
	}
}

// TestStoreCorruptRecordRecaptured plants garbage at a record's
// content address; the platform must fall back to capture and
// overwrite it with a good record.
func TestStoreCorruptRecordRecaptured(t *testing.T) {
	p := Bulldozer()
	dir := t.TempDir()
	rc := storeRunConfig(t, p, "corrupt", 96)

	cold := compiledWithStore(t, p, dir)
	want, err := cold.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt every record in the store.
	st := cold.TraceStore()
	if err := corruptAllRecords(dir); err != nil {
		t.Fatal(err)
	}
	warm := compiledWithStore(t, p, dir)
	got, err := warm.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	ts := warm.TraceStats()
	if ts.StoreHits != 0 || ts.StoreMisses != 1 {
		t.Fatalf("corrupt record: store hits/misses = %d/%d, want 0/1", ts.StoreHits, ts.StoreMisses)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("recaptured measurement differs from original")
	}
	// The recapture rewrote the record: a third platform now hits.
	third := compiledWithStore(t, p, dir)
	if _, err := third.Run(rc); err != nil {
		t.Fatal(err)
	}
	if ts := third.TraceStats(); ts.StoreHits != 1 {
		t.Errorf("rewritten record not served: %+v (store len %d)", ts, st.Len())
	}
}

// TestBatchUsesStore drives the generation-batched pipeline over a
// warm store: stage 1 must load its traces from disk instead of
// capturing.
func TestBatchUsesStore(t *testing.T) {
	p := Bulldozer()
	dir := t.TempDir()
	rcs := []RunConfig{
		storeRunConfig(t, p, "gen-a", 64),
		storeRunConfig(t, p, "gen-b", 80),
		storeRunConfig(t, p, "gen-a", 64), // duplicate: same trace group
	}

	cold := compiledWithStore(t, p, dir)
	wantMs, wantErrs := cold.MeasureBatch(rcs, 0, 0)
	for i, err := range wantErrs {
		if err != nil {
			t.Fatalf("cold batch slot %d: %v", i, err)
		}
	}
	if ts := cold.TraceStats(); ts.StoreMisses != 2 {
		t.Fatalf("cold batch store misses = %d, want 2 (distinct traces)", ts.StoreMisses)
	}

	warm := compiledWithStore(t, p, dir)
	gotMs, gotErrs := warm.MeasureBatch(rcs, 0, 0)
	for i, err := range gotErrs {
		if err != nil {
			t.Fatalf("warm batch slot %d: %v", i, err)
		}
	}
	ts := warm.TraceStats()
	if ts.StoreHits != 2 || ts.StoreMisses != 0 {
		t.Fatalf("warm batch store hits/misses = %d/%d, want 2/0", ts.StoreHits, ts.StoreMisses)
	}
	if ts.CaptureNS != 0 {
		t.Errorf("warm batch spent %d ns capturing", ts.CaptureNS)
	}
	for i := range rcs {
		if !reflect.DeepEqual(gotMs[i], wantMs[i]) {
			t.Errorf("warm batch slot %d diverged from cold batch", i)
		}
	}
}
