// Package testbed assembles the full measurement platform of Fig. 8:
// the cycle-level chip model drives per-cycle current into the PDN
// transient simulation, a virtual oscilloscope records the die voltage,
// an optional OS-interference model perturbs the threads, and a
// critical-path timing model decides whether the run failed at the
// configured supply voltage. This is the "Measure HW" box of the AUDIT
// framework (Fig. 5), built in software because the physical lab —
// Bulldozer silicon, probes, a disable-able VRM load line — is the one
// thing this reproduction cannot have.
package testbed

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/hostos"
	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/power"
	"repro/internal/scope"
	"repro/internal/uarch"
)

// Platform is a (chip, power model, PDN, failure model) bundle — one
// physical test system. Platforms are immutable descriptions; each Run
// builds fresh simulation state, so runs are independent and
// deterministic.
type Platform struct {
	Chip    uarch.ChipConfig
	Power   power.Model
	PDN     pdn.Config
	Failure FailureModel

	// ROMTolV, when positive, admits the reduced-order PDN replay
	// kernel (pdn.Compiled.ROM) for traces whose calibrated worst-case
	// die-voltage deviation from the exact kernel — ErrPerAmpV × peak
	// drive amps — stays within this many volts. Zero, the default,
	// keeps every replay on the exact bit-identity LU kernel. A
	// non-zero tolerance is part of the platform identity (it can move
	// measured voltages within the bound): see PlatformDigest.
	ROMTolV float64
}

// Bulldozer returns the paper's primary test system.
func Bulldozer() Platform {
	return Platform{
		Chip:    uarch.Bulldozer(),
		Power:   power.BulldozerModel(),
		PDN:     pdn.Bulldozer(),
		Failure: BulldozerFailureModel(),
	}
}

// Phenom returns the secondary system of §5.C: the same board with the
// older 45 nm processor swapped in.
func Phenom() Platform {
	return Platform{
		Chip:    uarch.Phenom(),
		Power:   power.PhenomModel(),
		PDN:     pdn.Phenom(),
		Failure: PhenomFailureModel(),
	}
}

// ThreadSpec places one software thread on a hardware core.
type ThreadSpec struct {
	Program *asm.Program
	Module  int
	Core    int
	// MaxInstrs bounds the thread's dynamic instruction count
	// (0 = run the program to natural completion).
	MaxInstrs uint64
	// StartSkew delays the thread's first decode by this many cycles.
	StartSkew uint64
}

// DitherSpec applies periodic front-end padding to one core: every
// PeriodCycles, the core loses PadCycles of decode. This is the
// testbed-level mechanism behind the dithering algorithm of §3.B
// ("apply one cycle worth of NOP padding every M×(L+H)^(c-1) cycles");
// padding by decode stall is energy-equivalent to NOP padding up to the
// few pJ a NOP costs in the decoder.
type DitherSpec struct {
	Core         int
	PeriodCycles uint64
	PadCycles    uint64
}

// RunConfig describes one measurement run.
type RunConfig struct {
	Threads []ThreadSpec
	// MaxCycles bounds the run; 0 means run until all threads finish
	// (required when any thread is unbounded).
	MaxCycles uint64
	// WarmupCycles are excluded from droop statistics (PDN settling and
	// cache warmup).
	WarmupCycles uint64
	// SupplyVolts overrides the VRM set-point (0 = PDN nominal). Used
	// by the voltage-at-failure procedure.
	SupplyVolts float64
	// FPThrottle caps FP issue (0 = chip config default).
	FPThrottle int
	// OS, when non-nil, injects timer-tick interference.
	OS *hostos.Scheduler
	// Dither applies periodic padding per core.
	Dither []DitherSpec
	// RecordWaveform captures the die voltage at the scope's rate.
	RecordWaveform bool
	// ScopeSampleHz is the capture rate when recording (default: full
	// simulation rate with peak detect).
	ScopeSampleHz float64
	// Histogram, when non-nil, is filled with every post-warmup sample.
	Histogram *scope.Histogram
	// TriggerThreshold, when positive, counts droop events below it.
	TriggerThreshold float64
	// ExactCycleLoop forces the reference per-cycle measurement loop on
	// CompiledPlatform, bypassing the trace-replay fast path and its
	// periodic-steady-state early exits. The exact loop is also taken
	// automatically when OS != nil (host-OS interference is aperiodic),
	// when MaxCycles is 0 or too large to buffer a trace, and for cycle
	// counters that the periodic extrapolation only approximates.
	ExactCycleLoop bool
}

// Validate checks a run configuration before any simulation state is
// built or drawn from pools. Platform.Run and CompiledPlatform.Run call
// it on entry, so a bad config (no threads, nil program, zero dither
// period) fails fast instead of surfacing mid-measurement; the trace
// cache key builder relies on the same invariants.
func (rc RunConfig) Validate() error {
	if len(rc.Threads) == 0 {
		return fmt.Errorf("testbed: no threads to run")
	}
	for i, ts := range rc.Threads {
		if ts.Program == nil {
			return fmt.Errorf("testbed: thread %d has no program", i)
		}
		if ts.Module < 0 || ts.Core < 0 {
			return fmt.Errorf("testbed: thread %d placement (%d,%d) negative", i, ts.Module, ts.Core)
		}
	}
	for _, d := range rc.Dither {
		if d.PeriodCycles == 0 {
			return fmt.Errorf("testbed: dither period must be positive")
		}
	}
	return nil
}

// Measurement is what one run produced.
type Measurement struct {
	// Cycles actually simulated.
	Cycles uint64
	// MaxDroopV is the worst excursion below nominal after warmup.
	MaxDroopV float64
	// MaxOvershootV is the worst excursion above nominal after warmup.
	MaxOvershootV float64
	// MinV is the absolute minimum die voltage after warmup.
	MinV float64
	// MeanV is the average die voltage after warmup.
	MeanV float64
	// AvgPowerW is average chip power (dynamic + leakage).
	AvgPowerW float64
	// EnergyPJ is total dynamic energy.
	EnergyPJ float64
	// Retired is total dynamic instructions.
	Retired uint64
	// UnitTotals counts issues per execution unit.
	UnitTotals [isa.NumUnits]uint64
	// Waveform is the scope capture (nil unless requested).
	Waveform []float64
	// DroopEvents counts triggered events (TriggerThreshold > 0).
	DroopEvents int
	// Branches and Mispredicts summarise control-flow behaviour.
	Branches    uint64
	Mispredicts uint64
	// Cache hit/miss totals per level.
	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64
	L3Hits, L3Misses uint64
	// Failed reports a critical-path timing violation; FailCycle is
	// when it first happened.
	Failed    bool
	FailCycle uint64
}

// Runner is anything that can execute one measurement run. Platform
// and CompiledPlatform both satisfy it, as do decorators that wrap a
// platform — notably faults.Injector, which perturbs runs with the
// failure modes of a physical lab. Code that only needs to take
// measurements (the GA's fitness path, sweeps, failure searches)
// should accept a Runner so any of these can stand in.
type Runner interface {
	Run(RunConfig) (*Measurement, error)
}

// Nominal returns the platform's nominal supply voltage.
func (p Platform) Nominal() float64 { return p.PDN.VNom }

// Run executes one measurement, building fresh chip and PDN state.
// Hot loops that run one platform repeatedly should Compile the
// platform and use CompiledPlatform.Run, which produces bit-identical
// measurements from pooled state.
func (p Platform) Run(rc RunConfig) (*Measurement, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	chip, err := cpu.NewChip(p.Chip, p.Power)
	if err != nil {
		return nil, err
	}
	if err := p.attachThreads(chip, rc); err != nil {
		return nil, err
	}
	net, err := pdn.New(p.PDN, p.Chip.CycleSeconds())
	if err != nil {
		return nil, err
	}
	supply := p.PDN.VNom
	if rc.SupplyVolts > 0 {
		supply = rc.SupplyVolts
		p.settle(net, supply)
	}
	return p.measure(chip, net, rc, supply, nil)
}

// attachThreads validates and places the run's threads on the chip and
// applies the run-level FP throttle.
func (p Platform) attachThreads(chip *cpu.Chip, rc RunConfig) error {
	for _, ts := range rc.Threads {
		if err := p.checkISASupport(ts.Program); err != nil {
			return err
		}
		th, err := cpu.NewThread(ts.Program, ts.MaxInstrs)
		if err != nil {
			return err
		}
		if err := chip.Attach(ts.Module, ts.Core, th); err != nil {
			return err
		}
	}
	if rc.FPThrottle > 0 {
		chip.SetFPThrottle(rc.FPThrottle)
	}
	return nil
}

// settleSteps is how long the regulator is given to settle at a new
// set-point before the threads start drawing current.
const settleSteps = 20000

// settle moves the regulator to a new set-point and steps the idle
// network (leakage only) until it settles.
func (p Platform) settle(net *pdn.PDN, supply float64) {
	net.SetSupply(supply)
	leak := p.Power.LeakageAmps(p.Chip.Modules, supply)
	for i := 0; i < settleSteps; i++ {
		net.Step(leak)
	}
}

// measure is the shared cycle loop behind Platform.Run and
// CompiledPlatform.Run: chip and net must already be attached and
// settled. scopeBuf, when non-nil, backs the waveform capture so
// pooled callers can recycle it.
func (p Platform) measure(chip *cpu.Chip, net *pdn.PDN, rc RunConfig, supply float64, scopeBuf []float64) (*Measurement, error) {
	dt := p.Chip.CycleSeconds()
	vNom := p.PDN.VNom

	// Apply start skews as initial decode stalls.
	for _, ts := range rc.Threads {
		if ts.StartSkew > 0 {
			g := ts.Module*p.Chip.CoresPerModule + ts.Core
			if err := chip.InjectStall(g, ts.StartSkew); err != nil {
				return nil, err
			}
		}
	}

	var sc *scope.Scope
	if rc.RecordWaveform {
		rate := rc.ScopeSampleHz
		if rate <= 0 {
			rate = p.Chip.ClockHz
		}
		s, err := scope.NewInto(p.Chip.ClockHz, rate, true, scopeBuf)
		if err != nil {
			return nil, err
		}
		sc = s
	}
	var trig *scope.Trigger
	if rc.TriggerThreshold > 0 {
		trig = scope.NewTrigger(rc.TriggerThreshold, 0.002)
	}

	leakage := p.Power.LeakageAmps(p.Chip.Modules, supply)
	m := &Measurement{MinV: supply}
	var sumV float64
	var nV uint64

	// Dither periods were validated by RunConfig.Validate before any
	// pooled state was grabbed.
	nextPad := make([]uint64, len(rc.Dither))
	for i, d := range rc.Dither {
		nextPad[i] = d.PeriodCycles
	}

	maxCycles := rc.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1 << 62
	}
	for cyc := uint64(0); cyc < maxCycles; cyc++ {
		if chip.Done() {
			break
		}
		if rc.OS != nil {
			if err := rc.OS.Apply(chip); err != nil {
				return nil, err
			}
		}
		for i := range rc.Dither {
			if cyc >= nextPad[i] {
				if err := chip.InjectStall(rc.Dither[i].Core, rc.Dither[i].PadCycles); err != nil {
					return nil, err
				}
				nextPad[i] += rc.Dither[i].PeriodCycles
			}
		}

		res := chip.Step()
		m.EnergyPJ += res.EnergyPJ
		for u := 0; u < int(isa.NumUnits); u++ {
			m.UnitTotals[u] += uint64(res.UnitIssues[u])
		}

		amps := power.Amps(res.EnergyPJ, dt, supply) + leakage
		net.Step(amps)
		v := net.VDie()

		if cyc >= rc.WarmupCycles {
			if d := vNom - v; d > m.MaxDroopV {
				m.MaxDroopV = d
			}
			if o := v - vNom; o > m.MaxOvershootV {
				m.MaxOvershootV = o
			}
			if v < m.MinV {
				m.MinV = v
			}
			sumV += v
			nV++
			if sc != nil {
				sc.Sample(v)
			}
			if trig != nil {
				trig.Sample(v)
			}
			if rc.Histogram != nil {
				rc.Histogram.Add(v)
			}
			if !m.Failed {
				if bad, _ := p.Failure.Check(v, &res); bad {
					m.Failed = true
					m.FailCycle = cyc
				}
			}
		}
	}
	m.Cycles = chip.Cycle()
	m.Retired = chip.Retired()
	st := chip.Stats()
	m.Branches, m.Mispredicts = st.Branches, st.Mispredicts
	m.L1Hits, m.L1Misses = st.L1Hits, st.L1Misses
	m.L2Hits, m.L2Misses = st.L2Hits, st.L2Misses
	m.L3Hits, m.L3Misses = st.L3Hits, st.L3Misses
	if nV > 0 {
		m.MeanV = sumV / float64(nV)
	}
	if m.Cycles > 0 {
		m.AvgPowerW = m.EnergyPJ*1e-12/(float64(m.Cycles)*dt) + p.Power.LeakageWattsPerModule*float64(p.Chip.Modules)
	}
	if sc != nil {
		m.Waveform = sc.Waveform()
	}
	if trig != nil {
		m.DroopEvents = trig.EventCount()
	}
	return m, nil
}

// checkISASupport rejects programs using instructions the chip lacks
// (FMA on the Phenom-style part), mirroring the incompatibility that
// kept SM1 off the older processor in §5.C.
func (p Platform) checkISASupport(prog *asm.Program) error {
	if p.Chip.HasFMA {
		return nil
	}
	for i := range prog.Code {
		if prog.Code[i].Op.Class == isa.ClassFMA {
			return fmt.Errorf("testbed: %s: instruction %q not supported by %s",
				prog.Name, prog.Code[i].Op.Name, p.Chip.Name)
		}
	}
	return nil
}

// SpreadPlacement spreads n identical threads the way the paper's
// experiments do: one thread per module while modules remain (1T/2T/4T
// runs), then filling sibling cores (8T). The returned specs share the
// given program.
func SpreadPlacement(cfg uarch.ChipConfig, prog *asm.Program, n int) ([]ThreadSpec, error) {
	if n < 1 || n > cfg.Threads() {
		return nil, fmt.Errorf("testbed: cannot place %d threads on %d cores", n, cfg.Threads())
	}
	specs := make([]ThreadSpec, 0, n)
	placed := 0
	for core := 0; core < cfg.CoresPerModule && placed < n; core++ {
		for mod := 0; mod < cfg.Modules && placed < n; mod++ {
			specs = append(specs, ThreadSpec{Program: prog, Module: mod, Core: core})
			placed++
		}
	}
	return specs, nil
}

// GlobalCore returns the chip-wide core index of a thread spec.
func (ts ThreadSpec) GlobalCore(cfg uarch.ChipConfig) int {
	return ts.Module*cfg.CoresPerModule + ts.Core
}
