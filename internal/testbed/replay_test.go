package testbed

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/scope"
)

// jmpLoop is a steady-state power loop the trace detector can prove
// periodic: jmp-closed (no monotone loop counter), pxor toggling whose
// data pattern repeats every two iterations, and mulpd whose operands
// saturate within a few hundred iterations. An addpd accumulator would
// not do — x += y keeps changing bits (and hence toggle energy) until
// y falls below ulp(x), ~2^53 iterations away — which is exactly the
// aperiodicity the detector's bit-exact verification is there to catch.
func jmpLoop(name string, period int) *asm.Program {
	b := asm.NewBuilder(name)
	b.InitToggle(16, 8)
	b.Label("loop")
	for i := 0; i < period/2; i++ {
		b.RR("pxor", isa.XMM(i%6), isa.XMM(12+i%4))
		b.RR("mulpd", isa.XMM(6+i%6), isa.XMM(12+(i+1)%4))
		b.Nop(1)
	}
	b.Nop(3 * (period - period/2))
	b.Branch("jmp", "loop")
	return b.MustBuild()
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

func relDiffU(a, b uint64) float64 {
	if a == b {
		return 0
	}
	hi, lo := a, b
	if lo > hi {
		hi, lo = lo, hi
	}
	return float64(hi-lo) / float64(hi)
}

// checkReplayTolerances compares a replay measurement against the exact
// loop under the fast path's accuracy contract: voltage statistics
// within voltTol volts, energy within relative 1e-9, unit issue totals
// exact, failure verdicts identical, cycle counters within 1%.
func checkReplayTolerances(t *testing.T, got, want *Measurement, voltTol float64) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Errorf("Cycles = %d, want %d", got.Cycles, want.Cycles)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"MinV", got.MinV, want.MinV},
		{"MeanV", got.MeanV, want.MeanV},
		{"MaxDroopV", got.MaxDroopV, want.MaxDroopV},
		{"MaxOvershootV", got.MaxOvershootV, want.MaxOvershootV},
	} {
		if d := math.Abs(c.got - c.want); d > voltTol {
			t.Errorf("%s = %.12f, want %.12f (|Δ| = %g > %g)", c.name, c.got, c.want, d, voltTol)
		}
	}
	if d := relDiff(got.EnergyPJ, want.EnergyPJ); d > 1e-9 {
		t.Errorf("EnergyPJ = %v, want %v (rel %g)", got.EnergyPJ, want.EnergyPJ, d)
	}
	if got.UnitTotals != want.UnitTotals {
		t.Errorf("UnitTotals = %v, want %v", got.UnitTotals, want.UnitTotals)
	}
	if got.Failed != want.Failed {
		t.Errorf("Failed = %v, want %v", got.Failed, want.Failed)
	}
	if got.Failed && want.Failed && got.FailCycle != want.FailCycle {
		t.Errorf("FailCycle = %d, want %d", got.FailCycle, want.FailCycle)
	}
	for _, c := range []struct {
		name      string
		got, want uint64
	}{
		{"Retired", got.Retired, want.Retired},
		{"Branches", got.Branches, want.Branches},
		{"L1Hits", got.L1Hits, want.L1Hits},
	} {
		if d := relDiffU(c.got, c.want); d > 0.01 {
			t.Errorf("%s = %d, want %d (rel %g)", c.name, c.got, c.want, d)
		}
	}
}

// TestReplayPeriodicMatchesExact is the headline fast-path equivalence
// check: a jmp-closed loop must be detected periodic, replayed with a
// PDN steady-state early exit, and agree with the exact cycle loop to
// tight tolerances; the second run must come from the trace cache.
func TestReplayPeriodicMatchesExact(t *testing.T) {
	p := Bulldozer()
	prog := jmpLoop("periodic", resonancePeriodCycles(p))
	threads, err := SpreadPlacement(p.Chip, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 2M cycles: long enough for the die-voltage response to converge
	// (the board stage rings for ~10^5-cycle e-folding times) so the
	// PDN early exit demonstrably fires.
	rc := RunConfig{
		Threads:      threads,
		MaxCycles:    2_000_000,
		WarmupCycles: 2000,
		SupplyVolts:  p.Nominal() - 0.10,
	}
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	exact := rc
	exact.ExactCycleLoop = true
	want, err := cp.Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 1; pass <= 2; pass++ {
		got, err := cp.Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		checkReplayTolerances(t, got, want, 1e-9)
	}
	st := cp.TraceStats()
	if st.Misses != 1 || st.Hits < 1 {
		t.Errorf("trace cache misses/hits = %d/%d, want 1/≥1", st.Misses, st.Hits)
	}
	if st.Periodic != 1 {
		t.Errorf("periodic traces = %d, want 1 (detector missed the jmp loop)", st.Periodic)
	}
	if st.PDNEarlyExits < 1 {
		t.Errorf("PDN early exits = %d, want ≥1", st.PDNEarlyExits)
	}
}

// TestReplayNonPeriodicBitExact: a dec/jnz loop's energy follows the
// binary ruler sequence, so period verification must reject it and the
// full-trace replay must be bit-identical to the exact loop.
func TestReplayNonPeriodicBitExact(t *testing.T) {
	p := Bulldozer()
	prog := mulLoop("nonperiodic", resonancePeriodCycles(p))
	threads, err := SpreadPlacement(p.Chip, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{
		Threads:      threads,
		MaxCycles:    12000,
		WarmupCycles: 2000,
		SupplyVolts:  p.Nominal() - 0.10,
	}
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	exact := rc
	exact.ExactCycleLoop = true
	want, err := cp.Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("non-periodic replay differs from exact loop:\n got %+v\nwant %+v", got, want)
	}
	if st := cp.TraceStats(); st.Periodic != 0 {
		t.Errorf("periodic traces = %d, want 0 (dec/jnz must fail verification)", st.Periodic)
	}
}

// TestReplayVariants covers the remaining run shapes the fast path must
// reproduce: heterogeneous genomes, dithered runs (the detected period
// folds the dither period in via the fingerprint), FP-throttled runs,
// and MaxInstrs-bounded threads (which must disable detection).
func TestReplayVariants(t *testing.T) {
	p := Bulldozer()
	base := resonancePeriodCycles(p)
	progA := jmpLoop("varA", base)
	progB := jmpLoop("varB", base/2)
	cases := []struct {
		name  string
		rc    RunConfig
		exact bool // expect bit-exact (full-stream) agreement
	}{
		{
			name: "hetero",
			rc: RunConfig{
				Threads: []ThreadSpec{
					{Program: progA, Module: 0, Core: 0},
					{Program: progB, Module: 1, Core: 0},
				},
				MaxCycles: 40000, WarmupCycles: 2000,
			},
		},
		{
			name: "dithered",
			rc: RunConfig{
				Threads:   []ThreadSpec{{Program: progA, Module: 0, Core: 0}},
				MaxCycles: 40000, WarmupCycles: 2000,
				Dither: []DitherSpec{{Core: 0, PeriodCycles: 64, PadCycles: 2}},
			},
		},
		{
			name: "throttled",
			rc: RunConfig{
				Threads:   []ThreadSpec{{Program: progA, Module: 0, Core: 0}},
				MaxCycles: 40000, WarmupCycles: 2000,
				FPThrottle: 1,
			},
		},
		{
			name: "maxinstrs",
			rc: RunConfig{
				Threads:   []ThreadSpec{{Program: progA, Module: 0, Core: 0, MaxInstrs: 5000}},
				MaxCycles: 40000, WarmupCycles: 2000,
			},
			exact: true, // detection disabled → full trace → bit-exact
		},
		{
			name: "skewed",
			rc: RunConfig{
				Threads: []ThreadSpec{
					{Program: progA, Module: 0, Core: 0},
					{Program: progA, Module: 1, Core: 0, StartSkew: 37},
				},
				MaxCycles: 40000, WarmupCycles: 2000,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp, err := p.Compile()
			if err != nil {
				t.Fatal(err)
			}
			exact := tc.rc
			exact.ExactCycleLoop = true
			want, err := cp.Run(exact)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cp.Run(tc.rc)
			if err != nil {
				t.Fatal(err)
			}
			if tc.exact {
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("replay differs from exact loop:\n got %+v\nwant %+v", got, want)
				}
			} else {
				checkReplayTolerances(t, got, want, 1e-9)
			}
		})
	}
}

// TestReplayDoneProgramBitExact: a straight-line program finishes long
// before MaxCycles; the trace ends with it and replay must agree with
// the exact loop bit for bit, including the cycle count.
func TestReplayDoneProgramBitExact(t *testing.T) {
	p := Bulldozer()
	b := asm.NewBuilder("straight")
	b.InitToggle(8, 4)
	for i := 0; i < 200; i++ {
		b.RR("mulpd", isa.XMM(i%8), isa.XMM(8+i%4))
		b.Nop(1)
	}
	prog := b.MustBuild()
	rc := RunConfig{
		Threads:      []ThreadSpec{{Program: prog, Module: 0, Core: 0}},
		MaxCycles:    5000,
		WarmupCycles: 100,
	}
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	exact := rc
	exact.ExactCycleLoop = true
	want, err := cp.Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("done-program replay differs:\n got %+v\nwant %+v", got, want)
	}
	if got.Cycles >= rc.MaxCycles {
		t.Fatalf("program did not finish early (Cycles = %d)", got.Cycles)
	}
}

// TestReplayInstrumentedPeriodic: scope/trigger/histogram consumers
// need every sample, so a periodic trace is streamed in full — the
// whole voltage path (waveform, histogram, droop events, energy) must
// be bit-identical to the exact loop; only the chip cycle counters are
// extrapolated.
func TestReplayInstrumentedPeriodic(t *testing.T) {
	p := Bulldozer()
	prog := jmpLoop("instr", resonancePeriodCycles(p))
	threads, err := SpreadPlacement(p.Chip, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	mkRC := func(h *scope.Histogram) RunConfig {
		return RunConfig{
			Threads:          threads,
			MaxCycles:        20000,
			WarmupCycles:     2000,
			SupplyVolts:      p.Nominal() - 0.10,
			RecordWaveform:   true,
			TriggerThreshold: p.Nominal() - 0.015,
			Histogram:        h,
		}
	}
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	wantHist := newHist(t, p)
	exact := mkRC(wantHist)
	exact.ExactCycleLoop = true
	want, err := cp.Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	gotHist := newHist(t, p)
	got, err := cp.Run(mkRC(gotHist))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Waveform) != len(want.Waveform) {
		t.Fatalf("waveform length %d != %d", len(got.Waveform), len(want.Waveform))
	}
	for i := range want.Waveform {
		if got.Waveform[i] != want.Waveform[i] {
			t.Fatalf("waveform[%d] = %v, want %v (bit-identical)", i, got.Waveform[i], want.Waveform[i])
		}
	}
	if !reflect.DeepEqual(gotHist, wantHist) {
		t.Fatal("histograms differ")
	}
	if got.MinV != want.MinV || got.MeanV != want.MeanV || got.EnergyPJ != want.EnergyPJ ||
		got.DroopEvents != want.DroopEvents || got.UnitTotals != want.UnitTotals ||
		got.Failed != want.Failed || got.FailCycle != want.FailCycle {
		t.Fatalf("instrumented voltage path diverged:\n got %+v\nwant %+v", got, want)
	}
	checkReplayTolerances(t, got, want, 0)
}

// TestReplayFailureLadderSharesOneTrace: the trace key excludes the
// supply voltage, so the whole voltage-at-failure ladder must build
// phase 1 exactly once and agree with the slow path's verdict.
func TestReplayFailureLadderSharesOneTrace(t *testing.T) {
	p := Bulldozer()
	prog := jmpLoop("ladder", resonancePeriodCycles(p))
	threads, err := SpreadPlacement(p.Chip, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Threads: threads, MaxCycles: 20000, WarmupCycles: 2000}
	floor := p.Nominal() - 0.25

	vSlow, okSlow, err := p.FindFailureVoltage(rc, floor)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	vFast, okFast, err := cp.FindFailureVoltage(rc, floor)
	if err != nil {
		t.Fatal(err)
	}
	if vFast != vSlow || okFast != okSlow {
		t.Fatalf("fast ladder (%.4f, %v) != slow (%.4f, %v)", vFast, okFast, vSlow, okSlow)
	}
	if st := cp.TraceStats(); st.Misses != 1 || st.Hits < 1 {
		t.Errorf("ladder trace cache misses/hits = %d/%d, want 1 build shared by ≥1 replays", st.Misses, st.Hits)
	}
}

// TestExactCycleLoopBypassesCache: the escape hatch must not touch the
// trace machinery at all.
func TestExactCycleLoopBypassesCache(t *testing.T) {
	p := Bulldozer()
	prog := jmpLoop("bypass", resonancePeriodCycles(p))
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{
		Threads:        []ThreadSpec{{Program: prog, Module: 0, Core: 0}},
		MaxCycles:      8000,
		WarmupCycles:   1000,
		ExactCycleLoop: true,
	}
	if _, err := cp.Run(rc); err != nil {
		t.Fatal(err)
	}
	if st := cp.TraceStats(); st != (TraceStats{}) {
		t.Errorf("ExactCycleLoop touched the trace cache: %+v", st)
	}
}

// TestRunConfigValidate: bad configs must fail identically on both
// paths, before any simulation state is built.
func TestRunConfigValidate(t *testing.T) {
	p := Bulldozer()
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	good := jmpLoop("ok", 64)
	cases := []struct {
		name string
		rc   RunConfig
	}{
		{"no threads", RunConfig{MaxCycles: 100}},
		{"nil program", RunConfig{Threads: []ThreadSpec{{}}, MaxCycles: 100}},
		{"negative placement", RunConfig{Threads: []ThreadSpec{{Program: good, Module: -1}}, MaxCycles: 100}},
		{"zero dither period", RunConfig{
			Threads:   []ThreadSpec{{Program: good}},
			MaxCycles: 100,
			Dither:    []DitherSpec{{Core: 0, PeriodCycles: 0, PadCycles: 1}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.rc.Validate(); err == nil {
				t.Error("Validate accepted a bad config")
			}
			if _, err := p.Run(tc.rc); err == nil {
				t.Error("Platform.Run accepted a bad config")
			}
			if _, err := cp.Run(tc.rc); err == nil {
				t.Error("CompiledPlatform.Run accepted a bad config")
			}
		})
	}
}

// TestTraceCacheConcurrent hammers one platform's trace cache from
// parallel goroutines mixing cold builds, cache hits and two distinct
// configs; every result must equal its serial reference. Run under
// -race in CI.
func TestTraceCacheConcurrent(t *testing.T) {
	p := Bulldozer()
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	base := resonancePeriodCycles(p)
	progs := []*asm.Program{jmpLoop("ccA", base), mulLoop("ccB", base)}
	mkRC := func(prog *asm.Program) RunConfig {
		threads, err := SpreadPlacement(p.Chip, prog, 4)
		if err != nil {
			t.Fatal(err)
		}
		return RunConfig{Threads: threads, MaxCycles: 20000, WarmupCycles: 2000, SupplyVolts: p.Nominal() - 0.10}
	}
	rcs := []RunConfig{mkRC(progs[0]), mkRC(progs[1])}
	want := make([]*Measurement, len(rcs))
	for i, rc := range rcs {
		if want[i], err = cp.Run(rc); err != nil {
			t.Fatal(err)
		}
	}
	cp.ClearTraceCache() // force some workers to rebuild concurrently

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				k := (w + i) % len(rcs)
				m, err := cp.Run(rcs[k])
				if err != nil {
					errs[w] = err
					return
				}
				if !reflect.DeepEqual(m, want[k]) {
					errs[w] = errMismatch
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent replay diverged from serial reference" }
