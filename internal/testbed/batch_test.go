package testbed

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/asm"
)

// batchSlate builds a mixed generation exercising every MeasureBatch
// path: distinct non-periodic traces (lane kernel), a shared trace at
// two supplies, a periodic trace (affine solo replay), a waveform
// consumer (serial replay), an exact-loop config, a MaxInstrs-bounded
// run (full trace, bit-exact replay), exact duplicates (memo dedup)
// and one invalid config (per-slot error).
func batchSlate(t *testing.T, p Platform) []RunConfig {
	t.Helper()
	base := resonancePeriodCycles(p)
	place := func(prog *asm.Program) []ThreadSpec {
		threads, err := SpreadPlacement(p.Chip, prog, 4)
		if err != nil {
			t.Fatal(err)
		}
		return threads
	}
	var rcs []RunConfig
	// Non-periodic lane fodder with staggered lengths so lanes retire
	// at different times mid-batch.
	for i, cycles := range []uint64{8000, 12000, 16000, 10000, 14000} {
		rcs = append(rcs, RunConfig{
			Threads:      place(mulLoop(fmt.Sprintf("lane%d", i), base+2*i)),
			MaxCycles:    cycles,
			WarmupCycles: 1000,
			SupplyVolts:  p.Nominal() - 0.08,
		})
	}
	shared := place(mulLoop("shared", base/2))
	rcs = append(rcs,
		// Same trace, two supplies: one capture, two lane replays.
		RunConfig{Threads: shared, MaxCycles: 9000, WarmupCycles: 500},
		RunConfig{Threads: shared, MaxCycles: 9000, WarmupCycles: 500, SupplyVolts: p.Nominal() - 0.12},
		// Periodic: solo replay through the affine early-exit path.
		RunConfig{Threads: place(jmpLoop("periodicB", base)), MaxCycles: 60000, WarmupCycles: 2000, SupplyVolts: p.Nominal() - 0.10},
		// Sample consumer: serial replay, full stream.
		RunConfig{Threads: place(jmpLoop("wave", base)), MaxCycles: 15000, WarmupCycles: 1000, RecordWaveform: true},
		// Reference cycle loop.
		RunConfig{Threads: place(mulLoop("exact", base)), MaxCycles: 6000, WarmupCycles: 500, ExactCycleLoop: true},
		// MaxInstrs disables period detection but still traces.
		RunConfig{Threads: []ThreadSpec{{Program: mulLoop("bounded", base), MaxInstrs: 4000}}, MaxCycles: 20000, WarmupCycles: 500},
		// Exact duplicates of slot 0: intra-batch memo dedup.
		rcs[0],
		rcs[0],
		// Invalid: per-slot error, must not poison the batch.
		RunConfig{MaxCycles: 100},
	)
	return rcs
}

// TestMeasureBatchMatchesRun is the generation-pipeline equivalence
// property: for every lane width, worker count and population order,
// each slot of MeasureBatch must equal the serial CompiledPlatform.Run
// of the same config bit for bit. Run under -race in CI.
func TestMeasureBatchMatchesRun(t *testing.T) {
	p := Bulldozer()
	rcs := batchSlate(t, p)

	ref, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*Measurement, len(rcs))
	wantErr := make([]error, len(rcs))
	for i, rc := range rcs {
		want[i], wantErr[i] = ref.Run(rc)
	}

	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for _, lanes := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 4} {
			for pass := 0; pass < 2; pass++ {
				perm := rng.Perm(len(rcs))
				shuffled := make([]RunConfig, len(rcs))
				for to, from := range perm {
					shuffled[to] = rcs[from]
				}
				ms, errs := cp.MeasureBatch(shuffled, lanes, workers)
				for to, from := range perm {
					tag := fmt.Sprintf("lanes=%d workers=%d pass=%d slot=%d(rc %d)", lanes, workers, pass, to, from)
					if (errs[to] == nil) != (wantErr[from] == nil) {
						t.Fatalf("%s: err = %v, want %v", tag, errs[to], wantErr[from])
					}
					if errs[to] != nil {
						continue
					}
					if !reflect.DeepEqual(ms[to], want[from]) {
						t.Fatalf("%s: batched measurement differs from serial:\n got %+v\nwant %+v", tag, ms[to], want[from])
					}
				}
			}
		}
	}
	st := cp.TraceStats()
	if st.BatchRuns == 0 {
		t.Error("TraceStats.BatchRuns = 0 after MeasureBatch calls")
	}
	if st.LaneBatches == 0 || st.LaneRuns < st.LaneBatches {
		t.Errorf("lane counters %d runs / %d batches: kernel never engaged", st.LaneRuns, st.LaneBatches)
	}
}

// TestMeasureBatchSharesCaptures: N candidates over K distinct programs
// must build exactly K traces, and the lane kernel must see the
// non-periodic replays.
func TestMeasureBatchSharesCaptures(t *testing.T) {
	p := Bulldozer()
	base := resonancePeriodCycles(p)
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	const distinct = 3
	var rcs []RunConfig
	for i := 0; i < distinct; i++ {
		threads, err := SpreadPlacement(p.Chip, mulLoop(fmt.Sprintf("cap%d", i), base+i), 4)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 4; s++ {
			rcs = append(rcs, RunConfig{
				Threads:      threads,
				MaxCycles:    10000,
				WarmupCycles: 500,
				SupplyVolts:  p.Nominal() - 0.02*float64(s+1), // distinct memo keys
			})
		}
	}
	ms, errs := cp.MeasureBatch(rcs, 8, 4)
	for i := range rcs {
		if errs[i] != nil {
			t.Fatalf("slot %d: %v", i, errs[i])
		}
		if ms[i] == nil {
			t.Fatalf("slot %d: nil measurement", i)
		}
	}
	st := cp.TraceStats()
	if st.Misses != distinct {
		t.Errorf("trace builds = %d, want %d (capture sharing broken)", st.Misses, distinct)
	}
	if st.Hits != uint64(len(rcs)-distinct) {
		t.Errorf("trace hits = %d, want %d", st.Hits, len(rcs)-distinct)
	}
	if st.LaneRuns != uint64(len(rcs)) {
		t.Errorf("lane runs = %d, want %d (every slot is non-periodic and memoable)", st.LaneRuns, len(rcs))
	}
	// 12 lane jobs at width 8 → one full pass and one 4-lane pass.
	if st.LaneBatches != 2 {
		t.Errorf("lane batches = %d, want 2", st.LaneBatches)
	}
}
