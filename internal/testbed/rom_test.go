package testbed

import (
	"reflect"
	"testing"
)

// romTol is the declared die-voltage tolerance used by the ROM suite:
// 10 µV, orders of magnitude above the ROM's calibrated error at these
// drive levels and orders of magnitude below any failure threshold or
// droop statistic the suite compares.
const romTol = 1e-5

func romPlatform() Platform {
	p := Bulldozer()
	p.ROMTolV = romTol
	return p
}

// TestROMReplayWithinTolerance runs the fast path's non-periodic
// replay shapes — plain, dithered, FP-throttled, heterogeneous, and a
// reduced-supply failure rung — on a ROM-enabled platform and checks
// every measurement against the exact-kernel platform within the
// declared tolerance. Chip-side fields (energy, issue totals, cycle
// counters) must agree exactly: the ROM only touches the PDN.
func TestROMReplayWithinTolerance(t *testing.T) {
	base := resonancePeriodCycles(Bulldozer())
	progA := mulLoop("romA", base)
	progB := mulLoop("romB", base/2)
	cases := []struct {
		name string
		rc   RunConfig
	}{
		{
			name: "plain",
			rc: RunConfig{
				Threads:   []ThreadSpec{{Program: progA, Module: 0, Core: 0}},
				MaxCycles: 12000, WarmupCycles: 2000,
			},
		},
		{
			name: "hetero",
			rc: RunConfig{
				Threads: []ThreadSpec{
					{Program: progA, Module: 0, Core: 0},
					{Program: progB, Module: 1, Core: 0},
				},
				MaxCycles: 12000, WarmupCycles: 2000,
			},
		},
		{
			name: "dithered",
			rc: RunConfig{
				Threads:   []ThreadSpec{{Program: progA, Module: 0, Core: 0}},
				MaxCycles: 12000, WarmupCycles: 2000,
				Dither:    []DitherSpec{{Core: 0, PeriodCycles: 64, PadCycles: 2}},
			},
		},
		{
			name: "throttled",
			rc: RunConfig{
				Threads:    []ThreadSpec{{Program: progA, Module: 0, Core: 0}},
				MaxCycles:  12000, WarmupCycles: 2000,
				FPThrottle: 1,
			},
		},
		{
			name: "ladder-rung",
			rc: RunConfig{
				Threads:     []ThreadSpec{{Program: progA, Module: 0, Core: 0}},
				MaxCycles:   12000, WarmupCycles: 2000,
				SupplyVolts: Bulldozer().Nominal() - 0.1125,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exactCP, err := Bulldozer().Compile()
			if err != nil {
				t.Fatal(err)
			}
			romCP, err := romPlatform().Compile()
			if err != nil {
				t.Fatal(err)
			}
			want, err := exactCP.Run(tc.rc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := romCP.Run(tc.rc)
			if err != nil {
				t.Fatal(err)
			}
			checkReplayTolerances(t, got, want, romTol)
			if got.EnergyPJ != want.EnergyPJ || got.UnitTotals != want.UnitTotals {
				t.Errorf("chip-side fields moved under ROM: energy %v vs %v", got.EnergyPJ, want.EnergyPJ)
			}
			if st := romCP.TraceStats(); st.ROMReplays != 1 || st.ExactReplays != 0 {
				t.Errorf("ROM platform replay counters = (rom %d, exact %d), want (1, 0)", st.ROMReplays, st.ExactReplays)
			}
			if st := exactCP.TraceStats(); st.ROMReplays != 0 || st.ExactReplays != 1 {
				t.Errorf("exact platform replay counters = (rom %d, exact %d), want (0, 1)", st.ROMReplays, st.ExactReplays)
			}
		})
	}
}

// TestROMFailureLadderMatchesExact: the voltage-at-failure descent —
// the statistic the GA optimizes — must agree between the ROM and
// exact kernels, because the ROM's worst-case error (≪ romTol) is far
// inside the 12.5 mV ladder step.
func TestROMFailureLadderMatchesExact(t *testing.T) {
	prog := mulLoop("romladder", resonancePeriodCycles(Bulldozer()))
	threads, err := SpreadPlacement(Bulldozer().Chip, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Threads: threads, MaxCycles: 20000, WarmupCycles: 2000}
	floor := Bulldozer().Nominal() - 0.25

	exactCP, err := Bulldozer().Compile()
	if err != nil {
		t.Fatal(err)
	}
	romCP, err := romPlatform().Compile()
	if err != nil {
		t.Fatal(err)
	}
	vWant, okWant, err := exactCP.FindFailureVoltage(rc, floor)
	if err != nil {
		t.Fatal(err)
	}
	vGot, okGot, err := romCP.FindFailureVoltage(rc, floor)
	if err != nil {
		t.Fatal(err)
	}
	if vGot != vWant || okGot != okWant {
		t.Fatalf("ROM ladder (%.4f, %v) != exact (%.4f, %v)", vGot, okGot, vWant, okWant)
	}
	if st := romCP.TraceStats(); st.ROMReplays == 0 {
		t.Errorf("ladder never used the ROM kernel (rom %d, exact %d)", st.ROMReplays, st.ExactReplays)
	}
}

// TestROMBatchWithinTolerance drives the generation pipeline with
// automatic lane selection on a ROM platform: every slot must match
// the exact platform within tolerance, the batch must actually ride
// the multi-lane ROM kernel, and auto width must split the jobs so
// every worker gets a batch (the L8xW8 regression shape).
func TestROMBatchWithinTolerance(t *testing.T) {
	base := resonancePeriodCycles(Bulldozer())
	rcs := make([]RunConfig, 6)
	for i := range rcs {
		prog := mulLoop("rombatch"+string(rune('a'+i)), base/2+7*i)
		rcs[i] = RunConfig{
			Threads:      []ThreadSpec{{Program: prog, Module: 0, Core: 0}},
			MaxCycles:    10000 + uint64(i)*500,
			WarmupCycles: 2000,
		}
	}
	exactCP, err := Bulldozer().Compile()
	if err != nil {
		t.Fatal(err)
	}
	romCP, err := romPlatform().Compile()
	if err != nil {
		t.Fatal(err)
	}
	const workers = 2
	wantMS, wantErrs := exactCP.MeasureBatch(rcs, 0, workers)
	gotMS, gotErrs := romCP.MeasureBatch(rcs, 0, workers)
	for i := range rcs {
		if wantErrs[i] != nil || gotErrs[i] != nil {
			t.Fatalf("slot %d errors: exact %v, rom %v", i, wantErrs[i], gotErrs[i])
		}
		checkReplayTolerances(t, gotMS[i], wantMS[i], romTol)
	}
	st := romCP.TraceStats()
	if st.ROMReplays != 6 || st.ExactReplays != 0 {
		t.Errorf("replay counters = (rom %d, exact %d), want (6, 0)", st.ROMReplays, st.ExactReplays)
	}
	// 6 lane jobs over 2 workers: auto width must pick ceil(6/2) = 3
	// lanes → 2 full batches, keeping both workers busy.
	if st.LaneBatches != 2 || st.LaneRuns != 6 {
		t.Errorf("lane batches/runs = %d/%d, want 2/6 under auto width", st.LaneBatches, st.LaneRuns)
	}
}

// TestROMOffBitIdentical pins the default: with ROMTolV zero the
// replay pipeline must not touch the ROM at all, and results are
// bit-identical run to run (the pre-ROM exact path, untouched).
func TestROMOffBitIdentical(t *testing.T) {
	prog := mulLoop("romoff", resonancePeriodCycles(Bulldozer()))
	rc := RunConfig{
		Threads:   []ThreadSpec{{Program: prog, Module: 0, Core: 0}},
		MaxCycles: 10000, WarmupCycles: 2000,
	}
	a, err := Bulldozer().Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bulldozer().Compile()
	if err != nil {
		t.Fatal(err)
	}
	ma, err := a.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ma, mb) {
		t.Fatalf("ROM-off runs differ:\n %+v\n %+v", ma, mb)
	}
	if st := a.TraceStats(); st.ROMReplays != 0 || st.ExactReplays != 1 {
		t.Errorf("replay counters = (rom %d, exact %d), want (0, 1)", st.ROMReplays, st.ExactReplays)
	}
}

// TestROMTinyToleranceFallsBackExact: a positive tolerance smaller
// than the trace's worst-case ROM error must demote the replay to the
// exact kernel — and produce its bit-exact result — rather than run
// the ROM out of tolerance.
func TestROMTinyToleranceFallsBackExact(t *testing.T) {
	prog := mulLoop("romtiny", resonancePeriodCycles(Bulldozer()))
	rc := RunConfig{
		Threads:   []ThreadSpec{{Program: prog, Module: 0, Core: 0}},
		MaxCycles: 10000, WarmupCycles: 2000,
	}
	exactCP, err := Bulldozer().Compile()
	if err != nil {
		t.Fatal(err)
	}
	tiny := Bulldozer()
	tiny.ROMTolV = 1e-30
	tinyCP, err := tiny.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := exactCP.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tinyCP.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tiny-tolerance replay differs from exact:\n got %+v\nwant %+v", got, want)
	}
	if st := tinyCP.TraceStats(); st.ROMReplays != 0 || st.ExactReplays != 1 {
		t.Errorf("replay counters = (rom %d, exact %d), want (0, 1)", st.ROMReplays, st.ExactReplays)
	}
}

// TestAutoLanesShape pins the automatic width policy: narrowest width
// that still hands every worker a batch, clamped by the calibrated
// kernel width and the hard lane cap.
func TestAutoLanesShape(t *testing.T) {
	cp, err := Bulldozer().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := cp.autoLanes(1, 8); got != 1 {
		t.Errorf("autoLanes(1, 8) = %d, want 1 (solo job)", got)
	}
	if got := cp.autoLanes(6, 2); got != 3 {
		t.Errorf("autoLanes(6, 2) = %d, want 3", got)
	}
	// The regression shape: 32 jobs over 8 workers must split into 8
	// batches of 4, not 4 batches of 8.
	if got := cp.autoLanes(32, 8); got != 4 {
		t.Errorf("autoLanes(32, 8) = %d, want 4", got)
	}
	w := cp.kernelLanes()
	switch w {
	case 4, 8, 16, 32:
	default:
		t.Fatalf("kernelLanes() = %d, not a calibrated width", w)
	}
	if got := cp.autoLanes(64*w, 2); got != w {
		t.Errorf("autoLanes(%d, 2) = %d, want clamp to kernel width %d", 64*w, got, w)
	}
	if got := cp.autoLanes(10000, 1); got > maxBatchLanes {
		t.Errorf("autoLanes(10000, 1) = %d, exceeds maxBatchLanes", got)
	}
}

// TestPlatformDigestROMSensitivity: enabling the ROM, or changing its
// tolerance, changes the platform digest — so corpus replay against a
// baseline taken on the exact platform classifies as platform skew,
// never DRIFT — while ROMTolV zero leaves every pre-ROM digest (and
// every corpus baselined on one) untouched.
func TestPlatformDigestROMSensitivity(t *testing.T) {
	base := Bulldozer()
	d0 := PlatformDigest(base)

	romA := base
	romA.ROMTolV = romTol
	romB := base
	romB.ROMTolV = 2 * romTol
	dA, dB := PlatformDigest(romA), PlatformDigest(romB)
	if dA == d0 {
		t.Error("enabling ROMTolV did not change the platform digest")
	}
	if dA == dB {
		t.Error("different ROM tolerances share a platform digest")
	}

	zero := base
	zero.ROMTolV = 0
	if PlatformDigest(zero) != d0 {
		t.Error("explicit ROMTolV = 0 changed the digest (must stay the exact-platform digest)")
	}
}
