package testbed

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pdn"
)

// This file is the generation-batched evaluation pipeline: the GA hands
// the testbed a whole generation's run configs at once and the
// evaluator exploits the batch shape that per-candidate Run calls
// cannot see. Stage 1 dedupes the configs down to distinct chip traces
// and captures the missing ones on a worker pool (the expensive chip
// simulation runs once per distinct program, not once per candidate).
// Stage 2 replays the ready traces through the multi-lane PDN kernel —
// pdn.Batch advances up to `lanes` candidate networks per pass over the
// shared factorization — with runs that need the serial machinery
// (sample consumers, periodic affine replays, exact-loop configs)
// dispatched as solo jobs on the same pool.
//
// Every measurement is bit-identical to CompiledPlatform.Run of the
// same config: lane replays fold through the same replayFold in the
// same per-cycle order over bit-identical kernel output, and everything
// else literally calls the serial path.

// DefaultBatchLanes is the fixed lane width callers may pass when they
// want to bypass automatic selection. Eight lanes is where the blocked
// multi-RHS solve saturates on the PDN-sized systems this repo ships —
// but fixing the width can idle workers when a generation doesn't
// split evenly (see autoLanes), which is why lanes <= 0 now selects
// the width automatically instead of defaulting here.
const DefaultBatchLanes = 8

// maxBatchLanes bounds the lane width; wider batches spill the solve's
// register blocks without adding throughput.
const maxBatchLanes = 32

// BatchRunner is a Runner that can evaluate a whole generation at once.
// The GA feeds it populations when available; decorators that cannot
// batch (e.g. fault injectors, which perturb runs individually) simply
// don't implement it and the GA stays per-candidate.
type BatchRunner interface {
	Runner
	// MeasureBatch measures every config, returning slot-aligned
	// measurements and errors (exactly one of ms[i], errs[i] is
	// non-nil). lanes <= 0 selects the lane width automatically from
	// the batch shape and a per-platform kernel calibration; workers
	// <= 0 selects GOMAXPROCS. The width never affects results, only
	// throughput.
	MeasureBatch(rcs []RunConfig, lanes, workers int) ([]*Measurement, []error)
}

// ContextBatchRunner is a BatchRunner whose batch call honours
// cancellation: once ctx is cancelled, no further work units are
// started, in-flight units finish (the simulator is CPU-bound and
// always terminates), and every slot the batch never resolved carries
// ctx.Err(). CompiledPlatform implements it; so does the distributed
// coordinator, which uses cancellation to stop waiting on workers.
type ContextBatchRunner interface {
	BatchRunner
	MeasureBatchContext(ctx context.Context, rcs []RunConfig, lanes, workers int) ([]*Measurement, []error)
}

var _ ContextBatchRunner = (*CompiledPlatform)(nil)

// runParallel runs job(0..n-1) on up to `workers` goroutines.
func runParallel(workers, n int, job func(int)) {
	runParallelCtx(context.Background(), workers, n, job)
}

// runParallelCtx is runParallel with cooperative cancellation: workers
// stop claiming new jobs once ctx is cancelled, so at most `workers`
// in-flight jobs run to completion and the rest never start. No
// goroutine outlives the call.
func runParallelCtx(ctx context.Context, workers, n int, job func(int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// laneJob is one candidate replay eligible for the multi-lane kernel:
// a ready non-periodic trace with no sample consumers attached.
type laneJob struct {
	slot    int
	rc      RunConfig
	tr      *chipTrace
	memoKey string
}

// MeasureBatch measures a generation of run configs through the
// two-stage pipeline. See the file comment for the stages; per-slot
// results are bit-identical to cp.Run(rcs[i]) run in isolation, and the
// slot order never affects any result.
func (cp *CompiledPlatform) MeasureBatch(rcs []RunConfig, lanes, workers int) ([]*Measurement, []error) {
	return cp.MeasureBatchContext(context.Background(), rcs, lanes, workers)
}

// MeasureBatchContext is MeasureBatch with cooperative cancellation.
// Slots resolved before the cancellation keep their (bit-identical)
// results; every slot the pipeline never reached reports ctx.Err()
// instead, so a caller abandoning the batch (a worker whose lease was
// revoked, a shutting-down coordinator) discards partial work cleanly.
// Captures already in flight run to completion — the simulator is
// CPU-bound and bounded — so no goroutine outlives the call.
func (cp *CompiledPlatform) MeasureBatchContext(ctx context.Context, rcs []RunConfig, lanes, workers int) ([]*Measurement, []error) {
	autoWidth := lanes <= 0
	if lanes > maxBatchLanes {
		lanes = maxBatchLanes
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(rcs)
	ms := make([]*Measurement, n)
	errs := make([]error, n)
	cp.traces.noteBatchRuns(n)

	// Classify each slot. Slots that share a finished-measurement memo
	// key are evaluated once (dups serve from the memo afterwards);
	// slots that share a trace key share one capture.
	exact := make([]int, 0, n)          // slots for the reference cycle loop
	memoRep := make(map[string]int, n)  // memoKey -> representative slot
	dupOf := make(map[int]int, n)       // duplicate slot -> representative
	groups := make(map[string][]int, n) // traceKey -> member slots
	memoKeys := make([]string, n)       // per-slot memo key ("" = not memoable)
	var keys []string                   // group keys in first-seen order
	for i, rc := range rcs {
		if err := rc.Validate(); err != nil {
			errs[i] = err
			continue
		}
		if !cp.replayEligible(rc) {
			exact = append(exact, i)
			continue
		}
		key, ok := traceKey(rc)
		if !ok {
			exact = append(exact, i)
			continue
		}
		if memoable := !rc.RecordWaveform && rc.TriggerThreshold <= 0 && rc.Histogram == nil; memoable {
			mk := replayMemoKey(key, rc)
			memoKeys[i] = mk
			if m, ok := cp.traces.getResult(mk); ok {
				ms[i] = &m
				continue
			}
			if rep, seen := memoRep[mk]; seen {
				dupOf[i] = rep
				continue
			}
			memoRep[mk] = i
		}
		if _, seen := groups[key]; !seen {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], i)
	}

	// Stage 1: resolve each group's trace — one cache lookup per group
	// (siblings would all have hit, so they count as hits), then a
	// worker pool captures the missing ones.
	ready := make(map[string]*chipTrace, len(groups))
	var missing []string
	for _, key := range keys {
		members := groups[key]
		if tr := cp.traces.get(key); tr != nil {
			ready[key] = tr
			for range members[1:] {
				cp.traces.noteHit()
			}
		} else {
			missing = append(missing, key)
		}
	}
	var readyMu sync.Mutex
	runParallelCtx(ctx, workers, len(missing), func(gi int) {
		key := missing[gi]
		members := groups[key]
		tr, err := cp.resolveTrace(key, rcs[members[0]])
		if err != nil {
			for _, i := range members {
				errs[i] = err
			}
			return
		}
		cp.traces.put(key, tr)
		readyMu.Lock()
		ready[key] = tr
		readyMu.Unlock()
		for range members[1:] {
			cp.traces.noteHit()
		}
	})

	// Stage 2: schedule replays. Non-periodic traces with no sample
	// consumers ride the multi-lane kernel; periodic traces (served by
	// the affine early exit), consumer runs, and post-build unsupported
	// traces take the serial paths. Lane jobs are sorted longest-first
	// and chunked at the lane width so each kernel pass stays wide.
	var laneJobs []laneJob
	var solo []int // slots replayed serially
	for _, key := range keys {
		tr := ready[key]
		if tr == nil {
			continue // capture failed; members already hold the error
		}
		for _, i := range groups[key] {
			switch {
			case tr.unsupported:
				exact = append(exact, i)
			case tr.periodic || memoKeys[i] == "":
				solo = append(solo, i)
			default:
				laneJobs = append(laneJobs, laneJob{slot: i, rc: rcs[i], tr: tr, memoKey: memoKeys[i]})
			}
		}
	}
	sort.SliceStable(laneJobs, func(a, b int) bool {
		return len(laneJobs[a].tr.energy) > len(laneJobs[b].tr.energy)
	})
	if autoWidth {
		lanes = cp.autoLanes(len(laneJobs), workers)
	}
	nGroups := (len(laneJobs) + lanes - 1) / lanes
	tasks := nGroups + len(solo) + len(exact)
	runParallelCtx(ctx, workers, tasks, func(t int) {
		switch {
		case t < nGroups:
			lo := t * lanes
			hi := lo + lanes
			if hi > len(laneJobs) {
				hi = len(laneJobs)
			}
			cp.replayLanes(laneJobs[lo:hi], ms, errs)
		case t < nGroups+len(solo):
			i := solo[t-nGroups]
			m, err := cp.replay(ready[mustTraceKey(rcs[i])], rcs[i])
			if err == nil && memoKeys[i] != "" {
				cp.traces.putResult(memoKeys[i], *m)
			}
			ms[i], errs[i] = m, err
		default:
			i := exact[t-nGroups-len(solo)]
			ms[i], errs[i] = cp.runExact(rcs[i])
		}
	})

	// A cancelled batch leaves unreached slots unresolved; stamp them
	// with the cancellation before the duplicate pass so dups of an
	// unresolved representative inherit it instead of dereferencing nil.
	if err := ctx.Err(); err != nil {
		for i := range rcs {
			if ms[i] == nil && errs[i] == nil {
				if _, dup := dupOf[i]; !dup {
					errs[i] = err
				}
			}
		}
	}

	// Serve memo duplicates from their representative's finished
	// measurement (via the memo, so the hit counts as it would have
	// serially; fall back to a direct copy if the memo evicted it).
	for i, rep := range dupOf {
		if errs[rep] != nil {
			errs[i] = errs[rep]
			continue
		}
		if m, ok := cp.traces.getResult(memoKeys[i]); ok {
			ms[i] = &m
			continue
		}
		m := *ms[rep]
		ms[i] = &m
	}
	return ms, errs
}

// mustTraceKey re-derives the trace key for a slot already classified
// as replay-eligible with a supported key.
func mustTraceKey(rc RunConfig) string {
	key, ok := traceKey(rc)
	if !ok {
		panic("testbed: trace key vanished between classification and replay")
	}
	return key
}

// replayLanes replays up to maxBatchLanes candidate traces in lockstep
// through the multi-lane PDN kernel — the exact kernel by default, the
// reduced-order kernel when the platform tolerance admits the whole
// batch — writing slot results into ms/errs. Each lane folds the
// kernel's voltage stream through the same replayFold as the serial
// replay; on the exact kernel a lane result matches cp.replay of the
// same job bit for bit, and on the ROM it matches the serial ROM
// replay bit for bit (one lane's over-tolerance trace can demote a
// batch to exact while the serial path would have taken the ROM, so
// with ROMTolV enabled batch-vs-serial agreement is to the declared
// tolerance, not bitwise — exactly the contract ROMTolV states).
// Lanes retire independently as their traces run out (swap-remove,
// mirroring pdn.Batch.DropLane). A single-job group falls back to the
// serial replay: a one-lane kernel pass costs more than the tuned
// single-lane StepTrace.
func (cp *CompiledPlatform) replayLanes(jobs []laneJob, ms []*Measurement, errs []error) {
	L := len(jobs)
	if L == 0 {
		return
	}
	cp.traces.noteLaneBatch(L)
	if L == 1 {
		j := jobs[0]
		m, err := cp.replay(j.tr, j.rc)
		if err == nil {
			cp.traces.putResult(j.memoKey, *m)
		}
		ms[j.slot], errs[j.slot] = m, err
		return
	}
	defer cp.traces.addReplayNS(time.Now())
	p := cp.p
	dt := p.Chip.CycleSeconds()
	vNom := p.PDN.VNom

	type lane struct {
		job  laneJob
		fold *replayFold
		N    uint64
		cyc  uint64
		vbuf []float64
	}
	states := make([]*lane, L)
	muls := make([]float64, L)
	divs := make([]float64, L)
	adds := make([]float64, L)
	dsts := make([][]float64, L)
	srcs := make([][]float64, L)
	for l, j := range jobs {
		supply := vNom
		if j.rc.SupplyVolts > 0 {
			supply = j.rc.SupplyVolts
		}
		m := &Measurement{MinV: supply}
		states[l] = &lane{
			job:  j,
			fold: &replayFold{p: p, m: m, vNom: vNom, warm: j.rc.WarmupCycles},
			N:    uint64(len(j.tr.energy)),
			vbuf: cp.getVBuf(replayChunk),
		}
		muls[l], divs[l], adds[l] = 1e-12, dt*supply, p.Power.LeakageAmps(p.Chip.Modules, supply)
	}
	// Kernel choice is batch-level, all-or-nothing: every lane job is a
	// non-periodic full stream (periodic traces went solo), so the batch
	// rides the reduced-order kernel only when the platform tolerance
	// admits every lane's peak drive. Mixing kernels per lane would
	// complicate retirement for no gain — a single over-tolerance lane
	// is rare (it implies an outlier trace amplitude).
	var pb *pdn.Batch
	var rb *pdn.ROMBatch
	useROM := cp.p.ROMTolV > 0
	for l, j := range jobs {
		if !useROM {
			break
		}
		useROM = cp.romOK(j.tr, divs[l], adds[l])
	}
	if useROM {
		rb, _ = cp.net.NewROMBatch(L) // romOK verified the ROM compiles
	} else {
		pb = cp.net.NewBatch(L)
	}
	cp.traces.noteReplays(L, useROM)
	for l, j := range jobs {
		net := cp.getNet(j.rc.SupplyVolts)
		if rb != nil {
			rb.LoadLane(l, net, adds[l])
		} else {
			pb.LoadLane(l, net)
		}
		cp.net.Put(net)
	}
	finish := func(st *lane) {
		st.fold.finish(st.job.tr, st.N, dt)
		cp.traces.putResult(st.job.memoKey, *st.fold.m)
		ms[st.job.slot] = st.fold.m
		cp.vbufs.Put(st.vbuf[:0])
	}
	for len(states) > 0 {
		// Retire finished lanes (high to low so swap-ins are already
		// checked survivors).
		for l := len(states) - 1; l >= 0; l-- {
			if states[l].cyc < states[l].N {
				continue
			}
			finish(states[l])
			if rb != nil {
				rb.DropLane(l)
			} else {
				pb.DropLane(l)
			}
			last := len(states) - 1
			states[l] = states[last]
			muls[l], divs[l], adds[l] = muls[last], divs[last], adds[last]
			states = states[:last]
		}
		if len(states) == 0 {
			break
		}
		w := len(states)
		n := uint64(replayChunk)
		for _, st := range states {
			if rem := st.N - st.cyc; rem < n {
				n = rem
			}
		}
		for l, st := range states {
			dsts[l] = st.vbuf[:n]
			srcs[l] = st.job.tr.energy[st.cyc : st.cyc+n]
		}
		if rb != nil {
			rb.StepTraceBatch(dsts[:w], srcs[:w], muls[:w], divs[:w], int(n))
		} else {
			pb.StepTraceBatch(dsts[:w], srcs[:w], muls[:w], divs[:w], adds[:w], int(n))
		}
		for l, st := range states {
			st.fold.scan(st.cyc, srcs[l], st.job.tr.issues[st.cyc:st.cyc+n], dsts[l])
			st.cyc += n
		}
	}
}

// autoLanes picks the multi-lane kernel width for a generation of
// `jobs` lane-eligible replays over `workers` goroutines. The fixed
// default width idles workers whenever the job count doesn't cover
// workers × lanes (the BENCH_eval L8xW8 > L4xW8 regression: 32 jobs at
// 8 lanes is only 4 batches over 8 workers), so the width starts from
// the narrowest value that still gives every worker a batch,
// ceil(jobs/workers), and is then clamped to the platform's measured
// best kernel width once batches are deep enough for the clamp to
// matter. The width only moves throughput, never results.
func (cp *CompiledPlatform) autoLanes(jobs, workers int) int {
	if jobs <= 1 {
		return 1
	}
	L := (jobs + workers - 1) / workers
	if L <= 1 {
		return 1
	}
	if L > 4 {
		if w := cp.kernelLanes(); L > w {
			L = w
		}
	}
	if L > maxBatchLanes {
		L = maxBatchLanes
	}
	return L
}

// kernelLanes measures, once per platform, which lane width gives the
// exact multi-lane kernel its best per-lane throughput on this
// machine, over a short synthetic drive. The exact kernel is the one
// calibrated — it dominates wherever the width choice matters, and the
// reduced-order kernel's per-lane cost is width-flat so any clamp is
// safe for it. The measurement is wall-clock derived but feeds only
// the width choice, which never affects results.
func (cp *CompiledPlatform) kernelLanes() int {
	cp.laneOnce.Do(func() {
		const steps = 1024
		src := make([]float64, steps)
		for i := range src {
			src[i] = 20 + 10*math.Sin(2*math.Pi*float64(i)/36)
		}
		best, bestNS := DefaultBatchLanes, math.MaxFloat64
		for _, w := range []int{4, 8, 16, 32} {
			pb := cp.net.NewBatch(w)
			dst := make([][]float64, w)
			srcs := make([][]float64, w)
			mul := make([]float64, w)
			div := make([]float64, w)
			add := make([]float64, w)
			for l := 0; l < w; l++ {
				dst[l] = make([]float64, steps)
				srcs[l] = src
				mul[l], div[l], add[l] = 1, 1, 0
			}
			start := time.Now()
			pb.StepTraceBatch(dst, srcs, mul, div, add, steps)
			perLane := float64(time.Since(start).Nanoseconds()) / float64(w)
			if perLane < bestNS {
				best, bestNS = w, perLane
			}
		}
		cp.laneWidth = best
	})
	return cp.laneWidth
}
