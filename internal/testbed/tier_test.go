package testbed

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/tracestore"
)

// fakeTier is an in-memory TraceTier: the coordinator's store without
// the HTTP in between. It stores encoded blobs so wire-byte accounting
// matches the real tier's.
type fakeTier struct {
	mu        sync.Mutex
	m         map[string][]byte
	fetches   int
	publishes int
}

func (ft *fakeTier) Fetch(key []byte) (*tracestore.Record, int, bool) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.fetches++
	blob, ok := ft.m[tracestore.Addr(key)]
	if !ok {
		return nil, 0, false
	}
	rec, ok := tracestore.Decode(blob)
	if !ok {
		return nil, 0, false
	}
	return rec, len(blob), true
}

func (ft *fakeTier) Publish(key []byte, rec *tracestore.Record) int {
	blob := tracestore.Encode(rec)
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if ft.m == nil {
		ft.m = map[string][]byte{}
	}
	ft.m[tracestore.Addr(key)] = blob
	ft.publishes++
	return len(blob)
}

func compiledWithTier(t testing.TB, p Platform, dir string, tier TraceTier) *CompiledPlatform {
	t.Helper()
	cp := compiledWithStore(t, p, dir)
	cp.SetTraceTier(tier)
	return cp
}

// TestTierResolutionOrder pins the miss path order — memory, local
// store, shared tier, capture — and the write-throughs at each level.
func TestTierResolutionOrder(t *testing.T) {
	p := Bulldozer()
	rc := storeRunConfig(t, p, "tier", 96)
	ref := compiledWithStore(t, p, "")
	want, err := ref.Run(rc)
	if err != nil {
		t.Fatal(err)
	}

	// Worker A: everything cold. Captures once, publishes to the tier.
	tier := &fakeTier{}
	dirA := t.TempDir()
	a := compiledWithTier(t, p, dirA, tier)
	ma, err := a.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ma, want) {
		t.Error("tier-attached cold run diverged from reference")
	}
	ts := a.TraceStats()
	if ts.TierMisses != 1 || ts.TierHits != 0 || ts.Captures != 1 {
		t.Fatalf("cold run tier hits/misses/captures = %d/%d/%d, want 0/1/1",
			ts.TierHits, ts.TierMisses, ts.Captures)
	}
	if ts.WireBytes == 0 {
		t.Error("publish moved no wire bytes")
	}
	if tier.publishes != 1 {
		t.Fatalf("tier got %d publishes, want 1", tier.publishes)
	}

	// Worker B: cold local store, warm tier. Served over the wire, no
	// capture, and written through to B's local store.
	dirB := t.TempDir()
	b := compiledWithTier(t, p, dirB, tier)
	mb, err := b.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mb, want) {
		t.Error("tier-served run diverged from reference")
	}
	ts = b.TraceStats()
	if ts.TierHits != 1 || ts.Captures != 0 {
		t.Fatalf("tier-warm run tier hits/captures = %d/%d, want 1/0", ts.TierHits, ts.Captures)
	}
	if ts.CaptureNSSaved == 0 {
		t.Error("tier hit reported no capture time saved")
	}
	if b.TraceStore().Len() != 1 {
		t.Error("tier hit not written through to the local store")
	}

	// Worker C shares B's directory with no tier: the write-through
	// means a plain store hit.
	c := compiledWithStore(t, p, dirB)
	if _, err := c.Run(rc); err != nil {
		t.Fatal(err)
	}
	if ts := c.TraceStats(); ts.StoreHits != 1 {
		t.Fatalf("write-through record not served from the store: %+v", ts)
	}

	// Worker D shares A's directory with the tier attached: the local
	// store answers first, so the tier is never consulted.
	d := compiledWithTier(t, p, dirA, tier)
	fetchesBefore := tier.fetches
	if _, err := d.Run(rc); err != nil {
		t.Fatal(err)
	}
	ts = d.TraceStats()
	if ts.StoreHits != 1 || ts.TierHits+ts.TierMisses != 0 || tier.fetches != fetchesBefore {
		t.Fatalf("local store hit still consulted the tier: %+v (fetches %d→%d)",
			ts, fetchesBefore, tier.fetches)
	}
}

// TestBatchUsesTier drives the generation pipeline against a store-less
// platform pair sharing only a tier: the second platform's whole batch
// is served over the wire with zero captures, bit-identical.
func TestBatchUsesTier(t *testing.T) {
	p := Bulldozer()
	rcs := []RunConfig{
		storeRunConfig(t, p, "tgen-a", 64),
		storeRunConfig(t, p, "tgen-b", 80),
		storeRunConfig(t, p, "tgen-a", 64), // duplicate: same trace group
	}
	tier := &fakeTier{}
	cold := compiledWithTier(t, p, "", tier)
	wantMs, wantErrs := cold.MeasureBatch(rcs, 0, 0)
	for i, err := range wantErrs {
		if err != nil {
			t.Fatalf("cold batch slot %d: %v", i, err)
		}
	}
	if ts := cold.TraceStats(); ts.Captures != 2 || ts.TierMisses != 2 {
		t.Fatalf("cold batch captures/tier misses = %d/%d, want 2/2", ts.Captures, ts.TierMisses)
	}

	warm := compiledWithTier(t, p, "", tier)
	gotMs, gotErrs := warm.MeasureBatch(rcs, 0, 0)
	for i, err := range gotErrs {
		if err != nil {
			t.Fatalf("warm batch slot %d: %v", i, err)
		}
	}
	ts := warm.TraceStats()
	if ts.TierHits != 2 || ts.Captures != 0 {
		t.Fatalf("warm batch tier hits/captures = %d/%d, want 2/0", ts.TierHits, ts.Captures)
	}
	for i := range rcs {
		if !reflect.DeepEqual(gotMs[i], wantMs[i]) {
			t.Errorf("warm batch slot %d diverged from cold batch", i)
		}
	}
}

// TestCrossVersionWarmStart downgrades a warm store directory to the
// legacy v1 record format in place — the directory an older binary
// would have left behind — and checks the warm start still serves it,
// DeepEqual to the v2-warm run.
func TestCrossVersionWarmStart(t *testing.T) {
	p := Bulldozer()
	dir := t.TempDir()
	rc := storeRunConfig(t, p, "xver", 96)

	cold := compiledWithStore(t, p, dir)
	want, err := cold.Run(rc)
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite every record as v1, as if an old binary had written it.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	downgraded := 0
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".trace" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rec, ok := tracestore.Decode(blob)
		if !ok {
			t.Fatalf("stored record %s does not decode", e.Name())
		}
		if err := os.WriteFile(path, tracestore.EncodeV1(rec), 0o644); err != nil {
			t.Fatal(err)
		}
		downgraded++
	}
	if downgraded == 0 {
		t.Fatal("no records to downgrade")
	}

	warm := compiledWithStore(t, p, dir)
	got, err := warm.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	ts := warm.TraceStats()
	if ts.StoreHits != 1 || ts.Captures != 0 {
		t.Fatalf("v1-warm run store hits/captures = %d/%d, want 1/0", ts.StoreHits, ts.Captures)
	}
	if ts.CaptureNSSaved != 0 {
		t.Error("v1 record claimed capture-ns-saved it cannot carry")
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("v1-warm measurement differs from v2-cold measurement")
	}
}
