package testbed

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/tracestore"
)

// This file bridges the compiled platform's in-memory trace cache to
// the persistent store (internal/tracestore). The store sits strictly
// below the FIFO: a lookup consults memory first, then disk, and only
// then runs phase 1; fresh captures are written through. Records are
// keyed by the full trace key salted with a capture digest, so two
// platforms (or two binaries with different chip/power calibrations)
// sharing one store directory can never serve each other's traces.

// captureDigest fingerprints everything trace content depends on
// beyond the trace key: the chip configuration and the power model
// (both flat scalar structs, so %#v is canonical). The PDN and failure
// model are deliberately absent — phase 1 runs the chip alone, so
// platforms differing only on the network side still share stored
// traces. Changes to the trace semantics themselves are covered by the
// store's format version, which must be bumped whenever capture output
// changes meaning without changing these structs.
func captureDigest(p Platform) []byte {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v\x00%#v", p.Chip, p.Power)))
	return sum[:]
}

// PlatformDigest fingerprints the complete measurement platform — chip
// configuration, power model, PDN and failure model, all flat scalar
// structs with canonical %#v forms — as a hex string. Anything that can
// move a Measurement is covered, so equal digests mean "the same
// physical test system": the stressmark corpus stamps every entry with
// the digest it was baselined on, and a replay whose digest differs
// reports platform skew instead of unexplained drift.
//
// The digest is a stable, reviewed artifact: adding or renaming a field
// in any of the four config structs changes it, and the golden-value
// test in digest_test.go makes that an explicit event (update the
// goldens, re-baseline corpora) rather than a silent one.
func PlatformDigest(p Platform) string {
	s := fmt.Sprintf("%#v\x00%#v\x00%#v\x00%#v", p.Chip, p.Power, p.PDN, p.Failure)
	if p.ROMTolV != 0 {
		// An enabled ROM tolerance can move measured voltages (within
		// its bound), so it is platform identity and corpus replays
		// against a different tolerance must classify as platform skew.
		// The suffix appears only when non-zero, keeping every
		// exact-platform digest — and every corpus baselined on one —
		// stable across this addition.
		s += fmt.Sprintf("\x00rom:%g", p.ROMTolV)
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// SetTraceStore attaches a persistent trace store beneath the
// in-memory cache. Call before the platform is shared across
// goroutines (alongside SetTraceCacheLimit); a nil store detaches.
func (cp *CompiledPlatform) SetTraceStore(s *tracestore.Store) {
	cp.store = s
	cp.storeSalt = nil
	if s != nil || cp.tier != nil {
		cp.storeSalt = captureDigest(cp.p)
	}
}

// TraceStore returns the attached persistent store, or nil.
func (cp *CompiledPlatform) TraceStore() *tracestore.Store { return cp.store }

// TraceTier is a shared trace cache below the local persistent store —
// in the distributed fabric, the coordinator's store served over
// /v1/trace. Implementations must be safe for concurrent use.
//
// Fetch may block (bounded by the implementation) while another worker
// holding the same key captures: ok=false always means "you capture" —
// the tier may have registered a single-flight claim on the caller's
// behalf, which the follow-up Publish releases. wire is the payload
// bytes moved for the call (zero on a claim grant or an unreachable
// tier), feeding TraceStats.WireBytes.
type TraceTier interface {
	Fetch(key []byte) (rec *tracestore.Record, wire int, ok bool)
	Publish(key []byte, rec *tracestore.Record) (wire int)
}

// SetTraceTier attaches a shared trace tier, consulted after the local
// store and written through alongside it. Call before the platform is
// shared across goroutines; a nil tier detaches.
func (cp *CompiledPlatform) SetTraceTier(t TraceTier) {
	cp.tier = t
	if cp.storeSalt == nil && (t != nil || cp.store != nil) {
		cp.storeSalt = captureDigest(cp.p)
	}
}

func (cp *CompiledPlatform) storeKeyBytes(key string) []byte {
	b := make([]byte, 0, len(cp.storeSalt)+len(key))
	b = append(b, cp.storeSalt...)
	return append(b, key...)
}

// storeLoad consults the persistent store for a trace missing from
// memory. Any store-side failure is a miss; nil means "keep resolving".
func (cp *CompiledPlatform) storeLoad(key string) *chipTrace {
	if cp.store == nil {
		return nil
	}
	rec, ok := cp.store.Get(cp.storeKeyBytes(key))
	if !ok {
		cp.traces.noteStore(false, 0)
		return nil
	}
	cp.traces.noteStore(true, rec.CaptureNS)
	return traceFromRecord(rec)
}

// tierLoad consults the shared trace tier. A hit is written through to
// the local store so the next cold start of this worker skips the wire.
func (cp *CompiledPlatform) tierLoad(key string) *chipTrace {
	if cp.tier == nil {
		return nil
	}
	rec, wire, ok := cp.tier.Fetch(cp.storeKeyBytes(key))
	if !ok {
		cp.traces.noteTier(false, 0, uint64(wire))
		return nil
	}
	cp.traces.noteTier(true, rec.CaptureNS, uint64(wire))
	if cp.store != nil {
		cp.store.Put(cp.storeKeyBytes(key), rec)
	}
	return traceFromRecord(rec)
}

// storeSave writes a fresh capture through to the persistent store and
// the shared tier, best-effort: a full disk or unreachable coordinator
// costs nothing but the warm start. The tier Publish also releases any
// single-flight claim the preceding Fetch registered.
func (cp *CompiledPlatform) storeSave(key string, tr *chipTrace) {
	if cp.store == nil && cp.tier == nil {
		return
	}
	rec := recordFromTrace(tr)
	if cp.store != nil {
		cp.store.Put(cp.storeKeyBytes(key), rec)
	}
	if cp.tier != nil {
		wire := cp.tier.Publish(cp.storeKeyBytes(key), rec)
		cp.traces.noteWire(uint64(wire))
	}
}

// resolveTrace is the full miss path for a trace absent from memory:
// local store, then shared tier, then phase-1 capture with
// write-through to both. The result is identical whichever level
// serves it — the levels only change who pays the capture.
func (cp *CompiledPlatform) resolveTrace(key string, rc RunConfig) (*chipTrace, error) {
	if tr := cp.storeLoad(key); tr != nil {
		return tr, nil
	}
	if tr := cp.tierLoad(key); tr != nil {
		return tr, nil
	}
	tr, err := cp.buildTrace(rc)
	if err != nil {
		return nil, err
	}
	cp.storeSave(key, tr)
	return tr, nil
}

func statsToWords(s cpu.Stats) [8]uint64 {
	return [8]uint64{s.Branches, s.Mispredicts, s.L1Hits, s.L1Misses,
		s.L2Hits, s.L2Misses, s.L3Hits, s.L3Misses}
}

func statsFromWords(w [8]uint64) cpu.Stats {
	return cpu.Stats{Branches: w[0], Mispredicts: w[1], L1Hits: w[2], L1Misses: w[3],
		L2Hits: w[4], L2Misses: w[5], L3Hits: w[6], L3Misses: w[7]}
}

// recordFromTrace flattens a chipTrace for storage. The trace is
// immutable, so the record may alias its slices.
func recordFromTrace(tr *chipTrace) *tracestore.Record {
	return &tracestore.Record{
		CaptureNS:   tr.captureNS,
		Energy:      tr.energy,
		Issues:      tr.issues,
		Done:        tr.done,
		Unsupported: tr.unsupported,
		Periodic:    tr.periodic,
		HeadLen:     tr.headLen,
		PeriodLen:   tr.periodLen,
		EndStats:    statsToWords(tr.endStats),
		RefStats:    statsToWords(tr.refStats),
		PerStats:    statsToWords(tr.perStats),
		EndRetired:  tr.endRetired,
		RefRetired:  tr.refRetired,
		PerRetired:  tr.perRetired,
	}
}

// traceFromRecord rebuilds a replayable chipTrace. The pre-aggregated
// period totals are recomputed with acceptPeriod's exact summation
// order, so a loaded trace replays bit-identically to the capture that
// wrote it.
func traceFromRecord(rec *tracestore.Record) *chipTrace {
	tr := &chipTrace{
		energy:      rec.Energy,
		issues:      rec.Issues,
		done:        rec.Done,
		unsupported: rec.Unsupported,
		captureNS:   rec.CaptureNS,
	}
	if rec.Periodic {
		tr.periodic = true
		tr.headLen, tr.periodLen = rec.HeadLen, rec.PeriodLen
		tr.refStats, tr.refRetired = statsFromWords(rec.RefStats), rec.RefRetired
		tr.perStats, tr.perRetired = statsFromWords(rec.PerStats), rec.PerRetired
		for _, e := range tr.energy[tr.headLen:] {
			tr.periodEnergy += e
		}
		for _, q := range tr.issues[tr.headLen:] {
			for u := 0; u < int(isa.NumUnits); u++ {
				tr.periodIssues[u] += (q >> (8 * uint(u))) & 0xff
			}
		}
	} else {
		tr.endStats, tr.endRetired = statsFromWords(rec.EndStats), rec.EndRetired
	}
	tr.noteMaxEnergy()
	return tr
}
