package testbed

import (
	"fmt"
	"sync"

	"repro/internal/cpu"
	"repro/internal/pdn"
)

// CompiledPlatform is the evaluation fast path: the PDN system matrix
// is factored once, chip instances and scope buffers are pooled, and
// regulator settling at a given supply voltage is computed once and
// replayed from a cached snapshot. Every Run is bit-identical to
// Platform.Run on the same RunConfig — same droops, same failure
// cycle, same statistics — it only skips redundant construction work.
//
// A CompiledPlatform is safe for concurrent use; the GA's Parallel
// workers share one.
type CompiledPlatform struct {
	p   Platform
	net *pdn.Compiled

	chips sync.Pool // *cpu.Chip, dirty until Reset

	// settled caches a regulator-settled PDN snapshot per exact supply
	// voltage. The settle loop is deterministic, so replaying a clone
	// of its output is bit-identical to settling afresh — and the
	// voltage-at-failure procedure revisits the same float64 voltages
	// run after run, so exact-key lookup hits.
	mu      sync.Mutex
	settled map[float64]*pdn.PDN

	scopeBufs sync.Pool // []float64 waveform storage
}

// Compile validates the platform once and builds the shared immutable
// state behind the fast path.
func (p Platform) Compile() (*CompiledPlatform, error) {
	net, err := pdn.Compile(p.PDN, p.Chip.CycleSeconds())
	if err != nil {
		return nil, err
	}
	chip, err := cpu.NewChip(p.Chip, p.Power)
	if err != nil {
		return nil, err
	}
	cp := &CompiledPlatform{p: p, net: net, settled: map[float64]*pdn.PDN{}}
	cp.chips.Put(chip)
	return cp, nil
}

// Platform returns the immutable platform description.
func (cp *CompiledPlatform) Platform() Platform { return cp.p }

// Nominal returns the platform's nominal supply voltage.
func (cp *CompiledPlatform) Nominal() float64 { return cp.p.PDN.VNom }

// getChip returns a reset pooled chip, or builds one.
func (cp *CompiledPlatform) getChip() (*cpu.Chip, error) {
	if ch, ok := cp.chips.Get().(*cpu.Chip); ok && ch != nil {
		ch.Reset()
		return ch, nil
	}
	return cpu.NewChip(cp.p.Chip, cp.p.Power)
}

// getNet returns a pooled PDN state ready for measurement: at the DC
// operating point for nominal runs, or settled at the requested supply
// (from the snapshot cache when this voltage has been settled before).
func (cp *CompiledPlatform) getNet(supplyOverride float64) *pdn.PDN {
	net := cp.net.Get()
	if supplyOverride <= 0 {
		return net
	}
	cp.mu.Lock()
	tmpl := cp.settled[supplyOverride]
	cp.mu.Unlock()
	if tmpl == nil {
		cp.p.settle(net, supplyOverride)
		tmpl = net.Clone()
		cp.mu.Lock()
		cp.settled[supplyOverride] = tmpl
		cp.mu.Unlock()
		return net
	}
	net.CopyStateFrom(tmpl)
	return net
}

// Run executes one measurement through the fast path. The result is
// bit-identical to Platform.Run(rc).
func (cp *CompiledPlatform) Run(rc RunConfig) (*Measurement, error) {
	if len(rc.Threads) == 0 {
		return nil, fmt.Errorf("testbed: no threads to run")
	}
	chip, err := cp.getChip()
	if err != nil {
		return nil, err
	}
	if err := cp.p.attachThreads(chip, rc); err != nil {
		return nil, err
	}
	supply := cp.p.PDN.VNom
	if rc.SupplyVolts > 0 {
		supply = rc.SupplyVolts
	}
	net := cp.getNet(rc.SupplyVolts)

	var buf []float64
	if rc.RecordWaveform {
		if b, ok := cp.scopeBufs.Get().([]float64); ok {
			buf = b
		}
	}
	m, err := cp.p.measure(chip, net, rc, supply, buf)
	if m != nil && m.Waveform != nil {
		// The scope filled pooled storage; hand the caller a private
		// copy and recycle the backing buffer.
		w := m.Waveform
		m.Waveform = append([]float64(nil), w...)
		cp.scopeBufs.Put(w[:0])
	}
	if err == nil {
		cp.net.Put(net)
		cp.chips.Put(chip)
	}
	return m, err
}

// FindFailureVoltage is Platform.FindFailureVoltage on the fast path:
// each probe voltage's regulator settle is computed once and replayed
// for every later visit, which is where most of the procedure's time
// goes. Results are bit-identical to the slow path.
func (cp *CompiledPlatform) FindFailureVoltage(rc RunConfig, floor float64) (float64, bool, error) {
	if floor <= 0 || floor >= cp.p.PDN.VNom {
		return 0, false, fmt.Errorf("testbed: floor %g out of range", floor)
	}
	for v := cp.p.PDN.VNom; v >= floor; v -= FailureStep {
		cfg := rc
		cfg.SupplyVolts = v
		m, err := cp.Run(cfg)
		if err != nil {
			return 0, false, err
		}
		if m.Failed {
			return v, true, nil
		}
	}
	return floor, false, nil
}
