package testbed

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/cpu"
	"repro/internal/pdn"
	"repro/internal/tracestore"
)

// CompiledPlatform is the evaluation fast path: the PDN system matrix
// is factored once, chip instances and scope buffers are pooled, and
// regulator settling at a given supply voltage is computed once and
// replayed from a cached snapshot. Every Run is bit-identical to
// Platform.Run on the same RunConfig — same droops, same failure
// cycle, same statistics — it only skips redundant construction work.
//
// A CompiledPlatform is safe for concurrent use; the GA's Parallel
// workers share one.
type CompiledPlatform struct {
	p   Platform
	net *pdn.Compiled

	chips sync.Pool // *cpu.Chip, dirty until Reset

	// settled caches a regulator-settled PDN snapshot per exact supply
	// voltage. The settle loop is deterministic, so replaying a clone
	// of its output is bit-identical to settling afresh — and the
	// voltage-at-failure procedure revisits the same float64 voltages
	// run after run, so exact-key lookup hits.
	mu      sync.Mutex
	settled map[float64]*pdn.PDN

	scopeBufs sync.Pool // []float64 waveform storage
	vbufs     sync.Pool // []float64 replay voltage buffers

	// traces caches phase-1 chip traces keyed by traceKey, shared by
	// every replay-eligible run of this platform.
	traces traceCache

	// store, when attached, persists traces across processes beneath
	// the in-memory cache; tier, when attached, shares them across
	// machines (resolution order: memory → store → tier → capture).
	// storeSalt is the platform digest prefixed to every store and
	// tier key (see store.go).
	store     *tracestore.Store
	tier      TraceTier
	storeSalt []byte

	// laneOnce/laneWidth cache the measured best multi-lane kernel
	// width for `-batch-lanes auto` (see kernelLanes in batch.go).
	laneOnce  sync.Once
	laneWidth int
}

// romOK reports whether the platform's declared voltage tolerance
// admits the reduced-order kernel for a replay of tr at the given amps
// conversion (div = dt·supply, add = leakage amps): the ROM must have
// compiled and its calibrated per-amp error bound, scaled by the
// trace's peak drive current, must stay within Platform.ROMTolV.
func (cp *CompiledPlatform) romOK(tr *chipTrace, div, add float64) bool {
	tol := cp.p.ROMTolV
	if tol <= 0 {
		return false
	}
	r, err := cp.net.ROM()
	if err != nil {
		return false
	}
	maxAmp := tr.maxEnergy*1e-12/div + add
	return r.ErrPerAmpV()*maxAmp <= tol
}

// Compile validates the platform once and builds the shared immutable
// state behind the fast path.
func (p Platform) Compile() (*CompiledPlatform, error) {
	net, err := pdn.Compile(p.PDN, p.Chip.CycleSeconds())
	if err != nil {
		return nil, err
	}
	chip, err := cpu.NewChip(p.Chip, p.Power)
	if err != nil {
		return nil, err
	}
	cp := &CompiledPlatform{p: p, net: net, settled: map[float64]*pdn.PDN{}}
	cp.chips.Put(chip)
	return cp, nil
}

// Platform returns the immutable platform description.
func (cp *CompiledPlatform) Platform() Platform { return cp.p }

// Nominal returns the platform's nominal supply voltage.
func (cp *CompiledPlatform) Nominal() float64 { return cp.p.PDN.VNom }

// getChip returns a reset pooled chip, or builds one.
func (cp *CompiledPlatform) getChip() (*cpu.Chip, error) {
	if ch, ok := cp.chips.Get().(*cpu.Chip); ok && ch != nil {
		ch.Reset()
		return ch, nil
	}
	return cpu.NewChip(cp.p.Chip, cp.p.Power)
}

// getNet returns a pooled PDN state ready for measurement: at the DC
// operating point for nominal runs, or settled at the requested supply
// (from the snapshot cache when this voltage has been settled before).
func (cp *CompiledPlatform) getNet(supplyOverride float64) *pdn.PDN {
	net := cp.net.Get()
	if supplyOverride <= 0 {
		return net
	}
	cp.mu.Lock()
	tmpl := cp.settled[supplyOverride]
	cp.mu.Unlock()
	if tmpl == nil {
		cp.p.settle(net, supplyOverride)
		tmpl = net.Clone()
		cp.mu.Lock()
		cp.settled[supplyOverride] = tmpl
		cp.mu.Unlock()
		return net
	}
	net.CopyStateFrom(tmpl)
	return net
}

// Run executes one measurement through the fast path. Most runs go
// through the two-phase trace-replay pipeline: phase 1 runs the chip
// alone and records a per-cycle current trace (cached across runs,
// stopping early when the trace proves periodic), phase 2 streams it
// through the batched PDN kernel with a steady-state early exit. Full
// replays are bit-identical to Platform.Run(rc); periodic early exits
// agree to the convergence tolerance (and exactly on energy and issue
// totals). RunConfig.ExactCycleLoop — or an OS model, MaxCycles of 0,
// or a run too long to buffer — forces the reference loop.
func (cp *CompiledPlatform) Run(rc RunConfig) (*Measurement, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	if cp.replayEligible(rc) {
		m, err := cp.runReplay(rc)
		if err != errTraceUnsupported {
			return m, err
		}
	}
	return cp.runExact(rc)
}

// replayEligible gates the trace fast path: the exact loop is required
// when the caller asked for it, when an OS model injects aperiodic
// interference the trace cannot capture, and when the run is unbounded
// or too long to buffer at 16 bytes/cycle.
func (cp *CompiledPlatform) replayEligible(rc RunConfig) bool {
	return !rc.ExactCycleLoop && rc.OS == nil && rc.MaxCycles > 0 && rc.MaxCycles <= traceMaxCycles
}

// replayMemoKey extends a trace key with the replay-side parameters
// (supply, warmup) that a finished no-consumer Measurement depends on.
func replayMemoKey(key string, rc RunConfig) string {
	var w [16]byte
	binary.LittleEndian.PutUint64(w[:8], math.Float64bits(rc.SupplyVolts))
	binary.LittleEndian.PutUint64(w[8:], rc.WarmupCycles)
	return key + string(w[:])
}

// runReplay executes rc through the trace pipeline, building and
// caching the chip trace on first sight of this configuration. Runs
// with no sample consumers are memoized outright: the simulator is
// deterministic, so a repeated (trace, supply, warmup) run — the GA's
// median-of-K scoring, a fault-injected retry — returns a copy of the
// finished Measurement without touching the PDN.
func (cp *CompiledPlatform) runReplay(rc RunConfig) (*Measurement, error) {
	key, ok := traceKey(rc)
	if !ok {
		return nil, errTraceUnsupported
	}
	var memoKey string
	if memoable := !rc.RecordWaveform && rc.TriggerThreshold <= 0 && rc.Histogram == nil; memoable {
		memoKey = replayMemoKey(key, rc)
		if m, ok := cp.traces.getResult(memoKey); ok {
			return &m, nil
		}
	}
	tr := cp.traces.get(key)
	if tr == nil {
		var err error
		if tr, err = cp.resolveTrace(key, rc); err != nil {
			return nil, err
		}
		cp.traces.put(key, tr)
	}
	if tr.unsupported {
		return nil, errTraceUnsupported
	}
	m, err := cp.replay(tr, rc)
	if err == nil && memoKey != "" {
		cp.traces.putResult(memoKey, *m)
	}
	return m, err
}

// TraceStats reports the platform's trace-cache and fast-path counters.
func (cp *CompiledPlatform) TraceStats() TraceStats { return cp.traces.stats() }

// ClearTraceCache drops every cached chip trace (benchmarking aid).
func (cp *CompiledPlatform) ClearTraceCache() { cp.traces.clear() }

// SetTraceCacheLimit overrides the trace cache's byte budget
// (default 128 MiB). It applies to subsequent insertions.
func (cp *CompiledPlatform) SetTraceCacheLimit(bytes int) { cp.traces.setLimit(bytes) }

// runExact is the reference per-cycle measurement loop on pooled state.
func (cp *CompiledPlatform) runExact(rc RunConfig) (*Measurement, error) {
	chip, err := cp.getChip()
	if err != nil {
		return nil, err
	}
	if err := cp.p.attachThreads(chip, rc); err != nil {
		return nil, err
	}
	supply := cp.p.PDN.VNom
	if rc.SupplyVolts > 0 {
		supply = rc.SupplyVolts
	}
	net := cp.getNet(rc.SupplyVolts)

	var buf []float64
	if rc.RecordWaveform {
		if b, ok := cp.scopeBufs.Get().([]float64); ok {
			buf = b
		}
	}
	m, err := cp.p.measure(chip, net, rc, supply, buf)
	if m != nil && m.Waveform != nil {
		// The scope filled pooled storage; hand the caller a private
		// copy and recycle the backing buffer.
		w := m.Waveform
		m.Waveform = append([]float64(nil), w...)
		cp.scopeBufs.Put(w[:0])
	}
	if err == nil {
		cp.net.Put(net)
		cp.chips.Put(chip)
	}
	return m, err
}

// FindFailureVoltage is Platform.FindFailureVoltage on the fast path:
// each probe voltage's regulator settle is computed once and replayed
// for every later visit, which is where most of the procedure's time
// goes. Results are bit-identical to the slow path.
func (cp *CompiledPlatform) FindFailureVoltage(rc RunConfig, floor float64) (float64, bool, error) {
	if floor <= 0 || floor >= cp.p.PDN.VNom {
		return 0, false, fmt.Errorf("testbed: floor %g out of range", floor)
	}
	for v := cp.p.PDN.VNom; v >= floor; v -= FailureStep {
		cfg := rc
		cfg.SupplyVolts = v
		m, err := cp.Run(cfg)
		if err != nil {
			return 0, false, err
		}
		if m.Failed {
			return v, true, nil
		}
	}
	return floor, false, nil
}
