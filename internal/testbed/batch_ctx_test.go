package testbed

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// assertNoExtraGoroutines polls until the goroutine count returns to
// the pre-call level, failing with a stack dump if workers leaked. The
// batch pipeline lets claimed jobs run to completion after a cancel, so
// the count may lag the call's return briefly.
func assertNoExtraGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// checkBatchOutcome verifies the slot invariant — exactly one of
// (measurement, error) per slot — and that every resolved slot is
// bit-identical to the serial reference, i.e. a cancelled batch returns
// only whole results, never torn ones. It returns how many slots
// carried the cancellation.
func checkBatchOutcome(t *testing.T, ref *CompiledPlatform, rcs []RunConfig, ms []*Measurement, errs []error) (cancelled int) {
	t.Helper()
	for i := range rcs {
		if (ms[i] == nil) == (errs[i] == nil) {
			t.Fatalf("slot %d: measurement=%v error=%v, want exactly one", i, ms[i] != nil, errs[i])
		}
		if errs[i] != nil {
			if errors.Is(errs[i], context.Canceled) {
				cancelled++
			}
			continue
		}
		want, err := ref.Run(rcs[i])
		if err != nil {
			t.Fatalf("slot %d: serial reference failed: %v", i, err)
		}
		if !reflect.DeepEqual(ms[i], want) {
			t.Fatalf("slot %d: partial batch result differs from serial:\n got %+v\nwant %+v", i, ms[i], want)
		}
	}
	return cancelled
}

// ctxSlate builds a batch of distinct non-periodic configs so stage 1
// must capture every group and stage 2 replays them all.
func ctxSlate(t *testing.T, p Platform, groups int) []RunConfig {
	t.Helper()
	base := resonancePeriodCycles(p)
	var rcs []RunConfig
	for i := 0; i < groups; i++ {
		threads, err := SpreadPlacement(p.Chip, mulLoop(fmt.Sprintf("ctx%d", i), base+2*i), 4)
		if err != nil {
			t.Fatal(err)
		}
		rcs = append(rcs, RunConfig{
			Threads:      threads,
			MaxCycles:    12000,
			WarmupCycles: 1000,
			SupplyVolts:  p.Nominal() - 0.05,
		})
	}
	return rcs
}

// TestMeasureBatchContextPreCancelled: a batch handed an already-dead
// context resolves every slot with ctx.Err() (invalid configs keep
// their validation error — classification runs before any capture) and
// starts no simulation work.
func TestMeasureBatchContextPreCancelled(t *testing.T) {
	p := Bulldozer()
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rcs := ctxSlate(t, p, 3)
	rcs = append(rcs, RunConfig{MaxCycles: 100}) // invalid: no threads

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms, errs := cp.MeasureBatchContext(ctx, rcs, 0, 4)
	assertNoExtraGoroutines(t, before)

	for i := 0; i < 3; i++ {
		if ms[i] != nil || !errors.Is(errs[i], context.Canceled) {
			t.Errorf("slot %d: (%v, %v), want (nil, context.Canceled)", i, ms[i], errs[i])
		}
	}
	if errs[3] == nil || errors.Is(errs[3], context.Canceled) {
		t.Errorf("invalid slot: err = %v, want its validation error", errs[3])
	}
	if st := cp.TraceStats(); st.CaptureNS != 0 {
		t.Errorf("capture ran %dns of work under a pre-cancelled context", st.CaptureNS)
	}
}

// TestMeasureBatchContextCancelDuringCapture cancels while stage 1 is
// capturing: the pipeline must stop dispatching, leak no goroutines,
// and return whole per-slot results — resolved slots bit-identical to
// the serial path, unreached slots carrying the cancellation.
func TestMeasureBatchContextCancelDuringCapture(t *testing.T) {
	p := Bulldozer()
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rcs := ctxSlate(t, p, 8)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stopped atomic.Bool
	go func() {
		// Trip the cancel as soon as the first capture lands, i.e. mid
		// stage 1 while later groups are still queued.
		for !stopped.Load() {
			if cp.TraceStats().Misses >= 1 {
				cancel()
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	ms, errs := cp.MeasureBatchContext(ctx, rcs, 0, 1)
	stopped.Store(true)
	assertNoExtraGoroutines(t, before)
	checkBatchOutcome(t, ref, rcs, ms, errs)
}

// TestMeasureBatchContextCancelDuringReplay pre-captures every trace,
// then cancels while stage 2 replays a fresh set of supply points:
// replay jobs not yet claimed must be abandoned with ctx.Err() and the
// finished ones must match the serial path exactly.
func TestMeasureBatchContextCancelDuringReplay(t *testing.T) {
	p := Bulldozer()
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	warm := ctxSlate(t, p, 8)
	if _, werrs := cp.MeasureBatch(warm, 0, 4); werrs[0] != nil {
		t.Fatal(werrs[0])
	}
	// New supplies: every trace is already resident, all work is replay.
	rcs := make([]RunConfig, len(warm))
	for i, rc := range warm {
		rc.SupplyVolts = p.Nominal() - 0.11
		rcs[i] = rc
	}
	lanesSeen := cp.TraceStats().LaneBatches

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stopped atomic.Bool
	go func() {
		for !stopped.Load() {
			if cp.TraceStats().LaneBatches > lanesSeen {
				cancel()
				return
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()
	// Lane width 1 splits the replays into many pool tasks so a
	// mid-stage cancel has queued work left to abandon.
	ms, errs := cp.MeasureBatchContext(ctx, rcs, 1, 1)
	stopped.Store(true)
	assertNoExtraGoroutines(t, before)
	checkBatchOutcome(t, ref, rcs, ms, errs)
}
