package testbed

import (
	"math"
	"time"

	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/scope"
)

// This file is phase 2 of the two-phase measurement pipeline: stream a
// recorded chip trace (trace.go) through the batched PDN kernel and
// reproduce Platform.measure's statistics. For the cycles it actually
// steps, the arithmetic is bit-identical to the exact loop — the kernel
// computes power.Amps(e, dt, supply) + leakage as e*mul/div + add with
// mul = 1e-12 and div = dt*supply, the same operation sequence — so a
// full-length replay returns the same Measurement bit for bit.
//
// Two independent early exits make replays cheap:
//   - chip side: a verified-periodic trace stores only head + one
//     period; the remaining cycles re-stream the period slice.
//   - PDN side: once the network's state at consecutive period
//     boundaries stops moving (relative delta ≤ convergeEps), every
//     later period produces the same voltage response, so the remaining
//     MinV/MeanV/EnergyPJ/UnitTotals are extrapolated in closed form
//     from the converged period. This is skipped when a scope, trigger
//     or histogram consumes every sample.
//
// The per-cycle statistics fold lives in replayFold, shared with the
// multi-lane generation pipeline (batch.go) so a lane replay folds in
// the exact loop's order too.

const (
	// replayChunk is the batch size for streaming non-periodic spans.
	replayChunk = 4096
	// convergeTailV bounds the projected remaining die-voltage drift
	// (volts) below which the periodic response is declared converged.
	// The per-boundary waveform delta decays geometrically with ratio ρ
	// once transients dominate, so the total future movement of any
	// sample is at most d·ρ/(1−ρ); requiring that projection under
	// 1e-10 V keeps the extrapolated voltage statistics well within
	// 1e-9 V of the exact loop regardless of how slowly the network
	// rings down.
	convergeTailV = 1e-10
	// convergeWindow is how many recent boundary deltas feed the ρ
	// estimate; ρ is their worst (largest) consecutive ratio, because
	// lightly damped modes beat and the instantaneous ratio at a beat
	// minimum wildly understates the true decay envelope.
	convergeWindow = 4
	// convergeRuns is how many consecutive boundaries must qualify
	// before the exit is taken — a second guard against beat minima.
	convergeRuns = 3
)

// getVBuf returns a pooled voltage buffer of length n.
func (cp *CompiledPlatform) getVBuf(n int) []float64 {
	if b, ok := cp.vbufs.Get().([]float64); ok && cap(b) >= n {
		return b[:n]
	}
	return make([]float64, n)
}

// replayFold accumulates Platform.measure's per-cycle statistics over
// streamed voltage spans. Both the single-lane replay and the
// multi-lane generation pipeline fold through it, in the exact loop's
// per-cycle order, so the two paths produce bit-identical statistics
// for the same voltage stream.
type replayFold struct {
	p    Platform
	m    *Measurement
	vNom float64
	warm uint64
	sumV float64
	nV   uint64
	sc   *scope.Scope
	trig *scope.Trigger
	hist *scope.Histogram
}

// scan folds one simulated span into the measurement.
func (f *replayFold) scan(base uint64, es []float64, qs []uint64, vs []float64) {
	m := f.m
	for i := range es {
		cyc := base + uint64(i)
		m.EnergyPJ += es[i]
		q := qs[i]
		for u := 0; u < int(isa.NumUnits); u++ {
			m.UnitTotals[u] += (q >> (8 * uint(u))) & 0xff
		}
		if cyc < f.warm {
			continue
		}
		v := vs[i]
		if d := f.vNom - v; d > m.MaxDroopV {
			m.MaxDroopV = d
		}
		if o := v - f.vNom; o > m.MaxOvershootV {
			m.MaxOvershootV = o
		}
		if v < m.MinV {
			m.MinV = v
		}
		f.sumV += v
		f.nV++
		if f.sc != nil {
			f.sc.Sample(v)
		}
		if f.trig != nil {
			f.trig.Sample(v)
		}
		if f.hist != nil {
			f.hist.Add(v)
		}
		if !m.Failed && f.p.Failure.checkPacked(v, q) {
			m.Failed = true
			m.FailCycle = cyc
		}
	}
}

// finish fills the end-of-run fields: chip counters (extrapolated for
// periodic traces, final for full ones), mean voltage and average
// power.
func (f *replayFold) finish(tr *chipTrace, N uint64, dt float64) {
	m := f.m
	m.Cycles = N
	if tr.periodic {
		// Chip counters at N cycles from the verified per-period
		// deltas: ref is the boundary at headLen+periodLen, K full
		// periods fit in the remaining span, and the partial tail is
		// apportioned pro rata (the only approximate fields — callers
		// that need exact tail counters set ExactCycleLoop).
		pStart := uint64(tr.headLen)
		pLen := uint64(tr.periodLen)
		span := N - pStart
		K := span / pLen // ≥ 3 by the detector's arming condition
		rem := span % pLen
		ext := func(ref, per uint64) uint64 { return ref + per*(K-1) + per*rem/pLen }
		m.Retired = ext(tr.refRetired, tr.perRetired)
		m.Branches = ext(tr.refStats.Branches, tr.perStats.Branches)
		m.Mispredicts = ext(tr.refStats.Mispredicts, tr.perStats.Mispredicts)
		m.L1Hits = ext(tr.refStats.L1Hits, tr.perStats.L1Hits)
		m.L1Misses = ext(tr.refStats.L1Misses, tr.perStats.L1Misses)
		m.L2Hits = ext(tr.refStats.L2Hits, tr.perStats.L2Hits)
		m.L2Misses = ext(tr.refStats.L2Misses, tr.perStats.L2Misses)
		m.L3Hits = ext(tr.refStats.L3Hits, tr.perStats.L3Hits)
		m.L3Misses = ext(tr.refStats.L3Misses, tr.perStats.L3Misses)
	} else {
		m.Retired = tr.endRetired
		st := tr.endStats
		m.Branches, m.Mispredicts = st.Branches, st.Mispredicts
		m.L1Hits, m.L1Misses = st.L1Hits, st.L1Misses
		m.L2Hits, m.L2Misses = st.L2Hits, st.L2Misses
		m.L3Hits, m.L3Misses = st.L3Hits, st.L3Misses
	}
	if f.nV > 0 {
		m.MeanV = f.sumV / float64(f.nV)
	}
	if m.Cycles > 0 {
		m.AvgPowerW = m.EnergyPJ*1e-12/(float64(m.Cycles)*dt) + f.p.Power.LeakageWattsPerModule*float64(f.p.Chip.Modules)
	}
}

// replay reconstructs the Measurement for rc from a recorded trace.
func (cp *CompiledPlatform) replay(tr *chipTrace, rc RunConfig) (*Measurement, error) {
	defer cp.traces.addReplayNS(time.Now())
	p := cp.p
	dt := p.Chip.CycleSeconds()
	vNom := p.PDN.VNom
	supply := vNom
	if rc.SupplyVolts > 0 {
		supply = rc.SupplyVolts
	}
	net := cp.getNet(rc.SupplyVolts)

	var scopeBuf []float64
	var sc *scope.Scope
	if rc.RecordWaveform {
		if b, ok := cp.scopeBufs.Get().([]float64); ok {
			scopeBuf = b
		}
		rate := rc.ScopeSampleHz
		if rate <= 0 {
			rate = p.Chip.ClockHz
		}
		s, err := scope.NewInto(p.Chip.ClockHz, rate, true, scopeBuf)
		if err != nil {
			return nil, err
		}
		sc = s
	}
	var trig *scope.Trigger
	if rc.TriggerThreshold > 0 {
		trig = scope.NewTrigger(rc.TriggerThreshold, 0.002)
	}
	// Sample consumers need every post-warmup voltage, which rules out
	// the PDN early exit (but not the chip-side period reuse).
	consumers := sc != nil || trig != nil || rc.Histogram != nil

	leakage := p.Power.LeakageAmps(p.Chip.Modules, supply)
	div := dt * supply
	warm := rc.WarmupCycles

	m := &Measurement{MinV: supply}
	fold := &replayFold{p: p, m: m, vNom: vNom, warm: warm, sc: sc, trig: trig, hist: rc.Histogram}

	// Total cycles the exact loop would simulate: a periodic trace runs
	// to MaxCycles; a full trace already holds every cycle (it is
	// shorter than MaxCycles only when the program finished).
	N := uint64(len(tr.energy))
	if tr.periodic {
		N = rc.MaxCycles
	}
	head := uint64(len(tr.energy)) // stored span (headLen+periodLen when periodic)
	pLen := uint64(tr.periodLen)
	pStart := uint64(tr.headLen)

	bufLen := uint64(replayChunk)
	if tr.periodic && pLen > bufLen {
		bufLen = pLen
	}
	if bufLen > N {
		bufLen = N
	}
	vbuf := cp.getVBuf(int(bufLen))

	// Full (non-periodic) traces are one straight stream with no state
	// handoff, so they ride the reduced-order kernel whenever the
	// platform's tolerance admits the trace. Periodic replays without
	// sample consumers ride it too: the head streams through the ROM
	// and the affine period map is then built in the ROM's own modal
	// coordinates (periodicModal) — m+1 probe lanes instead of
	// StateDim+1 and O(m²+pLen·m) per boundary. Periodic replays with
	// consumers keep the exact kernel for every sample, and with
	// ROMTolV unset (zero) everything below is bit-identical to the
	// exact loop as before.
	var rom *pdn.ROMState
	if (!tr.periodic || !consumers) && cp.romOK(tr, div, leakage) {
		rom, _ = cp.net.NewROMState(net, leakage)
	}
	cp.traces.noteReplays(1, rom != nil)
	if tr.periodic {
		cp.traces.notePeriodicReplay(rom != nil)
	}

	// Stored entries, streamed straight through.
	cyc := uint64(0)
	directEnd := head
	if directEnd > N {
		directEnd = N
	}
	for cyc < directEnd {
		n := uint64(len(vbuf))
		if n > directEnd-cyc {
			n = directEnd - cyc
		}
		es := tr.energy[cyc : cyc+n]
		qs := tr.issues[cyc : cyc+n]
		if rom != nil {
			rom.StepTrace(vbuf[:n], es, 1e-12, div)
		} else {
			net.StepTrace(vbuf[:n], es, 1e-12, div, leakage)
		}
		fold.scan(cyc, es, qs, vbuf[:n])
		cyc += n
	}

	// Periodic region: re-stream the stored period, watching the
	// period-boundary die-voltage waveform for convergence. The full
	// PDN state is the wrong gauge here — board-stage L/R and C·ESR
	// time constants run to milliseconds, so internal states keep
	// drifting long after the die-voltage response (the only thing the
	// extrapolated statistics consume) has settled.
	if tr.periodic && cyc < N && consumers {
		// Sample consumers need every post-warmup voltage, so period
		// tiles stream through the full kernel with no early exit.
		period := tr.energy[pStart:head]
		periodQ := tr.issues[pStart:head]
		for cyc < N {
			n := pLen
			if n > N-cyc {
				n = N - cyc
			}
			es := period[:n]
			qs := periodQ[:n]
			net.StepTrace(vbuf[:n], es, 1e-12, div, leakage)
			fold.scan(cyc, es, qs, vbuf[:n])
			cyc += n
		}
	} else if tr.periodic && cyc < N {
		period := tr.energy[pStart:head]
		periodQ := tr.issues[pStart:head]
		var converged uint64
		if rom != nil {
			cyc, converged = cp.periodicModal(rom, fold, vbuf, period, periodQ, cyc, N, pLen, warm, div)
		} else {
			cyc, converged = cp.periodicAffine(net, fold, vbuf, period, periodQ, cyc, N, pLen, warm, div, leakage)
		}
		if converged > 0 {
			cp.traces.noteEarlyExit()
			extrapolatePeriodic(fold, tr, vbuf, period, periodQ, N, converged, pLen)
		}
	}

	fold.finish(tr, N, dt)
	if sc != nil {
		w := sc.Waveform()
		m.Waveform = append([]float64(nil), w...)
		cp.scopeBufs.Put(w[:0])
	}
	if trig != nil {
		m.DroopEvents = trig.EventCount()
	}
	cp.vbufs.Put(vbuf[:0])
	cp.net.Put(net)
	return m, nil
}

// periodicAffine scans the periodic region with the exact kernel's
// affine period map, returning the cycle reached and, when the PDN
// early exit fired, the boundary cycle at which the response converged
// (0 otherwise). Pure code motion from replay: the floating-point
// operation sequence is exactly the pre-refactor inline loop's, which
// is what keeps ROMTolV=0 replays bit-identical across releases.
func (cp *CompiledPlatform) periodicAffine(net *pdn.PDN, fold *replayFold, vbuf, period []float64, periodQ []uint64, cyc, N, pLen, warm uint64, div, leakage float64) (uint64, uint64) {
	// Affine period model. The network is linear and every tile
	// drives it with the same current sequence, so one period is an
	// affine map of the boundary state s: the end state is
	// E(s) = eRef + A·(s−sRef) and the in-period die voltages are
	// v_c(s) = vRef[c] + W_c·(s−sRef). Sampling the map is exact —
	// no small-perturbation approximation, linearity makes the
	// finite difference the true derivative — and costs dim+1
	// kernel runs of one period each: the reference run plus dim
	// unit-perturbed probes. The probes all share one drive period,
	// so they run as lanes of a single multi-lane kernel pass (each
	// lane bit-identical to the sequential probe it replaces)
	// instead of dim sequential runs. After that, each boundary
	// advances with O(dim² + pLen·dim) arithmetic instead of pLen
	// dense MNA solves, which is where a long periodic replay's
	// time would otherwise go. The first tile has ds = 0, so its
	// voltages are the kernel's own output bit for bit; later
	// tiles pick up ~1e-13 V of float reordering noise, far inside
	// the convergence tolerances.
	dim := net.StateDim()
	sRef := make([]float64, dim)
	net.StateVec(sRef)
	vRef := cp.getVBuf(int(pLen))
	net.StepTrace(vRef[:pLen], period, 1e-12, div, leakage)
	eRef := make([]float64, dim)
	net.StateVec(eRef)
	A := make([]float64, dim*dim)       // column k at A[k*dim:]
	W := make([]float64, int(pLen)*dim) // row c at W[c*dim:]
	scratch := make([]float64, dim)
	{
		pb := cp.net.NewBatch(dim)
		probeV := make([]float64, dim*int(pLen))
		dsts := make([][]float64, dim)
		srcs := make([][]float64, dim)
		muls := make([]float64, dim)
		divs := make([]float64, dim)
		adds := make([]float64, dim)
		for k := 0; k < dim; k++ {
			// Sources (the lane's supply set-point and last sink
			// value) come from the live state; only the dynamic
			// state is perturbed.
			pb.LoadLane(k, net)
			copy(scratch, sRef)
			scratch[k]++
			pb.SetLaneStateVec(k, scratch)
			dsts[k] = probeV[k*int(pLen) : (k+1)*int(pLen)]
			srcs[k] = period
			muls[k], divs[k], adds[k] = 1e-12, div, leakage
		}
		pb.StepTraceBatch(dsts, srcs, muls, divs, adds, int(pLen))
		cp.traces.noteProbeLanes(dim + 1) // reference run + dim probes
		for k := 0; k < dim; k++ {
			pb.LaneStateVec(k, scratch)
			col := A[k*dim : k*dim+dim]
			for i := range col {
				col[i] = scratch[i] - eRef[i]
			}
			vk := dsts[k]
			for c := 0; c < int(pLen); c++ {
				W[c*dim+k] = vk[c] - vRef[c]
			}
		}
	}

	volts := func(dst []float64, ds []float64) {
		for c := range dst {
			v := vRef[c]
			row := W[c*dim : c*dim+dim]
			for i, w := range row {
				v += w * ds[i]
			}
			dst[c] = v
		}
	}

	sCur := append([]float64(nil), sRef...)
	sNext := make([]float64, dim)
	ds := make([]float64, dim)
	prevV := cp.getVBuf(int(pLen))
	converged := uint64(0)
	havePrev := false
	var dHist [convergeWindow]float64
	nHist := 0
	runs := 0
	for cyc+pLen <= N {
		for i := range ds {
			ds[i] = sCur[i] - sRef[i]
		}
		volts(vbuf[:pLen], ds)
		fold.scan(cyc, period, periodQ, vbuf[:pLen])
		cyc += pLen
		if cyc < N {
			if !havePrev {
				copy(prevV, vbuf[:pLen])
				havePrev = true
			} else {
				var d float64
				for i := uint64(0); i < pLen; i++ {
					if dd := math.Abs(vbuf[i] - prevV[i]); dd > d {
						d = dd
					}
				}
				if nHist < convergeWindow {
					dHist[nHist] = d
					nHist++
				} else {
					copy(dHist[:], dHist[1:])
					dHist[convergeWindow-1] = d
				}
				// Qualify when the geometric projection of all
				// future movement is under convergeTailV (d == 0
				// means the response already hit a floating-point
				// fixed cycle).
				ok := false
				if d == 0 {
					ok = true
				} else if nHist == convergeWindow {
					rho := 0.0
					for j := 1; j < convergeWindow; j++ {
						if r := dHist[j] / dHist[j-1]; r > rho {
							rho = r
						}
					}
					if rho < 1 && d*rho/(1-rho) < convergeTailV {
						ok = true
					}
				}
				// Only trust a converged period whose samples all
				// counted toward statistics (fully past warmup).
				if ok && cyc-pLen >= warm {
					if runs++; runs >= convergeRuns {
						converged = cyc
						break
					}
				} else {
					runs = 0
				}
				copy(prevV, vbuf[:pLen])
			}
		}
		// Advance the boundary state: sNext = eRef + A·ds.
		copy(sNext, eRef)
		for k := 0; k < dim; k++ {
			if d := ds[k]; d != 0 {
				col := A[k*dim : k*dim+dim]
				for i, a := range col {
					sNext[i] += a * d
				}
			}
		}
		sCur, sNext = sNext, sCur
	}
	cp.vbufs.Put(prevV[:0])
	if converged == 0 && cyc < N {
		// MaxCycles is not period-aligned: finish the partial tail
		// from the next period's prefix.
		rem := N - cyc
		for i := range ds {
			ds[i] = sCur[i] - sRef[i]
		}
		volts(vbuf[:rem], ds)
		fold.scan(cyc, period[:rem], periodQ[:rem], vbuf[:rem])
		cyc += rem
	}
	cp.vbufs.Put(vRef[:0])
	return cyc, converged
}

// extrapolatePeriodic folds the remaining N−converged cycles in closed
// form from the converged period response left in vbuf[:pLen]. Every
// remaining period repeats that response, so MinV/MeanV/EnergyPJ/
// UnitTotals follow from one pass over the period. No new failure can
// appear: the converged period was scanned and its repeats are
// identical to within convergeTailV. Shared by the exact-state and
// modal periodic paths, verbatim from the pre-refactor inline block.
func extrapolatePeriodic(fold *replayFold, tr *chipTrace, vbuf, period []float64, periodQ []uint64, N, converged, pLen uint64) {
	m := fold.m
	vNom := fold.vNom
	remaining := N - converged
	K := remaining / pLen
	rem := remaining % pLen
	var psum float64
	pmin, pmax := vbuf[0], vbuf[0]
	for _, v := range vbuf[:pLen] {
		psum += v
		if v < pmin {
			pmin = v
		}
		if v > pmax {
			pmax = v
		}
	}
	if K > 0 {
		fold.sumV += psum * float64(K)
		fold.nV += K * pLen
		if d := vNom - pmin; d > m.MaxDroopV {
			m.MaxDroopV = d
		}
		if o := pmax - vNom; o > m.MaxOvershootV {
			m.MaxOvershootV = o
		}
		if pmin < m.MinV {
			m.MinV = pmin
		}
		m.EnergyPJ += tr.periodEnergy * float64(K)
		for u := range tr.periodIssues {
			m.UnitTotals[u] += tr.periodIssues[u] * K
		}
	}
	for i := uint64(0); i < rem; i++ {
		v := vbuf[i]
		if d := vNom - v; d > m.MaxDroopV {
			m.MaxDroopV = d
		}
		if o := v - vNom; o > m.MaxOvershootV {
			m.MaxOvershootV = o
		}
		if v < m.MinV {
			m.MinV = v
		}
		fold.sumV += v
		fold.nV++
		m.EnergyPJ += period[i]
		q := periodQ[i]
		for u := 0; u < int(isa.NumUnits); u++ {
			m.UnitTotals[u] += (q >> (8 * uint(u))) & 0xff
		}
	}
}

// periodicModal is the reduced-order fast path for the periodic region:
// the same affine-period construction as periodicAffine, but in the
// ROM's modal coordinates. The probe pass costs m+1 one-period lanes
// (reference + one per modal coordinate) instead of StateDim+1, and
// each boundary advances with O(m² + pLen·m) arithmetic. Because
// romStepKernel never couples modal sections, the probed period map A
// is exactly block-diagonal over rom.Sections() — which makes the
// steady-state boundary μ* = μRef + (I−A)⁻¹(eRef−μRef) and the
// per-section contraction factors σ_i = ‖A_i‖₂ cheap and exact. Those
// turn convergence detection into a sound analytic bound: for a
// boundary μ with per-section deviation δ_i = (μ−μ*)_i, every sample of
// every future period differs from the just-scanned one by at most
//
//	|W_c·(A^j−I)δ| ≤ Σ_i (σ_i^j + 1)·Wmax_i·‖δ_i‖ ≤ Σ_i (1+σ_i)·Wmax_i·‖δ_i‖
//
// (σ_i ≤ 1, j ≥ 1), with Wmax_i = max_c ‖W_c section-i part‖₂. When
// that bound clears convergeTailV the run jumps straight to its
// converged tail at the first qualifying boundary — no empirical delta
// window or ρ-ramp. If the steady-state solve is singular or any
// σ_i > 1, the loop degrades to scanning every period (no early exit),
// still within the admitted ROM tolerance.
func (cp *CompiledPlatform) periodicModal(rom *pdn.ROMState, fold *replayFold, vbuf, period []float64, periodQ []uint64, cyc, N, pLen, warm uint64, div float64) (uint64, uint64) {
	m := rom.Order()
	secs := rom.Sections()
	muRef := make([]float64, m)
	vstar := rom.Modal(muRef)

	// Probe pass: lane 0 replays the reference period from the live
	// boundary; lane k+1 starts from the same boundary with modal
	// coordinate k perturbed by +1. The kernel is linear in μ, so the
	// lane differences are the period map's columns (A) and the
	// in-period voltage sensitivities (W) exactly.
	rb, _ := cp.net.NewROMBatch(m + 1)
	probeV := make([]float64, (m+1)*int(pLen))
	dsts := make([][]float64, m+1)
	srcs := make([][]float64, m+1)
	muls := make([]float64, m+1)
	divs := make([]float64, m+1)
	scratch := make([]float64, m)
	for k := 0; k <= m; k++ {
		copy(scratch, muRef)
		if k > 0 {
			scratch[k-1]++
		}
		rb.SetLaneModal(k, scratch, vstar)
		dsts[k] = probeV[k*int(pLen) : (k+1)*int(pLen)]
		srcs[k] = period
		muls[k], divs[k] = 1e-12, div
	}
	rb.StepTraceBatch(dsts, srcs, muls, divs, int(pLen))
	cp.traces.noteProbeLanes(m + 1)

	vRef := dsts[0]
	eRef := make([]float64, m)
	rb.LaneModal(0, eRef)
	A := make([]float64, m*m)         // column k at A[k*m:]
	W := make([]float64, int(pLen)*m) // row c at W[c*m:]
	for k := 1; k <= m; k++ {
		rb.LaneModal(k, scratch)
		col := A[(k-1)*m : (k-1)*m+m]
		for i := range col {
			col[i] = scratch[i] - eRef[i]
		}
		vk := dsts[k]
		for c := 0; c < int(pLen); c++ {
			W[c*m+k-1] = vk[c] - vRef[c]
		}
	}

	// Analytic convergence machinery. A failed solve or an expanding
	// section just disables the early exit; scanning stays correct.
	muStar := make([]float64, m)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		rhs[i] = eRef[i] - muRef[i]
	}
	analytic := pdn.PeriodicSteadyState(secs, A, rhs, muStar) == nil
	var sig []float64
	if analytic {
		for i := 0; i < m; i++ {
			muStar[i] += muRef[i]
		}
		sig = pdn.SectionContractions(secs, A)
		for _, s := range sig {
			if !(s <= 1) {
				analytic = false
				break
			}
		}
	}
	var wmax []float64
	if analytic {
		wmax = make([]float64, len(secs))
		for c := 0; c < int(pLen); c++ {
			row := W[c*m : c*m+m]
			o := 0
			for si, sz := range secs {
				var n2 float64
				for j := 0; j < sz; j++ {
					n2 += row[o+j] * row[o+j]
				}
				if n2 > wmax[si] {
					wmax[si] = n2
				}
				o += sz
			}
		}
		for si := range wmax {
			wmax[si] = math.Sqrt(wmax[si])
		}
	}

	mu := append([]float64(nil), muRef...)
	muNext := make([]float64, m)
	ds := make([]float64, m)
	volts := func(dst []float64, ds []float64) {
		for c := range dst {
			v := vRef[c]
			row := W[c*m : c*m+m]
			for i, w := range row {
				v += w * ds[i]
			}
			dst[c] = v
		}
	}
	converged := uint64(0)
	for cyc+pLen <= N {
		for i := range ds {
			ds[i] = mu[i] - muRef[i]
		}
		volts(vbuf[:pLen], ds)
		fold.scan(cyc, period, periodQ, vbuf[:pLen])
		cyc += pLen
		// Only trust a converged period whose samples all counted
		// toward statistics (fully past warmup) — same gate as the
		// exact path.
		if analytic && cyc < N && cyc-pLen >= warm {
			bound := 0.0
			o := 0
			for si, sz := range secs {
				var n2 float64
				for j := 0; j < sz; j++ {
					d := mu[o+j] - muStar[o+j]
					n2 += d * d
				}
				bound += (1 + sig[si]) * wmax[si] * math.Sqrt(n2)
				o += sz
			}
			if bound <= convergeTailV {
				converged = cyc
				break
			}
		}
		// Advance the boundary: μ' = eRef + A·(μ − μRef).
		copy(muNext, eRef)
		for k := 0; k < m; k++ {
			if d := ds[k]; d != 0 {
				col := A[k*m : k*m+m]
				for i, a := range col {
					muNext[i] += a * d
				}
			}
		}
		mu, muNext = muNext, mu
	}
	if converged == 0 && cyc < N {
		// MaxCycles is not period-aligned: finish the partial tail
		// from the next period's prefix.
		rem := N - cyc
		for i := range ds {
			ds[i] = mu[i] - muRef[i]
		}
		volts(vbuf[:rem], ds)
		fold.scan(cyc, period[:rem], periodQ[:rem], vbuf[:rem])
		cyc = N
	}
	return cyc, converged
}
