package testbed

import (
	"math"
	"time"

	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/scope"
)

// This file is phase 2 of the two-phase measurement pipeline: stream a
// recorded chip trace (trace.go) through the batched PDN kernel and
// reproduce Platform.measure's statistics. For the cycles it actually
// steps, the arithmetic is bit-identical to the exact loop — the kernel
// computes power.Amps(e, dt, supply) + leakage as e*mul/div + add with
// mul = 1e-12 and div = dt*supply, the same operation sequence — so a
// full-length replay returns the same Measurement bit for bit.
//
// Two independent early exits make replays cheap:
//   - chip side: a verified-periodic trace stores only head + one
//     period; the remaining cycles re-stream the period slice.
//   - PDN side: once the network's state at consecutive period
//     boundaries stops moving (relative delta ≤ convergeEps), every
//     later period produces the same voltage response, so the remaining
//     MinV/MeanV/EnergyPJ/UnitTotals are extrapolated in closed form
//     from the converged period. This is skipped when a scope, trigger
//     or histogram consumes every sample.
//
// The per-cycle statistics fold lives in replayFold, shared with the
// multi-lane generation pipeline (batch.go) so a lane replay folds in
// the exact loop's order too.

const (
	// replayChunk is the batch size for streaming non-periodic spans.
	replayChunk = 4096
	// convergeTailV bounds the projected remaining die-voltage drift
	// (volts) below which the periodic response is declared converged.
	// The per-boundary waveform delta decays geometrically with ratio ρ
	// once transients dominate, so the total future movement of any
	// sample is at most d·ρ/(1−ρ); requiring that projection under
	// 1e-10 V keeps the extrapolated voltage statistics well within
	// 1e-9 V of the exact loop regardless of how slowly the network
	// rings down.
	convergeTailV = 1e-10
	// convergeWindow is how many recent boundary deltas feed the ρ
	// estimate; ρ is their worst (largest) consecutive ratio, because
	// lightly damped modes beat and the instantaneous ratio at a beat
	// minimum wildly understates the true decay envelope.
	convergeWindow = 4
	// convergeRuns is how many consecutive boundaries must qualify
	// before the exit is taken — a second guard against beat minima.
	convergeRuns = 3
)

// getVBuf returns a pooled voltage buffer of length n.
func (cp *CompiledPlatform) getVBuf(n int) []float64 {
	if b, ok := cp.vbufs.Get().([]float64); ok && cap(b) >= n {
		return b[:n]
	}
	return make([]float64, n)
}

// replayFold accumulates Platform.measure's per-cycle statistics over
// streamed voltage spans. Both the single-lane replay and the
// multi-lane generation pipeline fold through it, in the exact loop's
// per-cycle order, so the two paths produce bit-identical statistics
// for the same voltage stream.
type replayFold struct {
	p    Platform
	m    *Measurement
	vNom float64
	warm uint64
	sumV float64
	nV   uint64
	sc   *scope.Scope
	trig *scope.Trigger
	hist *scope.Histogram
}

// scan folds one simulated span into the measurement.
func (f *replayFold) scan(base uint64, es []float64, qs []uint64, vs []float64) {
	m := f.m
	for i := range es {
		cyc := base + uint64(i)
		m.EnergyPJ += es[i]
		q := qs[i]
		for u := 0; u < int(isa.NumUnits); u++ {
			m.UnitTotals[u] += (q >> (8 * uint(u))) & 0xff
		}
		if cyc < f.warm {
			continue
		}
		v := vs[i]
		if d := f.vNom - v; d > m.MaxDroopV {
			m.MaxDroopV = d
		}
		if o := v - f.vNom; o > m.MaxOvershootV {
			m.MaxOvershootV = o
		}
		if v < m.MinV {
			m.MinV = v
		}
		f.sumV += v
		f.nV++
		if f.sc != nil {
			f.sc.Sample(v)
		}
		if f.trig != nil {
			f.trig.Sample(v)
		}
		if f.hist != nil {
			f.hist.Add(v)
		}
		if !m.Failed && f.p.Failure.checkPacked(v, q) {
			m.Failed = true
			m.FailCycle = cyc
		}
	}
}

// finish fills the end-of-run fields: chip counters (extrapolated for
// periodic traces, final for full ones), mean voltage and average
// power.
func (f *replayFold) finish(tr *chipTrace, N uint64, dt float64) {
	m := f.m
	m.Cycles = N
	if tr.periodic {
		// Chip counters at N cycles from the verified per-period
		// deltas: ref is the boundary at headLen+periodLen, K full
		// periods fit in the remaining span, and the partial tail is
		// apportioned pro rata (the only approximate fields — callers
		// that need exact tail counters set ExactCycleLoop).
		pStart := uint64(tr.headLen)
		pLen := uint64(tr.periodLen)
		span := N - pStart
		K := span / pLen // ≥ 3 by the detector's arming condition
		rem := span % pLen
		ext := func(ref, per uint64) uint64 { return ref + per*(K-1) + per*rem/pLen }
		m.Retired = ext(tr.refRetired, tr.perRetired)
		m.Branches = ext(tr.refStats.Branches, tr.perStats.Branches)
		m.Mispredicts = ext(tr.refStats.Mispredicts, tr.perStats.Mispredicts)
		m.L1Hits = ext(tr.refStats.L1Hits, tr.perStats.L1Hits)
		m.L1Misses = ext(tr.refStats.L1Misses, tr.perStats.L1Misses)
		m.L2Hits = ext(tr.refStats.L2Hits, tr.perStats.L2Hits)
		m.L2Misses = ext(tr.refStats.L2Misses, tr.perStats.L2Misses)
		m.L3Hits = ext(tr.refStats.L3Hits, tr.perStats.L3Hits)
		m.L3Misses = ext(tr.refStats.L3Misses, tr.perStats.L3Misses)
	} else {
		m.Retired = tr.endRetired
		st := tr.endStats
		m.Branches, m.Mispredicts = st.Branches, st.Mispredicts
		m.L1Hits, m.L1Misses = st.L1Hits, st.L1Misses
		m.L2Hits, m.L2Misses = st.L2Hits, st.L2Misses
		m.L3Hits, m.L3Misses = st.L3Hits, st.L3Misses
	}
	if f.nV > 0 {
		m.MeanV = f.sumV / float64(f.nV)
	}
	if m.Cycles > 0 {
		m.AvgPowerW = m.EnergyPJ*1e-12/(float64(m.Cycles)*dt) + f.p.Power.LeakageWattsPerModule*float64(f.p.Chip.Modules)
	}
}

// replay reconstructs the Measurement for rc from a recorded trace.
func (cp *CompiledPlatform) replay(tr *chipTrace, rc RunConfig) (*Measurement, error) {
	defer cp.traces.addReplayNS(time.Now())
	p := cp.p
	dt := p.Chip.CycleSeconds()
	vNom := p.PDN.VNom
	supply := vNom
	if rc.SupplyVolts > 0 {
		supply = rc.SupplyVolts
	}
	net := cp.getNet(rc.SupplyVolts)

	var scopeBuf []float64
	var sc *scope.Scope
	if rc.RecordWaveform {
		if b, ok := cp.scopeBufs.Get().([]float64); ok {
			scopeBuf = b
		}
		rate := rc.ScopeSampleHz
		if rate <= 0 {
			rate = p.Chip.ClockHz
		}
		s, err := scope.NewInto(p.Chip.ClockHz, rate, true, scopeBuf)
		if err != nil {
			return nil, err
		}
		sc = s
	}
	var trig *scope.Trigger
	if rc.TriggerThreshold > 0 {
		trig = scope.NewTrigger(rc.TriggerThreshold, 0.002)
	}
	// Sample consumers need every post-warmup voltage, which rules out
	// the PDN early exit (but not the chip-side period reuse).
	consumers := sc != nil || trig != nil || rc.Histogram != nil

	leakage := p.Power.LeakageAmps(p.Chip.Modules, supply)
	div := dt * supply
	warm := rc.WarmupCycles

	m := &Measurement{MinV: supply}
	fold := &replayFold{p: p, m: m, vNom: vNom, warm: warm, sc: sc, trig: trig, hist: rc.Histogram}

	// Total cycles the exact loop would simulate: a periodic trace runs
	// to MaxCycles; a full trace already holds every cycle (it is
	// shorter than MaxCycles only when the program finished).
	N := uint64(len(tr.energy))
	if tr.periodic {
		N = rc.MaxCycles
	}
	head := uint64(len(tr.energy)) // stored span (headLen+periodLen when periodic)
	pLen := uint64(tr.periodLen)
	pStart := uint64(tr.headLen)

	bufLen := uint64(replayChunk)
	if tr.periodic && pLen > bufLen {
		bufLen = pLen
	}
	if bufLen > N {
		bufLen = N
	}
	vbuf := cp.getVBuf(int(bufLen))

	// Full (non-periodic) traces are one straight stream with no state
	// handoff to the affine-period machinery, so they may ride the
	// reduced-order kernel when the platform's tolerance admits it.
	// Periodic replays keep the exact kernel: their affine probes and
	// boundary extrapolation are built on its state vector.
	var rom *pdn.ROMState
	if !tr.periodic && cp.romOK(tr, div, leakage) {
		rom, _ = cp.net.NewROMState(net, leakage)
	}
	cp.traces.noteReplays(1, rom != nil)

	// Stored entries, streamed straight through.
	cyc := uint64(0)
	directEnd := head
	if directEnd > N {
		directEnd = N
	}
	for cyc < directEnd {
		n := uint64(len(vbuf))
		if n > directEnd-cyc {
			n = directEnd - cyc
		}
		es := tr.energy[cyc : cyc+n]
		qs := tr.issues[cyc : cyc+n]
		if rom != nil {
			rom.StepTrace(vbuf[:n], es, 1e-12, div)
		} else {
			net.StepTrace(vbuf[:n], es, 1e-12, div, leakage)
		}
		fold.scan(cyc, es, qs, vbuf[:n])
		cyc += n
	}

	// Periodic region: re-stream the stored period, watching the
	// period-boundary die-voltage waveform for convergence. The full
	// PDN state is the wrong gauge here — board-stage L/R and C·ESR
	// time constants run to milliseconds, so internal states keep
	// drifting long after the die-voltage response (the only thing the
	// extrapolated statistics consume) has settled.
	if tr.periodic && cyc < N && consumers {
		// Sample consumers need every post-warmup voltage, so period
		// tiles stream through the full kernel with no early exit.
		period := tr.energy[pStart:head]
		periodQ := tr.issues[pStart:head]
		for cyc < N {
			n := pLen
			if n > N-cyc {
				n = N - cyc
			}
			es := period[:n]
			qs := periodQ[:n]
			net.StepTrace(vbuf[:n], es, 1e-12, div, leakage)
			fold.scan(cyc, es, qs, vbuf[:n])
			cyc += n
		}
	} else if tr.periodic && cyc < N {
		period := tr.energy[pStart:head]
		periodQ := tr.issues[pStart:head]

		// Affine period model. The network is linear and every tile
		// drives it with the same current sequence, so one period is an
		// affine map of the boundary state s: the end state is
		// E(s) = eRef + A·(s−sRef) and the in-period die voltages are
		// v_c(s) = vRef[c] + W_c·(s−sRef). Sampling the map is exact —
		// no small-perturbation approximation, linearity makes the
		// finite difference the true derivative — and costs dim+1
		// kernel runs of one period each: the reference run plus dim
		// unit-perturbed probes. The probes all share one drive period,
		// so they run as lanes of a single multi-lane kernel pass (each
		// lane bit-identical to the sequential probe it replaces)
		// instead of dim sequential runs. After that, each boundary
		// advances with O(dim² + pLen·dim) arithmetic instead of pLen
		// dense MNA solves, which is where a long periodic replay's
		// time would otherwise go. The first tile has ds = 0, so its
		// voltages are the kernel's own output bit for bit; later
		// tiles pick up ~1e-13 V of float reordering noise, far inside
		// the convergence tolerances.
		dim := net.StateDim()
		sRef := make([]float64, dim)
		net.StateVec(sRef)
		vRef := cp.getVBuf(int(pLen))
		net.StepTrace(vRef[:pLen], period, 1e-12, div, leakage)
		eRef := make([]float64, dim)
		net.StateVec(eRef)
		A := make([]float64, dim*dim)       // column k at A[k*dim:]
		W := make([]float64, int(pLen)*dim) // row c at W[c*dim:]
		scratch := make([]float64, dim)
		{
			pb := cp.net.NewBatch(dim)
			probeV := make([]float64, dim*int(pLen))
			dsts := make([][]float64, dim)
			srcs := make([][]float64, dim)
			muls := make([]float64, dim)
			divs := make([]float64, dim)
			adds := make([]float64, dim)
			for k := 0; k < dim; k++ {
				// Sources (the lane's supply set-point and last sink
				// value) come from the live state; only the dynamic
				// state is perturbed.
				pb.LoadLane(k, net)
				copy(scratch, sRef)
				scratch[k]++
				pb.SetLaneStateVec(k, scratch)
				dsts[k] = probeV[k*int(pLen) : (k+1)*int(pLen)]
				srcs[k] = period
				muls[k], divs[k], adds[k] = 1e-12, div, leakage
			}
			pb.StepTraceBatch(dsts, srcs, muls, divs, adds, int(pLen))
			for k := 0; k < dim; k++ {
				pb.LaneStateVec(k, scratch)
				col := A[k*dim : k*dim+dim]
				for i := range col {
					col[i] = scratch[i] - eRef[i]
				}
				vk := dsts[k]
				for c := 0; c < int(pLen); c++ {
					W[c*dim+k] = vk[c] - vRef[c]
				}
			}
		}

		volts := func(dst []float64, ds []float64) {
			for c := range dst {
				v := vRef[c]
				row := W[c*dim : c*dim+dim]
				for i, w := range row {
					v += w * ds[i]
				}
				dst[c] = v
			}
		}

		sCur := append([]float64(nil), sRef...)
		sNext := make([]float64, dim)
		ds := make([]float64, dim)
		prevV := cp.getVBuf(int(pLen))
		converged := uint64(0)
		havePrev := false
		var dHist [convergeWindow]float64
		nHist := 0
		runs := 0
		for cyc+pLen <= N {
			for i := range ds {
				ds[i] = sCur[i] - sRef[i]
			}
			volts(vbuf[:pLen], ds)
			fold.scan(cyc, period, periodQ, vbuf[:pLen])
			cyc += pLen
			if cyc < N {
				if !havePrev {
					copy(prevV, vbuf[:pLen])
					havePrev = true
				} else {
					var d float64
					for i := uint64(0); i < pLen; i++ {
						if dd := math.Abs(vbuf[i] - prevV[i]); dd > d {
							d = dd
						}
					}
					if nHist < convergeWindow {
						dHist[nHist] = d
						nHist++
					} else {
						copy(dHist[:], dHist[1:])
						dHist[convergeWindow-1] = d
					}
					// Qualify when the geometric projection of all
					// future movement is under convergeTailV (d == 0
					// means the response already hit a floating-point
					// fixed cycle).
					ok := false
					if d == 0 {
						ok = true
					} else if nHist == convergeWindow {
						rho := 0.0
						for j := 1; j < convergeWindow; j++ {
							if r := dHist[j] / dHist[j-1]; r > rho {
								rho = r
							}
						}
						if rho < 1 && d*rho/(1-rho) < convergeTailV {
							ok = true
						}
					}
					// Only trust a converged period whose samples all
					// counted toward statistics (fully past warmup).
					if ok && cyc-pLen >= warm {
						if runs++; runs >= convergeRuns {
							converged = cyc
							break
						}
					} else {
						runs = 0
					}
					copy(prevV, vbuf[:pLen])
				}
			}
			// Advance the boundary state: sNext = eRef + A·ds.
			copy(sNext, eRef)
			for k := 0; k < dim; k++ {
				if d := ds[k]; d != 0 {
					col := A[k*dim : k*dim+dim]
					for i, a := range col {
						sNext[i] += a * d
					}
				}
			}
			sCur, sNext = sNext, sCur
		}
		cp.vbufs.Put(prevV[:0])
		if converged == 0 && cyc < N {
			// MaxCycles is not period-aligned: finish the partial tail
			// from the next period's prefix.
			rem := N - cyc
			for i := range ds {
				ds[i] = sCur[i] - sRef[i]
			}
			volts(vbuf[:rem], ds)
			fold.scan(cyc, period[:rem], periodQ[:rem], vbuf[:rem])
			cyc += rem
		}
		cp.vbufs.Put(vRef[:0])
		if converged > 0 {
			cp.traces.noteEarlyExit()
			// Every remaining period repeats the response in
			// vbuf[:pLen]; fold the remaining N-converged cycles in
			// closed form. No new failure can appear: the converged
			// period was scanned and its repeats are identical to
			// within convergeEps.
			remaining := N - converged
			K := remaining / pLen
			rem := remaining % pLen
			var psum float64
			pmin, pmax := vbuf[0], vbuf[0]
			for _, v := range vbuf[:pLen] {
				psum += v
				if v < pmin {
					pmin = v
				}
				if v > pmax {
					pmax = v
				}
			}
			if K > 0 {
				fold.sumV += psum * float64(K)
				fold.nV += K * pLen
				if d := vNom - pmin; d > m.MaxDroopV {
					m.MaxDroopV = d
				}
				if o := pmax - vNom; o > m.MaxOvershootV {
					m.MaxOvershootV = o
				}
				if pmin < m.MinV {
					m.MinV = pmin
				}
				m.EnergyPJ += tr.periodEnergy * float64(K)
				for u := range tr.periodIssues {
					m.UnitTotals[u] += tr.periodIssues[u] * K
				}
			}
			for i := uint64(0); i < rem; i++ {
				v := vbuf[i]
				if d := vNom - v; d > m.MaxDroopV {
					m.MaxDroopV = d
				}
				if o := v - vNom; o > m.MaxOvershootV {
					m.MaxOvershootV = o
				}
				if v < m.MinV {
					m.MinV = v
				}
				fold.sumV += v
				fold.nV++
				m.EnergyPJ += period[i]
				q := periodQ[i]
				for u := 0; u < int(isa.NumUnits); u++ {
					m.UnitTotals[u] += (q >> (8 * uint(u))) & 0xff
				}
			}
		}
	}

	fold.finish(tr, N, dt)
	if sc != nil {
		w := sc.Waveform()
		m.Waveform = append([]float64(nil), w...)
		cp.scopeBufs.Put(w[:0])
	}
	if trig != nil {
		m.DroopEvents = trig.EventCount()
	}
	cp.vbufs.Put(vbuf[:0])
	cp.net.Put(net)
	return m, nil
}
