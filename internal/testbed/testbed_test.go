package testbed

import (
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/scope"
	"repro/internal/trace"
)

// hpLpLoop builds a resonant-style loop: H cycles of a high-power
// pattern (2 FMAs + 2 NOPs per cycle ≈ decode-bound) followed by L
// cycles of NOPs (4 per cycle), repeated iters times.
func hpLpLoop(name string, hCycles, lCycles int, iters int64) *asm.Program {
	b := asm.NewBuilder(name)
	b.InitToggle(16, 8)
	b.RI("movimm", isa.RCX, iters)
	b.Label("loop")
	for i := 0; i < hCycles; i++ {
		b.RRR("vfmadd132pd", isa.XMM(i%12), isa.XMM(12+(i%2)), isa.XMM(14+(i%2)))
		b.RRR("vfmadd132pd", isa.XMM((i+6)%12), isa.XMM(13-(i%2)), isa.XMM(15-(i%2)))
		b.Nop(2)
	}
	b.Nop(4 * lCycles)
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	return b.MustBuild()
}

// resonancePeriodCycles returns the platform's first-droop period in
// clock cycles.
func resonancePeriodCycles(p Platform) int {
	return int(math.Round(p.Chip.ClockHz / p.PDN.FirstDroopNominal()))
}

func run4T(t *testing.T, p Platform, prog *asm.Program, cycles uint64, adjust func(*RunConfig)) *Measurement {
	t.Helper()
	threads, err := SpreadPlacement(p.Chip, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Threads: threads, MaxCycles: cycles, WarmupCycles: 2000}
	if adjust != nil {
		adjust(&rc)
	}
	m, err := p.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSpreadPlacement(t *testing.T) {
	p := Bulldozer()
	prog := asm.NewBuilder("x").Nop(1).MustBuild()
	specs, err := SpreadPlacement(p.Chip, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		if s.Module != i || s.Core != 0 {
			t.Errorf("4T spec %d = %+v, want one per module on core 0", i, s)
		}
	}
	specs, err = SpreadPlacement(p.Chip, prog, 8)
	if err != nil {
		t.Fatal(err)
	}
	if specs[4].Module != 0 || specs[4].Core != 1 {
		t.Errorf("8T spec 4 = %+v, want module 0 core 1", specs[4])
	}
	if _, err := SpreadPlacement(p.Chip, prog, 9); err == nil {
		t.Error("9 threads on 8 cores accepted")
	}
	if _, err := SpreadPlacement(p.Chip, prog, 0); err == nil {
		t.Error("0 threads accepted")
	}
}

func TestRunProducesDroop(t *testing.T) {
	p := Bulldozer()
	period := resonancePeriodCycles(p)
	prog := hpLpLoop("res", period/2, period/2, 1<<40)
	m := run4T(t, p, prog, 40000, nil)
	if m.MaxDroopV <= 0.005 {
		t.Fatalf("4T resonant loop droop = %.4f V, want noticeable", m.MaxDroopV)
	}
	if m.MaxDroopV > 0.3*p.Nominal() {
		t.Fatalf("droop %.4f V implausibly large", m.MaxDroopV)
	}
	if m.MaxOvershootV <= 0 {
		t.Error("resonance should also overshoot")
	}
	if m.AvgPowerW < 5 || m.AvgPowerW > 120 {
		t.Errorf("average power %.1f W out of plausible desktop range", m.AvgPowerW)
	}
}

func TestResonantPeriodBeatsOffResonance(t *testing.T) {
	p := Bulldozer()
	period := resonancePeriodCycles(p)
	droopFor := func(h, l int) float64 {
		m := run4T(t, p, hpLpLoop("x", h, l, 1<<40), 40000, nil)
		return m.MaxDroopV
	}
	on := droopFor(period/2, period-period/2)
	half := droopFor(period/4, period/2-period/4)
	double := droopFor(period, period)
	if on <= half || on <= double {
		t.Errorf("resonant droop %.4f should beat off-resonance %.4f (half) and %.4f (double)",
			on, half, double)
	}
}

func TestWaveformDominantFrequencyIsResonance(t *testing.T) {
	p := Bulldozer()
	period := resonancePeriodCycles(p)
	prog := hpLpLoop("res", period/2, period-period/2, 1<<40)
	m := run4T(t, p, prog, 30000, func(rc *RunConfig) {
		rc.RecordWaveform = true
	})
	if len(m.Waveform) == 0 {
		t.Fatal("no waveform recorded")
	}
	fRes := p.PDN.FirstDroopNominal()
	f, err := trace.DominantFrequencyInBand(m.Waveform, p.Chip.ClockHz, fRes/3, fRes*3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-fRes)/fRes > 0.25 {
		t.Errorf("dominant frequency %.1f MHz, want ≈ %.1f MHz", f/1e6, fRes/1e6)
	}
}

func TestMisalignedThreadsDroopLess(t *testing.T) {
	p := Bulldozer()
	period := resonancePeriodCycles(p)
	prog := hpLpLoop("res", period/2, period-period/2, 1<<40)
	aligned := run4T(t, p, prog, 30000, nil)
	misaligned := run4T(t, p, prog, 30000, func(rc *RunConfig) {
		// Anti-phase pairs: two threads droop while two overshoot.
		for i := range rc.Threads {
			if i%2 == 1 {
				rc.Threads[i].StartSkew = uint64(period / 2)
			}
		}
	})
	if misaligned.MaxDroopV >= aligned.MaxDroopV*0.85 {
		t.Errorf("anti-phase droop %.4f not clearly below aligned %.4f",
			misaligned.MaxDroopV, aligned.MaxDroopV)
	}
}

func TestDitheringRecoversAlignment(t *testing.T) {
	p := Bulldozer()
	period := resonancePeriodCycles(p)
	prog := hpLpLoop("res", period/2, period-period/2, 1<<40)
	aligned := run4T(t, p, prog, 30000, nil)

	// Misalign thread 1 by half a period, then dither it: one cycle of
	// padding every M cycles sweeps every relative alignment.
	M := uint64(8 * period)
	dithered := run4T(t, p, prog, uint64(M)*uint64(period)+20000, func(rc *RunConfig) {
		rc.Threads[1].StartSkew = uint64(period / 2)
		rc.Dither = []DitherSpec{{
			Core:         rc.Threads[1].GlobalCore(p.Chip),
			PeriodCycles: M,
			PadCycles:    1,
		}}
	})
	if dithered.MaxDroopV < aligned.MaxDroopV*0.85 {
		t.Errorf("dithering failed to recover alignment: %.4f vs aligned %.4f",
			dithered.MaxDroopV, aligned.MaxDroopV)
	}
}

func TestFailureAtReducedSupply(t *testing.T) {
	p := Bulldozer()
	period := resonancePeriodCycles(p)
	prog := hpLpLoop("res", period/2, period-period/2, 1<<40)
	threads, _ := SpreadPlacement(p.Chip, prog, 4)
	rc := RunConfig{Threads: threads, MaxCycles: 25000, WarmupCycles: 2000}

	atNominal, err := p.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if atNominal.Failed {
		t.Fatal("failure at nominal supply: margins are mis-calibrated")
	}
	low := rc
	low.SupplyVolts = p.Nominal() - 0.15
	atLow, err := p.Run(low)
	if err != nil {
		t.Fatal(err)
	}
	if !atLow.Failed {
		t.Fatalf("no failure at %.3f V with a resonant stressmark", low.SupplyVolts)
	}
}

func TestFindFailureVoltageOrdersStressmarks(t *testing.T) {
	p := Bulldozer()
	period := resonancePeriodCycles(p)
	resonant := hpLpLoop("res", period/2, period-period/2, 1<<40)
	weak := hpLpLoop("weak", period/4, period/4, 1<<40) // off-resonance, lower swing
	vf := func(prog *asm.Program) float64 {
		threads, _ := SpreadPlacement(p.Chip, prog, 4)
		rc := RunConfig{Threads: threads, MaxCycles: 20000, WarmupCycles: 2000}
		v, ok, err := p.FindFailureVoltage(rc, p.Nominal()-0.25)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%s never failed above floor", prog.Name)
		}
		return v
	}
	vRes := vf(resonant)
	vWeak := vf(weak)
	if vRes <= vWeak {
		t.Errorf("resonant stressmark should fail at higher voltage: %.4f vs %.4f", vRes, vWeak)
	}
}

func TestHistogramCollection(t *testing.T) {
	p := Bulldozer()
	period := resonancePeriodCycles(p)
	prog := hpLpLoop("res", period/2, period-period/2, 1<<40)
	h, err := scope.NewHistogram(p.Nominal()-0.3, p.Nominal()+0.2, 200)
	if err != nil {
		t.Fatal(err)
	}
	m := run4T(t, p, prog, 20000, func(rc *RunConfig) {
		rc.Histogram = h
		rc.TriggerThreshold = p.Nominal() - 0.02
	})
	want := m.Cycles - 2000
	if h.Total() != want {
		t.Errorf("histogram samples = %d, want %d", h.Total(), want)
	}
	if m.DroopEvents == 0 {
		t.Error("no droop events triggered by a resonant stressmark")
	}
}

func TestDeterministicMeasurements(t *testing.T) {
	p := Bulldozer()
	period := resonancePeriodCycles(p)
	prog := hpLpLoop("res", period/2, period-period/2, 1<<40)
	a := run4T(t, p, prog, 15000, nil)
	b := run4T(t, p, prog, 15000, nil)
	if a.MaxDroopV != b.MaxDroopV || a.EnergyPJ != b.EnergyPJ || a.Retired != b.Retired {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestRunValidation(t *testing.T) {
	p := Bulldozer()
	if _, err := p.Run(RunConfig{}); err == nil {
		t.Error("empty run accepted")
	}
	prog := asm.NewBuilder("x").Nop(1).MustBuild()
	if _, err := p.Run(RunConfig{Threads: []ThreadSpec{{Program: prog, Module: 99}}}); err == nil {
		t.Error("bad placement accepted")
	}
	if _, err := p.Run(RunConfig{
		Threads: []ThreadSpec{{Program: prog}},
		Dither:  []DitherSpec{{Core: 0, PeriodCycles: 0, PadCycles: 1}},
	}); err == nil {
		t.Error("zero dither period accepted")
	}
	if _, _, err := p.FindFailureVoltage(RunConfig{Threads: []ThreadSpec{{Program: prog}}}, 2.0); err == nil {
		t.Error("failure floor above nominal accepted")
	}
}

func TestFPThrottleReducesDroop(t *testing.T) {
	p := Bulldozer()
	period := resonancePeriodCycles(p)
	prog := hpLpLoop("res", period/2, period-period/2, 1<<40)
	base := run4T(t, p, prog, 25000, nil)
	throttled := run4T(t, p, prog, 25000, func(rc *RunConfig) { rc.FPThrottle = 1 })
	if throttled.MaxDroopV >= base.MaxDroopV {
		t.Errorf("FPU throttling should cut the droop: %.4f vs %.4f",
			throttled.MaxDroopV, base.MaxDroopV)
	}
}

func TestPhenomPlatformRuns(t *testing.T) {
	p := Phenom()
	period := resonancePeriodCycles(p)
	// No FMA on the Phenom-style part: build the HP region from mulpd.
	b := asm.NewBuilder("res-phenom")
	b.InitToggle(16, 8)
	b.RI("movimm", isa.RCX, 1<<40)
	b.Label("loop")
	for i := 0; i < period/2; i++ {
		b.RR("mulpd", isa.XMM(i%12), isa.XMM(12+i%4))
		b.RR("addpd", isa.XMM((i+6)%12), isa.XMM(12+(i+1)%4))
		b.Nop(1)
	}
	b.Nop(3 * (period - period/2))
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	m := run4T(t, p, b.MustBuild(), 20000, nil)
	if m.MaxDroopV <= 0 {
		t.Error("no droop on Phenom platform")
	}
}

func TestPhenomRejectsFMA(t *testing.T) {
	p := Phenom()
	prog := hpLpLoop("fma", 8, 8, 100)
	threads, _ := SpreadPlacement(p.Chip, prog, 1)
	if _, err := p.Run(RunConfig{Threads: threads, MaxCycles: 1000}); err == nil {
		t.Error("FMA program accepted on FMA-less chip")
	}
}
