package testbed

import "testing"

// benchRunConfig is the voltage-at-failure probe workload: a reduced
// supply (so every run pays the regulator settle) and a short measured
// window — the shape of the runs that dominate AUDIT's search and
// failure-voltage procedures.
func benchRunConfig(b *testing.B, p Platform) RunConfig {
	b.Helper()
	period := resonancePeriodCycles(p)
	threads, err := SpreadPlacement(p.Chip, mulLoop("bench", period), 4)
	if err != nil {
		b.Fatal(err)
	}
	return RunConfig{
		Threads:      threads,
		MaxCycles:    3000,
		WarmupCycles: 1000,
		SupplyVolts:  p.Nominal() - 0.10,
	}
}

// BenchmarkEvalColdVsCompiled quantifies the fast path on repeated
// runs of one platform. Cold rebuilds the chip, re-factors the PDN
// matrix and re-settles the regulator every run (the pre-fast-path
// behaviour); Compiled reuses all three through one CompiledPlatform.
// The acceptance bar for this PR is ≥1.5× and fewer allocs/op.
func BenchmarkEvalColdVsCompiled(b *testing.B) {
	p := Bulldozer()

	b.Run("Cold", func(b *testing.B) {
		rc := benchRunConfig(b, p)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(rc); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("Compiled", func(b *testing.B) {
		rc := benchRunConfig(b, p)
		cp, err := p.Compile()
		if err != nil {
			b.Fatal(err)
		}
		// Prime pools and the settle cache once; steady-state cost is
		// what the GA loop pays.
		if _, err := cp.Run(rc); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cp.Run(rc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
