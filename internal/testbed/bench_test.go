package testbed

import (
	"fmt"
	"testing"

	"repro/internal/tracestore"
)

// benchRunConfig is the voltage-at-failure probe workload: a reduced
// supply (so every run pays the regulator settle) and a short measured
// window — the shape of the runs that dominate AUDIT's search and
// failure-voltage procedures.
func benchRunConfig(b *testing.B, p Platform) RunConfig {
	b.Helper()
	period := resonancePeriodCycles(p)
	threads, err := SpreadPlacement(p.Chip, mulLoop("bench", period), 4)
	if err != nil {
		b.Fatal(err)
	}
	return RunConfig{
		Threads:      threads,
		MaxCycles:    3000,
		WarmupCycles: 1000,
		SupplyVolts:  p.Nominal() - 0.10,
	}
}

// BenchmarkEvalColdVsCompiled quantifies the fast path on repeated
// runs of one platform. Cold rebuilds the chip, re-factors the PDN
// matrix and re-settles the regulator every run (the pre-fast-path
// behaviour); Compiled reuses all three through one CompiledPlatform.
// The acceptance bar for this PR is ≥1.5× and fewer allocs/op.
func BenchmarkEvalColdVsCompiled(b *testing.B) {
	p := Bulldozer()

	b.Run("Cold", func(b *testing.B) {
		rc := benchRunConfig(b, p)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(rc); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("Compiled", func(b *testing.B) {
		rc := benchRunConfig(b, p)
		cp, err := p.Compile()
		if err != nil {
			b.Fatal(err)
		}
		// Prime pools and the settle cache once; steady-state cost is
		// what the GA loop pays.
		if _, err := cp.Run(rc); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cp.Run(rc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// replayBenchConfig is a long periodic measurement: a 2M-cycle run of a
// jmp-closed loop whose energy trace proves periodic within a few
// thousand cycles, so the trace pipeline gets both of its early exits
// (chip-side period detection, PDN steady-state convergence).
func replayBenchConfig(b *testing.B, p Platform) RunConfig {
	b.Helper()
	threads, err := SpreadPlacement(p.Chip, jmpLoop("bench-replay", resonancePeriodCycles(p)), 4)
	if err != nil {
		b.Fatal(err)
	}
	return RunConfig{
		Threads:      threads,
		MaxCycles:    2_000_000,
		WarmupCycles: 2000,
		SupplyVolts:  p.Nominal() - 0.10,
	}
}

// BenchmarkMeasureExactVsReplay quantifies the trace pipeline on a long
// periodic run. Exact is the reference per-cycle loop; Replay pays
// phase 1 every iteration (ClearTraceCache) but still stops the chip at
// the verified period and early-exits the PDN; ReplayCached is the
// steady state for repeats, supply ladders and fault retries — phase 2
// only. The acceptance bar for this PR is Replay ≥5× over Exact.
func BenchmarkMeasureExactVsReplay(b *testing.B) {
	p := Bulldozer()

	run := func(b *testing.B, cp *CompiledPlatform, rc RunConfig, clear bool) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if clear {
				cp.ClearTraceCache()
			}
			if _, err := cp.Run(rc); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("Exact", func(b *testing.B) {
		cp, err := p.Compile()
		if err != nil {
			b.Fatal(err)
		}
		rc := replayBenchConfig(b, p)
		rc.ExactCycleLoop = true
		if _, err := cp.Run(rc); err != nil { // prime pools + settle cache
			b.Fatal(err)
		}
		run(b, cp, rc, false)
	})

	b.Run("Replay", func(b *testing.B) {
		cp, err := p.Compile()
		if err != nil {
			b.Fatal(err)
		}
		rc := replayBenchConfig(b, p)
		if _, err := cp.Run(rc); err != nil {
			b.Fatal(err)
		}
		run(b, cp, rc, true)
	})

	b.Run("ReplayCached", func(b *testing.B) {
		cp, err := p.Compile()
		if err != nil {
			b.Fatal(err)
		}
		rc := replayBenchConfig(b, p)
		if _, err := cp.Run(rc); err != nil {
			b.Fatal(err)
		}
		run(b, cp, rc, false)
	})
}

// generationSlate is one GA generation after memoization dedup: popSize
// distinct non-periodic programs with staggered loop and measurement
// lengths, all replay-eligible, so the batch pipeline's lane kernels
// get a full slate to pack.
func generationSlate(b *testing.B, p Platform, popSize int) []RunConfig {
	b.Helper()
	base := resonancePeriodCycles(p)
	rcs := make([]RunConfig, popSize)
	for i := range rcs {
		threads, err := SpreadPlacement(p.Chip, mulLoop(fmt.Sprintf("gen%d", i), base+2*i), 4)
		if err != nil {
			b.Fatal(err)
		}
		rcs[i] = RunConfig{
			Threads:      threads,
			MaxCycles:    8000 + uint64(i%8)*1000,
			WarmupCycles: 1000,
			SupplyVolts:  p.Nominal() - 0.08,
		}
	}
	return rcs
}

// BenchmarkGenerationBatch quantifies the generation-batched pipeline
// against the per-candidate path on a 32-genome generation. Both run
// with a warm trace cache — captures are phase 1, identical and shared
// between the paths, and in a real search replays dominate (repeats,
// supply ladders, fault retries, mutated survivors re-probing cached
// traces) — so what's measured is population replay throughput, the
// part multi-lane kernels accelerate. Each iteration shifts
// WarmupCycles so the finished-measurement memo misses and every slot
// pays a real replay. The acceptance bar for this PR is Batched/L8
// ≥1.5× PerCandidate at 8 workers.
func BenchmarkGenerationBatch(b *testing.B) {
	p := Bulldozer()
	const popSize = 32
	const workers = 8

	setup := func(b *testing.B) (*CompiledPlatform, []RunConfig) {
		cp, err := p.Compile()
		if err != nil {
			b.Fatal(err)
		}
		rcs := generationSlate(b, p, popSize)
		_, errs := cp.MeasureBatch(rcs, DefaultBatchLanes, workers)
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		return cp, rcs
	}
	// vary dodges the finished-measurement memo: WarmupCycles is part of
	// the memo key but not the trace key, so every iteration replays the
	// cached traces for real. The modulus recycles keys only after the
	// memo's FIFO has long evicted them.
	vary := func(rcs []RunConfig, iter int) {
		w := 1000 + 2*uint64(iter%500+1)
		for i := range rcs {
			rcs[i].WarmupCycles = w
		}
	}

	b.Run("PerCandidate/W8", func(b *testing.B) {
		cp, rcs := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vary(rcs, i)
			runParallel(workers, len(rcs), func(j int) {
				if _, err := cp.Run(rcs[j]); err != nil {
					b.Error(err)
				}
			})
		}
	})

	for _, lanes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("Batched/L%dxW8", lanes), func(b *testing.B) {
			cp, rcs := setup(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vary(rcs, i)
				_, errs := cp.MeasureBatch(rcs, lanes, workers)
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkMedianOfKReplay is the GA's noise-rejection pattern
// (ga.Config.Repeats): each candidate measured K times on one
// RunConfig. With the trace cache, runs 2..K replay run 1's trace, so
// K=5 must cost well under 5 single measurements — the acceptance bar
// for this PR is <2× a single cold measurement.
func BenchmarkMedianOfKReplay(b *testing.B) {
	p := Bulldozer()

	run := func(b *testing.B, k int) {
		cp, err := p.Compile()
		if err != nil {
			b.Fatal(err)
		}
		rc := replayBenchConfig(b, p)
		if _, err := cp.Run(rc); err != nil { // prime pools + settle cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp.ClearTraceCache() // each candidate is a fresh program
			for j := 0; j < k; j++ {
				if _, err := cp.Run(rc); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	b.Run("Single", func(b *testing.B) { run(b, 1) })
	b.Run("K5", func(b *testing.B) { run(b, 5) })
}

// BenchmarkTraceStoreWarmVsCold prices the persistent store's warm
// start: ColdCapture rebuilds the chip trace every iteration (the
// first-process cost), WarmStore serves the same trace from a
// populated store directory (every later process's cost), and both
// clear the in-memory cache so the disk path is actually exercised.
// Phase 2 runs identically in both, so the gap isolates capture vs
// deserialize+checksum.
func BenchmarkTraceStoreWarmVsCold(b *testing.B) {
	p := Bulldozer()

	b.Run("ColdCapture", func(b *testing.B) {
		cp, err := p.Compile()
		if err != nil {
			b.Fatal(err)
		}
		rc := benchRunConfig(b, p)
		if _, err := cp.Run(rc); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp.ClearTraceCache()
			if _, err := cp.Run(rc); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("WarmStore", func(b *testing.B) {
		cp, err := p.Compile()
		if err != nil {
			b.Fatal(err)
		}
		st, err := tracestore.Open(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		cp.SetTraceStore(st)
		rc := benchRunConfig(b, p)
		if _, err := cp.Run(rc); err != nil { // capture once, write through
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp.ClearTraceCache()
			if _, err := cp.Run(rc); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if ts := cp.TraceStats(); ts.StoreHits < uint64(b.N) {
			b.Fatalf("store hits %d < iterations %d: warm path not exercised", ts.StoreHits, b.N)
		}
	})
}
