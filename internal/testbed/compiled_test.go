package testbed

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/scope"
)

// mulLoop builds a resonant HP/LP loop from mulpd/addpd only, so the
// same program runs on both the FMA Bulldozer and the FMA-less Phenom.
func mulLoop(name string, period int) *asm.Program {
	b := asm.NewBuilder(name)
	b.InitToggle(16, 8)
	b.RI("movimm", isa.RCX, 1<<40)
	b.Label("loop")
	for i := 0; i < period/2; i++ {
		b.RR("mulpd", isa.XMM(i%12), isa.XMM(12+i%4))
		b.RR("addpd", isa.XMM((i+6)%12), isa.XMM(12+(i+1)%4))
		b.Nop(1)
	}
	b.Nop(3 * (period - period/2))
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	return b.MustBuild()
}

// equivalenceConfig builds one fully-instrumented run config for the
// platform: waveform capture, droop trigger, and (via hist) histogram.
func equivalenceConfig(t *testing.T, p Platform, supply float64, hist *scope.Histogram) RunConfig {
	t.Helper()
	period := resonancePeriodCycles(p)
	threads, err := SpreadPlacement(p.Chip, mulLoop("equiv", period), 4)
	if err != nil {
		t.Fatal(err)
	}
	return RunConfig{
		Threads:          threads,
		MaxCycles:        12000,
		WarmupCycles:     2000,
		SupplyVolts:      supply,
		RecordWaveform:   true,
		TriggerThreshold: p.Nominal() - 0.015,
		Histogram:        hist,
	}
}

func newHist(t *testing.T, p Platform) *scope.Histogram {
	t.Helper()
	h, err := scope.NewHistogram(p.Nominal()-0.3, p.Nominal()+0.2, 200)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestCompiledRunMatchesSlowPathBitwise is the equivalence golden test:
// for both presets, at nominal and reduced supply, a compiled-platform
// run must reproduce the fresh-state slow path bit for bit — every
// droop statistic, the full waveform, the histogram, and the failure
// verdict. It also runs the compiled path twice so the second run
// exercises pooled (reset) chip and PDN state.
func TestCompiledRunMatchesSlowPathBitwise(t *testing.T) {
	cases := []struct {
		platform Platform
		dropV    float64 // supply reduction for the second sub-case
	}{
		{Bulldozer(), 0.15},
		{Phenom(), 0.15},
	}
	for _, tc := range cases {
		p := tc.platform
		cp, err := p.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, supply := range []float64{0, p.Nominal() - tc.dropV} {
			name := p.Chip.Name + "/nominal"
			if supply > 0 {
				name = p.Chip.Name + "/reduced"
			}
			t.Run(name, func(t *testing.T) {
				slowHist := newHist(t, p)
				want, err := p.Run(equivalenceConfig(t, p, supply, slowHist))
				if err != nil {
					t.Fatal(err)
				}
				for pass := 1; pass <= 2; pass++ {
					fastHist := newHist(t, p)
					got, err := cp.Run(equivalenceConfig(t, p, supply, fastHist))
					if err != nil {
						t.Fatal(err)
					}
					if len(got.Waveform) != len(want.Waveform) {
						t.Fatalf("pass %d: waveform length %d != %d", pass, len(got.Waveform), len(want.Waveform))
					}
					for i := range want.Waveform {
						if got.Waveform[i] != want.Waveform[i] {
							t.Fatalf("pass %d: waveform[%d] = %v, want %v (bit-identical)", pass, i, got.Waveform[i], want.Waveform[i])
						}
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("pass %d: measurements differ:\n got %+v\nwant %+v", pass, got, want)
					}
					if !reflect.DeepEqual(fastHist, slowHist) {
						t.Fatalf("pass %d: histograms differ", pass)
					}
				}
			})
		}
	}
}

// TestCompiledFindFailureVoltageMatchesSlow checks the whole
// voltage-at-failure procedure — the settle-cache's hot consumer —
// lands on the same voltage as the slow path.
func TestCompiledFindFailureVoltageMatchesSlow(t *testing.T) {
	p := Bulldozer()
	period := resonancePeriodCycles(p)
	threads, err := SpreadPlacement(p.Chip, mulLoop("vf", period), 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Threads: threads, MaxCycles: 10000, WarmupCycles: 2000}
	floor := p.Nominal() - 0.25

	vSlow, okSlow, err := p.FindFailureVoltage(rc, floor)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Twice: the second search replays every settle from the cache.
	for pass := 1; pass <= 2; pass++ {
		vFast, okFast, err := cp.FindFailureVoltage(rc, floor)
		if err != nil {
			t.Fatal(err)
		}
		if vFast != vSlow || okFast != okSlow {
			t.Fatalf("pass %d: compiled failure voltage (%.4f, %v) != slow (%.4f, %v)",
				pass, vFast, okFast, vSlow, okSlow)
		}
	}
}

// TestCompiledRunConcurrent drives one CompiledPlatform from many
// goroutines (as ga.Config.Parallel does) and checks every result
// stays bit-identical to a serial reference. Run under -race in CI.
func TestCompiledRunConcurrent(t *testing.T) {
	p := Bulldozer()
	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	supply := p.Nominal() - 0.10
	want, err := cp.Run(equivalenceConfig(t, p, supply, nil))
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	got := make([]*Measurement, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w], errs[w] = cp.Run(equivalenceConfig(t, p, supply, nil))
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		if !reflect.DeepEqual(got[w], want) {
			t.Fatalf("worker %d measurement diverged from reference", w)
		}
	}
}

// TestChipResetMatchesFresh checks the pooled-chip invariant directly:
// a reset chip must step exactly like a newly built one.
func TestChipResetMatchesFresh(t *testing.T) {
	p := Bulldozer()
	period := resonancePeriodCycles(p)
	prog := mulLoop("reset", period)
	run := func(m *Measurement) (uint64, float64, uint64) {
		return m.Retired, m.EnergyPJ, m.Mispredicts
	}
	want := run4T(t, p, prog, 8000, nil)

	cp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	threads, _ := SpreadPlacement(p.Chip, prog, 4)
	rc := RunConfig{Threads: threads, MaxCycles: 8000, WarmupCycles: 2000}
	for pass := 1; pass <= 3; pass++ {
		got, err := cp.Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		gr, ge, gm := run(got)
		wr, we, wm := run(want)
		if gr != wr || ge != we || gm != wm {
			t.Fatalf("pass %d: reset chip diverged: retired/energy/mispredicts (%d,%v,%d) != (%d,%v,%d)",
				pass, gr, ge, gm, wr, we, wm)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: full measurements differ", pass)
		}
	}
}
