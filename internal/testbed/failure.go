package testbed

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// FailureModel decides when a droop becomes a timing error. Each
// execution-unit kind has a critical voltage: if the die voltage falls
// below it *while that unit is active*, the exercised path misses
// timing and the run fails. This captures the paper's central §5.A.4
// finding — droop magnitude alone does not predict the failure point;
// which paths are being exercised when the droop arrives matters. SM2
// fails at a high supply voltage despite a benchmark-sized droop
// because it exercises the most voltage-sensitive paths.
type FailureModel struct {
	// CriticalV[u] is the die voltage below which unit u fails while
	// active. Zero disables checking for that unit.
	CriticalV [isa.NumUnits]float64
}

// BulldozerFailureModel returns per-unit critical voltages for the
// primary system. The divider and load/store paths are the most
// voltage-sensitive (longest logic depth per cycle); plain ALU paths
// the least.
func BulldozerFailureModel() FailureModel {
	var f FailureModel
	f.CriticalV[isa.UnitALU] = 1.060
	f.CriticalV[isa.UnitAGU] = 1.062
	f.CriticalV[isa.UnitIMul] = 1.082
	f.CriticalV[isa.UnitIDiv] = 1.118
	f.CriticalV[isa.UnitFPU] = 1.090
	f.CriticalV[isa.UnitLSU] = 1.093
	f.CriticalV[isa.UnitBranch] = 1.055
	return f
}

// PhenomFailureModel returns critical voltages for the 45 nm part
// (nominal 1.30 V, slower process, proportionally higher thresholds).
func PhenomFailureModel() FailureModel {
	var f FailureModel
	f.CriticalV[isa.UnitALU] = 1.105
	f.CriticalV[isa.UnitAGU] = 1.108
	f.CriticalV[isa.UnitIMul] = 1.125
	f.CriticalV[isa.UnitIDiv] = 1.155
	f.CriticalV[isa.UnitFPU] = 1.135
	f.CriticalV[isa.UnitLSU] = 1.140
	f.CriticalV[isa.UnitBranch] = 1.100
	return f
}

// Check returns whether the cycle failed and, if so, on which unit.
func (f FailureModel) Check(vDie float64, res *cpu.CycleResult) (bool, isa.Unit) {
	for u := isa.Unit(1); u < isa.NumUnits; u++ {
		if res.UnitIssues[u] > 0 && f.CriticalV[u] > 0 && vDie < f.CriticalV[u] {
			return true, u
		}
	}
	return false, isa.UnitNone
}

// checkPacked is Check against a trace-packed issue word (8 bits per
// unit, see packIssues): same units, same thresholds, same verdict.
func (f FailureModel) checkPacked(vDie float64, packed uint64) bool {
	for u := isa.Unit(1); u < isa.NumUnits; u++ {
		if packed>>(8*uint(u))&0xff != 0 && f.CriticalV[u] > 0 && vDie < f.CriticalV[u] {
			return true
		}
	}
	return false
}

// FailureStep is the supply-voltage decrement of the paper's procedure
// (§5.A.4): "we reduce the operating voltage in decrements of 12.5 mV
// until failure occurs."
const FailureStep = 0.0125

// FindFailureVoltage lowers the supply in FailureStep decrements,
// re-running the workload at each point, and returns the highest supply
// voltage at which the run fails. Higher is "better" for a stressmark —
// it means the program kills the part while more margin remains. floor
// bounds the search; if nothing fails above it, floor is returned with
// ok=false.
func (p Platform) FindFailureVoltage(rc RunConfig, floor float64) (float64, bool, error) {
	if floor <= 0 || floor >= p.PDN.VNom {
		return 0, false, fmt.Errorf("testbed: floor %g out of range", floor)
	}
	for v := p.PDN.VNom; v >= floor; v -= FailureStep {
		cfg := rc
		cfg.SupplyVolts = v
		m, err := p.Run(cfg)
		if err != nil {
			return 0, false, err
		}
		if m.Failed {
			return v, true, nil
		}
	}
	return floor, false, nil
}
