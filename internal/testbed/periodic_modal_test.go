package testbed

import (
	"testing"
)

// TestModalPeriodicMatchesExact is the modal fast path's headline
// equivalence check: a jmp-closed periodic loop on a ROM-enabled
// platform must replay through the modal-coordinate period map (m+1
// probe lanes, analytic convergence exit) and agree with the exact
// cycle loop within the declared ROM tolerance, while the exact
// platform keeps riding the full-state affine path untouched.
func TestModalPeriodicMatchesExact(t *testing.T) {
	prog := jmpLoop("modalperiodic", resonancePeriodCycles(Bulldozer()))
	threads, err := SpreadPlacement(Bulldozer().Chip, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 2M cycles: long enough for the die-voltage response to converge,
	// so both the affine and the analytic modal early exits fire.
	rc := RunConfig{
		Threads:      threads,
		MaxCycles:    2_000_000,
		WarmupCycles: 2000,
		SupplyVolts:  Bulldozer().Nominal() - 0.10,
	}
	exactCP, err := Bulldozer().Compile()
	if err != nil {
		t.Fatal(err)
	}
	romCP, err := romPlatform().Compile()
	if err != nil {
		t.Fatal(err)
	}
	exact := rc
	exact.ExactCycleLoop = true
	want, err := exactCP.Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	affine, err := exactCP.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	checkReplayTolerances(t, affine, want, 1e-9)
	modal, err := romCP.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	checkReplayTolerances(t, modal, want, romTol)

	st := romCP.TraceStats()
	if st.Periodic != 1 || st.PeriodicReplays != 1 || st.ModalPeriodic != 1 {
		t.Errorf("ROM platform periodic counters = (periodic %d, replays %d, modal %d), want (1, 1, 1)",
			st.Periodic, st.PeriodicReplays, st.ModalPeriodic)
	}
	if st.ROMReplays != 1 || st.ExactReplays != 0 {
		t.Errorf("ROM platform replay counters = (rom %d, exact %d), want (1, 0)", st.ROMReplays, st.ExactReplays)
	}
	if st.PDNEarlyExits != 1 {
		t.Errorf("modal analytic early exit did not fire (PDNEarlyExits = %d)", st.PDNEarlyExits)
	}
	ste := exactCP.TraceStats()
	if ste.PeriodicReplays != 1 || ste.ModalPeriodic != 0 {
		t.Errorf("exact platform periodic counters = (replays %d, modal %d), want (1, 0)",
			ste.PeriodicReplays, ste.ModalPeriodic)
	}
	// The whole point of the modal path: m+1 probe lanes (m = ROM
	// order) instead of StateDim+1.
	if st.AffineProbeLanes == 0 || ste.AffineProbeLanes == 0 {
		t.Fatalf("probe lanes uncounted: modal %d, affine %d", st.AffineProbeLanes, ste.AffineProbeLanes)
	}
	if st.AffineProbeLanes >= ste.AffineProbeLanes {
		t.Errorf("modal probe lanes %d not below full-state probe lanes %d", st.AffineProbeLanes, ste.AffineProbeLanes)
	}
}

// periodLenOf digs the single cached trace's periodic decomposition out
// of the cache (white box; same package).
func periodLenOf(cp *CompiledPlatform) (pLen int, periodic bool) {
	cp.traces.mu.Lock()
	defer cp.traces.mu.Unlock()
	for _, tr := range cp.traces.m {
		if tr.periodic {
			return tr.periodLen, true
		}
	}
	return 0, false
}

// TestPeriodicLongerThanChunk pins the pLen > replayChunk sizing edge:
// when the detected period exceeds the streaming chunk, the voltage
// buffer must grow to hold a full period on both the affine and modal
// paths, and the replay must still match the exact loop.
func TestPeriodicLongerThanChunk(t *testing.T) {
	// A 256-instruction loop's verified period folds in the mulpd data
	// pattern's cycle and lands at 7616 cycles — past replayChunk.
	prog := jmpLoop("longperiod", 256)
	rc := RunConfig{
		Threads:      []ThreadSpec{{Program: prog, Module: 0, Core: 0}},
		MaxCycles:    200000,
		WarmupCycles: 2000,
		SupplyVolts:  Bulldozer().Nominal() - 0.10,
	}
	exactCP, err := Bulldozer().Compile()
	if err != nil {
		t.Fatal(err)
	}
	romCP, err := romPlatform().Compile()
	if err != nil {
		t.Fatal(err)
	}
	exact := rc
	exact.ExactCycleLoop = true
	want, err := exactCP.Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exactCP.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	checkReplayTolerances(t, got, want, 1e-9)
	modal, err := romCP.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	checkReplayTolerances(t, modal, want, romTol)

	pLen, periodic := periodLenOf(exactCP)
	if !periodic {
		t.Fatal("long-period loop not detected periodic")
	}
	if pLen <= replayChunk {
		t.Fatalf("detected period %d does not exceed replayChunk %d — edge not exercised", pLen, replayChunk)
	}
	if st := romCP.TraceStats(); st.ModalPeriodic != 1 {
		t.Errorf("ROM platform did not take the modal periodic path (ModalPeriodic = %d)", st.ModalPeriodic)
	}
}

// TestPeriodicNeverConverges runs a periodic trace whose span ends long
// before the die-voltage response settles (the board stage rings for
// ~10^5-cycle e-folding times), so neither path's convergence exit may
// fire: every boundary is scanned, the non-aligned tail is finished
// from the period prefix, and the results still match the exact loop.
func TestPeriodicNeverConverges(t *testing.T) {
	prog := jmpLoop("noconverge", resonancePeriodCycles(Bulldozer()))
	rc := RunConfig{
		Threads:      []ThreadSpec{{Program: prog, Module: 0, Core: 0}},
		MaxCycles:    6001, // prime-ish: never period-aligned
		WarmupCycles: 1000,
		SupplyVolts:  Bulldozer().Nominal() - 0.10,
	}
	exactCP, err := Bulldozer().Compile()
	if err != nil {
		t.Fatal(err)
	}
	romCP, err := romPlatform().Compile()
	if err != nil {
		t.Fatal(err)
	}
	exact := rc
	exact.ExactCycleLoop = true
	want, err := exactCP.Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exactCP.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	checkReplayTolerances(t, got, want, 1e-9)
	modal, err := romCP.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	checkReplayTolerances(t, modal, want, romTol)

	if _, periodic := periodLenOf(exactCP); !periodic {
		t.Fatal("loop not detected periodic")
	}
	if st := exactCP.TraceStats(); st.PDNEarlyExits != 0 {
		t.Errorf("affine convergence exit fired on an unconverged span (PDNEarlyExits = %d)", st.PDNEarlyExits)
	}
	st := romCP.TraceStats()
	if st.PDNEarlyExits != 0 {
		t.Errorf("modal analytic exit fired on an unconverged span (PDNEarlyExits = %d)", st.PDNEarlyExits)
	}
	if st.ModalPeriodic != 1 {
		t.Errorf("ROM platform did not take the modal periodic path (ModalPeriodic = %d)", st.ModalPeriodic)
	}
}

// BenchmarkPeriodicReplayModal measures the probe-dominated periodic
// replay on the full-state affine path versus the modal fast path: a
// 60k-cycle span over a ~1k-cycle period runs ~53 cheap boundaries, so
// the dim+1 (respectively m+1) one-period probe lanes are where the
// time goes — the regime the modal path is built for. The warmup is
// varied per iteration to defeat the finished-measurement memo, so
// every iteration rebuilds the period map and walks the recurrence.
func BenchmarkPeriodicReplayModal(b *testing.B) {
	prog := jmpLoop("benchmodal", resonancePeriodCycles(Bulldozer()))
	threads, err := SpreadPlacement(Bulldozer().Chip, prog, 4)
	if err != nil {
		b.Fatal(err)
	}
	mkRC := func(i int) RunConfig {
		return RunConfig{
			Threads:      threads,
			MaxCycles:    60_000,
			WarmupCycles: 2000 + uint64(i),
			SupplyVolts:  Bulldozer().Nominal() - 0.10,
		}
	}
	for _, tc := range []struct {
		name string
		p    Platform
	}{
		{"affine", Bulldozer()},
		{"modal", romPlatform()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cp, err := tc.p.Compile()
			if err != nil {
				b.Fatal(err)
			}
			// Phase-1 capture outside the timer; iterations replay.
			if _, err := cp.Run(mkRC(0)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cp.Run(mkRC(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
