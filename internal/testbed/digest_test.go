package testbed

import (
	"fmt"
	"os"
	"testing"
)

// Golden platform digests for the two shipped test systems. A failure
// here means the platform description itself changed — a chip, power,
// PDN or failure-model field was added, removed or recalibrated — which
// invalidates every corpus entry baselined on the old digest. That must
// be an explicit, reviewed event: update these values AND re-baseline
// (or consciously keep) the affected corpora. Regenerate (never to
// paper over an accidental change) with:
//
//	AUDIT_GOLDEN_REGEN=1 go test -run TestPlatformDigestGolden -v ./internal/testbed/
var goldenPlatformDigests = map[string]string{
	"bulldozer": "37135682d6ddeef7b02ce27586a0c06a611f406d996a28ee3ff7880958effbb8",
	"phenom":    "acd0fdf08bc981c01a060eca55ce117de77921982f8fd4aeb5ae000d86d999c2",
}

func TestPlatformDigestGolden(t *testing.T) {
	regen := os.Getenv("AUDIT_GOLDEN_REGEN") != ""
	for name, p := range map[string]Platform{
		"bulldozer": Bulldozer(),
		"phenom":    Phenom(),
	} {
		got := PlatformDigest(p)
		if regen {
			fmt.Printf("\t%q: %q,\n", name, got)
			continue
		}
		if want := goldenPlatformDigests[name]; got != want {
			t.Errorf("%s: PlatformDigest = %s, want %s (platform description drifted — review and re-baseline corpora)",
				name, got, want)
		}
	}
}

// TestPlatformDigestSensitivity proves the digest covers all four
// platform components: perturbing any one of them must move it, and
// re-computing on an unchanged platform must not.
func TestPlatformDigestSensitivity(t *testing.T) {
	base := Bulldozer()
	ref := PlatformDigest(base)
	if PlatformDigest(Bulldozer()) != ref {
		t.Fatal("digest is not deterministic across identical platforms")
	}
	perturb := map[string]func(*Platform){
		"chip":    func(p *Platform) { p.Chip.DecodeWidth++ },
		"power":   func(p *Platform) { p.Power.FrontEndPJPerOp *= 2 },
		"pdn":     func(p *Platform) { p.PDN.LDie *= 1.5 },
		"failure": func(p *Platform) { p.Failure.CriticalV[1] += 0.01 },
	}
	for name, mutate := range perturb {
		p := Bulldozer()
		mutate(&p)
		if PlatformDigest(p) == ref {
			t.Errorf("perturbing the %s model did not change the platform digest", name)
		}
	}
	if PlatformDigest(Phenom()) == ref {
		t.Error("bulldozer and phenom digests collide")
	}
}

// TestCaptureDigestExcludesNetwork pins the trace-store salt's
// narrower contract: phase-1 traces depend only on the chip and power
// models, so a PDN- or failure-model change must NOT move the capture
// digest (platforms differing only on the network side share stored
// traces), while a chip or power change must.
func TestCaptureDigestExcludesNetwork(t *testing.T) {
	base := Bulldozer()
	ref := string(captureDigest(base))

	pdnOnly := Bulldozer()
	pdnOnly.PDN.LDie *= 1.5
	pdnOnly.Failure.CriticalV[1] += 0.01
	if string(captureDigest(pdnOnly)) != ref {
		t.Error("capture digest moved on a network-side change; stored traces would stop sharing")
	}
	chip := Bulldozer()
	chip.Chip.DecodeWidth++
	if string(captureDigest(chip)) == ref {
		t.Error("capture digest ignored a chip change")
	}
	pw := Bulldozer()
	pw.Power.FrontEndPJPerOp *= 2
	if string(captureDigest(pw)) == ref {
		t.Error("capture digest ignored a power-model change")
	}
}
