package testbed

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
)

// This file is phase 1 of the two-phase measurement pipeline: run the
// chip alone, record a per-cycle (energy, unit-issue) trace, detect
// when the trace has become periodic, and cache the result keyed by
// everything the chip side of a run depends on. Phase 2 (replay.go)
// streams the trace through the batched PDN kernel.
//
// Periodicity detection is two-tier. A cheap per-cycle fingerprint
// (cpu.Chip.StateFingerprint mixed with the cycle's energy/issue record
// and the dither phases) feeds Brent's cycle-detection algorithm, which
// proposes a candidate period in O(1) memory. A candidate is trusted
// only after the recorded trace repeats it bit-for-bit over two further
// periods AND the chip's retired/branch/cache counters advance by
// identical per-period deltas — the cycles are being recorded anyway,
// so verification costs nothing beyond running 2 extra periods.
// Programs whose energy is not exactly periodic (the generated dec/jnz
// loop closers toggle a monotone counter, making dec's toggle energy
// follow the binary ruler sequence) fail verification and fall back to
// a full-length trace, which still replays bit-identically and still
// caches; truly periodic loops (jmp-closed) stop the chip after
// head + 3 periods.

const (
	// traceMaxCycles bounds replay-eligible runs: 16 bytes/cycle keeps
	// the largest single trace at 64 MiB.
	traceMaxCycles = 4 << 20
	// defaultTraceCacheBytes bounds the per-platform trace cache.
	defaultTraceCacheBytes = 128 << 20
	// detectInitLimit is Brent's initial search window (doubled until
	// the period fits inside it).
	detectInitLimit = 64
	// detectMaxAttempts bounds failed candidate verifications before
	// detection is disabled for the run (the trace is still recorded).
	detectMaxAttempts = 8
)

// errTraceUnsupported routes a run back to the exact cycle loop when
// its trace cannot be represented (per-cycle unit-issue count > 255 or
// an unencodable program). The verdict is cached so repeats skip the
// doomed phase-1 attempt.
var errTraceUnsupported = errors.New("testbed: trace fast path unsupported for this run")

// Packed issue words hold one 8-bit count per execution unit; this
// fails to compile if isa.NumUnits outgrows the 64-bit word.
var _ [8 - int(isa.NumUnits)]struct{}

// packIssues packs a cycle's per-unit issue counts into one word,
// 8 bits per unit. ok is false on overflow (count > 255).
func packIssues(res *cpu.CycleResult) (uint64, bool) {
	var p uint64
	for u := 0; u < int(isa.NumUnits); u++ {
		c := res.UnitIssues[u]
		if uint(c) > 255 {
			return 0, false
		}
		p |= uint64(c) << (8 * uint(u))
	}
	return p, true
}

// chipTrace is one recorded phase-1 run: per-cycle dynamic energy and
// packed unit issues, plus either end-of-run chip counters (full
// traces) or the periodic decomposition head+period with per-period
// counter deltas. Immutable once built; shared read-only by concurrent
// replays.
type chipTrace struct {
	energy []float64
	issues []uint64

	// done: the program finished at cycle len(energy).
	done bool
	// unsupported: the run cannot be traced (see errTraceUnsupported).
	unsupported bool

	// Full-trace finals (valid when !periodic).
	endStats   cpu.Stats
	endRetired uint64

	// Periodic decomposition: entries [0, headLen) are the transient
	// head, [headLen, headLen+periodLen) one verified period.
	periodic  bool
	headLen   int
	periodLen int
	// Chip counters at the reference boundary headLen+periodLen and
	// their verified per-period deltas.
	refStats   cpu.Stats
	refRetired uint64
	perStats   cpu.Stats
	perRetired uint64
	// Pre-aggregated period totals for closed-form extrapolation.
	periodEnergy float64
	periodIssues [isa.NumUnits]uint64

	// maxEnergy is the largest per-cycle energy in the stored trace
	// (pJ) — with the amps conversion it bounds the replay's peak drive
	// current, which gates the reduced-order kernel against the
	// platform's declared voltage tolerance.
	maxEnergy float64

	// captureNS is how long phase-1 capture of this trace took (zero
	// when unknown, e.g. loaded from a v1 record). Telemetry only: it
	// travels with the record so store and tier hits can report how
	// much capture time they saved, and never touches any
	// deterministic output.
	captureNS uint64
}

// noteMaxEnergy recomputes maxEnergy over the stored entries.
func (tr *chipTrace) noteMaxEnergy() {
	m := 0.0
	for _, e := range tr.energy {
		if e > m {
			m = e
		}
	}
	tr.maxEnergy = m
}

// sizeBytes approximates the trace's cache footprint.
func (tr *chipTrace) sizeBytes() int { return 16*len(tr.energy) + 256 }

// segEqual reports whether entries [i, i+n) and [j, j+n) are
// bit-identical in both energy and issues.
func (tr *chipTrace) segEqual(i, j, n int) bool {
	ei, ej := tr.energy[i:i+n], tr.energy[j:j+n]
	qi, qj := tr.issues[i:i+n], tr.issues[j:j+n]
	for k := range ei {
		if ei[k] != ej[k] || qi[k] != qj[k] {
			return false
		}
	}
	return true
}

// acceptPeriod finalises a verified periodic decomposition: truncate
// the trace to head + one period and pre-aggregate the period totals.
func (tr *chipTrace) acceptPeriod(head, p int, refStats cpu.Stats, refRetired uint64, perStats cpu.Stats, perRetired uint64) {
	tr.periodic = true
	tr.headLen, tr.periodLen = head, p
	tr.refStats, tr.refRetired = refStats, refRetired
	tr.perStats, tr.perRetired = perStats, perRetired
	tr.energy = tr.energy[:head+p]
	tr.issues = tr.issues[:head+p]
	for _, e := range tr.energy[head:] {
		tr.periodEnergy += e
	}
	for _, q := range tr.issues[head:] {
		for u := 0; u < int(isa.NumUnits); u++ {
			tr.periodIssues[u] += (q >> (8 * uint(u))) & 0xff
		}
	}
}

// statsSub returns a - b fieldwise.
func statsSub(a, b cpu.Stats) cpu.Stats {
	return cpu.Stats{
		Branches: a.Branches - b.Branches, Mispredicts: a.Mispredicts - b.Mispredicts,
		L1Hits: a.L1Hits - b.L1Hits, L1Misses: a.L1Misses - b.L1Misses,
		L2Hits: a.L2Hits - b.L2Hits, L2Misses: a.L2Misses - b.L2Misses,
		L3Hits: a.L3Hits - b.L3Hits, L3Misses: a.L3Misses - b.L3Misses,
	}
}

// periodDetector runs Brent's cycle detection over the per-cycle
// fingerprint stream and verifies candidates against the trace.
// Boundary index b is the number of recorded entries (the state after
// cycle b-1).
type periodDetector struct {
	maxCycles uint64
	disabled  bool
	attempts  int

	hasAnchor bool
	anchorFP  uint64
	anchorAt  int
	limit     int

	// Armed candidate: period pendP first matched at boundary pendB2,
	// so the hypothesis is that entries [pendB2-pendP, ...) repeat.
	pendP  int
	pendB2 int
	s0, s1 cpu.Stats
	r0, r1 uint64
}

// observe feeds boundary b's fingerprint; returns true once a period
// has been verified and recorded into tr (the caller stops the chip).
func (d *periodDetector) observe(b int, fp uint64, tr *chipTrace, chip *cpu.Chip) bool {
	if d.disabled {
		return false
	}
	if d.pendP > 0 {
		switch b {
		case d.pendB2 + d.pendP:
			// One period past the match: entries [b2-p, b2) must equal
			// [b2, b2+p) or the candidate dies here.
			if tr.segEqual(d.pendB2-d.pendP, d.pendB2, d.pendP) {
				d.s1, d.r1 = chip.Stats(), chip.Retired()
			} else {
				d.reject()
			}
		case d.pendB2 + 2*d.pendP:
			// Two periods past the match: a second bit-exact repeat and
			// matching per-period counter deltas seal it.
			s2, r2 := chip.Stats(), chip.Retired()
			if tr.segEqual(d.pendB2, d.pendB2+d.pendP, d.pendP) &&
				statsSub(d.s1, d.s0) == statsSub(s2, d.s1) &&
				d.r1-d.r0 == r2-d.r1 {
				tr.acceptPeriod(d.pendB2-d.pendP, d.pendP,
					d.s0, d.r0, statsSub(d.s1, d.s0), d.r1-d.r0)
				return true
			}
			d.reject()
		}
	}
	if !d.hasAnchor {
		d.hasAnchor, d.anchorFP, d.anchorAt, d.limit = true, fp, b, detectInitLimit
		return false
	}
	if fp == d.anchorFP && b > d.anchorAt && d.pendP == 0 && d.attempts < detectMaxAttempts {
		// Candidate period: distance back to the anchor. Only arm if
		// the two verification periods fit inside the run.
		if p := b - d.anchorAt; uint64(b)+2*uint64(p) <= d.maxCycles {
			d.pendP, d.pendB2 = p, b
			d.s0, d.r0 = chip.Stats(), chip.Retired()
		}
	}
	if b-d.anchorAt >= d.limit {
		// Brent window doubling: re-anchor so the window eventually
		// exceeds the (unknown) period and the anchor lands in the
		// steady state.
		d.anchorFP, d.anchorAt = fp, b
		d.limit *= 2
	}
	return false
}

func (d *periodDetector) reject() {
	d.pendP = 0
	if d.attempts++; d.attempts >= detectMaxAttempts {
		d.disabled = true
	}
}

// mix64 folds v into an FNV-1a style running hash.
func mix64(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

// buildTrace is phase 1: run the chip alone (no PDN, no scope) and
// record its per-cycle trace, stopping early once a period has been
// verified. It mirrors Platform.measure's chip-side ordering exactly —
// start-skew stalls, Done check, dither injections, Step — so a replay
// of the trace is bit-identical to the exact loop.
func (cp *CompiledPlatform) buildTrace(rc RunConfig) (tr_ *chipTrace, err_ error) {
	start := time.Now()
	defer func() {
		d := uint64(time.Since(start).Nanoseconds())
		if tr_ != nil {
			tr_.captureNS = d
		}
		cp.traces.noteCapture(d)
	}()
	chip, err := cp.getChip()
	if err != nil {
		return nil, err
	}
	if err := cp.p.attachThreads(chip, rc); err != nil {
		return nil, err
	}
	cfg := cp.p.Chip
	for _, ts := range rc.Threads {
		if ts.StartSkew > 0 {
			if err := chip.InjectStall(ts.GlobalCore(cfg), ts.StartSkew); err != nil {
				return nil, err
			}
		}
	}

	nextPad := make([]uint64, len(rc.Dither))
	for i, d := range rc.Dither {
		nextPad[i] = d.PeriodCycles
	}

	maxCycles := rc.MaxCycles // caller guarantees 0 < maxCycles ≤ traceMaxCycles
	est := maxCycles
	if est > 1<<16 {
		est = 1 << 16
	}
	tr := &chipTrace{
		energy: make([]float64, 0, est),
		issues: make([]uint64, 0, est),
	}
	// MaxInstrs-bounded threads can end on a monotone counter the
	// fingerprint cannot see, which would break the "periodic forever"
	// argument — record their full trace instead.
	detect := true
	for _, ts := range rc.Threads {
		if ts.MaxInstrs > 0 {
			detect = false
		}
	}
	var det *periodDetector
	if detect {
		det = &periodDetector{maxCycles: maxCycles}
	}

	for cyc := uint64(0); cyc < maxCycles; cyc++ {
		if chip.Done() {
			tr.done = true
			break
		}
		for i := range rc.Dither {
			if cyc >= nextPad[i] {
				if err := chip.InjectStall(rc.Dither[i].Core, rc.Dither[i].PadCycles); err != nil {
					return nil, err
				}
				nextPad[i] += rc.Dither[i].PeriodCycles
			}
		}
		res := chip.Step()
		packed, ok := packIssues(&res)
		if !ok {
			tr.unsupported = true
			cp.chips.Put(chip)
			return tr, nil
		}
		tr.energy = append(tr.energy, res.EnergyPJ)
		tr.issues = append(tr.issues, packed)
		if det != nil {
			// The fingerprint mixes the approximate control state with
			// this cycle's exact trace record (capturing data-toggle
			// activity compactly) and the dither phases — so a detected
			// period is automatically a common multiple of every dither
			// period (LCM folding).
			fp := mix64(chip.StateFingerprint(), math.Float64bits(res.EnergyPJ))
			fp = mix64(fp, packed)
			for i := range nextPad {
				fp = mix64(fp, nextPad[i]-(cyc+1))
			}
			if det.observe(len(tr.energy), fp, tr, chip) {
				break
			}
		}
	}
	if !tr.periodic {
		tr.endStats, tr.endRetired = chip.Stats(), chip.Retired()
	}
	tr.noteMaxEnergy()
	cp.chips.Put(chip)
	return tr, nil
}

// traceKey fingerprints everything phase 1 depends on: per-thread
// program bytes (asm.Encode is canonical: sorted init registers and
// labels), placement, instruction bounds and start skew, plus
// MaxCycles, the FP throttle and the dither plan. SupplyVolts and
// WarmupCycles are deliberately absent — chip execution is
// supply-independent and warmup only gates phase-2 statistics — which
// is why median-of-K repeats, fault retries and the whole
// voltage-at-failure ladder replay one cached trace.
func traceKey(rc RunConfig) (string, bool) {
	b := make([]byte, 0, 512)
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		b = append(b, w[:]...)
	}
	var encs map[*asm.Program][]byte
	for _, ts := range rc.Threads {
		enc, ok := encs[ts.Program]
		if !ok {
			var err error
			enc, err = asm.Encode(ts.Program)
			if err != nil {
				return "", false
			}
			if encs == nil {
				encs = map[*asm.Program][]byte{}
			}
			encs[ts.Program] = enc
		}
		put(uint64(len(enc)))
		b = append(b, enc...)
		put(uint64(ts.Module))
		put(uint64(ts.Core))
		put(ts.MaxInstrs)
		put(ts.StartSkew)
	}
	put(rc.MaxCycles)
	put(uint64(rc.FPThrottle))
	put(uint64(len(rc.Dither)))
	for _, d := range rc.Dither {
		put(uint64(d.Core))
		put(d.PeriodCycles)
		put(d.PadCycles)
	}
	return string(b), true
}

// TraceStats reports trace-cache and fast-path activity.
type TraceStats struct {
	// Hits and Misses count cache lookups by replay-eligible runs; a
	// hit is served either by replaying a resident trace or straight
	// from the finished-measurement memo.
	Hits, Misses uint64
	// MemoHits counts the subset of Hits answered by the measurement
	// memo without touching the PDN at all (repeats of a deterministic
	// run with no sample consumers attached).
	MemoHits uint64
	// Periodic counts cached traces that verified periodic (the chip
	// stopped early).
	Periodic uint64
	// PDNEarlyExits counts replays whose PDN response converged and was
	// extrapolated instead of stepped to the end.
	PDNEarlyExits uint64
	// BatchRuns counts run configs that entered MeasureBatch's
	// generation pipeline (whatever stage ultimately served them).
	BatchRuns uint64
	// LaneRuns counts replays executed inside a multi-lane kernel pass,
	// and LaneBatches the passes themselves, so LaneRuns/LaneBatches is
	// the mean lane occupancy the pipeline achieved.
	LaneRuns, LaneBatches uint64
	// ROMReplays and ExactReplays split phase-2 PDN replays by kernel:
	// the reduced-order modal kernel (admitted when Platform.ROMTolV
	// covers the trace's worst-case error) versus the exact LU kernel.
	ROMReplays, ExactReplays uint64
	// PeriodicReplays counts phase-2 replays of verified-periodic
	// traces (the ones that enter the period-reuse machinery), and
	// ModalPeriodic the subset whose affine period map was built and
	// advanced in the ROM's modal coordinates — m+1 probe lanes instead
	// of StateDim+1 plus an analytic convergence exit.
	PeriodicReplays, ModalPeriodic uint64
	// AffineProbeLanes totals the one-period kernel lanes (reference
	// included) run to build affine period maps, on either the exact or
	// the modal path — the dominant cost of a short periodic replay.
	AffineProbeLanes uint64
	// StoreHits and StoreMisses count persistent trace-store lookups —
	// consulted only when the in-memory cache misses and a store is
	// attached (SetTraceStore). A store hit skips phase 1 entirely.
	StoreHits, StoreMisses uint64
	// TierHits and TierMisses count shared trace-tier lookups
	// (SetTraceTier) — consulted after the local store misses. A tier
	// hit ships the compressed record over the wire instead of
	// recapturing; a miss means this worker captures (it may hold the
	// tier's single-flight claim for the key).
	TierHits, TierMisses uint64
	// WireBytes is the total encoded-record payload moved over the
	// trace tier, both directions.
	WireBytes uint64
	// CaptureNSSaved sums the recorded phase-1 cost of every trace the
	// store or tier served in place of a recapture — the data plane's
	// dividend. Zero-cost for v1 records, which predate the telemetry.
	CaptureNSSaved uint64
	// Captures counts phase-1 buildTrace invocations — the recaptures
	// the caches failed to prevent. A warm run reports zero.
	Captures uint64
	// CaptureNS and ReplayNS split the fast path's wall time between
	// phase-1 capture (buildTrace) and phase-2 PDN replay, in
	// nanoseconds summed across workers. Wall-clock derived: excluded
	// from any deterministic output.
	CaptureNS, ReplayNS uint64
	// Bytes is the cache's current footprint.
	Bytes int
}

// replayMemoEntries bounds the finished-measurement memo (FIFO). Each
// entry is a couple hundred bytes, so the memo never rivals the trace
// budget.
const replayMemoEntries = 4096

// traceCache is a byte-bounded FIFO cache of phase-1 traces. Entries
// are immutable, so concurrent builders of the same key simply race to
// insert identical traces (first wins). It also memoizes finished
// Measurements: a replay with no sample consumers is a pure function
// of (trace, supply, warmup), so repeating it — median-of-K scoring,
// fault-injected retries — returns a copy instead of re-running
// phase 2.
type traceCache struct {
	mu    sync.Mutex
	limit int
	used  int
	m     map[string]*chipTrace
	fifo  []string

	results    map[string]Measurement
	resultFifo []string

	hits, misses, memoHits, earlyExits uint64
	batchRuns, laneRuns, laneBatches   uint64
	storeHits, storeMisses             uint64
	tierHits, tierMisses, wireBytes    uint64
	captureSavedNS, captures           uint64
	captureNS, replayNS                uint64
	romReplays, exactReplays           uint64
	periodicReplays, modalPeriodic     uint64
	probeLanes                         uint64
}

// noteReplays records n phase-2 replays on the ROM or exact kernel.
func (tc *traceCache) noteReplays(n int, rom bool) {
	tc.mu.Lock()
	if rom {
		tc.romReplays += uint64(n)
	} else {
		tc.exactReplays += uint64(n)
	}
	tc.mu.Unlock()
}

// notePeriodicReplay records one replay of a periodic trace; modal
// marks the reduced-order (modal-coordinate) period path.
func (tc *traceCache) notePeriodicReplay(modal bool) {
	tc.mu.Lock()
	tc.periodicReplays++
	if modal {
		tc.modalPeriodic++
	}
	tc.mu.Unlock()
}

// noteProbeLanes records n one-period probe lanes run to build an
// affine period map (reference lane included).
func (tc *traceCache) noteProbeLanes(n int) {
	tc.mu.Lock()
	tc.probeLanes += uint64(n)
	tc.mu.Unlock()
}

func (tc *traceCache) get(key string) *chipTrace {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tr, ok := tc.m[key]; ok {
		tc.hits++
		return tr
	}
	tc.misses++
	return nil
}

func (tc *traceCache) put(key string, tr *chipTrace) {
	sz := tr.sizeBytes()
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.m == nil {
		tc.m = map[string]*chipTrace{}
	}
	if _, ok := tc.m[key]; ok {
		return // lost a build race; the resident trace is identical
	}
	limit := tc.limit
	if limit <= 0 {
		limit = defaultTraceCacheBytes
	}
	if sz > limit {
		return // too big to cache; the caller still replays it once
	}
	for tc.used+sz > limit && len(tc.fifo) > 0 {
		old := tc.fifo[0]
		tc.fifo = tc.fifo[1:]
		if otr, ok := tc.m[old]; ok {
			tc.used -= otr.sizeBytes()
			delete(tc.m, old)
		}
	}
	tc.m[key] = tr
	tc.fifo = append(tc.fifo, key)
	tc.used += sz
}

func (tc *traceCache) noteEarlyExit() {
	tc.mu.Lock()
	tc.earlyExits++
	tc.mu.Unlock()
}

// noteHit records a cache hit for a batch member that shares a trace
// another member already looked up (the group does one real get; the
// siblings would each have hit too).
func (tc *traceCache) noteHit() {
	tc.mu.Lock()
	tc.hits++
	tc.mu.Unlock()
}

// noteBatchRuns records n run configs entering the generation pipeline.
func (tc *traceCache) noteBatchRuns(n int) {
	tc.mu.Lock()
	tc.batchRuns += uint64(n)
	tc.mu.Unlock()
}

// noteLaneBatch records one multi-lane kernel pass replaying n lanes.
func (tc *traceCache) noteLaneBatch(n int) {
	tc.mu.Lock()
	tc.laneBatches++
	tc.laneRuns += uint64(n)
	tc.mu.Unlock()
}

// noteStore records one persistent-store lookup; a hit saves the
// record's original capture cost.
func (tc *traceCache) noteStore(hit bool, savedNS uint64) {
	tc.mu.Lock()
	if hit {
		tc.storeHits++
		tc.captureSavedNS += savedNS
	} else {
		tc.storeMisses++
	}
	tc.mu.Unlock()
}

// noteTier records one shared-tier lookup and its wire traffic.
func (tc *traceCache) noteTier(hit bool, savedNS, wire uint64) {
	tc.mu.Lock()
	if hit {
		tc.tierHits++
		tc.captureSavedNS += savedNS
	} else {
		tc.tierMisses++
	}
	tc.wireBytes += wire
	tc.mu.Unlock()
}

// noteWire charges tier publish traffic.
func (tc *traceCache) noteWire(wire uint64) {
	tc.mu.Lock()
	tc.wireBytes += wire
	tc.mu.Unlock()
}

// noteCapture charges one phase-1 capture of duration d.
func (tc *traceCache) noteCapture(d uint64) {
	tc.mu.Lock()
	tc.captures++
	tc.captureNS += d
	tc.mu.Unlock()
}

// addReplayNS charges elapsed time since start to phase-2 replay.
func (tc *traceCache) addReplayNS(start time.Time) {
	d := uint64(time.Since(start).Nanoseconds())
	tc.mu.Lock()
	tc.replayNS += d
	tc.mu.Unlock()
}

// getResult looks up a memoized finished measurement. A hit counts as
// a cache hit (the run was served from cache, just further along the
// pipeline than a trace hit). Measurement holds no reference types
// once Waveform is excluded by eligibility, so the returned copy is
// private to the caller.
func (tc *traceCache) getResult(key string) (Measurement, bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if m, ok := tc.results[key]; ok {
		tc.hits++
		tc.memoHits++
		return m, true
	}
	return Measurement{}, false
}

func (tc *traceCache) putResult(key string, m Measurement) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.results == nil {
		tc.results = map[string]Measurement{}
	}
	if _, ok := tc.results[key]; ok {
		return // identical by determinism; keep the resident copy
	}
	for len(tc.resultFifo) >= replayMemoEntries {
		delete(tc.results, tc.resultFifo[0])
		tc.resultFifo = tc.resultFifo[1:]
	}
	tc.results[key] = m
	tc.resultFifo = append(tc.resultFifo, key)
}

func (tc *traceCache) stats() TraceStats {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	s := TraceStats{Hits: tc.hits, Misses: tc.misses, MemoHits: tc.memoHits,
		PDNEarlyExits: tc.earlyExits, BatchRuns: tc.batchRuns,
		LaneRuns: tc.laneRuns, LaneBatches: tc.laneBatches,
		ROMReplays: tc.romReplays, ExactReplays: tc.exactReplays,
		PeriodicReplays: tc.periodicReplays, ModalPeriodic: tc.modalPeriodic,
		AffineProbeLanes: tc.probeLanes,
		StoreHits:        tc.storeHits, StoreMisses: tc.storeMisses,
		TierHits: tc.tierHits, TierMisses: tc.tierMisses,
		WireBytes: tc.wireBytes, CaptureNSSaved: tc.captureSavedNS,
		Captures:  tc.captures,
		CaptureNS: tc.captureNS, ReplayNS: tc.replayNS, Bytes: tc.used}
	for _, tr := range tc.m {
		if tr.periodic {
			s.Periodic++
		}
	}
	return s
}

func (tc *traceCache) clear() {
	tc.mu.Lock()
	tc.m = nil
	tc.fifo = nil
	tc.used = 0
	tc.results = nil
	tc.resultFifo = nil
	tc.mu.Unlock()
}

func (tc *traceCache) setLimit(bytes int) {
	tc.mu.Lock()
	tc.limit = bytes
	tc.mu.Unlock()
}
