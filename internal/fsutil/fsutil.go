// Package fsutil holds small filesystem helpers shared by the
// checkpoint writer (internal/core) and the persistent trace store
// (internal/tracestore) — packages that must not import each other.
package fsutil

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// WriteFileAtomic writes via a temp file in path's directory and
// renames it into place, so readers (and crash recovery) only ever see
// complete files. The temp file is fsynced before the rename and the
// directory is fsynced after it, so a power cut can lose the update
// but never the file: checkpoints, corpus entries and trace records
// either exist in full or not at all. No error path leaves the temp
// file behind.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir makes a completed rename durable: until the directory entry
// itself is flushed, a crash can roll the rename back. Filesystems
// that cannot fsync a directory (EINVAL/ENOTSUP) already persist
// renames themselves, so those errors are not failures.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
