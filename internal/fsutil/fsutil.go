// Package fsutil holds small filesystem helpers shared by the
// checkpoint writer (internal/core) and the persistent trace store
// (internal/tracestore) — packages that must not import each other.
package fsutil

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes via a temp file in path's directory and
// renames it into place, so readers (and crash recovery) only ever see
// complete files.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
