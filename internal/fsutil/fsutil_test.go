package fsutil

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lingering lists everything in dir that is not one of names — i.e.
// temp files an error path failed to clean up.
func lingering(t *testing.T, dir string, names ...string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	var extra []string
	for _, e := range ents {
		if !keep[e.Name()] {
			extra = append(extra, e.Name())
		}
	}
	return extra
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil || string(blob) != "hello" {
		t.Fatalf("read back %q, %v", blob, err)
	}
	if extra := lingering(t, dir, "out.json"); len(extra) > 0 {
		t.Errorf("leftover files after success: %v", extra)
	}
}

func TestWriteFileAtomicWriteErrorLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The failed write must not leak its temp file or touch the
	// destination.
	if extra := lingering(t, dir, "out.json"); len(extra) > 0 {
		t.Errorf("temp file lingers after write error: %v", extra)
	}
	blob, err := os.ReadFile(path)
	if err != nil || string(blob) != "previous" {
		t.Errorf("destination changed by failed write: %q, %v", blob, err)
	}
}

func TestWriteFileAtomicRenameErrorLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	// A non-empty directory at the destination makes the rename fail
	// after the temp file was written and synced.
	path := filepath.Join(dir, "occupied")
	if err := os.MkdirAll(filepath.Join(path, "child"), 0o755); err != nil {
		t.Fatal(err)
	}
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := io.WriteString(w, "hello")
		return werr
	})
	if err == nil {
		t.Fatal("rename onto a non-empty directory succeeded?")
	}
	if extra := lingering(t, dir, "occupied"); len(extra) > 0 {
		t.Errorf("temp file lingers after rename error: %v", extra)
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "no", "such", "dir", "out.json")
	err := WriteFileAtomic(path, func(w io.Writer) error { return nil })
	if err == nil {
		t.Fatal("write into a missing directory succeeded?")
	}
	if !strings.Contains(err.Error(), "no such file") && !os.IsNotExist(err) {
		t.Logf("note: error was %v", err)
	}
}
