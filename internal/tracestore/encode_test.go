package tracestore

import (
	"bytes"
	"math"
	"os"
	"testing"
)

// shapeRecords enumerates every Record shape the codec must carry
// exactly: empty, unsupported, aperiodic, periodic with and without a
// head, adversarial float patterns (NaN payloads, infinities, negative
// zero, denormals), issue words exercising every varint width, and
// mismatched Energy/Issues lengths.
func shapeRecords() map[string]*Record {
	nan := math.Float64frombits(0x7ff8_dead_beef_0001) // NaN with payload
	shapes := map[string]*Record{
		"empty":       {},
		"unsupported": {Unsupported: true, Done: true},
		"aperiodic": {
			Energy: []float64{1.25, 1.25, 3.5, -0.0, 2.75},
			Issues: []uint64{0, 1, 1, 7, 1 << 40},
			Done:   true,
		},
		"periodic-headless": {
			Energy:   []float64{2.0, 2.5, 2.0, 2.5},
			Issues:   []uint64{3, 5, 3, 5},
			Periodic: true, PeriodLen: 4,
		},
		"single-cycle": {
			Energy: []float64{math.Inf(1)}, Issues: []uint64{math.MaxUint64},
		},
		"float-zoo": {
			Energy: []float64{
				0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
				nan, math.NaN(), 5e-324, -5e-324, math.MaxFloat64,
				math.SmallestNonzeroFloat64, 1, 1, 1,
			},
			Issues: make([]uint64, 13),
		},
		"issues-longer-than-energy": {
			Energy: []float64{1},
			Issues: []uint64{1, 2, 3, 4},
		},
		"energy-longer-than-issues": {
			Energy: []float64{1, 2, 3, 4},
			Issues: []uint64{9},
		},
		"capture-ns": {
			Energy:    []float64{1, 1},
			Issues:    []uint64{1, 1},
			CaptureNS: 123_456_789_012,
		},
		"full": sampleRecord(257, 42),
	}
	shapes["full"].CaptureNS = 9999
	withHead := sampleRecord(96, 7)
	withHead.HeadLen, withHead.PeriodLen = 13, 83
	shapes["periodic-with-head"] = withHead
	return shapes
}

func recordsIdentical(t *testing.T, name string, got, want *Record) {
	t.Helper()
	if !recordsEqual(got, want) {
		t.Errorf("%s: record changed across encode/decode", name)
	}
	if got.CaptureNS != want.CaptureNS {
		t.Errorf("%s: CaptureNS %d != %d", name, got.CaptureNS, want.CaptureNS)
	}
}

func TestV2RoundTripAllShapes(t *testing.T) {
	for name, want := range shapeRecords() {
		blob := Encode(want)
		if !bytes.HasPrefix(blob, []byte(magic2)) {
			t.Fatalf("%s: Encode did not emit a v2 record", name)
		}
		got, ok := Decode(blob)
		if !ok {
			t.Fatalf("%s: v2 blob failed to decode", name)
		}
		recordsIdentical(t, name, got, want)
		// Determinism: same record, same bytes.
		if !bytes.Equal(blob, Encode(want)) {
			t.Errorf("%s: Encode is nondeterministic", name)
		}
	}
}

// TestV1StillDecodes proves coexistence: a directory written by an old
// binary keeps serving hits after the upgrade, via both the codec-level
// Decode dispatch and a Store handle.
func TestV1StillDecodes(t *testing.T) {
	want := sampleRecord(64, 5)
	got, ok := Decode(EncodeV1(want))
	if !ok {
		t.Fatal("v1 blob failed to decode through the dispatching Decode")
	}
	recordsIdentical(t, "v1", got, want)

	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("old key")
	if err := os.WriteFile(s.path(key), EncodeV1(want), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok = s.Get(key)
	if !ok {
		t.Fatal("v1 file on disk read as a miss")
	}
	recordsIdentical(t, "v1-store", got, want)
	// Overwriting rewrites as v2; the record is unchanged.
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(blob, []byte(magic2)) {
		t.Fatal("Put left a v1 record on disk")
	}
}

// TestV2CorruptionIsAMiss hammers a v2 blob: every bit flip and every
// truncation length must decode as a miss, never a wrong record or a
// panic, and a Store must unlink the damaged file.
func TestV2CorruptionIsAMiss(t *testing.T) {
	rec := sampleRecord(48, 3)
	pristine := Encode(rec)
	for i := 0; i < len(pristine)*8; i++ {
		blob := append([]byte(nil), pristine...)
		blob[i/8] ^= 1 << (i % 8)
		if got, ok := Decode(blob); ok && !recordsEqual(got, rec) {
			t.Fatalf("bit flip %d decoded to a different record", i)
		}
	}
	for n := 0; n < len(pristine); n++ {
		if _, ok := Decode(pristine[:n]); ok {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}

	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("k")
	if err := s.Put(key, rec); err != nil {
		t.Fatal(err)
	}
	p := s.path(key)
	if err := os.WriteFile(p, pristine[:len(pristine)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("truncated v2 record served as a hit")
	}
	if _, err := os.Stat(p); err == nil {
		t.Fatal("truncated v2 record left on disk")
	}
}

func TestRawBlobAPI(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("raw key")
	rec := sampleRecord(80, 11)
	rec.CaptureNS = 42
	if err := s.Put(key, rec); err != nil {
		t.Fatal(err)
	}
	addr := Addr(key)
	blob, ok := s.GetRaw(addr)
	if !ok {
		t.Fatal("GetRaw miss after Put")
	}
	if !bytes.Equal(blob, Encode(rec)) {
		t.Fatal("GetRaw returned different bytes than Put wrote")
	}

	// PutRaw into a second store round-trips through Get — the wire
	// transfer path: disk bytes are wire bytes.
	s2, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.PutRaw(addr, blob); err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok {
		t.Fatal("miss after PutRaw")
	}
	recordsIdentical(t, "raw", got, rec)

	// v1 blobs serve over the raw path too.
	if err := s2.PutRaw(addr, EncodeV1(rec)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetRaw(addr); !ok {
		t.Fatal("v1 blob not served via GetRaw")
	}

	// Hostile inputs: bad addresses and undecodable blobs are rejected
	// before touching the filesystem.
	for _, bad := range []string{
		"", "short", "../../../../etc/passwd",
		"ZZ" + addr[2:], addr[:63] + "G", addr + "00",
	} {
		if err := s2.PutRaw(bad, blob); err == nil {
			t.Errorf("PutRaw accepted address %q", bad)
		}
		if _, ok := s2.GetRaw(bad); ok {
			t.Errorf("GetRaw served address %q", bad)
		}
	}
	if err := s2.PutRaw(addr, blob[:len(blob)/2]); err == nil {
		t.Error("PutRaw accepted a truncated blob")
	}
	if err := s2.PutRaw(addr, nil); err == nil {
		t.Error("PutRaw accepted an empty blob")
	}
}

// TestV2CompressionOnPeriodicTrace checks the codec pulls its weight on
// the workload it was built for: a long repetitive per-cycle stream,
// the shape Brent-periodic stressmark traces take. The ≥4× acceptance
// bar on real corpus traces lives in the root ratio test; this is the
// unit-level floor.
func TestV2CompressionOnPeriodicTrace(t *testing.T) {
	const n = 4096
	rec := &Record{
		Energy:   make([]float64, n),
		Issues:   make([]uint64, n),
		Periodic: true, HeadLen: 96, PeriodLen: n - 96, Done: true,
	}
	for i := range rec.Energy {
		rec.Energy[i] = 2.5 + 0.25*float64(i%17)
		rec.Issues[i] = uint64(0b1011 << (i % 3))
	}
	v2 := len(Encode(rec))
	v1 := EncodedSizeV1(rec)
	if ratio := float64(v1) / float64(v2); ratio < 4 {
		t.Errorf("v2 compression ratio %.2f× on periodic trace (v1=%dB v2=%dB), want ≥4×",
			ratio, v1, v2)
	}
}

func BenchmarkTraceEncodeV2(b *testing.B) {
	const n = 65536
	rec := &Record{
		Energy:   make([]float64, n),
		Issues:   make([]uint64, n),
		Periodic: true, HeadLen: 128, PeriodLen: n - 128, Done: true,
	}
	for i := range rec.Energy {
		rec.Energy[i] = 2.5 + 0.25*float64(i%23)
		rec.Issues[i] = uint64(i % 5)
	}
	blob := Encode(rec)
	b.SetBytes(int64(16 * n)) // v1 payload bytes processed per op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Encode(rec)
		if dec, ok := Decode(out); !ok || len(dec.Energy) != n {
			b.Fatal("round trip failed")
		}
	}
	b.ReportMetric(float64(EncodedSizeV1(rec))/float64(len(blob)), "ratio")
}
