// Package tracestore is a persistent, content-addressed store for
// phase-1 chip traces. Each record lives in its own file named by the
// SHA-256 of the caller's key bytes, serialized in a checksummed flat
// binary format and written atomically, so concurrent processes can
// share one store directory: writers race benignly (same key ⇒ same
// bytes; last rename wins) and readers only ever see complete files.
//
// The store is an optimisation layer, never a source of truth: any
// file that is missing, truncated, version-skewed or checksum-corrupt
// reads as a cache miss, and write failures are surfaced but safe to
// ignore. Total size is byte-bounded; when a write pushes the
// directory over budget, the records with the oldest mtimes are
// evicted (Get refreshes mtime, making eviction approximately LRU).
package tracestore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fsutil"
)

// DefaultMaxBytes bounds a store opened with maxBytes <= 0.
const DefaultMaxBytes = 256 << 20

// magic identifies the file format; bump the trailing version digit on
// any serialization change and old files degrade to misses.
const magic = "AUDTRC1\n"

// recordExt suffixes every record file; other names in the directory
// (temp files mid-rename, stray files) are ignored by eviction.
const recordExt = ".trace"

// fixedCounters is the number of uint64 counter slots in a record's
// fixed section: 3 stats blocks of 8 plus 3 retired counters.
const fixedCounters = 3*statsWords + 3

// statsWords is the per-block width of the chip-counter triples.
const statsWords = 8

// Record is the portable form of one phase-1 trace. The stats blocks
// are flat uint64 words so the store stays decoupled from the cpu
// package's struct layout; callers own the mapping.
type Record struct {
	Energy []float64
	Issues []uint64

	Done        bool
	Unsupported bool
	Periodic    bool

	HeadLen   int
	PeriodLen int

	EndStats [statsWords]uint64
	RefStats [statsWords]uint64
	PerStats [statsWords]uint64

	EndRetired uint64
	RefRetired uint64
	PerRetired uint64
}

// Store is a byte-bounded directory of records. Safe for concurrent
// use by multiple goroutines and, at the filesystem level, multiple
// processes.
type Store struct {
	dir      string
	maxBytes int64

	// evictMu serialises the eviction scan so concurrent Puts don't
	// double-delete; cross-process races just make os.Remove a no-op.
	evictMu sync.Mutex
}

// Open creates (if needed) and returns the store rooted at dir.
// maxBytes <= 0 selects DefaultMaxBytes.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("tracestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Store{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps key bytes to the record's content address.
func (s *Store) path(key []byte) string {
	sum := sha256.Sum256(key)
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+recordExt)
}

// Get loads the record stored under key. Every failure mode — absent,
// truncated, corrupt, foreign version — returns (nil, false); the
// caller rebuilds and overwrites. A hit refreshes the file's mtime so
// byte-budget eviction approximates LRU.
func (s *Store) Get(key []byte) (*Record, bool) {
	p := s.path(key)
	blob, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	rec, ok := decode(blob)
	if !ok {
		// A corrupt record will never read successfully again; drop it
		// so it stops charging the byte budget.
		os.Remove(p)
		return nil, false
	}
	now := time.Now()
	os.Chtimes(p, now, now) // best-effort; eviction order only
	return rec, true
}

// Put stores rec under key, atomically, then enforces the byte budget.
// Failures leave the store no worse than before; callers treating the
// store as a cache may ignore the error.
func (s *Store) Put(key []byte, rec *Record) error {
	blob := encode(rec)
	if int64(len(blob)) > s.maxBytes {
		return fmt.Errorf("tracestore: record (%d bytes) exceeds store budget", len(blob))
	}
	err := fsutil.WriteFileAtomic(s.path(key), func(w io.Writer) error {
		_, werr := w.Write(blob)
		return werr
	})
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	s.evict(s.path(key))
	return nil
}

// Len reports the number of resident records (testing aid).
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == recordExt {
			n++
		}
	}
	return n
}

// SizeBytes reports the store's current on-disk footprint (record
// files only).
func (s *Store) SizeBytes() int64 {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != recordExt {
			continue
		}
		if info, ierr := e.Info(); ierr == nil {
			total += info.Size()
		}
	}
	return total
}

// removeRecord is os.Remove behind a seam, so tests can interpose the
// moment another process unlinks a record mid-eviction.
var removeRecord = os.Remove

// evict removes oldest-mtime records until the store fits its budget,
// sparing the just-written file so a Put can never evict itself.
func (s *Store) evict(spare string) {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type rf struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []rf
	var total int64
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != recordExt {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		files = append(files, rf{filepath.Join(s.dir, e.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= s.maxBytes {
			break
		}
		if f.path == spare {
			continue
		}
		// Another process sharing the directory may have removed the
		// file since ReadDir: its bytes are gone either way, so ENOENT
		// counts as space freed — treating it as a failure would make
		// the scan evict younger records to cover phantom bytes.
		if err := removeRecord(f.path); err == nil || os.IsNotExist(err) {
			total -= f.size
		}
	}
}

// encode serialises rec: magic, fixed-width header, the two per-cycle
// arrays, and a trailing FNV-1a checksum over everything before it.
func encode(rec *Record) []byte {
	n := len(rec.Energy)
	size := len(magic) + 8 /*flags*/ + 8 + 8 /*head,period*/ +
		8*fixedCounters + 8 /*n*/ + 16*n + 8 /*checksum*/
	b := make([]byte, 0, size)
	b = append(b, magic...)
	var flags uint64
	if rec.Done {
		flags |= 1 << 0
	}
	if rec.Unsupported {
		flags |= 1 << 1
	}
	if rec.Periodic {
		flags |= 1 << 2
	}
	b = appendU64(b, flags)
	b = appendU64(b, uint64(rec.HeadLen))
	b = appendU64(b, uint64(rec.PeriodLen))
	for _, blk := range [][statsWords]uint64{rec.EndStats, rec.RefStats, rec.PerStats} {
		for _, v := range blk {
			b = appendU64(b, v)
		}
	}
	b = appendU64(b, rec.EndRetired)
	b = appendU64(b, rec.RefRetired)
	b = appendU64(b, rec.PerRetired)
	b = appendU64(b, uint64(n))
	for _, e := range rec.Energy {
		b = appendU64(b, math.Float64bits(e))
	}
	for _, q := range rec.Issues {
		b = appendU64(b, q)
	}
	return appendU64(b, fnv1a(b))
}

// decode is encode's inverse; ok is false on any structural or
// checksum mismatch.
func decode(blob []byte) (*Record, bool) {
	minLen := len(magic) + 8*(3+fixedCounters) + 8 + 8
	if len(blob) < minLen || string(blob[:len(magic)]) != magic {
		return nil, false
	}
	body, sum := blob[:len(blob)-8], binary.LittleEndian.Uint64(blob[len(blob)-8:])
	if fnv1a(body) != sum {
		return nil, false
	}
	r := body[len(magic):]
	next := func() uint64 {
		v := binary.LittleEndian.Uint64(r)
		r = r[8:]
		return v
	}
	rec := &Record{}
	flags := next()
	rec.Done = flags&(1<<0) != 0
	rec.Unsupported = flags&(1<<1) != 0
	rec.Periodic = flags&(1<<2) != 0
	rec.HeadLen = int(next())
	rec.PeriodLen = int(next())
	for _, blk := range []*[statsWords]uint64{&rec.EndStats, &rec.RefStats, &rec.PerStats} {
		for i := range blk {
			blk[i] = next()
		}
	}
	rec.EndRetired = next()
	rec.RefRetired = next()
	rec.PerRetired = next()
	n := next()
	if n > uint64(len(r))/16 {
		return nil, false // truncated arrays
	}
	if len(r) != int(16*n) {
		return nil, false // trailing garbage
	}
	rec.Energy = make([]float64, n)
	rec.Issues = make([]uint64, n)
	for i := range rec.Energy {
		rec.Energy[i] = math.Float64frombits(next())
	}
	for i := range rec.Issues {
		rec.Issues[i] = next()
	}
	if rec.Periodic && (rec.HeadLen < 0 || rec.PeriodLen <= 0 ||
		rec.HeadLen+rec.PeriodLen != len(rec.Energy)) {
		return nil, false // inconsistent periodic decomposition
	}
	return rec, true
}

func appendU64(b []byte, v uint64) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	return append(b, w[:]...)
}

// fnv1a is the 64-bit FNV-1a hash, matching the repo's other
// fingerprint hashes; cheap and adequate for corruption detection.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
