// Package tracestore is a persistent, content-addressed store for
// phase-1 chip traces. Each record lives in its own file named by the
// SHA-256 of the caller's key bytes, serialized in a checksummed flat
// binary format and written atomically, so concurrent processes can
// share one store directory: writers race benignly (same key ⇒ same
// bytes; last rename wins) and readers only ever see complete files.
//
// The store is an optimisation layer, never a source of truth: any
// file that is missing, truncated, version-skewed or checksum-corrupt
// reads as a cache miss, and write failures are surfaced but safe to
// ignore. Total size is byte-bounded; when a write pushes the
// directory over budget, the records with the oldest mtimes are
// evicted (Get refreshes mtime, making eviction approximately LRU).
package tracestore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fsutil"
)

// DefaultMaxBytes bounds a store opened with maxBytes <= 0.
const DefaultMaxBytes = 256 << 20

// magic identifies the legacy v1 flat format. v1 files still decode
// (Decode dispatches on the magic); fresh writes use the v2 compressed
// format in encode.go. An unknown future version degrades to a miss.
const magic = "AUDTRC1\n"

// recordExt suffixes every record file, v1 and v2 alike: the two
// versions share one namespace (same content address, same extension),
// so the byte-budget eviction scan and its just-written spare file
// treat them identically and a mixed-version directory behaves as one
// store.
const recordExt = ".trace"

// fixedCounters is the number of uint64 counter slots in a record's
// fixed section: 3 stats blocks of 8 plus 3 retired counters.
const fixedCounters = 3*statsWords + 3

// statsWords is the per-block width of the chip-counter triples.
const statsWords = 8

// Record is the portable form of one phase-1 trace. The stats blocks
// are flat uint64 words so the store stays decoupled from the cpu
// package's struct layout; callers own the mapping.
type Record struct {
	Energy []float64
	Issues []uint64

	Done        bool
	Unsupported bool
	Periodic    bool

	HeadLen   int
	PeriodLen int

	EndStats [statsWords]uint64
	RefStats [statsWords]uint64
	PerStats [statsWords]uint64

	EndRetired uint64
	RefRetired uint64
	PerRetired uint64

	// CaptureNS is how long phase-1 capture of this trace took, in
	// nanoseconds (v2 records only; zero on v1 records and unknown
	// captures). Telemetry, not identity: it feeds the "capture time
	// saved" counter when a store or tier hit skips a recapture, and
	// never participates in any deterministic output.
	CaptureNS uint64
}

// Store is a byte-bounded directory of records. Safe for concurrent
// use by multiple goroutines and, at the filesystem level, multiple
// processes.
type Store struct {
	dir      string
	maxBytes int64

	// evictMu serialises the eviction scan so concurrent Puts don't
	// double-delete; cross-process races just make os.Remove a no-op.
	evictMu sync.Mutex
}

// Open creates (if needed) and returns the store rooted at dir.
// maxBytes <= 0 selects DefaultMaxBytes.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("tracestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Store{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Addr is the content address of a key: the hex SHA-256 of its bytes.
// It is the record's filename stem in every store directory and the
// form a key travels in over the distributed trace tier (keys embed
// whole program encodings; the address is a fixed 64 characters).
func Addr(key []byte) string {
	sum := sha256.Sum256(key)
	return hex.EncodeToString(sum[:])
}

// ValidAddr rejects anything that is not a lowercase hex SHA-256 —
// addresses arrive over the network and become file names, so this is
// also the path-traversal guard.
func ValidAddr(addr string) bool {
	if len(addr) != 64 {
		return false
	}
	for _, c := range addr {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path maps key bytes to the record's content address.
func (s *Store) path(key []byte) string {
	return s.addrPath(Addr(key))
}

func (s *Store) addrPath(addr string) string {
	return filepath.Join(s.dir, addr+recordExt)
}

// Get loads the record stored under key. Every failure mode — absent,
// truncated, corrupt, foreign version — returns (nil, false); the
// caller rebuilds and overwrites. A hit refreshes the file's mtime so
// byte-budget eviction approximates LRU.
func (s *Store) Get(key []byte) (*Record, bool) {
	rec, _, ok := s.load(s.path(key))
	return rec, ok
}

// GetRaw returns the validated encoded blob stored under addr (either
// record version), for serving over the wire without a re-encode. Same
// failure semantics as Get: anything unreadable is a miss, corrupt
// files are unlinked.
func (s *Store) GetRaw(addr string) ([]byte, bool) {
	if !ValidAddr(addr) {
		return nil, false
	}
	_, blob, ok := s.load(s.addrPath(addr))
	return blob, ok
}

// load reads and validates one record file, refreshing its mtime on
// success and unlinking it on corruption.
func (s *Store) load(p string) (*Record, []byte, bool) {
	blob, err := os.ReadFile(p)
	if err != nil {
		return nil, nil, false
	}
	rec, ok := Decode(blob)
	if !ok {
		// A corrupt record will never read successfully again; drop it
		// so it stops charging the byte budget.
		os.Remove(p)
		return nil, nil, false
	}
	now := time.Now()
	os.Chtimes(p, now, now) // best-effort; eviction order only
	return rec, blob, true
}

// Put stores rec under key, atomically, then enforces the byte budget.
// Failures leave the store no worse than before; callers treating the
// store as a cache may ignore the error.
func (s *Store) Put(key []byte, rec *Record) error {
	return s.write(s.path(key), Encode(rec))
}

// PutRaw stores an already-encoded blob (e.g. one received over the
// trace tier) under addr after validating it decodes — a store must
// never accept bytes it would later serve as corrupt.
func (s *Store) PutRaw(addr string, blob []byte) error {
	if !ValidAddr(addr) {
		return fmt.Errorf("tracestore: invalid record address %q", addr)
	}
	if _, ok := Decode(blob); !ok {
		return fmt.Errorf("tracestore: refusing to store undecodable record")
	}
	return s.write(s.addrPath(addr), blob)
}

func (s *Store) write(p string, blob []byte) error {
	if int64(len(blob)) > s.maxBytes {
		return fmt.Errorf("tracestore: record (%d bytes) exceeds store budget", len(blob))
	}
	err := fsutil.WriteFileAtomic(p, func(w io.Writer) error {
		_, werr := w.Write(blob)
		return werr
	})
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	s.evict(p)
	return nil
}

// Len reports the number of resident records (testing aid).
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == recordExt {
			n++
		}
	}
	return n
}

// SizeBytes reports the store's current on-disk footprint (record
// files only).
func (s *Store) SizeBytes() int64 {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != recordExt {
			continue
		}
		if info, ierr := e.Info(); ierr == nil {
			total += info.Size()
		}
	}
	return total
}

// removeRecord is os.Remove behind a seam, so tests can interpose the
// moment another process unlinks a record mid-eviction.
var removeRecord = os.Remove

// evict removes oldest-mtime records until the store fits its budget,
// sparing the just-written file so a Put can never evict itself.
func (s *Store) evict(spare string) {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type rf struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []rf
	var total int64
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != recordExt {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		files = append(files, rf{filepath.Join(s.dir, e.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= s.maxBytes {
			break
		}
		if f.path == spare {
			continue
		}
		// Another process sharing the directory may have removed the
		// file since ReadDir: its bytes are gone either way, so ENOENT
		// counts as space freed — treating it as a failure would make
		// the scan evict younger records to cover phantom bytes.
		if err := removeRecord(f.path); err == nil || os.IsNotExist(err) {
			total -= f.size
		}
	}
}

// EncodeV1 serialises rec in the legacy v1 flat format: magic,
// fixed-width header, the two per-cycle arrays, and a trailing FNV-1a
// checksum over everything before it. Exported only so coexistence
// tests (here and in higher layers) can fabricate the directories an
// older binary would have written; production writes are v2 (Encode).
// v1 cannot carry CaptureNS or unequal Energy/Issues lengths.
func EncodeV1(rec *Record) []byte {
	n := len(rec.Energy)
	size := len(magic) + 8 /*flags*/ + 8 + 8 /*head,period*/ +
		8*fixedCounters + 8 /*n*/ + 16*n + 8 /*checksum*/
	b := make([]byte, 0, size)
	b = append(b, magic...)
	var flags uint64
	if rec.Done {
		flags |= 1 << 0
	}
	if rec.Unsupported {
		flags |= 1 << 1
	}
	if rec.Periodic {
		flags |= 1 << 2
	}
	b = appendU64(b, flags)
	b = appendU64(b, uint64(rec.HeadLen))
	b = appendU64(b, uint64(rec.PeriodLen))
	for _, blk := range [][statsWords]uint64{rec.EndStats, rec.RefStats, rec.PerStats} {
		for _, v := range blk {
			b = appendU64(b, v)
		}
	}
	b = appendU64(b, rec.EndRetired)
	b = appendU64(b, rec.RefRetired)
	b = appendU64(b, rec.PerRetired)
	b = appendU64(b, uint64(n))
	for _, e := range rec.Energy {
		b = appendU64(b, math.Float64bits(e))
	}
	for _, q := range rec.Issues {
		b = appendU64(b, q)
	}
	return appendU64(b, fnv1a(b))
}

// decodeV1 is encodeV1's inverse; ok is false on any structural or
// checksum mismatch.
func decodeV1(blob []byte) (*Record, bool) {
	minLen := len(magic) + 8*(3+fixedCounters) + 8 + 8
	if len(blob) < minLen || string(blob[:len(magic)]) != magic {
		return nil, false
	}
	body, sum := blob[:len(blob)-8], binary.LittleEndian.Uint64(blob[len(blob)-8:])
	if fnv1a(body) != sum {
		return nil, false
	}
	r := body[len(magic):]
	next := func() uint64 {
		v := binary.LittleEndian.Uint64(r)
		r = r[8:]
		return v
	}
	rec := &Record{}
	flags := next()
	rec.Done = flags&(1<<0) != 0
	rec.Unsupported = flags&(1<<1) != 0
	rec.Periodic = flags&(1<<2) != 0
	rec.HeadLen = int(next())
	rec.PeriodLen = int(next())
	for _, blk := range []*[statsWords]uint64{&rec.EndStats, &rec.RefStats, &rec.PerStats} {
		for i := range blk {
			blk[i] = next()
		}
	}
	rec.EndRetired = next()
	rec.RefRetired = next()
	rec.PerRetired = next()
	n := next()
	if n > uint64(len(r))/16 {
		return nil, false // truncated arrays
	}
	if len(r) != int(16*n) {
		return nil, false // trailing garbage
	}
	rec.Energy = make([]float64, n)
	rec.Issues = make([]uint64, n)
	for i := range rec.Energy {
		rec.Energy[i] = math.Float64frombits(next())
	}
	for i := range rec.Issues {
		rec.Issues[i] = next()
	}
	if rec.Periodic && (rec.HeadLen < 0 || rec.PeriodLen <= 0 ||
		rec.HeadLen+rec.PeriodLen != len(rec.Energy)) {
		return nil, false // inconsistent periodic decomposition
	}
	return rec, true
}

func appendU64(b []byte, v uint64) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	return append(b, w[:]...)
}

// fnv1a is the 64-bit FNV-1a hash, matching the repo's other
// fingerprint hashes; cheap and adequate for corruption detection.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
