package tracestore

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func sampleRecord(n int, seed uint64) *Record {
	rec := &Record{
		Energy:     make([]float64, n),
		Issues:     make([]uint64, n),
		Done:       seed%2 == 0,
		Periodic:   true,
		HeadLen:    n / 4,
		PeriodLen:  n - n/4,
		EndRetired: seed * 3,
		RefRetired: seed * 5,
		PerRetired: seed * 7,
	}
	for i := range rec.Energy {
		rec.Energy[i] = float64(i)*1.5 + float64(seed)
		rec.Issues[i] = seed<<32 | uint64(i)
	}
	for i := range rec.EndStats {
		rec.EndStats[i] = seed + uint64(i)
		rec.RefStats[i] = seed ^ uint64(i)
		rec.PerStats[i] = seed * uint64(i+1)
	}
	return rec
}

func recordsEqual(a, b *Record) bool {
	if a.Done != b.Done || a.Unsupported != b.Unsupported || a.Periodic != b.Periodic ||
		a.HeadLen != b.HeadLen || a.PeriodLen != b.PeriodLen ||
		a.EndStats != b.EndStats || a.RefStats != b.RefStats || a.PerStats != b.PerStats ||
		a.EndRetired != b.EndRetired || a.RefRetired != b.RefRetired || a.PerRetired != b.PerRetired ||
		len(a.Energy) != len(b.Energy) || len(a.Issues) != len(b.Issues) {
		return false
	}
	for i := range a.Energy {
		if math.Float64bits(a.Energy[i]) != math.Float64bits(b.Energy[i]) {
			return false
		}
	}
	for i := range a.Issues {
		if a.Issues[i] != b.Issues[i] {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("some trace key")
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	want := sampleRecord(64, 9)
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !recordsEqual(got, want) {
		t.Fatal("record changed across the store round trip")
	}
	// A different key must not alias.
	if _, ok := s.Get([]byte("some other key")); ok {
		t.Fatal("foreign key hit")
	}
	// Unsupported verdicts round-trip with empty arrays.
	ukey := []byte("unsupported")
	if err := s.Put(ukey, &Record{Unsupported: true}); err != nil {
		t.Fatal(err)
	}
	if u, ok := s.Get(ukey); !ok || !u.Unsupported || len(u.Energy) != 0 {
		t.Fatalf("unsupported verdict lost: %+v ok=%v", u, ok)
	}
}

// TestCorruptionIsAMiss flips, truncates and garbles the stored file
// every way we can think of; all must read as a miss, never a wrong
// record, and corrupt files must be dropped from the budget.
func TestCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("k")
	rec := sampleRecord(32, 1)
	if err := s.Put(key, rec); err != nil {
		t.Fatal(err)
	}
	p := s.path(key)
	pristine, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() { os.WriteFile(p, pristine, 0o644) }

	mutations := map[string]func([]byte) []byte{
		"bit-flip-header":  func(b []byte) []byte { b[len(magic)+3] ^= 0x40; return b },
		"bit-flip-payload": func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"bit-flip-cksum":   func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"truncated":        func(b []byte) []byte { return b[:len(b)/2] },
		"empty":            func(b []byte) []byte { return nil },
		"wrong-magic":      func(b []byte) []byte { copy(b, "BADMAGIC"); return b },
		"future-version":   func(b []byte) []byte { b[len(magic)-2] = '9'; return b },
	}
	for name, mutate := range mutations {
		restore()
		blob := mutate(append([]byte(nil), pristine...))
		if err := os.WriteFile(p, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("%s: corrupt record served as a hit", name)
		}
		if _, err := os.Stat(p); err == nil && len(blob) > 0 {
			t.Errorf("%s: corrupt record left on disk", name)
		}
	}

	// A length-preserving payload corruption that also fixes up the
	// checksum must still fail (structural checks), or pass only by
	// actually decoding to the written values — never panic.
	restore()
	if got, ok := s.Get(key); !ok || !recordsEqual(got, rec) {
		t.Fatal("pristine record no longer reads back")
	}
}

func TestEvictionByMtime(t *testing.T) {
	dir := t.TempDir()
	// v2 record sizes are content-dependent, so every key stores the
	// same record: the budget math stays exact.
	one := sampleRecord(64, 1)
	oneSize := int64(len(Encode(one)))
	// Budget for three records, not four.
	s, err := Open(dir, 3*oneSize)
	if err != nil {
		t.Fatal(err)
	}
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	for i, k := range keys[:3] {
		if err := s.Put(k, one); err != nil {
			t.Fatal(err)
		}
		// Distinct, strictly increasing mtimes without sleeping.
		mt := time.Now().Add(time.Duration(i-10) * time.Second)
		os.Chtimes(s.path(k), mt, mt)
	}
	// Touch "a" (oldest mtime) via Get so it becomes newest; then the
	// overflowing Put must evict "b".
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("a missing before eviction")
	}
	if err := s.Put(keys[3], one); err != nil {
		t.Fatal(err)
	}
	if s.SizeBytes() > 3*oneSize {
		t.Fatalf("store over budget after eviction: %d > %d", s.SizeBytes(), 3*oneSize)
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Error("b (oldest mtime) survived eviction")
	}
	for _, k := range [][]byte{keys[0], keys[2], keys[3]} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("%q evicted despite newer mtime", k)
		}
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	s, err := Open(t.TempDir(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("big"), sampleRecord(4096, 1)); err == nil {
		t.Fatal("oversize Put succeeded")
	}
	if s.Len() != 0 {
		t.Fatal("oversize record left on disk")
	}
}

// TestConcurrentSharedDirectory exercises the cross-process contract
// in-process: many goroutines over two Store handles on one directory,
// racing Puts and Gets of overlapping keys. Run under -race.
func TestConcurrentSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	stores := []*Store{s1, s2}
	const keys = 8
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := stores[g%2]
			for i := 0; i < 40; i++ {
				k := []byte(fmt.Sprintf("key-%d", (g+i)%keys))
				want := sampleRecord(32, uint64((g+i)%keys))
				if i%3 == 0 {
					s.Put(k, want)
					continue
				}
				if got, ok := s.Get(k); ok && !recordsEqual(got, want) {
					t.Errorf("goroutine %d: stale or foreign record under %s", g, k)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStrayFilesIgnored checks non-record files neither count against
// the budget nor get evicted.
func TestStrayFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(stray, bytes.Repeat([]byte("x"), 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	one := sampleRecord(16, 1)
	s, err := Open(dir, int64(len(Encode(one)))+8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), one); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get([]byte("k")); !ok {
		t.Fatal("record evicted to make room for a stray file")
	}
	if _, err := os.Stat(stray); err != nil {
		t.Fatal("stray file deleted by eviction")
	}
}

// TestEvictTolerantOfConcurrentUnlink reproduces the shared-directory
// race where another process unlinks a record between the eviction
// scan's ReadDir and its Remove. The vanished bytes are gone either
// way, so the scan must count them as freed; charging them as still
// resident makes it evict younger records to cover phantom bytes.
func TestEvictTolerantOfConcurrentUnlink(t *testing.T) {
	dir := t.TempDir()
	one := sampleRecord(64, 1) // same record per key: exact budget math
	oneSize := int64(len(Encode(one)))
	s, err := Open(dir, 3*oneSize) // room for three records
	if err != nil {
		t.Fatal(err)
	}
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	for i, k := range keys[:3] {
		if err := s.Put(k, one); err != nil {
			t.Fatal(err)
		}
		mt := time.Now().Add(time.Duration(i-10) * time.Second)
		os.Chtimes(s.path(k), mt, mt)
	}

	// The other process beats us to every unlink: the file is already
	// gone by the time our Remove runs.
	defer func() { removeRecord = os.Remove }()
	removeRecord = func(path string) error {
		os.Remove(path)
		return &os.PathError{Op: "remove", Path: path, Err: os.ErrNotExist}
	}

	// The overflowing Put needs exactly one eviction ("a", oldest).
	if err := s.Put(keys[3], one); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Error("a (oldest) survived eviction")
	}
	// "b" and "c" must survive: the ENOENT on "a" freed its bytes.
	for _, k := range keys[1:] {
		if _, ok := s.Get(k); !ok {
			t.Errorf("%q evicted to cover phantom bytes", k)
		}
	}
}

// TestTwoStoresRacingOnOneDir is the cross-process regression test for
// ENOENT tolerance: two byte-starved stores on one directory, both
// evicting under each other's feet while Gets race the unlinks. Every
// failure mode must surface as a miss, never an error or a panic. The
// directory starts mixed-version — half the keys pre-seeded as legacy
// v1 files — so eviction, budget accounting and the spare-file skip are
// proven version-blind. Run under -race.
func TestTwoStoresRacingOnOneDir(t *testing.T) {
	dir := t.TempDir()
	one := sampleRecord(64, 1)
	budget := 3 * int64(len(Encode(one))) // both stores always over budget
	s1, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	stores := []*Store{s1, s2}
	const keys = 12
	for n := 0; n < keys; n += 2 {
		k := []byte(fmt.Sprintf("key-%d", n))
		blob := EncodeV1(sampleRecord(64, uint64(n)))
		if err := os.WriteFile(s1.path(k), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := stores[g%2]
			for i := 0; i < 60; i++ {
				n := (g*7 + i) % keys
				k := []byte(fmt.Sprintf("key-%d", n))
				if i%2 == 0 {
					if err := s.Put(k, sampleRecord(64, uint64(n))); err != nil {
						t.Errorf("goroutine %d: Put: %v", g, err)
					}
					continue
				}
				if got, ok := s.Get(k); ok && !recordsEqual(got, sampleRecord(64, uint64(n))) {
					t.Errorf("goroutine %d: foreign record under %s", g, k)
				}
			}
		}(g)
	}
	wg.Wait()
	if sz := s1.SizeBytes(); sz > budget {
		t.Errorf("store over budget after racing evictions: %d > %d", sz, budget)
	}
}
