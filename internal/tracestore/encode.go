package tracestore

// This file is the v2 record codec (magic "AUDTRC2\n"), the store's
// canonical encoding since the distributed trace tier: the same bytes
// live on disk and travel over /v1/trace, so compressing them shrinks
// both the store's footprint and the coordinator↔worker wire traffic.
//
// Layout: magic, then a DEFLATE stream over a compact payload, then the
// same trailing FNV-1a checksum discipline as v1 (over everything
// before it). The payload packs the per-cycle Energy float64 stream
// with Gorilla-style XOR compression (periodic stressmark traces
// repeat values cycle to cycle, so most XORs are zero or narrow) and
// the packed Issues words as varint XOR deltas; headers and counters
// are varints. The outer flate layer then squeezes the cross-cycle
// structure the per-value stages cannot see (a loop body's XOR pattern
// recurring every period).
//
// v1 records still decode — Decode dispatches on the magic — so a
// store directory written by an older binary keeps serving hits; only
// fresh Puts are written as v2. Corrupt or truncated blobs of either
// version fail the checksum or a structural check and read as misses.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"io"
	"math"
	"math/bits"
)

// magic2 identifies the v2 compressed record format.
const magic2 = "AUDTRC2\n"

// maxPayloadBytes bounds the inflated payload a decoder will buffer —
// comfortably above the largest legal trace (16 B/cycle × 4 Mi cycles)
// while stopping a corrupt length field from ballooning memory.
const maxPayloadBytes = 1 << 30

// Encode serialises rec in the canonical (v2) format. The returned
// blob is what Put writes to disk and what the distributed trace tier
// ships over the wire.
func Encode(rec *Record) []byte {
	payload := encodePayload(rec)
	var buf bytes.Buffer
	buf.Grow(len(magic2) + len(payload)/2 + 16)
	buf.WriteString(magic2)
	zw, _ := flate.NewWriter(&buf, flate.DefaultCompression)
	zw.Write(payload)
	zw.Close()
	return appendU64(buf.Bytes(), fnv1a(buf.Bytes()))
}

// Decode is the version-dispatching inverse of the store's encoders:
// it reads v2 (Encode) and v1 blobs alike. ok is false on any
// structural or checksum mismatch, for any version.
func Decode(blob []byte) (*Record, bool) {
	if len(blob) >= len(magic2) && string(blob[:len(magic2)]) == magic2 {
		return decodeV2(blob)
	}
	return decodeV1(blob)
}

// EncodedSizeV1 reports how many bytes rec would occupy in the v1
// flat fixed-width encoding — the baseline the v2 compression ratio is
// measured against (v1 spends 16 bytes per cycle plus a 264-byte
// frame).
func EncodedSizeV1(rec *Record) int {
	return len(magic) + 8*(3+fixedCounters) + 8 + 16*len(rec.Energy) + 8
}

func decodeV2(blob []byte) (*Record, bool) {
	if len(blob) < len(magic2)+8 {
		return nil, false
	}
	body, sum := blob[:len(blob)-8], binary.LittleEndian.Uint64(blob[len(blob)-8:])
	if fnv1a(body) != sum {
		return nil, false
	}
	zr := flate.NewReader(bytes.NewReader(body[len(magic2):]))
	payload, err := io.ReadAll(io.LimitReader(zr, maxPayloadBytes+1))
	zr.Close()
	if err != nil || len(payload) > maxPayloadBytes {
		return nil, false
	}
	return decodePayload(payload)
}

// encodePayload builds the uncompressed v2 payload.
func encodePayload(rec *Record) []byte {
	b := make([]byte, 0, 64+len(rec.Energy)*3)
	var flags uint64
	if rec.Done {
		flags |= 1 << 0
	}
	if rec.Unsupported {
		flags |= 1 << 1
	}
	if rec.Periodic {
		flags |= 1 << 2
	}
	b = binary.AppendUvarint(b, flags)
	b = binary.AppendUvarint(b, uint64(rec.HeadLen))
	b = binary.AppendUvarint(b, uint64(rec.PeriodLen))
	b = binary.AppendUvarint(b, rec.CaptureNS)
	for _, blk := range [][statsWords]uint64{rec.EndStats, rec.RefStats, rec.PerStats} {
		for _, v := range blk {
			b = binary.AppendUvarint(b, v)
		}
	}
	b = binary.AppendUvarint(b, rec.EndRetired)
	b = binary.AppendUvarint(b, rec.RefRetired)
	b = binary.AppendUvarint(b, rec.PerRetired)
	b = binary.AppendUvarint(b, uint64(len(rec.Energy)))
	b = binary.AppendUvarint(b, uint64(len(rec.Issues)))
	b = appendEnergyXOR(b, rec.Energy)
	prev := uint64(0)
	for _, q := range rec.Issues {
		b = binary.AppendUvarint(b, q^prev)
		prev = q
	}
	return b
}

func decodePayload(p []byte) (*Record, bool) {
	rec := &Record{}
	ok := true
	next := func() uint64 {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			ok = false
			return 0
		}
		p = p[n:]
		return v
	}
	flags := next()
	rec.Done = flags&(1<<0) != 0
	rec.Unsupported = flags&(1<<1) != 0
	rec.Periodic = flags&(1<<2) != 0
	rec.HeadLen = int(next())
	rec.PeriodLen = int(next())
	rec.CaptureNS = next()
	for _, blk := range []*[statsWords]uint64{&rec.EndStats, &rec.RefStats, &rec.PerStats} {
		for i := range blk {
			blk[i] = next()
		}
	}
	rec.EndRetired = next()
	rec.RefRetired = next()
	rec.PerRetired = next()
	n := next()
	nIssues := next()
	if !ok || n > maxPayloadBytes/8 || nIssues > maxPayloadBytes/8 {
		return nil, false
	}
	var energy []float64
	if energy, p, ok = decodeEnergyXOR(p, int(n)); !ok {
		return nil, false
	}
	rec.Energy = energy
	rec.Issues = make([]uint64, nIssues)
	prev := uint64(0)
	for i := range rec.Issues {
		x := next()
		rec.Issues[i] = x ^ prev
		prev = rec.Issues[i]
	}
	if !ok || len(p) != 0 {
		return nil, false // short or trailing garbage
	}
	if rec.Periodic && (rec.HeadLen < 0 || rec.PeriodLen <= 0 ||
		rec.HeadLen+rec.PeriodLen != len(rec.Energy)) {
		return nil, false // inconsistent periodic decomposition
	}
	return rec, true
}

// appendEnergyXOR writes the float64 stream Gorilla-style: the first
// value raw, every later one as the XOR against its predecessor —
// a '0' bit when identical, otherwise a '1' plus either the previous
// meaningful-bit window ('0') or a fresh (leading-zeros, length)
// header ('1'). Bit-exact for every float64 including NaN payloads.
func appendEnergyXOR(b []byte, vals []float64) []byte {
	w := bitWriter{buf: b}
	if len(vals) == 0 {
		return w.buf
	}
	prev := math.Float64bits(vals[0])
	w.writeBits(prev, 64)
	prevLZ, prevTZ := -1, -1
	for _, v := range vals[1:] {
		cur := math.Float64bits(v)
		x := cur ^ prev
		prev = cur
		if x == 0 {
			w.writeBits(0, 1)
			continue
		}
		w.writeBits(1, 1)
		lz := bits.LeadingZeros64(x)
		if lz > 31 {
			lz = 31 // 5-bit header field
		}
		tz := bits.TrailingZeros64(x)
		if prevLZ >= 0 && lz >= prevLZ && tz >= prevTZ {
			// The XOR fits the previous window: reuse it.
			w.writeBits(0, 1)
			w.writeBits(x>>uint(prevTZ), uint(64-prevLZ-prevTZ))
			continue
		}
		mlen := 64 - lz - tz
		w.writeBits(1, 1)
		w.writeBits(uint64(lz), 5)
		w.writeBits(uint64(mlen-1), 6)
		w.writeBits(x>>uint(tz), uint(mlen))
		prevLZ, prevTZ = lz, tz
	}
	w.align()
	return w.buf
}

// decodeEnergyXOR is appendEnergyXOR's inverse; it returns the decoded
// values and the remaining byte-aligned tail of p.
func decodeEnergyXOR(p []byte, n int) ([]float64, []byte, bool) {
	vals := make([]float64, n)
	if n == 0 {
		return vals, p, true
	}
	r := bitReader{buf: p}
	prev, ok := r.readBits(64)
	if !ok {
		return nil, nil, false
	}
	vals[0] = math.Float64frombits(prev)
	prevLZ, prevTZ := -1, -1
	for i := 1; i < n; i++ {
		ctrl, ok := r.readBits(1)
		if !ok {
			return nil, nil, false
		}
		if ctrl == 0 {
			vals[i] = math.Float64frombits(prev)
			continue
		}
		fresh, ok := r.readBits(1)
		if !ok {
			return nil, nil, false
		}
		lz, tz := prevLZ, prevTZ
		if fresh == 1 {
			h1, ok1 := r.readBits(5)
			h2, ok2 := r.readBits(6)
			if !ok1 || !ok2 {
				return nil, nil, false
			}
			lz = int(h1)
			tz = 64 - lz - (int(h2) + 1)
		}
		if lz < 0 || tz < 0 || 64-lz-tz <= 0 {
			return nil, nil, false
		}
		m, ok := r.readBits(uint(64 - lz - tz))
		if !ok {
			return nil, nil, false
		}
		prev ^= m << uint(tz)
		vals[i] = math.Float64frombits(prev)
		prevLZ, prevTZ = lz, tz
	}
	return vals, r.alignedTail(), true
}

// bitWriter packs MSB-first bits onto a byte slice.
type bitWriter struct {
	buf   []byte
	cur   uint8
	nbits uint
}

func (w *bitWriter) writeBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.cur = w.cur<<1 | uint8((v>>uint(i))&1)
		w.nbits++
		if w.nbits == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nbits = 0, 0
		}
	}
}

// align flushes the partial byte, zero-padded.
func (w *bitWriter) align() {
	if w.nbits > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nbits))
		w.cur, w.nbits = 0, 0
	}
}

// bitReader consumes MSB-first bits from a byte slice.
type bitReader struct {
	buf   []byte
	pos   int
	cur   uint8
	nbits uint
}

func (r *bitReader) readBits(n uint) (uint64, bool) {
	var v uint64
	for i := uint(0); i < n; i++ {
		if r.nbits == 0 {
			if r.pos >= len(r.buf) {
				return 0, false
			}
			r.cur = r.buf[r.pos]
			r.pos++
			r.nbits = 8
		}
		v = v<<1 | uint64(r.cur>>7)
		r.cur <<= 1
		r.nbits--
	}
	return v, true
}

// alignedTail discards the rest of the current byte and returns the
// remaining whole bytes.
func (r *bitReader) alignedTail() []byte {
	return r.buf[r.pos:]
}
