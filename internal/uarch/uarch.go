// Package uarch holds machine descriptions for the cycle-level CPU
// model: a Bulldozer-style chip (four modules, two integer cores per
// module sharing a front end and a two-pipe FPU — the configuration of
// the paper's primary test system) and a Phenom-II-style chip (four
// independent cores, no shared resources), used in §5.C to show AUDIT
// adapting to a different processor on the same board.
package uarch

import "fmt"

// ChipConfig describes one processor. All widths are per clock cycle.
type ChipConfig struct {
	Name    string
	ClockHz float64

	// Topology. A "core" is an integer cluster running one thread
	// (Bulldozer terminology); threads = Modules × CoresPerModule.
	Modules        int
	CoresPerModule int

	// SharedFrontEnd: sibling cores in a module alternate decode
	// cycles (Bulldozer). When false each core has a private decoder.
	SharedFrontEnd bool
	// SharedFPU: sibling cores issue into one FP/SIMD scheduler with
	// NumFPPipes pipes (Bulldozer). When false each core has its own
	// NumFPPipes pipes.
	SharedFPU bool

	// Front end.
	DecodeWidth   int
	BranchPenalty int
	// Predictor selects the branch predictor: "static" (backward taken,
	// forward not-taken — the default when empty) or "gshare" (global
	// history XOR PC into 2-bit counters).
	Predictor string

	// HasFMA marks support for fused multiply-add instructions. The
	// older Phenom-style part lacks them, which is why the paper could
	// not run SM1 on it (§5.C).
	HasFMA bool

	// Integer cluster resources (per core).
	// IntDispatch caps non-NOP integer/memory uops entering the core's
	// scheduler per cycle (rename/dispatch ports). NOPs bypass dispatch
	// — the hazard behind the §5.A.5 NOP ablation.
	IntDispatch int
	// FPDispatch caps FP/SIMD uops entering the FP scheduler per cycle
	// per core.
	FPDispatch int
	NumALU     int
	NumAGU     int
	LSUPorts   int
	// MSHRs bounds outstanding cache misses per core; a miss occupies
	// one entry until its fill completes.
	MSHRs       int
	IntQueue    int // scheduler entries; stands in for PRF/ROB limits too
	LSQ         int
	ResultBuses int // register-file write ports per core per cycle

	// FP cluster resources (per module if shared, else per core).
	NumFPPipes int
	FPQueue    int

	// FPThrottleLimit caps FP issues per cycle (per module when the FPU
	// is shared). 0 disables throttling. This is the mitigation knob of
	// Table 2.
	FPThrottleLimit int

	// Cache hierarchy. L1 per core, L2 per module, L3 per chip.
	LineBytes                   int
	L1Bytes, L1Ways             int
	L2Bytes, L2Ways             int
	L3Bytes, L3Ways             int
	L1Lat, L2Lat, L3Lat, MemLat int
}

// Validate checks structural sanity.
func (c ChipConfig) Validate() error {
	bad := func(what string) error { return fmt.Errorf("uarch: %s: bad %s", c.Name, what) }
	switch {
	case c.ClockHz <= 0:
		return bad("ClockHz")
	case c.Modules < 1 || c.CoresPerModule < 1:
		return bad("topology")
	case c.DecodeWidth < 1:
		return bad("DecodeWidth")
	case c.NumALU < 1 || c.NumAGU < 0 || c.LSUPorts < 1 || c.MSHRs < 1:
		return bad("integer resources")
	case c.IntDispatch < 1 || c.FPDispatch < 1:
		return bad("dispatch widths")
	case c.IntQueue < 4 || c.LSQ < 2 || c.FPQueue < 4:
		return bad("queue sizes")
	case c.ResultBuses < 1:
		return bad("ResultBuses")
	case c.NumFPPipes < 1:
		return bad("NumFPPipes")
	case c.FPThrottleLimit < 0:
		return bad("FPThrottleLimit")
	case c.BranchPenalty < 0:
		return bad("BranchPenalty")
	case c.Predictor != "" && c.Predictor != "static" && c.Predictor != "gshare":
		return bad("Predictor")
	case c.LineBytes < 16 || c.LineBytes&(c.LineBytes-1) != 0:
		return bad("LineBytes")
	case c.L1Bytes < c.LineBytes || c.L2Bytes < c.L1Bytes || c.L3Bytes < c.L2Bytes:
		return bad("cache sizes")
	case c.L1Ways < 1 || c.L2Ways < 1 || c.L3Ways < 1:
		return bad("cache ways")
	case !(c.L1Lat > 0 && c.L2Lat > c.L1Lat && c.L3Lat > c.L2Lat && c.MemLat > c.L3Lat):
		return bad("latency ordering")
	}
	return nil
}

// Threads returns the number of hardware threads (= cores).
func (c ChipConfig) Threads() int { return c.Modules * c.CoresPerModule }

// CycleSeconds returns the clock period.
func (c ChipConfig) CycleSeconds() float64 { return 1 / c.ClockHz }

// Bulldozer returns the primary evaluation processor: four two-core
// modules at 3.6 GHz, 2 MB L2 per module, 8 MB shared L3, shared
// front end and shared 2×128-bit FPU per module (per [2][4] in the
// paper).
func Bulldozer() ChipConfig {
	return ChipConfig{
		Name:           "bulldozer",
		ClockHz:        3.6e9,
		Modules:        4,
		CoresPerModule: 2,
		SharedFrontEnd: true,
		SharedFPU:      true,
		HasFMA:         true,
		DecodeWidth:    4,
		BranchPenalty:  14,
		IntDispatch:    2,
		FPDispatch:     2,
		// One general ALU pipe: the module's second integer pipe is
		// modelled by the dedicated branch and multiply units, matching
		// the EX0/EX1 split. This scarcity is what makes dense
		// independent-ADD sequences stretch a loop that NOPs leave
		// tight (§5.A.5).
		NumALU:      1,
		NumAGU:      2,
		LSUPorts:    2,
		MSHRs:       8,
		IntQueue:    20,
		LSQ:         24,
		ResultBuses: 3,
		NumFPPipes:  2,
		FPQueue:     48,
		LineBytes:   64,
		L1Bytes:     16 << 10, L1Ways: 4,
		L2Bytes: 2 << 20, L2Ways: 16,
		L3Bytes: 8 << 20, L3Ways: 16,
		L1Lat: 4, L2Lat: 20, L3Lat: 45, MemLat: 190,
	}
}

// Phenom returns the 45 nm Phenom-II-style secondary processor: four
// independent cores, private caches per core (we keep a chip L3 as its
// shared L3), no SMT, narrower FP, and a slower clock. Its power swing
// between idle and busy is smaller than Bulldozer's (§5.C: "less
// variation between high- and low-power regions because it does not
// manage power as aggressively").
func Phenom() ChipConfig {
	return ChipConfig{
		Name:           "phenom",
		ClockHz:        3.0e9,
		Modules:        4,
		CoresPerModule: 1,
		SharedFrontEnd: false,
		SharedFPU:      false,
		DecodeWidth:    3,
		BranchPenalty:  12,
		IntDispatch:    3,
		FPDispatch:     2,
		NumALU:         3,
		NumAGU:         2,
		LSUPorts:       2,
		MSHRs:          8,
		IntQueue:       18,
		LSQ:            16,
		ResultBuses:    3,
		NumFPPipes:     2,
		FPQueue:        36,
		LineBytes:      64,
		L1Bytes:        64 << 10, L1Ways: 2,
		L2Bytes: 512 << 10, L2Ways: 16,
		L3Bytes: 6 << 20, L3Ways: 48,
		L1Lat: 3, L2Lat: 15, L3Lat: 40, MemLat: 170,
	}
}
