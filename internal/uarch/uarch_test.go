package uarch

import "testing"

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []ChipConfig{Bulldozer(), Phenom()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestValidateCatchesEveryField(t *testing.T) {
	breakers := []func(*ChipConfig){
		func(c *ChipConfig) { c.ClockHz = 0 },
		func(c *ChipConfig) { c.Modules = 0 },
		func(c *ChipConfig) { c.CoresPerModule = 0 },
		func(c *ChipConfig) { c.DecodeWidth = 0 },
		func(c *ChipConfig) { c.IntDispatch = 0 },
		func(c *ChipConfig) { c.FPDispatch = 0 },
		func(c *ChipConfig) { c.NumALU = 0 },
		func(c *ChipConfig) { c.LSUPorts = 0 },
		func(c *ChipConfig) { c.MSHRs = 0 },
		func(c *ChipConfig) { c.IntQueue = 1 },
		func(c *ChipConfig) { c.LSQ = 0 },
		func(c *ChipConfig) { c.FPQueue = 1 },
		func(c *ChipConfig) { c.ResultBuses = 0 },
		func(c *ChipConfig) { c.NumFPPipes = 0 },
		func(c *ChipConfig) { c.FPThrottleLimit = -1 },
		func(c *ChipConfig) { c.BranchPenalty = -1 },
		func(c *ChipConfig) { c.LineBytes = 48 },
		func(c *ChipConfig) { c.L1Bytes = 8 },
		func(c *ChipConfig) { c.L1Ways = 0 },
		func(c *ChipConfig) { c.L2Lat = c.L1Lat },
		func(c *ChipConfig) { c.MemLat = 0 },
	}
	for i, breakIt := range breakers {
		cfg := Bulldozer()
		breakIt(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("breaker %d produced a config that still validates", i)
		}
	}
}

func TestBulldozerTopology(t *testing.T) {
	cfg := Bulldozer()
	if cfg.Threads() != 8 {
		t.Errorf("threads = %d, want 8 (four modules × two cores)", cfg.Threads())
	}
	if !cfg.SharedFrontEnd || !cfg.SharedFPU {
		t.Error("Bulldozer must share front end and FPU within a module")
	}
	if !cfg.HasFMA {
		t.Error("Bulldozer supports FMA")
	}
	if cfg.CycleSeconds() <= 0 {
		t.Error("bad cycle time")
	}
}

func TestPhenomTopology(t *testing.T) {
	cfg := Phenom()
	if cfg.Threads() != 4 {
		t.Errorf("threads = %d, want 4", cfg.Threads())
	}
	if cfg.SharedFrontEnd || cfg.SharedFPU {
		t.Error("Phenom cores are independent")
	}
	if cfg.HasFMA {
		t.Error("the 45 nm part lacks FMA (why SM1 cannot run, §5.C)")
	}
}
