package experiments

import (
	"context"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/testbed"
	"repro/internal/workloads"
)

// ---- §3: data values matter (~10% of droop) ----

// DataToggleResult compares a stressmark with AUDIT's alternating
// maximum-toggle operand values against the same code with constant
// operands.
type DataToggleResult struct {
	ToggledDroopV  float64
	ConstantDroopV float64
	// ImpactPct is the droop lost by removing toggling; the paper
	// measured "on the order of 10%".
	ImpactPct float64
}

// DataToggle re-measures A-Res with its toggle-seeded initial register
// values replaced by constants, reproducing §3's observation: "data
// values used for the stressmark have a measurable impact on the final
// droop values, on the order of 10%. To take data values into account,
// we use an alternating set of values that guarantee maximum toggling."
func (l *Lab) DataToggle() (*DataToggleResult, error) {
	aRes, err := l.ARes()
	if err != nil {
		return nil, err
	}
	toggled, err := l.droop(l.BD, aRes.Program, 4)
	if err != nil {
		return nil, err
	}
	flat := aRes.Program.Clone()
	flat.Name = "A-Res-const"
	one := isa.FromFloat64s(1, 1)
	for r := range flat.InitRegs {
		if r.Kind == isa.RegXMM {
			flat.InitRegs[r] = one
		} else {
			flat.InitRegs[r] = isa.Value{Lo: 1}
		}
	}
	constant, err := l.droop(l.BD, flat, 4)
	if err != nil {
		return nil, err
	}
	res := &DataToggleResult{ToggledDroopV: toggled, ConstantDroopV: constant}
	if toggled > 0 {
		res.ImpactPct = (1 - constant/toggled) * 100
	}
	return res, nil
}

// ---- §3.C: the low-power region — NOPs vs dependent long-latency ops ----

// LPRegionResult compares the two candidate low-power fillers.
type LPRegionResult struct {
	NopDroopV   float64
	DepOpDroopV float64
	// NOPs won on the paper's machine: "a sequence of NOPs produced
	// comparable power values to a sequence of long-latency, dependent
	// operations. NOPs are designed to be very low-power instructions."
	DeltaPct float64
}

// LPRegion builds an SM-Res-style loop whose LP half is either NOPs or
// a dependent divide chain (the [10]-style low-power filler) and
// compares the droops.
func (l *Lab) LPRegion() (*LPRegionResult, error) {
	period := resonancePeriod(l.BD)
	nop := workloads.SMRes(period)
	dep := smResWithDependentLP(period)
	a, err := l.droop(l.BD, nop, 4)
	if err != nil {
		return nil, err
	}
	b, err := l.droop(l.BD, dep, 4)
	if err != nil {
		return nil, err
	}
	res := &LPRegionResult{NopDroopV: a, DepOpDroopV: b}
	if a > 0 {
		res.DeltaPct = (b/a - 1) * 100
	}
	return res, nil
}

// smResWithDependentLP mirrors workloads.SMRes but fills the LP region
// with a dependent long-latency divide chain instead of NOPs.
func smResWithDependentLP(loopCycles int) *asm.Program {
	h := loopCycles / 2
	l := loopCycles - h - 1
	b := asm.NewBuilder("SM-Res-depLP")
	b.SetMem(4096)
	b.InitToggle(16, 8)
	b.RI("movimm", isa.RCX, 1<<40)
	b.Label("loop")
	for i := 0; i < h; i++ {
		if i%2 == 0 {
			b.RRR("vfmadd132pd", isa.XMM(i%12), isa.XMM(12+i%2), isa.XMM(14+i%2))
			b.RRR("vfmadd132pd", isa.XMM((i+6)%12), isa.XMM(13-i%2), isa.XMM(15-i%2))
			b.Nop(2)
		} else {
			b.RR("pmulld", isa.XMM(i%12), isa.XMM(12+i%2))
			b.RR("paddd", isa.XMM((i+6)%12), isa.XMM(14+i%2))
			b.Nop(2)
		}
	}
	// Dependent divide chain: each idiv reads the previous result, so
	// the region is long-latency and serialised — low activity, like
	// the [10]-style low-power filler.
	divs := l / 22 // one unpipelined divide covers ~22 cycles
	if divs < 1 {
		divs = 1
	}
	for i := 0; i < divs; i++ {
		b.RR("idiv", isa.GPR(8), isa.RSI)
	}
	rem := l*4 - divs // keep decode slots roughly comparable
	if rem > 0 {
		b.Nop(rem)
	}
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	return b.MustBuild()
}

// ---- VRM load line on/off (measurement methodology of Fig. 9) ----

// LoadLineResult compares droop measurements with the VRM load line
// enabled and disabled.
type LoadLineResult struct {
	// Off is the paper's methodology: di/dt droop only.
	OffDroopV float64
	// On adds the load-line IR term to every measurement.
	OnDroopV float64
	ExtraMV  float64
}

// LoadLine quantifies why the paper disables the VRM load line for
// droop measurements: with it enabled, the DC operating point sags with
// load current and inflates every droop number by an IR term unrelated
// to di/dt.
func (l *Lab) LoadLine() (*LoadLineResult, error) {
	period := resonancePeriod(l.BD)
	prog := workloads.SMRes(period)
	off, err := l.droop(l.BD, prog, 4)
	if err != nil {
		return nil, err
	}
	pl := l.BD
	pl.PDN.LoadLineOn = true
	specs, err := testbed.SpreadPlacement(pl.Chip, prog, 4)
	if err != nil {
		return nil, err
	}
	// The load-line sag develops with the board stage's RC time
	// constant (tens of microseconds), so this measurement needs a
	// longer horizon than the default di/dt runs.
	m, err := pl.Run(testbed.RunConfig{
		Threads:      specs,
		MaxCycles:    300000,
		WarmupCycles: 250000,
	})
	if err != nil {
		return nil, err
	}
	return &LoadLineResult{
		OffDroopV: off,
		OnDroopV:  m.MaxDroopV,
		ExtraMV:   (m.MaxDroopV - off) * 1e3,
	}, nil
}

// ---- dither quality: approximate δ vs exact ----

// DitherQualityResult compares the droop found by exact alignment
// against the approximate algorithm's δ-granular alignment.
type DitherQualityResult struct {
	ExactDroopV  float64
	Delta        int
	ApproxDroopV float64
	// LossPct is the droop given up for the exponentially cheaper
	// sweep.
	LossPct float64
}

// DitherQuality measures the cost of the approximate algorithm's
// alignment granularity: with a δ-cycle mismatch bound, the best
// alignment the sweep visits can be up to δ cycles off the ideal.
func (l *Lab) DitherQuality(delta int) (*DitherQualityResult, error) {
	period := resonancePeriod(l.BD)
	prog := workloads.SMRes(period)
	exact, err := l.droop(l.BD, prog, 4)
	if err != nil {
		return nil, err
	}
	// The worst alignment the approximate sweep can settle for is δ/2
	// cycles of residual skew on the non-reference cores.
	m, err := l.measure(l.BD, prog, 4, func(rc *testbed.RunConfig) {
		for i := range rc.Threads {
			if i > 0 {
				rc.Threads[i].StartSkew = uint64((delta + 1) / 2)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	res := &DitherQualityResult{ExactDroopV: exact, Delta: delta, ApproxDroopV: m.MaxDroopV}
	if exact > 0 {
		res.LossPct = (1 - m.MaxDroopV/exact) * 100
	}
	return res, nil
}

// ---- branch predictor ablation (simulator-insight extension) ----

// PredictorResult compares a mispredict-heavy workload under the static
// and gshare predictors.
type PredictorResult struct {
	StaticDroopV      float64
	GshareDroopV      float64
	StaticMispredicts uint64
	GshareMispredicts uint64
}

// Predictor runs the branchy perlbench-style kernel under both
// predictors. Mispredict recovery is one of the natural di/dt events
// the paper names (§5.A.1: "pipeline recovery after a branch
// misprediction stall"); a better predictor smooths the activity and
// with it the droop — the same flattening effect as the mitigation
// mechanisms of §5.B, arrived at from the front end.
func (l *Lab) Predictor() (*PredictorResult, error) {
	w, err := workloads.ByName("perlbench")
	if err != nil {
		return nil, err
	}
	out := &PredictorResult{}
	for _, pred := range []string{"static", "gshare"} {
		pl := l.BD
		pl.Chip.Predictor = pred
		specs, err := testbed.SpreadPlacement(pl.Chip, w.Program, 4)
		if err != nil {
			return nil, err
		}
		m, err := pl.Run(testbed.RunConfig{
			Threads:      specs,
			MaxCycles:    l.WarmupCycles + l.MeasureCycles,
			WarmupCycles: l.WarmupCycles,
		})
		if err != nil {
			return nil, err
		}
		if pred == "static" {
			out.StaticDroopV = m.MaxDroopV
			out.StaticMispredicts = m.Mispredicts
		} else {
			out.GshareDroopV = m.MaxDroopV
			out.GshareMispredicts = m.Mispredicts
		}
	}
	return out, nil
}

// ---- co-scheduling interference (Reddi et al. [23], discussed in §6) ----

// CoScheduleResult compares pairing choices for two-program mixes on
// sibling modules.
type CoScheduleResult struct {
	// TwoFPDroopV: both modules run the FP-resonant mark (constructive
	// interference risk).
	TwoFPDroopV float64
	// MixedDroopV: FP-resonant paired with a memory-bound program — the
	// noise-aware co-schedule.
	MixedDroopV  float64
	ReductionPct float64
}

// CoSchedule reproduces the insight of Reddi et al. (cited as the most
// detailed prior hardware analysis, §6): co-scheduling a high-di/dt
// thread with a quiet one instead of with another high-di/dt thread
// reduces the worst droop — the basis of their noise-aware scheduler.
func (l *Lab) CoSchedule() (*CoScheduleResult, error) {
	period := resonancePeriod(l.BD)
	fp := workloads.SMRes(period)
	mem, err := workloads.ByName("mcf")
	if err != nil {
		return nil, err
	}
	run := func(progs []*asm.Program) (float64, error) {
		var specs []testbed.ThreadSpec
		for i, p := range progs {
			specs = append(specs, testbed.ThreadSpec{Program: p, Module: i, Core: 0})
		}
		m, err := l.BD.Run(testbed.RunConfig{
			Threads:      specs,
			MaxCycles:    l.WarmupCycles + l.MeasureCycles,
			WarmupCycles: l.WarmupCycles,
		})
		if err != nil {
			return 0, err
		}
		return m.MaxDroopV, nil
	}
	two, err := run([]*asm.Program{fp, fp})
	if err != nil {
		return nil, err
	}
	mixed, err := run([]*asm.Program{fp, mem.Program})
	if err != nil {
		return nil, err
	}
	res := &CoScheduleResult{TwoFPDroopV: two, MixedDroopV: mixed}
	if two > 0 {
		res.ReductionPct = (1 - mixed/two) * 100
	}
	return res, nil
}

// ---- operating conditions: frequency scaling and board variation ----

// OperatingPointResult records AUDIT's resonance re-detection across
// operating conditions.
type OperatingPointResult struct {
	Name string
	// ClockHz of the configuration.
	ClockHz float64
	// FirstDroopHz is the PDN's analytic resonance.
	FirstDroopHz float64
	// DetectedLoop is what the software sweep found.
	DetectedLoop int
	// DetectedHz = ClockHz/DetectedLoop.
	DetectedHz float64
}

// OperatingPoints runs the resonance-detection sweep across three
// conditions — the stock system, the same system clocked down (DVFS
// point), and the same processor on a different board — and reports
// how the worst-case loop length tracks the physics. This is the §3
// claim that AUDIT "automatically detect[s] the resonant frequency of
// the system" wherever it lands.
func (l *Lab) OperatingPoints() ([]OperatingPointResult, error) {
	stock := l.BD
	slow := l.BD
	slow.Chip.Name = "bulldozer-2.4GHz"
	slow.Chip.ClockHz = 2.4e9
	board := l.BD
	board.Chip.Name = "bulldozer-serverboard"
	board.PDN = pdn.ServerBoard()

	var out []OperatingPointResult
	for _, p := range []testbed.Platform{stock, slow, board} {
		sweep := core.ResonanceSweep{Platform: p}
		_, best, err := sweep.Run(12, 64, 2)
		if err != nil {
			return nil, err
		}
		out = append(out, OperatingPointResult{
			Name:         p.Chip.Name,
			ClockHz:      p.Chip.ClockHz,
			FirstDroopHz: p.PDN.FirstDroopNominal(),
			DetectedLoop: best.LoopCycles,
			DetectedHz:   best.FreqHz,
		})
	}
	return out, nil
}

// ---- extension: heterogeneous 8T generation ----

// HeteroResult compares homogeneous and heterogeneous 8T generation.
type HeteroResult struct {
	HomoDroopV   float64
	HeteroDroopV float64
	GainPct      float64
}

// Hetero8T pits the paper's homogeneous 8T mark (A-Res-8T) against a
// heterogeneous mark whose sibling threads may specialise. With the
// FPU shared inside a module, pairing an FP-heavy thread with an
// integer-heavy sibling avoids the contention that §5.A.2 blames for
// the 8T losses — a capability the paper's framework implies but does
// not implement.
func (l *Lab) Hetero8T() (*HeteroResult, error) {
	homo, err := l.ARes8T()
	if err != nil {
		return nil, err
	}
	homoDroop, err := l.droop(l.BD, homo.Program, 8)
	if err != nil {
		return nil, err
	}
	loop, err := l.LoopCycles(l.BD)
	if err != nil {
		return nil, err
	}
	het, err := core.GenerateHetero(context.Background(), core.Options{
		Platform: l.BD, LoopCycles: loop, Threads: 8,
		GA: l.GA, Seed: 67, Name: "A-Res-8T-hetero",
	})
	if err != nil {
		return nil, err
	}
	// Re-measure at the lab's standard run length.
	specs, err := testbed.SpreadPlacement(l.BD.Chip, het.Programs[0], 8)
	if err != nil {
		return nil, err
	}
	for i := range specs {
		specs[i].Program = het.Programs[i]
	}
	m, err := l.BD.Run(testbed.RunConfig{
		Threads:      specs,
		MaxCycles:    l.WarmupCycles + l.MeasureCycles,
		WarmupCycles: l.WarmupCycles,
	})
	if err != nil {
		return nil, err
	}
	res := &HeteroResult{HomoDroopV: homoDroop, HeteroDroopV: m.MaxDroopV}
	if homoDroop > 0 {
		res.GainPct = (m.MaxDroopV/homoDroop - 1) * 100
	}
	return res, nil
}
