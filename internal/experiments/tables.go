package experiments

import (
	"context"
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// ---- Table 1: voltage at failure relative to A-Res (4T) ----

// Table1Row is one program's failure point.
type Table1Row struct {
	Name string
	// VFail is the highest supply voltage at which the 4T run fails.
	VFail float64
	// DeltaMV is VFail(A-Res) − VFail, in millivolts (0 for A-Res; the
	// paper reports VF − x mV for everything else).
	DeltaMV float64
	// DroopV is the 4T droop at nominal supply, for the droop-vs-
	// failure decoupling analysis.
	DroopV float64
}

// Table1 reproduces the voltage-at-failure ordering: A-Res first, then
// SM-Res, SM1, A-Ex, SM2, and the two droopiest standard benchmarks
// last — with SM2 failing far above benchmarks of comparable droop.
func (l *Lab) Table1() ([]Table1Row, error) {
	period := workloads.DefaultLoopCycles
	aRes, err := l.ARes()
	if err != nil {
		return nil, err
	}
	aEx, err := l.AEx()
	if err != nil {
		return nil, err
	}
	zeusmp, err := workloads.ByName("zeusmp")
	if err != nil {
		return nil, err
	}
	swaptions, err := workloads.ByName("swaptions")
	if err != nil {
		return nil, err
	}
	progs := []struct {
		name string
		p    *asm.Program
	}{
		{"A-Res", aRes.Program},
		{"SM-Res", workloads.SMRes(period)},
		{"SM1", workloads.SM1(period)},
		{"A-Ex", aEx.Program},
		{"SM2", workloads.SM2(period)},
		{"zeusmp", zeusmp.Program},
		{"swaptions", swaptions.Program},
	}
	var rows []Table1Row
	for _, e := range progs {
		vf, err := l.failureVoltage(l.BD, e.p, 4, 0)
		if err != nil {
			return nil, fmt.Errorf("table 1 %s: %w", e.name, err)
		}
		d, err := l.droop(l.BD, e.p, 4)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{Name: e.name, VFail: vf, DroopV: d})
	}
	ref := rows[0].VFail
	for i := range rows {
		rows[i].DeltaMV = (ref - rows[i].VFail) * 1e3
	}
	return rows, nil
}

// ---- Table 2: impact of FPU throttling ----

// Table2Row is one stressmark × throttle setting.
type Table2Row struct {
	Name      string
	Throttled bool
	// RelDroop is relative to unthrottled 4T SM1.
	RelDroop float64
	DroopV   float64
	VFail    float64
}

// Table2 measures SM1, A-Res and SM-Res with FPU throttling off and on,
// plus A-Res-Th — the mark AUDIT regenerates with throttling enabled.
func (l *Lab) Table2() ([]Table2Row, error) {
	period := workloads.DefaultLoopCycles
	ref, err := l.smRef()
	if err != nil {
		return nil, err
	}
	aRes, err := l.ARes()
	if err != nil {
		return nil, err
	}
	aResTh, err := l.AResTh()
	if err != nil {
		return nil, err
	}
	type entry struct {
		name     string
		p        *asm.Program
		throttle bool
	}
	entries := []entry{
		{"SM1", workloads.SM1(period), false},
		{"A-Res", aRes.Program, false},
		{"SM-Res", workloads.SMRes(period), false},
		{"SM1", workloads.SM1(period), true},
		{"A-Res", aRes.Program, true},
		{"SM-Res", workloads.SMRes(period), true},
		{"A-Res-Th", aResTh.Program, true},
	}
	var rows []Table2Row
	for _, e := range entries {
		throttle := 0
		if e.throttle {
			throttle = 1
		}
		m, err := l.measure(l.BD, e.p, 4, func(rc *testbed.RunConfig) { rc.FPThrottle = throttle })
		if err != nil {
			return nil, fmt.Errorf("table 2 %s: %w", e.name, err)
		}
		vf, err := l.failureVoltage(l.BD, e.p, 4, throttle)
		if err != nil {
			return nil, fmt.Errorf("table 2 %s failure: %w", e.name, err)
		}
		rows = append(rows, Table2Row{
			Name:      e.name,
			Throttled: e.throttle,
			RelDroop:  m.MaxDroopV / ref,
			DroopV:    m.MaxDroopV,
			VFail:     vf,
		})
	}
	return rows, nil
}

// ---- Table 3: the Phenom-style processor ----

// Table3Row is one program on the secondary platform.
type Table3Row struct {
	Name string
	// RelDroop is relative to SM2 on the same platform.
	RelDroop float64
	DroopV   float64
	VFail    float64
	// Incompatible marks programs the chip cannot run (SM1's FMA).
	Incompatible bool
}

// Table3 swaps in the Phenom-style processor, regenerates A-Res, and
// compares against SM2 and zeusmp. SM1 is reported incompatible, as in
// §5.C.
func (l *Lab) Table3() ([]Table3Row, error) {
	period := resonancePeriod(l.PH)
	aResPh, err := l.AResPhenom()
	if err != nil {
		return nil, err
	}
	zeusmp, err := workloads.ByName("zeusmp")
	if err != nil {
		return nil, err
	}
	sm2 := workloads.SM2(period)
	progs := []struct {
		name string
		p    *asm.Program
	}{
		{"zeusmp", zeusmp.Program},
		{"SM2", sm2},
		{"A-Res", aResPh.Program},
		{"SM1", workloads.SM1(period)},
	}
	var rows []Table3Row
	var sm2Droop float64
	for _, e := range progs {
		if workloads.UsesFMA(e.p) && !l.PH.Chip.HasFMA {
			rows = append(rows, Table3Row{Name: e.name, Incompatible: true})
			continue
		}
		m, err := l.measure(l.PH, e.p, 4, nil)
		if err != nil {
			return nil, fmt.Errorf("table 3 %s: %w", e.name, err)
		}
		vf, err := l.failureVoltage(l.PH, e.p, 4, 0)
		if err != nil {
			return nil, fmt.Errorf("table 3 %s failure: %w", e.name, err)
		}
		row := Table3Row{Name: e.name, DroopV: m.MaxDroopV, VFail: vf}
		if e.name == "SM2" {
			sm2Droop = m.MaxDroopV
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if sm2Droop > 0 && !rows[i].Incompatible {
			rows[i].RelDroop = rows[i].DroopV / sm2Droop
		}
	}
	return rows, nil
}

// ---- §3.B: dithering search cost ----

// DitherCostRow is one configuration's alignment-sweep cost.
type DitherCostRow struct {
	Cores   int
	Delta   int // 0 = exact
	Seconds float64
}

// DitherCost reproduces the §3.B cost analysis at the paper's operating
// point (4 GHz, L+H = 24, M = 960): 4-core exact 3.3 ms, 8-core exact
// 18.35 min, 8-core δ=3 approximate 67 ms.
func (l *Lab) DitherCost() []DitherCostRow {
	const clock = 4e9
	return []DitherCostRow{
		{Cores: 2, Delta: 0, Seconds: core.ExactSweepCycles(2, 24, 960) / clock},
		{Cores: 4, Delta: 0, Seconds: core.ExactSweepCycles(4, 24, 960) / clock},
		{Cores: 8, Delta: 0, Seconds: core.ExactSweepCycles(8, 24, 960) / clock},
		{Cores: 8, Delta: 3, Seconds: core.ApproxSweepCycles(8, 24, 960, 3) / clock},
	}
}

// DitherDemoResult is the executed (scaled) dithering demonstration.
type DitherDemoResult struct {
	AlignedDroopV    float64
	MisalignedDroopV float64
	DitheredDroopV   float64
}

// DitherDemo shows, on the live testbed, that (a) anti-phase threads
// droop much less than aligned ones, and (b) the dithering schedule
// recovers worst-case alignment from an arbitrary skew.
func (l *Lab) DitherDemo() (*DitherDemoResult, error) {
	period := resonancePeriod(l.BD)
	prog := workloads.SMRes(period)
	out := &DitherDemoResult{}

	m, err := l.measure(l.BD, prog, 4, nil)
	if err != nil {
		return nil, err
	}
	out.AlignedDroopV = m.MaxDroopV

	skew := func(rc *testbed.RunConfig) {
		for i := range rc.Threads {
			if i%2 == 1 {
				rc.Threads[i].StartSkew = uint64(period / 2)
			}
		}
	}
	m, err = l.measure(l.BD, prog, 4, skew)
	if err != nil {
		return nil, err
	}
	out.MisalignedDroopV = m.MaxDroopV

	// Dither the two skewed threads: M scaled down so the sweep fits in
	// a short run (documented scaling; the algorithm is unchanged).
	mCycles := 6 * period
	m, err = l.measure(l.BD, prog, 4, func(rc *testbed.RunConfig) {
		skew(rc)
		rc.MaxCycles = uint64(mCycles*period) + 30000
		rc.Dither = []testbed.DitherSpec{
			{Core: rc.Threads[1].GlobalCore(l.BD.Chip), PeriodCycles: uint64(mCycles), PadCycles: 1},
			{Core: rc.Threads[3].GlobalCore(l.BD.Chip), PeriodCycles: uint64(mCycles), PadCycles: 1},
		}
	})
	if err != nil {
		return nil, err
	}
	out.DitheredDroopV = m.MaxDroopV
	return out, nil
}

// ---- §3.C: hierarchical sub-blocking vs flat generation ----

// HierFlatResult compares the two genome layouts at equal evaluation
// budget. The budget counts candidates scored — fitness-cache hits
// included, since a duplicate candidate still consumes a GA slot even
// when memoization skips its simulation.
type HierFlatResult struct {
	HierDroopV     float64
	FlatDroopV     float64
	HierEvals      int
	FlatEvals      int
	ImprovementPct float64
}

// HierarchicalVsFlat runs AUDIT twice with the same GA budget: once
// with K=6 sub-blocks (hierarchical) and once with a flat genome the
// full HP-region long. The paper saw sub-blocking converge to a 19%
// higher droop in a sixth of the time.
func (l *Lab) HierarchicalVsFlat() (*HierFlatResult, error) {
	loop, err := l.LoopCycles(l.BD)
	if err != nil {
		return nil, err
	}
	gacfg := l.GA
	gacfg.StagnantLimit = 0 // equal budgets: run all generations
	hier, err := core.Generate(context.Background(), core.Options{
		Platform: l.BD, LoopCycles: loop, Threads: 4,
		SubBlockCycles: 6, GA: gacfg, Seed: 31, Name: "hier", NoSeed: true,
	})
	if err != nil {
		return nil, err
	}
	flat, err := core.Generate(context.Background(), core.Options{
		Platform: l.BD, LoopCycles: loop, Threads: 4,
		SubBlockCycles: loop / 2, GA: gacfg, Seed: 31, Name: "flat", NoSeed: true,
	})
	if err != nil {
		return nil, err
	}
	res := &HierFlatResult{
		HierDroopV: hier.DroopV,
		FlatDroopV: flat.DroopV,
		HierEvals:  hier.Search.Evaluations + hier.Search.CacheHits,
		FlatEvals:  flat.Search.Evaluations + flat.Search.CacheHits,
	}
	if flat.DroopV > 0 {
		res.ImprovementPct = (hier.DroopV/flat.DroopV - 1) * 100
	}
	return res, nil
}

// ---- §5.A.5: the NOP ablation ----

// NOPAblationResult compares A-Res against its NOP→ADD variant.
type NOPAblationResult struct {
	NopSlots       int
	OriginalDroopV float64
	ModifiedDroopV float64
	// Frequencies of the dominant first-droop component in each run's
	// waveform: the modified loop runs longer, so its di/dt pattern
	// shifts below the resonance.
	OriginalFreqHz float64
	ModifiedFreqHz float64
}

// NOPAblation replaces the NOPs in A-Res's high-power region with
// independent integer ADDs and re-measures, reproducing the §5.A.5
// analysis: the ADD version droops less and its frequency shifts low.
func (l *Lab) NOPAblation() (*NOPAblationResult, error) {
	aRes, err := l.ARes()
	if err != nil {
		return nil, err
	}
	nops := core.CountNopSlots(aRes.Genome)
	if nops == 0 {
		return nil, fmt.Errorf("experiments: A-Res genome has no NOP slots to ablate")
	}
	modGenome, err := aRes.Gen.ReplaceNopSlots(aRes.Genome, "add")
	if err != nil {
		return nil, err
	}
	modProg, err := aRes.Gen.Build("A-Res-adds", modGenome)
	if err != nil {
		return nil, err
	}
	out := &NOPAblationResult{NopSlots: nops}
	fRes := l.BD.PDN.FirstDroopNominal()
	for i, p := range []*asm.Program{aRes.Program, modProg} {
		m, err := l.measure(l.BD, p, 4, func(rc *testbed.RunConfig) { rc.RecordWaveform = true })
		if err != nil {
			return nil, err
		}
		f, err := trace.DominantFrequencyInBand(m.Waveform, l.BD.Chip.ClockHz, fRes/4, fRes*2)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			out.OriginalDroopV, out.OriginalFreqHz = m.MaxDroopV, f
		} else {
			out.ModifiedDroopV, out.ModifiedFreqHz = m.MaxDroopV, f
		}
	}
	return out, nil
}

// ---- §5.A.1: the barrier stressmark ----

// BarrierResult compares the barrier-synchronised virus against the
// same pattern with perfectly aligned starts and no barrier.
type BarrierResult struct {
	// BarrierDroopV: virus bursts launched by barrier releases (skewed
	// by the memory hierarchy).
	BarrierDroopV float64
	// AlignedDroopV: the same bursts with ideal alignment.
	AlignedDroopV float64
}

// Barrier reproduces the finding that the barrier stressmark's droop
// "was not significant": release skew perturbs the burst onsets enough
// to dampen the excitation.
func (l *Lab) Barrier() (*BarrierResult, error) {
	period := resonancePeriod(l.BD)
	out := &BarrierResult{}
	m, err := l.measure(l.BD, workloads.BarrierVirus(period), 4, nil)
	if err != nil {
		return nil, err
	}
	out.BarrierDroopV = m.MaxDroopV
	m, err = l.measure(l.BD, alignedVirus(period), 4, nil)
	if err != nil {
		return nil, err
	}
	out.AlignedDroopV = m.MaxDroopV
	return out, nil
}

// alignedVirus is the barrier virus's burst pattern (2 periods of FMA
// burst, 1 period idle) without the synchronisation, so the simulator's
// lockstep start keeps the bursts perfectly aligned across cores.
func alignedVirus(period int) *asm.Program {
	b := asm.NewBuilder("aligned-virus")
	b.SetMem(4096)
	b.InitToggle(16, 8)
	b.RI("movimm", isa.RCX, 1<<40)
	b.Label("loop")
	for i := 0; i < 2*period; i++ {
		b.RRR("vfmadd132pd", isa.XMM(i%12), isa.XMM(12+i%2), isa.XMM(14+i%2))
		b.RRR("vfmadd132pd", isa.XMM((i+6)%12), isa.XMM(13-i%2), isa.XMM(15-i%2))
		b.Nop(2)
	}
	b.Nop(1 * period)
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	return b.MustBuild()
}
