package experiments

import (
	"math"
	"testing"
)

// lab is shared across tests so generated stressmarks are reused, as in
// the paper (each mark is generated once, then measured everywhere).
var lab = NewLab()

func TestFig3ThreePeaksAndFirstDroopDominates(t *testing.T) {
	res, err := lab.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Peaks) < 3 {
		t.Fatalf("found %d resonance peaks, want 3", len(res.Peaks))
	}
	first := res.Peaks[0]
	if first.FreqHz < 50e6 || first.FreqHz > 200e6 {
		t.Errorf("first droop at %.1f MHz, outside the paper's 50–200 MHz", first.FreqHz/1e6)
	}
	for _, p := range res.Peaks[1:] {
		if p.ZOhms >= first.ZOhms {
			t.Errorf("peak at %.3g Hz (%.3g Ω) not below first droop (%.3g Ω)",
				p.FreqHz, p.ZOhms, first.ZOhms)
		}
	}
	if len(res.StepWave) == 0 {
		t.Error("no step waveform")
	}
}

func TestFig4ResonanceBeatsExcitation(t *testing.T) {
	res, err := lab.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if res.ResonanceDroopV <= res.ExcitationDroopV {
		t.Errorf("resonance droop %.4f should exceed excitation droop %.4f",
			res.ResonanceDroopV, res.ExcitationDroopV)
	}
	if res.ExcitationDroopV <= 0 {
		t.Error("no excitation droop at all")
	}
}

func TestFig6NaturalDithering(t *testing.T) {
	res, err := lab.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks == 0 {
		t.Fatal("no OS ticks delivered")
	}
	if len(res.WindowDroopV) < 8 {
		t.Fatalf("only %d tick windows", len(res.WindowDroopV))
	}
	// The droop envelope must visibly change across tick windows —
	// that is the natural-dithering signature of Fig. 6.
	if res.Spread < 0.10*res.BestWindowDroopV {
		t.Errorf("window droop spread %.4f V too small vs best %.4f V — no visible dithering",
			res.Spread, res.BestWindowDroopV)
	}
}

func TestFig9BenchmarksShape(t *testing.T) {
	rows, ref, err := lab.Fig9Benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	if ref <= 0 {
		t.Fatal("bad reference droop")
	}
	byName := map[string]Fig9Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// All benchmarks stay below the 4T SM1 reference at 4T.
	for _, r := range rows {
		if r.Rel[4] >= 1.0 {
			t.Errorf("%s 4T relative droop %.2f ≥ SM1 reference", r.Name, r.Rel[4])
		}
	}
	// Droop grows with thread count through 4T for the droopy FP codes.
	for _, name := range []string{"zeusmp", "swaptions", "milc"} {
		r := byName[name]
		if !(r.DroopV[1] < r.DroopV[2] && r.DroopV[2] < r.DroopV[4]) {
			t.Errorf("%s droop not increasing 1T→2T→4T: %v", name, r.DroopV)
		}
	}
	// zeusmp and swaptions top the benchmark 4T droops (Table 1 pairs
	// them as the two droopiest).
	top2 := []string{}
	first, second := 0.0, 0.0
	var firstName, secondName string
	for _, r := range rows {
		if r.DroopV[4] > first {
			second, secondName = first, firstName
			first, firstName = r.DroopV[4], r.Name
		} else if r.DroopV[4] > second {
			second, secondName = r.DroopV[4], r.Name
		}
	}
	top2 = append(top2, firstName, secondName)
	want := map[string]bool{"zeusmp": true, "swaptions": true}
	for _, n := range top2 {
		if !want[n] {
			t.Errorf("top-2 4T benchmarks = %v, want zeusmp and swaptions", top2)
		}
	}
}

func TestFig9StressmarksShape(t *testing.T) {
	rows, _, err := lab.Fig9Stressmarks()
	if err != nil {
		t.Fatal(err)
	}
	r := map[string]Fig9Row{}
	for _, row := range rows {
		r[row.Name] = row
	}
	// Resonant marks dominate at 4T: A-Res and SM-Res well above SM1.
	if !(r["A-Res"].Rel[4] > 1.1 && r["SM-Res"].Rel[4] > 1.1) {
		t.Errorf("resonant marks should clearly beat SM1 at 4T: A-Res %.2f, SM-Res %.2f",
			r["A-Res"].Rel[4], r["SM-Res"].Rel[4])
	}
	// AUDIT matches or beats the hand mark (paper: "comparable or
	// greater"; allow a small tolerance for the scaled GA budget).
	if r["A-Res"].DroopV[4] < 0.95*r["SM-Res"].DroopV[4] {
		t.Errorf("A-Res 4T (%.4f) should be comparable to or better than SM-Res (%.4f)",
			r["A-Res"].DroopV[4], r["SM-Res"].DroopV[4])
	}
	// SM2 stays benchmark-class (below SM1).
	if r["SM2"].Rel[4] >= 1.0 {
		t.Errorf("SM2 4T rel %.2f should stay below SM1", r["SM2"].Rel[4])
	}
	// 8T inversion: stressmarks trained at 4T droop less at 8T than 4T
	// (shared-FPU interference).
	for _, name := range []string{"A-Res", "SM-Res"} {
		if r[name].DroopV[8] >= r[name].DroopV[4] {
			t.Errorf("%s: 8T droop %.4f should fall below 4T %.4f (shared FPU interference)",
				name, r[name].DroopV[8], r[name].DroopV[4])
		}
	}
	// A-Res-8T wins at 8T among the resonant marks but loses at 4T.
	if r["A-Res-8T"].DroopV[8] <= r["A-Res"].DroopV[8] {
		t.Errorf("A-Res-8T at 8T (%.4f) should beat A-Res at 8T (%.4f)",
			r["A-Res-8T"].DroopV[8], r["A-Res"].DroopV[8])
	}
	if r["A-Res-8T"].DroopV[4] >= r["A-Res"].DroopV[4] {
		t.Errorf("A-Res-8T at 4T (%.4f) should trail A-Res at 4T (%.4f)",
			r["A-Res-8T"].DroopV[4], r["A-Res"].DroopV[4])
	}
	// Droop grows 1T→2T→4T for the resonant marks.
	for _, name := range []string{"A-Res", "SM-Res", "SM1"} {
		row := r[name]
		if !(row.DroopV[1] < row.DroopV[2] && row.DroopV[2] < row.DroopV[4]) {
			t.Errorf("%s droop not increasing 1T→2T→4T: %v", name, row.DroopV)
		}
	}
}

func TestFig10HistogramShapes(t *testing.T) {
	res, err := lab.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig10Result{}
	for _, r := range res {
		byName[r.Name] = r
	}
	z, sm1, ares := byName["zeusmp"], byName["SM1"], byName["A-Res"]
	// zeusmp has the least voltage variation.
	zs := histSpread(z)
	s1 := histSpread(sm1)
	as := histSpread(ares)
	if !(zs < s1) {
		t.Errorf("zeusmp Vdd spread %.4f should be below SM1 %.4f", zs, s1)
	}
	if !(zs < as) {
		t.Errorf("zeusmp Vdd spread %.4f should be below A-Res %.4f", zs, as)
	}
	// A-Res: the resonant mark produces far more droop events than the
	// benchmark — mass piles near worst case.
	if ares.DroopEvents <= z.DroopEvents {
		t.Errorf("A-Res droop events %d should exceed zeusmp %d", ares.DroopEvents, z.DroopEvents)
	}
	// A-Res's low-voltage mass: the 5th-percentile voltage is much
	// lower than zeusmp's.
	if ares.Hist.Quantile(0.05) >= z.Hist.Quantile(0.05) {
		t.Errorf("A-Res p5 %.4f should sit below zeusmp p5 %.4f",
			ares.Hist.Quantile(0.05), z.Hist.Quantile(0.05))
	}
}

// histSpread is the occupied voltage range of the distribution (first
// to last non-empty bin) — the width of the Fig. 10 histogram.
func histSpread(r Fig10Result) float64 {
	lo, hi := -1, -1
	for i, c := range r.Hist.Counts {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo < 0 {
		return 0
	}
	return r.Hist.BinCenter(hi) - r.Hist.BinCenter(lo)
}

func TestTable1FailureOrdering(t *testing.T) {
	rows, err := lab.Table1()
	if err != nil {
		t.Fatal(err)
	}
	vf := map[string]float64{}
	droop := map[string]float64{}
	for _, r := range rows {
		vf[r.Name] = r.VFail
		droop[r.Name] = r.DroopV
	}
	// A-Res fails at the highest voltage.
	for name, v := range vf {
		if name == "A-Res" {
			continue
		}
		if v > vf["A-Res"] {
			t.Errorf("%s fails at %.4f V, above A-Res %.4f V", name, v, vf["A-Res"])
		}
	}
	// Stressmarks (incl. SM2) fail above the standard benchmarks.
	for _, sm := range []string{"A-Res", "SM-Res", "SM1", "A-Ex", "SM2"} {
		for _, bm := range []string{"zeusmp", "swaptions"} {
			if vf[sm] < vf[bm] {
				t.Errorf("%s (%.4f V) should fail at or above benchmark %s (%.4f V)", sm, vf[sm], bm, vf[bm])
			}
		}
	}
	// The §5.A.4 decoupling: SM2's droop is benchmark-class yet its
	// failure point is clearly higher than the benchmarks'.
	if droop["SM2"] > 1.5*droop["zeusmp"] {
		t.Errorf("SM2 droop %.4f should be benchmark-class (zeusmp %.4f)", droop["SM2"], droop["zeusmp"])
	}
	if vf["SM2"] <= vf["zeusmp"] {
		t.Errorf("SM2 VF %.4f should exceed zeusmp VF %.4f despite similar droop", vf["SM2"], vf["zeusmp"])
	}
	// Resonant marks fail at or near the top. Our generated A-Ex can
	// tie A-Res by incidentally exercising the divider's sensitive path
	// (the paper's A-Ex did not), so allow SM-Res to trail A-Ex by at
	// most one 12.5 mV measurement step — see EXPERIMENTS.md.
	if vf["SM-Res"] < vf["A-Ex"]-1.01*FailureStepV {
		t.Errorf("SM-Res VF %.4f more than one step below A-Ex VF %.4f", vf["SM-Res"], vf["A-Ex"])
	}
}

func TestTable2ThrottlingShape(t *testing.T) {
	rows, err := lab.Table2()
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		name      string
		throttled bool
	}
	m := map[key]Table2Row{}
	for _, r := range rows {
		m[key{r.Name, r.Throttled}] = r
	}
	// Throttling cuts every mark's droop.
	for _, name := range []string{"SM1", "A-Res", "SM-Res"} {
		off := m[key{name, false}]
		on := m[key{name, true}]
		if on.DroopV >= off.DroopV {
			t.Errorf("%s: throttled droop %.4f should be below unthrottled %.4f",
				name, on.DroopV, off.DroopV)
		}
		if on.VFail > off.VFail {
			t.Errorf("%s: throttling should not raise the failure voltage (%.4f → %.4f)",
				name, off.VFail, on.VFail)
		}
	}
	// The resonant FP-heavy marks lose proportionally more than SM1
	// (Table 2: A-Res 1.39→0.86, SM-Res 1.25→0.78, SM1 1→0.93).
	cut := func(name string) float64 {
		return m[key{name, true}].DroopV / m[key{name, false}].DroopV
	}
	if !(cut("A-Res") < cut("SM1")) {
		t.Errorf("throttling should hit A-Res (×%.2f) harder than SM1 (×%.2f)",
			cut("A-Res"), cut("SM1"))
	}
	// A-Res-Th recovers droop under throttling: beats throttled A-Res.
	if m[key{"A-Res-Th", true}].DroopV <= m[key{"A-Res", true}].DroopV {
		t.Errorf("A-Res-Th (%.4f) should beat throttled A-Res (%.4f)",
			m[key{"A-Res-Th", true}].DroopV, m[key{"A-Res", true}].DroopV)
	}
	// ...but cannot match unthrottled A-Res.
	if m[key{"A-Res-Th", true}].DroopV >= m[key{"A-Res", false}].DroopV {
		t.Errorf("A-Res-Th (%.4f) should not reach unthrottled A-Res (%.4f)",
			m[key{"A-Res-Th", true}].DroopV, m[key{"A-Res", false}].DroopV)
	}
}

func TestTable3PhenomShape(t *testing.T) {
	rows, err := lab.Table3()
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]Table3Row{}
	for _, r := range rows {
		m[r.Name] = r
	}
	if !m["SM1"].Incompatible {
		t.Error("SM1 should be incompatible with the Phenom-style chip")
	}
	// Table 3 ordering: A-Res > SM2 > zeusmp in droop.
	if !(m["A-Res"].RelDroop > 1.0) {
		t.Errorf("Phenom A-Res rel droop %.2f should exceed SM2 (1.0)", m["A-Res"].RelDroop)
	}
	if !(m["zeusmp"].RelDroop < 1.0) {
		t.Errorf("Phenom zeusmp rel droop %.2f should trail SM2", m["zeusmp"].RelDroop)
	}
	// Failure: A-Res fails at least as high as SM2; zeusmp lower.
	if m["A-Res"].VFail < m["SM2"].VFail {
		t.Errorf("Phenom A-Res VF %.4f below SM2 %.4f", m["A-Res"].VFail, m["SM2"].VFail)
	}
	if m["zeusmp"].VFail > m["SM2"].VFail {
		t.Errorf("Phenom zeusmp VF %.4f above SM2 %.4f", m["zeusmp"].VFail, m["SM2"].VFail)
	}
}

func TestDitherCostPaperNumbers(t *testing.T) {
	rows := lab.DitherCost()
	get := func(cores, delta int) float64 {
		for _, r := range rows {
			if r.Cores == cores && r.Delta == delta {
				return r.Seconds
			}
		}
		t.Fatalf("missing row %d/%d", cores, delta)
		return 0
	}
	if v := get(4, 0); math.Abs(v-3.3e-3)/3.3e-3 > 0.02 {
		t.Errorf("4-core exact = %v s, want 3.3 ms", v)
	}
	if v := get(8, 0); math.Abs(v-1101)/1101 > 0.02 {
		t.Errorf("8-core exact = %v s, want ≈ 18.35 min", v)
	}
	if v := get(8, 3); math.Abs(v-67e-3)/67e-3 > 0.05 {
		t.Errorf("8-core δ=3 = %v s, want 67 ms", v)
	}
}

func TestDitherDemoRecoversAlignment(t *testing.T) {
	res, err := lab.DitherDemo()
	if err != nil {
		t.Fatal(err)
	}
	if res.MisalignedDroopV >= 0.9*res.AlignedDroopV {
		t.Errorf("misaligned droop %.4f not clearly below aligned %.4f",
			res.MisalignedDroopV, res.AlignedDroopV)
	}
	if res.DitheredDroopV < 0.85*res.AlignedDroopV {
		t.Errorf("dithered droop %.4f failed to recover alignment (aligned %.4f)",
			res.DitheredDroopV, res.AlignedDroopV)
	}
}

func TestHierarchicalBeatsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("two full GA runs")
	}
	res, err := lab.HierarchicalVsFlat()
	if err != nil {
		t.Fatal(err)
	}
	if res.HierEvals != res.FlatEvals {
		t.Fatalf("budgets differ: %d vs %d", res.HierEvals, res.FlatEvals)
	}
	// §3.C: sub-blocking reached a 19% higher droop; require a clear
	// win at equal budget.
	if res.HierDroopV <= res.FlatDroopV {
		t.Errorf("hierarchical droop %.4f should beat flat %.4f at equal budget",
			res.HierDroopV, res.FlatDroopV)
	}
}

func TestNOPAblation(t *testing.T) {
	res, err := lab.NOPAblation()
	if err != nil {
		t.Fatal(err)
	}
	if res.NopSlots == 0 {
		t.Fatal("A-Res has no NOPs in its HP region")
	}
	// §5.A.5: the ADD-substituted variant droops less…
	if res.ModifiedDroopV >= res.OriginalDroopV {
		t.Errorf("NOP→ADD droop %.4f should fall below original %.4f",
			res.ModifiedDroopV, res.OriginalDroopV)
	}
	// …and its di/dt pattern shifts below the resonance frequency.
	if res.ModifiedFreqHz >= res.OriginalFreqHz {
		t.Errorf("NOP→ADD frequency %.1f MHz should shift below original %.1f MHz",
			res.ModifiedFreqHz/1e6, res.OriginalFreqHz/1e6)
	}
}

func TestBarrierReleaseSkewDampens(t *testing.T) {
	res, err := lab.Barrier()
	if err != nil {
		t.Fatal(err)
	}
	// §5.A.1: "The resulting droop, however, was not significant" —
	// the barrier version clearly trails ideal alignment.
	if res.BarrierDroopV >= 0.95*res.AlignedDroopV {
		t.Errorf("barrier droop %.4f not dampened vs aligned %.4f",
			res.BarrierDroopV, res.AlignedDroopV)
	}
}

func TestFaultRobustnessConvergesNearClean(t *testing.T) {
	res, err := lab.FaultRobustness()
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected.Runs == 0 || res.Injected.Transients == 0 {
		t.Fatalf("fault model never fired: %+v", res.Injected)
	}
	if res.Retries == 0 {
		t.Error("faulted search recorded no retries")
	}
	if res.FaultyDroopV <= 0 {
		t.Fatal("fault-injected search found no droop")
	}
	// The paper's closed loop converged against real lab nuisances; the
	// resilient search should land within a modest margin of the clean
	// one (the 15% bound is loose — typical runs land within a few
	// percent — but keeps the assertion robust to GA-budget noise).
	if res.DeltaPct > 15 {
		t.Errorf("faults cost %.1f%% of droop; search did not converge near clean", res.DeltaPct)
	}
}
