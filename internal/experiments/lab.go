// Package experiments reproduces every table and figure of the paper's
// evaluation on the simulated testbed. Each experiment is a method on
// Lab, returns structured results (so tests can assert the paper's
// qualitative shape), and is rendered by the root benchmark harness
// into the same rows/series the paper reports. Generated stressmarks
// (A-Ex, A-Res, A-Res-8T, A-Res-Th, and the Phenom A-Res) are cached
// per Lab so one AUDIT run feeds all the experiments that use it, just
// as the paper generates each mark once and measures it everywhere.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/testbed"
	"repro/internal/workloads"
)

// Lab bundles the two platforms, run-scale knobs and the stressmark
// cache. The zero value is not usable; call NewLab.
type Lab struct {
	BD testbed.Platform // primary: Bulldozer-style
	PH testbed.Platform // secondary: Phenom-II-style (§5.C)

	// MeasureCycles/WarmupCycles are the per-measurement run lengths.
	// Lab-scale defaults keep a full evaluation under a few minutes;
	// the physical experiments ran for seconds-to-hours of wall clock,
	// so all cycle counts here are scaled (see EXPERIMENTS.md).
	MeasureCycles uint64
	WarmupCycles  uint64
	// FailFloor bounds voltage-at-failure searches.
	FailFloor float64
	// GA is the search budget for generated stressmarks.
	GA ga.Config

	mu    sync.Mutex
	marks map[string]*core.Stressmark
	loops map[string]int
}

// NewLab returns a lab with deterministic default settings.
func NewLab() *Lab {
	return &Lab{
		BD:            testbed.Bulldozer(),
		PH:            testbed.Phenom(),
		MeasureCycles: 22000,
		WarmupCycles:  3000,
		FailFloor:     0.95,
		GA: ga.Config{
			PopSize:        14,
			Elites:         2,
			TournamentK:    3,
			MutationProb:   0.6,
			MaxGenerations: 14,
			StagnantLimit:  6,
			Seed:           1007,
			// Fitness evaluations are independent simulator runs;
			// results are bit-identical to a serial campaign.
			Parallel: 4,
		},
		marks: map[string]*core.Stressmark{},
		loops: map[string]int{},
	}
}

// LoopCycles returns (and caches) the detected resonant loop length for
// a platform, via AUDIT's sweep.
func (l *Lab) LoopCycles(p testbed.Platform) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if v, ok := l.loops[p.Chip.Name]; ok {
		return v, nil
	}
	sweep := core.ResonanceSweep{Platform: p}
	_, best, err := sweep.Run(16, 64, 4)
	if err != nil {
		return 0, err
	}
	l.loops[p.Chip.Name] = best.LoopCycles
	return best.LoopCycles, nil
}

// mark generates (once) a named stressmark.
func (l *Lab) mark(key string, gen func() (*core.Stressmark, error)) (*core.Stressmark, error) {
	l.mu.Lock()
	if sm, ok := l.marks[key]; ok {
		l.mu.Unlock()
		return sm, nil
	}
	l.mu.Unlock()
	sm, err := gen()
	if err != nil {
		return nil, fmt.Errorf("experiments: generating %s: %w", key, err)
	}
	l.mu.Lock()
	l.marks[key] = sm
	l.mu.Unlock()
	return sm, nil
}

// ARes is the 4T resonant AUDIT stressmark on the primary platform.
func (l *Lab) ARes() (*core.Stressmark, error) {
	loop, err := l.LoopCycles(l.BD)
	if err != nil {
		return nil, err
	}
	return l.mark("a-res", func() (*core.Stressmark, error) {
		return core.Generate(context.Background(), core.Options{
			Platform: l.BD, LoopCycles: loop, Threads: 4,
			Mode: core.Resonance, GA: l.GA, Seed: 11, Name: "A-Res",
		})
	})
}

// AEx is the 4T excitation AUDIT stressmark.
func (l *Lab) AEx() (*core.Stressmark, error) {
	loop, err := l.LoopCycles(l.BD)
	if err != nil {
		return nil, err
	}
	return l.mark("a-ex", func() (*core.Stressmark, error) {
		return core.Generate(context.Background(), core.Options{
			Platform: l.BD, LoopCycles: loop, Threads: 4,
			Mode: core.Excitation, GA: l.GA, Seed: 13, Name: "A-Ex",
		})
	})
}

// ARes8T is A-Res retrained with eight homogeneous threads (two per
// module), the §5.A.2 response to the shared-FPU interference.
func (l *Lab) ARes8T() (*core.Stressmark, error) {
	loop, err := l.LoopCycles(l.BD)
	if err != nil {
		return nil, err
	}
	return l.mark("a-res-8t", func() (*core.Stressmark, error) {
		return core.Generate(context.Background(), core.Options{
			Platform: l.BD, LoopCycles: loop, Threads: 8,
			Mode: core.Resonance, GA: l.GA, Seed: 17, Name: "A-Res-8T",
		})
	})
}

// AResTh is A-Res retrained with FPU throttling enabled (Table 2).
func (l *Lab) AResTh() (*core.Stressmark, error) {
	loop, err := l.LoopCycles(l.BD)
	if err != nil {
		return nil, err
	}
	return l.mark("a-res-th", func() (*core.Stressmark, error) {
		return core.Generate(context.Background(), core.Options{
			Platform: l.BD, LoopCycles: loop, Threads: 4, FPThrottle: 1,
			Mode: core.Resonance, GA: l.GA, Seed: 19, Name: "A-Res-Th",
		})
	})
}

// AResPhenom is A-Res regenerated for the Phenom-style platform (§5.C):
// new resonance sweep, FMA-less opcode list, different power profile.
func (l *Lab) AResPhenom() (*core.Stressmark, error) {
	loop, err := l.LoopCycles(l.PH)
	if err != nil {
		return nil, err
	}
	return l.mark("a-res-phenom", func() (*core.Stressmark, error) {
		return core.Generate(context.Background(), core.Options{
			Platform: l.PH, LoopCycles: loop, Threads: 4,
			Mode: core.Resonance, GA: l.GA, Seed: 23, Name: "A-Res-PH",
		})
	})
}

// measure runs a program at the given thread count on a platform with
// the lab's default run scale.
func (l *Lab) measure(p testbed.Platform, prog *asm.Program, threads int, adjust func(*testbed.RunConfig)) (*testbed.Measurement, error) {
	specs, err := testbed.SpreadPlacement(p.Chip, prog, threads)
	if err != nil {
		return nil, err
	}
	rc := testbed.RunConfig{
		Threads:      specs,
		MaxCycles:    l.WarmupCycles + l.MeasureCycles,
		WarmupCycles: l.WarmupCycles,
	}
	if adjust != nil {
		adjust(&rc)
	}
	return p.Run(rc)
}

// droop is measure() reduced to the worst droop.
func (l *Lab) droop(p testbed.Platform, prog *asm.Program, threads int) (float64, error) {
	m, err := l.measure(p, prog, threads, nil)
	if err != nil {
		return 0, err
	}
	return m.MaxDroopV, nil
}

// failureVoltage runs the paper's 12.5 mV-step procedure.
func (l *Lab) failureVoltage(p testbed.Platform, prog *asm.Program, threads int, throttle int) (float64, error) {
	specs, err := testbed.SpreadPlacement(p.Chip, prog, threads)
	if err != nil {
		return 0, err
	}
	rc := testbed.RunConfig{
		Threads:      specs,
		MaxCycles:    l.WarmupCycles + l.MeasureCycles,
		WarmupCycles: l.WarmupCycles,
		FPThrottle:   throttle,
	}
	v, ok, err := p.FindFailureVoltage(rc, l.FailFloor)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("experiments: %s never failed above %.3f V", prog.Name, l.FailFloor)
	}
	return v, nil
}

// smRef returns the 4T SM1 droop, the Fig. 9/Table 2 reference.
func (l *Lab) smRef() (float64, error) {
	l.mu.Lock()
	cached, ok := l.marks["__smref"]
	l.mu.Unlock()
	if ok {
		return cached.DroopV, nil
	}
	d, err := l.droop(l.BD, workloads.SM1(workloads.DefaultLoopCycles), 4)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.marks["__smref"] = &core.Stressmark{DroopV: d}
	l.mu.Unlock()
	return d, nil
}

// FailureStepV re-exports the paper's 12.5 mV failure-search decrement.
const FailureStepV = testbed.FailureStep

// resonancePeriod returns the analytic first-droop period in cycles.
func resonancePeriod(p testbed.Platform) int {
	return int(math.Round(p.Chip.ClockHz / p.PDN.FirstDroopNominal()))
}
