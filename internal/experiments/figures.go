package experiments

import (
	"fmt"
	"math"

	"repro/internal/asm"
	"repro/internal/hostos"
	"repro/internal/pdn"
	"repro/internal/scope"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// ---- Fig. 3: PDN resonances in frequency and time domain ----

// Fig3Result holds the impedance sweep and step-response waveform.
type Fig3Result struct {
	Freqs []float64
	ZOhms []float64
	Peaks []pdn.ResonancePeak
	// StepWave is the die-voltage response to a current step,
	// exhibiting the first-droop ring.
	StepWave []float64
	Dt       float64
}

// Fig3 sweeps the primary PDN's impedance from 3 kHz to 1 GHz and
// records the transient response to a 15 A load step.
func (l *Lab) Fig3() (*Fig3Result, error) {
	cfg := l.BD.PDN
	freqs := pdn.LogSpace(3e3, 1e9, 600)
	z, err := pdn.Impedance(cfg, freqs)
	if err != nil {
		return nil, err
	}
	peaks, err := pdn.FindResonances(cfg, 3e3, 1e9, 1200)
	if err != nil {
		return nil, err
	}
	dt := l.BD.Chip.CycleSeconds()
	n := 40 * resonancePeriod(l.BD)
	cur := make([]float64, n)
	for i := n / 4; i < n; i++ {
		cur[i] = 15
	}
	wave, err := pdn.SimulateTrace(cfg, dt, cur)
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Freqs: freqs, ZOhms: z, Peaks: peaks, StepWave: wave, Dt: dt}, nil
}

// ---- Fig. 4: first droop excitation vs first droop resonance ----

// Fig4Result compares the two stress shapes.
type Fig4Result struct {
	ExcitationWave   []float64
	ResonanceWave    []float64
	ExcitationDroopV float64
	ResonanceDroopV  float64
	Nominal          float64
}

// Fig4 runs a single low→high activity step and a resonant loop on the
// full testbed and captures both waveforms.
func (l *Lab) Fig4() (*Fig4Result, error) {
	period := resonancePeriod(l.BD)
	// Excitation: a long-period loop — 5 periods idle, 3 periods of
	// maximum power — so each onset is an isolated step.
	exc := workloads.SM1(period) // SM1's section A is exactly this shape
	res := workloads.SMRes(period)
	out := &Fig4Result{Nominal: l.BD.Nominal()}
	mE, err := l.measure(l.BD, exc, 4, func(rc *testbed.RunConfig) { rc.RecordWaveform = true })
	if err != nil {
		return nil, err
	}
	mR, err := l.measure(l.BD, res, 4, func(rc *testbed.RunConfig) { rc.RecordWaveform = true })
	if err != nil {
		return nil, err
	}
	out.ExcitationWave, out.ExcitationDroopV = mE.Waveform, mE.MaxDroopV
	out.ResonanceWave, out.ResonanceDroopV = mR.Waveform, mR.MaxDroopV
	return out, nil
}

// ---- Fig. 6: natural dithering from OS interaction ----

// Fig6Result captures Vdd variability across OS-tick windows.
type Fig6Result struct {
	// WindowMinV is the minimum die voltage within each tick window.
	WindowMinV []float64
	// WindowDroopV is nominal − WindowMinV.
	WindowDroopV []float64
	// Spread is max(WindowDroopV) − min(WindowDroopV): how much thread
	// (mis)alignment changes the droop across windows.
	Spread float64
	// BestWindowDroopV is the natural-dithering best case.
	BestWindowDroopV float64
	Ticks            uint64
}

// Fig6 runs the 4T resonant stressmark with OS timer-tick interference
// and random start skews. On the paper's machine the 16 ms Windows tick
// re-phases threads so the droop envelope changes at tick boundaries;
// the tick period here is scaled (§EXPERIMENTS.md) but stays ≫ the loop
// period, preserving the phenomenon.
func (l *Lab) Fig6() (*Fig6Result, error) {
	period := resonancePeriod(l.BD)
	prog := workloads.SMRes(period)
	const (
		tickPeriod = 30000
		windows    = 14
	)
	sched, err := hostos.New(l.BD.Chip.Threads(), tickPeriod, 350, 900, 77)
	if err != nil {
		return nil, err
	}
	skews := hostos.StartSkews(4, uint64(period), 99)
	specs, err := testbed.SpreadPlacement(l.BD.Chip, prog, 4)
	if err != nil {
		return nil, err
	}
	for i := range specs {
		specs[i].StartSkew = skews[i]
	}
	total := uint64(tickPeriod * windows)
	m, err := l.BD.Run(testbed.RunConfig{
		Threads:        specs,
		MaxCycles:      total,
		WarmupCycles:   2000,
		OS:             sched,
		RecordWaveform: true,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Ticks: sched.Ticks()}
	mins := trace.MovingMin(m.Waveform, tickPeriod)
	nom := l.BD.Nominal()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range mins {
		d := nom - v
		res.WindowMinV = append(res.WindowMinV, v)
		res.WindowDroopV = append(res.WindowDroopV, d)
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	res.Spread = hi - lo
	res.BestWindowDroopV = hi
	return res, nil
}

// ---- Fig. 9: droops relative to 4T SM1 ----

// Fig9Row is one benchmark/stressmark across thread counts.
type Fig9Row struct {
	Name  string
	Suite string
	// DroopV and Rel are keyed by thread count (1, 2, 4, 8).
	DroopV map[int]float64
	Rel    map[int]float64
}

// ThreadCounts are the paper's run configurations.
var ThreadCounts = []int{1, 2, 4, 8}

// Fig9Benchmarks measures the SPEC and PARSEC kernels at 1/2/4/8
// threads, relative to 4T SM1 (Fig. 9a).
func (l *Lab) Fig9Benchmarks() ([]Fig9Row, float64, error) {
	ref, err := l.smRef()
	if err != nil {
		return nil, 0, err
	}
	var rows []Fig9Row
	for _, w := range workloads.All() {
		row := Fig9Row{Name: w.Name, Suite: w.Suite, DroopV: map[int]float64{}, Rel: map[int]float64{}}
		for _, n := range ThreadCounts {
			d, err := l.droop(l.BD, w.Program, n)
			if err != nil {
				return nil, 0, fmt.Errorf("%s %dT: %w", w.Name, n, err)
			}
			row.DroopV[n] = d
			row.Rel[n] = d / ref
		}
		rows = append(rows, row)
	}
	return rows, ref, nil
}

// Fig9Stressmarks measures SM1, SM2, SM-Res and the AUDIT marks at
// 1/2/4/8 threads, relative to 4T SM1 (Fig. 9b).
func (l *Lab) Fig9Stressmarks() ([]Fig9Row, float64, error) {
	ref, err := l.smRef()
	if err != nil {
		return nil, 0, err
	}
	period := workloads.DefaultLoopCycles
	aRes, err := l.ARes()
	if err != nil {
		return nil, 0, err
	}
	aEx, err := l.AEx()
	if err != nil {
		return nil, 0, err
	}
	aRes8T, err := l.ARes8T()
	if err != nil {
		return nil, 0, err
	}
	progs := []struct {
		name string
		p    *asm.Program
	}{
		{"SM1", workloads.SM1(period)},
		{"SM2", workloads.SM2(period)},
		{"SM-Res", workloads.SMRes(period)},
		{"A-Ex", aEx.Program},
		{"A-Res", aRes.Program},
		{"A-Res-8T", aRes8T.Program},
	}
	var rows []Fig9Row
	for _, e := range progs {
		row := Fig9Row{Name: e.name, Suite: "SM", DroopV: map[int]float64{}, Rel: map[int]float64{}}
		for _, n := range ThreadCounts {
			d, err := l.droop(l.BD, e.p, n)
			if err != nil {
				return nil, 0, fmt.Errorf("%s %dT: %w", e.name, n, err)
			}
			row.DroopV[n] = d
			row.Rel[n] = d / ref
		}
		rows = append(rows, row)
	}
	return rows, ref, nil
}

// ---- Fig. 10: Vdd histograms ----

// Fig10Result is one program's voltage distribution.
type Fig10Result struct {
	Name string
	Hist *scope.Histogram
	// DroopEvents counts triggered excursions below nominal−threshold.
	DroopEvents int
	MaxDroopV   float64
}

// Fig10 collects Vdd histograms for zeusmp, SM1 and A-Res (4T). The
// paper's plots hold 8 M scope samples; the lab default covers every
// simulated cycle of a scaled run.
func (l *Lab) Fig10() ([]Fig10Result, error) {
	period := workloads.DefaultLoopCycles
	zeusmp, err := workloads.ByName("zeusmp")
	if err != nil {
		return nil, err
	}
	aRes, err := l.ARes()
	if err != nil {
		return nil, err
	}
	progs := []struct {
		name string
		p    *asm.Program
	}{
		{"zeusmp", zeusmp.Program},
		{"SM1", workloads.SM1(period)},
		{"A-Res", aRes.Program},
	}
	nom := l.BD.Nominal()
	var out []Fig10Result
	for _, e := range progs {
		h, err := scope.NewHistogram(nom-0.20, nom+0.12, 160)
		if err != nil {
			return nil, err
		}
		m, err := l.measure(l.BD, e.p, 4, func(rc *testbed.RunConfig) {
			rc.MaxCycles = l.WarmupCycles + 8*l.MeasureCycles
			rc.Histogram = h
			rc.TriggerThreshold = nom - 0.025
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig10Result{Name: e.name, Hist: h, DroopEvents: m.DroopEvents, MaxDroopV: m.MaxDroopV})
	}
	return out, nil
}
