package experiments

import "testing"

func TestDataToggleImpact(t *testing.T) {
	res, err := lab.DataToggle()
	if err != nil {
		t.Fatal(err)
	}
	// §3: data values move the droop "on the order of 10%": require a
	// measurable effect in the right direction, within a loose band.
	if res.ConstantDroopV >= res.ToggledDroopV {
		t.Errorf("constant operands (%.4f) should droop less than toggled (%.4f)",
			res.ConstantDroopV, res.ToggledDroopV)
	}
	if res.ImpactPct < 2 || res.ImpactPct > 40 {
		t.Errorf("toggle impact %.1f%% outside the plausible band around the paper's ~10%%", res.ImpactPct)
	}
}

func TestLPRegionNopsComparable(t *testing.T) {
	res, err := lab.LPRegion()
	if err != nil {
		t.Fatal(err)
	}
	// §3.C: NOPs and dependent long-latency ops are comparable for the
	// LP region, with NOPs at least as good on this machine.
	if res.DepOpDroopV > res.NopDroopV*1.05 {
		t.Errorf("dependent-op LP (%.4f) should not beat NOP LP (%.4f)",
			res.DepOpDroopV, res.NopDroopV)
	}
	if res.DepOpDroopV < res.NopDroopV*0.7 {
		t.Errorf("dependent-op LP (%.4f) should be comparable to NOP LP (%.4f), not collapsed",
			res.DepOpDroopV, res.NopDroopV)
	}
}

func TestLoadLineInflatesDroop(t *testing.T) {
	res, err := lab.LoadLine()
	if err != nil {
		t.Fatal(err)
	}
	if res.OnDroopV <= res.OffDroopV {
		t.Errorf("load line should inflate measured droop: on %.4f vs off %.4f",
			res.OnDroopV, res.OffDroopV)
	}
	// The extra term is an IR product of the ~1 mΩ slope and tens of
	// amps of average current: several millivolts.
	if res.ExtraMV < 2 || res.ExtraMV > 60 {
		t.Errorf("load-line inflation %.1f mV implausible", res.ExtraMV)
	}
}

func TestDitherQualityDegradesGracefully(t *testing.T) {
	res, err := lab.DitherQuality(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ApproxDroopV > res.ExactDroopV {
		t.Errorf("δ-granular alignment (%.4f) cannot beat exact (%.4f)",
			res.ApproxDroopV, res.ExactDroopV)
	}
	// δ=3 on a 36-cycle loop is a ~6% phase error: the droop loss must
	// be modest — that is what makes the approximate algorithm usable.
	if res.LossPct > 30 {
		t.Errorf("δ=3 costs %.1f%% droop — too much for the approximation to be useful", res.LossPct)
	}
}

func TestPredictorAblation(t *testing.T) {
	res, err := lab.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	if res.GshareMispredicts >= res.StaticMispredicts {
		t.Errorf("gshare mispredicts %d should be below static %d",
			res.GshareMispredicts, res.StaticMispredicts)
	}
	// Fewer mispredict stalls → steadier activity → no larger droop.
	if res.GshareDroopV > res.StaticDroopV*1.05 {
		t.Errorf("gshare droop %.4f should not exceed static %.4f",
			res.GshareDroopV, res.StaticDroopV)
	}
}

func TestCoScheduling(t *testing.T) {
	res, err := lab.CoSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if res.MixedDroopV >= res.TwoFPDroopV {
		t.Errorf("noise-aware pairing (%.4f) should droop less than two resonant threads (%.4f)",
			res.MixedDroopV, res.TwoFPDroopV)
	}
}

func TestOperatingPointsTrackThePhysics(t *testing.T) {
	rows, err := lab.OperatingPoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		rel := (r.DetectedHz - r.FirstDroopHz) / r.FirstDroopHz
		if rel < -0.25 || rel > 0.25 {
			t.Errorf("%s: detected %.1f MHz vs physical %.1f MHz (off %.0f%%)",
				r.Name, r.DetectedHz/1e6, r.FirstDroopHz/1e6, rel*100)
		}
	}
	// The DVFS point keeps the PDN but slows the clock: the detected
	// loop must shorten proportionally (same Hz, fewer cycles).
	if !(rows[1].DetectedLoop < rows[0].DetectedLoop) {
		t.Errorf("2.4 GHz loop (%d) should be shorter than 3.6 GHz loop (%d) in cycles",
			rows[1].DetectedLoop, rows[0].DetectedLoop)
	}
	// The server board keeps the clock but moves the resonance down:
	// the loop must lengthen.
	if !(rows[2].DetectedLoop > rows[0].DetectedLoop) {
		t.Errorf("server-board loop (%d) should be longer than stock (%d)",
			rows[2].DetectedLoop, rows[0].DetectedLoop)
	}
}

func TestHetero8TCompetitive(t *testing.T) {
	if testing.Short() {
		t.Skip("two GA runs")
	}
	res, err := lab.Hetero8T()
	if err != nil {
		t.Fatal(err)
	}
	// The heterogeneous mark must at least be competitive with the
	// homogeneous 8T mark; with the complementary seed it usually wins.
	if res.HeteroDroopV < 0.9*res.HomoDroopV {
		t.Errorf("hetero 8T droop %.4f well below homogeneous %.4f",
			res.HeteroDroopV, res.HomoDroopV)
	}
}
