package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/testbed"
)

// FaultRobustnessResult is the lab-nuisance ablation: the same AUDIT
// search run on a clean testbed and on one with injected lab faults
// (lost captures, scope noise, launch skew, VRM drift, throttling
// episodes), with both winners re-measured on the clean testbed so the
// comparison isolates what the faults did to the *search*, not to the
// final measurement.
type FaultRobustnessResult struct {
	// CleanDroopV is the clean-search winner's droop, measured clean.
	CleanDroopV float64
	// FaultyDroopV is the fault-injected search's winner, re-measured
	// clean.
	FaultyDroopV float64
	// DeltaPct is how much search quality the faults cost,
	// (clean-faulty)/clean. The paper ran its closed loop against real
	// silicon with all of these nuisances live and still converged; the
	// reproduction should show the same — a few percent, not a
	// collapse.
	DeltaPct float64
	// TransientRate is the injected loss rate.
	TransientRate float64
	// Injected is what the fault model actually did.
	Injected faults.Stats
	// Retries, TimedOut and Degraded are the resilient evaluator's
	// counters for the faulted search.
	Retries, TimedOut, Degraded int
}

// FaultRobustness reruns the A-Res generation under the default lab
// fault model (10% transient losses plus noise, skew, drift and
// throttling) with the GA's retry/degradation policy enabled, and
// compares against the cached clean A-Res.
func (l *Lab) FaultRobustness() (*FaultRobustnessResult, error) {
	clean, err := l.ARes()
	if err != nil {
		return nil, err
	}
	loop, err := l.LoopCycles(l.BD)
	if err != nil {
		return nil, err
	}
	fc := faults.Lab(11)
	cfg := l.GA
	cfg.MaxRetries = 4
	cfg.DegradeFailures = true
	var injector *faults.Injector
	faulty, err := core.Generate(context.Background(), core.Options{
		Platform: l.BD, LoopCycles: loop, Threads: 4,
		Mode: core.Resonance, GA: cfg, Seed: 11, Name: "A-Res-lab",
		WrapRunner: func(r testbed.Runner) testbed.Runner {
			injector = faults.MustNew(fc, r)
			return injector
		},
	})
	if err != nil {
		return nil, err
	}

	cleanD, err := l.droop(l.BD, clean.Program, 4)
	if err != nil {
		return nil, err
	}
	faultyD, err := l.droop(l.BD, faulty.Program, 4)
	if err != nil {
		return nil, err
	}
	res := &FaultRobustnessResult{
		CleanDroopV:   cleanD,
		FaultyDroopV:  faultyD,
		TransientRate: fc.TransientRate,
		Injected:      injector.Stats(),
		Retries:       faulty.Search.Retries,
		TimedOut:      faulty.Search.TimedOut,
		Degraded:      faulty.Search.Degraded,
	}
	if cleanD > 0 {
		res.DeltaPct = (1 - faultyD/cleanD) * 100
	}
	return res, nil
}
