package core

import (
	"context"
	"fmt"

	"repro/internal/testbed"
)

// SuiteScenario names one usage configuration a stressmark should
// cover. §5.A.6: "a stressmark that works well for one configuration
// (such as A-Res for 4T runs) may not produce the best results for
// other configurations. AUDIT's flexibility and ease of use can be
// leveraged to develop a suite of stressmarks that can effectively
// exercise all significant usage scenarios in the system."
type SuiteScenario struct {
	Name       string
	Threads    int
	Mode       Mode
	FPThrottle int
}

// DefaultSuite returns the scenarios the paper's evaluation implies:
// per-thread-count resonant marks, an excitation mark, and a
// throttled-configuration mark.
func DefaultSuite(p testbed.Platform) []SuiteScenario {
	modules := p.Chip.Modules
	all := p.Chip.Threads()
	scenarios := []SuiteScenario{
		{Name: "res-1t", Threads: 1, Mode: Resonance},
		{Name: fmt.Sprintf("res-%dt", modules), Threads: modules, Mode: Resonance},
		{Name: fmt.Sprintf("ex-%dt", modules), Threads: modules, Mode: Excitation},
		{Name: fmt.Sprintf("res-%dt-throttled", modules), Threads: modules, Mode: Resonance, FPThrottle: 1},
	}
	if all > modules {
		scenarios = append(scenarios, SuiteScenario{
			Name: fmt.Sprintf("res-%dt", all), Threads: all, Mode: Resonance,
		})
	}
	return scenarios
}

// GenerateSuite runs AUDIT once per scenario, sharing the platform's
// detected loop length, and returns the marks in scenario order. base
// supplies the GA budget and seeds; each scenario's seed is offset so
// the searches are independent but reproducible.
func GenerateSuite(ctx context.Context, p testbed.Platform, scenarios []SuiteScenario, base Options) ([]*Stressmark, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("core: empty suite")
	}
	loop := base.LoopCycles
	if loop == 0 {
		sweep := ResonanceSweep{Platform: p}
		_, best, err := sweep.Run(16, 64, 4)
		if err != nil {
			return nil, fmt.Errorf("core: suite resonance sweep: %w", err)
		}
		loop = best.LoopCycles
	}
	var out []*Stressmark
	for i, sc := range scenarios {
		opt := base
		opt.Platform = p
		opt.LoopCycles = loop
		opt.Threads = sc.Threads
		opt.Mode = sc.Mode
		opt.FPThrottle = sc.FPThrottle
		opt.Name = sc.Name
		opt.Seed = base.Seed + int64(i)*101
		opt.GA.Seed = opt.Seed + 1
		sm, err := Generate(ctx, opt)
		if err != nil {
			return nil, fmt.Errorf("core: suite scenario %s: %w", sc.Name, err)
		}
		out = append(out, sm)
	}
	return out, nil
}
