package core

import (
	"fmt"
	"math"

	"repro/internal/testbed"
)

// DitherPlan schedules the NOP padding that sweeps all relative thread
// alignments (§3.B). Core 0 is the reference and receives no padding;
// core c (1 ≤ c < C) receives Pad cycles of padding every Period(c)
// cycles, so over the sweep every point of the alignment lattice is
// visited for at least M cycles.
type DitherPlan struct {
	// Specs is ready to hand to testbed.RunConfig.Dither.
	Specs []testbed.DitherSpec
	// SweepCycles is the worst-case cycle count to visit every
	// alignment: M×k^(C-1) (k = L+H exact; k = (L+H)/(δ+1) approximate).
	SweepCycles float64
	// Delta is the alignment granularity: 0 for the exact algorithm.
	Delta int
}

// ExactDither builds the exact plan: core c pads 1 cycle every
// M×(L+H)^(c-1) cycles; the full sweep takes M×(L+H)^(C-1) cycles.
// cores lists the global core indices running the stressmark, reference
// first.
func ExactDither(cores []int, loopCycles, m int) (DitherPlan, error) {
	return ditherPlan(cores, loopCycles, m, 0)
}

// ApproxDither builds the approximate plan of §3.B for many-core
// systems: alignments are only visited to within δ cycles, shrinking
// the lattice from (L+H)^(C-1) to ((L+H)/(δ+1))^(C-1). L+H must be a
// multiple of δ+1.
func ApproxDither(cores []int, loopCycles, m, delta int) (DitherPlan, error) {
	if delta < 1 {
		return DitherPlan{}, fmt.Errorf("core: approximate dither needs δ ≥ 1 (use ExactDither for δ=0)")
	}
	return ditherPlan(cores, loopCycles, m, delta)
}

func ditherPlan(cores []int, loopCycles, m, delta int) (DitherPlan, error) {
	if len(cores) < 1 {
		return DitherPlan{}, fmt.Errorf("core: dither plan needs at least one core")
	}
	if loopCycles < 2 {
		return DitherPlan{}, fmt.Errorf("core: loop length %d too short", loopCycles)
	}
	if m < 1 {
		return DitherPlan{}, fmt.Errorf("core: M must be ≥ 1")
	}
	pad := delta + 1 // exact: δ=0 → 1 cycle of padding
	if loopCycles%pad != 0 {
		return DitherPlan{}, fmt.Errorf("core: L+H=%d must be a multiple of δ+1=%d", loopCycles, pad)
	}
	k := loopCycles / pad
	plan := DitherPlan{Delta: delta}
	period := float64(m)
	for c := 1; c < len(cores); c++ {
		if period > 1e18 {
			return DitherPlan{}, fmt.Errorf("core: dither period overflows for %d cores (use ApproxDither with a larger δ)", len(cores))
		}
		plan.Specs = append(plan.Specs, testbed.DitherSpec{
			Core:         cores[c],
			PeriodCycles: uint64(period),
			PadCycles:    uint64(pad),
		})
		period *= float64(k)
	}
	plan.SweepCycles = float64(m) * math.Pow(float64(k), float64(len(cores)-1))
	return plan, nil
}

// SweepSeconds converts a sweep length to wall-clock time at clockHz —
// the quantity behind the paper's example: at 4 GHz with L+H=24 and
// M=960, four cores align in 3.3 ms but eight need 18.35 minutes, which
// the approximate algorithm with δ=3 cuts to 67 ms.
func (p DitherPlan) SweepSeconds(clockHz float64) float64 {
	return p.SweepCycles / clockHz
}

// ExactSweepCycles returns M×(L+H)^(C-1) without building a plan
// (analytic cost used in the §3.B table).
func ExactSweepCycles(cores, loopCycles, m int) float64 {
	return float64(m) * math.Pow(float64(loopCycles), float64(cores-1))
}

// ApproxSweepCycles returns M×((L+H)/(δ+1))^(C-1).
func ApproxSweepCycles(cores, loopCycles, m, delta int) float64 {
	k := float64(loopCycles) / float64(delta+1)
	return float64(m) * math.Pow(k, float64(cores-1))
}
