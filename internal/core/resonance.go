package core

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/testbed"
)

// ResonanceSweep finds the loop length (in cycles) that maximises the
// measured droop, which is AUDIT's resonance-frequency detector (§3):
// "AUDIT constructs a trivial stressmark consisting of a loop of
// high-power instructions and NOP instructions. It varies the number of
// cycles in the loop to determine the length that produces the
// worst-case droop." Because board components vary, this is re-run
// whenever the processor or board changes (§5.C).
type ResonanceSweep struct {
	Platform testbed.Platform
	// Compiled, when non-nil, is a pre-compiled form of Platform the
	// sweep runs through (shared with the caller's GA loop); when nil,
	// the sweep compiles the platform itself.
	Compiled *testbed.CompiledPlatform
	// Threads is how many aligned copies to run (one per module).
	Threads int
	// MeasureCycles per probe point.
	MeasureCycles uint64
	// WarmupCycles excluded from droop statistics.
	WarmupCycles uint64
}

// SweepPoint is one probe of the sweep.
type SweepPoint struct {
	LoopCycles int
	DroopV     float64
	// FreqHz is the loop repetition frequency loopCycles implies.
	FreqHz float64
}

// ProbeProgram builds the trivial HP/NOP loop for a target loop length:
// half the cycles run two high-power FP ops + NOPs per cycle
// (decode-bound pattern), half run NOPs. useFMA selects FMA where the
// chip supports it, packed multiplies otherwise.
func ProbeProgram(loopCycles, width int, iters int64, useFMA bool) (*asm.Program, error) {
	if loopCycles < 4 {
		return nil, fmt.Errorf("core: probe loop of %d cycles too short", loopCycles)
	}
	h := loopCycles / 2
	l := loopCycles - h - 1 // one cycle budget for dec+jnz
	b := asm.NewBuilder(fmt.Sprintf("probe-%dcyc", loopCycles))
	b.InitToggle(16, 8)
	b.RI("movimm", isa.RCX, iters)
	b.Label("loop")
	for i := 0; i < h; i++ {
		if useFMA {
			b.RRR("vfmadd132pd", isa.XMM(i%numXMMAcc), xmmSrc(uint8(i)), xmmSrc(uint8(i+1)))
			b.RRR("vfmadd132pd", isa.XMM((i+6)%numXMMAcc), xmmSrc(uint8(i+2)), xmmSrc(uint8(i+3)))
		} else {
			b.RR("mulpd", isa.XMM(i%numXMMAcc), xmmSrc(uint8(i)))
			b.RR("addpd", isa.XMM((i+6)%numXMMAcc), xmmSrc(uint8(i+2)))
		}
		b.Nop(width - 2)
	}
	b.Nop(l * width)
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	return b.Build()
}

// Run probes loop lengths in [lo, hi] with the given step and returns
// every point plus the best one.
func (rs ResonanceSweep) Run(lo, hi, step int) ([]SweepPoint, SweepPoint, error) {
	if lo < 4 || hi < lo || step < 1 {
		return nil, SweepPoint{}, fmt.Errorf("core: bad sweep range [%d,%d] step %d", lo, hi, step)
	}
	threads := rs.Threads
	if threads < 1 {
		threads = rs.Platform.Chip.Modules
	}
	measure := rs.MeasureCycles
	if measure == 0 {
		measure = 12000
	}
	warmup := rs.WarmupCycles
	if warmup == 0 {
		warmup = 3000
	}
	cp := rs.Compiled
	if cp == nil {
		var err error
		cp, err = rs.Platform.Compile()
		if err != nil {
			return nil, SweepPoint{}, err
		}
	}
	var points []SweepPoint
	best := SweepPoint{}
	for n := lo; n <= hi; n += step {
		prog, err := ProbeProgram(n, rs.Platform.Chip.DecodeWidth, 1<<40, rs.Platform.Chip.HasFMA)
		if err != nil {
			return nil, SweepPoint{}, err
		}
		specs, err := testbed.SpreadPlacement(rs.Platform.Chip, prog, threads)
		if err != nil {
			return nil, SweepPoint{}, err
		}
		m, err := cp.Run(testbed.RunConfig{
			Threads:      specs,
			MaxCycles:    warmup + measure,
			WarmupCycles: warmup,
		})
		if err != nil {
			return nil, SweepPoint{}, err
		}
		p := SweepPoint{
			LoopCycles: n,
			DroopV:     m.MaxDroopV,
			FreqHz:     rs.Platform.Chip.ClockHz / float64(n),
		}
		points = append(points, p)
		if p.DroopV > best.DroopV {
			best = p
		}
	}
	return points, best, nil
}
