package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/testbed"
)

// TestGenerateParallelMatchesSerial runs the full AUDIT flow — real
// simulator fitness through the compiled platform — serial and with 8
// parallel workers, and requires identical search trajectories. This is
// the end-to-end version of the ga-level determinism test; run it under
// -race to exercise the pooled chip/PDN state concurrently.
func TestGenerateParallelMatchesSerial(t *testing.T) {
	p := testbed.Bulldozer()
	gen := func(workers int) *Stressmark {
		cfg := smallGA(7)
		cfg.Parallel = workers
		sm, err := Generate(context.Background(), Options{
			Platform:      p,
			LoopCycles:    36,
			GA:            cfg,
			MeasureCycles: 2000,
			WarmupCycles:  1200,
			Seed:          7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sm
	}
	serial := gen(0)
	parallel := gen(8)
	if serial.DroopV != parallel.DroopV {
		t.Errorf("droop diverged: %v vs %v", serial.DroopV, parallel.DroopV)
	}
	if serial.Search.Evaluations != parallel.Search.Evaluations ||
		serial.Search.CacheHits != parallel.Search.CacheHits ||
		serial.Search.CacheMisses != parallel.Search.CacheMisses {
		t.Errorf("search accounting diverged: evals %d/%d hits %d/%d misses %d/%d",
			serial.Search.Evaluations, parallel.Search.Evaluations,
			serial.Search.CacheHits, parallel.Search.CacheHits,
			serial.Search.CacheMisses, parallel.Search.CacheMisses)
	}
	if !reflect.DeepEqual(serial.Search.History, parallel.Search.History) {
		t.Errorf("history diverged:\n serial   %v\n parallel %v",
			serial.Search.History, parallel.Search.History)
	}
	if !reflect.DeepEqual(serial.Genome, parallel.Genome) {
		t.Error("winning genomes diverged")
	}
}

// TestGenerateMemoizationAccounting: the real GA loop over genomes must
// report coherent cache counters, and elitism's re-scored duplicates
// mean a multi-generation run should see at least one hit.
func TestGenerateMemoizationAccounting(t *testing.T) {
	p := testbed.Bulldozer()
	cfg := smallGA(3)
	cfg.MaxGenerations = 5
	cfg.MutationProb = 0.2 // low churn → crossover reproduces parents often
	sm, err := Generate(context.Background(), Options{
		Platform:      p,
		LoopCycles:    36,
		GA:            cfg,
		MeasureCycles: 1500,
		WarmupCycles:  1000,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sm.Search
	if res.CacheMisses != res.Evaluations {
		t.Errorf("CacheMisses %d != Evaluations %d", res.CacheMisses, res.Evaluations)
	}
	total := cfg.PopSize + res.Generations*(cfg.PopSize-cfg.Elites)
	if res.CacheHits+res.CacheMisses != total {
		t.Errorf("hits+misses = %d, want %d scored candidates",
			res.CacheHits+res.CacheMisses, total)
	}
	if res.CacheHits == 0 {
		t.Log("no duplicate candidates this run (legal, but memoization went unexercised)")
	}
}

// TestGenerateReplayMatchesExact: GA-generated programs close their
// loops with dec/jnz, whose energy trace never proves periodic, so the
// trace-replay fast path streams the full trace — which is bit-exact
// against the reference loop. A search run through replay must
// therefore reproduce the ExactEval search bit-identically.
func TestGenerateReplayMatchesExact(t *testing.T) {
	p := testbed.Bulldozer()
	gen := func(exact bool) *Stressmark {
		sm, err := Generate(context.Background(), Options{
			Platform:      p,
			LoopCycles:    36,
			GA:            smallGA(11),
			MeasureCycles: 2000,
			WarmupCycles:  1200,
			Seed:          11,
			ExactEval:     exact,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sm
	}
	exact := gen(true)
	replay := gen(false)
	if exact.DroopV != replay.DroopV {
		t.Errorf("droop diverged: exact %v replay %v", exact.DroopV, replay.DroopV)
	}
	if !reflect.DeepEqual(exact.Search.History, replay.Search.History) {
		t.Errorf("history diverged:\n exact  %v\n replay %v",
			exact.Search.History, replay.Search.History)
	}
	if !reflect.DeepEqual(exact.Genome, replay.Genome) {
		t.Error("winning genomes diverged")
	}
}

// TestGenerateSharedTraceCache: with Repeats > 1 every scored candidate
// is measured K times on the same RunConfig, so repeats 2..K must hit
// the compiled platform's trace cache; 8 parallel workers share one
// cache (run under -race). WrapRunner doubles as the capture hook for
// the underlying CompiledPlatform.
func TestGenerateSharedTraceCache(t *testing.T) {
	p := testbed.Bulldozer()
	cfg := smallGA(13)
	cfg.Parallel = 8
	cfg.Repeats = 3
	var cp *testbed.CompiledPlatform
	sm, err := Generate(context.Background(), Options{
		Platform:      p,
		LoopCycles:    36,
		GA:            cfg,
		MeasureCycles: 2000,
		WarmupCycles:  1200,
		Seed:          13,
		WrapRunner: func(r testbed.Runner) testbed.Runner {
			cp = r.(*testbed.CompiledPlatform)
			return r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := cp.TraceStats()
	res := sm.Search
	if ts.Misses == 0 {
		t.Fatal("no trace-cache misses: fast path never engaged")
	}
	// Distinct genomes have distinct trace keys, and fitness memoization
	// keeps duplicate genomes from reaching Run, so trace misses cannot
	// exceed fitness misses...
	if ts.Misses > uint64(res.CacheMisses) {
		t.Errorf("trace misses %d > fitness misses %d", ts.Misses, res.CacheMisses)
	}
	// ...and each fitness evaluation's repeats 2 and 3 replay the trace
	// recorded (or found) by repeat 1.
	if want := 2 * uint64(res.CacheMisses); ts.Hits < want {
		t.Errorf("trace hits %d < %d: repeats are not sharing traces", ts.Hits, want)
	}
}

// TestGenomeFingerprint pins the fingerprint's canonicality: equal
// content → equal key, any field change → different key.
func TestGenomeFingerprint(t *testing.T) {
	g := Genome{Slots: []Slot{{Op: 3, A: 1, B: 2, C: 3}, {Op: -1}}, S: 4, LPCycles: 9}
	if g.Fingerprint() != g.Clone().Fingerprint() {
		t.Error("clone fingerprint differs")
	}
	mutants := []Genome{
		{Slots: []Slot{{Op: 3, A: 1, B: 2, C: 3}, {Op: -1}}, S: 5, LPCycles: 9},
		{Slots: []Slot{{Op: 3, A: 1, B: 2, C: 3}, {Op: -1}}, S: 4, LPCycles: 8},
		{Slots: []Slot{{Op: 3, A: 1, B: 2, C: 4}, {Op: -1}}, S: 4, LPCycles: 9},
		{Slots: []Slot{{Op: 2, A: 1, B: 2, C: 3}, {Op: -1}}, S: 4, LPCycles: 9},
		{Slots: []Slot{{Op: 3, A: 1, B: 2, C: 3}}, S: 4, LPCycles: 9},
	}
	for i, m := range mutants {
		if m.Fingerprint() == g.Fingerprint() {
			t.Errorf("mutant %d shares the original's fingerprint", i)
		}
	}
	h := HeteroGenome{PerThread: []Genome{g, g}}
	if h.Fingerprint() != h.Clone().Fingerprint() {
		t.Error("hetero clone fingerprint differs")
	}
	h2 := HeteroGenome{PerThread: []Genome{g, mutants[0]}}
	if h2.Fingerprint() == h.Fingerprint() {
		t.Error("different hetero genomes share a fingerprint")
	}
}
