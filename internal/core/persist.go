package core

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/asm"
)

// savedStressmark is the JSON wire form of a Stressmark checkpoint.
// Hardware campaigns take hours (the paper's runs are five-hour
// affairs), so both the winner and the final GA population are
// persisted; reloading the population as seeds resumes the search.
type savedStressmark struct {
	Version    int       `json:"version"`
	Name       string    `json:"name"`
	Threads    int       `json:"threads"`
	LoopCycles int       `json:"loop_cycles"`
	Mode       int       `json:"mode"`
	DroopV     float64   `json:"droop_v"`
	Genome     Genome    `json:"genome"`
	Population []Genome  `json:"population,omitempty"`
	History    []float64 `json:"history,omitempty"`
	// Program is the base64-encoded binary object image.
	Program string `json:"program"`
}

const saveVersion = 1

// Save serialises the stressmark (winner, program image, and — when
// the search result is attached — the final population) to w.
func (sm *Stressmark) Save(w io.Writer) error {
	if sm.Program == nil {
		return fmt.Errorf("core: stressmark has no program to save")
	}
	blob, err := asm.Encode(sm.Program)
	if err != nil {
		return err
	}
	out := savedStressmark{
		Version:    saveVersion,
		Name:       sm.Name,
		Threads:    sm.Threads,
		LoopCycles: sm.LoopCycles,
		Mode:       int(sm.Mode),
		DroopV:     sm.DroopV,
		Genome:     sm.Genome,
		Program:    base64.StdEncoding.EncodeToString(blob),
	}
	if sm.Search != nil {
		out.Population = sm.Search.Population
		out.History = sm.Search.History
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadStressmark reads a checkpoint written by Save. The returned
// stressmark's Population (via Resume seeds) lets a follow-up Generate
// continue the search.
func LoadStressmark(r io.Reader) (*Stressmark, []Genome, error) {
	var in savedStressmark
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, nil, fmt.Errorf("core: load: %w", err)
	}
	if in.Version != saveVersion {
		return nil, nil, fmt.Errorf("core: load: unsupported version %d", in.Version)
	}
	blob, err := base64.StdEncoding.DecodeString(in.Program)
	if err != nil {
		return nil, nil, fmt.Errorf("core: load: %w", err)
	}
	prog, err := asm.Decode(blob)
	if err != nil {
		return nil, nil, err
	}
	sm := &Stressmark{
		Name:       in.Name,
		Threads:    in.Threads,
		LoopCycles: in.LoopCycles,
		Mode:       Mode(in.Mode),
		DroopV:     in.DroopV,
		Genome:     in.Genome,
		Program:    prog,
	}
	return sm, in.Population, nil
}
