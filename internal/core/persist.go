package core

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/asm"
	"repro/internal/fsutil"
	"repro/internal/ga"
)

// savedStressmark is the JSON wire form of a Stressmark checkpoint.
// Hardware campaigns take hours (the paper's runs are five-hour
// affairs), so both the winner and the final GA population are
// persisted; reloading the population as seeds resumes the search.
type savedStressmark struct {
	Version    int       `json:"version"`
	Name       string    `json:"name"`
	Threads    int       `json:"threads"`
	LoopCycles int       `json:"loop_cycles"`
	Mode       int       `json:"mode"`
	FPThrottle int       `json:"fp_throttle,omitempty"`
	DroopV     float64   `json:"droop_v"`
	Genome     Genome    `json:"genome"`
	Population []Genome  `json:"population,omitempty"`
	History    []float64 `json:"history,omitempty"`
	// Program is the base64-encoded binary object image.
	Program string `json:"program"`
}

const saveVersion = 1

// Save serialises the stressmark (winner, program image, and — when
// the search result is attached — the final population) to w.
func (sm *Stressmark) Save(w io.Writer) error {
	if sm.Program == nil {
		return fmt.Errorf("core: stressmark has no program to save")
	}
	blob, err := asm.Encode(sm.Program)
	if err != nil {
		return err
	}
	out := savedStressmark{
		Version:    saveVersion,
		Name:       sm.Name,
		Threads:    sm.Threads,
		LoopCycles: sm.LoopCycles,
		Mode:       int(sm.Mode),
		FPThrottle: sm.FPThrottle,
		DroopV:     sm.DroopV,
		Genome:     sm.Genome,
		Program:    base64.StdEncoding.EncodeToString(blob),
	}
	if sm.Search != nil {
		out.Population = sm.Search.Population
		out.History = sm.Search.History
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadStressmark reads a checkpoint written by Save. The returned
// stressmark's Population (via Resume seeds) lets a follow-up Generate
// continue the search.
func LoadStressmark(r io.Reader) (*Stressmark, []Genome, error) {
	var in savedStressmark
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, nil, fmt.Errorf("core: load: %w", err)
	}
	if in.Version != saveVersion {
		return nil, nil, fmt.Errorf("core: load: unsupported version %d", in.Version)
	}
	blob, err := base64.StdEncoding.DecodeString(in.Program)
	if err != nil {
		return nil, nil, fmt.Errorf("core: load: %w", err)
	}
	prog, err := asm.Decode(blob)
	if err != nil {
		return nil, nil, err
	}
	sm := &Stressmark{
		Name:       in.Name,
		Threads:    in.Threads,
		LoopCycles: in.LoopCycles,
		Mode:       Mode(in.Mode),
		FPThrottle: in.FPThrottle,
		DroopV:     in.DroopV,
		Genome:     in.Genome,
		Program:    prog,
	}
	return sm, in.Population, nil
}

// savedHetero is the JSON wire form of a heterogeneous stressmark: one
// genome and one program image per thread, placement order.
type savedHetero struct {
	Version  int      `json:"version"`
	Kind     string   `json:"kind"`
	Name     string   `json:"name"`
	Threads  int      `json:"threads"`
	DroopV   float64  `json:"droop_v"`
	Genomes  []Genome `json:"genomes"`
	Programs []string `json:"programs"`
	// Population holds the final GA population for seeding a follow-up
	// search (each member is one genome per thread).
	Population []HeteroGenome `json:"population,omitempty"`
	History    []float64      `json:"history,omitempty"`
}

const heteroKind = "audit-hetero-stressmark"

// Save serialises the heterogeneous stressmark — per-thread winners,
// program images and, when the search result is attached, the final
// population — to w.
func (h *HeteroStressmark) Save(w io.Writer) error {
	if len(h.Programs) == 0 {
		return fmt.Errorf("core: hetero stressmark has no programs to save")
	}
	if len(h.Programs) != len(h.Genome.PerThread) {
		return fmt.Errorf("core: hetero stressmark has %d programs for %d genomes",
			len(h.Programs), len(h.Genome.PerThread))
	}
	out := savedHetero{
		Version: saveVersion,
		Kind:    heteroKind,
		Name:    h.Name,
		Threads: h.Threads,
		DroopV:  h.DroopV,
		Genomes: h.Genome.PerThread,
	}
	for _, prog := range h.Programs {
		blob, err := asm.Encode(prog)
		if err != nil {
			return err
		}
		out.Programs = append(out.Programs, base64.StdEncoding.EncodeToString(blob))
	}
	if h.Search != nil {
		out.Population = h.Search.Population
		out.History = h.Search.History
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SaveFile writes the heterogeneous stressmark to path atomically.
func (h *HeteroStressmark) SaveFile(path string) error {
	return WriteFileAtomic(path, h.Save)
}

// LoadHeteroStressmark reads a checkpoint written by
// (*HeteroStressmark).Save, returning the stressmark and the saved
// final population.
func LoadHeteroStressmark(r io.Reader) (*HeteroStressmark, []HeteroGenome, error) {
	var in savedHetero
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, nil, fmt.Errorf("core: load hetero: %w", err)
	}
	if in.Kind != heteroKind {
		return nil, nil, fmt.Errorf("core: load hetero: kind %q is not %q", in.Kind, heteroKind)
	}
	if in.Version != saveVersion {
		return nil, nil, fmt.Errorf("core: load hetero: unsupported version %d", in.Version)
	}
	if len(in.Programs) != len(in.Genomes) {
		return nil, nil, fmt.Errorf("core: load hetero: %d programs for %d genomes",
			len(in.Programs), len(in.Genomes))
	}
	h := &HeteroStressmark{
		Name:    in.Name,
		Threads: in.Threads,
		DroopV:  in.DroopV,
		Genome:  HeteroGenome{PerThread: in.Genomes},
	}
	for i, enc := range in.Programs {
		blob, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			return nil, nil, fmt.Errorf("core: load hetero: program %d: %w", i, err)
		}
		prog, err := asm.Decode(blob)
		if err != nil {
			return nil, nil, err
		}
		h.Programs = append(h.Programs, prog)
	}
	return h, in.Population, nil
}

// SaveFile writes the stressmark to path atomically: a half-written
// file never replaces a good one, even if the process dies mid-save.
func (sm *Stressmark) SaveFile(path string) error {
	return WriteFileAtomic(path, sm.Save)
}

const (
	checkpointKind    = "audit-search-checkpoint"
	checkpointVersion = 1
)

// SearchCheckpoint is the on-disk envelope for a mid-search snapshot:
// enough search identity to validate a resume (thread count, loop
// length, mode, homogeneous vs heterogeneous) wrapped around the GA
// engine's own generation checkpoint. Generate writes one per
// generation when Options.CheckpointPath is set; passing the loaded
// checkpoint back via Options.Resume replays the rest of the search
// bit-identically to an uninterrupted run.
type SearchCheckpoint struct {
	Version    int    `json:"version"`
	Kind       string `json:"kind"`
	Name       string `json:"name"`
	Hetero     bool   `json:"hetero"`
	Threads    int    `json:"threads"`
	LoopCycles int    `json:"loop_cycles"`
	Mode       int    `json:"mode"`
	// GA is the engine-level checkpoint (ga.Checkpoint[Genome] or
	// [HeteroGenome], per Hetero), kept opaque here so the envelope can
	// be inspected without knowing the genome type.
	GA json.RawMessage `json:"ga"`
}

// LoadSearchCheckpoint reads a checkpoint written via
// Options.CheckpointPath.
func LoadSearchCheckpoint(r io.Reader) (*SearchCheckpoint, error) {
	var ck SearchCheckpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("core: load checkpoint: %w", err)
	}
	if ck.Kind != checkpointKind {
		return nil, fmt.Errorf("core: load checkpoint: kind %q is not %q", ck.Kind, checkpointKind)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("core: load checkpoint: unsupported version %d", ck.Version)
	}
	return &ck, nil
}

// IsSearchCheckpoint reports whether the blob looks like a
// SearchCheckpoint (as opposed to a saved stressmark — both are JSON,
// so cmd/audit sniffs before deciding how to resume).
func IsSearchCheckpoint(blob []byte) bool {
	var probe struct {
		Kind string `json:"kind"`
	}
	return json.Unmarshal(blob, &probe) == nil && probe.Kind == checkpointKind
}

// decodeGACheckpoint unwraps the engine checkpoint, validating that the
// envelope matches the kind of search about to resume.
func decodeGACheckpoint[G any](ck *SearchCheckpoint, hetero bool) (*ga.Checkpoint[G], error) {
	if ck.Kind != checkpointKind {
		return nil, fmt.Errorf("core: resume: kind %q is not %q", ck.Kind, checkpointKind)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("core: resume: unsupported checkpoint version %d", ck.Version)
	}
	if ck.Hetero != hetero {
		want, got := "homogeneous", "heterogeneous"
		if hetero {
			want, got = got, want
		}
		return nil, fmt.Errorf("core: resume: checkpoint is from a %s search, this is a %s one", got, want)
	}
	var out ga.Checkpoint[G]
	if err := json.Unmarshal(ck.GA, &out); err != nil {
		return nil, fmt.Errorf("core: resume: GA state: %w", err)
	}
	return &out, nil
}

// checkpointSink returns a ga sink that wraps each engine checkpoint in
// the identity envelope and writes it to path atomically.
func checkpointSink[G any](path string, env SearchCheckpoint) func(*ga.Checkpoint[G]) error {
	env.Version = checkpointVersion
	env.Kind = checkpointKind
	return func(ck *ga.Checkpoint[G]) error {
		blob, err := json.Marshal(ck)
		if err != nil {
			return err
		}
		env.GA = blob
		return WriteFileAtomic(path, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(&env)
		})
	}
}

// WriteFileAtomic writes via a temp file in path's directory and
// renames it into place, so readers (and crash recovery) only ever see
// complete files.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return fsutil.WriteFileAtomic(path, write)
}
