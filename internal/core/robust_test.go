package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
	"repro/internal/testbed"
)

// chaosRate returns the transient-fault rate for injection tests:
// the issue's 10%+ floor normally, amplified under AUDIT_CHAOS=1 (the
// CI chaos job) to shake out rarer interleavings.
func chaosRate() float64 {
	if os.Getenv("AUDIT_CHAOS") != "" {
		return 0.35
	}
	return 0.15
}

func TestGenerateSurvivesFaultInjection(t *testing.T) {
	p := testbed.Bulldozer()
	var injector *faults.Injector
	cfg := smallGA(31)
	cfg.MaxRetries = 4
	cfg.DegradeFailures = true
	sm, err := Generate(context.Background(), Options{
		Platform:   p,
		LoopCycles: 36,
		GA:         cfg,
		WrapRunner: func(r testbed.Runner) testbed.Runner {
			fc := faults.Lab(31)
			fc.TransientRate = chaosRate()
			injector = faults.MustNew(fc, r)
			return injector
		},
		MeasureCycles: 2500,
		WarmupCycles:  1500,
		Seed:          31,
	})
	if err != nil {
		t.Fatalf("search aborted under fault injection: %v", err)
	}
	if sm.DroopV <= 0 {
		t.Error("faulted search found no droop")
	}
	s := injector.Stats()
	if s.Runs == 0 || s.Transients == 0 {
		t.Fatalf("injector saw no faults: %+v", s)
	}
	if sm.Search.Retries == 0 {
		t.Errorf("no retries recorded despite %d transient losses", s.Transients)
	}
}

// cancelRunner cancels the search context after limit underlying runs,
// simulating an operator hitting Ctrl-C mid-generation.
type cancelRunner struct {
	r      testbed.Runner
	n      atomic.Int64
	limit  int64
	cancel context.CancelFunc
}

func (c *cancelRunner) Run(rc testbed.RunConfig) (*testbed.Measurement, error) {
	if c.n.Add(1) == c.limit {
		c.cancel()
	}
	return c.r.Run(rc)
}

func TestCrashedSearchResumesBitIdentically(t *testing.T) {
	p := testbed.Bulldozer()
	dir := t.TempDir()
	opts := func() Options {
		return Options{
			Platform:      p,
			LoopCycles:    36,
			GA:            smallGA(17),
			MeasureCycles: 2500,
			WarmupCycles:  1500,
			Name:          "resume-test",
			Seed:          17,
		}
	}

	// Reference: the uninterrupted search.
	full, err := Generate(context.Background(), opts())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancelled mid-flight, checkpointing every
	// generation.
	ckPath := filepath.Join(dir, "search.ck")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := opts()
	interrupted.CheckpointPath = ckPath
	interrupted.WrapRunner = func(r testbed.Runner) testbed.Runner {
		return &cancelRunner{r: r, limit: 20, cancel: cancel}
	}
	_, err = Generate(ctx, interrupted)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}

	// Resume from the surviving checkpoint file.
	f, err := os.Open(ckPath)
	if err != nil {
		t.Fatalf("no checkpoint survived the crash: %v", err)
	}
	ck, err := LoadSearchCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	resumedOpts := opts()
	resumedOpts.Resume = ck
	resumed, err := Generate(context.Background(), resumedOpts)
	if err != nil {
		t.Fatal(err)
	}

	if resumed.DroopV != full.DroopV {
		t.Errorf("resumed droop %v != uninterrupted %v", resumed.DroopV, full.DroopV)
	}
	if resumed.Genome.Fingerprint() != full.Genome.Fingerprint() {
		t.Error("resumed winning genome differs from uninterrupted run")
	}
	if resumed.Program.Text() != full.Program.Text() {
		t.Error("resumed program text differs from uninterrupted run")
	}
	if resumed.Search.Generations != full.Search.Generations {
		t.Errorf("resumed generations %d != %d", resumed.Search.Generations, full.Search.Generations)
	}
	// Identity metadata travels in the envelope.
	if resumed.Threads != full.Threads || resumed.LoopCycles != full.LoopCycles || resumed.Name != full.Name {
		t.Errorf("search identity lost across resume: %+v vs %+v", resumed, full)
	}
}

func TestResumeUnderFaultInjectionStaysBitIdentical(t *testing.T) {
	// Faults + checkpointing together: the content-keyed injector makes
	// the fault stream a function of what runs, not when, so a resumed
	// search sees the same faults the uninterrupted one did.
	p := testbed.Bulldozer()
	dir := t.TempDir()
	opts := func() Options {
		cfg := smallGA(23)
		cfg.MaxRetries = 4
		cfg.DegradeFailures = true
		return Options{
			Platform:   p,
			LoopCycles: 36,
			GA:         cfg,
			WrapRunner: func(r testbed.Runner) testbed.Runner {
				fc := faults.Lab(23)
				fc.TransientRate = chaosRate()
				return faults.MustNew(fc, r)
			},
			MeasureCycles: 2500,
			WarmupCycles:  1500,
			Seed:          23,
		}
	}
	ckPath := filepath.Join(dir, "faulty.ck")
	withCk := opts()
	withCk.CheckpointPath = ckPath
	full, err := Generate(context.Background(), withCk)
	if err != nil {
		t.Fatal(err)
	}
	// The final checkpoint replays to the same winner.
	f, err := os.Open(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := LoadSearchCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	resumedOpts := opts()
	resumedOpts.Resume = ck
	resumed, err := Generate(context.Background(), resumedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.DroopV != full.DroopV || resumed.Genome.Fingerprint() != full.Genome.Fingerprint() {
		t.Error("fault-injected resume diverged from uninterrupted run")
	}
}

func TestHeteroCheckpointResume(t *testing.T) {
	p := testbed.Bulldozer()
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "hetero.ck")
	opts := Options{
		Platform:       p,
		LoopCycles:     36,
		Threads:        2,
		GA:             smallGA(41),
		CheckpointPath: ckPath,
		MeasureCycles:  2500,
		WarmupCycles:   1500,
		Seed:           41,
	}
	full, err := GenerateHetero(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := LoadSearchCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Hetero {
		t.Fatal("hetero checkpoint not flagged")
	}
	// A homogeneous resume must refuse a heterogeneous checkpoint.
	homo := opts
	homo.CheckpointPath = ""
	homo.Resume = ck
	if _, err := Generate(context.Background(), homo); err == nil ||
		!strings.Contains(err.Error(), "heterogeneous") {
		t.Errorf("homogeneous Generate accepted a hetero checkpoint: %v", err)
	}
	het := opts
	het.CheckpointPath = ""
	het.Resume = ck
	resumed, err := GenerateHetero(context.Background(), het)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.DroopV != full.DroopV || resumed.Genome.Fingerprint() != full.Genome.Fingerprint() {
		t.Error("hetero resume diverged")
	}
}

func TestLoadSearchCheckpointRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{"kind":"something-else","version":1}`,
		`{"kind":"audit-search-checkpoint","version":99}`,
	}
	for i, c := range cases {
		if _, err := LoadSearchCheckpoint(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestIsSearchCheckpointSniffing(t *testing.T) {
	if !IsSearchCheckpoint([]byte(`{"kind":"audit-search-checkpoint","version":1}`)) {
		t.Error("real checkpoint not recognised")
	}
	if IsSearchCheckpoint([]byte(`{"version":1,"name":"x"}`)) {
		t.Error("stressmark save misidentified as checkpoint")
	}
	if IsSearchCheckpoint([]byte(`garbage`)) {
		t.Error("garbage misidentified as checkpoint")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	write := func(s string) error {
		return WriteFileAtomic(path, func(w io.Writer) error {
			_, err := w.Write([]byte(s))
			return err
		})
	}
	if err := write("first"); err != nil {
		t.Fatal(err)
	}
	if err := write("second"); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Errorf("content %q, want %q", got, "second")
	}
	// A failing writer must leave the previous file untouched...
	boom := errors.New("boom")
	err = WriteFileAtomic(path, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("writer error lost: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Errorf("failed write clobbered the file: %q", got)
	}
	// ...and no temp litter behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("temp files left behind: %v", entries)
	}
}

func TestStressmarkSaveFileRoundTrips(t *testing.T) {
	p := testbed.Bulldozer()
	sm, err := Generate(context.Background(), Options{
		Platform:      p,
		LoopCycles:    36,
		GA:            smallGA(3),
		MeasureCycles: 2500,
		WarmupCycles:  1500,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sm.json")
	if err := sm.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if IsSearchCheckpoint(blob) {
		t.Error("stressmark save sniffs as a search checkpoint")
	}
	back, _, err := LoadStressmark(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != sm.Name || back.DroopV != sm.DroopV {
		t.Error("SaveFile round trip lost data")
	}
}
