package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/testbed"
)

// TestGenerateWithTraceStore is the end-to-end contract of
// Options.TraceStorePath: a full Generate run with a store produces a
// search trajectory and winner identical to a store-free run, and a
// second run over the now-warm directory serves phase-1 captures from
// disk (store hits > 0) while still matching exactly.
func TestGenerateWithTraceStore(t *testing.T) {
	p := testbed.Bulldozer()
	dir := t.TempDir()
	gen := func(storePath string) *Stressmark {
		sm, err := Generate(context.Background(), Options{
			Platform:       p,
			LoopCycles:     36,
			GA:             smallGA(7),
			MeasureCycles:  2000,
			WarmupCycles:   1200,
			Seed:           7,
			TraceStorePath: storePath,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sm
	}
	compare := func(name string, got, want *Stressmark) {
		t.Helper()
		if got.DroopV != want.DroopV {
			t.Errorf("%s: droop diverged: %v vs %v", name, got.DroopV, want.DroopV)
		}
		if !reflect.DeepEqual(got.Search.History, want.Search.History) {
			t.Errorf("%s: search history diverged", name)
		}
		if !reflect.DeepEqual(got.Genome, want.Genome) {
			t.Errorf("%s: winning genomes diverged", name)
		}
	}

	bare := gen("")
	cold := gen(dir)
	compare("cold store", cold, bare)
	if cold.TraceStats.StoreMisses == 0 {
		t.Error("cold run recorded no store misses; store not consulted")
	}
	if cold.TraceStats.StoreHits != 0 {
		t.Errorf("cold run hit an empty store %d times", cold.TraceStats.StoreHits)
	}

	warm := gen(dir)
	compare("warm store", warm, bare)
	if warm.TraceStats.StoreHits == 0 {
		t.Error("warm run served no captures from the store")
	}
	if warm.TraceStats.CaptureNS >= cold.TraceStats.CaptureNS &&
		warm.TraceStats.StoreMisses >= cold.TraceStats.StoreMisses {
		t.Errorf("warm run did not reduce capture work: capture %dns→%dns, misses %d→%d",
			cold.TraceStats.CaptureNS, warm.TraceStats.CaptureNS,
			cold.TraceStats.StoreMisses, warm.TraceStats.StoreMisses)
	}
}
