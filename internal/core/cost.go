package core

import (
	"repro/internal/isa"
	"repro/internal/testbed"
)

// CostFunc scores a measurement; AUDIT maximises it. The paper
// (footnote 1) notes the cost function is pluggable: maximum droop is
// the default, but droop-per-watt or path-weighted variants "are also
// feasible and easy to implement" — these are those.
type CostFunc func(m *testbed.Measurement) float64

// MaxDroop is the default cost: the worst measured voltage droop.
func MaxDroop(m *testbed.Measurement) float64 { return m.MaxDroopV }

// DroopPerWatt rewards droop while penalising average power — useful
// when hunting for stress patterns that evade power-based throttles.
func DroopPerWatt(m *testbed.Measurement) float64 {
	if m.AvgPowerW <= 0 {
		return 0
	}
	return m.MaxDroopV / m.AvgPowerW
}

// PathWeighted rewards droop and the exercising of chosen units —
// "adjust the cost function to reward the use of certain types of
// instructions that exercise critical paths if they are known"
// (§5.A.4). weights maps unit → bonus volts per (issues/cycle).
func PathWeighted(weights map[isa.Unit]float64) CostFunc {
	return func(m *testbed.Measurement) float64 {
		score := m.MaxDroopV
		if m.Cycles == 0 {
			return score
		}
		for u, w := range weights {
			perCycle := float64(m.UnitTotals[u]) / float64(m.Cycles)
			score += w * perCycle
		}
		return score
	}
}
