package core

import (
	"context"
	"testing"

	"repro/internal/ga"
	"repro/internal/testbed"
)

// benchGenerate runs one short AUDIT search on the Bulldozer platform.
// Low mutation keeps crossover reproducing parents, so the memoized
// variant gets realistic duplicate traffic to exploit.
func benchGenerate(b *testing.B, noMemoize bool) *Stressmark {
	b.Helper()
	sm, err := Generate(context.Background(), Options{
		Platform:   testbed.Bulldozer(),
		LoopCycles: 36,
		GA: ga.Config{
			PopSize:        8,
			Elites:         2,
			TournamentK:    3,
			MutationProb:   0.2,
			MaxGenerations: 6,
			Seed:           11,
			NoMemoize:      noMemoize,
		},
		MeasureCycles: 1500,
		WarmupCycles:  1000,
		Seed:          11,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sm
}

// BenchmarkGARunMemoized measures the whole GA search with the fitness
// cache on (default) and off. Both variants use the compiled-platform
// fast path; the difference is purely duplicate candidates served from
// the cache instead of re-simulated.
func BenchmarkGARunMemoized(b *testing.B) {
	b.Run("Memoized", func(b *testing.B) {
		b.ReportAllocs()
		var hits int
		for i := 0; i < b.N; i++ {
			hits = benchGenerate(b, false).Search.CacheHits
		}
		b.ReportMetric(float64(hits), "cache-hits")
	})
	b.Run("NoMemoize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchGenerate(b, true)
		}
	})
}
