package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/ga"
)

// persistGenome builds a deterministic genome + program pair through
// the real code generator (no search needed for wire-format tests).
func persistGenome(t *testing.T, seed int64, lpCycles int) (Genome, *asm.Program) {
	t.Helper()
	cg := testCodeGen()
	g := cg.NewGenome(rand.New(rand.NewSource(seed)), 6, 3, lpCycles, 0.2)
	prog, err := cg.Build("persist-test", g)
	if err != nil {
		t.Fatal(err)
	}
	return g, prog
}

// TestStressmarkRoundTripShapes exercises Save/Load across the
// homogeneous wire format's variation points: with and without an
// attached search result (population + history), with and without an
// FP throttle, and across loop shapes.
func TestStressmarkRoundTripShapes(t *testing.T) {
	g, prog := persistGenome(t, 7, 18)
	g2, _ := persistGenome(t, 8, 6)

	cases := map[string]*Stressmark{
		"bare": {
			Name: "bare", Threads: 1, LoopCycles: 24, Mode: Resonance,
			DroopV: 0.042, Genome: g, Program: prog,
		},
		"throttled-excitation": {
			Name: "thr", Threads: 4, LoopCycles: 96, Mode: Excitation,
			FPThrottle: 1, DroopV: 0.03, Genome: g, Program: prog,
		},
		"with-search": {
			Name: "searched", Threads: 2, LoopCycles: 36, Mode: Resonance,
			DroopV: 0.05, Genome: g, Program: prog,
			Search: &ga.Result[Genome]{
				Population: []Genome{g, g2},
				History:    []float64{0.01, 0.03, 0.05},
			},
		},
	}
	for name, sm := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := sm.Save(&buf); err != nil {
				t.Fatal(err)
			}
			got, pop, err := LoadStressmark(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Name != sm.Name || got.Threads != sm.Threads ||
				got.LoopCycles != sm.LoopCycles || got.Mode != sm.Mode ||
				got.FPThrottle != sm.FPThrottle || got.DroopV != sm.DroopV {
				t.Errorf("scalar fields drifted: got %+v", got)
			}
			if !reflect.DeepEqual(got.Genome, sm.Genome) {
				t.Error("genome did not round-trip")
			}
			if got.Program.Text() != sm.Program.Text() {
				t.Error("program did not round-trip")
			}
			if sm.Search == nil {
				if len(pop) != 0 {
					t.Errorf("phantom population of %d", len(pop))
				}
			} else if !reflect.DeepEqual(pop, sm.Search.Population) {
				t.Error("population did not round-trip")
			}
		})
	}
}

// TestHeteroStressmarkRoundTrip covers the heterogeneous wire format:
// per-thread genomes and programs, and the saved final population.
func TestHeteroStressmarkRoundTrip(t *testing.T) {
	g0, p0 := persistGenome(t, 21, 18)
	g1, p1 := persistGenome(t, 22, 18)
	h := &HeteroStressmark{
		Name: "het", Threads: 2, DroopV: 0.061,
		Genome:   HeteroGenome{PerThread: []Genome{g0, g1}},
		Programs: []*asm.Program{p0, p1},
		Search: &ga.Result[HeteroGenome]{
			Population: []HeteroGenome{{PerThread: []Genome{g0, g1}}},
			History:    []float64{0.02, 0.061},
		},
	}
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, pop, err := LoadHeteroStressmark(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != h.Name || got.Threads != h.Threads || got.DroopV != h.DroopV {
		t.Errorf("scalar fields drifted: got %+v", got)
	}
	if !reflect.DeepEqual(got.Genome, h.Genome) {
		t.Error("hetero genome did not round-trip")
	}
	if len(got.Programs) != 2 || got.Programs[0].Text() != p0.Text() || got.Programs[1].Text() != p1.Text() {
		t.Error("per-thread programs did not round-trip")
	}
	if !reflect.DeepEqual(pop, h.Search.Population) {
		t.Error("hetero population did not round-trip")
	}
}

// TestHeteroSaveValidation: a hetero mark with no programs, or with a
// program/genome count mismatch, must refuse to serialise.
func TestHeteroSaveValidation(t *testing.T) {
	g, p := persistGenome(t, 23, 18)
	var buf bytes.Buffer
	empty := &HeteroStressmark{Name: "x", Genome: HeteroGenome{PerThread: []Genome{g}}}
	if err := empty.Save(&buf); err == nil {
		t.Error("hetero mark with no programs saved")
	}
	skewed := &HeteroStressmark{
		Name:     "x",
		Genome:   HeteroGenome{PerThread: []Genome{g, g}},
		Programs: []*asm.Program{p},
	}
	if err := skewed.Save(&buf); err == nil {
		t.Error("program/genome count mismatch saved")
	}
}

// TestLoadHeteroRejectsDamage: corrupt blobs, foreign kinds, version
// skew and internally inconsistent files must all be refused.
func TestLoadHeteroRejectsDamage(t *testing.T) {
	g, p := persistGenome(t, 24, 18)
	h := &HeteroStressmark{
		Name: "x", Threads: 1, Genome: HeteroGenome{PerThread: []Genome{g}},
		Programs: []*asm.Program{p},
	}
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.String()

	extraGenome, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"garbage":        "not json at all",
		"truncated":      valid[:len(valid)/2],
		"wrong-kind":     strings.Replace(valid, heteroKind, "audit-search-checkpoint", 1),
		"missing-kind":   strings.Replace(valid, heteroKind, "", 1),
		"future-version": strings.Replace(valid, `"version": 1`, `"version": 99`, 1),
		// Structurally valid JSON whose program list no longer matches
		// its genome list: one extra genome, same single program.
		"count-mismatch": strings.Replace(valid, `"genomes": [`, `"genomes": [`+string(extraGenome)+",", 1),
	}

	for name, blob := range cases {
		t.Run(name, func(t *testing.T) {
			if _, _, err := LoadHeteroStressmark(strings.NewReader(blob)); err == nil {
				t.Error("damaged hetero save accepted")
			}
		})
	}
	// Sanity: the unmodified blob still loads.
	if _, _, err := LoadHeteroStressmark(strings.NewReader(valid)); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
}

// TestLoadStressmarkRejectsVersionSkew: a homogeneous save from a
// future format version must be refused, not half-parsed.
func TestLoadStressmarkRejectsVersionSkew(t *testing.T) {
	_, prog := persistGenome(t, 25, 18)
	sm := &Stressmark{Name: "x", Threads: 1, LoopCycles: 24, Program: prog}
	var buf bytes.Buffer
	if err := sm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	skewed := strings.Replace(buf.String(), `"version": 1`, `"version": 2`, 1)
	if _, _, err := LoadStressmark(strings.NewReader(skewed)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("future-version save accepted: err=%v", err)
	}
	truncated := buf.String()[:buf.Len()/3]
	if _, _, err := LoadStressmark(strings.NewReader(truncated)); err == nil {
		t.Error("truncated save accepted")
	}
}

// TestLoadSearchCheckpointTruncated: a checkpoint cut off mid-write
// (the exact artifact WriteFileAtomic exists to prevent, but which a
// copy or transfer can still produce) must fail cleanly.
func TestLoadSearchCheckpointTruncated(t *testing.T) {
	whole := `{"version":1,"kind":"audit-search-checkpoint","name":"x","threads":2,"loop_cycles":36,"mode":0,"ga":{"gen":3}}`
	if _, err := LoadSearchCheckpoint(strings.NewReader(whole)); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	for _, cut := range []int{1, len(whole) / 2, len(whole) - 2} {
		if _, err := LoadSearchCheckpoint(strings.NewReader(whole[:cut])); err == nil {
			t.Errorf("checkpoint truncated at %d bytes accepted", cut)
		}
	}
	if _, err := LoadSearchCheckpoint(strings.NewReader("")); err == nil {
		t.Error("empty checkpoint accepted")
	}
}
