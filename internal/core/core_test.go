package core

import (
	"bytes"
	"context"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/ga"
	"repro/internal/isa"
	"repro/internal/testbed"
)

func testCodeGen() *CodeGen {
	return &CodeGen{
		Opcodes:   DefaultOpcodeList(),
		Width:     4,
		LoopIters: 1000,
		MemBytes:  4096,
	}
}

func TestOpcodeLists(t *testing.T) {
	for _, op := range DefaultOpcodeList() {
		if op.Class == isa.ClassBranch || op.Class == isa.ClassBarrier || op.Class == isa.ClassNOP {
			t.Errorf("%s should not be in the default list", op.Name)
		}
	}
	for _, op := range IntOnlyOpcodeList() {
		if op.Class.IsFP() {
			t.Errorf("%s is FP but in the int-only list", op.Name)
		}
	}
}

func TestCodeGenValidate(t *testing.T) {
	cg := testCodeGen()
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *cg
	bad.Opcodes = []*isa.Opcode{isa.MustLookup("jnz")}
	if err := bad.Validate(); err == nil {
		t.Error("branch in opcode list accepted")
	}
	bad = *cg
	bad.Width = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero width accepted")
	}
	bad = *cg
	bad.MemBytes = 1
	if err := bad.Validate(); err == nil {
		t.Error("tiny memory accepted")
	}
}

func TestGenomeBuildStructure(t *testing.T) {
	cg := testCodeGen()
	rng := rand.New(rand.NewSource(3))
	g := cg.NewGenome(rng, 6, 3, 18, 0.2)
	if len(g.Slots) != 6*4 {
		t.Fatalf("slots = %d", len(g.Slots))
	}
	if cg.HPCycles(g) != 18 {
		t.Errorf("HP cycles = %d, want 18", cg.HPCycles(g))
	}
	p, err := cg.Build("test", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Structure: movimm×2 + S×K×W slot instructions + LP nops + dec + jnz.
	want := 2 + 3*6*4 + 18*4 + 2
	if p.Len() != want {
		t.Errorf("program length %d, want %d", p.Len(), want)
	}
	// Loop label must point at the first post-init instruction.
	if p.Labels["loop"] != 2 {
		t.Errorf("loop label at %d", p.Labels["loop"])
	}
	// Programs must reassemble from their own text.
	if _, err := asm.Parse(p.Text()); err != nil {
		t.Errorf("generated program does not reassemble: %v", err)
	}
}

func TestGenomeBuildRejectsBadShape(t *testing.T) {
	cg := testCodeGen()
	g := Genome{Slots: make([]Slot, 8), S: 0, LPCycles: 4}
	if _, err := cg.Build("bad", g); err == nil {
		t.Error("S=0 accepted")
	}
	g = Genome{Slots: make([]Slot, 8), S: 1, LPCycles: -1}
	if _, err := cg.Build("bad", g); err == nil {
		t.Error("negative LP accepted")
	}
}

func TestAllNopGenomeBuildsToNops(t *testing.T) {
	cg := testCodeGen()
	g := Genome{Slots: make([]Slot, 4*4), S: 1, LPCycles: 2}
	for i := range g.Slots {
		g.Slots[i] = Slot{Op: -1}
	}
	p, err := cg.Build("nops", g)
	if err != nil {
		t.Fatal(err)
	}
	mix := p.InstructionMix()
	if mix[isa.ClassNOP] != 4*4+2*4 {
		t.Errorf("NOP count = %d", mix[isa.ClassNOP])
	}
}

func TestCrossoverAndMutatePreserveShape(t *testing.T) {
	cg := testCodeGen()
	rng := rand.New(rand.NewSource(7))
	a := cg.NewGenome(rng, 6, 2, 12, 0.2)
	b := cg.NewGenome(rng, 6, 2, 12, 0.2)
	child := cg.Crossover(rng, a, b)
	if len(child.Slots) != len(a.Slots) || child.S != a.S || child.LPCycles != a.LPCycles {
		t.Error("crossover changed genome shape")
	}
	mut := cg.Mutate(rng, child)
	if len(mut.Slots) != len(child.Slots) {
		t.Error("mutate changed slot count")
	}
	// Mutate must not alias the parent.
	mut.Slots[0] = Slot{Op: -1}
	childCopy := child.Clone()
	childCopy.Slots[0] = Slot{Op: 1}
	if child.Slots[0] == (Slot{Op: -1}) && mut.Slots[0] == child.Slots[0] {
		t.Error("mutate aliased parent slots")
	}
	// Every slot produced must build.
	if _, err := cg.Build("m", mut); err != nil {
		t.Errorf("mutated genome does not build: %v", err)
	}
}

func TestSlotInstructionOperandsAreWellFormed(t *testing.T) {
	cg := testCodeGen()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		s := cg.randomSlot(rng, 0)
		in, ok := cg.instr(s, trial)
		if !ok {
			continue
		}
		if err := in.Valid(); err != nil {
			t.Fatalf("slot %+v → invalid instruction %q: %v", s, in.String(), err)
		}
		// Destinations must stay inside the accumulator pools (never the
		// loop counter or memory base).
		if d := in.Dest(); d.Valid() && d.Kind == isa.RegGPR {
			if d.Index < 8 {
				t.Fatalf("generated dst %s collides with reserved registers", d)
			}
		}
	}
}

func TestDitherPlanExact(t *testing.T) {
	plan, err := ExactDither([]int{0, 1, 2, 3}, 24, 960)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Specs) != 3 {
		t.Fatalf("specs = %d, want 3 (core 0 is the reference)", len(plan.Specs))
	}
	wantPeriods := []uint64{960, 960 * 24, 960 * 24 * 24}
	for i, spec := range plan.Specs {
		if spec.PeriodCycles != wantPeriods[i] {
			t.Errorf("core %d period = %d, want %d", i+1, spec.PeriodCycles, wantPeriods[i])
		}
		if spec.PadCycles != 1 {
			t.Errorf("exact pad = %d, want 1", spec.PadCycles)
		}
	}
	if plan.SweepCycles != 960*24*24*24 {
		t.Errorf("sweep = %g", plan.SweepCycles)
	}
}

// The §3.B wall-clock numbers: 4 GHz, L+H=24, M=960.
func TestDitherPaperNumbers(t *testing.T) {
	clock := 4e9
	// Four cores, exact: 3.3 ms.
	got := ExactSweepCycles(4, 24, 960) / clock
	if math.Abs(got-3.3e-3)/3.3e-3 > 0.02 {
		t.Errorf("4-core exact sweep = %.4g s, paper says 3.3 ms", got)
	}
	// Eight cores, exact: 18.35 minutes.
	got = ExactSweepCycles(8, 24, 960) / clock
	if math.Abs(got-18.35*60)/(18.35*60) > 0.02 {
		t.Errorf("8-core exact sweep = %.4g s, paper says 18.35 min", got)
	}
	// Eight cores, approximate with δ=3: 67 ms.
	got = ApproxSweepCycles(8, 24, 960, 3) / clock
	if math.Abs(got-67e-3)/67e-3 > 0.05 {
		t.Errorf("8-core δ=3 sweep = %.4g s, paper says 67 ms", got)
	}
}

func TestDitherPlanApprox(t *testing.T) {
	plan, err := ApproxDither([]int{0, 1, 2, 3, 4, 5, 6, 7}, 24, 960, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Specs) != 7 {
		t.Fatalf("specs = %d", len(plan.Specs))
	}
	for _, spec := range plan.Specs {
		if spec.PadCycles != 4 {
			t.Errorf("δ=3 pad = %d, want 4", spec.PadCycles)
		}
	}
	if plan.Specs[1].PeriodCycles != 960*6 {
		t.Errorf("second period = %d, want %d", plan.Specs[1].PeriodCycles, 960*6)
	}
	// δ+1 must divide L+H.
	if _, err := ApproxDither([]int{0, 1}, 25, 960, 3); err == nil {
		t.Error("L+H not a multiple of δ+1 accepted")
	}
	if _, err := ApproxDither([]int{0, 1}, 24, 960, 0); err == nil {
		t.Error("δ=0 should be rejected by ApproxDither")
	}
}

func TestDitherPlanErrors(t *testing.T) {
	if _, err := ExactDither(nil, 24, 960); err == nil {
		t.Error("empty cores accepted")
	}
	if _, err := ExactDither([]int{0}, 1, 960); err == nil {
		t.Error("loop too short accepted")
	}
	if _, err := ExactDither([]int{0, 1}, 24, 0); err == nil {
		t.Error("M=0 accepted")
	}
}

func TestResonanceSweepFindsPDNResonance(t *testing.T) {
	p := testbed.Bulldozer()
	sweep := ResonanceSweep{Platform: p, MeasureCycles: 8000, WarmupCycles: 2500}
	pts, best, err := sweep.Run(16, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 13 {
		t.Fatalf("points = %d", len(pts))
	}
	wantPeriod := p.Chip.ClockHz / p.PDN.FirstDroopNominal() // ≈ 35.8 cycles
	if math.Abs(float64(best.LoopCycles)-wantPeriod) > 8 {
		t.Errorf("sweep best loop = %d cycles, want ≈ %.1f", best.LoopCycles, wantPeriod)
	}
	if best.DroopV <= 0 {
		t.Error("no droop measured")
	}
}

func TestResonanceSweepValidation(t *testing.T) {
	p := testbed.Bulldozer()
	sweep := ResonanceSweep{Platform: p}
	if _, _, err := sweep.Run(2, 1, 1); err == nil {
		t.Error("bad range accepted")
	}
	if _, err := ProbeProgram(2, 4, 10, true); err == nil {
		t.Error("tiny probe accepted")
	}
}

func smallGA(seed int64) ga.Config {
	return ga.Config{
		PopSize:        8,
		Elites:         2,
		TournamentK:    3,
		MutationProb:   0.6,
		MaxGenerations: 4,
		StagnantLimit:  0,
		Seed:           seed,
	}
}

func TestGenerateResonantStressmark(t *testing.T) {
	p := testbed.Bulldozer()
	period := int(math.Round(p.Chip.ClockHz / p.PDN.FirstDroopNominal()))
	sm, err := Generate(context.Background(), Options{
		Platform:      p,
		LoopCycles:    period,
		GA:            smallGA(5),
		MeasureCycles: 3000,
		WarmupCycles:  2000,
		Name:          "a-res-test",
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sm.DroopV <= 0 {
		t.Fatal("generated stressmark has no droop")
	}
	if sm.Program == nil || sm.Program.Len() == 0 {
		t.Fatal("no program")
	}
	if err := sm.Program.Validate(); err != nil {
		t.Fatal(err)
	}
	if sm.Search.Evaluations < smallGA(5).PopSize {
		t.Error("GA did not evaluate")
	}
	// The generated mark should be at least as good as the trivial
	// FMA/NOP probe at the same loop length — the probe pattern is in
	// the search space.
	probe, err := ProbeProgram(period, p.Chip.DecodeWidth, 1<<40, true)
	if err != nil {
		t.Fatal(err)
	}
	specs, _ := testbed.SpreadPlacement(p.Chip, probe, 4)
	m, err := p.Run(testbed.RunConfig{Threads: specs, MaxCycles: 5000, WarmupCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if sm.DroopV < 0.6*m.MaxDroopV {
		t.Errorf("generated droop %.4f far below trivial probe %.4f", sm.DroopV, m.MaxDroopV)
	}
}

func TestGenerateExcitationMode(t *testing.T) {
	p := testbed.Bulldozer()
	sm, err := Generate(context.Background(), Options{
		Platform:      p,
		LoopCycles:    36,
		Mode:          Excitation,
		GA:            smallGA(9),
		MeasureCycles: 3000,
		WarmupCycles:  2000,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sm.Mode != Excitation {
		t.Error("mode not recorded")
	}
	// Excitation programs have a much longer loop (6 periods).
	if sm.Program.Len() < 36*4 {
		t.Errorf("excitation program suspiciously short: %d", sm.Program.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := testbed.Bulldozer()
	gen := func() float64 {
		sm, err := Generate(context.Background(), Options{
			Platform:      p,
			LoopCycles:    36,
			GA:            smallGA(21),
			MeasureCycles: 2500,
			WarmupCycles:  1500,
			Seed:          21,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sm.DroopV
	}
	if a, b := gen(), gen(); a != b {
		t.Errorf("generation not deterministic: %v vs %v", a, b)
	}
}

func TestGenerateUnderThrottleCannotMatchUnthrottled(t *testing.T) {
	if testing.Short() {
		t.Skip("GA budget too large for -short")
	}
	p := testbed.Bulldozer()
	gacfg := ga.Config{
		PopSize: 10, Elites: 2, TournamentK: 3, MutationProb: 0.6,
		MaxGenerations: 8, Seed: 13,
	}
	base, err := Generate(context.Background(), Options{
		Platform: p, LoopCycles: 36, GA: gacfg,
		MeasureCycles: 2500, WarmupCycles: 1500, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	throttled, err := Generate(context.Background(), Options{
		Platform: p, LoopCycles: 36, GA: gacfg, FPThrottle: 1,
		MeasureCycles: 2500, WarmupCycles: 1500, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// §5.B: the throttled-trained stressmark (A-Res-Th) works around
	// the restriction but "is not able to match the droops seen without
	// FPU throttling".
	if throttled.DroopV >= base.DroopV {
		t.Errorf("throttled generation droop %.4f should trail unthrottled %.4f",
			throttled.DroopV, base.DroopV)
	}
}

func TestCostFunctions(t *testing.T) {
	m := &testbed.Measurement{MaxDroopV: 0.1, AvgPowerW: 50, Cycles: 100}
	m.UnitTotals[isa.UnitIDiv] = 50
	if MaxDroop(m) != 0.1 {
		t.Error("MaxDroop wrong")
	}
	if got := DroopPerWatt(m); math.Abs(got-0.002) > 1e-12 {
		t.Errorf("DroopPerWatt = %v", got)
	}
	pw := PathWeighted(map[isa.Unit]float64{isa.UnitIDiv: 0.2})
	if got := pw(m); math.Abs(got-(0.1+0.2*0.5)) > 1e-12 {
		t.Errorf("PathWeighted = %v", got)
	}
	zero := &testbed.Measurement{}
	if DroopPerWatt(zero) != 0 {
		t.Error("DroopPerWatt should guard zero power")
	}
	if pw(zero) != 0 {
		t.Error("PathWeighted should guard zero cycles")
	}
}

func TestStressmarkSaveLoadResume(t *testing.T) {
	p := testbed.Bulldozer()
	sm, err := Generate(context.Background(), Options{
		Platform: p, LoopCycles: 36, GA: smallGA(41),
		MeasureCycles: 2500, WarmupCycles: 1500, Seed: 41, Name: "ckpt",
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, pop, err := LoadStressmark(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != sm.Name || back.LoopCycles != sm.LoopCycles || back.DroopV != sm.DroopV {
		t.Errorf("metadata changed: %+v vs %+v", back, sm)
	}
	if back.Program.Len() != sm.Program.Len() {
		t.Error("program changed across save/load")
	}
	if len(pop) != smallGA(41).PopSize {
		t.Errorf("population size = %d, want %d", len(pop), smallGA(41).PopSize)
	}
	// Resuming with the saved population must do at least as well.
	resumed, err := Generate(context.Background(), Options{
		Platform: p, LoopCycles: 36, GA: smallGA(43), SeedGenomes: pop,
		MeasureCycles: 2500, WarmupCycles: 1500, Seed: 43, Name: "resumed",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.DroopV < sm.DroopV*0.999 {
		t.Errorf("resumed search regressed: %.4f vs checkpoint %.4f", resumed.DroopV, sm.DroopV)
	}
}

func TestLoadStressmarkRejectsGarbage(t *testing.T) {
	if _, _, err := LoadStressmark(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := LoadStressmark(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("bad version accepted")
	}
	if _, _, err := LoadStressmark(strings.NewReader(`{"version":1,"program":"!!!"}`)); err == nil {
		t.Error("bad base64 accepted")
	}
}

func TestSaveRequiresProgram(t *testing.T) {
	sm := &Stressmark{}
	if err := sm.Save(io.Discard); err == nil {
		t.Error("empty stressmark saved")
	}
}

func TestGenerateSuite(t *testing.T) {
	p := testbed.Bulldozer()
	scenarios := DefaultSuite(p)
	if len(scenarios) != 5 {
		t.Fatalf("default suite has %d scenarios, want 5", len(scenarios))
	}
	// Tiny budget: the point here is coverage of the scenario matrix.
	marks, err := GenerateSuite(context.Background(), p, scenarios[:3], Options{
		GA:            smallGA(51),
		LoopCycles:    36,
		MeasureCycles: 2000,
		WarmupCycles:  1500,
		Seed:          51,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 3 {
		t.Fatalf("marks = %d", len(marks))
	}
	for i, sm := range marks {
		if sm.Threads != scenarios[i].Threads {
			t.Errorf("%s: threads %d, want %d", sm.Name, sm.Threads, scenarios[i].Threads)
		}
		if sm.DroopV <= 0 {
			t.Errorf("%s: no droop", sm.Name)
		}
	}
	if _, err := GenerateSuite(context.Background(), p, nil, Options{}); err == nil {
		t.Error("empty suite accepted")
	}
}

func TestGenerateHetero(t *testing.T) {
	p := testbed.Bulldozer()
	sm, err := GenerateHetero(context.Background(), Options{
		Platform: p, LoopCycles: 36, Threads: 8,
		GA:            smallGA(61),
		MeasureCycles: 2500, WarmupCycles: 1500,
		Seed: 61, Name: "hetero-8t",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.Programs) != 8 {
		t.Fatalf("programs = %d", len(sm.Programs))
	}
	for i, prog := range sm.Programs {
		if err := prog.Validate(); err != nil {
			t.Errorf("thread %d: %v", i, err)
		}
	}
	if sm.DroopV <= 0 {
		t.Fatal("no droop")
	}
	// The complementary seed should show up as asymmetry: not all
	// per-thread programs are identical.
	same := true
	first := sm.Programs[0].Text()
	for _, prog := range sm.Programs[1:] {
		if prog.Text() != first {
			same = false
			break
		}
	}
	if same {
		t.Error("heterogeneous generation produced identical threads")
	}
}

func TestGenerateHeteroValidation(t *testing.T) {
	p := testbed.Bulldozer()
	if _, err := GenerateHetero(context.Background(), Options{Platform: p, GA: smallGA(1), Threads: 2}); err == nil {
		t.Error("missing LoopCycles accepted")
	}
	if _, err := GenerateHetero(context.Background(), Options{Platform: p, GA: smallGA(1), Threads: 2, LoopCycles: 36, Mode: Excitation}); err == nil {
		t.Error("excitation mode accepted")
	}
}

func TestPropertyArbitraryGenomesBuildAndRun(t *testing.T) {
	// Robustness: any genome the operators can produce must build into
	// a valid program that executes without wedging the simulator.
	p := testbed.Bulldozer()
	cg := &CodeGen{
		Opcodes:   DefaultOpcodeList(),
		Width:     p.Chip.DecodeWidth,
		LoopIters: 50,
		MemBytes:  4096,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := cg.NewGenome(rng, 1+rng.Intn(8), 1+rng.Intn(4), rng.Intn(30), rng.Float64())
		for i := 0; i < 5; i++ {
			g = cg.Mutate(rng, g)
		}
		prog, err := cg.Build("prop", g)
		if err != nil {
			return false
		}
		if prog.Validate() != nil {
			return false
		}
		specs, err := testbed.SpreadPlacement(p.Chip, prog, 2)
		if err != nil {
			return false
		}
		m, err := p.Run(testbed.RunConfig{Threads: specs, MaxCycles: 4000})
		if err != nil {
			return false
		}
		return m.Retired > 0 && !math.IsNaN(m.MaxDroopV) && m.MaxDroopV >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
