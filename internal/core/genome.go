// Package core implements AUDIT, the automated di/dt stressmark
// generation framework of the paper: a genetic algorithm searches over
// instruction schedules whose measured voltage droop — on the testbed
// "hardware" path — is the fitness. The package provides the
// hierarchical sub-block genome (§3.C), the code generator that turns
// genomes into NASM-style programs, automatic resonance-frequency
// detection (§3), the exact and approximate dithering planners for
// multi-core thread alignment (§3.B), and the end-to-end generation
// driver with pluggable cost functions.
package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Slot is one instruction slot in a sub-block: an opcode choice plus
// operand selectors. Op == -1 leaves the slot as a NOP — the GA can and
// does exploit this, which is how AUDIT discovered that sprinkling NOPs
// into the high-power region raises the droop (§5.A.5).
type Slot struct {
	// Op indexes the generator's opcode list; -1 = NOP.
	Op int16
	// A selects the destination register, B/C the sources (interpreted
	// modulo the relevant register-pool size per the opcode's shape).
	A, B, C uint8
}

// Genome is a hierarchical stressmark candidate: one sub-block of
// K cycles × issue-width slots, replicated S times to form the
// high-power region, followed by a NOP low-power region. Flat
// ([13]-style) genomes are the special case S == 1 with a sub-block as
// long as the whole HP region.
type Genome struct {
	// Slots holds K×Width entries, row-major by cycle.
	Slots []Slot
	// S is the sub-block replication count.
	S int
	// LPCycles is the length of the NOP region in decode cycles.
	LPCycles int
}

// Clone deep-copies the genome.
func (g Genome) Clone() Genome {
	out := g
	out.Slots = append([]Slot(nil), g.Slots...)
	return out
}

// Fingerprint returns a canonical content key for fitness memoization
// (ga.Ops.Fingerprint): it is an exact packed encoding of everything
// that determines the built program — shape then every slot — so equal
// keys mean equal phenotypes, with no hash-collision risk.
func (g Genome) Fingerprint() string {
	b := make([]byte, 0, 16+5*len(g.Slots))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(g.S))
	b = append(b, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(g.LPCycles))
	b = append(b, tmp[:]...)
	for _, s := range g.Slots {
		b = append(b, byte(uint16(s.Op)), byte(uint16(s.Op)>>8), s.A, s.B, s.C)
	}
	return string(b)
}

// Register pools used by the code generator. The loop counter (rcx) and
// memory base (rbp) are reserved; XMM accumulators are kept apart from
// the toggle-seeded XMM sources so the alternating maximum-toggle
// values (§3) keep feeding the functional units.
const (
	numXMMAcc = 12 // xmm0..xmm11 accumulate results
	numXMMSrc = 4  // xmm12..xmm15 hold alternating toggle patterns
	numGPRAcc = 8  // r8..r15
	numGPRSrc = 2  // rsi, rdi hold toggle patterns
)

func xmmAcc(sel uint8) isa.Reg { return isa.XMM(int(sel) % numXMMAcc) }
func xmmSrc(sel uint8) isa.Reg { return isa.XMM(numXMMAcc + int(sel)%numXMMSrc) }
func gprAcc(sel uint8) isa.Reg { return isa.GPR(8 + int(sel)%numGPRAcc) }
func gprSrc(sel uint8) isa.Reg { return isa.GPR(6 + int(sel)%numGPRSrc) }

// CodeGen turns genomes into runnable programs.
type CodeGen struct {
	// Opcodes is the instruction repertoire the GA may use (the
	// framework's "opcode list" input, Fig. 5). Branches and barriers
	// are managed by the generator itself and are rejected here.
	Opcodes []*isa.Opcode
	// Width is slots per cycle (the machine's decode width).
	Width int
	// LoopIters is the trip count of generated loops.
	LoopIters int64
	// MemBytes sizes the data segment for load/store slots.
	MemBytes int
}

// Validate checks the configuration.
func (cg *CodeGen) Validate() error {
	if len(cg.Opcodes) == 0 {
		return fmt.Errorf("core: empty opcode list")
	}
	for _, op := range cg.Opcodes {
		switch op.Class {
		case isa.ClassBranch, isa.ClassBarrier:
			return fmt.Errorf("core: opcode list may not contain %s", op.Name)
		}
	}
	if cg.Width < 1 {
		return fmt.Errorf("core: width must be ≥ 1")
	}
	if cg.LoopIters < 1 {
		return fmt.Errorf("core: loop iterations must be ≥ 1")
	}
	if cg.MemBytes < 64 {
		return fmt.Errorf("core: memory segment too small")
	}
	return nil
}

// NewGenome creates a random genome with the given sub-block size
// (cycles), replication count and LP length. nopBias is the probability
// a slot starts empty.
func (cg *CodeGen) NewGenome(rng *rand.Rand, subBlockCycles, s, lpCycles int, nopBias float64) Genome {
	n := subBlockCycles * cg.Width
	g := Genome{Slots: make([]Slot, n), S: s, LPCycles: lpCycles}
	for i := range g.Slots {
		g.Slots[i] = cg.randomSlot(rng, nopBias)
	}
	return g
}

func (cg *CodeGen) randomSlot(rng *rand.Rand, nopBias float64) Slot {
	if rng.Float64() < nopBias {
		return Slot{Op: -1}
	}
	return Slot{
		Op: int16(rng.Intn(len(cg.Opcodes))),
		A:  uint8(rng.Intn(256)),
		B:  uint8(rng.Intn(256)),
		C:  uint8(rng.Intn(256)),
	}
}

// Crossover mixes two genomes slot-wise (uniform crossover) and
// inherits S/LPCycles from the first parent.
func (cg *CodeGen) Crossover(rng *rand.Rand, a, b Genome) Genome {
	child := a.Clone()
	if len(b.Slots) == len(child.Slots) {
		for i := range child.Slots {
			if rng.Intn(2) == 1 {
				child.Slots[i] = b.Slots[i]
			}
		}
	}
	return child
}

// Mutate perturbs 1–3 slots: replace with a fresh random slot, blank to
// NOP, or tweak operand selectors.
func (cg *CodeGen) Mutate(rng *rand.Rand, g Genome) Genome {
	out := g.Clone()
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		at := rng.Intn(len(out.Slots))
		switch rng.Intn(3) {
		case 0:
			out.Slots[at] = cg.randomSlot(rng, 0.1)
		case 1:
			out.Slots[at] = Slot{Op: -1}
		case 2:
			s := out.Slots[at]
			s.A = uint8(rng.Intn(256))
			s.B = uint8(rng.Intn(256))
			out.Slots[at] = s
		}
	}
	return out
}

// instr materialises one slot as an instruction. slotIdx individualises
// memory displacements so load/store slots stride across the segment.
func (cg *CodeGen) instr(s Slot, slotIdx int) (isa.Instruction, bool) {
	if s.Op < 0 || int(s.Op) >= len(cg.Opcodes) {
		return isa.Instruction{}, false
	}
	op := cg.Opcodes[s.Op]
	in := isa.Instruction{Op: op}
	gpr := op.RegKind == isa.RegGPR
	switch op.Shape {
	case isa.ShapeNone:
		return isa.Instruction{}, false // an explicit nop opcode: same as empty
	case isa.ShapeRR:
		if gpr {
			in.Dst, in.Src1 = gprAcc(s.A), gprSrc(s.B)
		} else {
			in.Dst, in.Src1 = xmmAcc(s.A), xmmSrc(s.B)
		}
	case isa.ShapeRRR:
		in.Dst, in.Src1, in.Src2 = xmmAcc(s.A), xmmSrc(s.B), xmmSrc(s.C)
	case isa.ShapeRI:
		in.Dst, in.Imm = gprAcc(s.A), int64(s.B)
	case isa.ShapeLoad:
		in.Dst = gprAcc(s.A)
		if !gpr {
			in.Dst = xmmAcc(s.A)
		}
		in.MemBase = isa.RBP
		in.MemDisp = int32((slotIdx * 64) % cg.MemBytes)
	case isa.ShapeStore:
		in.Src1 = gprAcc(s.A)
		if !gpr {
			in.Src1 = xmmAcc(s.A)
		}
		in.MemBase = isa.RBP
		in.MemDisp = int32((slotIdx * 64) % cg.MemBytes)
	default:
		return isa.Instruction{}, false
	}
	return in, true
}

// Build assembles the genome into a runnable loop program:
//
//	movimm rcx, iters
//	loop:  S × (sub-block slots)   ← high-power region
//	       LPCycles × Width NOPs   ← low-power region
//	       dec rcx ; jnz loop
func (cg *CodeGen) Build(name string, g Genome) (*asm.Program, error) {
	if err := cg.Validate(); err != nil {
		return nil, err
	}
	if g.S < 1 || g.LPCycles < 0 {
		return nil, fmt.Errorf("core: bad genome shape S=%d LP=%d", g.S, g.LPCycles)
	}
	b := asm.NewBuilder(name)
	b.SetMem(cg.MemBytes)
	b.InitToggle(16, 8)
	b.RI("movimm", isa.RCX, cg.LoopIters)
	b.RI("movimm", isa.RBP, 0)
	b.Label("loop")
	slotIdx := 0
	for rep := 0; rep < g.S; rep++ {
		for _, s := range g.Slots {
			if in, ok := cg.instr(s, slotIdx); ok {
				b.Raw(in)
			} else {
				b.Nop(1)
			}
			slotIdx++
		}
	}
	b.Nop(g.LPCycles * cg.Width)
	b.RR("dec", isa.RCX, isa.RCX)
	b.Branch("jnz", "loop")
	return b.Build()
}

// seedGenome builds the trivial probe-style genome: two high-power FP
// ops plus NOPs per cycle. It anchors the GA's initial population at a
// known-good stressmark the search then refines.
func (cg *CodeGen) seedGenome(subBlockCycles, s, lpCycles int) Genome {
	// Pick the highest-energy FP opcode available, falling back to the
	// highest-energy opcode overall.
	best := 0
	for i, op := range cg.Opcodes {
		if op.EnergyPJ > cg.Opcodes[best].EnergyPJ {
			best = i
		}
	}
	g := Genome{Slots: make([]Slot, subBlockCycles*cg.Width), S: s, LPCycles: lpCycles}
	for row := 0; row < subBlockCycles; row++ {
		for w := 0; w < cg.Width; w++ {
			i := row*cg.Width + w
			if w < 2 {
				g.Slots[i] = Slot{Op: int16(best), A: uint8(row*2 + w), B: uint8(w), C: uint8(w + 2)}
			} else {
				g.Slots[i] = Slot{Op: -1}
			}
		}
	}
	return g
}

// ReplaceNopSlots returns a copy of the genome with every empty slot
// replaced by the named opcode on rotating independent destination
// registers — the §5.A.5 ablation ("we replaced the NOPs in the
// high-power region with independent, integer ADD operations").
func (cg *CodeGen) ReplaceNopSlots(g Genome, opName string) (Genome, error) {
	idx := -1
	for i, op := range cg.Opcodes {
		if op.Name == opName {
			idx = i
			break
		}
	}
	if idx < 0 {
		return Genome{}, fmt.Errorf("core: opcode %q not in the generator's list", opName)
	}
	out := g.Clone()
	for i := range out.Slots {
		if out.Slots[i].Op < 0 {
			out.Slots[i] = Slot{Op: int16(idx), A: uint8(i), B: uint8(i % 2)}
		}
	}
	return out, nil
}

// CountNopSlots returns how many slots of the genome are empty.
func CountNopSlots(g Genome) int {
	n := 0
	for _, s := range g.Slots {
		if s.Op < 0 {
			n++
		}
	}
	return n
}

// HPCycles returns the nominal high-power region length in cycles.
func (cg *CodeGen) HPCycles(g Genome) int {
	return g.S * len(g.Slots) / cg.Width
}

// DefaultOpcodeList returns the repertoire AUDIT searches over on x86:
// all integer, FP and SIMD compute plus loads and stores.
func DefaultOpcodeList() []*isa.Opcode {
	var out []*isa.Opcode
	for _, op := range isa.AllOpcodes() {
		switch op.Class {
		case isa.ClassBranch, isa.ClassBarrier, isa.ClassNOP:
			continue
		}
		out = append(out, op)
	}
	return out
}

// IntOnlyOpcodeList returns a repertoire without FP/SIMD instructions,
// used when studying throttled or FP-less configurations.
func IntOnlyOpcodeList() []*isa.Opcode {
	var out []*isa.Opcode
	for _, op := range DefaultOpcodeList() {
		if !op.Class.IsFP() {
			out = append(out, op)
		}
	}
	return out
}
