package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/ga"
	"repro/internal/isa"
	"repro/internal/testbed"
)

// HeteroGenome is one candidate per hardware thread. The paper
// generates homogeneous stressmarks ("we instructed AUDIT to generate a
// homogeneous stressmark with four identical threads"); heterogeneous
// generation is the natural extension it implies for machines with
// shared resources — sibling threads can specialise (one floating-point
// heavy, one integer heavy) and sidestep the shared-FPU contention that
// makes homogeneous marks lose at 8T (§5.A.2).
type HeteroGenome struct {
	PerThread []Genome
}

// Clone deep-copies the genome.
func (h HeteroGenome) Clone() HeteroGenome {
	out := HeteroGenome{PerThread: make([]Genome, len(h.PerThread))}
	for i, g := range h.PerThread {
		out.PerThread[i] = g.Clone()
	}
	return out
}

// Fingerprint is the memoization key: per-thread fingerprints joined
// with length prefixes, so thread boundaries stay unambiguous.
func (h HeteroGenome) Fingerprint() string {
	b := make([]byte, 0, 64*len(h.PerThread))
	var tmp [8]byte
	for _, g := range h.PerThread {
		fp := g.Fingerprint()
		binary.LittleEndian.PutUint64(tmp[:], uint64(len(fp)))
		b = append(b, tmp[:]...)
		b = append(b, fp...)
	}
	return string(b)
}

// HeteroStressmark is the result of heterogeneous generation.
type HeteroStressmark struct {
	Name     string
	Programs []*asm.Program // one per thread, placement order
	Threads  int
	DroopV   float64
	Genome   HeteroGenome
	Search   *ga.Result[HeteroGenome]
	// TraceStats snapshots the compiled platform's trace-cache and
	// batch-pipeline counters at the end of the search.
	TraceStats testbed.TraceStats
}

// GenerateHetero runs the AUDIT flow with an independent genome per
// thread. Options are interpreted as in Generate; LoopCycles must be
// set (run a ResonanceSweep first, as Generate would).
func GenerateHetero(ctx context.Context, opt Options) (*HeteroStressmark, error) {
	opt.fillDefaults()
	var gaResume *ga.Checkpoint[HeteroGenome]
	if opt.Resume != nil {
		var err error
		gaResume, err = decodeGACheckpoint[HeteroGenome](opt.Resume, true)
		if err != nil {
			return nil, err
		}
		opt.LoopCycles = opt.Resume.LoopCycles
		opt.Threads = opt.Resume.Threads
		opt.Mode = Mode(opt.Resume.Mode)
		if opt.Resume.Name != "" {
			opt.Name = opt.Resume.Name
		}
	}
	if opt.LoopCycles == 0 {
		return nil, fmt.Errorf("core: heterogeneous generation needs an explicit LoopCycles")
	}
	if opt.Mode != Resonance {
		return nil, fmt.Errorf("core: heterogeneous generation supports resonance mode only")
	}
	loop := opt.LoopCycles
	hp := loop / 2
	lp := loop - hp - 1
	k := opt.SubBlockCycles
	if k > hp {
		k = hp
	}
	s := hp / k
	if s < 1 {
		s = 1
	}
	lp += hp - s*k

	cg := &CodeGen{
		Opcodes:   opt.Opcodes,
		Width:     opt.Platform.Chip.DecodeWidth,
		LoopIters: 1 << 40,
		MemBytes:  4096,
	}
	if err := cg.Validate(); err != nil {
		return nil, err
	}

	build := func(h HeteroGenome) ([]*asm.Program, error) {
		progs := make([]*asm.Program, len(h.PerThread))
		for i, g := range h.PerThread {
			p, err := cg.Build(fmt.Sprintf("%s-t%d", opt.Name, i), g)
			if err != nil {
				return nil, err
			}
			progs[i] = p
		}
		return progs, nil
	}

	cp, err := opt.Platform.Compile()
	if err != nil {
		return nil, err
	}
	if err := applyTraceOptions(cp, opt); err != nil {
		return nil, err
	}
	var runner testbed.Runner = cp
	if opt.WrapRunner != nil {
		if runner = opt.WrapRunner(cp); runner == nil {
			return nil, fmt.Errorf("core: WrapRunner returned nil")
		}
	}
	makeRC := func(h HeteroGenome) (testbed.RunConfig, error) {
		progs, err := build(h)
		if err != nil {
			return testbed.RunConfig{}, err
		}
		specs, err := testbed.SpreadPlacement(opt.Platform.Chip, progs[0], opt.Threads)
		if err != nil {
			return testbed.RunConfig{}, err
		}
		for i := range specs {
			specs[i].Program = progs[i]
		}
		return testbed.RunConfig{
			Threads:        specs,
			MaxCycles:      opt.WarmupCycles + opt.MeasureCycles,
			WarmupCycles:   opt.WarmupCycles,
			FPThrottle:     opt.FPThrottle,
			ExactCycleLoop: opt.ExactEval,
		}, nil
	}
	eval := func(h HeteroGenome) (float64, error) {
		rc, err := makeRC(h)
		if err != nil {
			return 0, err
		}
		m, err := runner.Run(rc)
		if err != nil {
			return 0, err
		}
		return opt.Cost(m), nil
	}

	ops := ga.Ops[HeteroGenome]{
		Random: func(rng *rand.Rand) HeteroGenome {
			h := HeteroGenome{PerThread: make([]Genome, opt.Threads)}
			for i := range h.PerThread {
				h.PerThread[i] = cg.NewGenome(rng, k, s, lp, opt.NopBias)
			}
			return h
		},
		Crossover: func(rng *rand.Rand, a, b HeteroGenome) HeteroGenome {
			child := a.Clone()
			for i := range child.PerThread {
				if i < len(b.PerThread) {
					child.PerThread[i] = cg.Crossover(rng, child.PerThread[i], b.PerThread[i])
				}
			}
			return child
		},
		Mutate: func(rng *rand.Rand, h HeteroGenome) HeteroGenome {
			out := h.Clone()
			i := rng.Intn(len(out.PerThread))
			out.PerThread[i] = cg.Mutate(rng, out.PerThread[i])
			return out
		},
		Fingerprint:    HeteroGenome.Fingerprint,
		EvalGeneration: batchEval(runner, opt, makeRC),
	}

	// Seeds. When sibling threads share a front end, decode alternates
	// between them, so each thread sees half the decode bandwidth and a
	// full-length loop would run at twice the period — off resonance.
	// The seeds therefore use half-length loops when threads share
	// modules: the alternation re-doubles them back onto the resonance.
	var seeds []HeteroGenome
	if !opt.NoSeed {
		sSeed, lpSeed := s, lp
		if opt.Platform.Chip.SharedFrontEnd && opt.Threads > opt.Platform.Chip.Modules {
			sSeed = s / 2
			if sSeed < 1 {
				sSeed = 1
			}
			lpSeed = loop/2 - sSeed*k - 1
			if lpSeed < 0 {
				lpSeed = 0
			}
		}
		homo := HeteroGenome{PerThread: make([]Genome, opt.Threads)}
		comp := HeteroGenome{PerThread: make([]Genome, opt.Threads)}
		fpSeed := cg.seedGenome(k, sSeed, lpSeed)
		intSeed := intSeedGenome(cg, k, sSeed, lpSeed)
		for i := 0; i < opt.Threads; i++ {
			homo.PerThread[i] = fpSeed.Clone()
			if i < opt.Threads/2 {
				// SpreadPlacement fills core 0 of every module first,
				// then the sibling cores: the first half of the specs
				// never shares an FPU with the second half.
				comp.PerThread[i] = fpSeed.Clone()
			} else {
				comp.PerThread[i] = intSeed.Clone()
			}
		}
		seeds = append(seeds, comp, homo)
	}

	var sink func(*ga.Checkpoint[HeteroGenome]) error
	if opt.CheckpointPath != "" {
		sink = checkpointSink[HeteroGenome](opt.CheckpointPath, SearchCheckpoint{
			Name:       opt.Name,
			Hetero:     true,
			Threads:    opt.Threads,
			LoopCycles: opt.LoopCycles,
			Mode:       int(opt.Mode),
		})
	}
	res, err := ga.RunCheckpointed(ctx, opt.GA, ops, seeds, eval, gaResume, sink)
	if err != nil {
		return nil, fmt.Errorf("core: hetero GA: %w", err)
	}
	progs, err := build(res.Best)
	if err != nil {
		return nil, err
	}
	return &HeteroStressmark{
		Name:       opt.Name,
		Programs:   progs,
		Threads:    opt.Threads,
		DroopV:     res.BestFitness,
		Genome:     res.Best,
		Search:     res,
		TraceStats: cp.TraceStats(),
	}, nil
}

// intSeedGenome is the integer counterpart of seedGenome: one ALU op
// plus one multiply per cycle — the ALU and the multiplier are separate
// pipes, so the pattern sustains two integer ops per cycle without
// stretching the loop.
func intSeedGenome(cg *CodeGen, subBlockCycles, s, lpCycles int) Genome {
	idxOf := func(class isa.Class) int16 {
		best, bestE := int16(-1), 0.0
		for i, op := range cg.Opcodes {
			if op.Class == class && op.EnergyPJ > bestE {
				best, bestE = int16(i), op.EnergyPJ
			}
		}
		return best
	}
	alu := idxOf(isa.ClassIntALU)
	mul := idxOf(isa.ClassIntMul)
	g := Genome{Slots: make([]Slot, subBlockCycles*cg.Width), S: s, LPCycles: lpCycles}
	for row := 0; row < subBlockCycles; row++ {
		for w := 0; w < cg.Width; w++ {
			i := row*cg.Width + w
			switch {
			case w == 0 && alu >= 0:
				g.Slots[i] = Slot{Op: alu, A: uint8(row), B: uint8(w)}
			case w == 1 && mul >= 0:
				g.Slots[i] = Slot{Op: mul, A: uint8(4 + row%4), B: uint8(w)}
			default:
				g.Slots[i] = Slot{Op: -1}
			}
		}
	}
	return g
}
