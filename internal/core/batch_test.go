package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/testbed"
)

// TestGenerateBatchedMatchesPerCandidate: the generation-batched
// pipeline (default) and the per-candidate path (BatchLanes < 0) must
// produce identical searches — same droop, same winning genome, same
// trajectory and evaluation accounting — across lane widths and worker
// counts. Run under -race in CI.
func TestGenerateBatchedMatchesPerCandidate(t *testing.T) {
	p := testbed.Bulldozer()
	gen := func(lanes, workers int) *Stressmark {
		cfg := smallGA(11)
		cfg.Parallel = workers
		sm, err := Generate(context.Background(), Options{
			Platform:      p,
			LoopCycles:    36,
			GA:            cfg,
			MeasureCycles: 2000,
			WarmupCycles:  1200,
			Seed:          11,
			BatchLanes:    lanes,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sm
	}
	want := gen(-1, 0) // per-candidate reference
	for _, lanes := range []int{0, 1, 2, 4, 8} {
		for _, workers := range []int{0, 4} {
			got := gen(lanes, workers)
			if got.DroopV != want.DroopV {
				t.Errorf("lanes=%d workers=%d: droop %v != %v", lanes, workers, got.DroopV, want.DroopV)
			}
			if !reflect.DeepEqual(got.Genome, want.Genome) {
				t.Errorf("lanes=%d workers=%d: winning genome diverged", lanes, workers)
			}
			if !reflect.DeepEqual(got.Search.History, want.Search.History) {
				t.Errorf("lanes=%d workers=%d: history diverged:\n got %v\nwant %v",
					lanes, workers, got.Search.History, want.Search.History)
			}
			if got.Search.Evaluations != want.Search.Evaluations ||
				got.Search.CacheHits != want.Search.CacheHits {
				t.Errorf("lanes=%d workers=%d: accounting diverged: evals %d/%d hits %d/%d",
					lanes, workers, got.Search.Evaluations, want.Search.Evaluations,
					got.Search.CacheHits, want.Search.CacheHits)
			}
			if lanes >= 0 && got.TraceStats.BatchRuns == 0 {
				t.Errorf("lanes=%d workers=%d: batch pipeline never engaged", lanes, workers)
			}
		}
	}
	if want.TraceStats.BatchRuns != 0 {
		t.Errorf("BatchLanes<0 still entered the batch pipeline (%d runs)", want.TraceStats.BatchRuns)
	}
}

// TestGenerateHeteroBatchedMatches: same property for heterogeneous
// generation.
func TestGenerateHeteroBatchedMatches(t *testing.T) {
	p := testbed.Bulldozer()
	gen := func(lanes int) *HeteroStressmark {
		cfg := smallGA(5)
		cfg.Parallel = 4
		sm, err := GenerateHetero(context.Background(), Options{
			Platform:      p,
			LoopCycles:    36,
			Threads:       2,
			GA:            cfg,
			MeasureCycles: 2000,
			WarmupCycles:  1200,
			Seed:          5,
			BatchLanes:    lanes,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sm
	}
	want := gen(-1)
	got := gen(0)
	if got.DroopV != want.DroopV || !reflect.DeepEqual(got.Genome, want.Genome) {
		t.Error("hetero batched search diverged from per-candidate")
	}
	if !reflect.DeepEqual(got.Search.History, want.Search.History) {
		t.Errorf("hetero history diverged:\n got %v\nwant %v", got.Search.History, want.Search.History)
	}
	if got.TraceStats.BatchRuns == 0 {
		t.Error("hetero batch pipeline never engaged")
	}
}
