package scope

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScopeDecimationAndPeakDetect(t *testing.T) {
	s, err := New(1e9, 1e8, true) // decimate by 10, peak detect
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v := 1.25
		if i == 37 {
			v = 1.10 // a one-step droop between sample points
		}
		s.Sample(v)
	}
	w := s.Waveform()
	if len(w) != 10 {
		t.Fatalf("waveform length %d, want 10", len(w))
	}
	found := false
	for _, v := range w {
		if v == 1.10 {
			found = true
		}
	}
	if !found {
		t.Error("peak detect lost the droop")
	}
	min, max := s.Extrema()
	if min != 1.10 || max != 1.25 {
		t.Errorf("extrema = (%v, %v)", min, max)
	}
	if s.Count() != 100 {
		t.Errorf("count = %d", s.Count())
	}
}

func TestScopePointSamplingCanMissDroop(t *testing.T) {
	// Without peak detect, a droop between sample points is lost — the
	// reason the paper's methodology (and ours) needs high-rate capture
	// for first droops.
	s, err := New(1e9, 1e8, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v := 1.25
		if i == 37 {
			v = 1.10
		}
		s.Sample(v)
	}
	for _, v := range s.Waveform() {
		if v == 1.10 {
			t.Fatal("point sampling unexpectedly captured the droop at a non-sample point")
		}
	}
	// But the full-rate extrema still see it.
	if min, _ := s.Extrema(); min != 1.10 {
		t.Errorf("extrema min = %v", min)
	}
}

func TestScopeRejectsBadRates(t *testing.T) {
	if _, err := New(0, 1e6, true); err == nil {
		t.Error("zero sim rate accepted")
	}
	if _, err := New(1e9, 0, true); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(1.0, 1.5, 5) // 0.1 V bins
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1.05) // bin 0
	h.Add(1.15) // bin 1
	h.Add(1.15)
	h.Add(1.49) // bin 4
	h.Add(0.9)  // under
	h.Add(1.6)  // over
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[4] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	if c := h.BinCenter(0); math.Abs(c-1.05) > 1e-12 {
		t.Errorf("bin center = %v", c)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, _ := NewHistogram(0, 1, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%100) / 100)
	}
	q := h.Quantile(0.5)
	if q < 0.4 || q > 0.6 {
		t.Errorf("median = %v", q)
	}
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("quantile clamp low failed")
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(1, 1, 10); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestQuickHistogramConservation(t *testing.T) {
	f := func(vals []float64) bool {
		h, _ := NewHistogram(-1, 1, 16)
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
		}
		var sum uint64
		for _, c := range h.Counts {
			sum += c
		}
		return sum+h.Under+h.Over == h.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTriggerEvents(t *testing.T) {
	tr := NewTrigger(1.15, 0.01)
	wave := []float64{1.25, 1.25, 1.12, 1.10, 1.13, 1.17, 1.25, 1.14, 1.18, 1.25}
	for _, v := range wave {
		tr.Sample(v)
	}
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2: %+v", len(ev), ev)
	}
	if ev[0].MinV != 1.10 {
		t.Errorf("event 0 min = %v", ev[0].MinV)
	}
	if ev[0].StartStep != 2 {
		t.Errorf("event 0 start = %d", ev[0].StartStep)
	}
	if ev[1].MinV != 1.14 {
		t.Errorf("event 1 min = %v", ev[1].MinV)
	}
}

func TestTriggerHysteresisHoldsEventOpen(t *testing.T) {
	tr := NewTrigger(1.15, 0.05)
	// Rises above threshold but not above threshold+hysteresis: still
	// the same event.
	for _, v := range []float64{1.10, 1.17, 1.08, 1.30} {
		tr.Sample(v)
	}
	if n := tr.EventCount(); n != 1 {
		t.Errorf("events = %d, want 1", n)
	}
	if tr.Events()[0].MinV != 1.08 {
		t.Errorf("min = %v", tr.Events()[0].MinV)
	}
}

func TestTriggerBoundsMemory(t *testing.T) {
	tr := NewTrigger(1.15, 0.01)
	tr.MaxEvents = 4
	for i := 0; i < 20; i++ {
		tr.Sample(1.0)
		tr.Sample(1.3)
	}
	if n := tr.EventCount(); n != 4 {
		t.Errorf("events = %d, want capped at 4", n)
	}
}
