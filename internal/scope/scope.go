// Package scope is the virtual oscilloscope: the stand-in for the
// Tektronix TDS5104B + differential probe of the paper's experimental
// set-up (Fig. 8). It samples the die voltage produced by the PDN
// model, optionally in peak-detect mode (so droops between coarse
// samples are not lost, mirroring how a real scope's min/max capture is
// used for di/dt work), triggers on droop events, and accumulates the
// Vdd histograms of Fig. 10.
package scope

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Scope captures a voltage waveform at a configurable sample rate from
// a simulation stepping at simHz.
type Scope struct {
	decim      int  // simulation steps per scope sample
	peakDetect bool // keep the min of each window instead of the first point

	countdown int
	windowMin float64
	samples   []float64

	// Running whole-run extrema (full simulation rate, not decimated).
	min, max float64
	n        uint64
}

// New builds a scope. simHz is the simulation step rate (CPU clock);
// sampleHz the scope's capture rate, capped at simHz. peakDetect keeps
// the window minimum rather than a point sample.
func New(simHz, sampleHz float64, peakDetect bool) (*Scope, error) {
	if simHz <= 0 || sampleHz <= 0 {
		return nil, fmt.Errorf("scope: rates must be positive")
	}
	decim := int(simHz / sampleHz)
	if decim < 1 {
		decim = 1
	}
	return &Scope{
		decim:      decim,
		peakDetect: peakDetect,
		windowMin:  math.Inf(1),
		min:        math.Inf(1),
		max:        math.Inf(-1),
	}, nil
}

// NewInto is New with a caller-provided sample buffer: the scope
// appends into buf[:0], so hot evaluation paths can recycle waveform
// storage across runs instead of growing a fresh slice every time. The
// captured samples are unaffected by where they are stored.
func NewInto(simHz, sampleHz float64, peakDetect bool, buf []float64) (*Scope, error) {
	s, err := New(simHz, sampleHz, peakDetect)
	if err != nil {
		return nil, err
	}
	s.samples = buf[:0]
	return s, nil
}

// Sample feeds one simulation-step voltage.
func (s *Scope) Sample(v float64) {
	s.n++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if s.peakDetect {
		if v < s.windowMin {
			s.windowMin = v
		}
	} else if s.countdown == 0 {
		s.windowMin = v
	}
	s.countdown++
	if s.countdown >= s.decim {
		s.samples = append(s.samples, s.windowMin)
		s.windowMin = math.Inf(1)
		s.countdown = 0
	}
}

// Waveform returns the captured (decimated) samples.
func (s *Scope) Waveform() []float64 { return s.samples }

// Extrema returns the true min and max seen at full simulation rate.
func (s *Scope) Extrema() (min, max float64) {
	if s.n == 0 {
		return 0, 0
	}
	return s.min, s.max
}

// Count returns the number of simulation steps observed.
func (s *Scope) Count() uint64 { return s.n }

// Stats summarises the decimated waveform.
func (s *Scope) Stats() trace.Stats { return trace.Summarize(s.samples) }

// Histogram accumulates a voltage distribution with fixed-width bins —
// the measurement behind Fig. 10.
type Histogram struct {
	Lo, Hi float64
	Counts []uint64
	Under  uint64
	Over   uint64
	total  uint64
}

// NewHistogram builds a histogram over [lo, hi) with the given bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if !(hi > lo) || bins < 1 {
		return nil, fmt.Errorf("scope: bad histogram range [%g,%g)/%d", lo, hi, bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 { return h.total }

// BinCenter returns the voltage at the middle of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Quantile returns the approximate voltage below which fraction q of
// the in-range samples fall.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	inRange := h.total - h.Under - h.Over
	if inRange == 0 {
		return h.Lo
	}
	target := uint64(q * float64(inRange))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return h.BinCenter(i)
		}
	}
	return h.Hi
}

// DroopEvent is one triggered excursion below a threshold.
type DroopEvent struct {
	// StartStep and EndStep are simulation-step indices.
	StartStep, EndStep uint64
	// MinV is the deepest voltage during the event.
	MinV float64
}

// Trigger detects droop events: an event opens when the input falls
// below Threshold and closes when it rises above Threshold+Hysteresis.
type Trigger struct {
	Threshold  float64
	Hysteresis float64

	step    uint64
	inEvent bool
	cur     DroopEvent
	events  []DroopEvent
	// MaxEvents bounds memory; older events are dropped from the front.
	MaxEvents int
}

// NewTrigger builds a droop trigger.
func NewTrigger(threshold, hysteresis float64) *Trigger {
	return &Trigger{Threshold: threshold, Hysteresis: hysteresis, MaxEvents: 1 << 16}
}

// Sample feeds one simulation-step voltage.
func (t *Trigger) Sample(v float64) {
	if !t.inEvent {
		if v < t.Threshold {
			t.inEvent = true
			t.cur = DroopEvent{StartStep: t.step, MinV: v}
		}
	} else {
		if v < t.cur.MinV {
			t.cur.MinV = v
		}
		if v > t.Threshold+t.Hysteresis {
			t.cur.EndStep = t.step
			t.push(t.cur)
			t.inEvent = false
		}
	}
	t.step++
}

func (t *Trigger) push(e DroopEvent) {
	if len(t.events) >= t.MaxEvents {
		copy(t.events, t.events[1:])
		t.events = t.events[:len(t.events)-1]
	}
	t.events = append(t.events, e)
}

// Events returns the completed droop events so far.
func (t *Trigger) Events() []DroopEvent { return t.events }

// EventCount returns how many droop events completed.
func (t *Trigger) EventCount() int { return len(t.events) }
