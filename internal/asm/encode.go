package asm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Binary encoding: a compact, deterministic serialisation of programs.
// This plays the role of the x86 object file NASM would produce — the
// simulator "loads" these images, and the GA can checkpoint candidate
// populations. Format (all little-endian):
//
//	magic   [4]byte  "ADT1"
//	name    u16 len + bytes
//	mem     u32
//	ninit   u16, then per entry: regKind u8, regIdx u8, lo u64, hi u64
//	nlabel  u16, then per entry: u16 len + bytes, u32 index
//	ncode   u32, then per instruction:
//	  opIdx u16 (index into sorted opcode names)
//	  dst, src1, src2, base: u8 kind, u8 idx each
//	  imm   i64
//	  disp  i32
//	  target u32
//	  label u16 len + bytes (branches only; 0 otherwise)
const magic = "ADT1"

// opcodeIndex gives stable small integers for opcodes (sorted by name).
var (
	opcodeIndex map[string]uint16
	opcodeSlice []*isa.Opcode
)

func init() {
	opcodeSlice = isa.AllOpcodes()
	opcodeIndex = make(map[string]uint16, len(opcodeSlice))
	for i, op := range opcodeSlice {
		opcodeIndex[op.Name] = uint16(i)
	}
}

type writer struct {
	buf bytes.Buffer
}

func (w *writer) u8(v uint8)   { w.buf.WriteByte(v) }
func (w *writer) u16(v uint16) { binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *writer) u32(v uint32) { binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *writer) u64(v uint64) { binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *writer) str(s string) {
	w.u16(uint16(len(s)))
	w.buf.WriteString(s)
}
func (w *writer) reg(r isa.Reg) {
	w.u8(uint8(r.Kind))
	w.u8(r.Index)
}

// Encode serialises the program.
func Encode(p *Program) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var w writer
	w.buf.WriteString(magic)
	w.str(p.Name)
	w.u32(uint32(p.MemBytes))

	regs := make([]isa.Reg, 0, len(p.InitRegs))
	for r := range p.InitRegs {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].FlatIndex() < regs[j].FlatIndex() })
	w.u16(uint16(len(regs)))
	for _, r := range regs {
		v := p.InitRegs[r]
		w.reg(r)
		w.u64(v.Lo)
		w.u64(v.Hi)
	}

	labels := make([]string, 0, len(p.Labels))
	for l := range p.Labels {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	w.u16(uint16(len(labels)))
	for _, l := range labels {
		w.str(l)
		w.u32(uint32(p.Labels[l]))
	}

	w.u32(uint32(len(p.Code)))
	for i := range p.Code {
		in := &p.Code[i]
		idx, ok := opcodeIndex[in.Op.Name]
		if !ok {
			return nil, fmt.Errorf("asm: encode: unknown opcode %q", in.Op.Name)
		}
		w.u16(idx)
		w.reg(in.Dst)
		w.reg(in.Src1)
		w.reg(in.Src2)
		w.reg(in.MemBase)
		w.u64(uint64(in.Imm))
		w.u32(uint32(in.MemDisp))
		w.u32(uint32(in.Target))
		if in.Op.Shape == isa.ShapeBranch {
			w.str(in.Label)
		} else {
			w.u16(0)
		}
	}
	return w.buf.Bytes(), nil
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("asm: decode: %s at offset %d", msg, r.off)
	}
}
func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail("truncated input")
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}
func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}
func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (r *reader) str() string {
	n := int(r.u16())
	b := r.take(n)
	return string(b)
}
func (r *reader) reg() isa.Reg {
	kind := isa.RegKind(r.u8())
	idx := r.u8()
	switch kind {
	case isa.RegNone:
		return isa.NoReg
	case isa.RegGPR:
		if idx >= isa.NumGPR {
			r.fail("bad GPR index")
			return isa.NoReg
		}
	case isa.RegXMM:
		if idx >= isa.NumXMM {
			r.fail("bad XMM index")
			return isa.NoReg
		}
	default:
		r.fail("bad register kind")
		return isa.NoReg
	}
	return isa.Reg{Kind: kind, Index: idx}
}

// Decode deserialises a program produced by Encode.
func Decode(b []byte) (*Program, error) {
	r := &reader{b: b}
	if string(r.take(4)) != magic {
		return nil, fmt.Errorf("asm: decode: bad magic")
	}
	p := New(r.str())
	p.MemBytes = int(r.u32())
	ninit := int(r.u16())
	for i := 0; i < ninit && r.err == nil; i++ {
		reg := r.reg()
		v := isa.Value{Lo: r.u64(), Hi: r.u64()}
		if r.err == nil {
			if !reg.Valid() {
				r.fail("init entry names no register")
				break
			}
			p.InitRegs[reg] = v
		}
	}
	nlabel := int(r.u16())
	for i := 0; i < nlabel && r.err == nil; i++ {
		name := r.str()
		idx := int(r.u32())
		p.Labels[name] = idx
	}
	ncode := int(r.u32())
	for i := 0; i < ncode && r.err == nil; i++ {
		opIdx := int(r.u16())
		if opIdx >= len(opcodeSlice) {
			r.fail("bad opcode index")
			break
		}
		in := isa.Instruction{Op: opcodeSlice[opIdx]}
		in.Dst = r.reg()
		in.Src1 = r.reg()
		in.Src2 = r.reg()
		in.MemBase = r.reg()
		in.Imm = int64(r.u64())
		in.MemDisp = int32(r.u32())
		in.Target = int(r.u32())
		in.Label = r.str()
		p.Code = append(p.Code, in)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("asm: decode: %d trailing bytes", len(b)-r.off)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
