package asm

import (
	"fmt"

	"repro/internal/isa"
)

// Builder constructs programs programmatically. It is the API AUDIT's
// code generator and the hand-built workloads use; the text assembler
// funnels into the same methods so both paths share validation.
type Builder struct {
	p    *Program
	errs []error
	// forward references: label -> list of instruction indices whose
	// Target awaits resolution.
	fixups map[string][]int
}

// NewBuilder starts a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{p: New(name), fixups: map[string][]int{}}
}

// errf records a construction error; Build reports the first one.
func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("asm: %s: "+format, append([]any{b.p.Name}, args...)...))
}

// SetMem sets the thread-private data-segment size in bytes.
func (b *Builder) SetMem(bytes int) *Builder {
	if bytes < 0 {
		b.errf("negative memory size %d", bytes)
		return b
	}
	b.p.MemBytes = bytes
	return b
}

// Init seeds a register's initial value.
func (b *Builder) Init(r isa.Reg, v isa.Value) *Builder {
	if !r.Valid() {
		b.errf("init of invalid register")
		return b
	}
	b.p.InitRegs[r] = v
	return b
}

// InitToggle seeds a bank of XMM and GPR registers with the maximum-
// toggling alternating pattern AUDIT uses (§3).
func (b *Builder) InitToggle(xmmCount, gprCount int) *Builder {
	a, c := isa.MaxToggleValues()
	for i := 0; i < xmmCount && i < isa.NumXMM; i++ {
		if i%2 == 0 {
			b.Init(isa.XMM(i), a)
		} else {
			b.Init(isa.XMM(i), c)
		}
	}
	for i := 0; i < gprCount && i < isa.NumGPR; i++ {
		if i%2 == 0 {
			b.Init(isa.GPR(i), isa.Value{Lo: a.Lo})
		} else {
			b.Init(isa.GPR(i), isa.Value{Lo: c.Lo})
		}
	}
	return b
}

// Label places a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.p.Labels[name]; dup {
		b.errf("duplicate label %q", name)
		return b
	}
	b.p.Labels[name] = len(b.p.Code)
	return b
}

// emit appends an instruction after validating it.
func (b *Builder) emit(in isa.Instruction) *Builder {
	if in.Op != nil && in.Op.Shape == isa.ShapeBranch {
		// Branch targets resolve at Build time via fixups.
		b.fixups[in.Label] = append(b.fixups[in.Label], len(b.p.Code))
		b.p.Code = append(b.p.Code, in)
		return b
	}
	if err := in.Valid(); err != nil {
		b.errf("%v", err)
		return b
	}
	b.p.Code = append(b.p.Code, in)
	return b
}

// Nop appends n NOPs.
func (b *Builder) Nop(n int) *Builder {
	nop := isa.MustLookup("nop")
	for i := 0; i < n; i++ {
		b.emit(isa.Instruction{Op: nop})
	}
	return b
}

// RR appends a two-operand register instruction.
func (b *Builder) RR(op string, dst, src isa.Reg) *Builder {
	return b.emit(isa.Instruction{Op: isa.MustLookup(op), Dst: dst, Src1: src})
}

// RRR appends a three-operand register instruction.
func (b *Builder) RRR(op string, dst, src1, src2 isa.Reg) *Builder {
	return b.emit(isa.Instruction{Op: isa.MustLookup(op), Dst: dst, Src1: src1, Src2: src2})
}

// RI appends a register-immediate instruction.
func (b *Builder) RI(op string, dst isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.MustLookup(op), Dst: dst, Imm: imm})
}

// Load appends dst ← [base+disp].
func (b *Builder) Load(op string, dst, base isa.Reg, disp int32) *Builder {
	return b.emit(isa.Instruction{Op: isa.MustLookup(op), Dst: dst, MemBase: base, MemDisp: disp})
}

// Store appends [base+disp] ← src.
func (b *Builder) Store(op string, base isa.Reg, disp int32, src isa.Reg) *Builder {
	return b.emit(isa.Instruction{Op: isa.MustLookup(op), Src1: src, MemBase: base, MemDisp: disp})
}

// Branch appends a branch to the named label (may be a forward
// reference).
func (b *Builder) Branch(op, label string) *Builder {
	return b.emit(isa.Instruction{Op: isa.MustLookup(op), Label: label})
}

// Barrier appends a synchronisation barrier with the given id.
func (b *Builder) Barrier(id int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.MustLookup("barrier"), Imm: id})
}

// Raw appends an already-formed instruction (used by the GA code
// generator, which manipulates instructions directly).
func (b *Builder) Raw(in isa.Instruction) *Builder { return b.emit(in) }

// Build resolves branch targets, validates, and returns the program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for label, sites := range b.fixups {
		idx, ok := b.p.Labels[label]
		if !ok {
			return nil, fmt.Errorf("asm: %s: undefined label %q", b.p.Name, label)
		}
		if idx >= len(b.p.Code) {
			return nil, fmt.Errorf("asm: %s: label %q points past end of code", b.p.Name, label)
		}
		for _, s := range sites {
			b.p.Code[s].Target = idx
		}
	}
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return b.p, nil
}

// MustBuild is Build for static program construction; panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
