package asm

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

const sample = `
; resonant loop skeleton
.name demo
.mem 4096
.init xmm0, 0xAAAAAAAAAAAAAAAA, 0xAAAAAAAAAAAAAAAA
.init rcx, 1000
    movimm rcx, 1000
loop:
    vfmadd132pd xmm0, xmm1, xmm2
    mulpd xmm3, xmm4
    load rax, [rbp+16]
    store [rbp-8], rax
    times 4 nop
    dec rcx, rcx
    jnz loop
`

func TestParseSample(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" {
		t.Errorf("name = %q", p.Name)
	}
	if p.MemBytes != 4096 {
		t.Errorf("mem = %d", p.MemBytes)
	}
	if got := len(p.Code); got != 11 {
		t.Errorf("code len = %d, want 11", got)
	}
	if p.Labels["loop"] != 1 {
		t.Errorf("label loop = %d, want 1", p.Labels["loop"])
	}
	last := p.Code[len(p.Code)-1]
	if last.Op.Name != "jnz" || last.Target != 1 {
		t.Errorf("branch target = %+v", last)
	}
	v, ok := p.InitRegs[isa.XMM(0)]
	if !ok || v.Lo != 0xAAAAAAAAAAAAAAAA {
		t.Errorf("init xmm0 = %+v ok=%v", v, ok)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate rax, rcx",
		"add rax",
		"add rax, rcx, rdx",
		"load rax, rbp",
		"jnz",
		"jnz nowhere\n",
		".mem lots",
		".init rax",
		"times x nop",
		"dup:\ndup:",
		"bad label:",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	p := MustParse(sample)
	q, err := Parse(p.Text())
	if err != nil {
		t.Fatalf("reparse: %v\ntext:\n%s", err, p.Text())
	}
	if q.Name != p.Name || q.MemBytes != p.MemBytes || len(q.Code) != len(p.Code) {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
	}
	for i := range p.Code {
		if p.Code[i].String() != q.Code[i].String() {
			t.Errorf("instr %d: %q vs %q", i, p.Code[i].String(), q.Code[i].String())
		}
	}
	if !reflect.DeepEqual(p.InitRegs, q.InitRegs) {
		t.Errorf("init regs differ")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	p := MustParse(sample)
	blob, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Code, q.Code) {
		t.Errorf("code differs after binary round trip")
	}
	if !reflect.DeepEqual(p.Labels, q.Labels) {
		t.Errorf("labels differ")
	}
	if !reflect.DeepEqual(p.InitRegs, q.InitRegs) {
		t.Errorf("init regs differ")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := MustParse(sample)
	blob, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(blob[:len(blob)-3]); err == nil {
		t.Error("truncated blob accepted")
	}
	if _, err := Decode(append(append([]byte(nil), blob...), 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

// randomProgram builds a structurally valid random program for
// property-based round-trip testing.
func randomProgram(rng *rand.Rand) *Program {
	b := NewBuilder("rand")
	b.SetMem(1 << uint(rng.Intn(14)))
	b.InitToggle(rng.Intn(8), rng.Intn(8))
	b.Label("top")
	n := 1 + rng.Intn(40)
	gpr := func() isa.Reg { return isa.GPR(rng.Intn(isa.NumGPR)) }
	xmm := func() isa.Reg { return isa.XMM(rng.Intn(isa.NumXMM)) }
	for i := 0; i < n; i++ {
		switch rng.Intn(11) {
		case 0:
			b.Nop(1 + rng.Intn(3))
		case 1:
			b.RR("add", gpr(), gpr())
		case 2:
			b.RR("mulpd", xmm(), xmm())
		case 3:
			b.RRR("vfmadd132pd", xmm(), xmm(), xmm())
		case 4:
			b.Load("load", gpr(), gpr(), int32(rng.Intn(256))*8)
		case 5:
			b.Store("store", gpr(), int32(rng.Intn(256))*8, gpr())
		case 6:
			// Negative immediates must survive both wire formats.
			b.RI("movimm", gpr(), rng.Int63n(1<<32)-(1<<31))
		case 7:
			b.Barrier(int64(rng.Intn(8)))
		case 8:
			// 128-bit memory ops, with negative displacements.
			b.Load("loadx", xmm(), gpr(), int32(rng.Intn(512))*8-2048)
		case 9:
			b.Store("storex", gpr(), int32(rng.Intn(512))*8-2048, xmm())
		case 10:
			b.RI("shl", gpr(), int64(rng.Intn(64)))
		}
	}
	b.Branch("jnz", "top")
	return b.MustBuild()
}

func TestPropertyEncodeDecodeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		p := randomProgram(rand.New(rand.NewSource(seed)))
		blob, err := Encode(p)
		if err != nil {
			return false
		}
		q, err := Decode(blob)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p.Code, q.Code) &&
			reflect.DeepEqual(p.InitRegs, q.InitRegs) &&
			p.MemBytes == q.MemBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTextReassembly(t *testing.T) {
	f := func(seed int64) bool {
		p := randomProgram(rand.New(rand.NewSource(seed)))
		q, err := Parse(p.Text())
		if err != nil {
			return false
		}
		if len(p.Code) != len(q.Code) {
			return false
		}
		for i := range p.Code {
			if p.Code[i].String() != q.Code[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBuilderForwardBranch(t *testing.T) {
	p, err := NewBuilder("fwd").
		Branch("jmp", "end").
		Nop(3).
		Label("end").
		Nop(1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Target != 4 {
		t.Errorf("forward target = %d, want 4", p.Code[0].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	_, err := NewBuilder("bad").Branch("jmp", "nowhere").Build()
	if err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("err = %v", err)
	}
}

func TestBuilderLabelAtEndRejectedAsBranchTarget(t *testing.T) {
	_, err := NewBuilder("end").Nop(1).Label("end").Branch("jmp", "end").Build()
	// Label "end" points past the final instruction once the branch is
	// appended after it... actually the branch is at index 1, label at 1.
	// That is fine. Construct the genuinely-bad case: label after all code.
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	_, err = NewBuilder("bad2").Branch("jmp", "tail").Label("tail").Build()
	if err == nil {
		t.Error("branch to past-the-end label accepted")
	}
}

func TestInstructionMixAndFPFraction(t *testing.T) {
	p := MustParse(sample)
	mix := p.InstructionMix()
	if mix[isa.ClassNOP] != 4 {
		t.Errorf("NOP count = %d, want 4", mix[isa.ClassNOP])
	}
	if mix[isa.ClassFMA] != 1 || mix[isa.ClassFPMul] != 1 {
		t.Errorf("FP counts wrong: %v", mix)
	}
	got := p.FPFraction()
	if got <= 0 || got >= 1 {
		t.Errorf("FP fraction = %v", got)
	}
}

func TestInitToggleAlternates(t *testing.T) {
	p := NewBuilder("tgl").InitToggle(4, 2).Nop(1).MustBuild()
	a, c := isa.MaxToggleValues()
	if p.InitRegs[isa.XMM(0)] != a || p.InitRegs[isa.XMM(1)] != c {
		t.Errorf("xmm toggle seed wrong: %+v", p.InitRegs)
	}
	if isa.ToggleFractionOf(p.InitRegs[isa.XMM(0)], p.InitRegs[isa.XMM(1)]) != 1 {
		t.Error("adjacent xmm seeds are not maximally toggling")
	}
}

func TestListing(t *testing.T) {
	p := MustParse(sample)
	l := p.Listing()
	if !strings.Contains(l, "loop:") {
		t.Error("listing missing label")
	}
	if !strings.Contains(l, "; → 1") {
		t.Errorf("listing missing branch target:\n%s", l)
	}
	if !strings.Contains(l, "vfmadd132pd xmm0, xmm1, xmm2") {
		t.Error("listing missing instruction text")
	}
}

func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("nop\n")
	f.Add("loop:\n jnz loop\n")
	f.Add(".init xmm0, 0x1, 0x2\nmulpd xmm0, xmm1\n")
	f.Add(".name n\n.mem 128\nbarrier 3\nmovimm r8, -9\n")
	f.Add("a:\n times 3 nop\n addpd xmm1, xmm12\n jnz a\n ; tail comment\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		// Anything that parses must validate, re-render, and re-parse —
		// and the emitted text must be a fixed point: parse(emit(p))
		// emits the same bytes again, so emit is canonical.
		if err := p.Validate(); err != nil {
			t.Fatalf("parsed program fails validation: %v", err)
		}
		text := p.Text()
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, text)
		}
		if err := p2.Validate(); err != nil {
			t.Fatalf("re-parsed program fails validation: %v", err)
		}
		if text2 := p2.Text(); text2 != text {
			t.Fatalf("emit not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, text2)
		}
		// The round trip must also preserve semantics, not just text:
		// the canonical binary encodings must match.
		b1, err1 := Encode(p)
		b2, err2 := Encode(p2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("encodability changed across round trip: %v vs %v", err1, err2)
		}
		if err1 == nil && !bytes.Equal(b1, b2) {
			t.Fatalf("binary encoding changed across text round trip\n%s", text)
		}
	})
}

func FuzzDecode(f *testing.F) {
	blob, _ := Encode(MustParse(sample))
	f.Add(blob)
	f.Add([]byte("ADT1"))
	// Seed the corpus with encodings that exercise every operand wire
	// form: barriers, negative immediates and displacements, and the
	// 128-bit memory ops' XMM register kind.
	seeds := []*Program{
		NewBuilder("barrier").Barrier(0).Barrier(63).MustBuild(),
		NewBuilder("negimm").
			RI("movimm", isa.GPR(3), -1).
			RI("movimm", isa.GPR(4), -(1 << 40)).
			RI("shl", isa.GPR(3), 63).
			MustBuild(),
		NewBuilder("memx").SetMem(4096).
			Load("loadx", isa.XMM(7), isa.GPR(2), -16).
			Store("storex", isa.GPR(2), 2040, isa.XMM(15)).
			Load("lea", isa.GPR(5), isa.GPR(6), 8).
			MustBuild(),
	}
	for _, p := range seeds {
		enc, err := Encode(p)
		if err != nil {
			f.Fatalf("seed %s: %v", p.Name, err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		// Decoded input may be non-canonical (e.g. unsorted init
		// entries), so the property is semantic: re-encoding reaches a
		// canonical fixed point within one round trip.
		canon, err := Encode(p)
		if err != nil {
			t.Fatalf("decoded program fails re-encode: %v", err)
		}
		p2, err := Decode(canon)
		if err != nil {
			t.Fatalf("canonical image fails decode: %v", err)
		}
		canon2, err := Encode(p2)
		if err != nil {
			t.Fatalf("re-encode of canonical image failed: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form not a fixed point")
		}
		if !reflect.DeepEqual(p.Code, p2.Code) || !reflect.DeepEqual(p.InitRegs, p2.InitRegs) {
			t.Fatalf("semantics changed across canonicalisation")
		}
	})
}

func BenchmarkEncode(b *testing.B) {
	p := MustParse(sample)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	blob, err := Encode(MustParse(sample))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sample); err != nil {
			b.Fatal(err)
		}
	}
}
