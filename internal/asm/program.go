// Package asm is the NASM-flavoured toolchain AUDIT emits stressmarks
// through: a program representation, a text assembler/disassembler and
// a compact binary encoding. The paper generates assembly in NASM
// format and assembles it with NASM 2.09; here the same textual form is
// parsed into the simulator's internal representation.
package asm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Program is an assembled instruction sequence plus the execution
// environment a thread needs: initial register values (AUDIT uses these
// to control data toggling) and a private data-memory size.
type Program struct {
	// Name identifies the program in reports.
	Name string
	// Code is the instruction sequence. Branch targets are resolved
	// instruction indices.
	Code []isa.Instruction
	// Labels maps label name to instruction index (the instruction the
	// label precedes).
	Labels map[string]int
	// InitRegs seeds architectural registers before the first
	// instruction. Unlisted registers start at zero.
	InitRegs map[isa.Reg]isa.Value
	// MemBytes is the size of the thread-private data segment
	// addressed by loads/stores. Zero means a default small segment.
	MemBytes int
}

// New returns an empty program with the given name.
func New(name string) *Program {
	return &Program{
		Name:     name,
		Labels:   map[string]int{},
		InitRegs: map[isa.Reg]isa.Value{},
	}
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Code) }

// Validate checks every instruction and branch target.
func (p *Program) Validate() error {
	for i := range p.Code {
		in := &p.Code[i]
		if err := in.Valid(); err != nil {
			return fmt.Errorf("asm: %s: instruction %d: %w", p.Name, i, err)
		}
		if in.Op.Shape == isa.ShapeBranch {
			if in.Target < 0 || in.Target >= len(p.Code) {
				return fmt.Errorf("asm: %s: instruction %d: branch target %d out of range", p.Name, i, in.Target)
			}
		}
	}
	for name, idx := range p.Labels {
		if idx < 0 || idx > len(p.Code) {
			return fmt.Errorf("asm: %s: label %q index %d out of range", p.Name, name, idx)
		}
	}
	return nil
}

// Clone returns a deep copy, used when per-core variants (e.g. dither
// padding) are derived from a base stressmark.
func (p *Program) Clone() *Program {
	q := &Program{
		Name:     p.Name,
		Code:     append([]isa.Instruction(nil), p.Code...),
		Labels:   make(map[string]int, len(p.Labels)),
		InitRegs: make(map[isa.Reg]isa.Value, len(p.InitRegs)),
		MemBytes: p.MemBytes,
	}
	for k, v := range p.Labels {
		q.Labels[k] = v
	}
	for k, v := range p.InitRegs {
		q.InitRegs[k] = v
	}
	return q
}

// Text renders the program as assemblable NASM-flavoured text, the
// inverse of Parse.
func (p *Program) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s\n", p.Name)
	fmt.Fprintf(&b, ".name %s\n", p.Name)
	if p.MemBytes > 0 {
		fmt.Fprintf(&b, ".mem %d\n", p.MemBytes)
	}
	regs := make([]isa.Reg, 0, len(p.InitRegs))
	for r := range p.InitRegs {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].FlatIndex() < regs[j].FlatIndex() })
	for _, r := range regs {
		v := p.InitRegs[r]
		fmt.Fprintf(&b, ".init %s, 0x%016x, 0x%016x\n", r, v.Lo, v.Hi)
	}
	// Labels by position.
	labelAt := map[int][]string{}
	for name, idx := range p.Labels {
		labelAt[idx] = append(labelAt[idx], name)
	}
	for idx := range labelAt {
		sort.Strings(labelAt[idx])
	}
	for i := range p.Code {
		for _, l := range labelAt[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "    %s\n", p.Code[i].String())
	}
	for _, l := range labelAt[len(p.Code)] {
		fmt.Fprintf(&b, "%s:\n", l)
	}
	return b.String()
}

// InstructionMix tallies instructions by class, a cheap profile used in
// reports and in AUDIT's loop analysis (§5.A.5).
func (p *Program) InstructionMix() map[isa.Class]int {
	mix := map[isa.Class]int{}
	for i := range p.Code {
		mix[p.Code[i].Op.Class]++
	}
	return mix
}

// FPFraction returns the fraction of instructions bound to the FPU,
// relevant to shared-FPU interference and FPU throttling analysis.
func (p *Program) FPFraction() float64 {
	if len(p.Code) == 0 {
		return 0
	}
	n := 0
	for i := range p.Code {
		if p.Code[i].Op.Class.IsFP() {
			n++
		}
	}
	return float64(n) / float64(len(p.Code))
}

// Listing renders an addressed disassembly: one line per instruction
// with its index, labels inline, and branch targets resolved — the view
// an engineer reads when auditing what AUDIT generated.
func (p *Program) Listing() string {
	labelAt := map[int][]string{}
	for name, idx := range p.Labels {
		labelAt[idx] = append(labelAt[idx], name)
	}
	for idx := range labelAt {
		sort.Strings(labelAt[idx])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d instructions, %d bytes data segment\n", p.Name, len(p.Code), p.MemBytes)
	for i := range p.Code {
		for _, l := range labelAt[i] {
			fmt.Fprintf(&b, "%6s %s:\n", "", l)
		}
		in := &p.Code[i]
		if in.Op.Shape == isa.ShapeBranch {
			fmt.Fprintf(&b, "%6d    %-32s ; → %d\n", i, in.String(), in.Target)
		} else {
			fmt.Fprintf(&b, "%6d    %s\n", i, in.String())
		}
	}
	return b.String()
}
