package asm

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Parse assembles NASM-flavoured text into a Program. Supported syntax:
//
//	; comment                      -- to end of line
//	.name foo                      -- program name
//	.mem 4096                      -- data segment size
//	.init xmm0, 0xAA.., 0x55..     -- initial register value (lo, hi)
//	label:                         -- label definition
//	times 8 nop                    -- repetition prefix
//	mnemonic operands              -- one instruction
//
// Operands follow the shapes in package isa: "add rax, rcx",
// "vfmadd132pd xmm0, xmm1, xmm2", "load rax, [rbp+16]",
// "store [rbp-8], rax", "jnz loop", "barrier 2", "movimm rax, 7".
func Parse(src string) (*Program, error) {
	b := NewBuilder("anonymous")
	sc := bufio.NewScanner(strings.NewReader(src))
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(b, line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return b.Build()
}

// MustParse is Parse for static sources; panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseLine(b *Builder, line string) error {
	// Directives.
	if strings.HasPrefix(line, ".") {
		return parseDirective(b, line)
	}
	// Label.
	if strings.HasSuffix(line, ":") {
		name := strings.TrimSpace(strings.TrimSuffix(line, ":"))
		if name == "" || strings.ContainsAny(name, " \t,") {
			return fmt.Errorf("bad label %q", line)
		}
		b.Label(name)
		return nil
	}
	// times N <insn>
	fields := strings.Fields(line)
	if fields[0] == "times" {
		if len(fields) < 3 {
			return fmt.Errorf("times needs a count and an instruction")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return fmt.Errorf("bad times count %q", fields[1])
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		rest = strings.TrimSpace(strings.TrimPrefix(rest, fields[1]))
		for i := 0; i < n; i++ {
			if err := parseInstruction(b, rest); err != nil {
				return err
			}
		}
		return nil
	}
	return parseInstruction(b, line)
}

func parseDirective(b *Builder, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".name":
		if len(fields) != 2 {
			return fmt.Errorf(".name needs one argument")
		}
		b.p.Name = fields[1]
		return nil
	case ".mem":
		if len(fields) != 2 {
			return fmt.Errorf(".mem needs one argument")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("bad .mem size %q", fields[1])
		}
		b.SetMem(n)
		return nil
	case ".init":
		rest := strings.TrimSpace(strings.TrimPrefix(line, ".init"))
		parts := splitOperands(rest)
		if len(parts) != 3 && len(parts) != 2 {
			return fmt.Errorf(".init needs reg, lo[, hi]")
		}
		r, err := isa.ParseReg(parts[0])
		if err != nil {
			return err
		}
		lo, err := parseUint(parts[1])
		if err != nil {
			return err
		}
		var hi uint64
		if len(parts) == 3 {
			if hi, err = parseUint(parts[2]); err != nil {
				return err
			}
		}
		b.Init(r, isa.Value{Lo: lo, Hi: hi})
		return nil
	}
	return fmt.Errorf("unknown directive %q", fields[0])
}

func parseUint(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return v, nil
}

// splitOperands splits on commas outside brackets and trims each part.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" || len(out) > 0 {
		out = append(out, tail)
	}
	return out
}

// parseMem parses "[base+disp]" or "[base-disp]" or "[base]".
func parseMem(s string) (base isa.Reg, disp int32, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return isa.NoReg, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sign := int32(1)
	idx := strings.IndexAny(inner, "+-")
	regPart, dispPart := inner, ""
	if idx >= 0 {
		if inner[idx] == '-' {
			sign = -1
		}
		regPart, dispPart = inner[:idx], inner[idx+1:]
	}
	base, err = isa.ParseReg(strings.TrimSpace(regPart))
	if err != nil {
		return isa.NoReg, 0, err
	}
	if dispPart != "" {
		d, err := strconv.ParseInt(strings.TrimSpace(dispPart), 0, 32)
		if err != nil {
			return isa.NoReg, 0, fmt.Errorf("bad displacement %q", dispPart)
		}
		disp = sign * int32(d)
	}
	return base, disp, nil
}

func parseInstruction(b *Builder, line string) error {
	sp := strings.IndexAny(line, " \t")
	mnemonic, rest := line, ""
	if sp >= 0 {
		mnemonic, rest = line[:sp], strings.TrimSpace(line[sp+1:])
	}
	op, err := isa.Lookup(mnemonic)
	if err != nil {
		return err
	}
	ops := splitOperands(rest)
	wrongCount := func(want int) error {
		return fmt.Errorf("%s: got %d operands, want %d", mnemonic, len(ops), want)
	}
	switch op.Shape {
	case isa.ShapeNone:
		if len(ops) != 0 {
			return wrongCount(0)
		}
		b.Raw(isa.Instruction{Op: op})
	case isa.ShapeRR:
		if len(ops) != 2 {
			return wrongCount(2)
		}
		dst, err := isa.ParseReg(ops[0])
		if err != nil {
			return err
		}
		src, err := isa.ParseReg(ops[1])
		if err != nil {
			return err
		}
		b.Raw(isa.Instruction{Op: op, Dst: dst, Src1: src})
	case isa.ShapeRRR:
		if len(ops) != 3 {
			return wrongCount(3)
		}
		dst, err := isa.ParseReg(ops[0])
		if err != nil {
			return err
		}
		s1, err := isa.ParseReg(ops[1])
		if err != nil {
			return err
		}
		s2, err := isa.ParseReg(ops[2])
		if err != nil {
			return err
		}
		b.Raw(isa.Instruction{Op: op, Dst: dst, Src1: s1, Src2: s2})
	case isa.ShapeRI:
		if len(ops) != 2 {
			return wrongCount(2)
		}
		dst, err := isa.ParseReg(ops[0])
		if err != nil {
			return err
		}
		imm, err := strconv.ParseInt(ops[1], 0, 64)
		if err != nil {
			return fmt.Errorf("bad immediate %q", ops[1])
		}
		b.Raw(isa.Instruction{Op: op, Dst: dst, Imm: imm})
	case isa.ShapeLoad:
		if len(ops) != 2 {
			return wrongCount(2)
		}
		dst, err := isa.ParseReg(ops[0])
		if err != nil {
			return err
		}
		base, disp, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		b.Raw(isa.Instruction{Op: op, Dst: dst, MemBase: base, MemDisp: disp})
	case isa.ShapeStore:
		if len(ops) != 2 {
			return wrongCount(2)
		}
		base, disp, err := parseMem(ops[0])
		if err != nil {
			return err
		}
		src, err := isa.ParseReg(ops[1])
		if err != nil {
			return err
		}
		b.Raw(isa.Instruction{Op: op, Src1: src, MemBase: base, MemDisp: disp})
	case isa.ShapeBranch:
		if len(ops) != 1 {
			return wrongCount(1)
		}
		b.Branch(op.Name, ops[0])
	case isa.ShapeBarrier:
		if len(ops) != 1 {
			return wrongCount(1)
		}
		id, err := strconv.ParseInt(ops[0], 0, 64)
		if err != nil {
			return fmt.Errorf("bad barrier id %q", ops[0])
		}
		b.Barrier(id)
	default:
		return fmt.Errorf("%s: unhandled shape", mnemonic)
	}
	return nil
}
