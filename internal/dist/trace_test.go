package dist

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/tracestore"
)

// traceCoordinator builds a coordinator with a trace store attached and
// an HTTP server in front of it.
func traceCoordinator(t testing.TB, mut func(*Config)) (*Coordinator, *httptest.Server, *tracestore.Store) {
	t.Helper()
	store, err := tracestore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Local:      compiled(t),
		LeaseTTL:   250 * time.Millisecond,
		TraceStore: store,
	}
	if mut != nil {
		mut(&cfg)
	}
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	t.Cleanup(srv.Close)
	return co, srv, store
}

func tierClient(t testing.TB, url, id string, ttl time.Duration) *TraceTierClient {
	t.Helper()
	tc, err := NewTraceTierClient(TraceTierConfig{
		BaseURL: url, WorkerID: id, LeaseTTL: ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

// traceHTTP drives /v1/trace by hand.
func traceHTTP(t *testing.T, method, url, addr, worker string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url+"/v1/trace?addr="+addr+"&worker="+worker, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestTraceEndpointProtocol drives the raw GET/PUT protocol: claim on
// miss, wait while the claim is live, blob after publish, and rejection
// of malformed addresses, blobs and methods.
func TestTraceEndpointProtocol(t *testing.T) {
	co, srv, store := traceCoordinator(t, nil)

	// Both workers must be live for claim-liveness to matter.
	for _, id := range []string{"a", "b"} {
		var reg registerReply
		rpcJSON(t, srv.URL, "/v1/register", &registerRequest{WorkerID: id}, &reg)
		if !reg.OK {
			t.Fatalf("register %s: %+v", id, reg)
		}
	}

	key := []byte("protocol key")
	addr := tracestore.Addr(key)
	rec := &tracestore.Record{Energy: []float64{1, 2, 1, 2}, Issues: []uint64{3, 3, 3, 3}, Done: true}
	blob := tracestore.Encode(rec)

	// Miss → worker a is told to capture (204).
	if resp := traceHTTP(t, http.MethodGet, srv.URL, addr, "a", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("first GET: HTTP %d, want 204", resp.StatusCode)
	}
	// Same miss from worker b while a's claim is live → wait (202).
	resp := traceHTTP(t, http.MethodGet, srv.URL, addr, "b", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("contended GET: HTTP %d, want 202", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After-Ms") == "" {
		t.Error("202 reply carries no retry hint")
	}
	// The owner re-asking keeps the claim (a retried request must not
	// deadlock against itself).
	if resp := traceHTTP(t, http.MethodGet, srv.URL, addr, "a", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("owner re-GET: HTTP %d, want 204", resp.StatusCode)
	}

	// Publish releases the claim and lands in the store.
	if resp := traceHTTP(t, http.MethodPut, srv.URL, addr, "a", blob); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT: HTTP %d, want 200", resp.StatusCode)
	}
	if _, ok := store.GetRaw(addr); !ok {
		t.Fatal("published record not in the coordinator store")
	}
	// Now b's GET is a hit with the exact published bytes.
	resp = traceHTTP(t, http.MethodGet, srv.URL, addr, "b", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm GET: HTTP %d, want 200", resp.StatusCode)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), blob) {
		t.Fatal("served blob differs from published blob")
	}

	// Malformed traffic is rejected without touching the store.
	if resp := traceHTTP(t, http.MethodGet, srv.URL, "../../evil", "b", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("hostile addr GET: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := traceHTTP(t, http.MethodPut, srv.URL, addr, "a", blob[:len(blob)/2]); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated PUT: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := traceHTTP(t, http.MethodPost, srv.URL, addr, "a", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: HTTP %d, want 405", resp.StatusCode)
	}

	st := co.TraceTierStats()
	if st.Hits != 1 || st.Claims != 2 || st.Waits != 1 || st.Puts != 1 {
		t.Errorf("tier stats %+v, want 1 hit / 2 claims / 1 wait / 1 put", st)
	}
	if st.WireBytes != uint64(2*len(blob)) {
		t.Errorf("WireBytes = %d, want %d (one PUT + one GET)", st.WireBytes, 2*len(blob))
	}
}

// TestTraceClaimStolenFromDeadOwner advances the coordinator clock past
// the liveness cutoff: a claim whose owner stopped heartbeating is
// handed to the next asker instead of wedging the pool.
func TestTraceClaimStolenFromDeadOwner(t *testing.T) {
	co, srv, _ := traceCoordinator(t, nil)
	base := time.Now()
	co.mu.Lock()
	co.now = func() time.Time { return base }
	co.mu.Unlock()
	for _, id := range []string{"dead", "live"} {
		var reg registerReply
		rpcJSON(t, srv.URL, "/v1/register", &registerRequest{WorkerID: id}, &reg)
	}

	addr := tracestore.Addr([]byte("steal key"))
	if resp := traceHTTP(t, http.MethodGet, srv.URL, addr, "dead", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("claim GET: HTTP %d, want 204", resp.StatusCode)
	}
	// "dead" is SIGKILLed: its lastSeen freezes while the clock moves
	// past the 2×TTL cutoff. "live" keeps heartbeating.
	co.mu.Lock()
	co.now = func() time.Time { return base.Add(3 * co.cfg.LeaseTTL) }
	co.workers["live"].lastSeen = co.now()
	co.mu.Unlock()

	if resp := traceHTTP(t, http.MethodGet, srv.URL, addr, "live", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("GET after owner death: HTTP %d, want 204 (stolen claim)", resp.StatusCode)
	}
	st := co.TraceTierStats()
	if st.ClaimSteals != 1 {
		t.Errorf("ClaimSteals = %d, want 1 (%+v)", st.ClaimSteals, st)
	}
}

// TestTraceTierDistributed runs two tier-attached platforms against a
// real coordinator: the first captures and publishes, the second is
// served entirely over the wire with zero captures and bit-identical
// measurements.
func TestTraceTierDistributed(t *testing.T) {
	co, srv, _ := traceCoordinator(t, nil)
	rc := distSlate(t, 1)[0]

	ref := compiled(t)
	want, err := ref.Run(rc)
	if err != nil {
		t.Fatal(err)
	}

	a := compiled(t)
	a.SetTraceTier(tierClient(t, srv.URL, "a", 250*time.Millisecond))
	ma, err := a.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ma, want) {
		t.Error("tier-attached run diverged from plain run")
	}
	if ts := a.TraceStats(); ts.Captures != 1 || ts.WireBytes == 0 {
		t.Fatalf("cold worker captures/wire = %d/%d, want 1/>0", ts.Captures, ts.WireBytes)
	}

	b := compiled(t)
	b.SetTraceTier(tierClient(t, srv.URL, "b", 250*time.Millisecond))
	mb, err := b.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mb, want) {
		t.Error("tier-served run diverged from plain run")
	}
	if ts := b.TraceStats(); ts.TierHits == 0 || ts.Captures != 0 {
		t.Fatalf("warm worker tier hits/captures = %d/%d, want >0/0", ts.TierHits, ts.Captures)
	}
	if st := co.TraceTierStats(); st.Puts == 0 || st.Hits == 0 {
		t.Errorf("coordinator saw no tier traffic: %+v", st)
	}
}

// TestTraceFetchWaitsOutCapture: a worker told to wait keeps polling
// and comes away with the record the moment the owner publishes.
func TestTraceFetchWaitsOutCapture(t *testing.T) {
	_, srv, _ := traceCoordinator(t, nil)
	for _, id := range []string{"owner", "waiter"} {
		var reg registerReply
		rpcJSON(t, srv.URL, "/v1/register", &registerRequest{WorkerID: id}, &reg)
	}
	key := []byte("waited key")
	rec := &tracestore.Record{Energy: []float64{4, 4, 4}, Issues: []uint64{1, 1, 1}, Done: true, CaptureNS: 777}

	owner := tierClient(t, srv.URL, "owner", 250*time.Millisecond)
	if _, _, ok := owner.Fetch(key); ok {
		t.Fatal("empty tier served a record")
	}

	var wg sync.WaitGroup
	var got *tracestore.Record
	var gotOK bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, _, gotOK = tierClient(t, srv.URL, "waiter", 250*time.Millisecond).Fetch(key)
	}()
	time.Sleep(60 * time.Millisecond) // let the waiter hit the 202 path
	if owner.Publish(key, rec) == 0 {
		t.Error("publish reported zero wire bytes")
	}
	wg.Wait()
	if !gotOK {
		t.Fatal("waiter fell back to capture despite a publish")
	}
	if got.CaptureNS != rec.CaptureNS || len(got.Energy) != len(rec.Energy) {
		t.Fatal("waiter received a different record")
	}
}

// TestTraceFetchFallsBackOnDeadOwner: the owner takes the claim and is
// killed; the waiter must get the capture claim within a bounded time
// instead of deadlocking.
func TestTraceFetchFallsBackOnDeadOwner(t *testing.T) {
	ttl := 60 * time.Millisecond
	_, srv, _ := traceCoordinator(t, func(c *Config) { c.LeaseTTL = ttl })
	for _, id := range []string{"owner", "waiter"} {
		var reg registerReply
		rpcJSON(t, srv.URL, "/v1/register", &registerRequest{WorkerID: id}, &reg)
	}
	key := []byte("orphaned key")
	if _, _, ok := tierClient(t, srv.URL, "owner", ttl).Fetch(key); ok {
		t.Fatal("empty tier served a record")
	}
	// Owner never publishes and never heartbeats again (SIGKILL). The
	// waiter's Fetch must resolve to "capture it yourself" once the
	// owner's liveness window (2×TTL) lapses — well inside the budget.
	start := time.Now()
	_, _, ok := tierClient(t, srv.URL, "waiter", ttl).Fetch(key)
	if ok {
		t.Fatal("waiter claims a hit nobody published")
	}
	if el := time.Since(start); el > 10*ttl {
		t.Errorf("fallback took %v, want ≤ %v", el, 10*ttl)
	}
}

// TestTraceTierUnreachable: a dead coordinator makes every tier call a
// fast miss — the platform captures locally and the run still succeeds.
func TestTraceTierUnreachable(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // dead on arrival
	cp := compiled(t)
	cp.SetTraceTier(tierClient(t, srv.URL, "lonely", 100*time.Millisecond))
	rc := distSlate(t, 1)[0]
	ref := compiled(t)
	want, err := ref.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := cp.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("run with dead tier diverged")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("dead tier stalled the run for %v", el)
	}
	if ts := cp.TraceStats(); ts.Captures != 1 || ts.TierMisses != 1 {
		t.Errorf("dead-tier stats %+v, want 1 capture / 1 tier miss", ts)
	}
}

// BenchmarkTraceTierWarmVsCold compares a fresh worker's first
// measurement with and without a warm trace tier: the warm case trades
// phase-1 capture for one wire fetch of the compressed record.
func BenchmarkTraceTierWarmVsCold(b *testing.B) {
	_, srv, _ := traceCoordinator(b, nil)
	rc := distSlate(b, 1)[0]
	rc.MaxCycles = 40000

	// Warm the tier once.
	seed := compiled(b)
	seed.SetTraceTier(tierClient(b, srv.URL, "seed", 250*time.Millisecond))
	if _, err := seed.Run(rc); err != nil {
		b.Fatal(err)
	}

	b.Run("cold-capture", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cp := compiled(b)
			if _, err := cp.Run(rc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-tier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cp := compiled(b)
			cp.SetTraceTier(tierClient(b, srv.URL, fmt.Sprintf("w%d", i), 250*time.Millisecond))
			if _, err := cp.Run(rc); err != nil {
				b.Fatal(err)
			}
			if ts := cp.TraceStats(); ts.Captures != 0 {
				b.Fatal("warm worker captured instead of fetching")
			}
		}
	})
}
