package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/testbed"
	"repro/internal/tracestore"
)

// The trace data plane shares captured chip traces across the worker
// pool. Control RPCs are POST + JSON; this endpoint is deliberately
// not: trace blobs are compressed binary, and the tier's whole point
// is to move the fewest bytes possible, so /v1/trace speaks the
// tracestore on-disk encoding directly — disk bytes are wire bytes,
// with no re-encode or base64 inflation on either side.
//
//	GET /v1/trace?addr=<hex>&worker=<id>
//	  200 + blob  — tier hit, body is the encoded record
//	  204         — miss; the capture claim is YOURS, capture and PUT
//	  202         — miss; another live worker holds the claim, retry
//	                after Retry-After-Ms milliseconds
//	PUT /v1/trace?addr=<hex>&worker=<id>  body=blob
//	  200         — accepted (and the claim, if any, released)
//
// Correctness never depends on the tier: every reply, including an
// unreachable coordinator, leaves the worker free to capture locally.
// The single-flight claim is purely an optimisation that keeps N
// workers from capturing the same trace N times, and it is leased,
// not locked: a claim whose owner stops heartbeating (SIGKILL,
// partition) or simply sits on it too long is reassigned to the next
// asker, so a dying owner can never wedge the pool.

// flight is one in-flight capture claim, keyed by trace address.
type flight struct {
	owner   string    // worker ID that was told to capture
	granted time.Time // when, for the hard age cap
}

// TraceTierStats counts the coordinator-side traffic on /v1/trace.
type TraceTierStats struct {
	Hits   int // GETs served a blob
	Claims int // GETs granted the capture claim (first asker per addr)
	Waits  int // GETs told to wait on another worker's capture
	Puts   int // published records accepted
	// ClaimSteals counts claims reassigned because the owner died or
	// overstayed — the single-flight safety valve firing.
	ClaimSteals int
	// WireBytes is the blob traffic in both directions (bodies only).
	WireBytes uint64
}

// TraceTierStats returns a snapshot of the trace tier counters.
func (c *Coordinator) TraceTierStats() TraceTierStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traceStats
}

// flightMaxAge bounds how long a claim may sit unpublished even with a
// live owner (a worker whose capture errored never PUTs): generous
// against real capture times, small against a search's lifetime.
func (c *Coordinator) flightMaxAge() time.Duration {
	if d := 10 * c.cfg.LeaseTTL; d > 30*time.Second {
		return d
	}
	return 30 * time.Second
}

// traceHandler serves the trace data plane. Registered only when
// cfg.TraceStore is set.
func (c *Coordinator) traceHandler(w http.ResponseWriter, r *http.Request) {
	addr := r.URL.Query().Get("addr")
	worker := r.URL.Query().Get("worker")
	switch r.Method {
	case http.MethodGet:
		c.traceGet(w, addr, worker)
	case http.MethodPut:
		c.tracePut(w, r, addr)
	default:
		http.Error(w, "GET or PUT only", http.StatusMethodNotAllowed)
	}
}

func (c *Coordinator) traceGet(w http.ResponseWriter, addr, worker string) {
	if blob, ok := c.cfg.TraceStore.GetRaw(addr); ok {
		c.mu.Lock()
		c.traceStats.Hits++
		c.traceStats.WireBytes += uint64(len(blob))
		delete(c.flights, addr) // published out of band (local store share)
		c.mu.Unlock()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
		w.Write(blob)
		return
	}
	if !tracestore.ValidAddr(addr) {
		http.Error(w, "bad addr", http.StatusBadRequest)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if f := c.flights[addr]; f != nil && f.owner != worker {
		if c.flightOwnerLiveLocked(f, now) {
			// Someone else is capturing this very trace. Tell the asker
			// to wait; the poll cadence mirrors the lease idle poll.
			c.traceStats.Waits++
			retry := (c.cfg.LeaseTTL / 6).Milliseconds()
			if retry < 1 {
				retry = 1
			}
			w.Header().Set("Retry-After-Ms", strconv.FormatInt(retry, 10))
			w.WriteHeader(http.StatusAccepted)
			return
		}
		c.traceStats.ClaimSteals++
		c.logf("dist: trace %.12s claim stolen from %s (owner dead or overstayed)", addr, f.owner)
	}
	// No flight, a stale one, or the owner re-asking: the claim is the
	// requester's now.
	c.flights[addr] = &flight{owner: worker, granted: now}
	c.traceStats.Claims++
	w.WriteHeader(http.StatusNoContent)
}

// flightOwnerLiveLocked reports whether a claim is still trustworthy:
// the owner has been seen within the liveness cutoff (the same two
// lease TTLs that gate unit dispatch) and the claim is not ancient.
func (c *Coordinator) flightOwnerLiveLocked(f *flight, now time.Time) bool {
	if now.Sub(f.granted) > c.flightMaxAge() {
		return false
	}
	w := c.workers[f.owner]
	return w != nil && !w.evicted && w.lastSeen.After(now.Add(-2*c.cfg.LeaseTTL))
}

func (c *Coordinator) tracePut(w http.ResponseWriter, r *http.Request, addr string) {
	blob, err := io.ReadAll(io.LimitReader(r.Body, 1<<30+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.cfg.TraceStore.PutRaw(addr, blob); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.traceStats.Puts++
	c.traceStats.WireBytes += uint64(len(blob))
	delete(c.flights, addr)
	c.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

// TraceTierConfig configures a worker-side trace tier client.
type TraceTierConfig struct {
	// BaseURL is the coordinator's address, e.g. "http://host:7070".
	BaseURL string
	// WorkerID names this worker for capture-claim ownership. Use the
	// same ID the Worker registers under so the coordinator can judge
	// the claim's liveness from the worker's heartbeats.
	WorkerID string
	// HTTPClient, when non-nil, carries the requests — the same
	// faults.NetFaults seam as WorkerConfig.HTTPClient.
	HTTPClient *http.Client
	// LeaseTTL should match the coordinator's; it scales the wait
	// backoff and the per-request timeout (default 3s).
	LeaseTTL time.Duration
	// Logf, when non-nil, receives tier client events.
	Logf func(format string, args ...any)
}

// TraceTierClient is the worker side of the trace data plane. It
// implements testbed.TraceTier over /v1/trace: Fetch resolves a trace
// key against the coordinator, waiting out another worker's in-flight
// capture when told to, and Publish uploads a fresh capture. Every
// failure path — coordinator down, request dropped, owner never
// publishing — ends in (nil, 0, false) within a bounded time, which
// the testbed treats as "capture it yourself": the tier can only ever
// save work, never lose it or hang it.
type TraceTierClient struct {
	cfg    TraceTierConfig
	client *http.Client
}

// NewTraceTierClient validates the configuration.
func NewTraceTierClient(cfg TraceTierConfig) (*TraceTierClient, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("dist: trace tier client needs a coordinator URL")
	}
	if cfg.WorkerID == "" {
		return nil, fmt.Errorf("dist: trace tier client needs a worker ID")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 3 * time.Second
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	return &TraceTierClient{cfg: cfg, client: client}, nil
}

var _ testbed.TraceTier = (*TraceTierClient)(nil)

func (tc *TraceTierClient) logf(format string, args ...any) {
	if tc.cfg.Logf != nil {
		tc.cfg.Logf(format, args...)
	}
}

func (tc *TraceTierClient) url(addr string) string {
	return tc.cfg.BaseURL + "/v1/trace?addr=" + addr + "&worker=" + tc.cfg.WorkerID
}

// Fetch resolves one trace key against the tier. ok=false means the
// caller should capture locally — a miss with the claim granted, or
// any failure to get a straight answer within the wait budget.
func (tc *TraceTierClient) Fetch(key []byte) (*tracestore.Record, int, bool) {
	addr := tracestore.Addr(key)
	// The wait budget bounds how long we trust "someone else is on it"
	// before capturing ourselves. A dead owner is detected by the
	// coordinator within two lease TTLs, so the budget only has to
	// cover an unlucky tail of capture time on top of that.
	deadline := time.Now().Add(tc.waitBudget())
	backoff := tc.cfg.LeaseTTL / 6
	if backoff < time.Millisecond {
		backoff = time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		rec, wire, verdict := tc.fetchOnce(addr)
		switch verdict {
		case tierHit:
			return rec, wire, true
		case tierCapture:
			return nil, 0, false
		case tierError:
			// One failed request is enough to fall back: the tier is an
			// optimisation, and the control-plane RPCs have their own
			// retry machinery to handle a flaky network.
			return nil, 0, false
		}
		// tierWait: somebody else is capturing. Poll until they publish
		// or the budget says stop trusting them.
		if time.Now().After(deadline) {
			tc.logf("dist: trace %.12s wait budget exhausted, capturing locally", addr)
			return nil, 0, false
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > tc.cfg.LeaseTTL {
			backoff = tc.cfg.LeaseTTL
		}
	}
}

func (tc *TraceTierClient) waitBudget() time.Duration {
	if d := 20 * tc.cfg.LeaseTTL; d > 10*time.Second {
		return d
	}
	return 10 * time.Second
}

type tierVerdict int

const (
	tierHit     tierVerdict = iota // 200: record decoded
	tierCapture                    // 204: claim is ours
	tierWait                       // 202: poll again
	tierError                      // transport/protocol failure
)

func (tc *TraceTierClient) fetchOnce(addr string) (*tracestore.Record, int, tierVerdict) {
	req, err := http.NewRequest(http.MethodGet, tc.url(addr), nil)
	if err != nil {
		return nil, 0, tierError
	}
	resp, err := tc.doTimed(req)
	if err != nil {
		tc.logf("dist: trace fetch %.12s: %v", addr, err)
		return nil, 0, tierError
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30+1))
		if err != nil {
			return nil, 0, tierError
		}
		rec, ok := tracestore.Decode(blob)
		if !ok {
			// Damaged in flight; treat as a miss we resolve ourselves
			// rather than re-asking for the same bytes.
			tc.logf("dist: trace fetch %.12s: undecodable blob (%d bytes)", addr, len(blob))
			return nil, 0, tierError
		}
		return rec, len(blob), tierHit
	case http.StatusNoContent:
		return nil, 0, tierCapture
	case http.StatusAccepted:
		return nil, 0, tierWait
	default:
		return nil, 0, tierError
	}
}

// doTimed runs one request under a per-request timeout so a stalled
// connection (faults.NetFaults stalls, a wedged coordinator) costs one
// bounded wait, not a hang.
func (tc *TraceTierClient) doTimed(req *http.Request) (*http.Response, error) {
	timeout := 2 * tc.cfg.LeaseTTL
	if timeout < time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(req.Context(), timeout)
	resp, err := tc.client.Do(req.WithContext(ctx))
	if err != nil {
		cancel()
		return nil, err
	}
	// Hand the body's lifetime to the caller; cancelling now would kill
	// the read. The timer still bounds the read via the response body's
	// dependence on ctx, and the caller's Close releases everything.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody releases the request's timeout context when the response
// body is closed.
type cancelBody struct {
	io.ReadCloser
	cancel func()
}

func (cb *cancelBody) Close() error {
	err := cb.ReadCloser.Close()
	cb.cancel()
	return err
}

// Publish uploads a fresh capture, releasing the single-flight claim.
// Best-effort: a failed publish costs other workers a recapture, not
// correctness, so it retries only briefly.
func (tc *TraceTierClient) Publish(key []byte, rec *tracestore.Record) int {
	addr := tracestore.Addr(key)
	blob := tracestore.Encode(rec)
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 50 * time.Millisecond)
		}
		req, err := http.NewRequest(http.MethodPut, tc.url(addr), bytes.NewReader(blob))
		if err != nil {
			return 0
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := tc.doTimed(req)
		if err != nil {
			tc.logf("dist: trace publish %.12s: %v", addr, err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return len(blob)
		}
		tc.logf("dist: trace publish %.12s: HTTP %d", addr, resp.StatusCode)
		if resp.StatusCode == http.StatusBadRequest {
			return 0 // permanent: re-sending the same bytes cannot help
		}
	}
	return 0
}
