package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/scope"
	"repro/internal/testbed"
	"repro/internal/workloads"
)

// compiled builds a fresh compiled Bulldozer platform.
func compiled(t testing.TB) *testbed.CompiledPlatform {
	t.Helper()
	cp, err := testbed.Bulldozer().Compile()
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// distSlate builds n distinct distributable run configurations around
// real stressmark programs.
func distSlate(t testing.TB, n int) []testbed.RunConfig {
	t.Helper()
	p := testbed.Bulldozer()
	rcs := make([]testbed.RunConfig, n)
	for i := range rcs {
		threads, err := testbed.SpreadPlacement(p.Chip, workloads.SMRes(24+2*i), 4)
		if err != nil {
			t.Fatal(err)
		}
		rcs[i] = testbed.RunConfig{
			Threads:      threads,
			MaxCycles:    4000,
			WarmupCycles: 500,
			SupplyVolts:  p.Nominal() - 0.04,
		}
	}
	return rcs
}

// fastCoordinator builds a coordinator with test-friendly timing.
func fastCoordinator(t *testing.T, local LocalRunner, mut func(*Config)) (*Coordinator, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Local:    local,
		UnitSize: 2,
		LeaseTTL: 250 * time.Millisecond,
		Logf:     t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	t.Cleanup(srv.Close)
	return co, srv
}

// startWorker runs an in-process worker until the test (or the
// returned cancel) stops it.
func startWorker(t *testing.T, url, id string, runner testbed.ContextBatchRunner) (cancel func(), done chan error) {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		ID: id, BaseURL: url, Runner: runner,
		Poll: 5 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done = make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	t.Cleanup(func() { stop(); <-done })
	return stop, done
}

// waitWorkers blocks until n workers are live on the coordinator.
func waitWorkers(t *testing.T, co *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for co.LiveWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered", co.LiveWorkers(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// rpcJSON is a bare test-side client for driving the protocol by hand.
func rpcJSON(t *testing.T, url, path string, req, reply any) {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: HTTP %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(reply); err != nil {
		t.Fatal(err)
	}
}

// checkMatchesLocal asserts the distributed outcome is bit-identical
// to a fresh local platform's batch: same measurements (DeepEqual) and
// same error texts slot for slot.
func checkMatchesLocal(t *testing.T, rcs []testbed.RunConfig, ms []*testbed.Measurement, errs []error) {
	t.Helper()
	ref := compiled(t)
	wantMs, wantErrs := ref.MeasureBatch(rcs, 0, 2)
	for i := range rcs {
		if (errs[i] == nil) != (wantErrs[i] == nil) {
			t.Fatalf("slot %d: err = %v, local err = %v", i, errs[i], wantErrs[i])
		}
		if errs[i] != nil {
			if errs[i].Error() != wantErrs[i].Error() {
				t.Errorf("slot %d: err %q, local err %q", i, errs[i], wantErrs[i])
			}
			continue
		}
		if !reflect.DeepEqual(ms[i], wantMs[i]) {
			t.Errorf("slot %d: distributed measurement differs from local:\n got %+v\nwant %+v", i, ms[i], wantMs[i])
		}
	}
}

// TestWireUnitRoundTrip: RunConfigs survive the wire bit-identically —
// programs round-trip through asm encode/decode, scalars through JSON.
func TestWireUnitRoundTrip(t *testing.T) {
	rcs := distSlate(t, 3)
	rcs[1].Dither = []testbed.DitherSpec{{Core: 1, PeriodCycles: 64, PadCycles: 2}}
	rcs[2].RecordWaveform = true
	rcs[2].TriggerThreshold = 0.05
	// Shared program: slots 0 and 1 reuse one pointer; the table must
	// carry it once.
	rcs[1].Threads = rcs[0].Threads

	u, err := encodeUnit(7, 3, rcs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(u.Programs); got != 2 {
		t.Errorf("program table has %d entries, want 2 (dedup)", got)
	}
	// Through JSON, as the transport would see it.
	blob, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	var u2 WireUnit
	if err := json.Unmarshal(blob, &u2); err != nil {
		t.Fatal(err)
	}
	back, err := decodeUnit(&u2)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rcs) {
		t.Fatalf("decoded %d slots, want %d", len(back), len(rcs))
	}
	for i := range rcs {
		want := rcs[i]
		got := back[i]
		if !reflect.DeepEqual(got.Dither, want.Dither) || got.MaxCycles != want.MaxCycles ||
			got.SupplyVolts != want.SupplyVolts || got.RecordWaveform != want.RecordWaveform ||
			got.TriggerThreshold != want.TriggerThreshold {
			t.Errorf("slot %d scalars differ: got %+v want %+v", i, got, want)
		}
		for k := range want.Threads {
			if !reflect.DeepEqual(got.Threads[k].Program, want.Threads[k].Program) {
				t.Errorf("slot %d thread %d program differs after round trip", i, k)
			}
			if got.Threads[k].Module != want.Threads[k].Module || got.Threads[k].Core != want.Threads[k].Core {
				t.Errorf("slot %d thread %d placement differs", i, k)
			}
		}
	}
}

// TestWireMeasurementRoundTrip: a real Measurement survives JSON
// bit-exactly — the float64 fields the whole determinism argument
// depends on included.
func TestWireMeasurementRoundTrip(t *testing.T) {
	cp := compiled(t)
	rc := distSlate(t, 1)[0]
	rc.RecordWaveform = true
	m, err := cp.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(WireResult{M: m})
	if err != nil {
		t.Fatal(err)
	}
	var wr WireResult
	if err := json.Unmarshal(blob, &wr); err != nil {
		t.Fatal(err)
	}
	got, err := decodeResult(wr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("measurement changed across the wire:\n got %+v\nwant %+v", got, m)
	}
}

// TestRemoteErrorClassification: wire errors keep their transient /
// permanent class through encode → decode.
func TestRemoteErrorClassification(t *testing.T) {
	tr, err := decodeResult(encodeResult(nil, &RemoteError{Msg: "boom", IsTransient: true}))
	if tr != nil || !transient(err) {
		t.Errorf("transient error lost its class: %v", err)
	}
	perm, err := decodeResult(encodeResult(nil, errors.New("bad config")))
	if perm != nil || transient(err) || err.Error() != "bad config" {
		t.Errorf("permanent error mangled: %v", err)
	}
}

// TestDistributedMatchesLocal: two workers, mixed batch (distributable,
// non-distributable, invalid) — outcome bit-identical to a single local
// platform.
func TestDistributedMatchesLocal(t *testing.T) {
	co, srv := fastCoordinator(t, compiled(t), nil)
	startWorker(t, srv.URL, "w1", compiled(t))
	startWorker(t, srv.URL, "w2", compiled(t))
	waitWorkers(t, co, 2)

	rcs := distSlate(t, 5)
	hist, err := scope.NewHistogram(0.9, 1.4, 64)
	if err != nil {
		t.Fatal(err)
	}
	rcs[2].Histogram = hist                              // must stay local
	rcs = append(rcs, testbed.RunConfig{MaxCycles: 100}) // invalid: no threads

	ms, errs := co.MeasureBatchContext(context.Background(), rcs, 0, 2)
	checkMatchesLocal(t, rcs, ms, errs)

	st := co.Stats()
	if st.UnitsRemote == 0 {
		t.Errorf("no units went remote: %+v", st)
	}
	if st.UnitsLocal == 0 {
		t.Errorf("histogram slot did not run locally: %+v", st)
	}
}

// TestNoWorkersDegradesToLocal: an empty pool must not hang the batch —
// the coordinator evaluates everything itself.
func TestNoWorkersDegradesToLocal(t *testing.T) {
	co, _ := fastCoordinator(t, compiled(t), func(c *Config) {
		c.LeaseTTL = 50 * time.Millisecond
	})
	rcs := distSlate(t, 4)
	ms, errs := co.MeasureBatchContext(context.Background(), rcs, 0, 2)
	checkMatchesLocal(t, rcs, ms, errs)
	st := co.Stats()
	if st.UnitsRemote != 0 || st.UnitsLocal == 0 {
		t.Errorf("expected pure local degradation, got %+v", st)
	}
}

// TestLeaseExpiryReassigns: a worker that leases a unit and goes silent
// loses it to the TTL; a live worker (or the coordinator) finishes the
// batch with correct results.
func TestLeaseExpiryReassigns(t *testing.T) {
	co, srv := fastCoordinator(t, compiled(t), func(c *Config) {
		c.LeaseTTL = 120 * time.Millisecond
	})

	// Ghost worker grabs the first unit by hand and never comes back.
	var reg registerReply
	rpcJSON(t, srv.URL, "/v1/register", &registerRequest{WorkerID: "ghost"}, &reg)
	if !reg.OK {
		t.Fatalf("register: %+v", reg)
	}
	rcs := distSlate(t, 4)
	type out struct {
		ms   []*testbed.Measurement
		errs []error
	}
	res := make(chan out, 1)
	go func() {
		ms, errs := co.MeasureBatchContext(context.Background(), rcs, 0, 2)
		res <- out{ms, errs}
	}()
	// Wait until the ghost actually holds a lease.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var lease leaseReply
		rpcJSON(t, srv.URL, "/v1/lease", &leaseRequest{WorkerID: "ghost"}, &lease)
		if lease.Unit != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ghost never got a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Now bring up a real worker; the ghost's unit must be reissued.
	startWorker(t, srv.URL, "real", compiled(t))

	o := <-res
	checkMatchesLocal(t, rcs, o.ms, o.errs)
	if st := co.Stats(); st.LeaseExpiries == 0 || st.Requeues == 0 {
		t.Errorf("ghost's lease never expired: %+v", st)
	}
}

// TestResultAtMostOnce: the same unit result posted twice (a
// retransmission) merges once; the duplicate is acknowledged and
// dropped.
func TestResultAtMostOnce(t *testing.T) {
	co, srv := fastCoordinator(t, compiled(t), nil)
	var reg registerReply
	rpcJSON(t, srv.URL, "/v1/register", &registerRequest{WorkerID: "manual"}, &reg)

	rcs := distSlate(t, 2)
	type out struct {
		ms   []*testbed.Measurement
		errs []error
	}
	res := make(chan out, 1)
	go func() {
		ms, errs := co.MeasureBatchContext(context.Background(), rcs, 0, 1)
		res <- out{ms, errs}
	}()
	var lease leaseReply
	deadline := time.Now().Add(5 * time.Second)
	for lease.Unit == nil {
		if time.Now().After(deadline) {
			t.Fatal("no lease")
		}
		rpcJSON(t, srv.URL, "/v1/lease", &leaseRequest{WorkerID: "manual"}, &lease)
	}
	urcs, err := decodeUnit(lease.Unit)
	if err != nil {
		t.Fatal(err)
	}
	wcp := compiled(t)
	ms, errs := wcp.MeasureBatch(urcs, 0, 1)
	req := resultRequest{WorkerID: "manual", Unit: lease.Unit.ID, Slots: make([]WireResult, len(urcs))}
	for i := range urcs {
		req.Slots[i] = encodeResult(ms[i], errs[i])
	}
	var r1, r2 resultReply
	rpcJSON(t, srv.URL, "/v1/result", &req, &r1)
	rpcJSON(t, srv.URL, "/v1/result", &req, &r2)
	if !r1.OK || !r2.OK {
		t.Fatalf("result posts not acknowledged: %v %v", r1, r2)
	}
	o := <-res
	checkMatchesLocal(t, rcs, o.ms, o.errs)
	if st := co.Stats(); st.DuplicateResults != 1 {
		t.Errorf("DuplicateResults = %d, want 1: %+v", st.DuplicateResults, st)
	}
}

// TestCircuitBreakerEvicts: a worker that keeps failing units is
// suspended with backoff and finally evicted; the batch still finishes
// correctly without it.
func TestCircuitBreakerEvicts(t *testing.T) {
	co, srv := fastCoordinator(t, compiled(t), func(c *Config) {
		c.LeaseTTL = 100 * time.Millisecond
		c.BreakerTrips = 1
		c.MaxSuspensions = 1
		c.SuspendBase = 10 * time.Millisecond
		// Keep units remotable long enough for the worker to fail twice
		// (suspension, then eviction) before local fallback takes over.
		c.MaxUnitRetries = 10
	})
	var reg registerReply
	rpcJSON(t, srv.URL, "/v1/register", &registerRequest{WorkerID: "sick"}, &reg)

	rcs := distSlate(t, 2)
	type out struct {
		ms   []*testbed.Measurement
		errs []error
	}
	res := make(chan out, 1)
	go func() {
		ms, errs := co.MeasureBatchContext(context.Background(), rcs, 0, 1)
		res <- out{ms, errs}
	}()

	// Fail every unit we can lease until the breaker trips.
	evicted := false
	deadline := time.Now().Add(10 * time.Second)
	for !evicted && time.Now().Before(deadline) {
		var lease leaseReply
		rpcJSON(t, srv.URL, "/v1/lease", &leaseRequest{WorkerID: "sick"}, &lease)
		switch {
		case lease.Evicted:
			evicted = true
		case lease.Unit != nil:
			var r resultReply
			rpcJSON(t, srv.URL, "/v1/result", &resultRequest{
				WorkerID: "sick", Unit: lease.Unit.ID, Error: "simulated unit failure",
			}, &r)
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !evicted {
		t.Fatalf("breaker never evicted the failing worker: %+v", co.Stats())
	}
	o := <-res
	checkMatchesLocal(t, rcs, o.ms, o.errs)
	st := co.Stats()
	if st.Suspensions == 0 || st.Evictions != 1 {
		t.Errorf("breaker stats wrong: %+v", st)
	}

	// The evicted worker keeps seeing Evicted on every poll...
	var lease leaseReply
	rpcJSON(t, srv.URL, "/v1/lease", &leaseRequest{WorkerID: "sick"}, &lease)
	if !lease.Evicted {
		t.Errorf("evicted worker polled successfully: %+v", lease)
	}
	// ...until an explicit re-registration (a restarted process) resets
	// the breaker.
	var reg2 registerReply
	rpcJSON(t, srv.URL, "/v1/register", &registerRequest{WorkerID: "sick"}, &reg2)
	if !reg2.OK {
		t.Fatalf("re-register refused: %+v", reg2)
	}
	var fresh leaseReply
	rpcJSON(t, srv.URL, "/v1/lease", &leaseRequest{WorkerID: "sick"}, &fresh)
	if fresh.Evicted {
		t.Errorf("breaker not reset by re-registration")
	}
}

// TestWorkerPlatformMismatch: a worker measuring on different hardware
// is refused permanently.
func TestWorkerPlatformMismatch(t *testing.T) {
	_, srv := fastCoordinator(t, compiled(t), func(c *Config) {
		c.Platform = testbed.PlatformDigest(testbed.Bulldozer())
	})
	w, err := NewWorker(WorkerConfig{
		ID: "wrong", BaseURL: srv.URL, Runner: compiled(t),
		Platform: testbed.PlatformDigest(testbed.Phenom()),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.Run(ctx); !errors.Is(err, ErrPlatformMismatch) {
		t.Fatalf("Run = %v, want ErrPlatformMismatch", err)
	}
}

// TestBatchCancellation: cancelling the batch context releases the
// call promptly with ctx.Err() on unresolved slots and withdraws the
// queued units.
func TestBatchCancellation(t *testing.T) {
	co, _ := fastCoordinator(t, compiled(t), func(c *Config) {
		// A "live" ghost keeps degradation from kicking in, so units
		// would sit pending forever without the cancel.
		c.LeaseTTL = time.Hour
	})
	co.mu.Lock()
	co.workers["ghost"] = &workerState{id: "ghost", lastSeen: time.Now().Add(time.Hour)}
	co.mu.Unlock()

	rcs := distSlate(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var errs []error
	go func() {
		defer wg.Done()
		_, errs = co.MeasureBatchContext(ctx, rcs, 0, 1)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled batch did not return")
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("slot %d: err = %v, want context.Canceled", i, err)
		}
	}
	co.mu.Lock()
	nUnits, nPending := len(co.units), len(co.pending)
	co.mu.Unlock()
	if nUnits != 0 || nPending != 0 {
		t.Errorf("cancelled batch left %d active / %d pending units", nUnits, nPending)
	}
}

// TestInvalidSlotTravels: a slot that fails validation is still
// shipped, fails identically on the worker, and the error text comes
// back unchanged (classification: permanent).
func TestInvalidSlotTravels(t *testing.T) {
	rcs := []testbed.RunConfig{{MaxCycles: 10}}
	if !Distributable(rcs[0]) {
		t.Fatal("invalid slot should still be distributable")
	}
	if _, err := encodeUnit(1, 0, rcs, 0); err != nil {
		// No threads → no programs → encodes fine.
		t.Fatalf("encodeUnit: %v", err)
	}
}
