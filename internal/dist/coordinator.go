package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/testbed"
	"repro/internal/tracestore"
)

// LocalRunner is what the coordinator needs from its own measurement
// platform: serial runs (the GA's retry/repeat follow-ups) and batched
// runs (non-distributable slots and the degraded-to-local path).
// *testbed.CompiledPlatform satisfies it.
type LocalRunner interface {
	testbed.Runner
	testbed.ContextBatchRunner
}

// Config configures a Coordinator.
type Config struct {
	// Local is the coordinator's own platform: serial Run calls, slots
	// that cannot be shipped, and every unit evaluated when the worker
	// pool is empty or a unit has exhausted its remote attempts.
	Local LocalRunner
	// Platform is the digest workers must present at registration
	// (testbed.PlatformDigest). Empty disables the check.
	Platform string
	// UnitSize is how many slots one lease carries (default 4). Small
	// units bound the work lost to a worker death; large units amortise
	// RPC and trace-capture sharing.
	UnitSize int
	// LeaseTTL is how long a lease lives without a heartbeat
	// (default 3s). Workers heartbeat at TTL/3.
	LeaseTTL time.Duration
	// MaxUnitRetries is how many remote (re)dispatches a unit gets —
	// after lease expiries or permanent unit errors — before the
	// coordinator evaluates it locally (default 2).
	MaxUnitRetries int
	// BreakerTrips is the consecutive-strike count (lease expiry or
	// unit error) that suspends a worker (default 3).
	BreakerTrips int
	// SuspendBase is the first suspension length; it doubles per
	// suspension (default 250ms).
	SuspendBase time.Duration
	// MaxSuspensions is how many suspensions a worker gets before it
	// is evicted permanently (default 5). A fresh registration under
	// the same ID (a restarted process) starts clean.
	MaxSuspensions int
	// TraceStore, when non-nil, backs the shared trace tier: the
	// coordinator serves and accepts compressed trace records on
	// /v1/trace and single-flights concurrent captures of one key
	// across the worker pool. Point it at the same store the local
	// platform uses so locally-evaluated units populate the tier too.
	TraceStore *tracestore.Store
	// Logf, when non-nil, receives coordinator events (lease expiry,
	// suspension, degradation to local).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.UnitSize <= 0 {
		c.UnitSize = 4
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.MaxUnitRetries <= 0 {
		c.MaxUnitRetries = 2
	}
	if c.BreakerTrips <= 0 {
		c.BreakerTrips = 3
	}
	if c.SuspendBase <= 0 {
		c.SuspendBase = 250 * time.Millisecond
	}
	if c.MaxSuspensions <= 0 {
		c.MaxSuspensions = 5
	}
}

// Stats counts what the coordinator did — the observable shape of the
// failure handling, asserted on by the robustness tests.
type Stats struct {
	// UnitsRemote counts units completed by workers; UnitsLocal counts
	// units (and non-distributable slots batches) evaluated on the
	// coordinator, whether by degradation or retry exhaustion.
	UnitsRemote int
	UnitsLocal  int
	// LeaseExpiries counts revoked leases; Requeues counts unit
	// redispatches from expiry or unit-level errors.
	LeaseExpiries int
	Requeues      int
	// DuplicateResults counts result posts discarded by the
	// at-most-once merge (late or retransmitted).
	DuplicateResults int
	// Suspensions and Evictions count circuit-breaker actions.
	Suspensions int
	Evictions   int
}

type unitState int

const (
	unitPending unitState = iota
	unitLeased
	unitDone
	// unitWithdrawn marks a unit whose batch was cancelled before the
	// unit resolved: it is no longer lease-able and its slots surface
	// the cancellation.
	unitWithdrawn
)

// unit is one lease-able chunk of a batch, coordinator side.
type unit struct {
	id    uint64
	batch uint64
	slots []int // indices into the batch's rcs
	rcs   []testbed.RunConfig
	wire  *WireUnit

	state    unitState
	worker   string
	deadline time.Time
	attempts int  // remote dispatches so far
	local    bool // forced to the coordinator's platform

	ms   []*testbed.Measurement
	errs []error
}

type workerState struct {
	id             string
	lastSeen       time.Time
	strikes        int
	suspensions    int
	suspendedUntil time.Time
	evicted        bool
}

// Coordinator owns the distributed evaluation of measurement batches.
// It implements testbed.Runner and testbed.ContextBatchRunner, so it
// plugs into core.Options.WrapRunner and the GA's batch path unchanged:
// serial follow-ups run locally, generation batches are sharded to
// workers. Safe for concurrent use; HTTP handlers (Handler) and batch
// calls share one lock.
type Coordinator struct {
	cfg Config
	now func() time.Time // injectable clock for tests

	mu        sync.Mutex
	cond      *sync.Cond
	workers   map[string]*workerState
	units     map[uint64]*unit // active (not done) units by ID
	pending   []*unit          // FIFO of unleased units
	nextUnit  uint64
	nextBatch uint64
	stats     Stats

	// flights tracks in-flight trace captures by content address (see
	// trace.go); traceStats counts the tier's traffic.
	flights    map[string]*flight
	traceStats TraceTierStats
}

// NewCoordinator builds a coordinator around a local platform.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Local == nil {
		return nil, fmt.Errorf("dist: coordinator needs a local runner")
	}
	cfg.fillDefaults()
	c := &Coordinator{
		cfg:     cfg,
		now:     time.Now,
		workers: make(map[string]*workerState),
		units:   make(map[uint64]*unit),
		flights: make(map[string]*flight),
	}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// LiveWorkers reports how many workers are currently considered live
// (registered, not evicted, seen within two lease TTLs). Callers that
// want remote evaluation should dispatch work only once this is
// positive — a batch started against an empty pool degrades to local
// evaluation immediately rather than waiting for workers that may
// never come.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked()
}

// Run executes one measurement locally — the GA's serial path (retries,
// repeat samples) stays on the coordinator, where it is deterministic
// and needs no network.
func (c *Coordinator) Run(rc testbed.RunConfig) (*testbed.Measurement, error) {
	return c.cfg.Local.Run(rc)
}

// MeasureBatch implements testbed.BatchRunner.
func (c *Coordinator) MeasureBatch(rcs []testbed.RunConfig, lanes, workers int) ([]*testbed.Measurement, []error) {
	return c.MeasureBatchContext(context.Background(), rcs, lanes, workers)
}

var _ testbed.ContextBatchRunner = (*Coordinator)(nil)
var _ LocalRunner = (*Coordinator)(nil)

// MeasureBatchContext shards the batch into work units, dispatches them
// to whoever polls, and merges results slot-aligned. The returned
// arrays are bit-identical to c.cfg.Local.MeasureBatch on the same
// inputs, whatever the worker pool does: measurements are pure
// functions of their RunConfig, the merge is at-most-once per unit,
// and every failure path ends in redispatch or local evaluation.
// Cancelling ctx abandons unresolved slots with ctx.Err().
func (c *Coordinator) MeasureBatchContext(ctx context.Context, rcs []testbed.RunConfig, lanes, workers int) ([]*testbed.Measurement, []error) {
	ms := make([]*testbed.Measurement, len(rcs))
	errs := make([]error, len(rcs))

	// Split distributable slots from ones that must stay local.
	var remote, localOnly []int
	for i, rc := range rcs {
		if Distributable(rc) {
			remote = append(remote, i)
		} else {
			localOnly = append(localOnly, i)
		}
	}

	units := c.enqueue(rcs, remote, lanes)

	// Non-distributable slots run here while workers chew on the units
	// already queued (the HTTP handlers serve leases concurrently).
	if len(localOnly) > 0 {
		lrcs := make([]testbed.RunConfig, len(localOnly))
		for k, i := range localOnly {
			lrcs[k] = rcs[i]
		}
		lms, lerrs := c.cfg.Local.MeasureBatchContext(ctx, lrcs, lanes, workers)
		for k, i := range localOnly {
			ms[i], errs[i] = lms[k], lerrs[k]
		}
		c.mu.Lock()
		c.stats.UnitsLocal++
		c.mu.Unlock()
	}

	c.wait(ctx, units, lanes, workers)

	// Merge. Units a cancelled wait left unresolved surface ctx.Err().
	for _, u := range units {
		if u.state == unitDone {
			for k, slot := range u.slots {
				ms[slot], errs[slot] = u.ms[k], u.errs[k]
			}
			continue
		}
		for _, slot := range u.slots {
			errs[slot] = ctx.Err()
		}
	}
	return ms, errs
}

// enqueue splits the remote slots into units and queues them. A unit
// whose programs fail to encode is marked local from the start.
func (c *Coordinator) enqueue(rcs []testbed.RunConfig, remote []int, lanes int) []*unit {
	var units []*unit
	c.mu.Lock()
	batch := c.nextBatch
	c.nextBatch++
	for len(remote) > 0 {
		n := c.cfg.UnitSize
		if n > len(remote) {
			n = len(remote)
		}
		slots := remote[:n]
		remote = remote[n:]
		u := &unit{id: c.nextUnit, batch: batch, state: unitPending}
		c.nextUnit++
		u.slots = append(u.slots, slots...)
		for _, i := range slots {
			u.rcs = append(u.rcs, rcs[i])
		}
		var err error
		if u.wire, err = encodeUnit(u.id, batch, u.rcs, lanes); err != nil {
			c.logf("dist: unit %d not encodable, keeping local: %v", u.id, err)
			u.local = true
		}
		c.units[u.id] = u
		c.pending = append(c.pending, u)
		units = append(units, u)
	}
	if len(units) > 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	return units
}

// wait blocks until every unit is done or ctx dies, running the
// recovery machinery as it goes: expiring leases, striking workers,
// and pulling units to the local platform when the pool cannot make
// progress. On exit the batch's unresolved units are withdrawn so a
// cancelled batch leaves no orphans for workers to chew on.
func (c *Coordinator) wait(ctx context.Context, units []*unit, lanes, workers int) {
	if len(units) == 0 {
		return
	}
	// The ticker drives lease-expiry scans; the ctx watcher unblocks a
	// cancelled wait. Both just poke the cond.
	tick := c.cfg.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-t.C:
			case <-ctx.Done():
			case <-stop:
				return
			}
			c.cond.Broadcast()
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	c.mu.Lock()
	for {
		c.expireLocked()
		if locals := c.claimLocalLocked(units); len(locals) > 0 {
			c.mu.Unlock()
			for _, u := range locals {
				c.runLocal(ctx, u, lanes, workers)
			}
			c.mu.Lock()
			continue
		}
		if ctx.Err() != nil || allDone(units) {
			break
		}
		c.cond.Wait()
	}
	// Withdraw whatever is left (cancelled batch): no longer
	// lease-able, and late results for it are discarded as duplicates.
	for _, u := range units {
		if u.state != unitDone {
			u.state = unitWithdrawn
			delete(c.units, u.id)
		}
	}
	c.pending = compactPending(c.pending)
	c.mu.Unlock()
}

func allDone(units []*unit) bool {
	for _, u := range units {
		if u.state != unitDone {
			return false
		}
	}
	return true
}

// compactPending drops units that are no longer pending (done,
// withdrawn, or re-leased) from the FIFO.
func compactPending(q []*unit) []*unit {
	out := q[:0]
	for _, u := range q {
		if u.state == unitPending {
			out = append(out, u)
		}
	}
	return out
}

// expireLocked revokes leases whose deadline passed: the unit goes
// back to pending (or local, once its remote attempts are spent) and
// the silent worker takes a strike.
func (c *Coordinator) expireLocked() {
	now := c.now()
	for _, u := range c.units {
		if u.state != unitLeased || now.Before(u.deadline) {
			continue
		}
		c.stats.LeaseExpiries++
		c.logf("dist: lease on unit %d expired (worker %s)", u.id, u.worker)
		if w := c.workers[u.worker]; w != nil {
			c.strikeLocked(w)
		}
		c.requeueLocked(u)
	}
}

// requeueLocked returns a revoked/failed unit to the queue, demoting
// it to local evaluation when its remote attempts are spent.
func (c *Coordinator) requeueLocked(u *unit) {
	u.state = unitPending
	u.worker = ""
	c.stats.Requeues++
	if u.attempts >= c.cfg.MaxUnitRetries {
		u.local = true
		c.logf("dist: unit %d spent %d remote attempts, demoting to local", u.id, u.attempts)
	}
	c.pending = append(c.pending, u)
	c.cond.Broadcast()
}

// strikeLocked records one failure against a worker, suspending it
// when it accumulates BreakerTrips consecutive strikes and evicting it
// permanently after MaxSuspensions suspensions.
func (c *Coordinator) strikeLocked(w *workerState) {
	w.strikes++
	if w.strikes < c.cfg.BreakerTrips {
		return
	}
	w.strikes = 0
	w.suspensions++
	if w.suspensions > c.cfg.MaxSuspensions {
		w.evicted = true
		c.stats.Evictions++
		c.logf("dist: worker %s evicted after %d suspensions", w.id, w.suspensions-1)
		return
	}
	d := c.cfg.SuspendBase << (w.suspensions - 1)
	w.suspendedUntil = c.now().Add(d)
	c.stats.Suspensions++
	c.logf("dist: worker %s suspended for %v", w.id, d)
}

// liveWorkersLocked counts workers that are plausibly still pulling
// work: registered, not evicted, and seen within two lease TTLs.
// Suspended workers still count as live — they will come back — so
// the coordinator does not steal their queue; an evicted or vanished
// pool does not.
func (c *Coordinator) liveWorkersLocked() int {
	cutoff := c.now().Add(-2 * c.cfg.LeaseTTL)
	n := 0
	for _, w := range c.workers {
		if !w.evicted && w.lastSeen.After(cutoff) {
			n++
		}
	}
	return n
}

// claimLocalLocked pulls pending units the coordinator should evaluate
// itself: units demoted to local, and — when no live workers remain —
// the whole queue (graceful degradation: the search must finish even
// if every worker died).
func (c *Coordinator) claimLocalLocked(units []*unit) []*unit {
	degrade := c.liveWorkersLocked() == 0
	var locals []*unit
	for _, u := range units {
		if u.state != unitPending {
			continue
		}
		if u.local || degrade {
			u.state = unitLeased // reserve; not visible to lease handler
			u.worker = "(local)"
			u.deadline = c.now().Add(24 * time.Hour)
			locals = append(locals, u)
		}
	}
	if len(locals) > 0 {
		c.pending = compactPending(c.pending)
		if degrade && !locals[0].local {
			c.logf("dist: no live workers, evaluating %d unit(s) locally", len(locals))
		}
	}
	return locals
}

// runLocal evaluates one unit on the coordinator's platform. First
// result still wins: if a worker raced us and already posted, the
// local result is discarded (they are identical anyway — both are the
// pure function of the same RunConfigs).
func (c *Coordinator) runLocal(ctx context.Context, u *unit, lanes, workers int) {
	ms, errs := c.cfg.Local.MeasureBatchContext(ctx, u.rcs, lanes, workers)
	c.mu.Lock()
	defer c.mu.Unlock()
	if u.state == unitDone {
		c.stats.DuplicateResults++
		return
	}
	if err := ctx.Err(); err != nil {
		// Cancelled mid-evaluation: put the unit back; the wait loop is
		// about to withdraw it.
		c.requeueLocked(u)
		return
	}
	u.ms, u.errs = ms, errs
	u.state = unitDone
	delete(c.units, u.id)
	c.stats.UnitsLocal++
	c.cond.Broadcast()
}

// Handler returns the coordinator's HTTP API: the four worker-facing
// control endpoints (POST + JSON) and, when a trace store is
// configured, the binary trace data plane on /v1/trace.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", jsonEndpoint(c.register))
	mux.HandleFunc("/v1/lease", jsonEndpoint(c.lease))
	mux.HandleFunc("/v1/heartbeat", jsonEndpoint(c.heartbeat))
	mux.HandleFunc("/v1/result", jsonEndpoint(c.result))
	if c.cfg.TraceStore != nil {
		mux.HandleFunc("/v1/trace", c.traceHandler)
	}
	return mux
}

// jsonEndpoint adapts func(req) reply to an http.HandlerFunc.
func jsonEndpoint[Req, Reply any](f func(*Req) *Reply) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(f(&req))
	}
}

// register admits a worker to the pool. Idempotent under retransmission
// (the ID is worker-supplied); a re-registration under a known ID
// resets the circuit breaker — a restarted process is a fresh worker,
// and eviction is meant to stop a sick process, not ban its name.
func (c *Coordinator) register(req *registerRequest) *registerReply {
	if req.WorkerID == "" {
		return &registerReply{Error: "dist: register: empty worker id"}
	}
	if c.cfg.Platform != "" && req.Platform != c.cfg.Platform {
		return &registerReply{Error: fmt.Sprintf(
			"dist: register: platform digest %.12s does not match coordinator %.12s",
			req.Platform, c.cfg.Platform)}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[req.WorkerID]
	if w == nil {
		w = &workerState{id: req.WorkerID}
		c.workers[req.WorkerID] = w
		c.logf("dist: worker %s registered", w.id)
	} else if w.evicted || w.suspensions > 0 || w.strikes > 0 {
		c.logf("dist: worker %s re-registered, breaker reset", w.id)
		*w = workerState{id: req.WorkerID}
	}
	w.lastSeen = c.now()
	c.cond.Broadcast()
	return &registerReply{OK: true}
}

// lease hands the oldest pending unit to a polling worker.
func (c *Coordinator) lease(req *leaseRequest) *leaseReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[req.WorkerID]
	if w == nil {
		return &leaseReply{Unregistered: true}
	}
	if w.evicted {
		return &leaseReply{Evicted: true}
	}
	w.lastSeen = c.now()
	idle := &leaseReply{RetryMs: (c.cfg.LeaseTTL / 6).Milliseconds()}
	if idle.RetryMs < 1 {
		idle.RetryMs = 1
	}
	if c.now().Before(w.suspendedUntil) {
		return idle
	}
	c.expireLocked() // a revoked lease may be re-issuable right now
	for len(c.pending) > 0 {
		u := c.pending[0]
		c.pending = c.pending[1:]
		if u.state != unitPending || u.local {
			continue // withdrawn, raced done, or demoted to local
		}
		u.state = unitLeased
		u.worker = w.id
		u.deadline = c.now().Add(c.cfg.LeaseTTL)
		u.attempts++
		return &leaseReply{Unit: u.wire, LeaseMs: c.cfg.LeaseTTL.Milliseconds()}
	}
	return idle
}

// heartbeat extends a live lease; OK=false tells the worker its lease
// is gone (expired and reassigned, or already merged) and the unit
// must be abandoned.
func (c *Coordinator) heartbeat(req *heartbeatRequest) *heartbeatReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[req.WorkerID]; w != nil {
		w.lastSeen = c.now()
	}
	u := c.units[req.Unit]
	if u == nil || u.state != unitLeased || u.worker != req.WorkerID {
		return &heartbeatReply{OK: false}
	}
	u.deadline = c.now().Add(c.cfg.LeaseTTL)
	return &heartbeatReply{OK: true}
}

// result merges a worker's unit outcome, at most once per unit: the
// first complete result wins and every later post (retransmission,
// revoked-then-finished worker, local race) is acknowledged and
// discarded. Determinism does not depend on WHICH post wins — all of
// them carry the same pure-function values — only the merge's
// at-most-once discipline.
func (c *Coordinator) result(req *resultRequest) *resultReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[req.WorkerID]
	if w != nil {
		w.lastSeen = c.now()
	}
	u := c.units[req.Unit]
	if u == nil || u.state == unitDone {
		c.stats.DuplicateResults++
		return &resultReply{OK: true}
	}
	if req.Error != "" {
		// Whole-unit failure on the worker. Strike it, and requeue the
		// unit (demoted to local once attempts are spent) unless some
		// other worker holds a fresh lease on it.
		c.logf("dist: worker %s failed unit %d: %s", req.WorkerID, req.Unit, req.Error)
		if w != nil {
			c.strikeLocked(w)
		}
		if u.state == unitLeased && u.worker == req.WorkerID {
			c.requeueLocked(u)
		}
		return &resultReply{OK: true}
	}
	if len(req.Slots) != len(u.rcs) {
		c.logf("dist: worker %s returned %d slots for unit %d (want %d), discarding",
			req.WorkerID, len(req.Slots), req.Unit, len(u.rcs))
		if w != nil {
			c.strikeLocked(w)
		}
		if u.state == unitLeased && u.worker == req.WorkerID {
			c.requeueLocked(u)
		}
		return &resultReply{OK: true}
	}
	u.ms = make([]*testbed.Measurement, len(req.Slots))
	u.errs = make([]error, len(req.Slots))
	for i, wr := range req.Slots {
		u.ms[i], u.errs[i] = decodeResult(wr)
	}
	u.state = unitDone
	delete(c.units, u.id)
	c.stats.UnitsRemote++
	if w != nil {
		w.strikes = 0 // a delivered unit ends the failure streak
	}
	c.cond.Broadcast()
	return &resultReply{OK: true}
}
