package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/testbed"
)

// ErrEvicted is returned by Worker.Run when the coordinator's circuit
// breaker has permanently evicted this worker: the process should exit
// (an operator restart re-registers with a clean slate).
var ErrEvicted = fmt.Errorf("dist: worker evicted by coordinator")

// ErrPlatformMismatch is returned when the coordinator refuses the
// worker's platform digest — a permanent configuration error.
var ErrPlatformMismatch = fmt.Errorf("dist: platform digest mismatch")

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// ID names this worker to the coordinator. Must be unique per live
	// process; reusing an ID after a restart is fine (it resets the
	// breaker), sharing one between live processes is not.
	ID string
	// BaseURL is the coordinator's address, e.g. "http://host:7070".
	BaseURL string
	// Runner measures the leased units — normally this machine's
	// compiled platform.
	Runner testbed.ContextBatchRunner
	// Platform is the digest presented at registration
	// (testbed.PlatformDigest of the platform behind Runner).
	Platform string
	// Parallel is the capture parallelism handed to MeasureBatchContext
	// (default 1).
	Parallel int
	// Poll is the idle poll floor (default 25ms; the coordinator's
	// RetryMs suggestion is used when larger).
	Poll time.Duration
	// HTTPClient, when non-nil, carries the RPCs — the seam where the
	// chaos tests splice in faults.NetFaults.
	HTTPClient *http.Client
	// Logf, when non-nil, receives worker events.
	Logf func(format string, args ...any)
}

// WorkerStats counts what a worker did.
type WorkerStats struct {
	Units      int // units evaluated and delivered
	Abandoned  int // units dropped because the lease was lost mid-run
	Failures   int // unit-level failures reported to the coordinator
	RPCRetries int
}

// Worker pulls work units from a coordinator, measures them on the
// local platform, and posts results. All failure handling is lease-
// shaped: if anything — the worker, the network, the coordinator's
// opinion of us — goes wrong for longer than a lease TTL, the unit is
// simply somebody else's problem and the worker moves on.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	mu    sync.Mutex
	stats WorkerStats
}

// NewWorker validates the configuration.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("dist: worker needs an ID")
	}
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("dist: worker needs a coordinator URL")
	}
	if cfg.Runner == nil {
		return nil, fmt.Errorf("dist: worker needs a runner")
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 25 * time.Millisecond
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	return &Worker{cfg: cfg, client: client}, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// rpc posts one JSON request and decodes the JSON reply.
func (w *Worker) rpc(ctx context.Context, path string, req, reply any) error {
	blob, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.BaseURL+path, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(hreq)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(reply)
}

// rpcRetry runs rpc with capped exponential backoff until it succeeds
// or ctx dies. Every RPC failure here is treated as transient — the
// transport cannot distinguish a dropped packet from a dead
// coordinator, and the lease machinery bounds the damage either way.
func (w *Worker) rpcRetry(ctx context.Context, path string, req, reply any, attempts int) error {
	backoff := 10 * time.Millisecond
	for i := 0; ; i++ {
		err := w.rpc(ctx, path, req, reply)
		if err == nil {
			return nil
		}
		if attempts > 0 && i+1 >= attempts {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.mu.Lock()
		w.stats.RPCRetries++
		w.mu.Unlock()
		w.logf("dist: worker %s: %s failed (%v), retrying in %v", w.cfg.ID, path, err, backoff)
		if err := sleepCtx(ctx, backoff); err != nil {
			return err
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// register announces the worker, retrying transport errors forever;
// a refusal (platform mismatch) is permanent.
func (w *Worker) register(ctx context.Context) error {
	var reply registerReply
	req := registerRequest{WorkerID: w.cfg.ID, Platform: w.cfg.Platform}
	if err := w.rpcRetry(ctx, "/v1/register", &req, &reply, 0); err != nil {
		return err
	}
	if !reply.OK {
		w.logf("dist: worker %s: registration refused: %s", w.cfg.ID, reply.Error)
		return fmt.Errorf("%w: %s", ErrPlatformMismatch, reply.Error)
	}
	return nil
}

// Run is the worker's main loop: register, then poll → evaluate → post
// until ctx dies (returns ctx.Err()), the coordinator evicts us
// (ErrEvicted), or registration is refused (ErrPlatformMismatch).
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	w.logf("dist: worker %s registered with %s", w.cfg.ID, w.cfg.BaseURL)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease leaseReply
		if err := w.rpcRetry(ctx, "/v1/lease", &leaseRequest{WorkerID: w.cfg.ID}, &lease, 0); err != nil {
			return err
		}
		switch {
		case lease.Evicted:
			return ErrEvicted
		case lease.Unregistered:
			// Coordinator restarted (or never knew us): re-register.
			if err := w.register(ctx); err != nil {
				return err
			}
			continue
		case lease.Unit == nil:
			idle := w.cfg.Poll
			if d := time.Duration(lease.RetryMs) * time.Millisecond; d > idle {
				idle = d
			}
			if err := sleepCtx(ctx, idle); err != nil {
				return err
			}
			continue
		}
		w.serve(ctx, lease.Unit, time.Duration(lease.LeaseMs)*time.Millisecond)
	}
}

// serve evaluates one leased unit under heartbeat protection and posts
// the outcome.
func (w *Worker) serve(ctx context.Context, wu *WireUnit, ttl time.Duration) {
	rcs, err := decodeUnit(wu)
	if err != nil {
		// The unit itself is bad (or our binary disagrees about the wire
		// format): report a permanent unit failure so the coordinator
		// falls back rather than redispatching to us forever.
		w.logf("dist: worker %s: unit %d undecodable: %v", w.cfg.ID, wu.ID, err)
		w.mu.Lock()
		w.stats.Failures++
		w.mu.Unlock()
		var reply resultReply
		w.rpcRetry(ctx, "/v1/result", &resultRequest{
			WorkerID: w.cfg.ID, Unit: wu.ID, Error: err.Error(),
		}, &reply, 5)
		return
	}

	// The unit context dies with the lease: heartbeats keep the lease
	// alive, and a lost lease (OK=false, or heartbeats failing for
	// longer than the TTL) cancels the evaluation — the coordinator has
	// already promised the unit to someone else, finishing it here only
	// burns cycles for a result the merge would discard.
	uctx, abandon := context.WithCancel(ctx)
	defer abandon()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(uctx, wu.ID, ttl, abandon)
	}()

	ms, errs := w.cfg.Runner.MeasureBatchContext(uctx, rcs, wu.Lanes, w.cfg.Parallel)
	lost := uctx.Err() != nil // sample before tearing the context down ourselves
	abandon()
	<-hbDone

	if lost && ctx.Err() == nil {
		// Lease lost (not a process shutdown): drop the unit silently.
		w.mu.Lock()
		w.stats.Abandoned++
		w.mu.Unlock()
		w.logf("dist: worker %s: abandoned unit %d (lease lost)", w.cfg.ID, wu.ID)
		return
	}
	if ctx.Err() != nil {
		return
	}

	res := resultRequest{WorkerID: w.cfg.ID, Unit: wu.ID, Slots: make([]WireResult, len(rcs))}
	for i := range rcs {
		res.Slots[i] = encodeResult(ms[i], errs[i])
	}
	var reply resultReply
	if err := w.rpcRetry(ctx, "/v1/result", &res, &reply, 5); err != nil {
		w.logf("dist: worker %s: could not deliver unit %d: %v", w.cfg.ID, wu.ID, err)
		return // the lease will expire and the unit will be reissued
	}
	w.mu.Lock()
	w.stats.Units++
	w.mu.Unlock()
}

// sleepCtx waits for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// heartbeatLoop extends the lease at TTL/3 until the unit context dies,
// cancelling the evaluation if the coordinator says the lease is gone
// or heartbeats fail for a full TTL.
func (w *Worker) heartbeatLoop(ctx context.Context, unit uint64, ttl time.Duration, abandon context.CancelFunc) {
	if ttl <= 0 {
		ttl = 3 * time.Second
	}
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	lastOK := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var reply heartbeatReply
		err := w.rpc(ctx, "/v1/heartbeat", &heartbeatRequest{WorkerID: w.cfg.ID, Unit: unit}, &reply)
		switch {
		case err == nil && reply.OK:
			lastOK = time.Now()
		case err == nil: // coordinator says the lease is gone
			abandon()
			return
		case time.Since(lastOK) > ttl:
			// Unreachable for longer than the lease: it has expired on
			// the other side; stop wasting simulation time.
			abandon()
			return
		}
	}
}
